package vdtuner

import (
	"io"
	"testing"

	"vdtuner/internal/bench"
)

// BenchmarkServerWire is the end-to-end access-layer benchmark: the same
// engine and query set served over real TCP under each protocol mode.
// Each sub-benchmark reports served QPS, p50/p99 call latency, and mean
// recall@K against exact ground truth — recall must match across modes
// (the wire never changes what the engine answers), so the QPS column is
// a throughput comparison at fixed recall. The pipelined sub-benchmark
// additionally measures its speedup over serial JSON on the same corpus
// and fails if pipelined binary does not clearly beat it — the headline
// claim of the binary protocol, recorded in BENCH_query.json.
func BenchmarkServerWire(b *testing.B) {
	serial := []string{bench.WireJSONSerial, bench.WireBinarySerial}
	for _, proto := range serial {
		b.Run(proto, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Wire(io.Discard, bench.WireOptions{Protocols: []string{proto}})
				if err != nil {
					b.Fatal(err)
				}
				r := res[0]
				b.ReportMetric(r.QPS, "qps")
				b.ReportMetric(float64(r.P50), "p50-ns")
				b.ReportMetric(float64(r.P99), "p99-ns")
				b.ReportMetric(r.Recall, "recall")
			}
		})
	}
	b.Run(bench.WireBinaryPipelined, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := bench.Wire(io.Discard, bench.WireOptions{
				Protocols: []string{bench.WireJSONSerial, bench.WireBinaryPipelined},
			})
			if err != nil {
				b.Fatal(err)
			}
			jsonSerial, pipelined := res[0], res[1]
			if pipelined.Recall != jsonSerial.Recall {
				b.Fatalf("recall diverged across protocols: json %.4f, pipelined %.4f",
					jsonSerial.Recall, pipelined.Recall)
			}
			speedup := pipelined.QPS / jsonSerial.QPS
			if speedup < 1.5 {
				b.Fatalf("pipelined binary only %.2fx serial JSON (%0.f vs %.0f qps)",
					speedup, pipelined.QPS, jsonSerial.QPS)
			}
			b.ReportMetric(pipelined.QPS, "qps")
			b.ReportMetric(float64(pipelined.P50), "p50-ns")
			b.ReportMetric(float64(pipelined.P99), "p99-ns")
			b.ReportMetric(pipelined.Recall, "recall")
			b.ReportMetric(speedup, "x-vs-json")
		}
	})
}
