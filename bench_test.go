// Package vdtuner's root benchmark suite: one testing.B benchmark per
// table and figure of the paper's evaluation. Each benchmark regenerates
// its experiment end to end at a reduced scale; cmd/experiments runs the
// same experiments at configurable scale with full printed output.
//
// Run with: go test -bench=. -benchmem
package vdtuner

import (
	"io"
	"testing"

	"vdtuner/internal/bench"
)

// benchOpts keeps the per-iteration cost of macro-benchmarks bounded.
func benchOpts(seed int64) bench.Options {
	return bench.Options{Scale: 0.1, Iters: 10, Seed: seed}
}

func BenchmarkFigure1Heatmap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure1(io.Discard, benchOpts(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2IndexVsSystem(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure2(io.Discard, benchOpts(2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3IndexProfiles(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Figure3(io.Discard, benchOpts(3)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Improvement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table4(io.Discard, benchOpts(4)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6TuningEfficiency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure6(io.Discard, benchOpts(5)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7Curves(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure7(io.Discard, benchOpts(6)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8Ablation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure8(io.Discard, benchOpts(7)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9ScoreWeights(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure9(io.Discard, benchOpts(8)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10Sampling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure10(io.Discard, benchOpts(9)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5BestConfigs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table5(io.Discard, benchOpts(10)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11Convergence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure11(io.Discard, benchOpts(11)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12Preference(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure12(io.Discard, benchOpts(12)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13CostAware(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure13(io.Discard, benchOpts(13)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6Overhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table6(io.Discard, benchOpts(14)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalabilityLargeDataset(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Scalability(io.Discard, benchOpts(15)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHolisticVsIndividual(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.HolisticVsIndividual(io.Discard, benchOpts(16)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDesignAblations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.DesignAblations(io.Discard, benchOpts(17)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchAfterDeletes is the churn benchmark: bulk-load a live
// collection, delete half the corpus, compact, and measure the bounded
// post-churn search path. It fails if compaction does not shrink the
// per-query scanned work below the pre-delete level.
func BenchmarkSearchAfterDeletes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.Churn(io.Discard, benchOpts(18))
		if err != nil {
			b.Fatal(err)
		}
		if res.WorkAfter >= res.WorkBefore {
			b.Fatalf("post-churn scan work %d >= pre-delete %d", res.WorkAfter, res.WorkBefore)
		}
	}
}
