// Root-level benchmarks and checks for the engine's parallel hot path:
// figure-scale index builds and batched search at workers=1 vs
// workers=NumCPU. The parallel contract (see package parallel) is that the
// two differ only in wall-clock time — results, recall, and Stats are
// identical — which is asserted here and measured by the benchmarks.
package vdtuner

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/workload"
)

// figureScaleHNSW builds an HNSW index over the arxiv-like dataset (the
// Table V workload) with the given worker count.
func figureScaleHNSW(tb testing.TB, workers int) (index.Index, *workload.Dataset) {
	tb.Helper()
	ds, err := workload.Load(workload.ArxivLike(0.5))
	if err != nil {
		tb.Fatal(err)
	}
	idx, err := index.New(index.HNSW, ds.Metric, ds.Dim, index.BuildParams{
		HNSWM: 16, EfConstruction: 96, Seed: 7, Workers: workers,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := idx.Build(ds.Store(), ds.IDs()); err != nil {
		tb.Fatal(err)
	}
	return idx, ds
}

func batchRecall(ds *workload.Dataset, res [][]linalg.Neighbor) float64 {
	sum := 0.0
	for qi := range res {
		sum += ds.Recall(qi, res[qi])
	}
	return sum / float64(len(res))
}

// TestSearchBatchSpeedupIdenticalRecall is the acceptance check for the
// parallel search path: workers=NumCPU returns bit-identical results (and
// therefore identical recall) to workers=1, and on machines with enough
// cores the batch completes at least 2x faster. The timing half is skipped
// under -race and below 4 cores, where the speedup is not observable.
func TestSearchBatchSpeedupIdenticalRecall(t *testing.T) {
	idx, ds := figureScaleHNSW(t, 0)
	cpus := runtime.GOMAXPROCS(0)
	time1, resSeq := timeBatch(idx, ds, 1)
	timeN, resPar := timeBatch(idx, ds, cpus)
	if !reflect.DeepEqual(resSeq, resPar) {
		t.Fatal("workers=NumCPU results differ from workers=1")
	}
	r1, rN := batchRecall(ds, resSeq), batchRecall(ds, resPar)
	if r1 != rN {
		t.Fatalf("recall differs: %v (workers=1) vs %v (workers=%d)", r1, rN, cpus)
	}
	if r1 < 0.8 {
		t.Fatalf("figure-scale recall = %v, want >= 0.8", r1)
	}
	t.Logf("workers=1: %v, workers=%d: %v (%.2fx), recall %.3f",
		time1, cpus, timeN, float64(time1)/float64(timeN), r1)
	if raceEnabled || cpus < 4 {
		t.Skipf("timing assertion skipped (race=%v, cpus=%d)", raceEnabled, cpus)
	}
	if float64(time1) < 2*float64(timeN) {
		t.Errorf("batched search speedup %.2fx < 2x on %d cores", float64(time1)/float64(timeN), cpus)
	}
}

// timeBatch replays the dataset's query set as batches until enough work
// has accumulated for a stable measurement, returning the elapsed time and
// the (round-invariant) last batch results.
func timeBatch(idx index.Index, ds *workload.Dataset, workers int) (time.Duration, [][]linalg.Neighbor) {
	sp := index.SearchParams{Ef: 96, Workers: workers}
	const rounds = 8
	var res [][]linalg.Neighbor
	start := time.Now()
	for r := 0; r < rounds; r++ {
		res = idx.SearchBatch(ds.Queries, ds.K, sp, nil)
	}
	return time.Since(start), res
}

// TestParallelBuildIdentical asserts the figure-scale build itself is
// worker-count-invariant end to end (graph, Stats, memory).
func TestParallelBuildIdentical(t *testing.T) {
	seqIdx, ds := figureScaleHNSW(t, 1)
	parIdx, _ := figureScaleHNSW(t, 8)
	if seqIdx.BuildStats() != parIdx.BuildStats() {
		t.Fatalf("build stats differ: %+v vs %+v", seqIdx.BuildStats(), parIdx.BuildStats())
	}
	if seqIdx.MemoryBytes() != parIdx.MemoryBytes() {
		t.Fatalf("memory differs: %d vs %d", seqIdx.MemoryBytes(), parIdx.MemoryBytes())
	}
	sp := index.SearchParams{Ef: 64}
	for qi, q := range ds.Queries {
		if !reflect.DeepEqual(seqIdx.Search(q, ds.K, sp, nil), parIdx.Search(q, ds.K, sp, nil)) {
			t.Fatalf("query %d: results differ between workers=1 and workers=8 builds", qi)
		}
	}
}

func BenchmarkSearchBatchWorkers1(b *testing.B) {
	b.ReportAllocs()
	idx, ds := figureScaleHNSW(b, 0)
	sp := index.SearchParams{Ef: 96, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.SearchBatch(ds.Queries, ds.K, sp, nil)
	}
}

func BenchmarkSearchBatchWorkersNumCPU(b *testing.B) {
	b.ReportAllocs()
	idx, ds := figureScaleHNSW(b, 0)
	sp := index.SearchParams{Ef: 96, Workers: runtime.GOMAXPROCS(0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.SearchBatch(ds.Queries, ds.K, sp, nil)
	}
}

func BenchmarkHNSWBuildWorkers1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		figureScaleHNSW(b, 1)
	}
}

func BenchmarkHNSWBuildWorkersNumCPU(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		figureScaleHNSW(b, 0)
	}
}
