package baselines

import (
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/space"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

func testDataset(t testing.TB) *workload.Dataset {
	t.Helper()
	ds, err := workload.Load(workload.Spec{
		Name: "baseline-test", N: 1000, NQ: 15, Dim: 20, K: 5,
		Clusters: 8, ClusterStd: 0.4, Correlated: true, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// method is the shared tuning interface (structurally identical to the
// runner's).
type method interface {
	Name() string
	Next() vdms.Config
	Observe(cfg vdms.Config, res vdms.Result)
}

func allMethods(seed int64) []method {
	return []method{
		NewRandom(seed),
		NewOpenTuner(seed),
		NewOtterTune(seed, 6),
		NewQEHVI(seed, 6),
	}
}

func TestAllBaselinesProposeValidConfigs(t *testing.T) {
	for _, m := range allMethods(1) {
		for i := 0; i < 12; i++ {
			cfg := m.Next()
			if err := cfg.Validate(); err != nil {
				t.Fatalf("%s proposed invalid config at iter %d: %v", m.Name(), i, err)
			}
			// Feed synthetic results; no engine needed for validity.
			m.Observe(cfg, vdms.Result{QPS: float64(10 + i), Recall: 0.5})
		}
	}
}

func TestAllBaselinesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end baseline loop is slow")
	}
	ds := testDataset(t)
	for _, m := range allMethods(2) {
		for i := 0; i < 15; i++ {
			cfg := m.Next()
			res := vdms.Evaluate(ds, cfg)
			m.Observe(cfg, res)
		}
	}
}

func TestBaselinesDeterministicPerSeed(t *testing.T) {
	for mi := 0; mi < 4; mi++ {
		a := allMethods(7)[mi]
		b := allMethods(7)[mi]
		for i := 0; i < 8; i++ {
			ca, cb := a.Next(), b.Next()
			if ca != cb {
				t.Fatalf("%s diverged at iter %d", a.Name(), i)
			}
			res := vdms.Result{QPS: float64(5 * (i + 1)), Recall: 0.3 + 0.05*float64(i)}
			a.Observe(ca, res)
			b.Observe(cb, res)
		}
	}
}

func TestRandomCoversIndexTypes(t *testing.T) {
	r := NewRandom(3)
	types := map[index.Type]bool{}
	for i := 0; i < 40; i++ {
		cfg := r.Next()
		types[cfg.IndexType] = true
		r.Observe(cfg, vdms.Result{QPS: 1, Recall: 0.5})
	}
	if len(types) < 5 {
		t.Fatalf("LHS covered only %d index types in 40 samples", len(types))
	}
}

func TestHistoryWorstSubstitution(t *testing.T) {
	var h history
	h.observe(space.DefaultVector(index.HNSW), vdms.Result{QPS: 100, Recall: 0.9})
	h.observe(space.DefaultVector(index.HNSW), vdms.Result{QPS: 50, Recall: 0.95})
	h.observe(space.DefaultVector(index.HNSW), vdms.Result{Failed: true})
	got := h.obs[2]
	if got.qps != 50 || got.recall != 0.9 {
		t.Fatalf("failed obs got (%v, %v), want worst-in-history (50, 0.9)", got.qps, got.recall)
	}
}

func TestHistoryWorstOnEmpty(t *testing.T) {
	var h history
	h.observe(space.DefaultVector(index.Flat), vdms.Result{Failed: true})
	got := h.obs[0]
	if got.qps <= 0 || got.recall <= 0 {
		t.Fatalf("first failed obs got non-positive values: %+v", got)
	}
}

func TestWeightedSumEqualAtMaxima(t *testing.T) {
	var h history
	h.observe(space.DefaultVector(index.Flat), vdms.Result{QPS: 200, Recall: 0.5})
	h.observe(space.DefaultVector(index.Flat), vdms.Result{QPS: 100, Recall: 1.0})
	// First obs: 0.5*1 + 0.5*0.5 = 0.75; second: 0.5*0.5 + 0.5*1 = 0.75.
	a := h.weightedSum(h.obs[0])
	b := h.weightedSum(h.obs[1])
	if a != b {
		t.Fatalf("weighted sums differ: %v vs %v", a, b)
	}
}

func TestOpenTunerBanditTriesAllTechniques(t *testing.T) {
	o := NewOpenTuner(4)
	for i := 0; i < 12; i++ {
		cfg := o.Next()
		o.Observe(cfg, vdms.Result{QPS: float64(i), Recall: 0.5})
	}
	for i, u := range o.uses {
		if u == 0 {
			t.Fatalf("technique %s never used", o.techniques[i].name())
		}
	}
}

func TestOtterTuneWarmupCount(t *testing.T) {
	o := NewOtterTune(5, 4)
	if len(o.initQueue) != 4 {
		t.Fatalf("warm-up queue = %d, want 4", len(o.initQueue))
	}
	NewOtterTune(5, 0) // default must not panic
}

func TestQEHVIWarmupThenModel(t *testing.T) {
	q := NewQEHVI(6, 3)
	for i := 0; i < 6; i++ {
		cfg := q.Next()
		q.Observe(cfg, vdms.Result{QPS: float64(10 * (i + 1)), Recall: 0.5 + 0.05*float64(i)})
	}
	if len(q.initQueue) != 0 {
		t.Fatal("warm-up queue not drained")
	}
	// Post-warm-up proposals must still be valid.
	cfg := q.Next()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("post-warmup proposal invalid: %v", err)
	}
}

func TestPerturbStaysInUnitCube(t *testing.T) {
	o := NewOpenTuner(8)
	x := randomVector(o.rng)
	for i := 0; i < 100; i++ {
		y := perturb(x, 0.5, o.rng)
		for d, v := range y {
			if v < 0 || v > 1 {
				t.Fatalf("perturb dim %d out of range: %v", d, v)
			}
		}
	}
}
