package baselines

import (
	"math"
	"math/rand"

	"vdtuner/internal/space"
	"vdtuner/internal/vdms"
)

// OpenTuner reimplements the OpenTuner search strategy (Ansel et al.,
// PACT'14) as the paper deploys it: a pool of numeric search techniques
// coordinated by an AUC-bandit meta-technique, with the weighted-sum
// reward over normalized search speed and recall. Each technique proposes
// configurations independently of parameter interdependencies, which is
// exactly the weakness the paper observes (§V-C).
type OpenTuner struct {
	rng  *rand.Rand
	hist history

	techniques []technique
	// uses[i] and wins[i] drive the AUC bandit's exploit term.
	uses, wins []float64
	lastTech   int
	lastBest   float64
	total      float64

	// annealing state
	current space.Vector
	temp    float64
}

// technique is one member of OpenTuner's search pool.
type technique interface {
	name() string
	propose(o *OpenTuner) space.Vector
}

// NewOpenTuner creates the bandit-coordinated search.
func NewOpenTuner(seed int64) *OpenTuner {
	o := &OpenTuner{
		rng:  rand.New(rand.NewSource(seed)),
		temp: 1.0,
	}
	o.techniques = []technique{
		uniformTech{}, hillClimbTech{}, annealTech{}, patternTech{},
	}
	o.uses = make([]float64, len(o.techniques))
	o.wins = make([]float64, len(o.techniques))
	o.current = randomVector(o.rng)
	return o
}

// Name implements the Method interface.
func (o *OpenTuner) Name() string { return "OpenTuner" }

// Next selects a technique by the AUC-bandit rule and asks it for a
// configuration.
func (o *OpenTuner) Next() vdms.Config {
	pick := 0
	bestScore := math.Inf(-1)
	for i := range o.techniques {
		score := math.Inf(1) // force trying each technique once
		if o.uses[i] > 0 {
			exploit := o.wins[i] / o.uses[i]
			explore := math.Sqrt(2 * math.Log(o.total+1) / o.uses[i])
			score = exploit + explore
		}
		if score > bestScore {
			bestScore = score
			pick = i
		}
	}
	o.lastTech = pick
	x := o.techniques[pick].propose(o)
	return space.Decode(x)
}

// Observe credits the proposing technique when the configuration improved
// the best weighted-sum reward.
func (o *OpenTuner) Observe(cfg vdms.Config, res vdms.Result) {
	x := space.Encode(cfg)
	o.hist.observe(x, res)
	_, bestV, _ := o.hist.bestWeighted()
	improved := bestV > o.lastBest+1e-12
	o.lastBest = bestV

	o.uses[o.lastTech]++
	o.total++
	if improved {
		o.wins[o.lastTech]++
		o.current = x // greedy walkers move to improvements
	}
	o.temp *= 0.97
}

func randomVector(rng *rand.Rand) space.Vector {
	x := make(space.Vector, space.Dims)
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}

// uniformTech samples uniformly at random.
type uniformTech struct{}

func (uniformTech) name() string { return "uniform" }
func (uniformTech) propose(o *OpenTuner) space.Vector {
	return randomVector(o.rng)
}

// hillClimbTech perturbs the best-known configuration slightly,
// dimension-independently.
type hillClimbTech struct{}

func (hillClimbTech) name() string { return "hillclimb" }
func (hillClimbTech) propose(o *OpenTuner) space.Vector {
	best, _, ok := o.hist.bestWeighted()
	if !ok {
		return randomVector(o.rng)
	}
	return perturb(best.x, 0.05, o.rng)
}

// annealTech performs simulated-annealing moves from the walker state
// with a decaying temperature.
type annealTech struct{}

func (annealTech) name() string { return "anneal" }
func (annealTech) propose(o *OpenTuner) space.Vector {
	return perturb(o.current, 0.05+0.4*o.temp, o.rng)
}

// patternTech mutates one coordinate at a time (coordinate pattern
// search), treating parameters as independent.
type patternTech struct{}

func (patternTech) name() string { return "pattern" }
func (patternTech) propose(o *OpenTuner) space.Vector {
	best, _, ok := o.hist.bestWeighted()
	if !ok {
		return randomVector(o.rng)
	}
	x := make(space.Vector, len(best.x))
	copy(x, best.x)
	d := o.rng.Intn(len(x))
	step := 0.15
	if o.rng.Intn(2) == 0 {
		step = -step
	}
	x[d] = clamp01(x[d] + step)
	return x
}

func perturb(x space.Vector, scale float64, rng *rand.Rand) space.Vector {
	out := make(space.Vector, len(x))
	for i := range x {
		out[i] = clamp01(x[i] + rng.NormFloat64()*scale)
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
