package baselines

import (
	"math"
	"math/rand"

	"vdtuner/internal/gp"
	"vdtuner/internal/mobo"
	"vdtuner/internal/space"
	"vdtuner/internal/vdms"
)

// QEHVI reimplements the qEHVI MOBO baseline (Daulton et al., NeurIPS'20)
// as the paper deploys it: independent GPs per objective over the flat
// 16-dimensional space (index type is just another dimension), Monte Carlo
// expected hypervolume improvement with the reference point at zero, and
// 10 LHS warm-up samples. Unlike VDTuner it has no polling structure, no
// per-type normalization, and no budget allocation — the paper's ablation
// target (§V-C).
type QEHVI struct {
	rng        *rand.Rand
	hist       history
	initQueue  []space.Vector
	candidates int
}

// NewQEHVI creates the flat-space MOBO baseline with nInit LHS warm-up
// samples (the paper uses 10; nInit <= 0 means 10).
func NewQEHVI(seed int64, nInit int) *QEHVI {
	if nInit <= 0 {
		nInit = 10
	}
	rng := rand.New(rand.NewSource(seed))
	return &QEHVI{
		rng:        rng,
		initQueue:  space.LHSAcrossTypes(nInit, rng),
		candidates: 160,
	}
}

// Name implements the Method interface.
func (q *QEHVI) Name() string { return "qEHVI" }

// Next drains the warm-up queue, fits the two GPs on raw objectives, and
// maximizes MC-EHVI with reference point (0, 0).
func (q *QEHVI) Next() vdms.Config {
	if len(q.initQueue) > 0 {
		x := q.initQueue[0]
		q.initQueue = q.initQueue[1:]
		return space.Decode(x)
	}
	n := len(q.hist.obs)
	xs := make([][]float64, n)
	ya := make([]float64, n)
	yb := make([]float64, n)
	pts := make([]mobo.Point, n)
	// Scale raw objectives by their maxima so the zero reference point is
	// meaningful across objectives of very different magnitudes.
	mq, mr := q.hist.maxima()
	for i, ob := range q.hist.obs {
		xs[i] = ob.x
		ya[i] = ob.qps / mq
		yb[i] = ob.recall / mr
		pts[i] = mobo.Point{A: ya[i], B: yb[i]}
	}
	modelA, errA := gp.Fit(xs, ya)
	modelB, errB := gp.Fit(xs, yb)
	if errA != nil || errB != nil {
		return space.Decode(randomVector(q.rng))
	}
	ref := mobo.Point{A: 0, B: 0}
	front := mobo.Front(pts)

	// Candidate set: random plus perturbations of front members.
	frontIdx := mobo.NonDominated(pts)
	pick := randomVector(q.rng)
	pickV := math.Inf(-1)
	for i := 0; i < q.candidates; i++ {
		var c space.Vector
		if i%2 == 0 || len(frontIdx) == 0 {
			c = randomVector(q.rng)
		} else {
			anchor := q.hist.obs[frontIdx[q.rng.Intn(len(frontIdx))]].x
			c = perturb(anchor, 0.1, q.rng)
		}
		ma, va := modelA.Predict(c)
		mb, vb := modelB.Predict(c)
		v := mobo.EHVIExact(ma, math.Sqrt(va), mb, math.Sqrt(vb), ref, front)
		if v > pickV {
			pickV = v
			pick = c
		}
	}
	return space.Decode(pick)
}

// Observe records the evaluation result.
func (q *QEHVI) Observe(cfg vdms.Config, res vdms.Result) {
	q.hist.observe(space.Encode(cfg), res)
}
