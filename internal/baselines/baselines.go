// Package baselines implements the four competing auto-configuration
// methods the paper compares against (§V-A):
//
//	Random     Latin-hypercube sampling over the full space [33], [34]
//	OpenTuner  an AUC-bandit meta-search over numeric optimizers [20]
//	OtterTune  single-objective GP (weighted-sum reward) with EI [11]
//	qEHVI      flat-space MOBO with a zero reference point [24]
//
// Since no prior work tunes per-index-type parameter sets, the index type
// is treated as one more search dimension for every baseline, exactly as
// the paper does. All baselines share the worst-value substitution policy
// for failed configurations.
package baselines

import (
	"math/rand"

	"vdtuner/internal/space"
	"vdtuner/internal/vdms"
)

// observation is a shared evaluation record.
type observation struct {
	x      space.Vector
	qps    float64
	recall float64
	failed bool
}

// history provides the worst-value substitution and bookkeeping shared by
// every baseline.
type history struct {
	obs []observation
}

func (h *history) observe(x space.Vector, res vdms.Result) {
	o := observation{x: x, qps: res.QPS, recall: res.Recall, failed: res.Failed}
	if res.Failed {
		o.qps, o.recall = h.worst()
	}
	h.obs = append(h.obs, o)
}

func (h *history) worst() (qps, recall float64) {
	const eps = 1e-6
	qps, recall = eps, eps
	first := true
	for _, o := range h.obs {
		if o.failed {
			continue
		}
		if first || o.qps < qps {
			qps = o.qps
		}
		if first || o.recall < recall {
			recall = o.recall
		}
		first = false
	}
	if qps <= 0 {
		qps = eps
	}
	if recall <= 0 {
		recall = eps
	}
	return qps, recall
}

// maxima returns per-objective maxima for weighted-sum normalization.
func (h *history) maxima() (qps, recall float64) {
	for _, o := range h.obs {
		if o.qps > qps {
			qps = o.qps
		}
		if o.recall > recall {
			recall = o.recall
		}
	}
	if qps <= 0 {
		qps = 1
	}
	if recall <= 0 {
		recall = 1
	}
	return qps, recall
}

// weightedSum is the scalar reward used by OpenTuner and OtterTune as the
// paper extends them: the equal-weight sum of max-normalized objectives.
func (h *history) weightedSum(o observation) float64 {
	mq, mr := h.maxima()
	return 0.5*o.qps/mq + 0.5*o.recall/mr
}

func (h *history) bestWeighted() (observation, float64, bool) {
	if len(h.obs) == 0 {
		return observation{}, 0, false
	}
	best := h.obs[0]
	bestV := h.weightedSum(best)
	for _, o := range h.obs[1:] {
		if v := h.weightedSum(o); v > bestV {
			best, bestV = o, v
		}
	}
	return best, bestV, true
}

// Random is the LHS baseline: space-filling samples, no learning.
type Random struct {
	rng   *rand.Rand
	hist  history
	batch []space.Vector
}

// NewRandom creates the LHS sampler.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements the Method interface.
func (r *Random) Name() string { return "Random" }

// Next returns the next Latin-hypercube sample, drawing a fresh stratified
// batch whenever the previous one is exhausted.
func (r *Random) Next() vdms.Config {
	if len(r.batch) == 0 {
		r.batch = space.LHSAcrossTypes(64, r.rng)
	}
	x := r.batch[0]
	r.batch = r.batch[1:]
	return space.Decode(x)
}

// Observe records the evaluation result.
func (r *Random) Observe(cfg vdms.Config, res vdms.Result) {
	r.hist.observe(space.Encode(cfg), res)
}
