package baselines

import (
	"math"
	"math/rand"

	"vdtuner/internal/gp"
	"vdtuner/internal/mobo"
	"vdtuner/internal/space"
	"vdtuner/internal/vdms"
)

// OtterTune reimplements the Gaussian-process-regression tuner of Van Aken
// et al. (SIGMOD'17) as the paper deploys it: a single-objective GP over
// the weighted-sum performance, expected-improvement acquisition, and 10
// LHS warm-up samples. The single objective cannot trade off speed and
// recall, which is the deficiency the paper highlights (§V-C).
type OtterTune struct {
	rng        *rand.Rand
	hist       history
	initQueue  []space.Vector
	candidates int
}

// NewOtterTune creates the weighted-sum GP tuner with nInit LHS warm-up
// samples (the paper uses 10; nInit <= 0 means 10).
func NewOtterTune(seed int64, nInit int) *OtterTune {
	if nInit <= 0 {
		nInit = 10
	}
	rng := rand.New(rand.NewSource(seed))
	return &OtterTune{
		rng:        rng,
		initQueue:  space.LHSAcrossTypes(nInit, rng),
		candidates: 160,
	}
}

// Name implements the Method interface.
func (o *OtterTune) Name() string { return "OtterTune" }

// Next drains the warm-up queue and then maximizes EI of the weighted-sum
// GP over a candidate set (random plus perturbations of the incumbent).
func (o *OtterTune) Next() vdms.Config {
	if len(o.initQueue) > 0 {
		x := o.initQueue[0]
		o.initQueue = o.initQueue[1:]
		return space.Decode(x)
	}
	xs := make([][]float64, len(o.hist.obs))
	ys := make([]float64, len(o.hist.obs))
	for i, ob := range o.hist.obs {
		xs[i] = ob.x
		ys[i] = o.hist.weightedSum(ob)
	}
	model, err := gp.Fit(xs, ys)
	if err != nil {
		return space.Decode(randomVector(o.rng))
	}
	best, bestV, _ := o.hist.bestWeighted()

	pick := randomVector(o.rng)
	pickV := math.Inf(-1)
	for i := 0; i < o.candidates; i++ {
		var c space.Vector
		if i%2 == 0 {
			c = randomVector(o.rng)
		} else {
			c = perturb(best.x, 0.1, o.rng)
		}
		mu, v := model.Predict(c)
		ei := mobo.EI(mu, math.Sqrt(v), bestV)
		if ei > pickV {
			pickV = ei
			pick = c
		}
	}
	return space.Decode(pick)
}

// Observe records the evaluation result.
func (o *OtterTune) Observe(cfg vdms.Config, res vdms.Result) {
	o.hist.observe(space.Encode(cfg), res)
}
