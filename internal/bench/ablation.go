package bench

import (
	"io"
	"math"
	"sort"

	"vdtuner/internal/core"
	"vdtuner/internal/index"
	"vdtuner/internal/mobo"
	"vdtuner/internal/space"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

// Figure8Cell is one ablation comparison point.
type Figure8Cell struct {
	Variant   string
	Sacrifice float64
	QPS       float64
}

// Figure8 reproduces both ablations: (a) successive abandon vs round
// robin, and (b) polling (NPI) surrogate vs native surrogate, reporting
// best QPS under each recall sacrifice on GloVe.
func Figure8(w io.Writer, o Options) ([]Figure8Cell, error) {
	ds, err := workload.Load(workload.GloVeLike(o.scale()))
	if err != nil {
		return nil, err
	}
	variants := []Method{
		core.New(core.Options{Seed: o.Seed}),
		core.New(core.Options{Seed: o.Seed, RoundRobin: true}),
		core.New(core.Options{Seed: o.Seed, NativeSurrogate: true}),
	}
	var cells []Figure8Cell
	fprintf(w, "Figure 8: budget-allocation and surrogate ablations on %s (%d iters)\n", ds.Name, o.iters())
	fprintf(w, "%-28s", "variant \\ sacrifice")
	for _, s := range Sacrifices {
		fprintf(w, " %8.3f", s)
	}
	fprintf(w, "\n")
	for _, m := range variants {
		tr := RunWorkers(ds, m, o.iters(), o.Workers)
		fprintf(w, "%-28s", m.Name())
		for _, s := range Sacrifices {
			qps, ok := tr.BestQPSUnderRecall(1 - s)
			cells = append(cells, Figure8Cell{Variant: m.Name(), Sacrifice: s, QPS: qps})
			if ok {
				fprintf(w, " %8.1f", qps)
			} else {
				fprintf(w, " %8s", "-")
			}
		}
		fprintf(w, "\n")
	}
	return cells, nil
}

// Figure9Point is the score weight of one index type at one iteration.
type Figure9Point struct {
	Iter    int
	Weights map[index.Type]float64
}

// Figure9 records VDTuner's dynamic index-type scores across a run: each
// iteration's Eq. 6 scores normalized to weights (abandoned types weigh
// zero), reproducing the scoring visualization.
func Figure9(w io.Writer, o Options) ([]Figure9Point, error) {
	ds, err := workload.Load(workload.GloVeLike(o.scale()))
	if err != nil {
		return nil, err
	}
	tn := core.New(core.Options{Seed: o.Seed})
	var points []Figure9Point
	for i := 0; i < o.iters(); i++ {
		cfg := tn.Next()
		res := vdms.Evaluate(ds, cfg)
		tn.Observe(cfg, res)

		scores := tn.Scores()
		weights := map[index.Type]float64{}
		total := 0.0
		for _, typ := range tn.Remaining() {
			s := scores[typ]
			if s < 0 {
				s = 0
			}
			weights[typ] = s
			total += s
		}
		if total > 0 {
			for typ := range weights {
				weights[typ] /= total
			}
		}
		points = append(points, Figure9Point{Iter: i, Weights: weights})
	}
	fprintf(w, "Figure 9: dynamic index scores on %s\n", ds.Name)
	last := points[len(points)-1]
	fprintf(w, "  final weights:")
	for _, typ := range index.AllTypes() {
		fprintf(w, " %s=%.2f", typ, last.Weights[typ])
	}
	fprintf(w, "\n  abandoned (in order):")
	tnAb := tn.Abandoned()
	for _, typ := range tnAb {
		fprintf(w, " %s", typ)
	}
	fprintf(w, "\n")
	return points, nil
}

// Figure10Point is one sampled configuration with its Pareto rank.
type Figure10Point struct {
	Variant   string
	IndexType index.Type
	QPS       float64
	Recall    float64
	OnFront   bool
}

// Figure10 dumps every configuration sampled by the polling surrogate and
// the native surrogate, with Pareto-front membership — the sampling
// quality scatter of Figure 10.
func Figure10(w io.Writer, o Options) ([]Figure10Point, error) {
	ds, err := workload.Load(workload.GloVeLike(o.scale()))
	if err != nil {
		return nil, err
	}
	variants := []Method{
		core.New(core.Options{Seed: o.Seed, NativeSurrogate: true}),
		core.New(core.Options{Seed: o.Seed}),
	}
	var points []Figure10Point
	fprintf(w, "Figure 10: sampling quality, native vs polling surrogate\n")
	for _, m := range variants {
		tr := RunWorkers(ds, m, o.iters(), o.Workers)
		var pts []mobo.Point
		for _, r := range tr.Records {
			pts = append(pts, mobo.Point{A: r.Result.QPS, B: r.Result.Recall})
		}
		onFront := map[int]bool{}
		for _, i := range mobo.NonDominated(pts) {
			onFront[i] = true
		}
		var recallSpread, qSum float64
		minR, maxR := 1.0, 0.0
		for i, r := range tr.Records {
			points = append(points, Figure10Point{
				Variant: m.Name(), IndexType: r.Config.IndexType,
				QPS: r.Result.QPS, Recall: r.Result.Recall, OnFront: onFront[i],
			})
			if !r.Result.Failed {
				if r.Result.Recall < minR {
					minR = r.Result.Recall
				}
				if r.Result.Recall > maxR {
					maxR = r.Result.Recall
				}
				qSum += r.Result.QPS
			}
		}
		recallSpread = maxR - minR
		fprintf(w, "  %-28s recall spread %.3f  mean QPS %.1f  front size %d\n",
			m.Name(), recallSpread, qSum/float64(len(tr.Records)), len(onFront))
	}
	return points, nil
}

// Table5Row is one dataset column of Table V: the best configuration's
// index type and its owned parameters.
type Table5Row struct {
	Dataset   string
	IndexType index.Type
	Params    map[string]float64
}

// Table5 reports the index type and representative parameters VDTuner
// recommends per dataset (GloVe-like, ArXiv-like, Keyword-like).
func Table5(w io.Writer, o Options) ([]Table5Row, error) {
	specs := []workload.Spec{
		workload.GloVeLike(o.scale()),
		workload.ArxivLike(o.scale()),
		workload.KeywordLike(o.scale()),
	}
	var rows []Table5Row
	fprintf(w, "Table V: best index and parameters across datasets (%d iters)\n", o.iters())
	for _, spec := range specs {
		ds, err := workload.Load(spec)
		if err != nil {
			return nil, err
		}
		tn := core.New(core.Options{Seed: o.Seed})
		tr := RunWorkers(ds, tn, o.iters(), o.Workers)
		obs := tr.Observations()
		// "Best": the most balanced non-dominated configuration.
		front := core.ParetoFront(obs)
		if len(front) == 0 {
			continue
		}
		var maxQ, maxR float64
		for _, f := range front {
			if f.ObjA > maxQ {
				maxQ = f.ObjA
			}
			if f.ObjB > maxR {
				maxR = f.ObjB
			}
		}
		best := front[0]
		bestGap := 2.0
		for _, f := range front {
			gap := abs(f.ObjA/maxQ - f.ObjB/maxR)
			if gap < bestGap {
				bestGap = gap
				best = f
			}
		}
		params := ownedParams(best.Config)
		rows = append(rows, Table5Row{Dataset: ds.Name, IndexType: best.Config.IndexType, Params: params})
		fprintf(w, "%-16s index: %-9s", ds.Name, best.Config.IndexType)
		names := make([]string, 0, len(params))
		for n := range params {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fprintf(w, "  %s: %.0f", n, params[n])
		}
		fprintf(w, "\n")
	}
	return rows, nil
}

// ownedParams extracts the index parameters the configuration's type owns.
func ownedParams(cfg vdms.Config) map[string]float64 {
	vals := map[space.Param]float64{
		space.NList:          float64(cfg.Build.NList),
		space.NProbe:         float64(cfg.Search.NProbe),
		space.PQM:            float64(cfg.Build.M),
		space.PQNBits:        float64(cfg.Build.NBits),
		space.HNSWM:          float64(cfg.Build.HNSWM),
		space.EfConstruction: float64(cfg.Build.EfConstruction),
		space.Ef:             float64(cfg.Search.Ef),
		space.ReorderK:       float64(cfg.Search.ReorderK),
	}
	out := map[string]float64{}
	for p, v := range vals {
		d := space.Lookup(p)
		if d.Owners != nil && space.OwnedBy(p, cfg.IndexType) {
			out[d.Name] = v
		}
	}
	return out
}

// Figure11Point is the normalized value of tracked parameters at one
// iteration.
type Figure11Point struct {
	Iter   int
	Values map[string]float64
}

// Figure11 tracks how the recommended parameter values evolve across a
// VDTuner run on the high-dimensional dataset (exploration early,
// exploitation late).
func Figure11(w io.Writer, o Options) ([]Figure11Point, error) {
	ds, err := workload.Load(workload.GeoLike(o.scale()))
	if err != nil {
		return nil, err
	}
	tn := core.New(core.Options{Seed: o.Seed})
	tracked := []space.Param{space.NList, space.NProbe, space.SealProportion, space.GracefulTime}
	var points []Figure11Point
	for i := 0; i < o.iters(); i++ {
		cfg := tn.Next()
		res := vdms.Evaluate(ds, cfg)
		tn.Observe(cfg, res)
		x := space.Encode(cfg)
		vals := map[string]float64{}
		for _, p := range tracked {
			vals[space.Lookup(p).Name] = x[1+int(p)]
		}
		points = append(points, Figure11Point{Iter: i, Values: vals})
	}
	// Report early vs late dispersion per parameter.
	fprintf(w, "Figure 11: parameter convergence on %s\n", ds.Name)
	half := len(points) / 2
	for _, p := range tracked {
		name := space.Lookup(p).Name
		early := dispersion(points[:half], name)
		late := dispersion(points[half:], name)
		fprintf(w, "  %-24s early stddev %.3f  late stddev %.3f\n", name, early, late)
	}
	return points, nil
}

func dispersion(points []Figure11Point, name string) float64 {
	if len(points) == 0 {
		return 0
	}
	var mean float64
	for _, pt := range points {
		mean += pt.Values[name]
	}
	mean /= float64(len(points))
	var v float64
	for _, pt := range points {
		d := pt.Values[name] - mean
		v += d * d
	}
	return math.Sqrt(v / float64(len(points)))
}

// HolisticResult compares the holistic model against tuning each index
// type individually (§V-D).
type HolisticResult struct {
	HolisticType   index.Type
	IndividualType index.Type
	// CloseParams is the fraction of owned parameters whose values agree
	// within 5% of the parameter's range (paper: >80% of parameters
	// within 5%).
	CloseParams float64
}

// HolisticVsIndividual runs the holistic VDTuner and seven per-type
// tuners (budget split evenly), compares the selected index types and the
// closeness of recommended parameters.
func HolisticVsIndividual(w io.Writer, o Options) (*HolisticResult, error) {
	ds, err := workload.Load(workload.GloVeLike(o.scale()))
	if err != nil {
		return nil, err
	}
	holTn := core.New(core.Options{Seed: o.Seed})
	hol := RunWorkers(ds, holTn, o.iters(), o.Workers)
	holBest, ok := core.BestUnderRecall(hol.Observations(), 0.85)
	if !ok {
		holBest, _ = core.BestUnderRecall(hol.Observations(), 0)
	}

	perType := o.iters() / len(index.AllTypes())
	if perType < 3 {
		perType = 3
	}
	var indBest core.Observation
	found := false
	for _, typ := range index.AllTypes() {
		typ := typ
		tn := core.New(core.Options{Seed: o.Seed, FixedType: &typ})
		tr := RunWorkers(ds, tn, perType, o.Workers)
		b, ok := core.BestUnderRecall(tr.Observations(), 0.85)
		if !ok {
			b, ok = core.BestUnderRecall(tr.Observations(), 0)
		}
		if ok && (!found || b.ObjA > indBest.ObjA) {
			indBest = b
			found = true
		}
	}
	res := &HolisticResult{
		HolisticType:   holBest.Config.IndexType,
		IndividualType: indBest.Config.IndexType,
	}
	// Parameter closeness over shared (system) parameters plus owned
	// index parameters when the types agree.
	xa := space.Encode(holBest.Config)
	xb := space.Encode(indBest.Config)
	n, close := 0, 0
	for p := 0; p < space.NumParams; p++ {
		d := space.Lookup(space.Param(p))
		if d.Owners != nil && (res.HolisticType != res.IndividualType ||
			!space.OwnedBy(space.Param(p), res.HolisticType)) {
			continue
		}
		n++
		if abs(xa[1+p]-xb[1+p]) <= 0.05 {
			close++
		}
	}
	if n > 0 {
		res.CloseParams = float64(close) / float64(n)
	}
	fprintf(w, "Holistic vs individual (§V-D): holistic picks %s, individual picks %s, %.0f%% of comparable params within 5%%\n",
		res.HolisticType, res.IndividualType, res.CloseParams*100)
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
