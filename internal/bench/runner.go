// Package bench is the experiment harness: it drives tuning methods
// against the engine and regenerates every table and figure of the
// paper's evaluation (§V). Each Figure*/Table* function prints the same
// rows/series the paper reports and returns the underlying data for
// programmatic checks. See DESIGN.md for the experiment index.
package bench

import (
	"fmt"
	"io"
	"time"

	"vdtuner/internal/core"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

// Method is the tuning interface every optimizer implements (VDTuner, its
// ablations, and the four baselines).
type Method interface {
	// Name identifies the method in reports.
	Name() string
	// Next proposes the next configuration to evaluate.
	Next() vdms.Config
	// Observe feeds back the evaluation result of the last proposal.
	Observe(cfg vdms.Config, res vdms.Result)
}

// IterRecord is one tuning iteration in a trace.
type IterRecord struct {
	Iter   int
	Config vdms.Config
	Result vdms.Result
	// RecommendSeconds is the wall-clock time the method spent choosing
	// this configuration (paper Table VI "Configuration Recommendation").
	RecommendSeconds float64
	// ReplaySeconds is the simulated workload-replay time of this
	// iteration (paper Table VI "Workload Replay").
	ReplaySeconds float64
}

// Trace is a completed tuning run.
type Trace struct {
	Method  string
	Dataset string
	Records []IterRecord
}

// Run drives method m for iters iterations against ds, recording wall
// recommendation time and simulated replay time per iteration. It
// evaluates with the default worker pool (one worker per CPU); use
// RunWorkers to pin the pool size.
func Run(ds *workload.Dataset, m Method, iters int) *Trace {
	return RunWorkers(ds, m, iters, 0)
}

// RunWorkers is Run with an explicit replay worker-pool size (<= 0 means
// one worker per CPU). Traces are identical for any value — evaluation is
// deterministic — so the knob only changes how fast the experiment runs.
func RunWorkers(ds *workload.Dataset, m Method, iters, workers int) *Trace {
	tr := &Trace{Method: m.Name(), Dataset: ds.Name}
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		cfg := m.Next()
		rec := time.Since(t0).Seconds()
		res := vdms.EvaluateWorkers(ds, cfg, workers)
		m.Observe(cfg, res)
		tr.Records = append(tr.Records, IterRecord{
			Iter: i, Config: cfg, Result: res,
			RecommendSeconds: rec,
			ReplaySeconds:    res.ReplaySeconds,
		})
	}
	return tr
}

// BestQPSUnderRecall returns the best QPS among iterations whose recall
// strictly exceeds floor; ok is false when none qualifies.
func (tr *Trace) BestQPSUnderRecall(floor float64) (float64, bool) {
	best, found := 0.0, false
	for _, r := range tr.Records {
		if r.Result.Failed || r.Result.Recall <= floor {
			continue
		}
		if r.Result.QPS > best {
			best = r.Result.QPS
			found = true
		}
	}
	return best, found
}

// BestCurve returns the best-so-far QPS per iteration under a recall
// floor (zero until the first feasible observation) — the series of
// Figures 7 and 12.
func (tr *Trace) BestCurve(floor float64) []float64 {
	out := make([]float64, len(tr.Records))
	best := 0.0
	for i, r := range tr.Records {
		if !r.Result.Failed && r.Result.Recall > floor && r.Result.QPS > best {
			best = r.Result.QPS
		}
		out[i] = best
	}
	return out
}

// ItersToReach returns the first iteration index (1-based) at which the
// best-so-far QPS under floor reaches target, or 0 if never.
func (tr *Trace) ItersToReach(target, floor float64) int {
	for i, v := range tr.BestCurve(floor) {
		if v >= target {
			return i + 1
		}
	}
	return 0
}

// SimTimeToReach returns the cumulative simulated tuning time (replay
// seconds) up to the first iteration reaching target under floor, or 0 if
// never reached.
func (tr *Trace) SimTimeToReach(target, floor float64) float64 {
	it := tr.ItersToReach(target, floor)
	if it == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range tr.Records[:it] {
		sum += r.ReplaySeconds
	}
	return sum
}

// TotalRecommendSeconds sums the method's wall-clock recommendation time.
func (tr *Trace) TotalRecommendSeconds() float64 {
	sum := 0.0
	for _, r := range tr.Records {
		sum += r.RecommendSeconds
	}
	return sum
}

// TotalReplaySeconds sums the simulated replay time.
func (tr *Trace) TotalReplaySeconds() float64 {
	sum := 0.0
	for _, r := range tr.Records {
		sum += r.ReplaySeconds
	}
	return sum
}

// Observations converts a trace into core observations (QPS/recall
// objectives), for Pareto analysis shared with the tuner's reporting.
func (tr *Trace) Observations() []core.Observation {
	out := make([]core.Observation, 0, len(tr.Records))
	for _, r := range tr.Records {
		out = append(out, core.Observation{
			Config: r.Config, Type: r.Config.IndexType,
			ObjA: r.Result.QPS, ObjB: r.Result.Recall, Result: r.Result,
		})
	}
	return out
}

// Options controls experiment scale so the suite can run from quick tests
// (small Scale/Iters) to full reproductions.
type Options struct {
	// Scale shrinks or grows the generated datasets (1.0 = defaults).
	Scale workload.Scale
	// Iters is the tuning iteration budget per method (paper: 200).
	Iters int
	// Seed drives all methods.
	Seed int64
	// Workers is the replay worker-pool size passed through to
	// vdms.EvaluateWorkers; <= 0 means one worker per CPU. Experiment
	// outputs are identical for any value (evaluation is deterministic);
	// the knob exists so the harness can be pinned when benchmarking the
	// engine's own scaling.
	Workers int
}

func (o Options) scale() workload.Scale {
	if o.Scale == 0 {
		return 0.25
	}
	return o.Scale
}

func (o Options) iters() int {
	if o.Iters == 0 {
		return 60
	}
	return o.Iters
}

// Sacrifices are the recall-sacrifice levels of Figures 6–8: recall floor
// is 1 − sacrifice.
var Sacrifices = []float64{0.15, 0.125, 0.1, 0.075, 0.05, 0.025, 0.01}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
