package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"vdtuner/internal/index"
	"vdtuner/internal/server"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

// The wire experiment: the end-to-end access layer measured through real
// TCP connections, not in-process calls. The same engine and query set
// are replayed as SearchBatch calls under three client modes — the
// newline-delimited JSON protocol serially, the binary protocol serially
// (framing and raw-float encoding without pipelining), and the binary
// protocol with concurrent pipelined callers on one connection — so the
// protocol overhead and the pipelining win are isolated from everything
// below the socket. SearchBatch is the hot production op: the engine
// answers a batch through the tiled multi-query kernels, so per-query
// engine time is small and what separates the modes is what each wire
// costs — ASCII floats decoded and encoded per call versus raw little-
// endian payloads, and serial round-trip waits versus overlapped frames.
// Recall is measured against exact ground truth and must be identical
// across modes: the wire must never change what the engine answers.

// WireProtocol names one measured client mode.
const (
	WireJSONSerial      = "json-serial"
	WireBinarySerial    = "binary-serial"
	WireBinaryPipelined = "binary-pipelined"
)

// WireResult is the measured performance of one protocol mode.
type WireResult struct {
	// Protocol is one of the Wire* mode names.
	Protocol string
	// Queries is how many individual queries the mode served (calls are
	// batches).
	Queries int
	// QPS is served queries per wall-clock second.
	QPS float64
	// P50 and P99 are per-call (batch) latency percentiles.
	P50 time.Duration
	P99 time.Duration
	// Recall is mean recall@K against exact ground truth.
	Recall float64
}

// WireOptions scales the wire experiment.
type WireOptions struct {
	// Scale shrinks or grows the GloVe-like corpus (0 = 0.25).
	Scale workload.Scale
	// K is the search depth (0 = the dataset's K).
	K int
	// Rounds replays the dataset's query set this many times per mode
	// (0 = 4); more rounds stabilize the percentiles.
	Rounds int
	// Batch is how many queries each SearchBatch call carries (0 = 12).
	Batch int
	// Pipeline is how many concurrent callers share the pipelined binary
	// connection (0 = 4).
	Pipeline int
	// Protocols selects which modes to run, in order (nil = all three).
	Protocols []string
}

func (o WireOptions) scale() workload.Scale {
	if o.Scale == 0 {
		return 0.25
	}
	return o.Scale
}

func (o WireOptions) rounds() int {
	if o.Rounds <= 0 {
		return 4
	}
	return o.Rounds
}

func (o WireOptions) batch() int {
	if o.Batch <= 0 {
		return 12
	}
	return o.Batch
}

func (o WireOptions) pipeline() int {
	if o.Pipeline <= 0 {
		return 4
	}
	return o.Pipeline
}

func (o WireOptions) protocols() []string {
	if len(o.Protocols) == 0 {
		return []string{WireJSONSerial, WireBinarySerial, WireBinaryPipelined}
	}
	return o.Protocols
}

// wireSearcher is the one method all three client modes share.
type wireSearcher interface {
	SearchBatch(queries [][]float32, k int) ([][]server.Neighbor, error)
}

// wireCall is one pre-sliced SearchBatch request: queries[first:first+n]
// of the dataset's query set.
type wireCall struct {
	queries [][]float32
	first   int
}

// sliceCalls cuts the dataset's query set into SearchBatch calls.
func sliceCalls(ds *workload.Dataset, batch int) []wireCall {
	var calls []wireCall
	for i := 0; i < len(ds.Queries); i += batch {
		end := i + batch
		if end > len(ds.Queries) {
			end = len(ds.Queries)
		}
		calls = append(calls, wireCall{queries: ds.Queries[i:end], first: i})
	}
	return calls
}

// Wire runs the wire experiment: load a corpus into a live collection,
// serve it over a real TCP server, and measure QPS, latency percentiles,
// and recall for each protocol mode. Deterministic corpus and queries for
// a given Scale; timings are whatever the machine gives.
func Wire(w io.Writer, o WireOptions) ([]WireResult, error) {
	ds, err := workload.Load(workload.GloVeLike(o.scale()))
	if err != nil {
		return nil, err
	}
	k := o.K
	if k <= 0 {
		k = ds.K
	}
	// NProbe < NList: recall is a real, non-trivial number that must come
	// out identical across protocols, and per-query engine time is small
	// enough that the wire itself is what the modes are measuring.
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.IVFFlat
	cfg.Build.NList = 32
	cfg.Search.NProbe = 8
	coll, err := vdms.NewCollection(cfg, ds.Metric, ds.Dim, len(ds.Vectors))
	if err != nil {
		return nil, err
	}
	defer coll.Close()
	ids, err := coll.Insert(ds.Vectors)
	if err != nil {
		return nil, err
	}
	if err := coll.Flush(); err != nil {
		return nil, err
	}
	// Ground truth speaks vector positions; the engine speaks assigned
	// ids. Map back before scoring recall.
	pos := make(map[int64]int64, len(ids))
	for p, id := range ids {
		pos[id] = int64(p)
	}

	srv, err := server.New(coll, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	calls := sliceCalls(ds, o.batch())
	var out []WireResult
	for _, proto := range o.protocols() {
		var res *WireResult
		switch proto {
		case WireJSONSerial:
			jcl, derr := server.Dial(srv.Addr())
			if derr != nil {
				return nil, derr
			}
			res, err = wireSerial(WireJSONSerial, jcl, ds, calls, pos, k, o.rounds())
			jcl.Close()
		case WireBinarySerial:
			bcl, derr := server.DialBinary(srv.Addr())
			if derr != nil {
				return nil, derr
			}
			res, err = wireSerial(WireBinarySerial, bcl, ds, calls, pos, k, o.rounds())
			bcl.Close()
		case WireBinaryPipelined:
			bcl, derr := server.DialBinary(srv.Addr())
			if derr != nil {
				return nil, derr
			}
			res, err = wirePipelined(bcl, ds, calls, pos, k, o.rounds(), o.pipeline())
			bcl.Close()
		default:
			return nil, fmt.Errorf("bench: unknown wire protocol %q", proto)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, *res)
	}

	fprintf(w, "Wire: end-to-end server protocols on %s (%d rows, %d queries x %d rounds, batch=%d, k=%d, pipeline=%d)\n",
		ds.Name, len(ds.Vectors), len(ds.Queries), o.rounds(), o.batch(), k, o.pipeline())
	fprintf(w, "%18s %10s %12s %12s %8s\n", "protocol", "qps", "p50", "p99", "recall")
	for _, r := range out {
		fprintf(w, "%18s %10.0f %12s %12s %8.3f\n", r.Protocol, r.QPS, r.P50, r.P99, r.Recall)
	}
	return out, nil
}

// wireSerial replays the call list one SearchBatch at a time on one
// client.
func wireSerial(name string, cl wireSearcher, ds *workload.Dataset, calls []wireCall, pos map[int64]int64, k, rounds int) (*WireResult, error) {
	lat := make([]time.Duration, 0, rounds*len(calls))
	recalls := make([]float64, len(ds.Queries))
	queries := 0
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, call := range calls {
			t0 := time.Now()
			batches, err := cl.SearchBatch(call.queries, k)
			if err != nil {
				return nil, fmt.Errorf("bench: %s searchBatch: %w", name, err)
			}
			lat = append(lat, time.Since(t0))
			queries += len(call.queries)
			if r == 0 {
				scoreCall(ds, pos, call, batches, recalls)
			}
		}
	}
	elapsed := time.Since(start)
	res := summarizeWire(name, lat, queries, elapsed)
	res.Recall = meanRecall(recalls)
	return res, nil
}

// wirePipelined replays the call list with `pipeline` goroutines sharing
// one binary connection; each in-flight SearchBatch is a pipelined frame.
func wirePipelined(cl *server.BinClient, ds *workload.Dataset, calls []wireCall, pos map[int64]int64, k, rounds, pipeline int) (*WireResult, error) {
	total := rounds * len(calls)
	lat := make([]time.Duration, total)
	recalls := make([]float64, len(ds.Queries))
	var recallMu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, pipeline)
	next := make(chan int, total)
	for i := 0; i < total; i++ {
		next <- i
	}
	close(next)
	queries := 0
	for _, c := range calls {
		queries += rounds * len(c.queries)
	}
	start := time.Now()
	for wkr := 0; wkr < pipeline; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				call := calls[i%len(calls)]
				t0 := time.Now()
				batches, err := cl.SearchBatch(call.queries, k)
				if err != nil {
					select {
					case errCh <- fmt.Errorf("bench: pipelined searchBatch: %w", err):
					default:
					}
					return
				}
				lat[i] = time.Since(t0)
				if i < len(calls) {
					recallMu.Lock()
					scoreCall(ds, pos, call, batches, recalls)
					recallMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	res := summarizeWire(WireBinaryPipelined, lat, queries, elapsed)
	res.Recall = meanRecall(recalls)
	return res, nil
}

// scoreCall fills recalls[qi] for every query the call carried.
func scoreCall(ds *workload.Dataset, pos map[int64]int64, call wireCall, batches [][]server.Neighbor, recalls []float64) {
	for j, hits := range batches {
		qi := call.first + j
		truth := ds.Truth[qi]
		want := make(map[int64]struct{}, len(truth))
		for _, id := range truth {
			want[id] = struct{}{}
		}
		hit := 0
		for _, h := range hits {
			if _, ok := want[pos[h.ID]]; ok {
				hit++
			}
		}
		recalls[qi] = float64(hit) / float64(len(truth))
	}
}

func meanRecall(recalls []float64) float64 {
	var sum float64
	for _, r := range recalls {
		sum += r
	}
	return sum / float64(len(recalls))
}

func summarizeWire(name string, lat []time.Duration, queries int, elapsed time.Duration) *WireResult {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) time.Duration {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return &WireResult{
		Protocol: name,
		Queries:  queries,
		QPS:      float64(queries) / elapsed.Seconds(),
		P50:      pct(0.50),
		P99:      pct(0.99),
	}
}
