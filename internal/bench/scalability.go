package bench

import (
	"io"
	"math"
	"math/rand"
	"sort"

	"vdtuner/internal/core"
	"vdtuner/internal/gp"
	"vdtuner/internal/shap"
	"vdtuner/internal/space"
	"vdtuner/internal/workload"
)

// Figure12Series is one tuner variant's best-so-far curve across the two
// sequential recall-preference phases.
type Figure12Series struct {
	Variant string
	// Curve085 and Curve09 are best-so-far QPS under the active floor,
	// per iteration, for the two phases (floors 0.85 then 0.9).
	Curve085 []float64
	Curve09  []float64
}

// Figure12 reproduces the user-preference study: three VDTuner variants
// optimize recall > 0.85 and then recall > 0.9 in sequence — (1) no
// constraint model, (2) constraint model only, (3) constraint model plus
// bootstrapping from the first phase's data.
func Figure12(w io.Writer, o Options) ([]Figure12Series, error) {
	ds, err := workload.Load(workload.GloVeLike(o.scale()))
	if err != nil {
		return nil, err
	}
	iters := o.iters()

	var out []Figure12Series

	// Variant 1: no constraint model, no bootstrapping — plain
	// bi-objective VDTuner rerun per phase.
	{
		tr1 := RunWorkers(ds, core.New(core.Options{Seed: o.Seed}), iters, o.Workers)
		tr2 := RunWorkers(ds, core.New(core.Options{Seed: o.Seed + 1}), iters, o.Workers)
		out = append(out, Figure12Series{
			Variant:  "VDTuner w/o constraint+bootstrap",
			Curve085: tr1.BestCurve(0.85),
			Curve09:  tr2.BestCurve(0.9),
		})
	}
	// Variant 2: constraint model, fresh start per phase.
	{
		tr1 := RunWorkers(ds, core.New(core.Options{Seed: o.Seed, RecallFloor: 0.85}), iters, o.Workers)
		tr2 := RunWorkers(ds, core.New(core.Options{Seed: o.Seed + 1, RecallFloor: 0.9}), iters, o.Workers)
		out = append(out, Figure12Series{
			Variant:  "VDTuner w/o bootstrap",
			Curve085: tr1.BestCurve(0.85),
			Curve09:  tr2.BestCurve(0.9),
		})
	}
	// Variant 3: constraint model + bootstrapping the second phase with
	// the first phase's observations.
	{
		tn1 := core.New(core.Options{Seed: o.Seed, RecallFloor: 0.85})
		tr1 := RunWorkers(ds, tn1, iters, o.Workers)
		tn2 := core.New(core.Options{Seed: o.Seed + 1, RecallFloor: 0.9,
			Bootstrap: tn1.Observations()})
		tr2 := RunWorkers(ds, tn2, iters, o.Workers)
		out = append(out, Figure12Series{
			Variant:  "VDTuner",
			Curve085: tr1.BestCurve(0.85),
			Curve09:  tr2.BestCurve(0.9),
		})
	}

	fprintf(w, "Figure 12: handling user recall preferences on %s (%d iters/phase)\n", ds.Name, iters)
	for _, s := range out {
		fprintf(w, "  %-34s final@0.85 %9.1f  final@0.9 %9.1f\n",
			s.Variant, last(s.Curve085), last(s.Curve09))
	}
	return out, nil
}

func last(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return v[len(v)-1]
}

// Figure13Result aggregates the cost-effectiveness study.
type Figure13Result struct {
	// RelQPD and RelQPS compare optimizing QP$ against optimizing QPS:
	// achieved QP$ ratio and QPS ratio under each sacrifice level.
	RelQPD map[float64]float64
	RelQPS map[float64]float64
	// MemoryMeanQPD/QPS and the stddevs compare sampled memory
	// footprints (GiB-equivalents) of the two objectives.
	MemoryMeanQPD, MemoryStdQPD float64
	MemoryMeanQPS, MemoryStdQPS float64
	// MemAttr and QPSAttr are SHAP attributions of parameter groups to
	// memory usage and search speed (Figure 13b).
	MemAttr, QPSAttr map[string]float64
}

// Figure13 reproduces the cost-aware optimization study: tune QP$ vs QPS
// on the high-dimensional dataset, compare achieved cost-effectiveness,
// speed and memory, and attribute memory/speed to parameter groups with
// SHAP on a GP surrogate.
func Figure13(w io.Writer, o Options) (*Figure13Result, error) {
	ds, err := workload.Load(workload.GeoLike(o.scale()))
	if err != nil {
		return nil, err
	}
	costTn := core.New(core.Options{Seed: o.Seed, CostAware: true})
	costTr := RunWorkers(ds, costTn, o.iters(), o.Workers)
	spdTn := core.New(core.Options{Seed: o.Seed})
	spdTr := RunWorkers(ds, spdTn, o.iters(), o.Workers)

	res := &Figure13Result{
		RelQPD: map[float64]float64{},
		RelQPS: map[float64]float64{},
	}
	bestUnder := func(tr *Trace, floor float64, qpd bool) float64 {
		best := 0.0
		for _, r := range tr.Records {
			if r.Result.Failed || r.Result.Recall <= floor {
				continue
			}
			v := r.Result.QPS
			if qpd {
				v = core.CostEffectiveness(r.Result)
			}
			if v > best {
				best = v
			}
		}
		return best
	}
	for _, s := range Sacrifices {
		floor := 1 - s
		cq := bestUnder(costTr, floor, true)
		sq := bestUnder(spdTr, floor, true)
		if sq > 0 {
			res.RelQPD[s] = cq / sq
		}
		cs := bestUnder(costTr, floor, false)
		ss := bestUnder(spdTr, floor, false)
		if ss > 0 {
			res.RelQPS[s] = cs / ss
		}
	}
	res.MemoryMeanQPD, res.MemoryStdQPD = memStats(costTr)
	res.MemoryMeanQPS, res.MemoryStdQPS = memStats(spdTr)

	// SHAP attribution on GP surrogates fitted to the cost run's samples.
	memAttr, qpsAttr, err := shapAttribution(costTr, spdTr, o.Seed)
	if err == nil {
		res.MemAttr = memAttr
		res.QPSAttr = qpsAttr
	}

	fprintf(w, "Figure 13: cost-effectiveness vs search-speed optimization on %s\n", ds.Name)
	fprintf(w, "  memory (GiB-eq): QP$ run %.2f ± %.2f, QPS run %.2f ± %.2f\n",
		res.MemoryMeanQPD, res.MemoryStdQPD, res.MemoryMeanQPS, res.MemoryStdQPS)
	for _, s := range Sacrifices {
		fprintf(w, "  sacrifice %.3f: rel QP$ %.3f  rel QPS %.3f\n", s, res.RelQPD[s], res.RelQPS[s])
	}
	if res.MemAttr != nil {
		fprintf(w, "  SHAP → memory:")
		printAttr(w, res.MemAttr)
		fprintf(w, "  SHAP → QPS:   ")
		printAttr(w, res.QPSAttr)
	}
	return res, nil
}

func printAttr(w io.Writer, attr map[string]float64) {
	names := make([]string, 0, len(attr))
	for n := range attr {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return math.Abs(attr[names[i]]) > math.Abs(attr[names[j]]) })
	for _, n := range names {
		fprintf(w, " %s=%+.3f", n, attr[n])
	}
	fprintf(w, "\n")
}

func memStats(tr *Trace) (mean, std float64) {
	var n float64
	for _, r := range tr.Records {
		if r.Result.Failed {
			continue
		}
		mean += core.MemGiB(r.Result.MemoryBytes)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	mean /= n
	for _, r := range tr.Records {
		if r.Result.Failed {
			continue
		}
		d := core.MemGiB(r.Result.MemoryBytes) - mean
		std += d * d
	}
	return mean, math.Sqrt(std / n)
}

// shapAttribution fits GP surrogates for memory and QPS on the union of
// both runs' samples and computes grouped SHAP values at the best sampled
// configuration against the mean configuration.
func shapAttribution(a, b *Trace, seed int64) (memAttr, qpsAttr map[string]float64, err error) {
	var xs [][]float64
	var mem, qps []float64
	var bestX []float64
	bestQPS := -1.0
	for _, tr := range []*Trace{a, b} {
		for _, r := range tr.Records {
			if r.Result.Failed {
				continue
			}
			x := space.Encode(r.Config)
			xs = append(xs, x)
			mem = append(mem, core.MemGiB(r.Result.MemoryBytes))
			qps = append(qps, r.Result.QPS)
			if r.Result.QPS > bestQPS {
				bestQPS = r.Result.QPS
				bestX = x
			}
		}
	}
	if len(xs) < 8 {
		return nil, nil, errTooFewSamples
	}
	memModel, err := gp.Fit(xs, mem)
	if err != nil {
		return nil, nil, err
	}
	qpsModel, err := gp.Fit(xs, qps)
	if err != nil {
		return nil, nil, err
	}
	background := make([]float64, space.Dims)
	for _, x := range xs {
		for i := range x {
			background[i] += x[i]
		}
	}
	for i := range background {
		background[i] /= float64(len(xs))
	}
	groups := map[string][]int{
		"index_type":      {0},
		"nprobe":          {1 + int(space.NProbe)},
		"segment_maxSize": {1 + int(space.SegmentMaxSize)},
		"insertBufSize":   {1 + int(space.InsertBufSize)},
	}
	var rest []int
	used := map[int]bool{0: true}
	for _, dims := range groups {
		for _, d := range dims {
			used[d] = true
		}
	}
	for d := 1; d < space.Dims; d++ {
		if !used[d] {
			rest = append(rest, d)
		}
	}
	groups["other"] = rest

	rng := rand.New(rand.NewSource(seed))
	memAttr, err = shap.GroupValues(func(x []float64) float64 {
		m, _ := memModel.Predict(x)
		return m
	}, bestX, background, groups, 60, rng)
	if err != nil {
		return nil, nil, err
	}
	qpsAttr, err = shap.GroupValues(func(x []float64) float64 {
		m, _ := qpsModel.Predict(x)
		return m
	}, bestX, background, groups, 60, rng)
	if err != nil {
		return nil, nil, err
	}
	return memAttr, qpsAttr, nil
}

var errTooFewSamples = errorString("bench: too few samples for SHAP attribution")

type errorString string

func (e errorString) Error() string { return string(e) }

// Table6Row is one method's tuning-time breakdown.
type Table6Row struct {
	Method string
	// RecommendSeconds is wall-clock configuration recommendation time.
	RecommendSeconds float64
	// ReplaySeconds is the simulated workload replay time.
	ReplaySeconds float64
	// Total is their sum; Share is recommendation's share of the total.
	Total float64
	Share float64
}

// Table6 reproduces the overhead breakdown: per method, configuration
// recommendation time (wall clock) versus workload replay (simulated).
func Table6(w io.Writer, o Options) ([]Table6Row, error) {
	ds, err := workload.Load(workload.GloVeLike(o.scale()))
	if err != nil {
		return nil, err
	}
	var rows []Table6Row
	fprintf(w, "Table VI: time breakdown for %d iterations\n", o.iters())
	fprintf(w, "%-26s %14s %14s %14s %8s\n", "method", "recommend (s)", "replay (s)", "total (s)", "share")
	for _, m := range AllMethods(o.Seed) {
		tr := RunWorkers(ds, m, o.iters(), o.Workers)
		r := Table6Row{
			Method:           m.Name(),
			RecommendSeconds: tr.TotalRecommendSeconds(),
			ReplaySeconds:    tr.TotalReplaySeconds(),
		}
		r.Total = r.RecommendSeconds + r.ReplaySeconds
		if r.Total > 0 {
			r.Share = r.RecommendSeconds / r.Total
		}
		rows = append(rows, r)
		fprintf(w, "%-26s %14.1f %14.1f %14.1f %7.2f%%\n",
			r.Method, r.RecommendSeconds, r.ReplaySeconds, r.Total, r.Share*100)
	}
	return rows, nil
}

// ScalabilityResult compares VDTuner to qEHVI on the 10x dataset.
type ScalabilityResult struct {
	Floor          float64
	VDTunerQPS     float64
	QEHVIQPS       float64
	SpeedupPercent float64
	// TimeRatio is qEHVI's simulated time to reach qEHVI's own best,
	// divided by VDTuner's time to reach that same level (>1 means
	// VDTuner is faster).
	TimeRatio float64
}

// Scalability reproduces the §V-E large-dataset study on the 10x
// deep-image-like corpus, comparing VDTuner with the strongest baseline
// (qEHVI).
func Scalability(w io.Writer, o Options) (*ScalabilityResult, error) {
	// The corpus is 10x GloVe; shrink the scale to keep runtime sane.
	ds, err := workload.Load(workload.DeepImageLike(o.scale() / 2))
	if err != nil {
		return nil, err
	}
	const floor = 0.9
	vt := RunWorkers(ds, newVDTuner(o.Seed), o.iters(), o.Workers)
	qe := RunWorkers(ds, newBaselines(o.Seed)[3], o.iters(), o.Workers)

	vq, _ := vt.BestQPSUnderRecall(floor)
	qq, _ := qe.BestQPSUnderRecall(floor)
	res := &ScalabilityResult{Floor: floor, VDTunerQPS: vq, QEHVIQPS: qq}
	if qq > 0 {
		res.SpeedupPercent = (vq - qq) / qq * 100
		vTime := vt.SimTimeToReach(qq, floor)
		qTime := qe.SimTimeToReach(qq, floor)
		if vTime > 0 {
			res.TimeRatio = qTime / vTime
		}
	}
	fprintf(w, "Scalability (%s, %d vectors): VDTuner %.1f QPS vs qEHVI %.1f QPS at recall>%.2f (%+.0f%%), tuning speedup %.1fx\n",
		ds.Name, len(ds.Vectors), res.VDTunerQPS, res.QEHVIQPS, floor, res.SpeedupPercent, res.TimeRatio)
	return res, nil
}
