package bench

import (
	"io"
	"strings"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

// tiny returns experiment options small enough for unit tests.

// skipIfRace skips a macro figure/table reproduction under the race
// detector: these are deterministic single-flow simulations already
// exercised by the plain suite, and their order-of-magnitude race
// slowdown blows the package timeout on small machines. The suites that
// actually exercise concurrency under -race live in the parallel, index,
// vdms, and server packages.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("macro experiment skipped under -race; concurrency is race-tested in parallel/index/vdms/server")
	}
}

func tiny() Options { return Options{Scale: 0.12, Iters: 16, Seed: 5} }

func TestRunProducesTrace(t *testing.T) {
	ds, err := workload.Load(workload.GloVeLike(0.1))
	if err != nil {
		t.Fatal(err)
	}
	tr := Run(ds, newVDTuner(1), 8)
	if len(tr.Records) != 8 {
		t.Fatalf("trace has %d records", len(tr.Records))
	}
	if tr.Method == "" || tr.Dataset == "" {
		t.Fatalf("trace missing labels: %+v", tr)
	}
	for i, r := range tr.Records {
		if r.Iter != i {
			t.Fatalf("record %d has iter %d", i, r.Iter)
		}
		if !r.Result.Failed && r.ReplaySeconds <= 0 {
			t.Fatalf("record %d has no replay time", i)
		}
	}
}

func TestTraceAnalysis(t *testing.T) {
	tr := &Trace{Method: "m", Dataset: "d"}
	add := func(qps, recall float64, failed bool) {
		tr.Records = append(tr.Records, IterRecord{
			Iter:          len(tr.Records),
			Result:        vdms.Result{QPS: qps, Recall: recall, Failed: failed},
			ReplaySeconds: 10,
		})
	}
	add(100, 0.8, false)
	add(300, 0.95, false)
	add(500, 0.7, false)
	add(999, 0.99, true) // failed: must be ignored

	if q, ok := tr.BestQPSUnderRecall(0.9); !ok || q != 300 {
		t.Fatalf("BestQPSUnderRecall(0.9) = %v, %v", q, ok)
	}
	if q, ok := tr.BestQPSUnderRecall(0.5); !ok || q != 500 {
		t.Fatalf("BestQPSUnderRecall(0.5) = %v, %v", q, ok)
	}
	if _, ok := tr.BestQPSUnderRecall(0.999); ok {
		t.Fatal("found QPS above impossible floor")
	}
	curve := tr.BestCurve(0.9)
	want := []float64{0, 300, 300, 300}
	for i := range want {
		if curve[i] != want[i] {
			t.Fatalf("BestCurve = %v, want %v", curve, want)
		}
	}
	if it := tr.ItersToReach(300, 0.9); it != 2 {
		t.Fatalf("ItersToReach = %d, want 2", it)
	}
	if it := tr.ItersToReach(301, 0.9); it != 0 {
		t.Fatalf("ItersToReach unreachable = %d, want 0", it)
	}
	if ts := tr.SimTimeToReach(300, 0.9); ts != 20 {
		t.Fatalf("SimTimeToReach = %v, want 20", ts)
	}
}

func TestFigure1ShowsInterdependence(t *testing.T) {
	skipIfRace(t)
	cells, err := Figure1(io.Discard, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 36 {
		t.Fatalf("got %d cells, want 36", len(cells))
	}
	// The surface must not be flat: QPS must vary meaningfully.
	minQ, maxQ := cells[0].QPS, cells[0].QPS
	for _, c := range cells {
		if c.QPS < minQ {
			minQ = c.QPS
		}
		if c.QPS > maxQ {
			maxQ = c.QPS
		}
	}
	if maxQ < minQ*1.2 {
		t.Fatalf("heatmap flat: QPS range [%v, %v]", minQ, maxQ)
	}
}

func TestFigure2MarksBestPerConfig(t *testing.T) {
	skipIfRace(t)
	rows, err := Figure2(io.Discard, tiny())
	if err != nil {
		t.Fatal(err)
	}
	bestCount := map[int]int{}
	for _, r := range rows {
		if r.Best {
			bestCount[r.SystemConfig]++
		}
	}
	for sc := 1; sc <= 4; sc++ {
		if bestCount[sc] != 1 {
			t.Fatalf("system config %d has %d best marks", sc, bestCount[sc])
		}
	}
}

func TestFigure3ProfilesAndCurves(t *testing.T) {
	skipIfRace(t)
	profiles, curves, err := Figure3(io.Discard, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2*len(index.AllTypes()) {
		t.Fatalf("got %d profiles", len(profiles))
	}
	if len(curves) != len(index.AllTypes()) {
		t.Fatalf("got %d curves", len(curves))
	}
	for _, c := range curves {
		for i := 1; i < len(c.Best); i++ {
			if c.Best[i] < c.Best[i-1] {
				t.Fatalf("%v best-so-far curve decreased", c.IndexType)
			}
		}
	}
	// FLAT must have recall 1.0 in every dataset profile.
	for _, p := range profiles {
		if p.IndexType == index.Flat && p.Recall < 0.999 {
			t.Fatalf("FLAT profile recall = %v", p.Recall)
		}
	}
}

func TestTable4ReportsImprovements(t *testing.T) {
	skipIfRace(t)
	rows, err := Table4(io.Discard, Options{Scale: 0.12, Iters: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	anyImprovement := false
	for _, r := range rows {
		if r.SpeedImprovement < 0 || r.RecallImprovement < 0 {
			t.Fatalf("negative improvement: %+v", r)
		}
		if r.SpeedImprovement > 0 || r.RecallImprovement > 0 {
			anyImprovement = true
		}
	}
	if !anyImprovement {
		t.Fatal("tuning improved nothing on any dataset")
	}
}

func TestFigure6CoversAllCells(t *testing.T) {
	skipIfRace(t)
	o := Options{Scale: 0.1, Iters: 10, Seed: 3}
	cells, err := Figure6(io.Discard, o)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * 5 * len(Sacrifices)
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	methods := map[string]bool{}
	for _, c := range cells {
		methods[c.Method] = true
	}
	for _, name := range []string{"VDTuner", "Random", "OpenTuner", "OtterTune", "qEHVI"} {
		if !methods[name] {
			t.Fatalf("method %s missing from Figure 6", name)
		}
	}
}

func TestFigure7CurvesMonotone(t *testing.T) {
	skipIfRace(t)
	series, err := Figure7(io.Discard, Options{Scale: 0.1, Iters: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5*5 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		for i := 1; i < len(s.Curve); i++ {
			if s.Curve[i] < s.Curve[i-1] {
				t.Fatalf("%s curve decreased", s.Method)
			}
		}
	}
}

func TestFigure8ThreeVariants(t *testing.T) {
	skipIfRace(t)
	cells, err := Figure8(io.Discard, tiny())
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]bool{}
	for _, c := range cells {
		variants[c.Variant] = true
	}
	if len(variants) != 3 {
		t.Fatalf("got variants %v", variants)
	}
}

func TestFigure9WeightsNormalized(t *testing.T) {
	skipIfRace(t)
	points, err := Figure9(io.Discard, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range points {
		sum := 0.0
		for _, w := range pt.Weights {
			if w < 0 {
				t.Fatalf("negative weight at iter %d", pt.Iter)
			}
			sum += w
		}
		if sum > 1.0001 {
			t.Fatalf("weights sum to %v at iter %d", sum, pt.Iter)
		}
	}
}

func TestFigure10BothVariants(t *testing.T) {
	skipIfRace(t)
	points, err := Figure10(io.Discard, tiny())
	if err != nil {
		t.Fatal(err)
	}
	var native, polling, front int
	for _, p := range points {
		if strings.Contains(p.Variant, "native") {
			native++
		} else {
			polling++
		}
		if p.OnFront {
			front++
		}
	}
	if native == 0 || polling == 0 {
		t.Fatalf("missing variant: native=%d polling=%d", native, polling)
	}
	if front == 0 {
		t.Fatal("no Pareto-front points recorded")
	}
}

func TestTable5BestConfigs(t *testing.T) {
	skipIfRace(t)
	rows, err := Table5(io.Discard, Options{Scale: 0.12, Iters: 18, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// Owned params must match the selected type (e.g. HNSW rows
		// carry M/ef, SCANN rows carry nlist/nprobe/reorder_k).
		switch r.IndexType {
		case index.Flat, index.AutoIndex:
			if len(r.Params) != 0 {
				t.Fatalf("%v claims params %v", r.IndexType, r.Params)
			}
		default:
			if len(r.Params) == 0 {
				t.Fatalf("%v row has no params", r.IndexType)
			}
		}
	}
}

func TestFigure11TracksParams(t *testing.T) {
	skipIfRace(t)
	points, err := Figure11(io.Discard, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != tiny().iters() {
		t.Fatalf("got %d points", len(points))
	}
	for _, pt := range points {
		for name, v := range pt.Values {
			if v < 0 || v > 1 {
				t.Fatalf("%s normalized value %v out of range", name, v)
			}
		}
		if len(pt.Values) != 4 {
			t.Fatalf("tracked %d params, want 4", len(pt.Values))
		}
	}
}

func TestFigure12ThreeVariants(t *testing.T) {
	skipIfRace(t)
	series, err := Figure12(io.Discard, Options{Scale: 0.1, Iters: 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d variants", len(series))
	}
	for _, s := range series {
		if len(s.Curve085) == 0 || len(s.Curve09) == 0 {
			t.Fatalf("variant %s missing curves", s.Variant)
		}
	}
}

func TestFigure13CostAware(t *testing.T) {
	skipIfRace(t)
	res, err := Figure13(io.Discard, Options{Scale: 0.15, Iters: 16, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryMeanQPD <= 0 || res.MemoryMeanQPS <= 0 {
		t.Fatalf("memory stats missing: %+v", res)
	}
	if res.MemAttr != nil {
		if _, ok := res.MemAttr["segment_maxSize"]; !ok {
			t.Fatal("SHAP memory attribution missing segment_maxSize group")
		}
	}
}

func TestTable6Breakdown(t *testing.T) {
	skipIfRace(t)
	rows, err := Table6(io.Discard, Options{Scale: 0.1, Iters: 8, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ReplaySeconds <= 0 {
			t.Fatalf("%s has no replay time", r.Method)
		}
		if r.Share < 0 || r.Share > 1 {
			t.Fatalf("%s share %v out of range", r.Method, r.Share)
		}
	}
	// Learning methods must spend more recommendation time than Random.
	byName := map[string]Table6Row{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	if byName["VDTuner"].RecommendSeconds <= byName["Random"].RecommendSeconds {
		t.Fatalf("VDTuner recommend time %v not above Random %v",
			byName["VDTuner"].RecommendSeconds, byName["Random"].RecommendSeconds)
	}
}

func TestScalability(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("scalability study is slow")
	}
	res, err := Scalability(io.Discard, Options{Scale: 0.1, Iters: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.VDTunerQPS <= 0 {
		t.Fatalf("VDTuner found nothing on the large dataset: %+v", res)
	}
}

func TestHolisticVsIndividual(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("holistic comparison is slow")
	}
	res, err := HolisticVsIndividual(io.Discard, Options{Scale: 0.1, Iters: 14, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if res.CloseParams < 0 || res.CloseParams > 1 {
		t.Fatalf("closeness %v out of range", res.CloseParams)
	}
}

func TestDesignAblations(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("design sweep is slow")
	}
	rows, err := DesignAblations(io.Discard, Options{Scale: 0.1, Iters: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d variants", len(rows))
	}
	for _, r := range rows {
		if r.RecommendSeconds < 0 {
			t.Fatalf("negative recommend time: %+v", r)
		}
	}
}

func TestChurnReclaimsAndBoundsWork(t *testing.T) {
	res, err := Churn(io.Discard, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tombstones != 0 {
		t.Fatalf("tombstones = %d after compaction, want 0", res.Tombstones)
	}
	if res.ReclaimedRows != int64(res.DeletedRows) {
		t.Fatalf("reclaimed %d of %d deleted rows", res.ReclaimedRows, res.DeletedRows)
	}
	if res.MemAfter >= res.MemBefore {
		t.Fatalf("memory not reclaimed: %d >= %d", res.MemAfter, res.MemBefore)
	}
	if res.WorkAfter >= res.WorkBefore {
		t.Fatalf("post-churn scan work %d >= pre-delete %d", res.WorkAfter, res.WorkBefore)
	}
}
