package bench

import (
	"io"

	"vdtuner/internal/core"
	"vdtuner/internal/workload"
)

// AblationRow is the outcome of one tuner configuration in the design
// sweep.
type AblationRow struct {
	Variant string
	// BestQPS09 is the best QPS at recall > 0.9.
	BestQPS09 float64
	// RecommendSeconds is the total wall-clock recommendation time.
	RecommendSeconds float64
}

// DesignAblations sweeps VDTuner's own hyperparameters — the design
// choices DESIGN.md calls out beyond the paper's two ablations: abandon
// window length, acquisition candidate budget, and exact vs Monte Carlo
// EHVI. It reports final quality and recommendation overhead per variant.
func DesignAblations(w io.Writer, o Options) ([]AblationRow, error) {
	ds, err := workload.Load(workload.GloVeLike(o.scale()))
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"default (window=10, cands=160, exact EHVI)", core.Options{Seed: o.Seed}},
		{"abandon window=3", core.Options{Seed: o.Seed, AbandonWindow: 3}},
		{"abandon window=25", core.Options{Seed: o.Seed, AbandonWindow: 25}},
		{"candidates=32", core.Options{Seed: o.Seed, Candidates: 32}},
		{"candidates=512", core.Options{Seed: o.Seed, Candidates: 512}},
		{"Monte Carlo EHVI (48 samples)", core.Options{Seed: o.Seed, MonteCarloEHVI: true}},
	}
	var rows []AblationRow
	fprintf(w, "Design ablations on %s (%d iters)\n", ds.Name, o.iters())
	fprintf(w, "%-44s %14s %16s\n", "variant", "QPS@rec>0.9", "recommend (s)")
	for _, v := range variants {
		tr := RunWorkers(ds, core.New(v.opts), o.iters(), o.Workers)
		qps, _ := tr.BestQPSUnderRecall(0.9)
		row := AblationRow{
			Variant:          v.name,
			BestQPS09:        qps,
			RecommendSeconds: tr.TotalRecommendSeconds(),
		}
		rows = append(rows, row)
		fprintf(w, "%-44s %14.1f %16.2f\n", row.Variant, row.BestQPS09, row.RecommendSeconds)
	}
	return rows, nil
}
