package bench

import (
	"fmt"
	"io"

	"vdtuner/internal/index"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

// The churn experiment: a delete-heavy lifecycle the paper's static
// replay cannot express. It loads a live collection, deletes half the
// corpus, and reports the segment layout, footprint, and per-query
// scanned work before the deletes, after the deletes + compaction, and
// the compactor's own counters — the evidence that tombstone GC keeps
// search over-fetch bounded under sustained churn.

// ChurnResult summarizes one churn run.
type ChurnResult struct {
	Rows             int64
	DeletedRows      int
	SealedBefore     int
	SealedAfter      int
	MemBefore        int64
	MemAfter         int64
	WorkBefore       int64
	WorkAfter        int64
	Tombstones       int
	ReclaimedRows    int64
	CompactionPasses int64
}

// Churn runs the delete-heavy lifecycle experiment: bulk-insert a
// GloVe-like corpus into a live collection, delete every other row, let
// compaction quiesce, and measure footprint and per-query scanned work
// before and after. Deterministic for a given (Options.Scale, Seed).
func Churn(w io.Writer, o Options) (*ChurnResult, error) {
	ds, err := workload.Load(workload.GloVeLike(o.scale()))
	if err != nil {
		return nil, err
	}
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.IVFFlat
	cfg.Build.NList = 32
	cfg.Search.NProbe = 32
	cfg.Build.Seed = o.Seed
	coll, err := vdms.NewCollection(cfg, ds.Metric, ds.Dim, len(ds.Vectors))
	if err != nil {
		return nil, err
	}
	defer coll.Close()
	ids, err := coll.Insert(ds.Vectors)
	if err != nil {
		return nil, err
	}
	if err := coll.Flush(); err != nil {
		return nil, err
	}

	work := func() (int64, error) {
		var st index.Stats
		if _, err := coll.SearchBatch(ds.Queries, ds.K, &st); err != nil {
			return 0, err
		}
		return st.DistComps + st.CodeComps, nil
	}

	res := &ChurnResult{Rows: int64(len(ids))}
	before := coll.Stats()
	res.SealedBefore = before.Sealed
	res.MemBefore = before.MemoryBytes
	if res.WorkBefore, err = work(); err != nil {
		return nil, err
	}

	var dead []int64
	for i := 0; i < len(ids); i += 2 {
		dead = append(dead, ids[i])
	}
	res.DeletedRows = len(dead)
	if _, err := coll.Delete(dead); err != nil {
		return nil, err
	}
	if err := coll.Compact(); err != nil {
		return nil, err
	}

	after := coll.Stats()
	res.SealedAfter = after.Sealed
	res.MemAfter = after.MemoryBytes
	res.Tombstones = after.Tombstones
	res.ReclaimedRows = after.ReclaimedRows
	res.CompactionPasses = after.CompactionPasses
	if res.WorkAfter, err = work(); err != nil {
		return nil, err
	}
	if res.Tombstones != 0 {
		return nil, fmt.Errorf("bench: churn left %d tombstones after compaction", res.Tombstones)
	}

	fprintf(w, "Churn: delete-heavy lifecycle on %s (%d rows, %d deleted)\n",
		ds.Name, res.Rows, res.DeletedRows)
	fprintf(w, "%12s %8s %12s %14s\n", "", "sealed", "memory(B)", "scan work")
	fprintf(w, "%12s %8d %12d %14d\n", "pre-delete", res.SealedBefore, res.MemBefore, res.WorkBefore)
	fprintf(w, "%12s %8d %12d %14d\n", "compacted", res.SealedAfter, res.MemAfter, res.WorkAfter)
	fprintf(w, "reclaimed %d rows in %d passes; live tombstones %d\n",
		res.ReclaimedRows, res.CompactionPasses, res.Tombstones)
	return res, nil
}
