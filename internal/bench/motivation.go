package bench

import (
	"io"
	"math/rand"

	"vdtuner/internal/index"
	"vdtuner/internal/space"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

// Figure1Cell is one point of the paper's Figure 1 heatmap.
type Figure1Cell struct {
	MaxSize, SealProportion float64
	QPS, Recall             float64
}

// Figure1 sweeps segment_maxSize × segment_sealProportion with everything
// else at defaults, reproducing the complex-configuration-space heatmaps
// of Figure 1 (interdependent system parameters).
func Figure1(w io.Writer, o Options) ([]Figure1Cell, error) {
	ds, err := workload.Load(workload.GloVeLike(o.scale()))
	if err != nil {
		return nil, err
	}
	maxSizes := []float64{100, 300, 500, 1000, 1500, 2048}
	seals := []float64{0.05, 0.1, 0.3, 0.5, 0.7, 0.9}
	var cells []Figure1Cell
	fprintf(w, "Figure 1: search speed / recall over (segment_maxSize x segment_sealProportion), dataset %s\n", ds.Name)
	fprintf(w, "%10s %6s %10s %8s\n", "maxSize", "seal", "QPS", "recall")
	for _, ms := range maxSizes {
		for _, sp := range seals {
			cfg := vdms.DefaultConfig()
			cfg.SegmentMaxSize = ms
			cfg.SealProportion = sp
			res := vdms.Evaluate(ds, cfg)
			cells = append(cells, Figure1Cell{ms, sp, res.QPS, res.Recall})
			fprintf(w, "%10.0f %6.2f %10.1f %8.4f\n", ms, sp, res.QPS, res.Recall)
		}
	}
	return cells, nil
}

// Figure2Row reports the search speed of one index type under one system
// configuration.
type Figure2Row struct {
	SystemConfig int
	IndexType    index.Type
	QPS          float64
	Best         bool
}

// Figure2 shows the best index type flipping across system configurations
// (Figure 2: index/system interdependence).
func Figure2(w io.Writer, o Options) ([]Figure2Row, error) {
	ds, err := workload.Load(workload.GloVeLike(o.scale()))
	if err != nil {
		return nil, err
	}
	types := []index.Type{index.Flat, index.HNSW, index.IVFFlat}
	systems := []func(*vdms.Config){
		func(c *vdms.Config) { c.SegmentMaxSize, c.SealProportion, c.Parallelism = 100, 0.1, 1 },
		func(c *vdms.Config) { c.SegmentMaxSize, c.SealProportion, c.Parallelism = 300, 0.3, 2 },
		func(c *vdms.Config) { c.SegmentMaxSize, c.SealProportion, c.Parallelism = 1000, 0.8, 8 },
		func(c *vdms.Config) { c.SegmentMaxSize, c.SealProportion, c.Parallelism = 2048, 1.0, 16 },
	}
	var rows []Figure2Row
	fprintf(w, "Figure 2: best index type varies with system configs, dataset %s\n", ds.Name)
	for si, sys := range systems {
		bestQPS, bestIdx := 0.0, 0
		var group []Figure2Row
		for _, typ := range types {
			cfg := space.DefaultConfig(typ)
			sys(&cfg)
			res := vdms.Evaluate(ds, cfg)
			group = append(group, Figure2Row{SystemConfig: si + 1, IndexType: typ, QPS: res.QPS})
			if res.QPS > bestQPS {
				bestQPS = res.QPS
				bestIdx = len(group) - 1
			}
		}
		group[bestIdx].Best = true
		for _, r := range group {
			mark := " "
			if r.Best {
				mark = "*"
			}
			fprintf(w, "  system-config %d  %-9s %10.1f %s\n", r.SystemConfig, r.IndexType, r.QPS, mark)
		}
		rows = append(rows, group...)
	}
	return rows, nil
}

// Figure3Profile is the default-parameter performance of one index type
// on one dataset (Figure 3 a/b).
type Figure3Profile struct {
	Dataset   string
	IndexType index.Type
	QPS       float64
	Recall    float64
}

// Figure3Curve is the best-so-far weighted performance of uniform
// sampling within one index type's subspace (Figure 3 c).
type Figure3Curve struct {
	IndexType index.Type
	Best      []float64
}

// Figure3 reproduces the motivation study: per-index conflicting
// objectives across two datasets, plus per-index optimization curves
// showing that identifying the best type needs many samples.
func Figure3(w io.Writer, o Options) ([]Figure3Profile, []Figure3Curve, error) {
	specs := []workload.Spec{workload.GloVeLike(o.scale()), workload.KeywordLike(o.scale())}
	var profiles []Figure3Profile
	fprintf(w, "Figure 3(a,b): per-index speed/recall at default parameters\n")
	for _, spec := range specs {
		ds, err := workload.Load(spec)
		if err != nil {
			return nil, nil, err
		}
		for _, typ := range index.AllTypes() {
			res := vdms.Evaluate(ds, space.DefaultConfig(typ))
			profiles = append(profiles, Figure3Profile{Dataset: ds.Name, IndexType: typ, QPS: res.QPS, Recall: res.Recall})
			fprintf(w, "  %-14s %-9s QPS %10.1f  recall %6.4f\n", ds.Name, typ, res.QPS, res.Recall)
		}
	}

	// (c) optimization curves by uniform sampling per index type.
	ds, err := workload.Load(specs[0])
	if err != nil {
		return nil, nil, err
	}
	samples := o.iters() / 2
	if samples < 10 {
		samples = 10
	}
	rng := rand.New(rand.NewSource(o.Seed))
	var curves []Figure3Curve
	fprintf(w, "Figure 3(c): best-so-far weighted performance per index type (%d samples)\n", samples)
	for _, typ := range index.AllTypes() {
		best := 0.0
		series := make([]float64, samples)
		for s := 0; s < samples; s++ {
			cfg := space.Decode(space.SampleSubspace(typ, rng))
			res := vdms.Evaluate(ds, cfg)
			if !res.Failed {
				// Weighted performance on a rough common scale (QPS
				// normalized by a nominal 100k ceiling).
				v := 0.5*res.QPS/100000 + 0.5*res.Recall
				if v > best {
					best = v
				}
			}
			series[s] = best
		}
		curves = append(curves, Figure3Curve{IndexType: typ, Best: series})
		fprintf(w, "  %-9s first %6.3f  mid %6.3f  final %6.3f\n", typ, series[0], series[samples/2], series[samples-1])
	}
	return profiles, curves, nil
}
