package bench

import (
	"io"

	"vdtuner/internal/baselines"
	"vdtuner/internal/core"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

// newVDTuner builds the full-configuration VDTuner as a Method.
func newVDTuner(seed int64) Method {
	return core.New(core.Options{Seed: seed})
}

// newBaselines builds the paper's four baselines.
func newBaselines(seed int64) []Method {
	return []Method{
		baselines.NewRandom(seed),
		baselines.NewOpenTuner(seed),
		baselines.NewOtterTune(seed, 10),
		baselines.NewQEHVI(seed, 10),
	}
}

// AllMethods is VDTuner plus every baseline, in the paper's order.
func AllMethods(seed int64) []Method {
	return append([]Method{newVDTuner(seed)}, newBaselines(seed)...)
}

// EvalDatasets are the three datasets of Table III.
func EvalDatasets(scale workload.Scale) []workload.Spec {
	return []workload.Spec{
		workload.GloVeLike(scale),
		workload.KeywordLike(scale),
		workload.GeoLike(scale),
	}
}

// Table4Row is one dataset column of Table IV.
type Table4Row struct {
	Dataset string
	// SpeedImprovement is the best QPS gain (%) without sacrificing
	// recall relative to the default configuration.
	SpeedImprovement float64
	// RecallImprovement is the best recall gain (%) without sacrificing
	// search speed.
	RecallImprovement float64
}

// Table4 reproduces Table IV: VDTuner's improvement over the Default
// configuration on the three datasets.
func Table4(w io.Writer, o Options) ([]Table4Row, error) {
	var rows []Table4Row
	fprintf(w, "Table IV: performance improvement by auto-configuration (%d iters)\n", o.iters())
	fprintf(w, "%-16s %18s %18s\n", "dataset", "speed improvement", "recall improvement")
	for _, spec := range EvalDatasets(o.scale()) {
		ds, err := workload.Load(spec)
		if err != nil {
			return nil, err
		}
		def := vdms.Evaluate(ds, vdms.DefaultConfig())
		tr := RunWorkers(ds, newVDTuner(o.Seed), o.iters(), o.Workers)

		spdImp, recImp := 0.0, 0.0
		for _, r := range tr.Records {
			if r.Result.Failed {
				continue
			}
			if r.Result.Recall >= def.Recall && r.Result.QPS > def.QPS {
				if imp := (r.Result.QPS - def.QPS) / def.QPS * 100; imp > spdImp {
					spdImp = imp
				}
			}
			if r.Result.QPS >= def.QPS && r.Result.Recall > def.Recall {
				if imp := (r.Result.Recall - def.Recall) / def.Recall * 100; imp > recImp {
					recImp = imp
				}
			}
		}
		rows = append(rows, Table4Row{Dataset: ds.Name, SpeedImprovement: spdImp, RecallImprovement: recImp})
		fprintf(w, "%-16s %17.2f%% %17.2f%%\n", ds.Name, spdImp, recImp)
	}
	return rows, nil
}

// Figure6Cell is one (dataset, method, sacrifice) point of Figure 6.
type Figure6Cell struct {
	Dataset   string
	Method    string
	Sacrifice float64
	QPS       float64
	Found     bool
}

// Figure6 compares the best achievable QPS of every method under recall
// sacrifices from 0.15 down to 0.01 on the three datasets.
func Figure6(w io.Writer, o Options) ([]Figure6Cell, error) {
	var cells []Figure6Cell
	fprintf(w, "Figure 6: best QPS under recall sacrifice, %d iters/method\n", o.iters())
	for _, spec := range EvalDatasets(o.scale()) {
		ds, err := workload.Load(spec)
		if err != nil {
			return nil, err
		}
		fprintf(w, "dataset %s\n", ds.Name)
		fprintf(w, "%-26s", "method \\ sacrifice")
		for _, s := range Sacrifices {
			fprintf(w, " %8.3f", s)
		}
		fprintf(w, "\n")
		for _, m := range AllMethods(o.Seed) {
			tr := RunWorkers(ds, m, o.iters(), o.Workers)
			fprintf(w, "%-26s", m.Name())
			for _, s := range Sacrifices {
				qps, ok := tr.BestQPSUnderRecall(1 - s)
				cells = append(cells, Figure6Cell{
					Dataset: ds.Name, Method: m.Name(), Sacrifice: s, QPS: qps, Found: ok,
				})
				if ok {
					fprintf(w, " %8.1f", qps)
				} else {
					fprintf(w, " %8s", "-")
				}
			}
			fprintf(w, "\n")
		}
	}
	return cells, nil
}

// Figure7Series is one method's best-so-far QPS curve at one recall floor.
type Figure7Series struct {
	Method string
	Floor  float64
	Curve  []float64
	// ItersVsBaseline and TimeVsBaseline compare VDTuner's cost to reach
	// the most competitive baseline's final performance (only filled for
	// the VDTuner row).
	ItersVsBaseline float64
	TimeVsBaseline  float64
}

// Figure7 reproduces the optimization curves on GloVe: best QPS versus
// iteration at recall floors 0.9–0.99, plus the sample/time advantage of
// VDTuner over the most competitive baseline.
func Figure7(w io.Writer, o Options) ([]Figure7Series, error) {
	ds, err := workload.Load(workload.GloVeLike(o.scale()))
	if err != nil {
		return nil, err
	}
	floors := []float64{0.9, 0.925, 0.95, 0.975, 0.99}
	methods := AllMethods(o.Seed)
	traces := make([]*Trace, len(methods))
	for i, m := range methods {
		traces[i] = RunWorkers(ds, m, o.iters(), o.Workers)
	}
	var out []Figure7Series
	fprintf(w, "Figure 7: optimization curves on %s (%d iters)\n", ds.Name, o.iters())
	for _, floor := range floors {
		fprintf(w, "recall > %.3f\n", floor)
		// Most competitive baseline final value.
		bestBaseline := 0.0
		for i := 1; i < len(traces); i++ {
			if q, ok := traces[i].BestQPSUnderRecall(floor); ok && q > bestBaseline {
				bestBaseline = q
			}
		}
		for i, tr := range traces {
			s := Figure7Series{Method: tr.Method, Floor: floor, Curve: tr.BestCurve(floor)}
			if i == 0 && bestBaseline > 0 {
				it := tr.ItersToReach(bestBaseline, floor)
				if it > 0 {
					s.ItersVsBaseline = float64(it) / float64(o.iters())
					total := tr.TotalReplaySeconds()
					if total > 0 {
						s.TimeVsBaseline = tr.SimTimeToReach(bestBaseline, floor) / total
					}
				}
			}
			final := 0.0
			if len(s.Curve) > 0 {
				final = s.Curve[len(s.Curve)-1]
			}
			fprintf(w, "  %-26s final %9.1f", s.Method, final)
			if i == 0 && s.ItersVsBaseline > 0 {
				fprintf(w, "  reaches best baseline with %.0f%% of samples, %.0f%% of time",
					s.ItersVsBaseline*100, s.TimeVsBaseline*100)
			}
			fprintf(w, "\n")
			out = append(out, s)
		}
	}
	return out, nil
}
