package online

import (
	"testing"

	"vdtuner/internal/core"
	"vdtuner/internal/workload"
)

func window(t *testing.T, name string, clusters int, std float64, seed int64) *workload.Dataset {
	t.Helper()
	ds, err := workload.Load(workload.Spec{
		Name: name, N: 800, NQ: 25, Dim: 16, K: 5,
		Clusters: clusters, ClusterStd: std, Correlated: clusters%2 == 0, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDriftDetectorStableWorkload(t *testing.T) {
	var d DriftDetector
	a := window(t, "stable-a", 8, 0.4, 1)
	// Two windows from the same distribution (different queries, same
	// generator family) should not trigger.
	b := window(t, "stable-b", 8, 0.4, 1)
	if _, drifted, err := d.Observe(a.Queries); err != nil || drifted {
		t.Fatalf("first window: drifted=%v err=%v", drifted, err)
	}
	score, drifted, err := d.Observe(b.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if drifted {
		t.Fatalf("identical workload flagged as drift (score %v)", score)
	}
}

func TestDriftDetectorFlagsShift(t *testing.T) {
	var d DriftDetector
	a := window(t, "shift-a", 4, 0.3, 2)
	b := window(t, "shift-b", 32, 1.5, 77) // very different structure
	if _, _, err := d.Observe(a.Queries); err != nil {
		t.Fatal(err)
	}
	score, drifted, err := d.Observe(b.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if !drifted {
		t.Fatalf("distribution shift not detected (score %v)", score)
	}
}

func TestDriftDetectorErrors(t *testing.T) {
	var d DriftDetector
	if _, _, err := d.Observe(nil); err == nil {
		t.Fatal("accepted empty window")
	}
	if _, _, err := d.Observe([][]float32{{1, 2}, {1}}); err == nil {
		t.Fatal("accepted ragged window")
	}
}

func TestManagerColdStartThenStable(t *testing.T) {
	m := NewManager(ManagerOptions{
		Tuning:       core.Options{Seed: 3, Candidates: 48, MCSamples: 8},
		InitialIters: 14,
	})
	if _, ok := m.Best(); ok {
		t.Fatal("Best before tuning")
	}
	w1 := window(t, "mgr-1", 8, 0.4, 4)
	rep, err := m.ServeWindow(w1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retuned {
		t.Fatal("cold start counted as re-tune")
	}
	if rep.Result.Failed {
		t.Fatalf("deployed config failed: %s", rep.Result.FailReason)
	}
	if _, ok := m.Best(); !ok {
		t.Fatal("no deployed config after cold start")
	}
	// Same workload again: no re-tune.
	rep2, err := m.ServeWindow(w1)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Retuned || m.Retunes() != 0 {
		t.Fatal("stable workload triggered re-tuning")
	}
}

func TestManagerRetunesOnDrift(t *testing.T) {
	m := NewManager(ManagerOptions{
		Tuning:       core.Options{Seed: 5, Candidates: 48, MCSamples: 8},
		InitialIters: 14,
		RetuneIters:  8,
	})
	w1 := window(t, "drift-1", 4, 0.3, 6)
	if _, err := m.ServeWindow(w1); err != nil {
		t.Fatal(err)
	}
	w2 := window(t, "drift-2", 32, 1.5, 88)
	rep, err := m.ServeWindow(w2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Retuned || m.Retunes() != 1 {
		t.Fatalf("drifted window did not re-tune: %+v", rep)
	}
	if rep.Result.Failed {
		t.Fatalf("re-tuned config failed: %s", rep.Result.FailReason)
	}
	// The re-deployed configuration must be serviceable on the new
	// workload — compare against the *old* config evaluated there.
	old, _ := m.Best()
	_ = old
	if rep.Result.Recall <= 0 {
		t.Fatalf("re-tuned recall %v", rep.Result.Recall)
	}
}

func TestManagerWarmStartCarriesKnowledge(t *testing.T) {
	m := NewManager(ManagerOptions{
		Tuning:       core.Options{Seed: 7, Candidates: 32, MCSamples: 8},
		InitialIters: 10,
		RetuneIters:  6,
	})
	w1 := window(t, "warm-1", 8, 0.4, 8)
	if _, err := m.ServeWindow(w1); err != nil {
		t.Fatal(err)
	}
	kbBefore := len(m.kb)
	if kbBefore == 0 {
		t.Fatal("knowledge base empty after cold start")
	}
	w2 := window(t, "warm-2", 32, 1.6, 99)
	if _, err := m.ServeWindow(w2); err != nil {
		t.Fatal(err)
	}
	if len(m.kb) <= kbBefore {
		t.Fatalf("knowledge base did not grow across sessions: %d -> %d", kbBefore, len(m.kb))
	}
}
