package online

import (
	"fmt"

	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

// Daemon closes the tuner→engine loop on a live collection: it watches
// the query windows the engine actually serves, re-tunes (via the
// drift-detecting Manager) when the workload moves, and applies the
// winning configuration back to the engine through Reconfigure — hot
// knobs as an atomic generation swap, cold knobs (only when explicitly
// allowed) as an online migration. Evaluation happens off the serving
// path: each window is scored against a Dataset built from a sample of
// the live corpus, so candidate configurations are measured on a replica
// of the real data, never by degrading live traffic.
//
// The engine under tuning is abstracted behind the Engine interface: an
// in-process Collection (NewDaemon) and a remote vdmsd reached through a
// server client (NewRemoteDaemon) are tuned identically.
//
// Daemon is not safe for concurrent use; drive it from one goroutine
// (the serving path it observes can be arbitrarily concurrent).
type Daemon struct {
	eng  Engine
	mgr  *Manager
	opts DaemonOptions
}

// DaemonOptions configures a tuning daemon.
type DaemonOptions struct {
	// Manager configures the underlying drift-detecting tuning manager.
	Manager ManagerOptions
	// SampleSize is how many live vectors each window's evaluation
	// dataset samples from the collection. Zero means 2000.
	SampleSize int
	// K is the evaluation recall depth. Zero means 10.
	K int
	// ApplyColdChanges permits the daemon to apply cold-knob winners
	// (index type, build parameters, segment sizing, shard count), which
	// trigger an online migration. When false — the default — cold knobs
	// are grafted from the active configuration before applying, so every
	// application is a pure hot swap.
	ApplyColdChanges bool
}

func (o *DaemonOptions) sampleSize() int {
	if o.SampleSize <= 0 {
		return 2000
	}
	return o.SampleSize
}

func (o *DaemonOptions) k() int {
	if o.K <= 0 {
		return 10
	}
	return o.K
}

// DaemonReport is the outcome of one observed window.
type DaemonReport struct {
	// Window is the manager's view: measured performance of the deployed
	// configuration on this window, the drift score, and whether the
	// window triggered re-tuning.
	Window WindowReport
	// Applied reports whether this window changed the engine's
	// configuration (the first window always does).
	Applied bool
	// Migrated reports whether the application involved a cold-knob
	// migration rather than a hot swap.
	Migrated bool
	// Generation is the engine's config generation after this window.
	Generation uint64
}

// NewDaemon creates a tuning daemon bound to a live in-process
// collection.
func NewDaemon(coll *vdms.Collection, opts DaemonOptions) *Daemon {
	return NewEngineDaemon(collectionEngine{coll: coll}, opts)
}

// NewEngineDaemon creates a tuning daemon bound to any Engine.
func NewEngineDaemon(eng Engine, opts DaemonOptions) *Daemon {
	return &Daemon{eng: eng, mgr: NewManager(opts.Manager), opts: opts}
}

// ObserveWindow processes one served query window: build an evaluation
// dataset from a live corpus sample plus the window, let the manager
// cold-start or drift-retune on it, and push any new winner into the
// engine via Reconfigure.
func (d *Daemon) ObserveWindow(queries [][]float32) (*DaemonReport, error) {
	sample, err := d.eng.SampleVectors(d.opts.sampleSize())
	if err != nil {
		return nil, fmt.Errorf("online: sampling the live corpus: %w", err)
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("online: engine holds no vectors to evaluate against")
	}
	metric, err := d.eng.Metric()
	if err != nil {
		return nil, fmt.Errorf("online: reading the engine metric: %w", err)
	}
	ds, err := workload.FromLive("live-window", metric, sample, queries, d.opts.k())
	if err != nil {
		return nil, err
	}
	prevBest, hadBest := d.mgr.Best()
	rep, err := d.mgr.ServeWindow(ds)
	if err != nil {
		return nil, err
	}
	gen, err := d.eng.Generation()
	if err != nil {
		return nil, fmt.Errorf("online: reading the engine generation: %w", err)
	}
	out := &DaemonReport{Window: *rep, Generation: gen}
	best, _ := d.mgr.Best()
	if hadBest && best == prevBest {
		return out, nil // nothing new to apply
	}

	active, err := d.eng.Config()
	if err != nil {
		return out, fmt.Errorf("online: reading the active configuration: %w", err)
	}
	apply := best
	if !d.opts.ApplyColdChanges {
		apply = vdms.GraftColdKnobs(best, active)
	}
	out.Migrated = vdms.GraftColdKnobs(apply, active) != apply
	gen, err = d.eng.Reconfigure(apply)
	if err != nil {
		return out, fmt.Errorf("online: applying tuned configuration: %w", err)
	}
	out.Applied = true
	out.Generation = gen
	return out, nil
}

// Best exposes the manager's currently deployed configuration.
func (d *Daemon) Best() (vdms.Config, bool) { return d.mgr.Best() }

// Retunes reports how many drift-triggered re-tuning sessions have run.
func (d *Daemon) Retunes() int { return d.mgr.Retunes() }
