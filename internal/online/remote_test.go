package online

import (
	"testing"

	"vdtuner/internal/core"
	"vdtuner/internal/server"
)

// TestRemoteDaemonClosesTheLoop drives the same tuner→engine loop as
// TestDaemonClosesTheLoop, but over the wire: the daemon sees only a
// server client — corpus samples, the metric, and Reconfigure all travel
// through the access layer — and the engine ends up at the tuned
// configuration anyway.
func TestRemoteDaemonClosesTheLoop(t *testing.T) {
	coll, base := liveCollection(t)
	defer coll.Close()
	srv, err := server.New(coll, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := server.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	d := NewRemoteDaemon(cl, DaemonOptions{
		Manager: ManagerOptions{
			Tuning:       core.Options{Seed: 9, Candidates: 32, MCSamples: 8},
			InitialIters: 10,
			RetuneIters:  6,
		},
		SampleSize: 400,
		K:          5,
	})

	w1 := window(t, "remote-w1", 8, 0.4, 42)
	rep, err := d.ObserveWindow(w1.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied {
		t.Fatal("remote cold start did not apply a configuration")
	}
	if rep.Migrated {
		t.Fatal("cold-knob migration applied with ApplyColdChanges=false")
	}

	// The application went through the wire into the real engine.
	active := coll.Config()
	if active.IndexType != base.IndexType || active.ShardCount != base.ShardCount {
		t.Fatalf("remote hot application changed cold knobs: %+v", active)
	}
	best, ok := d.Best()
	if !ok {
		t.Fatal("no deployed configuration after remote cold start")
	}
	if active.Search != best.Search {
		t.Fatalf("engine search knobs %+v, tuner deployed %+v", active.Search, best.Search)
	}
	gen := coll.Stats().ConfigGeneration
	if gen == 0 || rep.Generation != gen {
		t.Fatalf("generation after remote apply: stats %d, report %d", gen, rep.Generation)
	}

	// A second identical window is stable remotely too: no re-tune, no
	// new application.
	w2 := window(t, "remote-w2", 8, 0.4, 42)
	rep2, err := d.ObserveWindow(w2.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Applied || rep2.Window.Retuned {
		t.Fatalf("stable remote window re-applied: %+v", rep2)
	}
	if rep2.Generation != gen {
		t.Fatalf("stable window moved the generation: %d -> %d", gen, rep2.Generation)
	}
}

// TestRemoteDaemonSurfacesTransportErrors: when the connection dies, the
// daemon reports the failure instead of tuning against garbage.
func TestRemoteDaemonSurfacesTransportErrors(t *testing.T) {
	coll, _ := liveCollection(t)
	defer coll.Close()
	srv, err := server.New(coll, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := server.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cl.Close() // sever the transport before the daemon touches it

	d := NewRemoteDaemon(cl, DaemonOptions{SampleSize: 100, K: 5})
	w := window(t, "remote-dead", 8, 0.4, 43)
	if _, err := d.ObserveWindow(w.Queries); err == nil {
		t.Fatal("daemon tuned over a dead connection")
	}
}
