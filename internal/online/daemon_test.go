package online

import (
	"testing"

	"vdtuner/internal/core"
	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/vdms"
)

// liveCollection builds a small live engine holding one window's corpus.
func liveCollection(t *testing.T) (*vdms.Collection, vdms.Config) {
	t.Helper()
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.Flat
	cfg.ShardCount = 2
	cfg.Parallelism = 2
	ds := window(t, "daemon-corpus", 8, 0.4, 41)
	c, err := vdms.NewCollection(cfg, linalg.L2, ds.Dim, len(ds.Vectors))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(ds.Vectors); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	return c, cfg
}

func TestDaemonClosesTheLoop(t *testing.T) {
	coll, base := liveCollection(t)
	defer coll.Close()
	d := NewDaemon(coll, DaemonOptions{
		Manager: ManagerOptions{
			Tuning:       core.Options{Seed: 9, Candidates: 32, MCSamples: 8},
			InitialIters: 10,
			RetuneIters:  6,
		},
		SampleSize: 400,
		K:          5,
	})

	// Window 1: cold start must tune and push a configuration into the
	// engine as a hot swap — cold knobs stay the engine's own.
	w1 := window(t, "daemon-w1", 8, 0.4, 42)
	rep1, err := d.ObserveWindow(w1.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Applied {
		t.Fatal("cold start did not apply a configuration")
	}
	if rep1.Migrated {
		t.Fatal("cold-knob migration applied with ApplyColdChanges=false")
	}
	if rep1.Window.Result.Failed {
		t.Fatalf("deployed config failed on its window: %s", rep1.Window.Result.FailReason)
	}
	active := coll.Config()
	if active.IndexType != base.IndexType || active.ShardCount != base.ShardCount ||
		active.SegmentMaxSize != base.SegmentMaxSize {
		t.Fatalf("hot application changed cold knobs: %+v", active)
	}
	best, ok := d.Best()
	if !ok {
		t.Fatal("no deployed configuration after cold start")
	}
	if active.Search != best.Search {
		t.Fatalf("engine search knobs %+v, tuner deployed %+v", active.Search, best.Search)
	}
	gen1 := coll.Stats().ConfigGeneration
	if gen1 == 0 || rep1.Generation != gen1 {
		t.Fatalf("generation after cold start: stats %d, report %d", gen1, rep1.Generation)
	}

	// Window 2: same distribution (same generator seed, as in the
	// manager's stability test) — no drift, no re-tune, no new apply.
	w2 := window(t, "daemon-w2", 8, 0.4, 42)
	rep2, err := d.ObserveWindow(w2.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Window.Retuned || rep2.Applied {
		t.Fatalf("stable window re-applied: %+v", rep2)
	}
	if got := coll.Stats().ConfigGeneration; got != gen1 {
		t.Fatalf("stable window advanced the generation: %d -> %d", gen1, got)
	}

	// Window 3: a very different distribution — drift triggers a warm
	// re-tune; any new winner reaches the engine.
	w3 := window(t, "daemon-w3", 32, 1.5, 97)
	rep3, err := d.ObserveWindow(w3.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Window.Retuned || d.Retunes() != 1 {
		t.Fatalf("drifted window did not re-tune: %+v", rep3)
	}
	if rep3.Migrated {
		t.Fatal("re-tune migrated cold knobs with ApplyColdChanges=false")
	}
	if rep3.Applied {
		if got := coll.Stats().ConfigGeneration; got <= gen1 {
			t.Fatalf("applied re-tune left generation at %d", got)
		}
	}
	// The engine must still serve after everything the daemon did.
	if _, err := coll.SearchBatch(w3.Queries[:4], 5, nil); err != nil {
		t.Fatalf("engine unusable after daemon loop: %v", err)
	}
}

func TestDaemonRequiresData(t *testing.T) {
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.Flat
	coll, err := vdms.NewCollection(cfg, linalg.L2, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	d := NewDaemon(coll, DaemonOptions{Manager: ManagerOptions{
		Tuning: core.Options{Seed: 1, Candidates: 16, MCSamples: 4}, InitialIters: 4,
	}})
	if _, err := d.ObserveWindow([][]float32{{0, 0, 0, 0, 0, 0, 0, 1}}); err == nil {
		t.Fatal("daemon tuned against an empty collection")
	}
}
