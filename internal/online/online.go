// Package online implements the paper's stated future-work extension
// (§VII): an online VDTuner that actively captures workload changes. A
// drift detector summarizes successive query windows (centroid and
// per-dimension spread); when the workload moves, the manager re-tunes —
// bootstrapping the new tuning session from the accumulated knowledge
// base so adaptation costs a fraction of a cold start (§IV-F).
package online

import (
	"fmt"
	"math"

	"vdtuner/internal/core"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

// DriftDetector summarizes query windows and scores distribution shift.
// The score combines centroid displacement (relative to the previous
// window's spread) and the per-dimension variance ratio; both are cheap
// and require no labels.
type DriftDetector struct {
	// Threshold above which a window counts as drifted. Zero means 0.25.
	Threshold float64

	prevCentroid []float64
	prevSpread   float64
	initialized  bool
}

func (d *DriftDetector) threshold() float64 {
	if d.Threshold <= 0 {
		return 0.25
	}
	return d.Threshold
}

// Observe ingests one window of query vectors and returns its drift score
// versus the previous window and whether it crosses the threshold. The
// first window initializes the detector and never reports drift.
func (d *DriftDetector) Observe(queries [][]float32) (score float64, drifted bool, err error) {
	if len(queries) == 0 {
		return 0, false, fmt.Errorf("online: empty query window")
	}
	dim := len(queries[0])
	centroid := make([]float64, dim)
	for _, q := range queries {
		if len(q) != dim {
			return 0, false, fmt.Errorf("online: ragged query window")
		}
		for j, v := range q {
			centroid[j] += float64(v)
		}
	}
	for j := range centroid {
		centroid[j] /= float64(len(queries))
	}
	var spread float64
	for _, q := range queries {
		var s float64
		for j, v := range q {
			dv := float64(v) - centroid[j]
			s += dv * dv
		}
		spread += s
	}
	spread = math.Sqrt(spread / float64(len(queries)))
	if spread < 1e-12 {
		spread = 1e-12
	}

	if !d.initialized {
		d.prevCentroid = centroid
		d.prevSpread = spread
		d.initialized = true
		return 0, false, nil
	}
	var shift float64
	for j := range centroid {
		dv := centroid[j] - d.prevCentroid[j]
		shift += dv * dv
	}
	shift = math.Sqrt(shift)

	ratio := spread / d.prevSpread
	if ratio < 1 {
		ratio = 1 / ratio
	}
	score = shift/d.prevSpread + (ratio - 1)

	d.prevCentroid = centroid
	d.prevSpread = spread
	return score, score > d.threshold(), nil
}

// ManagerOptions configures an online tuning manager.
type ManagerOptions struct {
	// Tuning configures the underlying VDTuner sessions.
	Tuning core.Options
	// InitialIters is the cold-start tuning budget. Zero means 40.
	InitialIters int
	// RetuneIters is the per-drift re-tuning budget (bootstrapped, so it
	// can be much smaller). Zero means InitialIters/2.
	RetuneIters int
	// Detector configures drift detection.
	Detector DriftDetector
}

func (o *ManagerOptions) initialIters() int {
	if o.InitialIters <= 0 {
		return 40
	}
	return o.InitialIters
}

func (o *ManagerOptions) retuneIters() int {
	if o.RetuneIters > 0 {
		return o.RetuneIters
	}
	return (o.initialIters() + 1) / 2
}

// Manager owns the deployed configuration: it tunes once up front, then
// watches query windows and re-tunes (warm-started) when the workload
// drifts.
type Manager struct {
	opts     ManagerOptions
	detector DriftDetector

	kb       []core.Observation
	best     vdms.Config
	haveBest bool
	retunes  int
	sessions int
}

// NewManager creates an online tuning manager.
func NewManager(opts ManagerOptions) *Manager {
	return &Manager{opts: opts, detector: opts.Detector}
}

// Best returns the currently deployed configuration. ok is false before
// the first Tune.
func (m *Manager) Best() (cfg vdms.Config, ok bool) { return m.best, m.haveBest }

// Retunes reports how many drift-triggered re-tuning sessions have run.
func (m *Manager) Retunes() int { return m.retunes }

// Tune runs a tuning session of the given budget against ds and deploys
// the best configuration found. Sessions after the first are warm-started
// from the accumulated knowledge base.
func (m *Manager) Tune(ds *workload.Dataset, iters int) error {
	opts := m.opts.Tuning
	opts.Seed += int64(m.sessions) * 101
	opts.Bootstrap = m.kb
	m.sessions++
	tn := core.New(opts)
	for i := 0; i < iters; i++ {
		cfg := tn.Next()
		res := vdms.Evaluate(ds, cfg)
		tn.Observe(cfg, res)
	}
	m.kb = tn.Observations()

	floor := m.opts.Tuning.RecallFloor
	best, ok := tn.BestUnderRecall(floor)
	if !ok {
		best, ok = tn.BestUnderRecall(0)
	}
	if !ok {
		return fmt.Errorf("online: tuning session found no usable configuration")
	}
	m.best = best.Config
	m.haveBest = true
	return nil
}

// WindowReport is the outcome of serving one query window.
type WindowReport struct {
	// Result is the deployed configuration's performance on the window.
	Result vdms.Result
	// DriftScore is the detector's score for the window.
	DriftScore float64
	// Retuned reports whether this window triggered re-tuning (the
	// Result is measured with the new configuration when it did).
	Retuned bool
}

// ServeWindow processes one workload window: score it for drift, re-tune
// (warm-started) if it drifted, and evaluate the deployed configuration
// on it. The first call performs the cold-start tuning.
func (m *Manager) ServeWindow(ds *workload.Dataset) (*WindowReport, error) {
	score, drifted, err := m.detector.Observe(ds.Queries)
	if err != nil {
		return nil, err
	}
	rep := &WindowReport{DriftScore: score}
	if !m.haveBest {
		if err := m.Tune(ds, m.opts.initialIters()); err != nil {
			return nil, err
		}
	} else if drifted {
		// The knowledge base was collected on the old workload; keep it
		// as a prior but re-measure with a fresh session on the new one.
		if err := m.Tune(ds, m.opts.retuneIters()); err != nil {
			return nil, err
		}
		m.retunes++
		rep.Retuned = true
	}
	rep.Result = vdms.Evaluate(ds, m.best)
	return rep, nil
}
