package online

import (
	"vdtuner/internal/linalg"
	"vdtuner/internal/vdms"
)

// Engine is what the tuning daemon needs from the system it tunes: a way
// to sample the live corpus for evaluation datasets, read the active
// configuration and its generation, and push a winner back. A live
// in-process Collection satisfies it directly (see NewDaemon); a vdmsd
// process across the network satisfies it through a server client (see
// NewRemoteDaemon). Every method returns an error because for the remote
// engine every call is a network round trip.
type Engine interface {
	// SampleVectors returns up to n vectors sampled from the live corpus.
	SampleVectors(n int) ([][]float32, error)
	// Metric returns the engine's distance metric.
	Metric() (linalg.Metric, error)
	// Config returns the active configuration.
	Config() (vdms.Config, error)
	// Generation returns the current configuration generation.
	Generation() (uint64, error)
	// Reconfigure applies cfg and returns the new generation.
	Reconfigure(cfg vdms.Config) (uint64, error)
}

// collectionEngine adapts an in-process Collection to the Engine
// interface; its reads cannot fail.
type collectionEngine struct {
	coll *vdms.Collection
}

func (e collectionEngine) SampleVectors(n int) ([][]float32, error) {
	return e.coll.SampleVectors(n), nil
}

func (e collectionEngine) Metric() (linalg.Metric, error) {
	return e.coll.Metric(), nil
}

func (e collectionEngine) Config() (vdms.Config, error) {
	return e.coll.Config(), nil
}

func (e collectionEngine) Generation() (uint64, error) {
	return e.coll.Stats().ConfigGeneration, nil
}

func (e collectionEngine) Reconfigure(cfg vdms.Config) (uint64, error) {
	return e.coll.Reconfigure(cfg)
}
