package online

import (
	"vdtuner/internal/linalg"
	"vdtuner/internal/server"
	"vdtuner/internal/vdms"
)

// remoteEngine drives a vdmsd process over the wire: corpus samples come
// back through the "sample" op, the metric through "config", and winners
// are applied through "reconfigure" — the same path any administrative
// client would use. The tuner therefore needs no access to the server's
// process or data directory; it can run on a different machine.
type remoteEngine struct {
	cl *server.Client
}

func (e remoteEngine) SampleVectors(n int) ([][]float32, error) {
	return e.cl.SampleVectors(n)
}

func (e remoteEngine) Metric() (linalg.Metric, error) {
	m, _, err := e.cl.Info()
	return m, err
}

func (e remoteEngine) Config() (vdms.Config, error) {
	cfg, _, err := e.cl.Config()
	if err != nil {
		return vdms.Config{}, err
	}
	return *cfg, nil
}

func (e remoteEngine) Generation() (uint64, error) {
	_, gen, err := e.cl.Config()
	return gen, err
}

func (e remoteEngine) Reconfigure(cfg vdms.Config) (uint64, error) {
	return e.cl.Reconfigure(cfg)
}

// NewRemoteDaemon creates a tuning daemon that tunes a remote engine
// through a server client instead of an in-process collection. The
// client must stay open for the daemon's lifetime; the caller still owns
// and closes it.
func NewRemoteDaemon(cl *server.Client, opts DaemonOptions) *Daemon {
	return NewEngineDaemon(remoteEngine{cl: cl}, opts)
}
