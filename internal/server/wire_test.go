package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/persist"
	"vdtuner/internal/vdms"
)

// startServerOpts is startServer with explicit access-layer limits.
func startServerOpts(t *testing.T, opts Options) *Server {
	t.Helper()
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.IVFFlat
	cfg.Build.NList = 8
	cfg.Search.NProbe = 8
	coll, err := vdms.NewCollection(cfg, linalg.L2, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithOptions(coll, "127.0.0.1:0", opts)
	if err != nil {
		coll.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		coll.Close()
	})
	return srv
}

func dialBin(t *testing.T, srv *Server) *BinClient {
	t.Helper()
	cl, err := DialBinary(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// assertServerAlive proves the server still accepts and serves fresh
// connections on both protocols — the invariant every torture case must
// preserve.
func assertServerAlive(t *testing.T, srv *Server) {
	t.Helper()
	jcl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("server dead to JSON clients: %v", err)
	}
	defer jcl.Close()
	if err := jcl.Ping(); err != nil {
		t.Fatalf("server dead to JSON clients: %v", err)
	}
	bcl, err := DialBinary(srv.Addr())
	if err != nil {
		t.Fatalf("server dead to binary clients: %v", err)
	}
	defer bcl.Close()
	if err := bcl.Ping(); err != nil {
		t.Fatalf("server dead to binary clients: %v", err)
	}
}

// awaitClosed asserts the server drops the raw connection (EOF or reset)
// rather than hanging.
func awaitClosed(t *testing.T, conn net.Conn) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, err := conn.Read(buf); err != nil {
			if err == io.EOF || strings.Contains(err.Error(), "reset") {
				return
			}
			t.Fatalf("connection not dropped cleanly: %v", err)
		}
	}
}

func TestBinaryClientHotOps(t *testing.T) {
	srv := startServerOpts(t, Options{})
	cl := dialBin(t, srv)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	vecs := vecsFor(80, 21)
	ids, err := cl.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 80 {
		t.Fatalf("got %d ids", len(ids))
	}
	res, err := cl.Search(vecs[7], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != ids[7] {
		t.Fatalf("self-search returned %+v, want id %d", res, ids[7])
	}
	batches, err := cl.SearchBatch([][]float32{vecs[3], vecs[40]}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 || batches[0][0].ID != ids[3] || batches[1][0].ID != ids[40] {
		t.Fatalf("batch self-search returned %+v", batches)
	}
	n, err := cl.Delete(ids[:5])
	if err != nil || n != 5 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	// Errors answer the request and keep the pipelined connection usable.
	if _, err := cl.Search([]float32{1, 2}, 3); err == nil {
		t.Fatal("wrong-dim binary search accepted")
	}
	if _, err := cl.Insert(nil); err == nil {
		t.Fatal("empty binary insert accepted")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection broken after binary errors: %v", err)
	}
}

// TestBinaryJSONParity proves both protocols answer identically from the
// same server state — bit-identical neighbor lists, not merely equal
// recall.
func TestBinaryJSONParity(t *testing.T) {
	srv, jcl := startServer(t)
	bcl := dialBin(t, srv)
	vecs := vecsFor(120, 22)
	ids, err := jcl.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if err := jcl.Flush(); err != nil {
		t.Fatal(err)
	}
	queries := vecsFor(16, 23)
	jb, err := jcl.SearchBatch(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := bcl.SearchBatch(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(jb) != len(bb) {
		t.Fatalf("batch counts differ: %d vs %d", len(jb), len(bb))
	}
	for i := range jb {
		if len(jb[i]) != len(bb[i]) {
			t.Fatalf("query %d: %d vs %d hits", i, len(jb[i]), len(bb[i]))
		}
		for j := range jb[i] {
			if jb[i][j] != bb[i][j] {
				t.Fatalf("query %d hit %d: JSON %+v != binary %+v", i, j, jb[i][j], bb[i][j])
			}
		}
	}
	jres, err := jcl.Search(vecs[11], 3)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := bcl.Search(vecs[11], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(jres) != len(bres) || jres[0] != bres[0] {
		t.Fatalf("single-query parity broken: %+v vs %+v", jres, bres)
	}
	_ = ids
}

// TestZeroValuesSurviveBothCodecs is the regression test for the
// omitempty bug: a legitimate generation 0 or deleted-count 0 must be
// spelled out on the JSON wire, and must round-trip through the binary
// codec's fixed-width fields.
func TestZeroValuesSurviveBothCodecs(t *testing.T) {
	// JSON: the zero fields must appear in the encoded bytes.
	raw, err := json.Marshal(&Response{OK: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"deleted":0`, `"generation":0`} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("JSON response %s omits %s", raw, want)
		}
	}
	var back Response
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Deleted != 0 || back.Generation != 0 {
		t.Fatalf("zero values corrupted through JSON: %+v", back)
	}

	// Binary: a Deleted of 0 is a real u32 on the wire.
	body := encodeBinResponse(nil, 42, binDelete, &Response{OK: true, Deleted: 0})
	id, resp, err := decodeBinResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || !resp.OK || resp.Deleted != 0 {
		t.Fatalf("zero Deleted corrupted through binary codec: id=%d %+v", id, resp)
	}

	// End to end: deleting already-deleted ids answers 0 on both
	// protocols.
	srv, jcl := startServer(t)
	bcl := dialBin(t, srv)
	ids, err := jcl.Insert(vecsFor(10, 24))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jcl.Delete(ids[:2]); err != nil {
		t.Fatal(err)
	}
	if n, err := jcl.Delete(ids[:2]); err != nil || n != 0 {
		t.Fatalf("JSON re-delete = %d, %v; want 0", n, err)
	}
	if n, err := bcl.Delete(ids[:2]); err != nil || n != 0 {
		t.Fatalf("binary re-delete = %d, %v; want 0", n, err)
	}
	// And generation 0 of a fresh collection reads back as 0.
	if _, gen, err := jcl.Config(); err != nil || gen != 0 {
		t.Fatalf("fresh generation = %d, %v; want 0", gen, err)
	}
}

func TestGarbagePreambleDropsConnection(t *testing.T) {
	srv := startServerOpts(t, Options{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("VXXXXXXXjunk after a preamble that almost looks binary")); err != nil {
		t.Fatal(err)
	}
	awaitClosed(t, conn)
	assertServerAlive(t, srv)
}

func TestTruncatedFrameDropsConnection(t *testing.T) {
	srv := startServerOpts(t, Options{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Preamble, then a header declaring 100 body bytes with only 10 sent.
	var msg []byte
	msg = append(msg, binPreamble...)
	msg = binary.LittleEndian.AppendUint32(msg, 100)
	msg = binary.LittleEndian.AppendUint32(msg, 0xDEADBEEF)
	msg = append(msg, make([]byte, 10)...)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	awaitClosed(t, conn)
	assertServerAlive(t, srv)
}

func TestCorruptCRCDropsConnection(t *testing.T) {
	srv := startServerOpts(t, Options{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body := beginWireBody(nil, 7, binPing)
	frame := persist.AppendFrame([]byte(binPreamble), body)
	frame[len(frame)-1] ^= 0x40 // tamper inside the body
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	awaitClosed(t, conn)
	assertServerAlive(t, srv)
}

func TestOversizedBinaryFrameRefused(t *testing.T) {
	srv := startServerOpts(t, Options{MaxRequestBytes: 4096})
	cl := dialBin(t, srv)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	// 100 vectors x 8 dims x 4 bytes is ~3.2KB of payload — fine; 2000
	// vectors is ~64KB — over the 4KB cap. The server must answer with a
	// connection-fatal error naming the limit, never allocate the body.
	_, err := cl.Insert(vecsFor(2000, 25))
	if err == nil {
		t.Fatal("oversized binary insert accepted")
	}
	if !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversize error does not name the limit: %v", err)
	}
	// The connection is gone; later calls fail fast.
	if err := cl.Ping(); err == nil {
		t.Fatal("connection survived an oversized frame")
	}
	assertServerAlive(t, srv)
}

func TestOversizedJSONRequestRefused(t *testing.T) {
	srv := startServerOpts(t, Options{MaxRequestBytes: 4096})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	// ~2000 vectors of dim 8 in ASCII blows well past 4KB mid-decode.
	_, err = cl.Insert(vecsFor(2000, 26))
	if err == nil {
		t.Fatal("oversized JSON insert accepted")
	}
	if !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversize error does not name the limit: %v", err)
	}
	if err := cl.Ping(); err == nil {
		t.Fatal("connection survived an oversized JSON request")
	}
	assertServerAlive(t, srv)
}

// TestMalformedPayloadAnswersWithoutDropping: a frame whose checksum
// matches but whose payload contradicts itself (hostile count fields) is
// a per-request error — the stream stays in sync and the connection
// stays up.
func TestMalformedPayloadAnswersWithoutDropping(t *testing.T) {
	srv := startServerOpts(t, Options{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(binPreamble)); err != nil {
		t.Fatal(err)
	}
	// A delete declaring 1<<30 ids with no bytes behind them.
	body := beginWireBody(nil, 9, binDelete)
	body = binary.LittleEndian.AppendUint32(body, 1<<30)
	if _, err := conn.Write(persist.AppendFrame(nil, body)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	respBody, err := persist.ReadFrame(br, maxResponseBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, resp, err := decodeBinResponse(respBody)
	if err != nil {
		t.Fatal(err)
	}
	if id != 9 || resp.OK || resp.Error == "" {
		t.Fatalf("malformed payload answered with id=%d %+v", id, resp)
	}
	// An unknown kind likewise answers by id and keeps the stream.
	body = beginWireBody(nil, 10, 200)
	if _, err := conn.Write(persist.AppendFrame(nil, body)); err != nil {
		t.Fatal(err)
	}
	respBody, err = persist.ReadFrame(br, maxResponseBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, resp, err = decodeBinResponse(respBody)
	if err != nil || id != 10 || resp.OK {
		t.Fatalf("unknown kind: id=%d resp=%+v err=%v", id, resp, err)
	}
	// The same connection still serves real requests.
	body = beginWireBody(nil, 11, binPing)
	if _, err := conn.Write(persist.AppendFrame(nil, body)); err != nil {
		t.Fatal(err)
	}
	respBody, err = persist.ReadFrame(br, maxResponseBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id, resp, err := decodeBinResponse(respBody); err != nil || id != 11 || !resp.OK {
		t.Fatalf("connection broken after malformed payloads: id=%d resp=%+v err=%v", id, resp, err)
	}
}

// TestPipelinedInterleavedBurst hammers one binary connection from many
// goroutines at a small pipeline depth, proving response-to-request
// matching under out-of-order completion and backpressure.
func TestPipelinedInterleavedBurst(t *testing.T) {
	srv := startServerOpts(t, Options{PipelineDepth: 4})
	cl := dialBin(t, srv)
	seed := vecsFor(64, 27)
	ids, err := cl.Insert(seed)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch i % 4 {
				case 0:
					if err := cl.Ping(); err != nil {
						errs <- err
						return
					}
				case 1:
					q := seed[(w*25+i)%len(seed)]
					res, err := cl.Search(q, 1)
					if err != nil {
						errs <- err
						return
					}
					if len(res) != 1 || res[0].ID != ids[(w*25+i)%len(seed)] {
						errs <- fmt.Errorf("worker %d: self-search answered id %d, want %d — responses crossed",
							w, res[0].ID, ids[(w*25+i)%len(seed)])
						return
					}
				case 2:
					qs := [][]float32{seed[w % len(seed)], seed[(w+1)%len(seed)]}
					res, err := cl.SearchBatch(qs, 2)
					if err != nil {
						errs <- err
						return
					}
					if len(res) != 2 {
						errs <- fmt.Errorf("worker %d: %d batch lists", w, len(res))
						return
					}
				default:
					if _, err := cl.Insert(vecsFor(2, int64(1000+w*100+i))); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWireChurnRace mixes JSON and binary clients against insert, delete,
// and flush churn on one server; under -race it proves the whole
// dual-protocol access layer down to the collection is data-race free.
func TestWireChurnRace(t *testing.T) {
	srv, seedClient := startServer(t)
	ids, err := seedClient.Insert(vecsFor(200, 28))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	// Three binary searchers pipelining on one shared client, two JSON
	// clients, one binary inserter, one JSON deleter, one flusher.
	shared := dialBin(t, srv)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := vecsFor(4, int64(500+w))
			for i := 0; i < 20; i++ {
				switch {
				case w < 3:
					if _, err := shared.SearchBatch(batch, 3); err != nil {
						errs <- err
						return
					}
				case w < 5:
					cl, err := Dial(srv.Addr())
					if err != nil {
						errs <- err
						return
					}
					_, serr := cl.Search(batch[0], 3)
					cl.Close()
					if serr != nil {
						errs <- serr
						return
					}
				case w == 5:
					if _, err := shared.Insert(vecsFor(5, int64(700+i))); err != nil {
						errs <- err
						return
					}
				case w == 6:
					if _, err := seedClient.Delete(ids[(3*i)%len(ids) : (3*i)%len(ids)+1]); err != nil {
						errs <- err
						return
					}
				default:
					if i%5 == 0 {
						if err := seedClient.Flush(); err != nil {
							errs <- err
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	assertServerAlive(t, srv)
}

// TestIdleTimeoutReapsDeadClients: with an idle deadline set, a silent
// connection is dropped — the goroutine-and-fd-per-dead-client leak — but
// an active client is never reaped between its requests.
func TestIdleTimeoutReapsDeadClients(t *testing.T) {
	srv := startServerOpts(t, Options{IdleTimeout: 150 * time.Millisecond})
	dead, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	awaitClosed(t, dead) // never sends a byte: must be reaped
	// A binary client that went silent after its preamble is reaped too.
	deadBin, err := DialBinary(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer deadBin.Close()
	start := time.Now()
	for time.Since(start) < 3*time.Second {
		if err := deadBin.Ping(); err != nil {
			break // reaped
		}
		time.Sleep(200 * time.Millisecond)
	}
	if err := deadBin.Ping(); err == nil {
		t.Fatal("idle binary connection never reaped")
	}
	// An active client spanning many idle windows keeps working.
	live, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	for i := 0; i < 8; i++ {
		if err := live.Ping(); err != nil {
			t.Fatalf("active client reaped on ping %d: %v", i, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	assertServerAlive(t, srv)
}

// TestCloseInterruptsIdleConnections: Server.Close must return promptly
// even with connected-but-silent clients on both protocols and an
// arbitrarily long idle timeout.
func TestCloseInterruptsIdleConnections(t *testing.T) {
	cfg := vdms.DefaultConfig()
	coll, err := vdms.NewCollection(cfg, linalg.L2, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	srv, err := NewWithOptions(coll, "127.0.0.1:0", Options{IdleTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	jcl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer jcl.Close()
	if err := jcl.Ping(); err != nil {
		t.Fatal(err)
	}
	bcl, err := DialBinary(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bcl.Close()
	if err := bcl.Ping(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung on idle connections")
	}
}

// TestSampleOverWire covers the remote tuning daemon's corpus-sampling
// op and the metric/dim info read.
func TestSampleOverWire(t *testing.T) {
	_, cl := startServer(t)
	if _, err := cl.Insert(vecsFor(50, 29)); err != nil {
		t.Fatal(err)
	}
	vecs, err := cl.SampleVectors(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 20 || len(vecs[0]) != 8 {
		t.Fatalf("sampled %d vectors of dim %d", len(vecs), len(vecs[0]))
	}
	if _, err := cl.SampleVectors(0); err == nil {
		t.Fatal("sample count 0 accepted")
	}
	m, dim, err := cl.Info()
	if err != nil {
		t.Fatal(err)
	}
	if m != linalg.L2 || dim != 8 {
		t.Fatalf("Info = (%v, %d), want (L2, 8)", m, dim)
	}
}
