package server

import (
	"math/rand"
	"sync"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/vdms"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.IVFFlat
	cfg.Build.NList = 8
	cfg.Search.NProbe = 8
	coll, err := vdms.NewCollection(cfg, linalg.L2, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(coll, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
		coll.Close()
	})
	return srv, cl
}

func vecsFor(n int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		out[i] = make([]float32, 8)
		for j := range out[i] {
			out[i][j] = float32(rng.NormFloat64())
		}
	}
	return out
}

func TestPing(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSearchOverWire(t *testing.T) {
	_, cl := startServer(t)
	vecs := vecsFor(60, 1)
	ids, err := cl.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 60 {
		t.Fatalf("got %d ids", len(ids))
	}
	res, err := cl.Search(vecs[11], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != ids[11] {
		t.Fatalf("self-search returned %+v, want id %d", res, ids[11])
	}
}

func TestFlushAndStats(t *testing.T) {
	_, cl := startServer(t)
	if _, err := cl.Insert(vecsFor(300, 2)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 300 {
		t.Fatalf("stats rows = %d", st.Rows)
	}
	if st.Sealed < 1 || st.GrowingRows != 0 {
		t.Fatalf("flush did not seal: %+v", st)
	}
}

func TestServerErrors(t *testing.T) {
	_, cl := startServer(t)
	if _, err := cl.Insert(nil); err == nil {
		t.Fatal("empty insert accepted")
	}
	if _, err := cl.Search([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := cl.Insert([][]float32{{1}}); err == nil {
		t.Fatal("wrong-dim insert accepted")
	}
	// The connection must survive errors.
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
}

func TestUnknownOp(t *testing.T) {
	srv, _ := startServer(t)
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.call(&Request{Op: "bogus"})
	if err == nil {
		t.Fatalf("unknown op accepted: %+v", resp)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, seedClient := startServer(t)
	if _, err := seedClient.Insert(vecsFor(100, 3)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			q := vecsFor(1, int64(100+w))[0]
			for i := 0; i < 25; i++ {
				if _, err := cl.Search(q, 5); err != nil {
					errs <- err
					return
				}
			}
			if _, err := cl.Insert(vecsFor(10, int64(200+w))); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, err := seedClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 100+8*10 {
		t.Fatalf("rows = %d, want 180", st.Rows)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	cfg := vdms.DefaultConfig()
	coll, err := vdms.NewCollection(cfg, linalg.L2, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	srv, err := New(coll, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr)
	if err != nil {
		return // connection refused: fine
	}
	defer cl.Close()
	if err := cl.Ping(); err == nil {
		t.Fatal("ping succeeded on closed server")
	}
}

func TestDeleteOverWire(t *testing.T) {
	_, cl := startServer(t)
	vecs := vecsFor(40, 4)
	ids, err := cl.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	n, err := cl.Delete(ids[:3])
	if err != nil || n != 3 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	res, err := cl.Search(vecs[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == ids[0] {
			t.Fatal("deleted id returned over the wire")
		}
	}
	// Idempotent re-delete.
	n, err = cl.Delete(ids[:3])
	if err != nil || n != 0 {
		t.Fatalf("re-Delete = %d, %v", n, err)
	}
}
