package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/vdms"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.IVFFlat
	cfg.Build.NList = 8
	cfg.Search.NProbe = 8
	coll, err := vdms.NewCollection(cfg, linalg.L2, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(coll, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
		coll.Close()
	})
	return srv, cl
}

func vecsFor(n int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		out[i] = make([]float32, 8)
		for j := range out[i] {
			out[i][j] = float32(rng.NormFloat64())
		}
	}
	return out
}

func TestPing(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSearchOverWire(t *testing.T) {
	_, cl := startServer(t)
	vecs := vecsFor(60, 1)
	ids, err := cl.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 60 {
		t.Fatalf("got %d ids", len(ids))
	}
	res, err := cl.Search(vecs[11], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != ids[11] {
		t.Fatalf("self-search returned %+v, want id %d", res, ids[11])
	}
}

func TestFlushAndStats(t *testing.T) {
	_, cl := startServer(t)
	if _, err := cl.Insert(vecsFor(300, 2)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 300 {
		t.Fatalf("stats rows = %d", st.Rows)
	}
	if st.Sealed < 1 || st.GrowingRows != 0 {
		t.Fatalf("flush did not seal: %+v", st)
	}
}

func TestServerErrors(t *testing.T) {
	_, cl := startServer(t)
	if _, err := cl.Insert(nil); err == nil {
		t.Fatal("empty insert accepted")
	}
	if _, err := cl.Search([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := cl.Insert([][]float32{{1}}); err == nil {
		t.Fatal("wrong-dim insert accepted")
	}
	// The connection must survive errors.
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
}

func TestUnknownOp(t *testing.T) {
	srv, _ := startServer(t)
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.call(&Request{Op: "bogus"})
	if err == nil {
		t.Fatalf("unknown op accepted: %+v", resp)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, seedClient := startServer(t)
	if _, err := seedClient.Insert(vecsFor(100, 3)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			q := vecsFor(1, int64(100+w))[0]
			for i := 0; i < 25; i++ {
				if _, err := cl.Search(q, 5); err != nil {
					errs <- err
					return
				}
			}
			if _, err := cl.Insert(vecsFor(10, int64(200+w))); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, err := seedClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 100+8*10 {
		t.Fatalf("rows = %d, want 180", st.Rows)
	}
}

func TestSearchBatchOverWire(t *testing.T) {
	_, cl := startServer(t)
	vecs := vecsFor(80, 5)
	ids, err := cl.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]float32{vecs[3], vecs[17], vecs[42]}
	res, err := cl.SearchBatch(batch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d batches, want 3", len(res))
	}
	for bi, want := range []int64{ids[3], ids[17], ids[42]} {
		if len(res[bi]) == 0 || res[bi][0].ID != want {
			t.Fatalf("batch %d: self-search returned %+v, want id %d", bi, res[bi], want)
		}
	}
	// Single-query parity: batch slot must equal the "search" op answer.
	single, err := cl.Search(vecs[3], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != len(res[0]) || single[0] != res[0][0] {
		t.Fatalf("batch answer %+v != single answer %+v", res[0], single)
	}
}

func TestSearchBatchWireErrors(t *testing.T) {
	_, cl := startServer(t)
	if _, err := cl.Insert(vecsFor(20, 6)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SearchBatch(vecsFor(2, 7), 0); err == nil {
		t.Fatal("k=0 batch accepted")
	}
	if _, err := cl.SearchBatch([][]float32{{1, 2}}, 3); err == nil {
		t.Fatal("wrong-dim batch accepted")
	}
	// Empty batches are valid and return no lists.
	res, err := cl.SearchBatch(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty batch returned %d lists", len(res))
	}
	// The connection must survive errors.
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection broken after batch errors: %v", err)
	}
}

// TestConcurrentBatchClients drives batched searches, inserts, deletes,
// and flushes from many connections at once; under -race it proves the
// whole wire path down to the collection's batch fan-out is safe.
func TestConcurrentBatchClients(t *testing.T) {
	srv, seedClient := startServer(t)
	ids, err := seedClient.Insert(vecsFor(200, 8))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			batch := vecsFor(8, int64(300+w))
			for i := 0; i < 20; i++ {
				switch {
				case w < 3: // batch searchers
					res, err := cl.SearchBatch(batch, 4)
					if err != nil {
						errs <- err
						return
					}
					if len(res) != len(batch) {
						errs <- fmt.Errorf("got %d lists, want %d", len(res), len(batch))
						return
					}
				case w == 3: // inserter
					if _, err := cl.Insert(vecsFor(15, int64(400+i))); err != nil {
						errs <- err
						return
					}
				case w == 4: // deleter
					if _, err := cl.Delete(ids[(2*i)%len(ids) : (2*i)%len(ids)+2]); err != nil {
						errs <- err
						return
					}
				default: // flusher
					if i%5 == 0 {
						if err := cl.Flush(); err != nil {
							errs <- err
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, err := seedClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Rows counts live rows: the deleter removed ids[0:40], one id each.
	if st.Rows != 200+20*15-40 {
		t.Fatalf("rows = %d, want %d", st.Rows, 200+20*15-40)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	cfg := vdms.DefaultConfig()
	coll, err := vdms.NewCollection(cfg, linalg.L2, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	srv, err := New(coll, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr)
	if err != nil {
		return // connection refused: fine
	}
	defer cl.Close()
	if err := cl.Ping(); err == nil {
		t.Fatal("ping succeeded on closed server")
	}
}

func TestDeleteOverWire(t *testing.T) {
	_, cl := startServer(t)
	vecs := vecsFor(40, 4)
	ids, err := cl.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	n, err := cl.Delete(ids[:3])
	if err != nil || n != 3 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	res, err := cl.Search(vecs[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == ids[0] {
			t.Fatal("deleted id returned over the wire")
		}
	}
	// Idempotent re-delete.
	n, err = cl.Delete(ids[:3])
	if err != nil || n != 0 {
		t.Fatalf("re-Delete = %d, %v", n, err)
	}
}

func TestWrongDimSearchOverWire(t *testing.T) {
	// Regression: a wrong-dimension single-query search used to panic
	// inside the distance kernel and take down the whole process. It must
	// answer with an error and keep the connection usable.
	_, cl := startServer(t)
	if _, err := cl.Insert(vecsFor(60, 9)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Search([]float32{1, 2}, 3); err == nil {
		t.Fatal("wrong-dim search accepted")
	}
	if _, err := cl.Search(nil, 3); err == nil {
		t.Fatal("nil query accepted")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection broken after bad search: %v", err)
	}
}

func TestDispatchRecoversPanic(t *testing.T) {
	// A panicking handler must yield an error response, not crash the
	// process. A nil collection makes every data op panic.
	s := &Server{}
	resp := s.dispatch(&Request{Op: "stats"})
	if resp == nil || resp.OK || resp.Error == "" {
		t.Fatalf("panic not converted to error response: %+v", resp)
	}
	if resp := s.dispatch(&Request{Op: "ping"}); !resp.OK {
		t.Fatalf("ping broken by recovery wrapper: %+v", resp)
	}
}

func TestCompactOverWire(t *testing.T) {
	_, cl := startServer(t)
	vecs := vecsFor(400, 10)
	ids, err := cl.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Delete(ids[:200]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Compact(); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tombstones != 0 {
		t.Fatalf("tombstones = %d after compact op, want 0", st.Tombstones)
	}
	if st.Rows != 200 {
		t.Fatalf("live rows = %d, want 200", st.Rows)
	}
	if st.ReclaimedRows != 200 || st.CompactionPasses == 0 {
		t.Fatalf("compaction counters not surfaced over the wire: %+v", st)
	}
	// Live data still findable, deleted ids gone.
	res, err := cl.Search(vecs[300], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].ID != ids[300] {
		t.Fatalf("post-compact search returned %+v, want top id %d", res, ids[300])
	}
}

func TestReconfigureOverWire(t *testing.T) {
	srv, cl := startServer(t)
	if _, err := cl.Insert(vecsFor(300, 9)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	// Read back the active configuration; generation starts at 0.
	cfg, gen, err := cl.Config()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 {
		t.Fatalf("fresh collection at generation %d", gen)
	}
	if cfg.IndexType != index.IVFFlat || cfg.Search.NProbe != 8 {
		t.Fatalf("config read back wrong: %+v", cfg)
	}

	// Hot swap over the wire.
	hot := *cfg
	hot.Search.NProbe = 2
	gen, err = cl.Reconfigure(hot)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("hot swap produced generation %d, want 1", gen)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ConfigGeneration != 1 || st.IndexType != index.IVFFlat || st.ShardCount != 1 || st.MigrationInProgress {
		t.Fatalf("stats after hot swap: %+v", st)
	}

	// Cold change: a reshard plus index-type migration, all over the wire.
	cold := hot
	cold.IndexType = index.Flat
	cold.Build = index.BuildParams{}
	cold.ShardCount = 3
	gen, err = cl.Reconfigure(cold)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("migration produced generation %d, want 2", gen)
	}
	st, err = cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ConfigGeneration != 2 || st.IndexType != index.Flat || st.ShardCount != 3 {
		t.Fatalf("stats after migration: %+v", st)
	}
	if st.Rows != 300 {
		t.Fatalf("migration lost rows: %d", st.Rows)
	}
	// The migrated engine still serves.
	res, err := cl.Search(vecsFor(1, 10)[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("post-migration search returned %d hits", len(res))
	}

	// Out-of-range configurations are refused with the shared validator.
	bad := *cfg
	bad.Parallelism = 999
	if _, err := cl.Reconfigure(bad); err == nil {
		t.Fatal("out-of-range config accepted over the wire")
	}

	// The query log window records served queries for the tuning loop.
	srv.EnableQueryLog(8)
	qs := vecsFor(12, 11)
	for _, q := range qs[:4] {
		if _, err := cl.Search(q, 3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.SearchBatch(qs[4:], 3); err != nil {
		t.Fatal(err)
	}
	got := srv.TakeQueries()
	if len(got) != 8 {
		t.Fatalf("query window holds %d queries, want capacity 8", len(got))
	}
	// Newest-8 of the 12 served: qs[4:12].
	for i, q := range got {
		want := qs[4+i]
		for j := range q {
			if q[j] != want[j] {
				t.Fatalf("query window entry %d mismatches served query", i)
			}
		}
	}
	if srv.TakeQueries() != nil {
		t.Fatal("drained window not empty")
	}
}
