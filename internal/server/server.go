// Package server provides the engine's access layer: a TCP front end over
// a live vdms.Collection speaking two protocols on one port, plus
// matching clients. It mirrors the access/worker split of the paper's
// VDMS architecture (§II-A, "Multiple Components") so that the engine can
// be exercised over a real network path.
//
// # Protocols
//
// Every connection starts in newline-delimited JSON — one Request object
// per message, one Response per reply, strictly in order. A client that
// instead opens with the 8-byte preamble "VDMSBIN1" switches the
// connection to the binary protocol: the hot ops (ping, insert, search,
// searchBatch, delete) framed as length-prefixed CRC32-C-checksummed
// records (internal/persist's framing idiom) with raw little-endian
// float32 payloads, and request pipelining — every frame carries a
// request id, a client may keep many requests in flight on one
// connection, and the server answers each as soon as it completes,
// possibly out of order. In-flight binary requests per connection are
// bounded (Options.PipelineDepth): when the bound is reached the server
// simply stops reading the connection, so a client that outruns the
// server is backpressured by TCP instead of ballooning server memory. See
// codec.go for the exact frame layout, and the README's "Wire protocol"
// section for the negotiation and pipelining semantics.
//
// Both protocols are hardened against misbehaving peers: a single request
// may not exceed Options.MaxRequestBytes on the wire (an oversized
// request gets an error response and the connection is dropped — never an
// unbounded allocation), and with Options.IdleTimeout set, a connection
// that stays silent longer than the timeout is closed, so dead clients
// cannot leak a handler goroutine and file descriptor forever.
//
// # Ops
//
// JSON ops: "ping", "insert", "search", "searchBatch", "delete", "flush",
// "compact", "persist", "stats", "reconfigure", "config", "sample". The
// "reconfigure" op applies a full vdms.Config to the live collection
// through its online reconfiguration path — hot-knob changes swap
// atomically, cold-knob changes run a background migration — and answers
// with the new config generation; "config" reads back the active
// configuration, generation, metric, and dimensionality; "sample" returns
// a deterministic sample of live vectors (the remote tuning daemon's
// evaluation corpus). The "searchBatch" op answers a whole query batch in
// one round trip; the server fans it across the collection's configured
// queryNode parallelism under every shard's read lock (acquired in fixed
// order), so the batch observes one consistent snapshot of the whole
// segment lifecycle. The "compact" op runs segment compaction to
// quiescence on every shard (deletes trigger it in the background anyway;
// the explicit op exists for operational control). The "persist" op
// checkpoints a durable collection — per-shard snapshots to disk,
// per-shard WALs truncated — and is a no-op on a memory-only one; the
// "stats" reply reports the aggregate durability position (WALBytes,
// LastCheckpointLSN, WALLastLSN) plus a per-shard breakdown (Shards:
// rows, segment states, tombstones, WAL position of every shard, in
// shard order).
//
// Connections are handled on one goroutine each (plus a bounded worker
// pool per pipelined binary connection), and the underlying collection is
// safe for concurrent use, so any number of clients may mix reads and
// writes across both protocols. A panicking request handler answers that
// request with an error response instead of taking down the process.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/vdms"
)

// Request is one client command.
type Request struct {
	// Op is one of "ping", "insert", "search", "searchBatch", "delete",
	// "flush", "compact", "persist", "stats", "reconfigure", "config",
	// "sample".
	Op string `json:"op"`
	// Vectors carries the rows for "insert".
	Vectors [][]float32 `json:"vectors,omitempty"`
	// Query and K parameterize "search"; K is shared with "searchBatch"
	// and doubles as the sample size for "sample".
	Query []float32 `json:"query,omitempty"`
	K     int       `json:"k,omitempty"`
	// Queries carries the batch for "searchBatch". The server fans the
	// batch across the collection's configured parallelism and answers
	// all queries in one round trip.
	Queries [][]float32 `json:"queries,omitempty"`
	// IDs carries the ids for "delete".
	IDs []int64 `json:"ids,omitempty"`
	// Config carries the target configuration for "reconfigure".
	Config *vdms.Config `json:"config,omitempty"`
}

// Neighbor is one search hit on the wire.
type Neighbor struct {
	ID   int64   `json:"id"`
	Dist float32 `json:"dist"`
}

// Response is the server's reply to one Request.
type Response struct {
	OK        bool       `json:"ok"`
	Error     string     `json:"error,omitempty"`
	IDs       []int64    `json:"ids,omitempty"`
	Neighbors []Neighbor `json:"neighbors,omitempty"`
	// Batches[i] answers Queries[i] of a "searchBatch" request.
	Batches [][]Neighbor          `json:"batches,omitempty"`
	Stats   *vdms.CollectionStats `json:"stats,omitempty"`
	// Deleted is the number of ids newly tombstoned by "delete". Never
	// omitempty: a delete that tombstoned nothing legitimately answers 0,
	// and the zero must be on the wire, not inferred from absence.
	Deleted int `json:"deleted"`
	// Config answers a "config" request with the active configuration.
	Config *vdms.Config `json:"config,omitempty"`
	// Generation is the config generation after "reconfigure" (or the
	// active one for "config"). Never omitempty: generation 0 is the
	// legitimate state of every fresh collection.
	Generation uint64 `json:"generation"`
	// Metric and Dim describe the collection on a "config" reply (the
	// metric in its String form: "L2", "IP", "Angular").
	Metric string `json:"metric,omitempty"`
	Dim    int    `json:"dim,omitempty"`
	// Vectors answers a "sample" request with live corpus rows.
	Vectors [][]float32 `json:"vectors,omitempty"`
}

// Options hardens and tunes the access layer. The zero value is the
// library default: a generous request cap, no idle timeout (so in-process
// tests and trusted links behave exactly as before), and a pipeline depth
// of 64. vdmsd turns the idle timeout on.
type Options struct {
	// MaxRequestBytes caps the wire size of one request on both
	// protocols: the declared frame length on the binary protocol, and
	// the bytes a single JSON message may pull off the socket. An
	// oversized request gets an error response and the connection is
	// dropped — never an unbounded allocation. 0 means 64 MiB.
	MaxRequestBytes int
	// IdleTimeout closes a connection when no request data arrives for
	// this long, so dead clients cannot leak a handler goroutine and file
	// descriptor forever. 0 means no timeout.
	IdleTimeout time.Duration
	// PipelineDepth bounds the in-flight binary requests per connection
	// (being served or queued for writing). When the bound is hit the
	// server stops reading that connection until responses drain —
	// backpressure instead of unbounded buffering. 0 means 64.
	PipelineDepth int
}

const (
	defaultMaxRequestBytes = 64 << 20
	defaultPipelineDepth   = 64
)

func (o Options) maxRequestBytes() int {
	if o.MaxRequestBytes <= 0 {
		return defaultMaxRequestBytes
	}
	return o.MaxRequestBytes
}

func (o Options) pipelineDepth() int {
	if o.PipelineDepth <= 0 {
		return defaultPipelineDepth
	}
	return o.PipelineDepth
}

// Server exposes one collection over TCP.
type Server struct {
	coll *vdms.Collection
	ln   net.Listener
	opts Options

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// qlog is the bounded window of recently served queries, recorded
	// when EnableQueryLog was called; the in-process tuning daemon drains
	// it to observe the live workload.
	qmu   sync.Mutex
	qlog  [][]float32
	qcap  int
	qhead int
	qfull bool
}

// EnableQueryLog starts recording served search queries into a bounded
// ring of the given capacity (the newest capacity queries are kept). The
// tuning daemon drains the ring with TakeQueries; recording references
// the decoded query slices, which the server never reuses, so it costs no
// copies on the serving path.
func (s *Server) EnableQueryLog(capacity int) {
	if capacity <= 0 {
		capacity = 4096
	}
	s.qmu.Lock()
	s.qlog = make([][]float32, 0, capacity)
	s.qcap = capacity
	s.qhead = 0
	s.qfull = false
	s.qmu.Unlock()
}

// recordQueries appends served queries to the ring, if enabled.
func (s *Server) recordQueries(qs ...[]float32) {
	s.qmu.Lock()
	if s.qcap > 0 {
		for _, q := range qs {
			if len(s.qlog) < s.qcap {
				s.qlog = append(s.qlog, q)
			} else {
				s.qlog[s.qhead] = q
				s.qhead = (s.qhead + 1) % s.qcap
				s.qfull = true
			}
		}
	}
	s.qmu.Unlock()
}

// TakeQueries drains and returns the recorded query window (oldest
// first). It returns nil when the log is disabled or empty.
func (s *Server) TakeQueries() [][]float32 {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if len(s.qlog) == 0 {
		return nil
	}
	out := make([][]float32, 0, len(s.qlog))
	if s.qfull {
		out = append(out, s.qlog[s.qhead:]...)
		out = append(out, s.qlog[:s.qhead]...)
	} else {
		out = append(out, s.qlog...)
	}
	s.qlog = s.qlog[:0]
	s.qhead = 0
	s.qfull = false
	return out
}

// New starts a server for coll listening on addr (e.g. "127.0.0.1:0")
// with default Options.
func New(coll *vdms.Collection, addr string) (*Server, error) {
	return NewWithOptions(coll, addr, Options{})
}

// NewWithOptions starts a server with explicit access-layer limits.
func NewWithOptions(coll *vdms.Collection, addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{coll: coll, ln: ln, opts: opts, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every connection, and waits for handlers.
// The underlying collection is not closed.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// errRequestTooLarge is the sentinel a connReader returns when one
// message exhausts its byte budget. It surfaces from json.Decoder (which
// returns reader errors verbatim) and marks the connection for an
// apologetic error response before the drop.
var errRequestTooLarge = errors.New("server: request exceeds the per-request byte limit")

// connReader is the read side of one connection: it arms the idle
// deadline before every read from the socket and enforces the
// per-message byte budget, which the protocol loops reset before each
// message. Bytes already buffered upstream (bufio read-ahead) were
// counted when they were read, so the budget bounds what any single
// message can pull into memory, not exact message length.
type connReader struct {
	conn   net.Conn
	idle   time.Duration
	budget int64
}

func (r *connReader) reset(budget int) { r.budget = int64(budget) }

func (r *connReader) Read(p []byte) (int, error) {
	if r.budget <= 0 {
		return 0, errRequestTooLarge
	}
	if int64(len(p)) > r.budget {
		p = p[:r.budget]
	}
	if r.idle > 0 {
		r.conn.SetReadDeadline(time.Now().Add(r.idle))
	}
	n, err := r.conn.Read(p)
	r.budget -= int64(n)
	return n, err
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		// A panic that escapes dispatch's own recovery (e.g. inside the
		// codec) drops this connection only, never the whole process.
		recover()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	cr := &connReader{conn: conn, idle: s.opts.IdleTimeout}
	cr.reset(s.opts.maxRequestBytes())
	br := bufio.NewReader(cr)
	// Negotiate the protocol on the first byte: the binary preamble's 'V'
	// can never begin a JSON value. A preamble that starts like binary but
	// doesn't match is garbage from something speaking neither protocol —
	// drop it without guessing at a reply encoding.
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == binPreamble[0] {
		var pre [len(binPreamble)]byte
		if _, err := io.ReadFull(br, pre[:]); err != nil || string(pre[:]) != binPreamble {
			return
		}
		s.handleBinary(conn, cr, br)
		return
	}
	s.handleJSON(conn, cr, br)
}

// handleJSON serves the newline-delimited JSON protocol: strictly ordered
// request/response pairs, exactly as every pre-binary client expects.
func (s *Server) handleJSON(conn net.Conn, cr *connReader, br *bufio.Reader) {
	w := bufio.NewWriter(conn)
	dec := json.NewDecoder(br)
	enc := json.NewEncoder(w)
	for {
		cr.reset(s.opts.maxRequestBytes())
		var req Request
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, errRequestTooLarge) {
				// Tell the client why before dropping: the stream is mid-
				// message and cannot be resynchronized.
				enc.Encode(&Response{Error: fmt.Sprintf(
					"request exceeds the server's %d-byte limit", s.opts.maxRequestBytes())})
				w.Flush()
			}
			return // EOF, timeout, or broken stream: drop the connection
		}
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch answers one request. A panic while serving it (a malformed
// request slipping past validation, an engine bug) is converted into an
// error response so one bad request cannot crash the server.
func (s *Server) dispatch(req *Request) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = &Response{Error: fmt.Sprintf("internal error serving %q: %v", req.Op, r)}
		}
	}()
	switch req.Op {
	case "ping":
		return &Response{OK: true}
	case "insert":
		if len(req.Vectors) == 0 {
			return &Response{Error: "insert: no vectors"}
		}
		ids, err := s.coll.Insert(req.Vectors)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, IDs: ids}
	case "search":
		if req.K < 1 {
			return &Response{Error: "search: k must be >= 1"}
		}
		var st index.Stats
		res, err := s.coll.Search(req.Query, req.K, &st)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		s.recordQueries(req.Query)
		out := make([]Neighbor, len(res))
		for i, n := range res {
			out[i] = Neighbor{ID: n.ID, Dist: n.Dist}
		}
		return &Response{OK: true, Neighbors: out}
	case "searchBatch":
		if req.K < 1 {
			return &Response{Error: "searchBatch: k must be >= 1"}
		}
		var st index.Stats
		res, err := s.coll.SearchBatch(req.Queries, req.K, &st)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		s.recordQueries(req.Queries...)
		batches := make([][]Neighbor, len(res))
		for i, list := range res {
			batches[i] = make([]Neighbor, len(list))
			for j, n := range list {
				batches[i][j] = Neighbor{ID: n.ID, Dist: n.Dist}
			}
		}
		return &Response{OK: true, Batches: batches}
	case "delete":
		n, err := s.coll.Delete(req.IDs)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, Deleted: n}
	case "flush":
		if err := s.coll.Flush(); err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true}
	case "compact":
		if err := s.coll.Compact(); err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true}
	case "persist":
		if err := s.coll.Checkpoint(); err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true}
	case "stats":
		st := s.coll.Stats()
		return &Response{OK: true, Stats: &st}
	case "reconfigure":
		if req.Config == nil {
			return &Response{Error: "reconfigure: missing config"}
		}
		gen, err := s.coll.Reconfigure(*req.Config)
		if err != nil {
			return &Response{Error: err.Error()}
		}
		return &Response{OK: true, Generation: gen}
	case "config":
		cfg := s.coll.Config()
		return &Response{
			OK: true, Config: &cfg,
			Generation: s.coll.Stats().ConfigGeneration,
			Metric:     s.coll.Metric().String(),
			Dim:        s.coll.Dim(),
		}
	case "sample":
		if req.K < 1 {
			return &Response{Error: "sample: count must be >= 1"}
		}
		return &Response{OK: true, Vectors: s.coll.SampleVectors(req.K)}
	default:
		return &Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client is a synchronous connection to a Server. It is safe for
// concurrent use; requests are serialized on the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	w    *bufio.Writer
}

// Dial connects to a server address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(conn)
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(w),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		w:    w,
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return &resp, errors.New(resp.Error)
	}
	return &resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Op: "ping"})
	return err
}

// Insert sends rows and returns their assigned ids.
func (c *Client) Insert(vecs [][]float32) ([]int64, error) {
	resp, err := c.call(&Request{Op: "insert", Vectors: vecs})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Search returns the k nearest neighbors of q.
func (c *Client) Search(q []float32, k int) ([]Neighbor, error) {
	resp, err := c.call(&Request{Op: "search", Query: q, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// SearchBatch answers every query in one round trip; result i corresponds
// to queries[i]. The server fans the batch across its configured
// parallelism, so a batched call is both cheaper on the wire and faster to
// serve than k sequential Searches.
func (c *Client) SearchBatch(queries [][]float32, k int) ([][]Neighbor, error) {
	resp, err := c.call(&Request{Op: "searchBatch", Queries: queries, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Batches, nil
}

// Delete tombstones ids on the server and reports how many were new.
func (c *Client) Delete(ids []int64) (int, error) {
	resp, err := c.call(&Request{Op: "delete", IDs: ids})
	if err != nil {
		return 0, err
	}
	return resp.Deleted, nil
}

// Flush seals and waits for index builds on the server.
func (c *Client) Flush() error {
	_, err := c.call(&Request{Op: "flush"})
	return err
}

// Compact runs segment compaction on the server until no segment exceeds
// the configured tombstone-ratio trigger and no merge is possible.
func (c *Client) Compact() error {
	_, err := c.call(&Request{Op: "compact"})
	return err
}

// Persist checkpoints the server's collection: a full snapshot is written
// to its data directory and the write-ahead log is truncated to the
// records beyond it. On a memory-only collection it is a no-op.
func (c *Client) Persist() error {
	_, err := c.call(&Request{Op: "persist"})
	return err
}

// Stats fetches the collection snapshot.
func (c *Client) Stats() (*vdms.CollectionStats, error) {
	resp, err := c.call(&Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Reconfigure applies cfg to the server's collection online and returns
// the new config generation. Hot-knob changes swap atomically; cold-knob
// changes (index type or build parameters, segment sizing, shard count)
// run a background migration — the call returns when the new shape
// serves, with reads and writes admitted throughout.
func (c *Client) Reconfigure(cfg vdms.Config) (uint64, error) {
	resp, err := c.call(&Request{Op: "reconfigure", Config: &cfg})
	if err != nil {
		return 0, err
	}
	return resp.Generation, nil
}

// Config fetches the collection's active configuration and generation.
func (c *Client) Config() (*vdms.Config, uint64, error) {
	resp, err := c.call(&Request{Op: "config"})
	if err != nil {
		return nil, 0, err
	}
	return resp.Config, resp.Generation, nil
}

// Info fetches the collection's distance metric and dimensionality.
func (c *Client) Info() (linalg.Metric, int, error) {
	resp, err := c.call(&Request{Op: "config"})
	if err != nil {
		return 0, 0, err
	}
	m, err := linalg.ParseMetric(resp.Metric)
	if err != nil {
		return 0, 0, err
	}
	return m, resp.Dim, nil
}

// SampleVectors fetches a deterministic sample of up to n live corpus
// vectors — the evaluation corpus of a remote tuning daemon.
func (c *Client) SampleVectors(n int) ([][]float32, error) {
	resp, err := c.call(&Request{Op: "sample", K: n})
	if err != nil {
		return nil, err
	}
	return resp.Vectors, nil
}
