package server

import (
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/vdms"
)

// TestPersistOpAndRecovery drives the durability surface over the wire:
// insert through a client, checkpoint with the "persist" op, crash the
// collection, recover it into a fresh server, and read the data back.
func TestPersistOpAndRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.Flat
	cfg.WALFsyncPolicy = 3
	coll, err := vdms.OpenDurable(dir, cfg, linalg.L2, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(coll, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	vecs := [][]float32{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}}
	ids, err := cl.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Persist(); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.LastCheckpointLSN == 0 {
		t.Fatalf("stats after persist: %+v, want a checkpoint LSN", st)
	}
	cl.Close()
	srv.Close()
	coll.Crash()

	rec, err := vdms.OpenDurable(dir, cfg, linalg.L2, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	srv2, err := New(rec, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl2, err := Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	st, err = cl2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != int64(len(vecs)) {
		t.Fatalf("recovered server reports %d rows, want %d", st.Rows, len(vecs))
	}
	hits, err := cl2.Search(vecs[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].ID != ids[1] || hits[0].Dist != 0 {
		t.Fatalf("recovered server lost vector: %+v", hits)
	}
}

// TestPersistOpOnMemoryCollection: the op succeeds (no-op) without a data
// directory.
func TestPersistOpOnMemoryCollection(t *testing.T) {
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.Flat
	coll, err := vdms.NewCollection(cfg, linalg.L2, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	srv, err := New(coll, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Persist(); err != nil {
		t.Fatal(err)
	}
}
