package server

// The binary wire codec. Every message — request or response — is one
// frame in internal/persist's record framing:
//
//	u32 length | u32 CRC32-C(body) | body
//	body = u64 requestID | u8 kind | payload
//
// exactly a WAL record with the LSN slot carrying the request id. All
// integers are little-endian; float32 payloads are raw IEEE-754 bit
// patterns (math.Float32bits), never ASCII. Every field is fixed-width,
// so zero values (a Deleted count of 0, a generation 0) are encoded and
// decoded like any other — nothing "vanishes" the way an omitempty JSON
// field can.
//
// A connection opts into the binary protocol by sending the 8-byte
// preamble "VDMSBIN1" immediately after connecting; its first byte 'V'
// can never begin a JSON value, which is how one listening port serves
// both protocols. Request ids are chosen by the client (any nonzero
// value; the pipelined client uses a counter) and echoed verbatim on the
// matching response, which may arrive out of order. The id 0 is reserved
// for connection-fatal server errors that cannot be attributed to one
// request (an oversized frame whose body was never read).
//
// Request kinds and payloads (the hot ops only — everything else stays on
// the JSON protocol):
//
//	binPing        (none)
//	binInsert      u32 count | u32 dim | count*dim raw f32
//	binSearch      u32 k | u32 dim | dim raw f32
//	binSearchBatch u32 k | u32 count | u32 dim | count*dim raw f32
//	binDelete      u32 n | n * u64 id
//
// Response kinds and payloads:
//
//	binErr             UTF-8 message (request failed; conn stays up for id != 0)
//	binPong            (none)
//	binInsertResp      u32 n | n * u64 id
//	binSearchResp      u32 n | n * (u64 id | u32 f32bits dist)
//	binSearchBatchResp u32 batches | per batch: u32 n | n * (id | dist)
//	binDeleteResp      u32 deleted

import (
	"encoding/binary"
	"fmt"
	"math"
)

// binPreamble is the magic a client sends to negotiate the binary
// protocol; any other first byte on a fresh connection selects JSON.
const binPreamble = "VDMSBIN1"

// Binary message kinds. Requests and responses share the body layout;
// the kind byte disambiguates them.
const (
	binPing        byte = 1
	binInsert      byte = 2
	binSearch      byte = 3
	binSearchBatch byte = 4
	binDelete      byte = 5

	binErr             byte = 100
	binPong            byte = 101
	binInsertResp      byte = 102
	binSearchResp      byte = 103
	binSearchBatchResp byte = 104
	binDeleteResp      byte = 105
)

// wireBodyHeaderLen is the fixed body prefix: request id + kind.
const wireBodyHeaderLen = 9

// beginWireBody appends the body header (request id + kind) onto dst.
func beginWireBody(dst []byte, id uint64, kind byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, id)
	return append(dst, kind)
}

func appendU32(dst []byte, v int) []byte {
	return binary.LittleEndian.AppendUint32(dst, uint32(v))
}

func appendRawFloat32s(dst []byte, xs []float32) []byte {
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(x))
	}
	return dst
}

// encodeBinRequest builds the body of one request. Vector arguments must
// be rectangular (every row of the declared dimension); the caller
// validates before encoding.
func encodeBinRequest(dst []byte, id uint64, req *Request) ([]byte, error) {
	switch req.Op {
	case "ping":
		return beginWireBody(dst, id, binPing), nil
	case "insert":
		dim := 0
		if len(req.Vectors) > 0 {
			dim = len(req.Vectors[0])
		}
		dst = beginWireBody(dst, id, binInsert)
		dst = appendU32(dst, len(req.Vectors))
		dst = appendU32(dst, dim)
		for _, v := range req.Vectors {
			if len(v) != dim {
				return nil, fmt.Errorf("server: ragged insert batch (row of %d floats in a dim-%d batch) cannot be binary-encoded", len(v), dim)
			}
			dst = appendRawFloat32s(dst, v)
		}
		return dst, nil
	case "search":
		dst = beginWireBody(dst, id, binSearch)
		dst = appendU32(dst, req.K)
		dst = appendU32(dst, len(req.Query))
		return appendRawFloat32s(dst, req.Query), nil
	case "searchBatch":
		dim := 0
		if len(req.Queries) > 0 {
			dim = len(req.Queries[0])
		}
		dst = beginWireBody(dst, id, binSearchBatch)
		dst = appendU32(dst, req.K)
		dst = appendU32(dst, len(req.Queries))
		dst = appendU32(dst, dim)
		for _, q := range req.Queries {
			if len(q) != dim {
				return nil, fmt.Errorf("server: ragged query batch (row of %d floats in a dim-%d batch) cannot be binary-encoded", len(q), dim)
			}
			dst = appendRawFloat32s(dst, q)
		}
		return dst, nil
	case "delete":
		dst = beginWireBody(dst, id, binDelete)
		dst = appendU32(dst, len(req.IDs))
		for _, v := range req.IDs {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("server: op %q has no binary encoding (use the JSON protocol)", req.Op)
	}
}

// encodeBinResponse builds the body answering one dispatched request.
// The response kind derives from the request kind so a client can sanity-
// check the pairing; any error collapses to binErr.
func encodeBinResponse(dst []byte, id uint64, reqKind byte, resp *Response) []byte {
	if !resp.OK {
		dst = beginWireBody(dst, id, binErr)
		return append(dst, resp.Error...)
	}
	switch reqKind {
	case binPing:
		return beginWireBody(dst, id, binPong)
	case binInsert:
		dst = beginWireBody(dst, id, binInsertResp)
		dst = appendU32(dst, len(resp.IDs))
		for _, v := range resp.IDs {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
		return dst
	case binSearch:
		dst = beginWireBody(dst, id, binSearchResp)
		return appendNeighbors(dst, resp.Neighbors)
	case binSearchBatch:
		dst = beginWireBody(dst, id, binSearchBatchResp)
		dst = appendU32(dst, len(resp.Batches))
		for _, list := range resp.Batches {
			dst = appendNeighbors(dst, list)
		}
		return dst
	case binDelete:
		dst = beginWireBody(dst, id, binDeleteResp)
		return appendU32(dst, resp.Deleted)
	default:
		dst = beginWireBody(dst, id, binErr)
		return append(dst, fmt.Sprintf("unknown binary request kind %d", reqKind)...)
	}
}

func appendNeighbors(dst []byte, ns []Neighbor) []byte {
	dst = appendU32(dst, len(ns))
	for _, n := range ns {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(n.ID))
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(n.Dist))
	}
	return dst
}

// wireReader decodes one message body with bounds checking on every read.
// The frame CRC already matched, so a shortfall means the peer and we
// disagree about the schema — a per-message error, not stream corruption.
type wireReader struct {
	buf []byte
	off int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("server: malformed binary payload at offset %d: %s", r.off, fmt.Sprintf(format, args...))
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.fail("need %d bytes, have %d", n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *wireReader) u32() int {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return int(binary.LittleEndian.Uint32(b))
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// count reads a u32 element count and sanity-checks it against the bytes
// actually present (elemBytes per element), so a hostile count cannot
// force an allocation beyond the frame's real size.
func (r *wireReader) count(elemBytes int) int {
	n := r.u32()
	if r.err == nil && n*elemBytes > len(r.buf)-r.off {
		r.fail("declared %d elements (%dB each), only %d bytes remain", n, elemBytes, len(r.buf)-r.off)
		return 0
	}
	return n
}

// checkRect validates that exactly count rows of dim raw floats remain —
// by division, so hostile count/dim pairs cannot overflow a product into
// a bogus match and force a giant allocation downstream.
func (r *wireReader) checkRect(count, dim int) {
	if r.err != nil {
		return
	}
	rem := len(r.buf) - r.off
	if count == 0 {
		if dim != 0 || rem != 0 {
			r.fail("empty batch with dim %d and %d payload bytes", dim, rem)
		}
		return
	}
	if dim <= 0 || rem%4 != 0 || (rem/4)%dim != 0 || (rem/4)/dim != count {
		r.fail("batch declares %d x %d floats, %d payload bytes", count, dim, rem)
	}
}

// float32s reads n raw floats into a fresh slice (never aliasing the
// reusable frame buffer).
func (r *wireReader) float32s(n int) []float32 {
	b := r.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// rows reads count rows of dim raw floats each as a slice-of-slices over
// one flat backing array (two allocations total).
func (r *wireReader) rows(count, dim int) [][]float32 {
	flat := r.float32s(count * dim)
	if r.err != nil {
		return nil
	}
	out := make([][]float32, count)
	for i := range out {
		out[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return out
}

func (r *wireReader) int64s(n int) []int64 {
	b := r.take(8 * n)
	if b == nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func (r *wireReader) done() error {
	if r.err == nil && r.off != len(r.buf) {
		r.fail("%d trailing bytes", len(r.buf)-r.off)
	}
	return r.err
}

// decodeBinRequest decodes a request body into the shared Request shape
// (so the binary path reuses the same dispatch as JSON). Decoded slices
// are fresh copies; the frame buffer is reusable immediately.
func decodeBinRequest(body []byte) (id uint64, kind byte, req *Request, err error) {
	r := &wireReader{buf: body}
	id = r.u64()
	kb := r.take(1)
	if r.err != nil {
		return 0, 0, nil, r.err
	}
	kind = kb[0]
	req = &Request{}
	switch kind {
	case binPing:
		req.Op = "ping"
	case binInsert:
		req.Op = "insert"
		count := r.u32()
		dim := r.u32()
		r.checkRect(count, dim)
		req.Vectors = r.rows(count, dim)
	case binSearch:
		req.Op = "search"
		req.K = r.u32()
		dim := r.count(4)
		req.Query = r.float32s(dim)
	case binSearchBatch:
		req.Op = "searchBatch"
		req.K = r.u32()
		count := r.u32()
		dim := r.u32()
		r.checkRect(count, dim)
		req.Queries = r.rows(count, dim)
	case binDelete:
		req.Op = "delete"
		n := r.count(8)
		req.IDs = r.int64s(n)
	default:
		return id, kind, nil, fmt.Errorf("server: unknown binary request kind %d", kind)
	}
	if err := r.done(); err != nil {
		return id, kind, nil, err
	}
	return id, kind, req, nil
}

// decodeBinResponse decodes a response body into the shared Response
// shape. Fixed-width fields mean a zero Deleted count round-trips
// faithfully — there is no omitted-field ambiguity on this codec.
func decodeBinResponse(body []byte) (id uint64, resp *Response, err error) {
	r := &wireReader{buf: body}
	id = r.u64()
	kb := r.take(1)
	if r.err != nil {
		return 0, nil, r.err
	}
	resp = &Response{}
	switch kb[0] {
	case binErr:
		resp.Error = string(r.buf[r.off:])
		r.off = len(r.buf)
	case binPong:
		resp.OK = true
	case binInsertResp:
		resp.OK = true
		resp.IDs = r.int64s(r.count(8))
	case binSearchResp:
		resp.OK = true
		resp.Neighbors = r.neighbors()
	case binSearchBatchResp:
		resp.OK = true
		nb := r.count(4)
		resp.Batches = make([][]Neighbor, 0, nb)
		for i := 0; i < nb && r.err == nil; i++ {
			resp.Batches = append(resp.Batches, r.neighbors())
		}
	case binDeleteResp:
		resp.OK = true
		resp.Deleted = r.u32()
	default:
		return id, nil, fmt.Errorf("server: unknown binary response kind %d", kb[0])
	}
	if err := r.done(); err != nil {
		return id, nil, err
	}
	return id, resp, nil
}

func (r *wireReader) neighbors() []Neighbor {
	n := r.count(12)
	if r.err != nil {
		return nil
	}
	out := make([]Neighbor, n)
	for i := range out {
		out[i].ID = int64(r.u64())
		out[i].Dist = math.Float32frombits(uint32(r.u32()))
	}
	return out
}
