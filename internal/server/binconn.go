package server

// The binary protocol's connection handler: pipelined, out-of-order, and
// bounded. One goroutine reads frames; each decoded request is dispatched
// on its own goroutine (so a slow search never blocks a ping behind it —
// no head-of-line blocking); completed responses are enqueued on a
// bounded channel drained by one writer goroutine. Two bounds give
// backpressure instead of unbounded buffering: a semaphore caps requests
// in flight (the reader blocks acquiring a slot, i.e. stops reading), and
// the response queue's capacity caps completed-but-unwritten responses
// (workers block enqueueing, holding their slots). A client that outruns
// the server is therefore throttled by TCP flow control while server
// memory stays O(PipelineDepth × request size).

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"vdtuner/internal/persist"
)

// handleBinary serves one connection that completed the binary preamble.
func (s *Server) handleBinary(conn net.Conn, cr *connReader, br *bufio.Reader) {
	maxReq := s.opts.maxRequestBytes()
	depth := s.opts.pipelineDepth()

	bw := bufio.NewWriter(conn)
	respCh := make(chan []byte, depth)
	writerDone := make(chan struct{})
	go func() {
		// The writer: drain completed response frames, flushing when the
		// queue momentarily empties (batching consecutive writes). After a
		// write error it keeps draining so no worker blocks forever.
		defer close(writerDone)
		var werr error
		for frame := range respCh {
			if werr != nil {
				continue
			}
			if _, err := bw.Write(frame); err != nil {
				werr = err
				continue
			}
			if len(respCh) == 0 {
				werr = bw.Flush()
			}
		}
		if werr == nil {
			bw.Flush()
		}
	}()

	sem := make(chan struct{}, depth)
	var workers sync.WaitGroup
	var frame []byte
	for {
		cr.reset(maxReq + persist.FrameHeaderLen)
		body, err := persist.ReadFrame(br, maxReq, frame)
		if err != nil {
			// Framing violations end the stream: past a torn or corrupt
			// frame there is no resynchronization point. An oversized
			// declared length is answered first (frame id 0: connection-
			// fatal, attributable to no single request since the body was
			// never read) so the client learns why it was dropped.
			var tooBig *persist.FrameTooLargeError
			if errors.As(err, &tooBig) {
				enqueueBestEffort(respCh, frameResponse(0, 0, &Response{
					Error: fmt.Sprintf("request frame of %d bytes exceeds the server's %d-byte limit", tooBig.Declared, tooBig.Limit)}))
			}
			break
		}
		frame = body // retain the (possibly grown) buffer for reuse
		id, kind, req, derr := decodeBinRequest(body)
		if id == 0 {
			// Reserved id (or a body too short to carry one): nothing to
			// attribute a reply to — answer fatally and drop.
			msg := "request id 0 is reserved for connection-fatal errors"
			if derr != nil {
				msg = derr.Error()
			}
			enqueueBestEffort(respCh, frameResponse(0, 0, &Response{Error: msg}))
			break
		}
		if derr != nil {
			// A malformed payload (or unknown kind) inside a checksummed
			// frame: the stream itself is still in sync, so answer that
			// request and go on — under the same backpressure as real
			// work.
			sem <- struct{}{}
			respCh <- frameResponse(id, 0, &Response{Error: derr.Error()})
			<-sem
			continue
		}
		sem <- struct{}{} // backpressure: stop reading at depth in-flight
		workers.Add(1)
		go func(id uint64, kind byte, req *Request) {
			defer workers.Done()
			defer func() {
				if r := recover(); r != nil {
					// dispatch recovers its own panics; this guards the
					// encoder. Losing a response would wedge the client's
					// pipelined call forever, so answer something.
					enqueueBestEffort(respCh, frameResponse(id, 0, &Response{
						Error: fmt.Sprintf("internal error encoding response: %v", r)}))
				}
				<-sem
			}()
			resp := s.dispatch(req)
			respCh <- frameResponse(id, kind, resp)
		}(id, kind, req)
	}
	workers.Wait()
	close(respCh)
	<-writerDone
}

// frameResponse encodes a response body and wraps it in a wire frame
// ready for the writer goroutine.
func frameResponse(id uint64, reqKind byte, resp *Response) []byte {
	return persist.AppendFrame(nil, encodeBinResponse(nil, id, reqKind, resp))
}

// enqueueBestEffort offers a final frame without blocking: on a teardown
// path the writer may already be saturated, and the connection is being
// dropped either way.
func enqueueBestEffort(ch chan []byte, frame []byte) {
	select {
	case ch <- frame:
	default:
	}
}
