package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"vdtuner/internal/persist"
)

// BinClient is a pipelined connection speaking the binary protocol. It is
// safe for concurrent use, and unlike Client it does not serialize
// callers: every in-flight call gets a distinct request id, writes are
// interleaved on the single connection, and a background reader matches
// responses — which the server may send out of order — back to their
// callers. N goroutines sharing one BinClient therefore keep N requests
// pipelined on one TCP connection with no head-of-line blocking.
type BinClient struct {
	conn net.Conn

	// Write side: callers serialize frame writes only (not round trips).
	wmu  sync.Mutex
	bw   *bufio.Writer
	body []byte // reusable request-body scratch, guarded by wmu
	wbuf []byte // reusable frame scratch, guarded by wmu

	// Pending-call registry, shared with the reader goroutine.
	mu      sync.Mutex
	pending map[uint64]chan binReply
	nextID  uint64
	err     error // terminal: set once, fails every later call
}

type binReply struct {
	resp *Response
	err  error
}

// maxResponseBytes caps what the client will allocate for one response
// frame; a response can carry a full batch of neighbor lists, so the
// bound is generous.
const maxResponseBytes = 1 << 30

// DialBinary connects to a server address and negotiates the binary
// protocol by sending the preamble.
func DialBinary(addr string) (*BinClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(conn)
	if _, err := bw.WriteString(binPreamble); err != nil {
		conn.Close()
		return nil, err
	}
	c := &BinClient{conn: conn, bw: bw, pending: map[uint64]chan binReply{}}
	go c.readLoop()
	return c, nil
}

// Close closes the connection; in-flight calls fail.
func (c *BinClient) Close() error {
	err := c.conn.Close()
	c.fail(errors.New("server: binary client closed"))
	return err
}

// fail terminates the client: every pending call and every later call
// returns err (the first one wins).
func (c *BinClient) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- binReply{err: c.err}
	}
	c.mu.Unlock()
}

// readLoop drains response frames and routes each to its caller by id.
// An id-0 frame is a connection-fatal server error (e.g. an oversized
// request whose sender the server could not identify).
func (c *BinClient) readLoop() {
	br := bufio.NewReader(c.conn)
	var buf []byte
	for {
		body, err := persist.ReadFrame(br, maxResponseBytes, buf)
		if err != nil {
			c.fail(fmt.Errorf("server: binary connection lost: %w", err))
			return
		}
		buf = body
		id, resp, err := decodeBinResponse(body)
		if err != nil {
			c.fail(err)
			return
		}
		if id == 0 {
			c.fail(fmt.Errorf("server: connection-fatal server error: %s", resp.Error))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			ch <- binReply{resp: resp}
		}
	}
}

// call pipelines one request: register, write the frame, await the
// matched response.
func (c *BinClient) call(req *Request) (*Response, error) {
	ch := make(chan binReply, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	body, err := encodeBinRequest(c.body[:0], id, req)
	if err == nil {
		c.body = body
		c.wbuf = persist.AppendFrame(c.wbuf[:0], body)
		if _, werr := c.bw.Write(c.wbuf); werr != nil {
			err = werr
		} else {
			err = c.bw.Flush()
		}
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}

	reply := <-ch
	if reply.err != nil {
		return nil, reply.err
	}
	if !reply.resp.OK {
		return reply.resp, errors.New(reply.resp.Error)
	}
	return reply.resp, nil
}

// Ping checks liveness.
func (c *BinClient) Ping() error {
	_, err := c.call(&Request{Op: "ping"})
	return err
}

// Insert sends rows raw (4 bytes per float on the wire) and returns their
// assigned ids.
func (c *BinClient) Insert(vecs [][]float32) ([]int64, error) {
	resp, err := c.call(&Request{Op: "insert", Vectors: vecs})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Search returns the k nearest neighbors of q.
func (c *BinClient) Search(q []float32, k int) ([]Neighbor, error) {
	resp, err := c.call(&Request{Op: "search", Query: q, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// SearchBatch answers every query in one round trip; result i corresponds
// to queries[i]. Concurrent SearchBatch calls pipeline on the one
// connection.
func (c *BinClient) SearchBatch(queries [][]float32, k int) ([][]Neighbor, error) {
	resp, err := c.call(&Request{Op: "searchBatch", Queries: queries, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Batches, nil
}

// Delete tombstones ids on the server and reports how many were new.
func (c *BinClient) Delete(ids []int64) (int, error) {
	resp, err := c.call(&Request{Op: "delete", IDs: ids})
	if err != nil {
		return 0, err
	}
	return resp.Deleted, nil
}
