// Package kmeans implements k-means clustering with k-means++ seeding.
// It is the clustering substrate for the IVF-family indexes (IVF_FLAT,
// IVF_SQ8, IVF_PQ, SCANN) and for product-quantization codebook training.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"vdtuner/internal/linalg"
)

// Config controls a clustering run.
type Config struct {
	// K is the number of clusters. Required, >= 1.
	K int
	// MaxIters bounds Lloyd iterations. Defaults to 20 when zero.
	MaxIters int
	// Tol stops early when the relative decrease of total distortion
	// falls below it. Defaults to 1e-4 when zero.
	Tol float64
	// Seed makes runs deterministic.
	Seed int64
	// SampleLimit, when > 0, trains on at most this many points sampled
	// uniformly (assignments are still computed for every point).
	SampleLimit int
}

// Result holds the outcome of a clustering run.
type Result struct {
	// Centroids has K rows.
	Centroids [][]float32
	// Assign maps each input point to its centroid index.
	Assign []int
	// Distortion is the final total squared distance to assigned centroids.
	Distortion float64
	// Iters is the number of Lloyd iterations executed.
	Iters int
}

// Run clusters the points under squared-L2 distance. It returns an error
// when the configuration is invalid or the input is empty. When K exceeds
// the number of points, K is clamped down to len(points).
func Run(points [][]float32, cfg Config) (*Result, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmeans: K must be >= 1, got %d", cfg.K)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	k := cfg.K
	if k > len(points) {
		k = len(points)
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 20
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	train := points
	if cfg.SampleLimit > 0 && len(points) > cfg.SampleLimit {
		train = make([][]float32, cfg.SampleLimit)
		perm := rng.Perm(len(points))
		for i := 0; i < cfg.SampleLimit; i++ {
			train[i] = points[perm[i]]
		}
	}

	centroids := seedPlusPlus(train, k, rng)
	assignTrain := make([]int, len(train))
	prev := math.Inf(1)
	iters := 0
	for iters = 1; iters <= maxIters; iters++ {
		distortion := assignAll(train, centroids, assignTrain)
		recompute(train, assignTrain, centroids, rng)
		if prev-distortion <= tol*math.Abs(prev) {
			prev = distortion
			break
		}
		prev = distortion
	}

	assign := make([]int, len(points))
	distortion := assignAll(points, centroids, assign)
	return &Result{
		Centroids:  centroids,
		Assign:     assign,
		Distortion: distortion,
		Iters:      iters,
	}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ D^2 weighting.
func seedPlusPlus(points [][]float32, k int, rng *rand.Rand) [][]float32 {
	centroids := make([][]float32, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, linalg.Clone(first))

	// dists[i] is the squared distance from point i to its nearest chosen
	// centroid, updated incrementally as centroids are added.
	dists := make([]float64, len(points))
	total := 0.0
	for i, p := range points {
		dists[i] = float64(linalg.SquaredL2(p, centroids[0]))
		total += dists[i]
	}
	for len(centroids) < k {
		var chosen int
		if total <= 0 {
			chosen = rng.Intn(len(points))
		} else {
			target := rng.Float64() * total
			acc := 0.0
			chosen = len(points) - 1
			for i, d := range dists {
				acc += d
				if acc >= target {
					chosen = i
					break
				}
			}
		}
		c := linalg.Clone(points[chosen])
		centroids = append(centroids, c)
		for i, p := range points {
			if d := float64(linalg.SquaredL2(p, c)); d < dists[i] {
				total += d - dists[i]
				dists[i] = d
			}
		}
	}
	return centroids
}

// assignAll assigns every point to its nearest centroid, filling assign,
// and returns the total distortion.
func assignAll(points [][]float32, centroids [][]float32, assign []int) float64 {
	total := 0.0
	for i, p := range points {
		best := 0
		bestD := linalg.SquaredL2(p, centroids[0])
		for c := 1; c < len(centroids); c++ {
			if d := linalg.SquaredL2(p, centroids[c]); d < bestD {
				bestD = d
				best = c
			}
		}
		assign[i] = best
		total += float64(bestD)
	}
	return total
}

// recompute replaces each centroid with the mean of its assigned points.
// Empty clusters are re-seeded from a random point to keep K stable.
func recompute(points [][]float32, assign []int, centroids [][]float32, rng *rand.Rand) {
	dim := len(points[0])
	counts := make([]int, len(centroids))
	for c := range centroids {
		for j := 0; j < dim; j++ {
			centroids[c][j] = 0
		}
	}
	for i, p := range points {
		c := assign[i]
		counts[c]++
		linalg.AddInto(centroids[c], p)
	}
	for c := range centroids {
		if counts[c] == 0 {
			copy(centroids[c], points[rng.Intn(len(points))])
			continue
		}
		linalg.Scale(centroids[c], 1/float32(counts[c]))
	}
}

// NearestCentroid returns the index of the centroid closest to p and the
// squared distance to it.
func NearestCentroid(p []float32, centroids [][]float32) (int, float32) {
	best := 0
	bestD := linalg.SquaredL2(p, centroids[0])
	for c := 1; c < len(centroids); c++ {
		if d := linalg.SquaredL2(p, centroids[c]); d < bestD {
			bestD = d
			best = c
		}
	}
	return best, bestD
}
