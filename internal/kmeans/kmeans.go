// Package kmeans implements k-means clustering with k-means++ seeding.
// It is the clustering substrate for the IVF-family indexes (IVF_FLAT,
// IVF_SQ8, IVF_PQ, SCANN) and for product-quantization codebook training.
//
// Points are supplied as a linalg.Matrix — one flat arena, which may be a
// strided subspace view (how PQ clusters each subspace without copying the
// corpus). Clustering is parallelized over fixed-size point chunks (see
// the parallel package): assignment, centroid recomputation, and the
// k-means++ D^2 updates all reduce per-chunk partials in chunk order, so
// results are bit-identical for any Workers value. Run(cfg.Workers=1) is
// the reference sequential path.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
)

// chunkSize is the fixed per-chunk point count of every parallel loop. It
// is a constant so that chunk boundaries — and therefore reduction order —
// never depend on the worker count.
const chunkSize = 256

// Config controls a clustering run.
type Config struct {
	// K is the number of clusters. Required, >= 1.
	K int
	// MaxIters bounds Lloyd iterations. Defaults to 20 when zero.
	MaxIters int
	// Tol stops early when the relative decrease of total distortion
	// falls below it. Defaults to 1e-4 when zero.
	Tol float64
	// Seed makes runs deterministic.
	Seed int64
	// SampleLimit, when > 0, trains on at most this many points sampled
	// uniformly (assignments are still computed for every point).
	SampleLimit int
	// Workers is the worker-pool size for the parallel phases; <= 0 means
	// one worker per CPU. The result is identical for every value.
	Workers int
}

// Result holds the outcome of a clustering run.
type Result struct {
	// Centroids has K rows.
	Centroids [][]float32
	// Assign maps each input point to its centroid index.
	Assign []int
	// Distortion is the final total squared distance to assigned centroids.
	Distortion float64
	// Iters is the number of Lloyd iterations executed.
	Iters int
}

// pointSet is the trainer's view of its input: the full matrix, or a
// sampled subset of its rows (sel maps set position to matrix row).
type pointSet struct {
	m   *linalg.Matrix
	sel []int
}

func (p pointSet) n() int {
	if p.sel != nil {
		return len(p.sel)
	}
	return p.m.Rows()
}

func (p pointSet) row(i int) []float32 {
	if p.sel != nil {
		i = p.sel[i]
	}
	return p.m.Row(i)
}

// Run clusters the points under squared-L2 distance. It returns an error
// when the configuration is invalid or the input is empty. When K exceeds
// the number of points, K is clamped down to the point count.
func Run(points *linalg.Matrix, cfg Config) (*Result, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmeans: K must be >= 1, got %d", cfg.K)
	}
	if points == nil || points.Rows() == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	n := points.Rows()
	k := cfg.K
	if k > n {
		k = n
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 20
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-4
	}
	workers := parallel.Workers(cfg.Workers)
	rng := rand.New(rand.NewSource(cfg.Seed))

	train := pointSet{m: points}
	if cfg.SampleLimit > 0 && n > cfg.SampleLimit {
		perm := rng.Perm(n)
		train.sel = perm[:cfg.SampleLimit]
	}

	centroids := seedPlusPlus(train, k, rng, workers)
	assignTrain := make([]int, train.n())
	prev := math.Inf(1)
	iters := 0
	for iters = 1; iters <= maxIters; iters++ {
		distortion := assignAll(train, centroids, assignTrain, workers)
		recompute(train, assignTrain, centroids, rng, workers)
		if prev-distortion <= tol*math.Abs(prev) {
			prev = distortion
			break
		}
		prev = distortion
	}

	assign := make([]int, n)
	distortion := assignAll(pointSet{m: points}, centroids, assign, workers)
	return &Result{
		Centroids:  centroids,
		Assign:     assign,
		Distortion: distortion,
		Iters:      iters,
	}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ D^2 weighting.
// The per-point distance updates run in parallel; the weighted draw itself
// stays sequential so the rng consumption order is fixed.
func seedPlusPlus(points pointSet, k int, rng *rand.Rand, workers int) [][]float32 {
	centroids := make([][]float32, 0, k)
	n := points.n()
	first := points.row(rng.Intn(n))
	centroids = append(centroids, linalg.Clone(first))

	// dists[i] is the squared distance from point i to its nearest chosen
	// centroid, updated incrementally as centroids are added. The running
	// total is rebuilt from per-chunk partials in chunk order each round,
	// so it is worker-count-invariant.
	dists := make([]float64, n)
	nChunks := parallel.NumChunks(n, chunkSize)
	partial := make([]float64, nChunks)
	updateFrom := func(c []float32) float64 {
		parallel.ForRanges(workers, n, chunkSize, func(ch, lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				if c != nil {
					if d := float64(linalg.SquaredL2(points.row(i), c)); d < dists[i] {
						dists[i] = d
					}
				} else {
					dists[i] = float64(linalg.SquaredL2(points.row(i), centroids[0]))
				}
				s += dists[i]
			}
			partial[ch] = s
		})
		total := 0.0
		for _, s := range partial {
			total += s
		}
		return total
	}
	// c == nil is the init pass: fill dists from the first centroid and
	// sum in the same sweep.
	total := updateFrom(nil)
	for len(centroids) < k {
		var chosen int
		if total <= 0 {
			chosen = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			chosen = n - 1
			for i, d := range dists {
				acc += d
				if acc >= target {
					chosen = i
					break
				}
			}
		}
		c := linalg.Clone(points.row(chosen))
		centroids = append(centroids, c)
		total = updateFrom(c)
	}
	return centroids
}

// assignAll assigns every point to its nearest centroid, filling assign,
// and returns the total distortion. Points are processed in parallel
// chunks; the distortion reduces per-chunk partial sums in chunk order.
func assignAll(points pointSet, centroids [][]float32, assign []int, workers int) float64 {
	n := points.n()
	partial := make([]float64, parallel.NumChunks(n, chunkSize))
	parallel.ForRanges(workers, n, chunkSize, func(ch, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			p := points.row(i)
			best := 0
			bestD := linalg.SquaredL2(p, centroids[0])
			for c := 1; c < len(centroids); c++ {
				if d := linalg.SquaredL2(p, centroids[c]); d < bestD {
					bestD = d
					best = c
				}
			}
			assign[i] = best
			s += float64(bestD)
		}
		partial[ch] = s
	})
	total := 0.0
	for _, s := range partial {
		total += s
	}
	return total
}

// recompute replaces each centroid with the mean of its assigned points.
// Each chunk accumulates private per-centroid sums and counts; the merge
// walks chunks in order, so the resulting means are worker-count-invariant.
// Empty clusters are re-seeded from a random point to keep K stable.
func recompute(points pointSet, assign []int, centroids [][]float32, rng *rand.Rand, workers int) {
	n := points.n()
	dim := points.m.Dim()
	k := len(centroids)
	nChunks := parallel.NumChunks(n, chunkSize)
	sums := make([][]float32, nChunks)
	chunkCounts := make([][]int, nChunks)
	parallel.ForRanges(workers, n, chunkSize, func(ch, lo, hi int) {
		sum := make([]float32, k*dim)
		cnt := make([]int, k)
		for i := lo; i < hi; i++ {
			c := assign[i]
			cnt[c]++
			linalg.AddInto(sum[c*dim:(c+1)*dim], points.row(i))
		}
		sums[ch] = sum
		chunkCounts[ch] = cnt
	})
	counts := make([]int, k)
	for c := range centroids {
		for j := 0; j < dim; j++ {
			centroids[c][j] = 0
		}
	}
	for ch := 0; ch < nChunks; ch++ {
		for c := 0; c < k; c++ {
			counts[c] += chunkCounts[ch][c]
			linalg.AddInto(centroids[c], sums[ch][c*dim:(c+1)*dim])
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			copy(centroids[c], points.row(rng.Intn(n)))
			continue
		}
		linalg.Scale(centroids[c], 1/float32(counts[c]))
	}
}

// NearestCentroid returns the index of the centroid closest to p and the
// squared distance to it.
func NearestCentroid(p []float32, centroids [][]float32) (int, float32) {
	best := 0
	bestD := linalg.SquaredL2(p, centroids[0])
	for c := 1; c < len(centroids); c++ {
		if d := linalg.SquaredL2(p, centroids[c]); d < bestD {
			bestD = d
			best = c
		}
	}
	return best, bestD
}
