package kmeans

import (
	"math/rand"
	"testing"

	"vdtuner/internal/linalg"
)

// blobs generates n points around k well-separated centers.
func blobs(n, k, dim int, seed int64) (*linalg.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float32, k)
	for c := range centers {
		centers[c] = make([]float32, dim)
		for j := range centers[c] {
			centers[c][j] = float32(rng.NormFloat64()) * 10
		}
	}
	points := make([][]float32, n)
	labels := make([]int, n)
	for i := range points {
		c := rng.Intn(k)
		labels[i] = c
		points[i] = make([]float32, dim)
		for j := range points[i] {
			points[i][j] = centers[c][j] + float32(rng.NormFloat64())*0.1
		}
	}
	return linalg.MatrixFromRows(points), labels
}

func TestRunRecoversBlobs(t *testing.T) {
	points, labels := blobs(300, 4, 8, 1)
	res, err := Run(points, Config{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 4 {
		t.Fatalf("got %d centroids, want 4", len(res.Centroids))
	}
	// Every pair of points with the same true label must share a cluster,
	// and different labels must differ (blobs are far apart).
	clusterOf := map[int]int{}
	for i, a := range res.Assign {
		want, seen := clusterOf[labels[i]]
		if !seen {
			clusterOf[labels[i]] = a
			continue
		}
		if a != want {
			t.Fatalf("point %d (label %d) in cluster %d, expected %d", i, labels[i], a, want)
		}
	}
	if len(clusterOf) != 4 {
		t.Fatalf("recovered %d clusters, want 4", len(clusterOf))
	}
}

func TestRunAssignmentOptimality(t *testing.T) {
	// Invariant: every point is assigned to its nearest centroid.
	points, _ := blobs(200, 5, 6, 2)
	res, err := Run(points, Config{K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < points.Rows(); i++ {
		nearest, _ := NearestCentroid(points.Row(i), res.Centroids)
		if res.Assign[i] != nearest {
			t.Fatalf("point %d assigned to %d, nearest is %d", i, res.Assign[i], nearest)
		}
	}
}

func TestRunDistortionDecreasesWithK(t *testing.T) {
	points, _ := blobs(200, 4, 4, 3)
	var prev float64
	for i, k := range []int{1, 2, 4, 8} {
		res, err := Run(points, Config{K: k, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Distortion > prev*1.05 {
			t.Fatalf("distortion grew with k=%d: %v -> %v", k, prev, res.Distortion)
		}
		prev = res.Distortion
	}
}

func TestRunKClamped(t *testing.T) {
	points, _ := blobs(3, 1, 4, 4)
	res, err := Run(points, Config{K: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) > 3 {
		t.Fatalf("K not clamped: %d centroids for 3 points", len(res.Centroids))
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, Config{K: 2}); err == nil {
		t.Fatal("expected error for empty input")
	}
	pts := linalg.MatrixFromRows([][]float32{{1, 2}})
	if _, err := Run(pts, Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
}

func TestRunDeterministic(t *testing.T) {
	points, _ := blobs(150, 3, 4, 5)
	a, err := Run(points, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(points, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Distortion != b.Distortion {
		t.Fatalf("non-deterministic: %v vs %v", a.Distortion, b.Distortion)
	}
	for c := range a.Centroids {
		if linalg.SquaredL2(a.Centroids[c], b.Centroids[c]) != 0 {
			t.Fatalf("centroid %d differs across identical runs", c)
		}
	}
}

func TestRunWorkerCountInvariant(t *testing.T) {
	// The parallel contract: any Workers value produces bit-identical
	// centroids, assignments, and distortion (chunk boundaries and
	// reduction order never depend on the worker count).
	points, _ := blobs(700, 6, 8, 10)
	ref, err := Run(points, Config{K: 6, Seed: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 32} {
		got, err := Run(points, Config{K: 6, Seed: 10, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.Distortion != ref.Distortion {
			t.Fatalf("workers=%d: distortion %v != sequential %v", workers, got.Distortion, ref.Distortion)
		}
		if got.Iters != ref.Iters {
			t.Fatalf("workers=%d: iters %d != sequential %d", workers, got.Iters, ref.Iters)
		}
		for c := range ref.Centroids {
			for j := range ref.Centroids[c] {
				if got.Centroids[c][j] != ref.Centroids[c][j] {
					t.Fatalf("workers=%d: centroid %d dim %d differs", workers, c, j)
				}
			}
		}
		for i := range ref.Assign {
			if got.Assign[i] != ref.Assign[i] {
				t.Fatalf("workers=%d: point %d assigned %d, sequential %d", workers, i, got.Assign[i], ref.Assign[i])
			}
		}
	}
}

func TestRunWorkerCountInvariantWithSampling(t *testing.T) {
	// Sampling draws from the rng before clustering starts, so the
	// invariance must hold on the sampled path too.
	points, _ := blobs(900, 4, 6, 11)
	ref, err := Run(points, Config{K: 4, Seed: 11, SampleLimit: 200, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(points, Config{K: 4, Seed: 11, SampleLimit: 200, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got.Distortion != ref.Distortion {
		t.Fatalf("sampled distortion %v != sequential %v", got.Distortion, ref.Distortion)
	}
	for i := range ref.Assign {
		if got.Assign[i] != ref.Assign[i] {
			t.Fatalf("sampled assignment %d differs", i)
		}
	}
}

func TestRunSampleLimit(t *testing.T) {
	points, _ := blobs(500, 4, 4, 6)
	res, err := Run(points, Config{K: 4, Seed: 6, SampleLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != points.Rows() {
		t.Fatalf("assignments cover %d points, want %d", len(res.Assign), points.Rows())
	}
}

func TestRunIdenticalPoints(t *testing.T) {
	rows := make([][]float32, 20)
	for i := range rows {
		rows[i] = []float32{1, 1, 1}
	}
	res, err := Run(linalg.MatrixFromRows(rows), Config{K: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distortion != 0 {
		t.Fatalf("distortion %v for identical points, want 0", res.Distortion)
	}
}

func BenchmarkRun1kx32(b *testing.B) {
	b.ReportAllocs()
	points, _ := blobs(1000, 16, 32, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(points, Config{K: 16, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
