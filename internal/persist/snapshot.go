package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
)

// Snapshot is the full durable state of a live collection as of
// CheckpointLSN: every segment's raw rows and ids (indexes are not
// serialized — they rebuild deterministically from rows, sequence-derived
// seeds, and the build parameters), the growing tail, the tombstone set,
// and the counters a recovered engine must continue from.
type Snapshot struct {
	// CheckpointLSN is the last WAL record the snapshot covers; recovery
	// replays strictly newer records on top.
	CheckpointLSN uint64

	Dim       int
	Metric    linalg.Metric
	IndexType index.Type
	// Build captures the index build parameters the segments' indexes are
	// rebuilt with; recovery cross-checks them against the opening
	// configuration, since a mismatch would silently change results.
	Build index.BuildParams

	NextID  int64
	SealSeq int64
	Rows    int64

	CompactionPasses  int64
	CompactedSegments int64
	ReclaimedRows     int64

	// Segments holds sealed and still-sealing segments alike (a sealing
	// segment's index rebuild lands at recovery instead), ascending by Seq.
	Segments []SnapSegment
	// Growing is the unsealed tail (nil when empty); GrowingIDs labels its
	// rows.
	Growing    *linalg.Matrix
	GrowingIDs []int64
	// Tombstones lists deleted ids still physically present in segments,
	// sorted ascending.
	Tombstones []int64
}

// SnapSegment is one segment's durable form: its sequence number (which
// derives the deterministic index build seed), ascending row ids, and the
// raw row arena.
type SnapSegment struct {
	Seq   int64
	IDs   []int64
	Store *linalg.Matrix
}

// Snapshot file header: magic, version, CRC over both.
const (
	snapMagic     = "VDMSNAP1"
	snapVersion   = 1
	snapHeaderLen = len(snapMagic) + 4 + 4
)

// EncodeSnapshot serializes s into one byte slice (used by tests and the
// fuzz targets); the checkpoint path streams with encodeSnapshotTo
// instead, so a checkpoint never materializes the full state twice.
func EncodeSnapshot(s *Snapshot) []byte {
	var b bytes.Buffer
	b.Grow(snapHeaderLen + 256 + int(s.totalBytes()))
	if err := encodeSnapshotTo(&b, s); err != nil {
		// bytes.Buffer writes cannot fail.
		panic(err)
	}
	return b.Bytes()
}

// encodeSnapshotTo streams s into w: a versioned header, then one framed
// CRC32-C record per logical piece (meta, each segment, the growing tail,
// the tombstone set), then a footer record carrying the record count —
// without which the snapshot is incomplete. Records are encoded one at a
// time into reused buffers, so peak memory is one segment's bytes, not
// the full state's.
func encodeSnapshotTo(w io.Writer, s *Snapshot) error {
	hdr := make([]byte, 0, snapHeaderLen)
	hdr = append(hdr, snapMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, snapVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32c(hdr))
	if _, err := w.Write(hdr); err != nil {
		return err
	}

	var frame, body []byte
	records := 0
	emit := func() error {
		records++
		frame = appendFrame(frame[:0], body)
		_, err := w.Write(frame)
		return err
	}

	body = beginBody(body[:0], 0, snapMeta)
	body = binary.LittleEndian.AppendUint64(body, s.CheckpointLSN)
	body = binary.LittleEndian.AppendUint32(body, uint32(s.Dim))
	body = append(body, byte(s.Metric), byte(s.IndexType))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.Build.NList))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.Build.M))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.Build.NBits))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.Build.HNSWM))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.Build.EfConstruction))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.Build.Seed))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.NextID))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.SealSeq))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.Rows))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.CompactionPasses))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.CompactedSegments))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.ReclaimedRows))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(s.Segments)))
	if err := emit(); err != nil {
		return err
	}

	for i := range s.Segments {
		seg := &s.Segments[i]
		body = beginBody(body[:0], 0, snapSegment)
		body = binary.LittleEndian.AppendUint64(body, uint64(seg.Seq))
		body = appendInt64s(body, seg.IDs)
		body = appendStore(body, seg.Store)
		if err := emit(); err != nil {
			return err
		}
	}

	if s.Growing != nil && s.Growing.Rows() > 0 {
		body = beginBody(body[:0], 0, snapGrowing)
		body = appendInt64s(body, s.GrowingIDs)
		body = appendStore(body, s.Growing)
		if err := emit(); err != nil {
			return err
		}
	}

	body = beginBody(body[:0], 0, snapTombstones)
	body = appendInt64s(body, s.Tombstones)
	if err := emit(); err != nil {
		return err
	}

	body = beginBody(body[:0], 0, snapFooter)
	body = binary.LittleEndian.AppendUint32(body, uint32(records+1))
	return emit()
}

// appendStore encodes a matrix's rows row-by-row (views need not be
// packed).
func appendStore(dst []byte, m *linalg.Matrix) []byte {
	rows := 0
	if m != nil {
		rows = m.Rows()
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rows))
	for i := 0; i < rows; i++ {
		dst = appendFloat32s(dst, m.Row(i))
	}
	return dst
}

func (s *Snapshot) totalBytes() int64 {
	var n int64
	for i := range s.Segments {
		n += s.Segments[i].Store.Bytes() + int64(len(s.Segments[i].IDs))*8 + 64
	}
	if s.Growing != nil {
		n += s.Growing.Bytes() + int64(len(s.GrowingIDs))*8
	}
	n += int64(len(s.Tombstones)) * 8
	return n
}

// DecodeSnapshot parses bytes written by EncodeSnapshot. Hostile or
// damaged input yields a *CorruptError, never a panic, and never an
// allocation larger than the input justifies.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	return decodeSnapshot("", data)
}

func decodeSnapshot(path string, data []byte) (*Snapshot, error) {
	if len(data) < snapHeaderLen || string(data[:len(snapMagic)]) != snapMagic {
		return nil, corruptf(path, 0, "not a snapshot file")
	}
	if v := binary.LittleEndian.Uint32(data[len(snapMagic):]); v != snapVersion {
		return nil, corruptf(path, int64(len(snapMagic)), "unsupported snapshot version %d", v)
	}
	crcOff := snapHeaderLen - 4
	if crc32c(data[:crcOff]) != binary.LittleEndian.Uint32(data[crcOff:snapHeaderLen]) {
		return nil, corruptf(path, int64(crcOff), "snapshot header checksum mismatch")
	}

	r := reader{path: path, data: data, off: snapHeaderLen}
	s := &Snapshot{}
	var (
		records     uint32
		wantSegs    uint32
		seenMeta    bool
		seenGrowing bool
		seenTombs   bool
		footerCount uint32
		seenFooter  bool
	)
	for {
		base := int64(r.off)
		body, ok := r.next()
		if !ok {
			if r.off != len(data) {
				return nil, corruptf(path, base, "invalid snapshot record")
			}
			break
		}
		records++
		if seenFooter {
			return nil, corruptf(path, base, "records after snapshot footer")
		}
		typ := RecordType(body[8])
		p := &payloadReader{path: path, base: base + bodyHeaderLen, buf: body[bodyHeaderLen:]}
		switch typ {
		case snapMeta:
			if seenMeta {
				return nil, corruptf(path, base, "duplicate snapshot meta record")
			}
			seenMeta = true
			s.CheckpointLSN = p.u64()
			s.Dim = int(p.u32())
			mb := p.take(2)
			if mb != nil {
				s.Metric = linalg.Metric(mb[0])
				s.IndexType = index.Type(mb[1])
			}
			s.Build.NList = int(p.i64())
			s.Build.M = int(p.i64())
			s.Build.NBits = int(p.i64())
			s.Build.HNSWM = int(p.i64())
			s.Build.EfConstruction = int(p.i64())
			s.Build.Seed = p.i64()
			s.NextID = p.i64()
			s.SealSeq = p.i64()
			s.Rows = p.i64()
			s.CompactionPasses = p.i64()
			s.CompactedSegments = p.i64()
			s.ReclaimedRows = p.i64()
			wantSegs = p.u32()
			if err := p.done(); err != nil {
				return nil, err
			}
			if s.Dim <= 0 {
				return nil, corruptf(path, base, "snapshot dimension %d", s.Dim)
			}
		case snapSegment:
			if !seenMeta {
				return nil, corruptf(path, base, "segment record before meta")
			}
			seg := SnapSegment{Seq: p.i64()}
			seg.IDs = p.int64s()
			var err error
			seg.Store, err = decodeStore(p, s.Dim)
			if err != nil {
				return nil, err
			}
			if err := p.done(); err != nil {
				return nil, err
			}
			if len(seg.IDs) != seg.Store.Rows() {
				return nil, corruptf(path, base, "segment with %d ids but %d rows", len(seg.IDs), seg.Store.Rows())
			}
			s.Segments = append(s.Segments, seg)
		case snapGrowing:
			if !seenMeta || seenGrowing {
				return nil, corruptf(path, base, "unexpected growing record")
			}
			seenGrowing = true
			s.GrowingIDs = p.int64s()
			var err error
			s.Growing, err = decodeStore(p, s.Dim)
			if err != nil {
				return nil, err
			}
			if err := p.done(); err != nil {
				return nil, err
			}
			if len(s.GrowingIDs) != s.Growing.Rows() {
				return nil, corruptf(path, base, "growing tail with %d ids but %d rows", len(s.GrowingIDs), s.Growing.Rows())
			}
		case snapTombstones:
			if !seenMeta || seenTombs {
				return nil, corruptf(path, base, "unexpected tombstone record")
			}
			seenTombs = true
			s.Tombstones = p.int64s()
			if err := p.done(); err != nil {
				return nil, err
			}
		case snapFooter:
			seenFooter = true
			footerCount = p.u32()
			if err := p.done(); err != nil {
				return nil, err
			}
		default:
			return nil, corruptf(path, base, "unknown snapshot record type %d", typ)
		}
	}
	if !seenFooter {
		return nil, corruptf(path, int64(len(data)), "snapshot footer missing (incomplete write)")
	}
	if footerCount != records {
		return nil, corruptf(path, int64(len(data)), "snapshot has %d records, footer declares %d", records, footerCount)
	}
	if !seenMeta || !seenTombs {
		return nil, corruptf(path, int64(len(data)), "snapshot missing required records")
	}
	if uint32(len(s.Segments)) != wantSegs {
		return nil, corruptf(path, int64(len(data)), "snapshot has %d segments, meta declares %d", len(s.Segments), wantSegs)
	}
	return s, nil
}

// decodeStore reads a u32-counted run of rows into a fresh packed matrix.
func decodeStore(p *payloadReader, dim int) (*linalg.Matrix, error) {
	rows := int(p.u32())
	if p.err == nil && (rows < 0 || rows > (len(p.buf)-p.off)/4/dim) {
		p.fail("store declares %d×%d floats, payload has %d bytes", rows, dim, len(p.buf)-p.off)
	}
	if p.err != nil {
		return nil, p.err
	}
	m := linalg.NewMatrix(dim, rows)
	for r := 0; r < rows; r++ {
		vals := p.float32s(dim)
		if p.err != nil {
			return nil, p.err
		}
		m.AppendRow(vals)
	}
	return m, nil
}

// WriteSnapshot atomically persists s into dir as snap-<CheckpointLSN>:
// temp file (streamed record by record, so peak memory stays at one
// segment), fsync, rename, directory fsync. A crash at any point leaves
// either no new snapshot or a complete one.
func WriteSnapshot(dir string, s *Snapshot) error {
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := encodeSnapshotTo(bw, s); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	final := filepath.Join(dir, snapFileName(s.CheckpointLSN))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadNewestSnapshot returns the newest snapshot in dir that decodes
// cleanly, skipping damaged ones (an older valid snapshot plus a longer
// WAL replay beats refusing to start). It returns (nil, nil) when the
// directory holds no usable snapshot at all and (nil, err) only when a
// snapshot exists but none is readable.
func LoadNewestSnapshot(dir string) (*Snapshot, error) {
	lsns, err := listSeqFiles(dir, "snap-", ".snap")
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var firstErr error
	for i := len(lsns) - 1; i >= 0; i-- {
		path := filepath.Join(dir, snapFileName(lsns[i]))
		data, err := os.ReadFile(path)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s, err := decodeSnapshot(path, data)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return s, nil
	}
	if firstErr != nil {
		return nil, fmt.Errorf("persist: no readable snapshot in %s: %w", dir, firstErr)
	}
	return nil, nil
}

// RemoveObsoleteSnapshots deletes snapshots older than keep (their LSN <
// keep). The checkpoint path keeps the previous generation around so a
// damaged newest snapshot still has a fallback.
func RemoveObsoleteSnapshots(dir string, keep uint64) error {
	lsns, err := listSeqFiles(dir, "snap-", ".snap")
	if err != nil {
		return err
	}
	for _, lsn := range lsns {
		if lsn < keep {
			if err := os.Remove(filepath.Join(dir, snapFileName(lsn))); err != nil {
				return err
			}
		}
	}
	return nil
}
