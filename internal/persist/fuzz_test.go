package persist

import (
	"os"
	"path/filepath"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
)

// The fuzz contract for both decoders: arbitrary (hostile, bit-rotted,
// torn) bytes either replay/decode cleanly or fail with a typed
// *CorruptError — never a panic, never an allocation the input length
// does not justify. `make fuzz-smoke` runs both targets for 30s each as
// part of `make ci`.

// walSeedCorpus builds a small real WAL and returns its file bytes.
func walSeedCorpus(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	w, err := OpenWAL(Options{Dir: dir, Policy: SyncAlways}, 1)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := w.AppendInsert(0, [][]float32{{1, 2, 3}, {4, 5, 6}}, 3); err != nil {
		tb.Fatal(err)
	}
	if _, err := w.AppendInsertIDs([]int64{2, 6}, [][]float32{{7, 8, 9}, {10, 11, 12}}, 3); err != nil {
		tb.Fatal(err)
	}
	if _, err := w.AppendDelete([]int64{0, 7}); err != nil {
		tb.Fatal(err)
	}
	if _, err := w.AppendFlush(0); err != nil {
		tb.Fatal(err)
	}
	if _, err := w.AppendCompactCommit(1, []int64{0}, []int64{1}, []int64{0}); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, walFileName(1)))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func FuzzWALReplay(f *testing.F) {
	seed := walSeedCorpus(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-5])  // torn tail
	f.Add(seed[:walHeaderLen]) // header only
	f.Add([]byte{})            // empty file
	f.Add([]byte(walMagic))    // torn header
	mut := append([]byte(nil), seed...)
	mut[walHeaderLen+12] ^= 0x40 // flipped bit inside the first record
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		validEnd, nextLSN, err := ReplayBuffer("fuzz", data, 0, func(op *WALOp) error {
			// Touch every decoded field the way the engine's replay does,
			// so latent aliasing or bounds bugs surface under the fuzzer.
			switch op.Type {
			case RecInsert:
				if op.Count*op.Dim != len(op.Vectors) {
					t.Fatalf("insert decoded %d vectors for count %d dim %d", len(op.Vectors), op.Count, op.Dim)
				}
				var sum float32
				for _, v := range op.Vectors {
					sum += v
				}
				_ = sum
			case RecInsertIDs:
				if op.Count*op.Dim != len(op.Vectors) {
					t.Fatalf("insert-ids decoded %d vectors for count %d dim %d", len(op.Vectors), op.Count, op.Dim)
				}
				if op.Count != len(op.IDs) {
					t.Fatalf("insert-ids decoded %d ids for count %d", len(op.IDs), op.Count)
				}
				var sum float32
				for _, v := range op.Vectors {
					sum += v
				}
				_ = sum
			case RecDelete:
				for _, id := range op.IDs {
					_ = id
				}
			case RecFlush:
				_ = op.Seq
			case RecCompactCommit:
				_ = len(op.Sources) + len(op.LiveIDs) + len(op.Dropped)
			default:
				t.Fatalf("replay surfaced unknown record type %d", op.Type)
			}
			return nil
		})
		if err != nil && !IsCorrupt(err) {
			t.Fatalf("non-corrupt error from hostile bytes: %v", err)
		}
		if validEnd < 0 || validEnd > int64(len(data)) {
			t.Fatalf("validEnd %d outside input of %d bytes", validEnd, len(data))
		}
		if nextLSN == 0 {
			t.Fatal("nextLSN underflowed to zero")
		}
	})
}

func snapshotSeedCorpus() []byte {
	store := linalg.NewMatrix(3, 2)
	store.AppendRow([]float32{1, 2, 3})
	store.AppendRow([]float32{4, 5, 6})
	return EncodeSnapshot(&Snapshot{
		CheckpointLSN: 9,
		Dim:           3,
		Metric:        linalg.L2,
		IndexType:     index.HNSW,
		Build:         index.BuildParams{HNSWM: 4, EfConstruction: 16},
		NextID:        2,
		SealSeq:       1,
		Rows:          2,
		Segments:      []SnapSegment{{Seq: 0, IDs: []int64{0, 1}, Store: store}},
		Tombstones:    []int64{5},
	})
}

func FuzzSnapshotDecode(f *testing.F) {
	seed := snapshotSeedCorpus()
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // missing footer
	f.Add(seed[:snapHeaderLen])
	f.Add([]byte{})
	f.Add([]byte(snapMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("non-corrupt error from hostile bytes: %v", err)
			}
			return
		}
		// A successful decode must be internally consistent enough for
		// the engine to install without panicking.
		if s.Dim <= 0 {
			t.Fatalf("decoded snapshot with dim %d", s.Dim)
		}
		for i := range s.Segments {
			seg := &s.Segments[i]
			if len(seg.IDs) != seg.Store.Rows() || seg.Store.Dim() != s.Dim {
				t.Fatalf("segment %d inconsistent: %d ids, %d rows, dim %d", i, len(seg.IDs), seg.Store.Rows(), seg.Store.Dim())
			}
			for r := 0; r < seg.Store.Rows(); r++ {
				_ = seg.Store.Row(r)
			}
		}
		if s.Growing != nil {
			if len(s.GrowingIDs) != s.Growing.Rows() || s.Growing.Dim() != s.Dim {
				t.Fatal("growing tail inconsistent")
			}
		}
	})
}
