package persist

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// Record framing shared by WAL and snapshot files:
//
//	u32 length | u32 CRC32-C(body) | body
//	body = u64 LSN | u8 type | payload
//
// Snapshot records reuse the LSN slot for record-local metadata (zero).

// RecordType tags one log or snapshot record.
type RecordType uint8

const (
	// WAL record types: the durable operation log of a live collection.

	// RecInsert carries a contiguous run of inserted vectors and the id of
	// the first one (later ids follow sequentially).
	RecInsert RecordType = 1
	// RecDelete carries the ids passed to one Delete call, verbatim
	// (deletes are idempotent, so replay re-applies them as issued).
	RecDelete RecordType = 2
	// RecFlush marks the sealing of the growing segment — whether from an
	// explicit Flush or from reaching the seal threshold — and carries the
	// sealed segment's sequence number (which derives its index build seed).
	RecFlush RecordType = 3
	// RecCompactCommit records one committed compaction task: the source
	// segment sequence numbers, the replacement segment's sequence number,
	// the surviving row ids (in id order), and the tombstoned ids whose
	// rows were physically dropped.
	RecCompactCommit RecordType = 4
	// RecInsertIDs carries inserted vectors whose ids are NOT contiguous —
	// the shape a hash-routed shard sees when a collection-level insert
	// batch is partitioned across shards — so every id is spelled out
	// explicitly. Contiguous runs keep using the denser RecInsert.
	RecInsertIDs RecordType = 5

	// Snapshot-only record types; see snapshot.go.

	snapMeta       RecordType = 101
	snapSegment    RecordType = 102
	snapGrowing    RecordType = 103
	snapTombstones RecordType = 104
	snapFooter     RecordType = 105
)

const (
	// frameHeaderLen is the fixed prefix of every record: length + CRC.
	frameHeaderLen = 8
	// bodyHeaderLen is the fixed prefix of every body: LSN + type.
	bodyHeaderLen = 9
	// maxRecordLen caps a single record body. Any declared length beyond
	// it is corruption by definition, which bounds what a hostile length
	// field can make the reader do.
	maxRecordLen = 1 << 28
)

// WALOp is one decoded WAL record, handed to the replay callback. Exactly
// the fields of its Type are meaningful. Slices may alias the replay
// buffer; callers must not retain them past the callback.
type WALOp struct {
	LSN  uint64
	Type RecordType

	// RecInsert: Count vectors of dimension Dim, row-major in Vectors,
	// with ids FirstID, FirstID+1, …. RecInsertIDs reuses Dim, Count, and
	// Vectors, with the (non-contiguous) ids in IDs instead.
	FirstID int64
	Dim     int
	Count   int
	Vectors []float32

	// RecDelete: the requested ids. RecInsertIDs: the inserted ids,
	// aligned with Vectors.
	IDs []int64

	// RecFlush and RecCompactCommit: the new segment's sequence number.
	Seq int64

	// RecCompactCommit only.
	Sources []int64
	LiveIDs []int64
	Dropped []int64
}

// appendFrame frames body (already holding LSN+type+payload) onto dst.
func appendFrame(dst, body []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// beginBody appends the body header (LSN + type) onto dst and returns it.
func beginBody(dst []byte, lsn uint64, t RecordType) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	return append(dst, byte(t))
}

func appendInt64s(dst []byte, xs []int64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(xs)))
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
	}
	return dst
}

func appendFloat32s(dst []byte, xs []float32) []byte {
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(x))
	}
	return dst
}

// encodeInsert builds the body of a RecInsert record. Vectors are encoded
// straight from the caller's slices (the raw, pre-normalization input:
// replay re-applies the same normalization the live insert path does).
func encodeInsert(dst []byte, lsn uint64, firstID int64, vecs [][]float32, dim int) []byte {
	dst = beginBody(dst, lsn, RecInsert)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(firstID))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vecs)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(dim))
	for _, v := range vecs {
		dst = appendFloat32s(dst, v)
	}
	return dst
}

// encodeInsertIDs builds the body of a RecInsertIDs record: explicit ids
// followed by the vectors, aligned index-by-index.
func encodeInsertIDs(dst []byte, lsn uint64, ids []int64, vecs [][]float32, dim int) []byte {
	dst = beginBody(dst, lsn, RecInsertIDs)
	dst = appendInt64s(dst, ids)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(dim))
	for _, v := range vecs {
		dst = appendFloat32s(dst, v)
	}
	return dst
}

func encodeDelete(dst []byte, lsn uint64, ids []int64) []byte {
	dst = beginBody(dst, lsn, RecDelete)
	return appendInt64s(dst, ids)
}

func encodeFlush(dst []byte, lsn uint64, seq int64) []byte {
	dst = beginBody(dst, lsn, RecFlush)
	return binary.LittleEndian.AppendUint64(dst, uint64(seq))
}

func encodeCompactCommit(dst []byte, lsn uint64, newSeq int64, sources, liveIDs, dropped []int64) []byte {
	dst = beginBody(dst, lsn, RecCompactCommit)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(newSeq))
	dst = appendInt64s(dst, sources)
	dst = appendInt64s(dst, liveIDs)
	return appendInt64s(dst, dropped)
}

// reader walks a byte buffer of framed records, validating each frame.
type reader struct {
	path string
	data []byte
	off  int
}

// next returns the body of the next record, or (nil, false, nil) at a
// clean end of input — including a torn trailing record, which is the
// normal signature of a crash mid-append. The caller distinguishes "tail
// torn" from "input exhausted" via r.off. Checksum or length violations
// within a complete frame are also treated as the end of the valid prefix
// (nil, false, nil): the first bad record ends the log.
func (r *reader) next() (body []byte, ok bool) {
	rest := r.data[r.off:]
	if len(rest) < frameHeaderLen {
		return nil, false
	}
	n := int(binary.LittleEndian.Uint32(rest[0:4]))
	if n < bodyHeaderLen || n > maxRecordLen || n > len(rest)-frameHeaderLen {
		return nil, false
	}
	body = rest[frameHeaderLen : frameHeaderLen+n]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
		return nil, false
	}
	r.off += frameHeaderLen + n
	return body, true
}

// payloadReader decodes one record body with bounds checking on every
// read; any shortfall is corruption (the frame CRC already matched, so
// the writer and reader disagree about the schema — or the bytes are
// hostile).
type payloadReader struct {
	path string
	base int64 // offset of the body within the file, for error reporting
	buf  []byte
	off  int
	err  error
}

func (p *payloadReader) fail(format string, args ...any) {
	if p.err == nil {
		p.err = corruptf(p.path, p.base+int64(p.off), format, args...)
	}
}

func (p *payloadReader) take(n int) []byte {
	if p.err != nil {
		return nil
	}
	if n < 0 || n > len(p.buf)-p.off {
		p.fail("need %d payload bytes, have %d", n, len(p.buf)-p.off)
		return nil
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b
}

func (p *payloadReader) u32() uint32 {
	b := p.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (p *payloadReader) u64() uint64 {
	b := p.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (p *payloadReader) i64() int64 { return int64(p.u64()) }

// int64s reads a u32-counted run of int64s. The count is validated
// against the bytes actually present before allocating.
func (p *payloadReader) int64s() []int64 {
	n := int(p.u32())
	b := p.take(n * 8)
	if b == nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// float32s reads n float32s (count validated by take).
func (p *payloadReader) float32s(n int) []float32 {
	b := p.take(n * 4)
	if b == nil || n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// done reports leftover payload bytes as corruption.
func (p *payloadReader) done() error {
	if p.err == nil && p.off != len(p.buf) {
		p.fail("%d trailing payload bytes", len(p.buf)-p.off)
	}
	return p.err
}

// decodeWALOp decodes one WAL record body into op.
func decodeWALOp(path string, base int64, body []byte, op *WALOp) error {
	*op = WALOp{
		LSN:  binary.LittleEndian.Uint64(body[0:8]),
		Type: RecordType(body[8]),
	}
	p := &payloadReader{path: path, base: base + bodyHeaderLen, buf: body[bodyHeaderLen:]}
	switch op.Type {
	case RecInsert:
		op.FirstID = p.i64()
		op.Count = int(p.u32())
		op.Dim = int(p.u32())
		if p.err == nil && (op.Dim <= 0 || op.Count < 0) {
			p.fail("insert record with count %d, dim %d", op.Count, op.Dim)
		}
		if p.err == nil && op.Count > (len(p.buf)-p.off)/4/op.Dim {
			p.fail("insert record declares %d×%d floats, payload has %d bytes", op.Count, op.Dim, len(p.buf)-p.off)
		}
		if p.err == nil {
			op.Vectors = p.float32s(op.Count * op.Dim)
		}
	case RecInsertIDs:
		op.IDs = p.int64s()
		op.Count = len(op.IDs)
		op.Dim = int(p.u32())
		if p.err == nil && op.Dim <= 0 {
			p.fail("insert-ids record with dim %d", op.Dim)
		}
		if p.err == nil && op.Count > (len(p.buf)-p.off)/4/op.Dim {
			p.fail("insert-ids record declares %d×%d floats, payload has %d bytes", op.Count, op.Dim, len(p.buf)-p.off)
		}
		if p.err == nil {
			op.Vectors = p.float32s(op.Count * op.Dim)
		}
	case RecDelete:
		op.IDs = p.int64s()
	case RecFlush:
		op.Seq = p.i64()
	case RecCompactCommit:
		op.Seq = p.i64()
		op.Sources = p.int64s()
		op.LiveIDs = p.int64s()
		op.Dropped = p.int64s()
	default:
		p.fail("unknown WAL record type %d", op.Type)
	}
	return p.done()
}
