package persist

import (
	"math/rand"
	"testing"
)

// BenchmarkWALAppend measures the insert path's logging cost: one
// 32-vector batch record appended and group-committed per iteration
// under the batch policy (the engine default). Steady-state appends
// reuse the writer's scratch buffer, so per-op allocations stay flat
// regardless of record size. Part of the committed BENCH_query.json
// trajectory via `make bench-json`.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	w, err := OpenWAL(Options{Dir: dir, Policy: SyncBatch, GroupCommit: 64}, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rng := rand.New(rand.NewSource(1))
	const dim, batch = 128, 32
	vecs := make([][]float32, batch)
	for i := range vecs {
		vecs[i] = make([]float32, dim)
		for d := range vecs[i] {
			vecs[i][d] = rng.Float32()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var id int64
	for i := 0; i < b.N; i++ {
		lsn, err := w.AppendInsert(id, vecs, dim)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Commit(lsn); err != nil {
			b.Fatal(err)
		}
		id += batch
	}
}
