package persist

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The record framing used by every durable file in this package —
//
//	u32 length | u32 CRC32-C(body) | body
//
// is also the engine's wire framing: the access layer's binary protocol
// frames each request and response exactly like a WAL record (with the
// body's leading u64 carrying a request id instead of an LSN). These
// exported helpers let other packages speak the idiom without duplicating
// the checksum or bounds discipline.

// FrameHeaderLen is the fixed prefix of every framed record: a u32
// little-endian body length followed by the body's CRC32-C checksum.
const FrameHeaderLen = frameHeaderLen

// AppendFrame frames body onto dst — u32 length | u32 CRC32-C | body —
// and returns the extended slice. It is the exact framing the WAL and
// snapshot writers use for their records.
func AppendFrame(dst, body []byte) []byte { return appendFrame(dst, body) }

// FrameTooLargeError reports a frame whose declared body length exceeds
// the reader's limit. Readers surface it before allocating or reading the
// body, so a hostile length field cannot force pathological allocations —
// the same discipline the WAL reader applies via maxRecordLen.
type FrameTooLargeError struct {
	// Declared is the length the frame header claims.
	Declared int
	// Limit is the reader's configured maximum body length.
	Limit int
}

func (e *FrameTooLargeError) Error() string {
	return fmt.Sprintf("persist: frame declares %d-byte body, limit is %d", e.Declared, e.Limit)
}

// ReadFrame reads one framed record from r and returns its body. buf is
// an optional reuse buffer: the returned body aliases it (grown as
// needed), so a caller looping over a stream passes the previous return
// value back in and reads allocate nothing at steady state.
//
// Errors: io.EOF at a clean end of stream (zero bytes before the header),
// io.ErrUnexpectedEOF for a torn header or body, *FrameTooLargeError for
// a declared length beyond limit (returned before the body is read), and
// *CorruptError for a checksum mismatch.
func ReadFrame(r io.Reader, limit int, buf []byte) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if n > limit {
		return nil, &FrameTooLargeError{Declared: n, Limit: limit}
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if crc32c(body) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, corruptf("", 0, "frame CRC mismatch over %d-byte body", n)
	}
	return body, nil
}
