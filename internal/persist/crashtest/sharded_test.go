package crashtest

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"vdtuner/internal/linalg"
	"vdtuner/internal/persist"
	"vdtuner/internal/vdms"
)

// The per-shard crash matrix. A sharded collection keeps one WAL per
// shard, so a real torn write damages exactly one log's tail while the
// others stay intact. This test drives a seeded workload into a 4-shard
// durable collection under SyncAlways with checkpointing disabled (every
// record stays in its shard's log), crashes it, and then — for every
// shard, for every record boundary and a sample of torn offsets in that
// shard's log — recovers the directory with that one log truncated and
// checks the surviving state exactly:
//
//   - the live row count equals the reference set (all other shards' full
//     logs plus the truncated shard's surviving prefix, replayed
//     logically);
//   - surviving rows are findable at distance zero (FLAT segments search
//     exactly, so physical layout is irrelevant);
//   - rows whose insert records were cut are gone.
func TestCrashMatrixPerShard(t *testing.T) {
	const (
		dim       = 8
		numShards = 4
		numOps    = 70
	)
	cfg := matrixConfig()
	cfg.ShardCount = numShards

	rng := rand.New(rand.NewSource(11))
	src := t.TempDir()
	c, err := vdms.OpenDurable(src, cfg, linalg.L2, dim, 256)
	if err != nil {
		t.Fatal(err)
	}
	c.DisableAutoCheckpoint()
	byID := map[int64][]float32{} // every vector ever acknowledged, by id
	var live []int64
	for i := 0; i < numOps; i++ {
		if len(live) == 0 || rng.Float64() < 0.7 {
			n := 1 + rng.Intn(5)
			vecs := make([][]float32, n)
			for j := range vecs {
				v := make([]float32, dim)
				for d := range v {
					v[d] = float32(rng.NormFloat64())
				}
				vecs[j] = v
			}
			ids, err := c.Insert(vecs)
			if err != nil {
				t.Fatal(err)
			}
			for j, id := range ids {
				byID[id] = vecs[j]
			}
			live = append(live, ids...)
		} else {
			n := 1 + rng.Intn(4)
			ids := make([]int64, n)
			for j := range ids {
				if rng.Intn(10) == 0 {
					ids[j] = int64(rng.Intn(100000)) + 50000 // likely nonexistent
				} else {
					ids[j] = live[rng.Intn(len(live))]
				}
			}
			if _, err := c.Delete(ids); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Crash()

	// replayLogical applies one WAL image's records to a live-set map.
	replayLogical := func(name string, data []byte, into map[int64][]float32) {
		t.Helper()
		if _, _, err := persist.ReplayBuffer(name, data, 0, func(op *persist.WALOp) error {
			switch op.Type {
			case persist.RecInsert:
				for i := 0; i < op.Count; i++ {
					into[op.FirstID+int64(i)] = append([]float32(nil), op.Vectors[i*op.Dim:(i+1)*op.Dim]...)
				}
			case persist.RecInsertIDs:
				for i, id := range op.IDs {
					into[id] = append([]float32(nil), op.Vectors[i*op.Dim:(i+1)*op.Dim]...)
				}
			case persist.RecDelete:
				for _, id := range op.IDs {
					delete(into, id)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Load every shard's final log image once; with checkpoints disabled a
	// fresh directory holds exactly one WAL file per shard.
	images := make([][]byte, numShards)
	walPaths := make([]string, numShards)
	for s := 0; s < numShards; s++ {
		files, err := persist.WALFileNames(persist.ShardDir(src, s))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) != 1 {
			t.Fatalf("shard %d has %d WAL files, want 1 (no checkpoints ran)", s, len(files))
		}
		walPaths[s] = files[0]
		images[s], err = os.ReadFile(files[0])
		if err != nil {
			t.Fatal(err)
		}
	}

	totalCases := 0
	for s := 0; s < numShards; s++ {
		recs, err := persist.ScanWALFile(walPaths[s])
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			t.Fatalf("shard %d log is empty; matrix cell would be vacuous", s)
		}
		var cuts []int64
		for i, r := range recs {
			cuts = append(cuts, r.Offset) // record-aligned: r and later lost
			if i%3 == 0 && r.End-r.Offset > 2 {
				cuts = append(cuts, (r.Offset+r.End)/2) // torn mid-record
			}
		}
		cuts = append(cuts, int64(len(images[s]))) // nothing lost
		for _, cut := range cuts {
			totalCases++
			name := fmt.Sprintf("shard%d-cut%d", s, cut)
			dir := t.TempDir()
			copyDirTruncated(t, src, dir, s, cut)

			expected := map[int64][]float32{}
			for j := 0; j < numShards; j++ {
				img := images[j]
				if j == s && int64(len(img)) > cut {
					img = img[:cut]
				}
				replayLogical(name, img, expected)
			}

			rec, err := vdms.OpenDurable(dir, cfg, linalg.L2, dim, 256)
			if err != nil {
				t.Fatalf("%s: recovery failed: %v", name, err)
			}
			if err := rec.Flush(); err != nil {
				t.Fatalf("%s: quiescing: %v", name, err)
			}
			if got := rec.Stats().Rows; got != int64(len(expected)) {
				t.Fatalf("%s: recovered %d rows, surviving logs hold %d", name, got, len(expected))
			}
			// Sample surviving ids: each must be findable exactly.
			checked := 0
			for id, vec := range expected {
				if checked >= 20 {
					break
				}
				checked++
				hits, err := rec.Search(vec, 1, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(hits) == 0 || hits[0].ID != id || hits[0].Dist != 0 {
					t.Fatalf("%s: surviving id %d not recovered exactly: %+v", name, id, hits)
				}
			}
			// Sample lost ids (acknowledged, but their shard-s records were
			// cut): their vectors must no longer resolve to them.
			checked = 0
			for id, vec := range byID {
				if _, ok := expected[id]; ok {
					continue
				}
				if checked >= 20 {
					break
				}
				checked++
				hits, err := rec.Search(vec, 1, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(hits) > 0 && hits[0].ID == id && hits[0].Dist == 0 {
					t.Fatalf("%s: id %d survived a cut that removed it", name, id)
				}
			}
			rec.Crash()
			os.RemoveAll(dir)
		}
	}
	if totalCases < numShards*4 {
		t.Fatalf("per-shard matrix degenerated to %d cases", totalCases)
	}
}
