package crashtest

import (
	"errors"
	"math/rand"
	"testing"

	"vdtuner/internal/linalg"
	"vdtuner/internal/persist"
	"vdtuner/internal/vdms"
)

// The migration crash matrix. An online reshard (vdms.Reconfigure with a
// cold-knob change) builds the new generation's layout in a sibling
// directory and commits it with a single atomic manifest rename; a crash
// at any step must therefore recover to EXACTLY the old generation or
// EXACTLY the new one, never a mix. This test discovers the migration's
// step sequence with a recording hook, then replays the identical seeded
// workload once per step with the hook killing the migration at that step
// (modelling a process kill: no cleanup runs, memory and disk are left at
// the failure point), crashes the collection, and recovers:
//
//   - the on-disk manifest must name the old generation for every kill
//     before the "manifest" rename and the new one for kills after it;
//   - opening at the manifest's shard count must succeed and hold exactly
//     the acknowledged live set (FLAT searches are exact, so every
//     surviving row is findable at distance zero);
//   - opening at the other generation's shard count must be refused.
//
// Mid-migration writes are injected from the hook right before the
// cutover, so kills at and after that point also prove the delta's
// crash-safety: the writes reached the old generation's WALs through the
// normal write path, and the new generation's WALs via the synced delta
// replay, so they survive on whichever side recovery lands.
func TestMigrationCrashMatrix(t *testing.T) {
	const (
		dim    = 8
		numOps = 60
		seed   = 23
	)
	oldCfg := matrixConfig() // 1 shard
	newCfg := matrixConfig()
	newCfg.ShardCount = 4 // cold change: forces a migration

	// seedWorkload drives the deterministic pre-migration workload and
	// returns the live id→vector set it acknowledged.
	seedWorkload := func(t *testing.T, c *vdms.Collection) map[int64][]float32 {
		t.Helper()
		rng := rand.New(rand.NewSource(seed))
		live := map[int64][]float32{}
		var ids []int64
		for i := 0; i < numOps; i++ {
			if len(ids) == 0 || rng.Float64() < 0.7 {
				n := 1 + rng.Intn(5)
				vecs := make([][]float32, n)
				for j := range vecs {
					v := make([]float32, dim)
					for d := range v {
						v[d] = float32(rng.NormFloat64())
					}
					vecs[j] = v
				}
				got, err := c.Insert(vecs)
				if err != nil {
					t.Fatal(err)
				}
				for j, id := range got {
					live[id] = vecs[j]
					ids = append(ids, id)
				}
			} else {
				n := 1 + rng.Intn(4)
				del := make([]int64, n)
				for j := range del {
					del[j] = ids[rng.Intn(len(ids))]
				}
				if _, err := c.Delete(del); err != nil {
					t.Fatal(err)
				}
				for _, id := range del {
					delete(live, id)
				}
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		return live
	}

	// midWrites lands writes between the capture and the cutover — they
	// must survive a crash on either side of the commit point.
	midWrites := func(t *testing.T, c *vdms.Collection, live map[int64][]float32) {
		t.Helper()
		rng := rand.New(rand.NewSource(seed + 1))
		vecs := make([][]float32, 6)
		for j := range vecs {
			v := make([]float32, dim)
			for d := range v {
				v[d] = float32(rng.NormFloat64())
			}
			vecs[j] = v
		}
		got, err := c.Insert(vecs)
		if err != nil {
			t.Fatal(err)
		}
		for j, id := range got {
			live[id] = vecs[j]
		}
		// Delete one pre-capture row and one just-inserted row: the delta
		// must record both kinds.
		var victim int64 = -1
		for id := range live {
			if id < got[0] {
				victim = id
				break
			}
		}
		del := []int64{got[0]}
		if victim >= 0 {
			del = append(del, victim)
		}
		if _, err := c.Delete(del); err != nil {
			t.Fatal(err)
		}
		for _, id := range del {
			delete(live, id)
		}
	}

	// Discovery run: record the migration's step names in order.
	var steps []string
	{
		dir := t.TempDir()
		c, err := vdms.OpenDurable(dir, oldCfg, linalg.L2, dim, 256)
		if err != nil {
			t.Fatal(err)
		}
		live := seedWorkload(t, c)
		c.SetReconfigureHook(func(s string) error {
			steps = append(steps, s)
			if s == "cutover" {
				midWrites(t, c, live)
			}
			return nil
		})
		gen, err := c.Reconfigure(newCfg)
		if err != nil {
			t.Fatal(err)
		}
		if gen != 1 {
			t.Fatalf("migration produced generation %d, want 1", gen)
		}
		c.Crash()
	}
	// The matrix is only meaningful if the protocol actually surfaced its
	// commit point and the per-shard persistence steps.
	want := map[string]bool{"capture": false, "build": false, "snapshot-0": false,
		"snapshot-3": false, "cutover": false, "delta": false, "sync": false,
		"manifest": false, "committed": false, "cleanup": false}
	for _, s := range steps {
		if _, ok := want[s]; ok {
			want[s] = true
		}
	}
	for s, seen := range want {
		if !seen {
			t.Fatalf("migration never announced step %q; steps were %v", s, steps)
		}
	}

	for _, failAt := range steps {
		failAt := failAt
		t.Run("kill-at-"+failAt, func(t *testing.T) {
			dir := t.TempDir()
			c, err := vdms.OpenDurable(dir, oldCfg, linalg.L2, dim, 256)
			if err != nil {
				t.Fatal(err)
			}
			live := seedWorkload(t, c)
			kill := errors.New("injected kill")
			wrote := false
			c.SetReconfigureHook(func(s string) error {
				if s == failAt {
					return kill
				}
				if s == "cutover" {
					wrote = true
					midWrites(t, c, live)
				}
				return nil
			})
			gen, err := c.Reconfigure(newCfg)
			if !errors.Is(err, kill) {
				t.Fatalf("kill at %q: Reconfigure error = %v, want injected kill", failAt, err)
			}
			committed := failAt == "committed" || failAt == "cleanup"
			if committed && gen != 1 {
				t.Fatalf("kill at %q is post-commit; Reconfigure returned generation %d, want 1", failAt, gen)
			}
			c.Crash()

			// The manifest decides which generation a recovery sees; it must
			// name exactly one of the two, matching the commit point.
			man, err := persist.LoadManifest(dir)
			if err != nil {
				t.Fatalf("kill at %q: manifest unreadable after crash: %v", failAt, err)
			}
			if committed {
				if man.Generation != 1 || man.Shards != 4 {
					t.Fatalf("kill at %q (post-commit): manifest gen=%d shards=%d, want gen=1 shards=4", failAt, man.Generation, man.Shards)
				}
			} else {
				if man.Generation != 0 || man.Shards != 1 {
					t.Fatalf("kill at %q (pre-commit): manifest gen=%d shards=%d, want gen=0 shards=1", failAt, man.Generation, man.Shards)
				}
			}

			// Opening at the other generation's shard count must be refused —
			// a recovery can never mix the two shapes.
			wrongCfg := oldCfg
			if !committed {
				wrongCfg = newCfg
			}
			if rec, err := vdms.OpenDurable(dir, wrongCfg, linalg.L2, dim, 256); err == nil {
				rec.Crash()
				t.Fatalf("kill at %q: open at the wrong generation's shard count succeeded", failAt)
			}

			openCfg := oldCfg
			if committed {
				openCfg = newCfg
			}
			rec, err := vdms.OpenDurable(dir, openCfg, linalg.L2, dim, 256)
			if err != nil {
				t.Fatalf("kill at %q: recovery failed: %v", failAt, err)
			}
			defer rec.Crash()
			if err := rec.Flush(); err != nil {
				t.Fatal(err)
			}
			if !wrote && committed {
				t.Fatalf("kill at %q is post-commit but the cutover hook never ran", failAt)
			}
			if got := rec.Stats().Rows; got != int64(len(live)) {
				t.Fatalf("kill at %q: recovered %d rows, acknowledged live set holds %d", failAt, got, len(live))
			}
			for id, vec := range live {
				hits, err := rec.Search(vec, 1, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(hits) == 0 || hits[0].ID != id || hits[0].Dist != 0 {
					t.Fatalf("kill at %q: live id %d not recovered exactly: %+v", failAt, id, hits)
				}
			}
		})
	}
}
