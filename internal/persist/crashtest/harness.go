// Package crashtest is the crash-matrix harness for the engine's durable
// persistence: it drives a seeded random workload against a durable
// collection under the strictest fsync policy, "crashes" it, then replays
// recovery from every prefix of the write-ahead log — truncating at every
// record boundary and at torn mid-record offsets — and checks each
// recovered engine against an in-memory reference that applied exactly
// the operations the surviving log acknowledges.
//
// The workloads use the FLAT index, whose search results depend only on
// the live id→vector set (segment scans are exact and per-row arithmetic
// is layout-independent), so the reference engine need not reproduce the
// recovered engine's segment layout or compaction history — only its
// logical contents — for SearchBatch results to be bit-identical.
package crashtest

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/persist"
	"vdtuner/internal/vdms"
)

// op is one logical workload operation, replayable onto any collection.
type op struct {
	insert [][]float32 // nil for deletes
	ids    []int64     // delete targets
}

// shard0Dir resolves the WAL/snapshot directory of the collection's only
// shard: since the live engine was sharded, a data directory holds a
// manifest plus per-shard subdirectories, and a shard_count=1 workload's
// entire log lives under shard-0.
func shard0Dir(dir string) string { return persist.ShardDir(dir, 0) }

// workload is a finished seeded run: the op sequence and the crashed data
// directory it produced. lsnAfter[i] is the WAL head (Stats.WALLastLSN)
// right after op i was acknowledged: op i is fully durable in any log
// prefix reaching that LSN. One Insert call can span several WAL records
// (a record per seal boundary), so the mapping from truncation points to
// surviving state is by LSN, not by record count.
type workload struct {
	cfg      vdms.Config
	dim      int
	ops      []op
	lsnAfter []uint64
	dir      string
	qs       [][]float32
	rows     int
}

// matrixConfig is the crash-matrix engine configuration: FLAT segments
// (layout-independent exact search), always-fsync (every acknowledged op
// is on disk), and small segments so the workload seals and compacts.
func matrixConfig() vdms.Config {
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.Flat
	cfg.Parallelism = 2
	cfg.WALFsyncPolicy = 3 // always
	cfg.SegmentMaxSize = 100
	cfg.SealProportion = 0.8
	return cfg
}

// runWorkload drives numOps seeded operations against a durable
// collection in dir and crashes it. With autoCkpt false the compactor
// never checkpoints, so every record — compaction commits included —
// stays in the WAL and lands in the truncation matrix.
func runWorkload(t *testing.T, dir string, seed int64, numOps int, autoCkpt bool) *workload {
	t.Helper()
	const dim = 8
	cfg := matrixConfig()
	rng := rand.New(rand.NewSource(seed))
	c, err := vdms.OpenDurable(dir, cfg, linalg.L2, dim, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !autoCkpt {
		c.DisableAutoCheckpoint()
	}
	w := &workload{cfg: cfg, dim: dim, dir: dir}
	var live []int64
	for i := 0; i < numOps; i++ {
		if len(live) == 0 || rng.Float64() < 0.7 {
			n := 1 + rng.Intn(5)
			vecs := make([][]float32, n)
			for j := range vecs {
				v := make([]float32, dim)
				for d := range v {
					v[d] = float32(rng.NormFloat64())
				}
				vecs[j] = v
			}
			ids, err := c.Insert(vecs)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, ids...)
			w.ops = append(w.ops, op{insert: vecs})
			w.lsnAfter = append(w.lsnAfter, c.Stats().WALLastLSN)
		} else {
			n := 1 + rng.Intn(4)
			ids := make([]int64, n)
			for j := range ids {
				switch rng.Intn(10) {
				case 0:
					ids[j] = int64(rng.Intn(100000)) + 50000 // likely nonexistent
				default:
					ids[j] = live[rng.Intn(len(live))] // may repeat / already dead
				}
			}
			if _, err := c.Delete(ids); err != nil {
				t.Fatal(err)
			}
			w.ops = append(w.ops, op{ids: ids})
			w.lsnAfter = append(w.lsnAfter, c.Stats().WALLastLSN)
		}
	}
	// Churn finale: mass-delete the oldest third and compact to
	// quiescence, guaranteeing committed compaction tasks (and, without
	// auto-checkpointing, their WAL records) in every workload; the
	// trailing inserts keep those commits off the very tail of the log so
	// truncation points land both before and after them.
	if n := len(live) / 3; n > 0 {
		ids := append([]int64(nil), live[:n]...)
		if _, err := c.Delete(ids); err != nil {
			t.Fatal(err)
		}
		w.ops = append(w.ops, op{ids: ids})
		w.lsnAfter = append(w.lsnAfter, c.Stats().WALLastLSN)
	}
	// Flush first: Compact plans over *landed* segments, and the mass
	// delete's tombstones only reach per-segment dead counts once the
	// in-flight builds land — without the barrier, Compact can race to an
	// empty plan and the workload would (non-deterministically) carry no
	// commit records.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		if _, err := c.Insert([][]float32{v}); err != nil {
			t.Fatal(err)
		}
		w.ops = append(w.ops, op{insert: [][]float32{v}})
		w.lsnAfter = append(w.lsnAfter, c.Stats().WALLastLSN)
	}
	w.rows = int(c.Stats().Rows)
	c.Crash()
	for i := 0; i < 16; i++ {
		q := make([]float32, dim)
		for d := range q {
			q[d] = float32(rng.NormFloat64())
		}
		w.qs = append(w.qs, q)
	}
	return w
}

// reference replays tc's surviving operations — the fully durable op
// prefix plus the partially surviving record payloads past it — onto a
// fresh in-memory collection and quiesces it.
func (w *workload) reference(t *testing.T, tc truncationCase) *vdms.Collection {
	t.Helper()
	ref, err := vdms.NewCollection(w.cfg, linalg.L2, w.dim, 256)
	if err != nil {
		t.Fatal(err)
	}
	apply := func(o op) {
		if o.insert != nil {
			if _, err := ref.Insert(o.insert); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := ref.Delete(o.ids); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, o := range w.ops[:tc.full] {
		apply(o)
	}
	for _, o := range tc.extra {
		apply(o)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	return ref
}

// truncationCase is one cell of the crash matrix.
type truncationCase struct {
	name string
	// cut is the byte length the final WAL file is truncated to.
	cut int64
	// full is how many logical ops survive the cut in their entirety.
	full int
	// extra holds the payloads of insert/delete records past the last
	// fully surviving op that the cut still retains — the partially
	// durable tail of an Insert batch that straddled a seal boundary.
	extra []op
}

// matrixCases enumerates the truncation matrix over the crashed
// directory's final WAL file: every record boundary plus torn offsets
// inside every record. Records in earlier (checkpoint-sealed) WAL files
// or absorbed into snapshots always survive; only the final file is at
// the crash frontier, which is exactly the set of states a real torn
// write can produce. Each case's surviving state is derived by LSN: a cut
// keeping records up to LSN L preserves every op acknowledged at or below
// L, plus the payloads of later surviving records.
func matrixCases(t *testing.T, w *workload) []truncationCase {
	t.Helper()
	files, err := persist.WALFileNames(shard0Dir(w.dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("crashed directory has no WAL files")
	}
	last := files[len(files)-1]
	recs, err := persist.ScanWALFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("final WAL file holds no records; matrix would be empty")
	}
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Decode the final file's logical payloads, aligned with recs.
	payloads := make([]op, len(recs))
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	if _, _, err := persist.ReplayBuffer(last, data, 0, func(o *persist.WALOp) error {
		switch o.Type {
		case persist.RecInsert:
			vecs := make([][]float32, o.Count)
			for i := range vecs {
				vecs[i] = append([]float32(nil), o.Vectors[i*o.Dim:(i+1)*o.Dim]...)
			}
			payloads[idx] = op{insert: vecs}
		case persist.RecDelete:
			payloads[idx] = op{ids: append([]int64(nil), o.IDs...)}
		}
		idx++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if idx != len(recs) {
		t.Fatalf("scan found %d records, replay %d", len(recs), idx)
	}
	baseLSN := recs[0].LSN - 1 // durable regardless of the cut

	// stateAt computes the surviving state for a cut: the fully durable
	// op prefix and the partially surviving record payloads beyond it.
	stateAt := func(cut int64) (full int, extra []op) {
		lastLSN := baseLSN
		for _, r := range recs {
			if r.End <= cut && r.LSN > lastLSN {
				lastLSN = r.LSN
			}
		}
		for full < len(w.ops) && w.lsnAfter[full] <= lastLSN {
			full++
		}
		var boundary uint64
		if full > 0 {
			boundary = w.lsnAfter[full-1]
		}
		for i, r := range recs {
			if r.End <= cut && r.LSN > boundary &&
				(r.Type == persist.RecInsert || r.Type == persist.RecDelete) {
				extra = append(extra, payloads[i])
			}
		}
		return full, extra
	}

	var cases []truncationCase
	add := func(kind string, i int, cut int64) {
		full, extra := stateAt(cut)
		cases = append(cases, truncationCase{
			name:  fmt.Sprintf("%s-rec%d-cut%d", kind, i, cut),
			cut:   cut,
			full:  full,
			extra: extra,
		})
	}
	// The file header itself can be torn (a rotation right before the
	// crash): the file then contributes nothing.
	add("empty-file", 0, 0)
	if recs[0].Offset > 1 {
		add("torn-file-header", 0, recs[0].Offset/2)
	}
	for i, r := range recs {
		// Record-aligned: everything before record i survives.
		add("boundary", i, r.Offset)
		// Torn: cuts inside record i lose it and everything after.
		if r.End-r.Offset > 2 {
			add("torn-header", i, r.Offset+1)
			add("torn-mid", i, (r.Offset+r.End)/2)
			add("torn-tail", i, r.End-1)
		}
	}
	// The untouched file: nothing lost.
	full, extra := stateAt(fi.Size())
	if full != len(w.ops) || len(extra) != 0 {
		t.Fatalf("untruncated log accounts for %d of %d acknowledged ops (+%d partial)", full, len(w.ops), len(extra))
	}
	cases = append(cases, truncationCase{name: "full", cut: fi.Size(), full: full})
	return cases
}

// copyDirTruncated clones the crashed data directory — manifest and every
// shard subdirectory — into dst with the final WAL file of truncShard
// truncated to cut bytes. Other shards (if any) are copied intact: a real
// torn write damages one log's tail, not several.
func copyDirTruncated(t *testing.T, src, dst string, truncShard int, cut int64) {
	t.Helper()
	lastWALIn := ""
	if files, err := persist.WALFileNames(persist.ShardDir(src, truncShard)); err != nil {
		t.Fatal(err)
	} else if len(files) > 0 {
		lastWALIn = files[len(files)-1]
	}
	var walk func(from, to string)
	walk = func(from, to string) {
		ents, err := os.ReadDir(from)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if e.IsDir() {
				sub := filepath.Join(to, e.Name())
				if err := os.MkdirAll(sub, 0o777); err != nil {
					t.Fatal(err)
				}
				walk(filepath.Join(from, e.Name()), sub)
				continue
			}
			inPath := filepath.Join(from, e.Name())
			in, err := os.Open(inPath)
			if err != nil {
				t.Fatal(err)
			}
			out, err := os.Create(filepath.Join(to, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			var cerr error
			if inPath == lastWALIn {
				_, cerr = io.CopyN(out, in, cut)
				if cerr == io.EOF {
					cerr = nil
				}
			} else {
				_, cerr = io.Copy(out, in)
			}
			in.Close()
			if err := out.Close(); err != nil {
				t.Fatal(err)
			}
			if cerr != nil {
				t.Fatal(cerr)
			}
		}
	}
	walk(src, dst)
}

// verifyCase recovers from one truncation and checks the recovered engine
// against the reference replay of the surviving op prefix.
func verifyCase(t *testing.T, w *workload, tc truncationCase, scratch string) {
	t.Helper()
	dir := filepath.Join(scratch, tc.name)
	if err := os.MkdirAll(dir, 0o777); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	copyDirTruncated(t, w.dir, dir, 0, tc.cut)

	rec, err := vdms.OpenDurable(dir, w.cfg, linalg.L2, w.dim, 256)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", tc.name, err)
	}
	defer rec.Crash()
	if err := rec.Flush(); err != nil {
		t.Fatalf("%s: quiescing recovered engine: %v", tc.name, err)
	}
	ref := w.reference(t, tc)
	defer ref.Close()

	recStats, refStats := rec.Stats(), ref.Stats()
	if recStats.Rows != refStats.Rows {
		t.Fatalf("%s: recovered Rows = %d, reference has %d", tc.name, recStats.Rows, refStats.Rows)
	}
	k := 10
	recRes, err := rec.SearchBatch(w.qs, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.SearchBatch(w.qs, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recRes, refRes) {
		for i := range recRes {
			if !reflect.DeepEqual(recRes[i], refRes[i]) {
				t.Fatalf("%s: query %d differs:\nrecovered %v\nreference %v", tc.name, i, recRes[i], refRes[i])
			}
		}
		t.Fatalf("%s: SearchBatch differs from reference", tc.name)
	}
}
