package crashtest

import (
	"testing"

	"vdtuner/internal/persist"
)

// TestCrashMatrix is the acceptance gate for durable persistence: for a
// seeded random workload, every truncation of the write-ahead log —
// record-aligned and torn mid-record — must recover to exactly the state
// an in-memory reference engine reaches by replaying the surviving
// operation prefix: equal live row counts and bit-identical SearchBatch
// results. It is a property test: each seed is an independent workload
// with its own seal/compaction/checkpoint history.
func TestCrashMatrix(t *testing.T) {
	type variant struct {
		name     string
		seed     int64
		autoCkpt bool
	}
	variants := []variant{
		// Auto-checkpointing runs: the frontier is the churn since the
		// last compaction pass; snapshots and multi-file logs in play.
		{"seed1-ckpt", 1, true},
		{"seed2-ckpt", 2, true},
		// No auto-checkpoint: the entire history — seals and compaction
		// commits included — is in one log, every record a matrix row.
		{"seed1-log", 1, false},
		{"seed2-log", 2, false},
	}
	numOps := 110
	if testing.Short() {
		variants = variants[:2]
		numOps = 60
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			w := runWorkload(t, t.TempDir(), v.seed, numOps, v.autoCkpt)
			cases := matrixCases(t, w)
			// With auto-checkpointing the frontier is only the churn since
			// the last pass — small by design; without it, the whole
			// history is at the frontier.
			floor := numOps / 4
			if v.autoCkpt {
				floor = 10
			}
			if len(cases) < floor {
				t.Fatalf("matrix degenerated to %d truncation points", len(cases))
			}
			t.Logf("%s: %d ops, %d live rows, %d truncation points", v.name, len(w.ops), w.rows, len(cases))
			scratch := t.TempDir()
			for _, tc := range cases {
				verifyCase(t, w, tc, scratch)
			}
		})
	}
}

// TestCrashMatrixCoversCompactionCommits pins that the no-checkpoint
// variant really puts compaction-commit records at the crash frontier —
// without this, the matrix would silently stop exercising commit replay.
func TestCrashMatrixCoversCompactionCommits(t *testing.T) {
	w := runWorkload(t, t.TempDir(), 2, 110, false)
	files, err := persist.WALFileNames(shard0Dir(w.dir))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := persist.ScanWALFile(files[len(files)-1])
	if err != nil {
		t.Fatal(err)
	}
	counts := map[persist.RecordType]int{}
	for _, r := range recs {
		counts[r.Type]++
	}
	if counts[persist.RecFlush] == 0 || counts[persist.RecCompactCommit] == 0 {
		t.Fatalf("truncation frontier lacks lifecycle records: %v", counts)
	}
}

// TestCrashMatrixAcknowledgedOpsSurvive pins the SyncAlways contract
// directly: with the untruncated (but crashed, never closed) directory,
// every acknowledged operation is recovered — the "full" cell of the
// matrix must account for the entire workload.
func TestCrashMatrixAcknowledgedOpsSurvive(t *testing.T) {
	w := runWorkload(t, t.TempDir(), 3, 80, true)
	cases := matrixCases(t, w)
	full := cases[len(cases)-1]
	if full.full != len(w.ops) || len(full.extra) != 0 {
		t.Fatalf("untruncated log accounts for %d of %d acknowledged ops", full.full, len(w.ops))
	}
	verifyCase(t, w, full, t.TempDir())
}

func workloadName(seed int64) string {
	return "seed" + string(rune('0'+seed))
}
