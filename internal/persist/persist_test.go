package persist

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
)

// collectOps replays every record in dir after the given LSN into a slice
// of deep-copied ops.
func collectOps(t *testing.T, dir string, after uint64) []WALOp {
	t.Helper()
	var ops []WALOp
	next, err := ReplayWAL(dir, after, func(op *WALOp) error {
		cp := *op
		cp.Vectors = append([]float32(nil), op.Vectors...)
		cp.IDs = append([]int64(nil), op.IDs...)
		cp.Sources = append([]int64(nil), op.Sources...)
		cp.LiveIDs = append([]int64(nil), op.LiveIDs...)
		cp.Dropped = append([]int64(nil), op.Dropped...)
		ops = append(ops, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if len(ops) > 0 && ops[len(ops)-1].LSN != next-1 {
		t.Fatalf("nextLSN %d does not follow last replayed LSN %d", next, ops[len(ops)-1].LSN)
	}
	return ops
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(Options{Dir: dir, Policy: SyncAlways}, 1)
	if err != nil {
		t.Fatal(err)
	}
	vecs := [][]float32{{1, 2}, {3, 4}, {5, 6}}
	if _, err := w.AppendInsert(7, vecs, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendDelete([]int64{8, 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendFlush(3); err != nil {
		t.Fatal(err)
	}
	lsn, err := w.AppendCompactCommit(4, []int64{0, 1}, []int64{7, 8}, []int64{9})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("LSN = %d, want 4", lsn)
	}
	if err := w.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	ops := collectOps(t, dir, 0)
	if len(ops) != 4 {
		t.Fatalf("replayed %d ops, want 4", len(ops))
	}
	ins := ops[0]
	if ins.Type != RecInsert || ins.FirstID != 7 || ins.Count != 3 || ins.Dim != 2 {
		t.Fatalf("bad insert op: %+v", ins)
	}
	want := []float32{1, 2, 3, 4, 5, 6}
	for i, v := range want {
		if ins.Vectors[i] != v {
			t.Fatalf("insert vectors[%d] = %v, want %v", i, ins.Vectors[i], v)
		}
	}
	if del := ops[1]; del.Type != RecDelete || len(del.IDs) != 2 || del.IDs[0] != 8 || del.IDs[1] != 9 {
		t.Fatalf("bad delete op: %+v", ops[1])
	}
	if fl := ops[2]; fl.Type != RecFlush || fl.Seq != 3 {
		t.Fatalf("bad flush op: %+v", ops[2])
	}
	cc := ops[3]
	if cc.Type != RecCompactCommit || cc.Seq != 4 ||
		len(cc.Sources) != 2 || len(cc.LiveIDs) != 2 || len(cc.Dropped) != 1 {
		t.Fatalf("bad compact-commit op: %+v", cc)
	}

	// Replay with after=2 must skip the first two records.
	tail := collectOps(t, dir, 2)
	if len(tail) != 2 || tail[0].Type != RecFlush {
		t.Fatalf("suffix replay got %d ops (first %v), want flush+compact", len(tail), tail[0].Type)
	}
}

// TestWALInsertIDsRoundTrip covers the explicit-id insert record the
// hash-routed shards write: non-contiguous ids survive encode/replay
// aligned with their vectors.
func TestWALInsertIDsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(Options{Dir: dir, Policy: SyncAlways}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int64{3, 11, 12, 40}
	vecs := [][]float32{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	lsn, err := w.AppendInsertIDs(ids, vecs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ops := collectOps(t, dir, 0)
	if len(ops) != 1 {
		t.Fatalf("replayed %d ops, want 1", len(ops))
	}
	op := ops[0]
	if op.Type != RecInsertIDs || op.Count != 4 || op.Dim != 2 {
		t.Fatalf("bad insert-ids op: %+v", op)
	}
	for i, id := range ids {
		if op.IDs[i] != id {
			t.Fatalf("ids[%d] = %d, want %d", i, op.IDs[i], id)
		}
		for d := 0; d < 2; d++ {
			if op.Vectors[i*2+d] != vecs[i][d] {
				t.Fatalf("vectors[%d][%d] = %v, want %v", i, d, op.Vectors[i*2+d], vecs[i][d])
			}
		}
	}
}

// TestManifestRoundTrip covers the collection manifest: atomic write,
// load, absence, and rejection of damaged or impossible contents.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if m, err := LoadManifest(dir); err != nil || m != nil {
		t.Fatalf("empty dir: manifest %+v, err %v, want nil/nil", m, err)
	}
	want := &Manifest{Shards: 4, Dim: 16, Metric: linalg.Angular}
	if err := WriteManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != ManifestVersion || got.Shards != 4 || got.Dim != 16 || got.Metric != linalg.Angular {
		t.Fatalf("manifest round trip: %+v", got)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); !IsCorrupt(err) {
		t.Fatalf("damaged manifest: err = %v, want CorruptError", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(`{"version":1,"shards":0,"dim":4}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); !IsCorrupt(err) {
		t.Fatalf("zero-shard manifest: err = %v, want CorruptError", err)
	}
}

// TestHasLegacyLayout distinguishes pre-sharding directories (top-level
// snapshot/WAL files) from fresh and sharded ones.
func TestHasLegacyLayout(t *testing.T) {
	dir := t.TempDir()
	if legacy, err := HasLegacyLayout(dir); err != nil || legacy {
		t.Fatalf("fresh dir: legacy=%v err=%v", legacy, err)
	}
	if legacy, err := HasLegacyLayout(filepath.Join(dir, "missing")); err != nil || legacy {
		t.Fatalf("missing dir: legacy=%v err=%v", legacy, err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFileName(1)), []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	if legacy, err := HasLegacyLayout(dir); err != nil || !legacy {
		t.Fatalf("dir with top-level WAL: legacy=%v err=%v", legacy, err)
	}
}

// TestWALTornTail truncates the log at every byte offset and verifies
// replay always yields a clean record-aligned prefix, never an error.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(Options{Dir: dir, Policy: SyncAlways}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.AppendInsert(int64(i*2), [][]float32{{float32(i), 1}, {float32(i), 2}}, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, walFileName(1))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(full); cut++ {
		var n int
		_, _, err := ReplayBuffer(path, full[:cut], 0, func(op *WALOp) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// The replayed prefix must be the number of complete records
		// before the cut.
		whole := 0
		if cut >= walHeaderLen {
			sub := reader{data: full[:cut], off: walHeaderLen}
			for {
				if _, ok := sub.next(); !ok {
					break
				}
				whole++
			}
		}
		if n != whole {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, n, whole)
		}
	}
}

func TestWALRotateAndRemoveObsolete(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(Options{Dir: dir}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.AppendDelete([]int64{1})
	w.AppendDelete([]int64{2})
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	w.AppendDelete([]int64{3})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	// Both files present: replay sees all three records.
	if ops := collectOps(t, dir, 0); len(ops) != 3 {
		t.Fatalf("replayed %d ops, want 3", len(ops))
	}
	// Drop files wholly covered by LSN 2 (the first file).
	if err := w.RemoveObsolete(2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, walFileName(1))); !os.IsNotExist(err) {
		t.Fatalf("first WAL file not removed: %v", err)
	}
	if ops := collectOps(t, dir, 2); len(ops) != 1 || ops[0].IDs[0] != 3 {
		t.Fatalf("post-truncation replay wrong: %+v", ops)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALCrashDropsBufferedRecords(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(Options{Dir: dir, Policy: SyncNever}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.AppendDelete([]int64{1})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.AppendDelete([]int64{2}) // never synced
	w.Crash()
	if ops := collectOps(t, dir, 0); len(ops) != 1 {
		t.Fatalf("crash kept %d records, want the 1 synced one", len(ops))
	}
}

func testSnapshot() *Snapshot {
	store := linalg.NewMatrix(3, 2)
	store.AppendRow([]float32{1, 2, 3})
	store.AppendRow([]float32{4, 5, 6})
	growing := linalg.NewMatrix(3, 1)
	growing.AppendRow([]float32{7, 8, 9})
	return &Snapshot{
		CheckpointLSN:     42,
		Dim:               3,
		Metric:            linalg.InnerProduct,
		IndexType:         index.HNSW,
		Build:             index.BuildParams{HNSWM: 8, EfConstruction: 32, Seed: 7},
		NextID:            11,
		SealSeq:           5,
		Rows:              3,
		CompactionPasses:  2,
		CompactedSegments: 3,
		ReclaimedRows:     4,
		Segments:          []SnapSegment{{Seq: 4, IDs: []int64{1, 9}, Store: store}},
		Growing:           growing,
		GrowingIDs:        []int64{10},
		Tombstones:        []int64{2, 5},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := testSnapshot()
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.CheckpointLSN != 42 || got.Dim != 3 || got.Metric != linalg.InnerProduct ||
		got.IndexType != index.HNSW || got.Build != s.Build ||
		got.NextID != 11 || got.SealSeq != 5 || got.Rows != 3 ||
		got.CompactionPasses != 2 || got.CompactedSegments != 3 || got.ReclaimedRows != 4 {
		t.Fatalf("meta mismatch: %+v", got)
	}
	if len(got.Segments) != 1 || got.Segments[0].Seq != 4 ||
		len(got.Segments[0].IDs) != 2 || got.Segments[0].Store.Rows() != 2 {
		t.Fatalf("segments mismatch: %+v", got.Segments)
	}
	if got.Segments[0].Store.Row(1)[2] != 6 {
		t.Fatalf("segment rows mismatch")
	}
	if got.Growing == nil || got.Growing.Rows() != 1 || got.Growing.Row(0)[0] != 7 ||
		len(got.GrowingIDs) != 1 || got.GrowingIDs[0] != 10 {
		t.Fatalf("growing mismatch")
	}
	if len(got.Tombstones) != 2 || got.Tombstones[1] != 5 {
		t.Fatalf("tombstones mismatch: %v", got.Tombstones)
	}
}

// TestSnapshotDecodeRejectsDamage flips bytes and truncates; decode must
// return CorruptError every time, never succeed on damaged framing.
func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	data := EncodeSnapshot(testSnapshot())
	// Truncations: every prefix must fail (the footer is last).
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		} else if !IsCorrupt(err) {
			t.Fatalf("truncation at %d: non-corrupt error %v", cut, err)
		}
	}
	// Bit flips at a sample of offsets.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), data...)
		mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
		if bytes.Equal(mut, data) {
			continue
		}
		s, err := DecodeSnapshot(mut)
		if err == nil {
			// A flip inside float payload bytes is caught by the record
			// CRC, so success is impossible.
			t.Fatalf("trial %d: corrupted snapshot decoded, %+v", trial, s)
		}
		if !IsCorrupt(err) {
			t.Fatalf("trial %d: non-corrupt error %v", trial, err)
		}
	}
}

func TestWriteAndLoadNewestSnapshot(t *testing.T) {
	dir := t.TempDir()
	if s, err := LoadNewestSnapshot(dir); err != nil || s != nil {
		t.Fatalf("empty dir: %v, %v", s, err)
	}
	s1 := testSnapshot()
	s1.CheckpointLSN = 10
	if err := WriteSnapshot(dir, s1); err != nil {
		t.Fatal(err)
	}
	s2 := testSnapshot()
	s2.CheckpointLSN = 20
	s2.NextID = 99
	if err := WriteSnapshot(dir, s2); err != nil {
		t.Fatal(err)
	}
	got, err := LoadNewestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.CheckpointLSN != 20 || got.NextID != 99 {
		t.Fatalf("loaded snapshot %d/%d, want the newest (20/99)", got.CheckpointLSN, got.NextID)
	}

	// Damage the newest: loading falls back to the older valid one.
	path := filepath.Join(dir, snapFileName(20))
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	got, err = LoadNewestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.CheckpointLSN != 10 {
		t.Fatalf("fallback loaded %d, want 10", got.CheckpointLSN)
	}

	// Retention trimming keeps snapshots at or beyond the floor.
	if err := RemoveObsoleteSnapshots(dir, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName(10))); !os.IsNotExist(err) {
		t.Fatalf("old snapshot not removed: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"never", SyncNever}, {"batch", SyncBatch}, {"always", SyncAlways}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestBatchPolicySyncsDespiteAutoFlush: the 1MB buffer auto-flush hands
// bytes to the OS without fsyncing; it must not reset the group-commit
// clock, or the batch policy would silently degrade to never syncing
// when records are large.
func TestBatchPolicySyncsDespiteAutoFlush(t *testing.T) {
	dir := t.TempDir()
	const group = 4
	w, err := OpenWAL(Options{Dir: dir, Policy: SyncBatch, GroupCommit: group}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Each record is ~600KB, so every other append crosses the 1MB
	// auto-flush threshold.
	big := make([][]float32, 150)
	for i := range big {
		big[i] = make([]float32, 1024)
	}
	var lsn uint64
	for i := 0; i < group; i++ {
		if lsn, err = w.AppendInsert(int64(i*len(big)), big, 1024); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	w.mu.Lock()
	synced := w.syncedLSN
	w.mu.Unlock()
	if synced < lsn {
		t.Fatalf("after %d records under group=%d, syncedLSN = %d, want >= %d", group, group, synced, lsn)
	}
}

// TestWriteFailurePoisonsWAL: a file write error must fail the log
// permanently — retrying the buffer whole after a partial write would
// duplicate the already-written prefix and garble the log while later
// commits kept succeeding.
func TestWriteFailurePoisonsWAL(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(Options{Dir: dir, Policy: SyncNever}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the device failing out from under the log.
	w.mu.Lock()
	w.f.Close()
	w.mu.Unlock()
	big := make([][]float32, 300)
	for i := range big {
		big[i] = make([]float32, 1024)
	}
	for i := 0; i < 4 && err == nil; i++ {
		_, err = w.AppendInsert(int64(i*len(big)), big, 1024)
	}
	if err == nil {
		t.Fatal("write failure never surfaced")
	}
	// Every subsequent operation fails too, even ones small enough to
	// stay in the user-space buffer.
	if _, err := w.AppendDelete([]int64{1}); err == nil {
		t.Fatal("append succeeded on a poisoned WAL")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync succeeded on a poisoned WAL")
	}
	w.Crash()
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(Options{Dir: dir, Policy: SyncAlways}, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	errs := make(chan error, n)
	for g := 0; g < n; g++ {
		go func(g int) {
			lsn, err := w.AppendDelete([]int64{int64(g)})
			if err == nil {
				err = w.Commit(lsn)
			}
			errs <- err
		}(g)
	}
	for g := 0; g < n; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	w.Crash() // no graceful close: every committed record must still be on disk
	if ops := collectOps(t, dir, 0); len(ops) != n {
		t.Fatalf("replayed %d records, want %d", len(ops), n)
	}
}
