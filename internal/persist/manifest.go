package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"vdtuner/internal/linalg"
)

// The collection manifest. A sharded data directory is laid out as
//
//	dir/
//	  MANIFEST            this file: shard count, dimension, metric
//	  shard-0/            snapshot + WAL of shard 0 (see package doc)
//	  shard-1/            ...
//
// Each shard directory is an independent snapshot+WAL pair — shards
// checkpoint, rotate, and recover without coordinating — and the manifest
// is the one piece of collection-level state: the structural parameters
// that decide which shard owns which id. It is written once, when the
// directory is created, and never rewritten; recovery cross-checks it
// against the opening configuration, because opening with a different
// shard count would silently re-route ids (and a different dim/metric
// would silently change results).

// ManifestVersion is the current manifest schema version.
const ManifestVersion = 1

// ManifestName is the manifest's file name within a data directory.
const ManifestName = "MANIFEST"

// Manifest records a sharded data directory's structural parameters.
type Manifest struct {
	Version int           `json:"version"`
	Shards  int           `json:"shards"`
	Dim     int           `json:"dim"`
	Metric  linalg.Metric `json:"metric"`
}

// ShardDir returns shard i's subdirectory within a data directory.
func ShardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d", i))
}

// WriteManifest atomically persists m into dir: temp file, fsync, rename,
// directory fsync — the same discipline snapshots use, so a crash leaves
// either no manifest or a complete one.
func WriteManifest(dir string, m *Manifest) error {
	if m.Version == 0 {
		m.Version = ManifestVersion
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "manifest-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// LoadManifest reads dir's manifest. It returns (nil, nil) when no
// manifest exists (a fresh or pre-sharding directory; callers decide which
// with HasLegacyLayout) and a *CorruptError when one exists but cannot be
// a valid manifest.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, corruptf(filepath.Join(dir, ManifestName), 0, "undecodable manifest: %v", err)
	}
	if m.Version != ManifestVersion {
		return nil, corruptf(filepath.Join(dir, ManifestName), 0, "unsupported manifest version %d", m.Version)
	}
	if m.Shards < 1 || m.Dim <= 0 {
		return nil, corruptf(filepath.Join(dir, ManifestName), 0, "manifest declares %d shards, dim %d", m.Shards, m.Dim)
	}
	return &m, nil
}

// HasLegacyLayout reports whether dir holds pre-sharding persistence state:
// snapshot or WAL files directly at the top level instead of under
// shard-<i> subdirectories. Such a directory predates the manifest and
// cannot be opened by the sharded engine; surfacing it beats silently
// starting an empty collection next to unreachable data.
func HasLegacyLayout(dir string) (bool, error) {
	snaps, err := listSeqFiles(dir, "snap-", ".snap")
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	wals, err := listSeqFiles(dir, "wal-", ".wal")
	if err != nil {
		return false, err
	}
	return len(snaps) > 0 || len(wals) > 0, nil
}
