package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"vdtuner/internal/linalg"
)

// The collection manifest. A sharded data directory is laid out as
//
//	dir/
//	  MANIFEST            this file: generation, shard count, dim, metric
//	  shard-0/            snapshot + WAL of shard 0 (generation 0 layout)
//	  shard-1/            ...
//	  gen-1/shard-0/      snapshot + WAL of shard 0 after one migration
//	  gen-1/shard-1/      ...
//
// Each shard directory is an independent snapshot+WAL pair — shards
// checkpoint, rotate, and recover without coordinating — and the manifest
// is the one piece of collection-level state: the structural parameters
// that decide which shard owns which id, plus the config generation that
// decides which layout directory is current.
//
// Generations exist for online reconfiguration: changing a structural
// knob (shard count, index shape, segment sizing) rewrites the layout.
// The migrated layout is built in a sibling generation directory
// (gen-<G+1>/shard-<i>) next to the live one, and the migration commits
// by atomically renaming a new MANIFEST over the old — the same
// temp+fsync+rename discipline snapshots use — so a crash at any point
// leaves the directory recoverable as exactly the old or exactly the new
// generation, never a mix. Generation directories not named by the
// current manifest are abandoned migrations; openers remove them.
//
// Generation 0 is special-cased for compatibility: its shard directories
// live at the top level (the pre-reconfiguration layout), so directories
// created before manifests carried generations open unchanged.

// ManifestVersion is the current manifest schema version. Version 1
// (pre-reconfiguration, implicitly generation 0) is still accepted on
// load.
const ManifestVersion = 2

// ManifestName is the manifest's file name within a data directory.
const ManifestName = "MANIFEST"

// Manifest records a sharded data directory's structural parameters.
type Manifest struct {
	Version int           `json:"version"`
	Shards  int           `json:"shards"`
	Dim     int           `json:"dim"`
	Metric  linalg.Metric `json:"metric"`
	// Generation is the config generation the directory currently holds.
	// Generation 0 keeps its shard directories at the top level; every
	// later generation keeps them under gen-<Generation>/. It advances by
	// one per committed migration (see package vdms, Reconfigure).
	Generation uint64 `json:"generation,omitempty"`
}

// ShardDir returns shard i's subdirectory within a generation-0 data
// directory (the pre-reconfiguration layout).
func ShardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d", i))
}

// GenDir returns the layout directory of generation gen within dir: dir
// itself for generation 0, gen-<gen> for later generations.
func GenDir(dir string, gen uint64) string {
	if gen == 0 {
		return dir
	}
	return filepath.Join(dir, fmt.Sprintf("gen-%d", gen))
}

// ShardDir returns shard i's directory under the manifest's current
// generation within data directory dir.
func (m *Manifest) ShardDir(dir string, i int) string {
	return filepath.Join(GenDir(dir, m.Generation), fmt.Sprintf("shard-%d", i))
}

// WriteManifest atomically persists m into dir: temp file, fsync, rename,
// directory fsync — the same discipline snapshots use, so a crash leaves
// either no manifest or a complete one. It is also the commit point of a
// layout migration: the rename atomically switches the directory from one
// generation to the next.
func WriteManifest(dir string, m *Manifest) error {
	if m.Version == 0 {
		m.Version = ManifestVersion
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "manifest-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// LoadManifest reads dir's manifest. It returns (nil, nil) when no
// manifest exists (a fresh or pre-sharding directory; callers decide which
// with HasLegacyLayout) and a *CorruptError when one exists but cannot be
// a valid manifest.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, corruptf(filepath.Join(dir, ManifestName), 0, "undecodable manifest: %v", err)
	}
	// Version 1 manifests predate generations: they are generation 0 by
	// construction (shard dirs at the top level).
	if m.Version != ManifestVersion && m.Version != 1 {
		return nil, corruptf(filepath.Join(dir, ManifestName), 0, "unsupported manifest version %d", m.Version)
	}
	if m.Version == 1 && m.Generation != 0 {
		return nil, corruptf(filepath.Join(dir, ManifestName), 0, "version-1 manifest declares generation %d", m.Generation)
	}
	if m.Shards < 1 || m.Dim <= 0 {
		return nil, corruptf(filepath.Join(dir, ManifestName), 0, "manifest declares %d shards, dim %d", m.Shards, m.Dim)
	}
	return &m, nil
}

// RemoveStaleGenerations deletes generation directories other than the
// manifest's current one: the debris of a migration that crashed before
// its commit rename (or after it, before cleanup finished). Openers call
// it after loading the manifest; failures are surfaced but cost only
// disk, never durability, so callers may treat them as best-effort.
func RemoveStaleGenerations(dir string, m *Manifest) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if !strings.HasPrefix(name, "gen-") {
			continue
		}
		gen, err := strconv.ParseUint(name[len("gen-"):], 10, 64)
		if err != nil || gen == m.Generation {
			continue
		}
		if err := os.RemoveAll(filepath.Join(dir, name)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Top-level shard dirs are generation 0's layout; once the current
	// generation has moved past 0 they are stale the same way.
	if m.Generation != 0 {
		for _, e := range ents {
			if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
				if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}

// HasLegacyLayout reports whether dir holds pre-sharding persistence state:
// snapshot or WAL files directly at the top level instead of under
// shard-<i> subdirectories. Such a directory predates the manifest and
// cannot be opened by the sharded engine; surfacing it beats silently
// starting an empty collection next to unreachable data.
func HasLegacyLayout(dir string) (bool, error) {
	snaps, err := listSeqFiles(dir, "snap-", ".snap")
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	wals, err := listSeqFiles(dir, "wal-", ".wal")
	if err != nil {
		return false, err
	}
	return len(snaps) > 0 || len(wals) > 0, nil
}
