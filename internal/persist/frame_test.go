package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	bodies := [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{0xAB}, 10_000),
	}
	var stream []byte
	for _, b := range bodies {
		stream = AppendFrame(stream, b)
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i, want := range bodies {
		got, err := ReadFrame(r, 1<<20, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: body mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
		buf = got
	}
	if _, err := ReadFrame(r, 1<<20, buf); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

func TestReadFrameTornHeaderAndBody(t *testing.T) {
	frame := AppendFrame(nil, []byte("payload"))
	for _, cut := range []int{1, FrameHeaderLen - 1, FrameHeaderLen + 2, len(frame) - 1} {
		if _, err := ReadFrame(bytes.NewReader(frame[:cut]), 1<<20, nil); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestReadFrameCorruptCRC(t *testing.T) {
	frame := AppendFrame(nil, []byte("payload"))
	frame[len(frame)-1] ^= 0x01
	_, err := ReadFrame(bytes.NewReader(frame), 1<<20, nil)
	if !IsCorrupt(err) {
		t.Fatalf("corrupt body: got %v, want *CorruptError", err)
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	// A hostile declared length must be refused before any body read or
	// allocation: hand the reader a header claiming 1 GiB with no body
	// behind it — ReadFrame must fail with the typed error, not hang on
	// ReadFull or allocate a giant buffer.
	var hdr [FrameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
	_, err := ReadFrame(bytes.NewReader(hdr[:]), 1<<20, nil)
	var tooBig *FrameTooLargeError
	if !errors.As(err, &tooBig) {
		t.Fatalf("oversized frame: got %v, want *FrameTooLargeError", err)
	}
	if tooBig.Declared != 1<<30 || tooBig.Limit != 1<<20 {
		t.Fatalf("error fields: %+v", tooBig)
	}
}

func TestAppendFrameMatchesWALReader(t *testing.T) {
	// The exported helper must emit the exact frame layout the package's
	// own record reader accepts — they are one framing.
	body := beginBody(nil, 7, RecDelete)
	body = appendInt64s(body, []int64{1, 2, 3})
	stream := AppendFrame(nil, body)
	r := reader{data: stream}
	got, ok := r.next()
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("internal reader rejected AppendFrame output (ok=%v)", ok)
	}
}
