package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SyncPolicy selects when WAL appends become durable.
type SyncPolicy int

const (
	// SyncUnset means "use the default" (SyncBatch).
	SyncUnset SyncPolicy = 0
	// SyncNever leaves fsync to checkpoints and Close: maximal insert
	// throughput, crash loses everything since the last checkpoint.
	SyncNever SyncPolicy = 1
	// SyncBatch fsyncs once per GroupCommit buffered records: bounded
	// crash-loss window at a fraction of SyncAlways' flush count.
	SyncBatch SyncPolicy = 2
	// SyncAlways fsyncs before every acknowledgement, group-committed:
	// concurrent committers share one fsync, but no acknowledged write is
	// ever lost to a crash.
	SyncAlways SyncPolicy = 3
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps a policy name ("never", "batch", "always") to its
// value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "never":
		return SyncNever, nil
	case "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	default:
		return 0, fmt.Errorf("persist: unknown fsync policy %q (want never, batch, or always)", s)
	}
}

// Options configures a data directory's write-ahead log.
type Options struct {
	// Dir is the data directory.
	Dir string
	// Policy is the fsync policy; SyncUnset means SyncBatch.
	Policy SyncPolicy
	// GroupCommit is the number of buffered records that triggers an
	// fsync under SyncBatch; <= 0 means 64. Ignored by other policies.
	GroupCommit int
}

func (o Options) policy() SyncPolicy {
	if o.Policy == SyncUnset {
		return SyncBatch
	}
	return o.Policy
}

func (o Options) groupCommit() int {
	if o.GroupCommit <= 0 {
		return 64
	}
	return o.GroupCommit
}

// WAL file header: magic, version, first LSN of the file, header CRC.
const (
	walMagic     = "VDMSWAL1"
	walVersion   = 1
	walHeaderLen = len(walMagic) + 4 + 8 + 4
)

func encodeWALHeader(startLSN uint64) []byte {
	b := make([]byte, 0, walHeaderLen)
	b = append(b, walMagic...)
	b = binary.LittleEndian.AppendUint32(b, walVersion)
	b = binary.LittleEndian.AppendUint64(b, startLSN)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

// parseWALHeader returns the file's first LSN, or ok=false when the
// header is missing, torn, or checksummed wrong.
func parseWALHeader(data []byte) (startLSN uint64, ok bool) {
	if len(data) < walHeaderLen || string(data[:len(walMagic)]) != walMagic {
		return 0, false
	}
	if binary.LittleEndian.Uint32(data[len(walMagic):]) != walVersion {
		return 0, false
	}
	crcOff := walHeaderLen - 4
	if crc32.Checksum(data[:crcOff], castagnoli) != binary.LittleEndian.Uint32(data[crcOff:]) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(data[len(walMagic)+4:]), true
}

func walFileName(startLSN uint64) string { return fmt.Sprintf("wal-%016x.wal", startLSN) }
func snapFileName(lsn uint64) string     { return fmt.Sprintf("snap-%016x.snap", lsn) }
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	return v, err == nil
}

// listSeqFiles returns the directory's files matching prefix/suffix,
// sorted ascending by their embedded sequence number.
func listSeqFiles(dir, prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		if v, ok := parseSeqName(e.Name(), prefix, suffix); ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// WAL is the append-only operation log of one data directory. Appends go
// to a user-space buffer under an internal mutex (callers serialize them
// with the engine lock, fixing the record order); Commit makes a prefix
// durable according to the policy, with group commit: while one goroutine
// runs fsync, later committers queue up and are satisfied by a single
// follow-up flush.
type WAL struct {
	dir    string
	policy SyncPolicy
	group  int

	mu       sync.Mutex
	f        *os.File
	fileLSN  uint64 // first LSN of the current file
	buf      []byte // records appended but not yet written to the OS
	scratch  []byte // reusable record-body encode buffer
	nextLSN  uint64
	written  int64 // bytes handed to the OS for the current file
	oldBytes int64 // bytes in previous, not-yet-removed WAL files
	closed   bool
	// ioErr permanently fails the log after a file write error: a partial
	// write leaves a torn record on disk, and retrying the buffer whole
	// would duplicate the already-written prefix and garble the log while
	// later commits kept succeeding. Poisoned, the file simply ends in a
	// torn tail, which recovery truncates.
	ioErr error

	// Group-commit state, guarded by mu.
	syncing   bool
	syncedLSN uint64
	syncErr   error
	syncCond  *sync.Cond
}

// OpenWAL opens the directory's log for appending, starting a fresh file
// whose first record will carry nextLSN. Pre-existing WAL files (the ones
// recovery just replayed) are accounted in Size and removed by the next
// checkpoint's RemoveObsolete.
func OpenWAL(opts Options, nextLSN uint64) (*WAL, error) {
	if err := os.MkdirAll(opts.Dir, 0o777); err != nil {
		return nil, err
	}
	w := &WAL{
		dir:       opts.Dir,
		policy:    opts.policy(),
		group:     opts.groupCommit(),
		nextLSN:   nextLSN,
		syncedLSN: nextLSN - 1,
	}
	w.syncCond = sync.NewCond(&w.mu)
	existing, err := listSeqFiles(opts.Dir, "wal-", ".wal")
	if err != nil {
		return nil, err
	}
	for _, lsn := range existing {
		if fi, err := os.Stat(filepath.Join(opts.Dir, walFileName(lsn))); err == nil {
			w.oldBytes += fi.Size()
		}
	}
	if err := w.startFileLocked(nextLSN); err != nil {
		return nil, err
	}
	return w, nil
}

// startFileLocked creates wal-<startLSN>.wal and makes it current.
// Callers hold w.mu (or own the WAL exclusively during construction).
func (w *WAL) startFileLocked(startLSN uint64) error {
	// O_TRUNC rather than O_EXCL: recovery may legitimately leave behind a
	// same-named file holding nothing but a header (a rotation or a torn
	// first record right before the crash), which the new log replaces.
	f, err := os.OpenFile(filepath.Join(w.dir, walFileName(startLSN)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return err
	}
	hdr := encodeWALHeader(startLSN)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.fileLSN = startLSN
	w.written = int64(len(hdr))
	return nil
}

// append frames body into the buffer and assigns it the next LSN.
func (w *WAL) append(build func(dst []byte, lsn uint64) []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("persist: WAL closed")
	}
	if w.ioErr != nil {
		return 0, w.ioErr
	}
	lsn := w.nextLSN
	w.nextLSN++
	body := build(w.scratchLocked(), lsn)
	w.buf = appendFrame(w.buf, body)
	w.scratch = body // retain the (possibly grown) scratch for reuse
	// Keep the user-space buffer bounded: hand large buffers to the OS
	// even under lazy policies (this is a write, not an fsync — it does
	// not change the durability window, only memory use).
	if len(w.buf) >= 1<<20 {
		if err := w.writeOutLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// scratchLocked returns a body scratch buffer. Encoders build the body
// here, then appendFrame copies it after the frame header; the scratch
// grows to the largest record and is reused across appends, so steady-
// state appends allocate nothing.
func (w *WAL) scratchLocked() []byte {
	if w.scratch == nil {
		w.scratch = make([]byte, 0, 4096)
	}
	return w.scratch[:0]
}

// writeOutLocked hands the buffered records to the OS. Callers hold w.mu.
// A write error (including a partial write) poisons the log permanently:
// see the ioErr field.
func (w *WAL) writeOutLocked() error {
	if w.ioErr != nil {
		return w.ioErr
	}
	if len(w.buf) == 0 {
		return nil
	}
	n, err := w.f.Write(w.buf)
	w.written += int64(n)
	if err != nil {
		w.ioErr = fmt.Errorf("persist: WAL write failed, log poisoned: %w", err)
		return w.ioErr
	}
	w.buf = w.buf[:0]
	return nil
}

// AppendInsert logs a run of len(vecs) inserted vectors (dimension dim)
// whose ids start at firstID, returning the record's LSN.
func (w *WAL) AppendInsert(firstID int64, vecs [][]float32, dim int) (uint64, error) {
	return w.append(func(dst []byte, lsn uint64) []byte {
		return encodeInsert(dst, lsn, firstID, vecs, dim)
	})
}

// AppendInsertIDs logs inserted vectors with explicit (non-contiguous)
// ids, aligned index-by-index with vecs. Shards of a hash-routed
// collection use it for the sub-batches whose ids stride across shards;
// contiguous runs keep the denser AppendInsert.
func (w *WAL) AppendInsertIDs(ids []int64, vecs [][]float32, dim int) (uint64, error) {
	return w.append(func(dst []byte, lsn uint64) []byte {
		return encodeInsertIDs(dst, lsn, ids, vecs, dim)
	})
}

// AppendDelete logs one Delete call's requested ids.
func (w *WAL) AppendDelete(ids []int64) (uint64, error) {
	return w.append(func(dst []byte, lsn uint64) []byte {
		return encodeDelete(dst, lsn, ids)
	})
}

// AppendFlush logs the sealing of the growing segment as sequence seq.
func (w *WAL) AppendFlush(seq int64) (uint64, error) {
	return w.append(func(dst []byte, lsn uint64) []byte {
		return encodeFlush(dst, lsn, seq)
	})
}

// AppendCompactCommit logs one committed compaction task.
func (w *WAL) AppendCompactCommit(newSeq int64, sources, liveIDs, dropped []int64) (uint64, error) {
	return w.append(func(dst []byte, lsn uint64) []byte {
		return encodeCompactCommit(dst, lsn, newSeq, sources, liveIDs, dropped)
	})
}

// Commit makes the record at lsn (and everything before it) as durable as
// the policy promises: SyncAlways waits for an fsync covering lsn (group-
// committed), SyncBatch fsyncs only when enough records have accumulated,
// SyncNever returns immediately. The policy is read under the lock so a
// concurrent SetPolicy is observed either wholly before or wholly after
// this commit.
func (w *WAL) Commit(lsn uint64) error {
	w.mu.Lock()
	policy := w.policy
	// Count records since the last fsync by LSN, not by buffered
	// records: the 1MB buffer auto-flush hands bytes to the OS
	// without syncing, and must not reset the group-commit clock.
	due := w.nextLSN-1-w.syncedLSN >= uint64(w.group)
	w.mu.Unlock()
	switch policy {
	case SyncAlways:
		return w.syncTo(lsn)
	case SyncBatch:
		if due {
			return w.syncTo(lsn)
		}
		return nil
	default:
		return nil
	}
}

// SetPolicy switches the fsync policy and group-commit batch of an open
// log. The change applies to the next Commit; records already buffered
// keep accumulating toward the new group size. It exists for online
// reconfiguration — durability knobs are hot, the log never rewrites.
func (w *WAL) SetPolicy(p SyncPolicy, groupCommit int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.policy = Options{Policy: p}.policy()
	w.group = Options{GroupCommit: groupCommit}.groupCommit()
}

// Sync forces every appended record to disk regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	target := w.nextLSN - 1
	w.mu.Unlock()
	return w.syncTo(target)
}

// syncTo blocks until records up to lsn are fsynced, sharing flushes
// between concurrent callers: one leader writes and fsyncs everything
// buffered so far, and every waiter whose lsn that covers returns with it.
func (w *WAL) syncTo(lsn uint64) error {
	w.mu.Lock()
	for {
		if w.syncErr != nil {
			err := w.syncErr
			w.mu.Unlock()
			return err
		}
		if w.syncedLSN >= lsn {
			w.mu.Unlock()
			return nil
		}
		if !w.syncing {
			break
		}
		w.syncCond.Wait()
	}
	// Become the leader: flush everything appended so far.
	w.syncing = true
	target := w.nextLSN - 1
	err := w.writeOutLocked()
	f := w.f
	w.mu.Unlock()
	if err == nil {
		err = f.Sync()
	}
	w.mu.Lock()
	w.syncing = false
	if err != nil {
		w.syncErr = err
	} else if target > w.syncedLSN {
		w.syncedLSN = target
	}
	w.syncCond.Broadcast()
	w.mu.Unlock()
	return err
}

// Rotate flushes and fsyncs the current file and starts a new one whose
// first record will be the next append. The checkpoint path calls it
// under the engine lock so that the snapshot boundary and the file
// boundary agree; RemoveObsolete later deletes the files a successful
// snapshot made redundant.
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("persist: WAL closed")
	}
	// Wait out any in-flight group-commit leader: it holds the current
	// *os.File outside the lock, and rotation is about to close it.
	for w.syncing {
		w.syncCond.Wait()
	}
	if err := w.writeOutLocked(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.oldBytes += w.written
	w.syncedLSN = w.nextLSN - 1
	return w.startFileLocked(w.nextLSN)
}

// RemoveObsolete deletes WAL files whose every record has LSN <= keep.
// A file is removable when the next file starts at or before keep+1.
func (w *WAL) RemoveObsolete(keep uint64) error {
	w.mu.Lock()
	current := w.fileLSN
	w.mu.Unlock()
	lsns, err := listSeqFiles(w.dir, "wal-", ".wal")
	if err != nil {
		return err
	}
	var removed int64
	for i, lsn := range lsns {
		if lsn >= current {
			continue
		}
		next := current
		if i+1 < len(lsns) {
			next = lsns[i+1]
		}
		if next <= keep+1 {
			path := filepath.Join(w.dir, walFileName(lsn))
			fi, statErr := os.Stat(path)
			if err := os.Remove(path); err != nil {
				return err
			}
			if statErr == nil {
				removed += fi.Size()
			}
		}
	}
	w.mu.Lock()
	w.oldBytes -= removed
	if w.oldBytes < 0 {
		w.oldBytes = 0
	}
	w.mu.Unlock()
	return nil
}

// LastLSN returns the LSN of the most recently appended record (nextLSN-1).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// Size reports the WAL's current byte footprint: every live file plus the
// user-space buffer. It is what recovery would have to read back.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.oldBytes + w.written + int64(len(w.buf))
}

// Close flushes, fsyncs, and closes the log.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil {
		w.Crash()
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// Crash abandons the log the way a process crash would: buffered records
// that were never handed to the OS are discarded and the file is closed
// without flushing. It exists for crash-recovery testing.
func (w *WAL) Crash() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	w.buf = nil
	w.f.Close()
}

// ReplayBuffer walks one WAL file image, calling fn for every record with
// LSN > after. It returns the byte length of the valid prefix (the torn-
// tail truncation point) and the LSN the log continues at. A torn or
// checksum-failing tail ends the walk without error; structurally
// impossible records (bad header, non-sequential LSNs, undecodable
// payloads with a valid checksum) return a *CorruptError. fn errors abort
// the walk.
func ReplayBuffer(path string, data []byte, after uint64, fn func(*WALOp) error) (validEnd int64, nextLSN uint64, err error) {
	startLSN, ok := parseWALHeader(data)
	if !ok {
		// Missing or torn header: an empty file created right before the
		// crash. Nothing valid, nothing corrupt.
		return 0, after + 1, nil
	}
	r := reader{path: path, data: data, off: walHeaderLen}
	expect := startLSN
	var op WALOp
	for {
		base := int64(r.off)
		body, ok := r.next()
		if !ok {
			return base, expect, nil
		}
		if err := decodeWALOp(path, base, body, &op); err != nil {
			return base, expect, err
		}
		if op.LSN != expect {
			return base, expect, corruptf(path, base, "record LSN %d, want %d", op.LSN, expect)
		}
		expect++
		if op.LSN > after && fn != nil {
			if err := fn(&op); err != nil {
				return base, expect, err
			}
		}
	}
}

// RecordInfo locates one WAL record within its file, for tooling and the
// crash-matrix harness (truncation points are record boundaries).
type RecordInfo struct {
	LSN  uint64
	Type RecordType
	// Offset and End are the record's frame boundaries within the file:
	// truncating the file at Offset removes this record and everything
	// after it; truncating anywhere in (Offset, End) tears it.
	Offset int64
	End    int64
}

// WALFileNames returns the directory's WAL file paths, ordered oldest
// first.
func WALFileNames(dir string) ([]string, error) {
	lsns, err := listSeqFiles(dir, "wal-", ".wal")
	if err != nil {
		return nil, err
	}
	out := make([]string, len(lsns))
	for i, lsn := range lsns {
		out[i] = filepath.Join(dir, walFileName(lsn))
	}
	return out, nil
}

// ScanWALFile maps one WAL file's valid records without interpreting
// payloads beyond their framing.
func ScanWALFile(path string) ([]RecordInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if _, ok := parseWALHeader(data); !ok {
		return nil, nil
	}
	var out []RecordInfo
	r := reader{path: path, data: data, off: walHeaderLen}
	var op WALOp
	for {
		base := int64(r.off)
		body, ok := r.next()
		if !ok {
			return out, nil
		}
		if err := decodeWALOp(path, base, body, &op); err != nil {
			return out, err
		}
		out = append(out, RecordInfo{LSN: op.LSN, Type: op.Type, Offset: base, End: int64(r.off)})
	}
}

// ReplayWAL replays every record with LSN > after from the directory's
// WAL files, in order. The newest file may end in a torn record — it is
// truncated in place so the next append continues a clean log. Earlier
// files were sealed by a rotation and must be fully valid; damage there
// is a *CorruptError. It returns the LSN the log ends at (the next LSN to
// write).
func ReplayWAL(dir string, after uint64, fn func(*WALOp) error) (nextLSN uint64, err error) {
	lsns, err := listSeqFiles(dir, "wal-", ".wal")
	if err != nil {
		if os.IsNotExist(err) {
			return after + 1, nil
		}
		return 0, err
	}
	nextLSN = after + 1
	for i, start := range lsns {
		path := filepath.Join(dir, walFileName(start))
		data, err := os.ReadFile(path)
		if err != nil {
			return 0, err
		}
		if start > after && start != nextLSN {
			return 0, corruptf(path, 0, "WAL gap: file starts at LSN %d, log continues at %d", start, nextLSN)
		}
		validEnd, fileNext, err := ReplayBuffer(path, data, after, fn)
		if err != nil {
			return 0, err
		}
		if validEnd < int64(len(data)) {
			if i != len(lsns)-1 {
				return 0, corruptf(path, validEnd, "invalid record inside a sealed WAL file")
			}
			if err := os.Truncate(path, validEnd); err != nil {
				return 0, err
			}
		}
		if fileNext > nextLSN {
			nextLSN = fileNext
		}
	}
	return nextLSN, nil
}
