// Package persist is the engine's durability subsystem: a binary snapshot
// codec for sealed-segment state plus an append-only write-ahead log for
// the growing/live layer, the same snapshot+WAL split used by the
// production VDMS backends the paper tunes (Milvus-style segment binlogs
// plus a log for the unflushed tail).
//
// # On-disk layout
//
// A data directory holds at most two kinds of files:
//
//	snap-<LSN>.snap   full engine state as of log sequence number <LSN>
//	wal-<LSN>.wal     log records starting at sequence number <LSN>
//
// Every record — in both file kinds — is individually framed and
// checksummed:
//
//	u32 length | u32 CRC32-C | body
//	body = u64 LSN | u8 type | payload
//
// so torn writes and bit rot are detected record-by-record. Snapshot files
// additionally carry a versioned header and a footer record, making a
// half-written snapshot distinguishable from a complete one; snapshots are
// written to a temp file, fsynced, and renamed into place, so a crash
// during checkpointing never damages the previous snapshot.
//
// # Recovery contract
//
// Recovery loads the newest snapshot that decodes cleanly, then replays
// the WAL suffix (records with LSN beyond the snapshot). A torn tail — a
// partial record at the end of the newest WAL file, the signature of a
// crash mid-append — is truncated, and replay succeeds with the longest
// valid prefix. Any other malformed byte yields a *CorruptError rather
// than a panic: hostile or damaged input can fail recovery, but it cannot
// take the process down or force pathological allocations (every declared
// length is validated against the bytes actually present before any
// allocation).
//
// # Durability policies
//
// The WAL writer buffers records in user space and exposes three fsync
// policies (SyncNever, SyncBatch, SyncAlways) plus group commit: under
// SyncAlways, concurrent committers piggyback on a single fsync, so an
// insert-heavy workload pays one disk flush per batch of acknowledgements
// rather than one per operation. The policies are tuner knobs
// (wal_fsyncPolicy, wal_groupCommit in the configuration space), trading
// acknowledgement latency against the crash-loss window.
package persist

import (
	"fmt"
	"hash/crc32"
)

// CorruptError reports bytes that cannot be a valid snapshot or WAL: a
// checksum mismatch, an impossible declared length, a record that
// contradicts the stream around it. Recovery surfaces it instead of
// panicking; callers distinguish it from I/O errors with errors.As or
// IsCorrupt.
type CorruptError struct {
	// Path names the damaged file when known (empty for in-memory decodes).
	Path string
	// Offset is the byte offset of the damage within the input.
	Offset int64
	// Reason describes the inconsistency.
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("persist: corrupt data at offset %d: %s", e.Offset, e.Reason)
	}
	return fmt.Sprintf("persist: corrupt data in %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// IsCorrupt reports whether err is (or wraps) a *CorruptError.
func IsCorrupt(err error) bool {
	for err != nil {
		if _, ok := err.(*CorruptError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func corruptf(path string, off int64, format string, args ...any) *CorruptError {
	return &CorruptError{Path: path, Offset: off, Reason: fmt.Sprintf(format, args...)}
}

// castagnoli is the CRC32-C table shared by every record frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crc32c checksums b with the shared table.
func crc32c(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }
