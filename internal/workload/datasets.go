package workload

import "sync"

// Scale adjusts every named dataset's corpus size; 1.0 is the default
// laptop-friendly scale. The paper's corpora are ~1M vectors; these
// generators keep the same dimensionality and structure at a size where a
// full 200-iteration tuning run finishes in minutes.
type Scale float64

// Named dataset constructors mirroring the paper's Table III (plus
// ArXiv-titles from Table V and deep-image from §V-E).

// GloVeLike mirrors GloVe: 100-d angular word embeddings — clustered and
// strongly correlated, the "easy" dataset where many index types do well.
func GloVeLike(scale Scale) Spec {
	return Spec{
		Name: "glove-like", N: n(scale, 6000), NQ: 60, Dim: 100, K: 20,
		Clusters: 64, ClusterStd: 0.65, Correlated: true, Seed: 101,
	}
}

// KeywordLike mirrors Keyword-match: 100-d angular with low correlation
// between dimensions, which the paper observes needs a larger nprobe for
// the same recall.
func KeywordLike(scale Scale) Spec {
	return Spec{
		Name: "keyword-like", N: n(scale, 6000), NQ: 60, Dim: 100, K: 20,
		Clusters: 16, ClusterStd: 1.2, Correlated: false, Seed: 102,
	}
}

// GeoLike mirrors Geo-radius: very high-dimensional (2048-d) angular
// vectors, the dataset with the largest improvement headroom in Table IV.
// The corpus is smaller because each vector is 20x bigger.
func GeoLike(scale Scale) Spec {
	return Spec{
		Name: "geo-like", N: n(scale, 1500), NQ: 40, Dim: 512, K: 20,
		Clusters: 8, ClusterStd: 1.4, Correlated: false, Seed: 103,
	}
}

// ArxivLike mirrors ArXiv-titles: sentence-embedding-like, moderately
// clustered and correlated; Table V selects HNSW here.
func ArxivLike(scale Scale) Spec {
	return Spec{
		Name: "arxiv-like", N: n(scale, 5000), NQ: 50, Dim: 128, K: 20,
		Clusters: 32, ClusterStd: 0.8, Correlated: true, Seed: 104,
	}
}

// DeepImageLike mirrors deep-image: 10x larger than GloVe (§V-E
// scalability study).
func DeepImageLike(scale Scale) Spec {
	g := GloVeLike(scale)
	return Spec{
		Name: "deep-image-like", N: 10 * g.N, NQ: 60, Dim: 96, K: 20,
		Clusters: 128, ClusterStd: 0.6, Correlated: true, Seed: 105,
	}
}

func n(scale Scale, base int) int {
	v := int(float64(base) * float64(scale))
	if v < 200 {
		v = 200
	}
	return v
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Dataset{}
)

// Load generates (or returns a cached copy of) the dataset for a spec.
// Generation includes exact ground truth and is the expensive step, so
// experiment code shares datasets through this cache.
func Load(s Spec) (*Dataset, error) {
	key := specKey(s)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if d, ok := cache[key]; ok {
		return d, nil
	}
	d, err := Generate(s)
	if err != nil {
		return nil, err
	}
	cache[key] = d
	return d, nil
}

func specKey(s Spec) string {
	return s.Name + "/" + itoa(s.N) + "/" + itoa(s.NQ) + "/" + itoa(s.Dim) + "/" + itoa(s.K) + "/" + itoa(int(s.Seed))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
