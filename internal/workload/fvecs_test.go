package workload

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"vdtuner/internal/linalg"
)

func TestFvecsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vecs := make([][]float32, 20)
	for i := range vecs {
		vecs[i] = make([]float32, 12)
		for j := range vecs[i] {
			vecs[i][j] = rng.Float32()
		}
	}
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, vecs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vecs) {
		t.Fatalf("read %d vectors, want %d", len(got), len(vecs))
	}
	for i := range vecs {
		if linalg.SquaredL2(got[i], vecs[i]) != 0 {
			t.Fatalf("vector %d corrupted", i)
		}
	}
}

func TestReadFvecsLimit(t *testing.T) {
	vecs := [][]float32{{1, 2}, {3, 4}, {5, 6}}
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, vecs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("limit ignored: read %d", len(got))
	}
}

func TestReadFvecsErrors(t *testing.T) {
	if _, err := ReadFvecs(bytes.NewReader(nil), 0); err == nil {
		t.Fatal("accepted empty stream")
	}
	// Implausible dimension.
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, int32(-3))
	if _, err := ReadFvecs(&buf, 0); err == nil {
		t.Fatal("accepted negative dimension")
	}
	// Truncated payload.
	buf.Reset()
	binary.Write(&buf, binary.LittleEndian, int32(4))
	binary.Write(&buf, binary.LittleEndian, float32(1))
	if _, err := ReadFvecs(&buf, 0); err == nil {
		t.Fatal("accepted truncated payload")
	}
	// Inconsistent dimensions.
	buf.Reset()
	WriteFvecs(&buf, [][]float32{{1, 2}})
	WriteFvecs(&buf, [][]float32{{1, 2, 3}})
	if _, err := ReadFvecs(&buf, 0); err == nil {
		t.Fatal("accepted inconsistent dims")
	}
}

func TestReadIvecs(t *testing.T) {
	var buf bytes.Buffer
	rows := [][]int32{{7, 3, 9}, {1, 0, 2}}
	for _, row := range rows {
		binary.Write(&buf, binary.LittleEndian, int32(len(row)))
		binary.Write(&buf, binary.LittleEndian, row)
	}
	got, err := ReadIvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][0] != 7 || got[1][2] != 2 {
		t.Fatalf("ReadIvecs = %v", got)
	}
}

// writeTexmexDataset materializes a synthetic dataset as TEXMEX files and
// returns their paths.
func writeTexmexDataset(t *testing.T, withGT bool) (base, query, gt string, ds *Dataset) {
	t.Helper()
	ds, err := Generate(Spec{Name: "texmex", N: 200, NQ: 8, Dim: 10, K: 4, Clusters: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	base = filepath.Join(dir, "base.fvecs")
	query = filepath.Join(dir, "query.fvecs")
	writeF := func(path string, vecs [][]float32) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := WriteFvecs(f, vecs); err != nil {
			t.Fatal(err)
		}
	}
	writeF(base, ds.Vectors)
	writeF(query, ds.Queries)
	if withGT {
		gt = filepath.Join(dir, "gt.ivecs")
		f, err := os.Create(gt)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var buf bytes.Buffer
		for _, row := range ds.Truth {
			binary.Write(&buf, binary.LittleEndian, int32(len(row)))
			for _, id := range row {
				binary.Write(&buf, binary.LittleEndian, int32(id))
			}
		}
		if _, err := f.Write(buf.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	return base, query, gt, ds
}

func TestLoadFileComputedTruth(t *testing.T) {
	base, query, _, want := writeTexmexDataset(t, false)
	got, err := LoadFile(FileSpec{
		Name: "file-ds", BasePath: base, QueryPath: query,
		Metric: linalg.L2, K: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vectors) != len(want.Vectors) || got.Dim != want.Dim {
		t.Fatalf("shape mismatch: %d x %d", len(got.Vectors), got.Dim)
	}
	// Computed truth must match the generator's truth by distance
	// boundary (id ties may differ).
	for qi := range got.Queries {
		wantWorst := linalg.Distance(want.Metric, want.Queries[qi], want.Vectors[want.Truth[qi][len(want.Truth[qi])-1]])
		for _, id := range got.Truth[qi] {
			d := linalg.Distance(got.Metric, got.Queries[qi], got.Vectors[id])
			if d > wantWorst+1e-5 {
				t.Fatalf("query %d: loaded truth id %d beyond boundary", qi, id)
			}
		}
	}
}

func TestLoadFileProvidedTruth(t *testing.T) {
	base, query, gt, want := writeTexmexDataset(t, true)
	got, err := LoadFile(FileSpec{
		Name: "file-ds-gt", BasePath: base, QueryPath: query,
		GroundTruthPath: gt, Metric: linalg.L2, K: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range got.Truth {
		for j := range got.Truth[qi] {
			if got.Truth[qi][j] != want.Truth[qi][j] {
				t.Fatalf("query %d truth differs at %d", qi, j)
			}
		}
	}
}

func TestLoadFileAngularNormalizes(t *testing.T) {
	base, query, _, _ := writeTexmexDataset(t, false)
	got, err := LoadFile(FileSpec{
		Name: "file-ang", BasePath: base, QueryPath: query,
		Metric: linalg.Angular, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got.Vectors {
		n := float64(linalg.Norm(v))
		if n < 0.999 || n > 1.001 {
			t.Fatalf("vector %d not normalized: %v", i, n)
		}
	}
	if got.Metric != linalg.L2 {
		t.Fatalf("angular not mapped to internal L2: %v", got.Metric)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(FileSpec{BasePath: "/nonexistent", QueryPath: "/nonexistent"}); err == nil {
		t.Fatal("accepted missing files")
	}
}
