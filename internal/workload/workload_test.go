package workload

import (
	"testing"

	"vdtuner/internal/linalg"
)

func TestGenerateShapes(t *testing.T) {
	d, err := Generate(Spec{Name: "t", N: 500, NQ: 20, Dim: 16, K: 5, Clusters: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Vectors) != 500 || len(d.Queries) != 20 || len(d.Truth) != 20 {
		t.Fatalf("bad shapes: %d vectors, %d queries, %d truth", len(d.Vectors), len(d.Queries), len(d.Truth))
	}
	for _, tr := range d.Truth {
		if len(tr) != 5 {
			t.Fatalf("truth depth %d, want 5", len(tr))
		}
	}
}

func TestGenerateNormalized(t *testing.T) {
	d, err := Generate(Spec{Name: "t", N: 100, NQ: 5, Dim: 8, K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range d.Vectors {
		n := float64(linalg.Norm(v))
		if n < 0.999 || n > 1.001 {
			t.Fatalf("vector %d norm = %v, want 1", i, n)
		}
	}
}

func TestGroundTruthIsExact(t *testing.T) {
	d, err := Generate(Spec{Name: "t", N: 300, NQ: 10, Dim: 12, K: 4, Clusters: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute truth serially and compare distances (ties may reorder
	// ids, so compare the distance multiset boundary).
	for qi, q := range d.Queries {
		top := linalg.NewTopK(4)
		for i, v := range d.Vectors {
			top.Push(int64(i), linalg.Distance(d.Metric, q, v))
		}
		want := top.Results()
		worst := want[len(want)-1].Dist
		for _, id := range d.Truth[qi] {
			got := linalg.Distance(d.Metric, q, d.Vectors[id])
			if got > worst+1e-6 {
				t.Fatalf("query %d: truth id %d at distance %v beyond exact boundary %v", qi, id, got, worst)
			}
		}
	}
}

func TestRecallBounds(t *testing.T) {
	d, err := Generate(Spec{Name: "t", N: 200, NQ: 5, Dim: 8, K: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Perfect results give recall 1.
	perfect := make([]linalg.Neighbor, 5)
	for i, id := range d.Truth[0] {
		perfect[i] = linalg.Neighbor{ID: id}
	}
	if r := d.Recall(0, perfect); r != 1 {
		t.Fatalf("perfect recall = %v", r)
	}
	// Junk ids give recall 0.
	junk := []linalg.Neighbor{{ID: -1}, {ID: -2}}
	if r := d.Recall(0, junk); r != 0 {
		t.Fatalf("junk recall = %v", r)
	}
	// Empty results give 0.
	if r := d.Recall(0, nil); r != 0 {
		t.Fatalf("empty recall = %v", r)
	}
}

func TestGenerateInvalidSpec(t *testing.T) {
	if _, err := Generate(Spec{N: 0, NQ: 1, Dim: 4}); err == nil {
		t.Fatal("accepted N=0")
	}
	if _, err := Generate(Spec{N: 10, NQ: 0, Dim: 4}); err == nil {
		t.Fatal("accepted NQ=0")
	}
}

func TestGenerateKClamped(t *testing.T) {
	d, err := Generate(Spec{Name: "t", N: 5, NQ: 2, Dim: 4, K: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.K != 5 {
		t.Fatalf("K = %d, want clamped to 5", d.K)
	}
}

func TestLoadCaches(t *testing.T) {
	spec := Spec{Name: "cache-test", N: 200, NQ: 5, Dim: 8, K: 3, Seed: 6}
	a, err := Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Load did not cache")
	}
}

func TestNamedSpecsDistinct(t *testing.T) {
	specs := []Spec{GloVeLike(1), KeywordLike(1), GeoLike(1), ArxivLike(1), DeepImageLike(1)}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate dataset name %q", s.Name)
		}
		seen[s.Name] = true
		if s.N <= 0 || s.Dim <= 0 {
			t.Fatalf("bad spec %+v", s)
		}
	}
	if DeepImageLike(1).N < 10*GloVeLike(1).N {
		t.Fatal("deep-image-like is not 10x glove-like")
	}
}

func TestScaleShrinks(t *testing.T) {
	full := GloVeLike(1)
	small := GloVeLike(0.1)
	if small.N >= full.N {
		t.Fatalf("scale 0.1 did not shrink: %d vs %d", small.N, full.N)
	}
	if small.N < 200 {
		t.Fatal("scale floor violated")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	s := Spec{Name: "det", N: 100, NQ: 3, Dim: 6, K: 2, Clusters: 2, Seed: 7}
	a, _ := Generate(s)
	b, _ := Generate(s)
	for i := range a.Vectors {
		if linalg.SquaredL2(a.Vectors[i], b.Vectors[i]) != 0 {
			t.Fatalf("vector %d differs across identical seeds", i)
		}
	}
}
