// Package workload provides the evaluation datasets and query workloads.
//
// The paper evaluates on GloVe, Keyword-match, Geo-radius, ArXiv-titles and
// deep-image from vector-db-benchmark. Those corpora are not available
// offline, so this package generates synthetic datasets with the same
// statistical character (dimensionality, cluster structure, inter-dimension
// correlation) at a laptop-friendly scale; see DESIGN.md "Substitutions".
// Ground truth is exact top-K computed by brute force once per dataset.
package workload

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"vdtuner/internal/linalg"
)

// Dataset is an immutable evaluation corpus: stored vectors, query vectors
// and exact ground-truth neighbor ids for each query.
type Dataset struct {
	// Name identifies the dataset in reports.
	Name string
	// Dim is the vector dimensionality.
	Dim int
	// Metric is the distance used for ground truth and search. Angular
	// datasets are pre-normalized and use L2 internally (identical
	// ranking on unit vectors).
	Metric linalg.Metric
	// Vectors is the stored corpus.
	Vectors [][]float32
	// Queries are the search requests replayed against the system.
	Queries [][]float32
	// K is the ground-truth depth (the paper uses top-100; scaled-down
	// datasets use top-10 by default).
	K int
	// Truth[i] lists the exact K nearest ids of Queries[i].
	Truth [][]int64

	// store is the flat arena backing Vectors; see Store.
	store     *linalg.Matrix
	storeOnce sync.Once
}

// Store returns the corpus as one flat row-major arena — the
// cache-contiguous layout every index builds from. The arena is created
// once (the dataset constructors pre-seal it) and Vectors' rows alias its
// rows, so both views stay one copy.
func (d *Dataset) Store() *linalg.Matrix {
	d.storeOnce.Do(d.sealArena)
	return d.store
}

func (d *Dataset) sealArena() {
	m := linalg.NewMatrix(d.Dim, len(d.Vectors))
	for i, v := range d.Vectors {
		m.AppendRow(v)
		d.Vectors[i] = m.Row(i)
	}
	d.store = m
}

// IDs returns the implicit id of each stored vector (its position).
func (d *Dataset) IDs() []int64 {
	ids := make([]int64, len(d.Vectors))
	for i := range ids {
		ids[i] = int64(i)
	}
	return ids
}

// RawBytes is the in-memory size of the raw stored vectors.
func (d *Dataset) RawBytes() int64 {
	return int64(len(d.Vectors)) * int64(d.Dim) * 4
}

// Recall computes recall@K of one result list against the ground truth of
// query qi: the fraction of the true top-K that was retrieved.
func (d *Dataset) Recall(qi int, results []linalg.Neighbor) float64 {
	truth := d.Truth[qi]
	if len(truth) == 0 {
		return 0
	}
	want := make(map[int64]struct{}, len(truth))
	for _, id := range truth {
		want[id] = struct{}{}
	}
	hit := 0
	for _, r := range results {
		if _, ok := want[r.ID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// computeTruth fills d.Truth by exact parallel brute force under d.Metric.
func (d *Dataset) computeTruth() {
	d.Truth = make([][]int64, len(d.Queries))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (len(d.Queries) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(d.Queries) {
			hi = len(d.Queries)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for qi := lo; qi < hi; qi++ {
				top := linalg.NewTopK(d.K)
				for i, v := range d.Vectors {
					top.Push(int64(i), linalg.Distance(d.Metric, d.Queries[qi], v))
				}
				res := top.Results()
				ids := make([]int64, len(res))
				for i, r := range res {
					ids[i] = r.ID
				}
				d.Truth[qi] = ids
			}
		}(lo, hi)
	}
	wg.Wait()
}

// FromLive builds an evaluation dataset from a live system's state: a
// sample of its stored vectors and the query window it just served. The
// online tuning daemon uses it to score candidate configurations against
// the workload actually hitting the engine instead of a synthetic proxy.
// Exact ground truth is computed over the sample by brute force, so
// recall is measured relative to the sampled corpus. Vectors and queries
// are referenced, not copied; callers must not mutate them afterwards.
func FromLive(name string, metric linalg.Metric, vectors, queries [][]float32, k int) (*Dataset, error) {
	if len(vectors) == 0 || len(queries) == 0 {
		return nil, fmt.Errorf("workload: live dataset needs vectors and queries (have %d, %d)", len(vectors), len(queries))
	}
	dim := len(vectors[0])
	for _, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("workload: ragged live vectors")
		}
	}
	for _, q := range queries {
		if len(q) != dim {
			return nil, fmt.Errorf("workload: live query dim %d, vectors have %d", len(q), dim)
		}
	}
	if k <= 0 {
		k = 10
	}
	if k > len(vectors) {
		k = len(vectors)
	}
	d := &Dataset{
		Name:    name,
		Dim:     dim,
		Metric:  metric,
		Vectors: vectors,
		Queries: queries,
		K:       k,
	}
	d.Store()
	d.computeTruth()
	return d, nil
}

// Spec parameterizes a synthetic dataset generator.
type Spec struct {
	Name string
	// N is the corpus size, NQ the query count.
	N, NQ int
	Dim   int
	K     int
	// Clusters controls how clumpy the data is (0 = isotropic noise).
	Clusters int
	// ClusterStd is the within-cluster spread relative to the
	// between-cluster spread; small values make ANN easy, large values
	// (or Clusters==0) make the corpus nearly uniform and recall hard.
	ClusterStd float64
	// Correlated, when true, introduces strong correlation between
	// adjacent dimensions (embedding-like); when false dimensions are
	// independent, which makes vector search harder (paper §V-D on
	// Keyword-match needing larger nprobe).
	Correlated bool
	Seed       int64
}

// Generate builds the dataset (vectors, queries, exact ground truth).
// Angular data is normalized here and searched with L2 downstream.
func Generate(s Spec) (*Dataset, error) {
	if s.N <= 0 || s.NQ <= 0 || s.Dim <= 0 {
		return nil, fmt.Errorf("workload: invalid spec %+v", s)
	}
	if s.K <= 0 {
		s.K = 10
	}
	if s.K > s.N {
		s.K = s.N
	}
	rng := rand.New(rand.NewSource(s.Seed))

	var centers [][]float32
	if s.Clusters > 0 {
		centers = make([][]float32, s.Clusters)
		for c := range centers {
			centers[c] = make([]float32, s.Dim)
			for j := range centers[c] {
				centers[c][j] = float32(rng.NormFloat64())
			}
		}
	}
	std := s.ClusterStd
	if std == 0 {
		std = 0.3
	}
	gen := func() []float32 {
		v := make([]float32, s.Dim)
		if centers != nil {
			c := centers[rng.Intn(len(centers))]
			for j := range v {
				v[j] = c[j] + float32(rng.NormFloat64()*std)
			}
		} else {
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
		}
		if s.Correlated {
			// First-order smoothing correlates adjacent dimensions.
			for j := 1; j < s.Dim; j++ {
				v[j] = 0.7*v[j-1] + 0.3*v[j]
			}
		}
		linalg.Normalize(v)
		return v
	}

	d := &Dataset{
		Name:    s.Name,
		Dim:     s.Dim,
		Metric:  linalg.L2, // angular handled by normalization above
		Vectors: make([][]float32, s.N),
		Queries: make([][]float32, s.NQ),
		K:       s.K,
	}
	for i := range d.Vectors {
		d.Vectors[i] = gen()
	}
	for i := range d.Queries {
		d.Queries[i] = gen()
	}
	d.Store() // seal the arena before the dataset escapes
	d.computeTruth()
	return d, nil
}
