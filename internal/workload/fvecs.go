package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"vdtuner/internal/linalg"
)

// This file reads the TEXMEX vector formats (.fvecs / .ivecs) used by the
// public ANN corpora the paper evaluates (GloVe, deep-image, ... as
// packaged by vector-db-benchmark): each record is a little-endian int32
// dimension d followed by d float32 (or int32) payload values.

// ReadFvecs decodes float32 vectors from r. limit > 0 caps the number of
// vectors read; limit <= 0 reads everything.
func ReadFvecs(r io.Reader, limit int) ([][]float32, error) {
	br := bufio.NewReader(r)
	var out [][]float32
	for limit <= 0 || len(out) < limit {
		var d int32
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("workload: reading fvecs dimension: %w", err)
		}
		if d <= 0 || d > 1<<20 {
			return nil, fmt.Errorf("workload: implausible fvecs dimension %d", d)
		}
		if len(out) > 0 && int(d) != len(out[0]) {
			return nil, fmt.Errorf("workload: inconsistent fvecs dimensions %d vs %d", d, len(out[0]))
		}
		v := make([]float32, d)
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("workload: reading fvecs payload: %w", err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty fvecs stream")
	}
	return out, nil
}

// ReadIvecs decodes int32 vectors (conventionally ground-truth neighbor
// id lists) from r, with the same framing as ReadFvecs.
func ReadIvecs(r io.Reader, limit int) ([][]int32, error) {
	br := bufio.NewReader(r)
	var out [][]int32
	for limit <= 0 || len(out) < limit {
		var d int32
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("workload: reading ivecs dimension: %w", err)
		}
		if d <= 0 || d > 1<<20 {
			return nil, fmt.Errorf("workload: implausible ivecs dimension %d", d)
		}
		v := make([]int32, d)
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("workload: reading ivecs payload: %w", err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty ivecs stream")
	}
	return out, nil
}

// WriteFvecs encodes vectors to w in .fvecs framing.
func WriteFvecs(w io.Writer, vecs [][]float32) error {
	bw := bufio.NewWriter(w)
	for i, v := range vecs {
		if err := binary.Write(bw, binary.LittleEndian, int32(len(v))); err != nil {
			return fmt.Errorf("workload: writing fvecs record %d: %w", i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("workload: writing fvecs record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// FileSpec loads a dataset from TEXMEX files: base vectors, query
// vectors, and optionally exact ground truth; when GroundTruthPath is
// empty the truth is computed by brute force.
type FileSpec struct {
	Name      string
	BasePath  string
	QueryPath string
	// GroundTruthPath optionally points to an .ivecs file with exact
	// neighbor ids per query.
	GroundTruthPath string
	// Metric selects the distance; Angular inputs are normalized.
	Metric linalg.Metric
	// K is the ground-truth depth. Defaults to 10 (or the ground-truth
	// file's width when one is given).
	K int
	// MaxBase / MaxQueries cap how much of each file is loaded
	// (0 = everything).
	MaxBase, MaxQueries int
}

// LoadFile reads a dataset from disk in TEXMEX format.
func LoadFile(s FileSpec) (*Dataset, error) {
	bf, err := os.Open(s.BasePath)
	if err != nil {
		return nil, err
	}
	defer bf.Close()
	base, err := ReadFvecs(bf, s.MaxBase)
	if err != nil {
		return nil, fmt.Errorf("workload: base vectors: %w", err)
	}
	qf, err := os.Open(s.QueryPath)
	if err != nil {
		return nil, err
	}
	defer qf.Close()
	queries, err := ReadFvecs(qf, s.MaxQueries)
	if err != nil {
		return nil, fmt.Errorf("workload: query vectors: %w", err)
	}
	if len(queries[0]) != len(base[0]) {
		return nil, fmt.Errorf("workload: query dim %d != base dim %d", len(queries[0]), len(base[0]))
	}

	metric := s.Metric
	if metric == linalg.Angular {
		for _, v := range base {
			linalg.Normalize(v)
		}
		for _, v := range queries {
			linalg.Normalize(v)
		}
		metric = linalg.L2
	}
	d := &Dataset{
		Name: s.Name, Dim: len(base[0]), Metric: metric,
		Vectors: base, Queries: queries, K: s.K,
	}
	d.Store() // seal the arena before the dataset escapes
	if d.K <= 0 {
		d.K = 10
	}
	if d.K > len(base) {
		d.K = len(base)
	}

	if s.GroundTruthPath != "" {
		gf, err := os.Open(s.GroundTruthPath)
		if err != nil {
			return nil, err
		}
		defer gf.Close()
		gt, err := ReadIvecs(gf, s.MaxQueries)
		if err != nil {
			return nil, fmt.Errorf("workload: ground truth: %w", err)
		}
		if len(gt) < len(queries) {
			return nil, fmt.Errorf("workload: ground truth has %d rows for %d queries", len(gt), len(queries))
		}
		if s.K <= 0 || s.K > len(gt[0]) {
			d.K = len(gt[0])
		}
		d.Truth = make([][]int64, len(queries))
		for i := range queries {
			row := gt[i]
			if len(row) < d.K {
				return nil, fmt.Errorf("workload: ground truth row %d has %d ids, want >= %d", i, len(row), d.K)
			}
			ids := make([]int64, d.K)
			for j := 0; j < d.K; j++ {
				ids[j] = int64(row[j])
			}
			d.Truth[i] = ids
		}
		return d, nil
	}
	d.computeTruth()
	return d, nil
}
