package shap

import (
	"math"
	"math/rand"
	"testing"
)

func TestValuesAdditiveExact(t *testing.T) {
	// For additive f, the Shapley value of dim i is a_i*(x_i - bg_i)
	// for every permutation, so sampling is exact.
	a := []float64{2, -3, 0.5}
	f := func(x []float64) float64 {
		return a[0]*x[0] + a[1]*x[1] + a[2]*x[2]
	}
	x := []float64{1, 1, 1}
	bg := []float64{0, 0.5, -1}
	rng := rand.New(rand.NewSource(1))
	got, err := Values(f, x, bg, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		want := a[i] * (x[i] - bg[i])
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("attr[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestValuesSumToDelta(t *testing.T) {
	// Efficiency axiom: attributions sum to f(x) - f(bg), exactly per
	// permutation by telescoping.
	f := func(x []float64) float64 {
		return x[0]*x[1] + math.Sin(x[2]) + x[0]*x[0]
	}
	x := []float64{0.7, 0.3, 1.2}
	bg := []float64{0, 0, 0}
	rng := rand.New(rand.NewSource(2))
	got, err := Values(f, x, bg, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	want := f(x) - f(bg)
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("attribution sum %v != delta %v", sum, want)
	}
}

func TestValuesInteractionSplit(t *testing.T) {
	// f = x0*x1 with x=(1,1), bg=(0,0): symmetric dims share the credit.
	f := func(x []float64) float64 { return x[0] * x[1] }
	rng := rand.New(rand.NewSource(3))
	got, err := Values(f, []float64{1, 1}, []float64{0, 0}, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.5) > 0.05 || math.Abs(got[1]-0.5) > 0.05 {
		t.Fatalf("interaction credit not split: %v", got)
	}
}

func TestValuesErrors(t *testing.T) {
	f := func(x []float64) float64 { return 0 }
	rng := rand.New(rand.NewSource(4))
	if _, err := Values(f, []float64{1}, []float64{1, 2}, 10, rng); err == nil {
		t.Fatal("accepted mismatched dims")
	}
	if _, err := Values(f, nil, nil, 10, rng); err == nil {
		t.Fatal("accepted empty point")
	}
}

func TestGroupValues(t *testing.T) {
	// Two groups: {0,1} and {2}. Additive f → group attribution is the
	// sum of member attributions.
	f := func(x []float64) float64 { return x[0] + 2*x[1] + 4*x[2] }
	x := []float64{1, 1, 1}
	bg := []float64{0, 0, 0}
	rng := rand.New(rand.NewSource(5))
	got, err := GroupValues(f, x, bg, map[string][]int{"ab": {0, 1}, "c": {2}}, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got["ab"]-3) > 1e-9 || math.Abs(got["c"]-4) > 1e-9 {
		t.Fatalf("group attributions = %v", got)
	}
}

func TestGroupValuesErrors(t *testing.T) {
	f := func(x []float64) float64 { return 0 }
	rng := rand.New(rand.NewSource(6))
	if _, err := GroupValues(f, []float64{1}, []float64{1}, nil, 10, rng); err == nil {
		t.Fatal("accepted empty groups")
	}
	if _, err := GroupValues(f, []float64{1}, []float64{1}, map[string][]int{"g": {5}}, 10, rng); err == nil {
		t.Fatal("accepted out-of-range group dim")
	}
}

func TestGroupValuesDeterministicPerSeed(t *testing.T) {
	f := func(x []float64) float64 { return x[0]*x[1] + x[2] }
	x := []float64{1, 2, 3}
	bg := []float64{0, 0, 0}
	groups := map[string][]int{"a": {0}, "b": {1}, "c": {2}}
	a, _ := GroupValues(f, x, bg, groups, 25, rand.New(rand.NewSource(7)))
	b, _ := GroupValues(f, x, bg, groups, 25, rand.New(rand.NewSource(7)))
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("non-deterministic group attribution for %s", k)
		}
	}
}
