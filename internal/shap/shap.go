// Package shap computes approximate Shapley values of input dimensions
// for a black-box prediction function, via permutation sampling (Lundberg
// & Lee's sampling approximation of the SHAP values the paper uses for
// Figure 13(b)). The attribution of dimension j is its average marginal
// contribution when added in a random order, measured between a point of
// interest x and a background point.
package shap

import (
	"fmt"
	"math/rand"
)

// Values returns one attribution per dimension: the permutation-sampled
// Shapley value of moving that dimension from background to x under f.
// The sum of attributions equals f(x) − f(background) up to sampling
// noise; for additive f the values are exact in expectation.
func Values(f func([]float64) float64, x, background []float64, permutations int, rng *rand.Rand) ([]float64, error) {
	if len(x) != len(background) {
		return nil, fmt.Errorf("shap: point dim %d != background dim %d", len(x), len(background))
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("shap: empty point")
	}
	if permutations < 1 {
		permutations = 50
	}
	d := len(x)
	attr := make([]float64, d)
	cur := make([]float64, d)
	for p := 0; p < permutations; p++ {
		perm := rng.Perm(d)
		copy(cur, background)
		prev := f(cur)
		for _, j := range perm {
			cur[j] = x[j]
			next := f(cur)
			attr[j] += next - prev
			prev = next
		}
	}
	for j := range attr {
		attr[j] /= float64(permutations)
	}
	return attr, nil
}

// GroupValues attributes over groups of dimensions: each group is toggled
// between background and x atomically. groups maps a group name to its
// dimension indexes. It returns per-group attributions.
func GroupValues(f func([]float64) float64, x, background []float64, groups map[string][]int, permutations int, rng *rand.Rand) (map[string]float64, error) {
	if len(x) != len(background) {
		return nil, fmt.Errorf("shap: point dim %d != background dim %d", len(x), len(background))
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("shap: no groups")
	}
	if permutations < 1 {
		permutations = 50
	}
	names := make([]string, 0, len(groups))
	for name, dims := range groups {
		for _, j := range dims {
			if j < 0 || j >= len(x) {
				return nil, fmt.Errorf("shap: group %q has out-of-range dim %d", name, j)
			}
		}
		names = append(names, name)
	}
	// Deterministic order for reproducibility regardless of map order.
	sortStrings(names)

	attr := make(map[string]float64, len(names))
	cur := make([]float64, len(x))
	for p := 0; p < permutations; p++ {
		perm := rng.Perm(len(names))
		copy(cur, background)
		prev := f(cur)
		for _, gi := range perm {
			name := names[gi]
			for _, j := range groups[name] {
				cur[j] = x[j]
			}
			next := f(cur)
			attr[name] += next - prev
			prev = next
		}
	}
	for name := range attr {
		attr[name] /= float64(permutations)
	}
	return attr, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
