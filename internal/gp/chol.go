package gp

import (
	"errors"
	"math"
)

// errNotPD reports a matrix that is not positive definite even after
// jitter; callers escalate the jitter and retry.
var errNotPD = errors.New("gp: matrix not positive definite")

// cholesky computes the lower-triangular factor L of a = L Lᵀ in place
// into a fresh matrix. a must be symmetric positive definite.
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	buf := make([]float64, n*n)
	for i := range l {
		l[i], buf = buf[:n], buf[n:]
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, errNotPD
				}
				l[i][j] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// solveLower solves L x = b for lower-triangular L.
func solveLower(l [][]float64, b []float64) []float64 {
	n := len(b)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l[i]
		for k := 0; k < i; k++ {
			sum -= row[k] * x[k]
		}
		x[i] = sum / row[i]
	}
	return x
}

// solveUpperT solves Lᵀ x = b given lower-triangular L.
func solveUpperT(l [][]float64, b []float64) []float64 {
	n := len(b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}
