package gp

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitInterpolatesTrainingPoints(t *testing.T) {
	// With low noise selected, GP posterior mean at training points must
	// be close to the targets.
	x := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	y := []float64{0, 0.7, 1.0, 0.7, 0}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		mu, _ := m.Predict(x[i])
		if math.Abs(mu-y[i]) > 0.15 {
			t.Fatalf("Predict(%v) = %v, want ~%v", x[i], mu, y[i])
		}
	}
}

func TestVarianceShrinksNearData(t *testing.T) {
	x := [][]float64{{0.2}, {0.4}, {0.6}}
	y := []float64{1, 2, 3}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	_, varAt := m.Predict([]float64{0.4})
	_, varFar := m.Predict([]float64{5.0})
	if varAt >= varFar {
		t.Fatalf("variance at data %v not smaller than far away %v", varAt, varFar)
	}
}

func TestVarianceNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([][]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = math.Sin(3*x[i][0]) + x[i][1]
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		_, v := m.Predict([]float64{rng.Float64() * 2, rng.Float64() * 2})
		if v < 0 {
			t.Fatalf("negative variance %v", v)
		}
	}
}

func TestPredictGeneralizesSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(x []float64) float64 { return math.Sin(4*x[0]) + 0.5*math.Cos(2*x[1]) }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, p)
		ys = append(ys, f(p))
	}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	const trials = 100
	for i := 0; i < trials; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		mu, _ := m.Predict(p)
		d := mu - f(p)
		mse += d * d
	}
	mse /= trials
	if mse > 0.05 {
		t.Fatalf("test MSE %v too high for a smooth function", mse)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Fatal("accepted empty data")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("accepted ragged inputs")
	}
}

func TestFitConstantTargets(t *testing.T) {
	x := [][]float64{{0}, {0.5}, {1}}
	y := []float64{2, 2, 2}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := m.Predict([]float64{0.3})
	if math.Abs(mu-2) > 0.2 {
		t.Fatalf("constant-target prediction %v, want ~2", mu)
	}
}

func TestFitDuplicateInputs(t *testing.T) {
	// Duplicates with different targets require the noise term; must not
	// error out.
	x := [][]float64{{0.5}, {0.5}, {0.9}}
	y := []float64{1, 1.4, 0}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := m.Predict([]float64{0.5})
	if mu < 0.8 || mu > 1.6 {
		t.Fatalf("duplicate-input prediction %v, want near the duplicate mean", mu)
	}
}

func TestCholeskyKnownFactor(t *testing.T) {
	a := [][]float64{{4, 2}, {2, 3}}
	l, err := cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 0}, {1, math.Sqrt(2)}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(l[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("L[%d][%d] = %v, want %v", i, j, l[i][j], want[i][j])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 1}} // eigenvalues 3, -1
	if _, err := cholesky(a); err == nil {
		t.Fatal("accepted indefinite matrix")
	}
}

func TestSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 12
	// Build SPD matrix A = B Bᵀ + I.
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		for j := range b[i] {
			b[i][j] = rng.NormFloat64()
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			for k := 0; k < n; k++ {
				a[i][j] += b[i][k] * b[j][k]
			}
		}
		a[i][i]++
	}
	l, err := cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x := solveUpperT(l, solveLower(l, rhs))
	// Check A x == rhs.
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a[i][j] * x[j]
		}
		if math.Abs(s-rhs[i]) > 1e-8 {
			t.Fatalf("A x != rhs at %d: %v vs %v", i, s, rhs[i])
		}
	}
}

func TestMatern52Properties(t *testing.T) {
	if k := matern52(0, 1); math.Abs(k-1) > 1e-12 {
		t.Fatalf("k(0) = %v, want 1", k)
	}
	// Monotone decreasing in distance.
	prev := 2.0
	for r2 := 0.0; r2 < 10; r2 += 0.5 {
		k := matern52(r2, 1)
		if k > prev {
			t.Fatalf("kernel not decreasing at r2=%v", r2)
		}
		if k < 0 {
			t.Fatalf("kernel negative at r2=%v", r2)
		}
		prev = k
	}
}

func TestHyperparameterSelectionPrefersGoodFit(t *testing.T) {
	// Smooth data should select a lengthscale that is not the minimum.
	x := make([][]float64, 25)
	y := make([]float64, 25)
	for i := range x {
		v := float64(i) / 24
		x[i] = []float64{v}
		y[i] = v * v
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lengthscale() <= 0.1 {
		t.Fatalf("selected minimal lengthscale %v for smooth data", m.Lengthscale())
	}
	if m.Noise() > 1e-2 {
		t.Fatalf("selected high noise %v for noiseless data", m.Noise())
	}
}

func BenchmarkFit100x16(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(4))
	x := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = make([]float64, 16)
		for j := range x[i] {
			x[i][j] = rng.Float64()
		}
		y[i] = x[i][0] + math.Sin(3*x[i][1])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(5))
	x := make([][]float64, 150)
	y := make([]float64, 150)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = x[i][0] * x[i][1]
	}
	m, err := Fit(x, y)
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{0.3, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(q)
	}
}

func TestFitHighDimensional(t *testing.T) {
	// 16-dimensional inputs (the tuner's space) must fit and predict
	// finite values with sane variance.
	rng := rand.New(rand.NewSource(6))
	n, dim := 80, 16
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, dim)
		for j := range x[i] {
			x[i][j] = rng.Float64()
		}
		y[i] = x[i][0]*2 + math.Sin(3*x[i][5]) + 0.1*rng.NormFloat64()
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	probe := make([]float64, dim)
	for j := range probe {
		probe[j] = rng.Float64()
	}
	mu, v := m.Predict(probe)
	if math.IsNaN(mu) || math.IsInf(mu, 0) || math.IsNaN(v) || v < 0 {
		t.Fatalf("prediction (%v, %v) not finite/sane", mu, v)
	}
}

func TestPredictRevertsToPriorFarAway(t *testing.T) {
	// Far from data, the posterior mean reverts toward the target mean
	// and the variance toward the prior.
	x := [][]float64{{0.4}, {0.5}, {0.6}}
	y := []float64{10, 12, 14}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	mu, v := m.Predict([]float64{100})
	if math.Abs(mu-12) > 0.5 {
		t.Fatalf("far prediction %v did not revert to mean 12", mu)
	}
	_, vNear := m.Predict([]float64{0.5})
	if v <= vNear {
		t.Fatalf("far variance %v not above near variance %v", v, vNear)
	}
}

func TestFitSinglePoint(t *testing.T) {
	m, err := Fit([][]float64{{0.5}}, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := m.Predict([]float64{0.5})
	if math.Abs(mu-3) > 0.5 {
		t.Fatalf("single-point prediction %v, want ~3", mu)
	}
}
