// Package gp implements Gaussian process regression with a Matérn 5/2
// kernel — the surrogate model of the paper (§IV-B). Hyperparameters
// (lengthscale, noise) are selected by maximizing the log marginal
// likelihood over a small grid, which is robust and dependency-free.
//
// Targets are standardized internally; predictions are returned on the
// original scale. Multi-output modeling (search speed and recall rate) is
// done by fitting one independent Model per objective, exactly as the
// paper assumes ("adopts a multi-output GP by assuming each output to be
// independent").
package gp

import (
	"fmt"
	"math"
)

// Model is a fitted Gaussian process regressor.
type Model struct {
	dim         int
	lengthscale float64
	noise       float64
	x           [][]float64
	l           [][]float64 // Cholesky factor of K + noise*I
	alpha       []float64   // (K + noise I)^-1 y~
	yMean, yStd float64
	lml         float64
}

// matern52 evaluates the Matérn 5/2 kernel at distance r with unit signal
// variance: (1 + √5 r + 5r²/3)·exp(−√5 r), r scaled by the lengthscale.
func matern52(r2, lengthscale float64) float64 {
	const sqrt5 = 2.23606797749978969
	r := math.Sqrt(r2) / lengthscale
	s := sqrt5 * r
	return (1 + s + 5*r*r/3) * math.Exp(-s)
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Fit trains a GP on inputs x (each of equal dimension, conventionally in
// [0,1]^d) and targets y, selecting hyperparameters by grid-searched log
// marginal likelihood.
func Fit(x [][]float64, y []float64) (*Model, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("gp: no training data")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("gp: %d inputs but %d targets", len(x), len(y))
	}
	dim := len(x[0])
	for i, xi := range x {
		if len(xi) != dim {
			return nil, fmt.Errorf("gp: input %d has dim %d, want %d", i, len(xi), dim)
		}
	}

	// Standardize targets.
	mean, std := meanStd(y)
	ys := make([]float64, len(y))
	for i, v := range y {
		ys[i] = (v - mean) / std
	}

	// Precompute the squared-distance matrix once.
	n := len(x)
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
		for j := 0; j < i; j++ {
			d := sqDist(x[i], x[j])
			d2[i][j] = d
			d2[j][i] = d
		}
	}

	best := (*Model)(nil)
	for _, ls := range []float64{0.1, 0.2, 0.35, 0.5, 0.8, 1.25, 2.0} {
		// Scale lengthscale with dimension so the grid covers [0,1]^d
		// geometries uniformly across dims.
		lsEff := ls * math.Sqrt(float64(dim))
		for _, noise := range []float64{1e-4, 1e-3, 1e-2, 5e-2} {
			m, err := fitOne(x, ys, d2, lsEff, noise)
			if err != nil {
				continue
			}
			if best == nil || m.lml > best.lml {
				best = m
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gp: no hyperparameter setting produced a positive-definite kernel")
	}
	best.yMean, best.yStd = mean, std
	return best, nil
}

func fitOne(x [][]float64, ys []float64, d2 [][]float64, lengthscale, noise float64) (*Model, error) {
	n := len(x)
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = matern52(d2[i][j], lengthscale)
		}
		k[i][i] += noise
	}
	var l [][]float64
	var err error
	jitter := 0.0
	for attempt := 0; attempt < 4; attempt++ {
		l, err = cholesky(k)
		if err == nil {
			break
		}
		// Escalate jitter: 1e-8, 1e-6, 1e-4 added to the diagonal.
		add := math.Pow(10, float64(-8+2*attempt))
		for i := range k {
			k[i][i] += add - jitter
		}
		jitter = add
	}
	if err != nil {
		return nil, err
	}
	alpha := solveUpperT(l, solveLower(l, ys))

	// Log marginal likelihood: -0.5 yᵀα − Σ log L_ii − n/2 log 2π.
	lml := 0.0
	for i := range ys {
		lml -= 0.5 * ys[i] * alpha[i]
		lml -= math.Log(l[i][i])
	}
	lml -= 0.5 * float64(n) * math.Log(2*math.Pi)

	return &Model{
		dim: len(x[0]), lengthscale: lengthscale, noise: noise,
		x: x, l: l, alpha: alpha, yStd: 1, lml: lml,
	}, nil
}

// Predict returns the posterior mean and variance at x on the original
// target scale. Variance is non-negative.
func (m *Model) Predict(x []float64) (mean, variance float64) {
	n := len(m.x)
	ks := make([]float64, n)
	for i, xi := range m.x {
		ks[i] = matern52(sqDist(x, xi), m.lengthscale)
	}
	mu := 0.0
	for i := range ks {
		mu += ks[i] * m.alpha[i]
	}
	v := solveLower(m.l, ks)
	varStd := 1.0 + m.noise
	for i := range v {
		varStd -= v[i] * v[i]
	}
	if varStd < 1e-12 {
		varStd = 1e-12
	}
	return mu*m.yStd + m.yMean, varStd * m.yStd * m.yStd
}

// LogMarginalLikelihood reports the model's training fit criterion.
func (m *Model) LogMarginalLikelihood() float64 { return m.lml }

// Lengthscale reports the selected kernel lengthscale.
func (m *Model) Lengthscale() float64 { return m.lengthscale }

// Noise reports the selected observation noise variance.
func (m *Model) Noise() float64 { return m.noise }

func meanStd(y []float64) (mean, std float64) {
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for _, v := range y {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(y)))
	if std < 1e-9 {
		std = 1 // constant targets: keep scale, predictions revert to mean
	}
	return mean, std
}
