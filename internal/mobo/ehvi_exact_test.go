package mobo

import (
	"math"
	"math/rand"
	"testing"
)

func TestEHVIExactSinglePointHandCalc(t *testing.T) {
	// Deterministic candidate (0.9, 0.9) over front {(0.5, 0.5)} with
	// ref (0,0): union area 0.81, front area 0.25, improvement 0.56.
	ref := Point{0, 0}
	front := []Point{{A: 0.5, B: 0.5}}
	got := EHVIExact(0.9, 0, 0.9, 0, ref, front)
	if math.Abs(got-0.56) > 1e-12 {
		t.Fatalf("EHVIExact = %v, want 0.56", got)
	}
}

func TestEHVIExactEmptyFront(t *testing.T) {
	ref := Point{0, 0}
	got := EHVIExact(1, 0, 2, 0, ref, nil)
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("EHVIExact over empty front = %v, want 2", got)
	}
}

func TestEHVIExactDominatedCandidateZero(t *testing.T) {
	ref := Point{0, 0}
	front := []Point{{A: 1, B: 1}}
	if got := EHVIExact(0.5, 0, 0.5, 0, ref, front); got != 0 {
		t.Fatalf("dominated deterministic candidate EHVI = %v, want 0", got)
	}
	if got := EHVIExact(-1, 0, -1, 0, ref, front); got != 0 {
		t.Fatalf("sub-reference candidate EHVI = %v, want 0", got)
	}
}

func TestEHVIExactMatchesDeterministicHVImprovement(t *testing.T) {
	// With σ→0, EHVIExact must equal the plain HV improvement for
	// random fronts and candidates.
	rng := rand.New(rand.NewSource(1))
	ref := Point{0, 0}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8) + 1
		front := make([]Point, n)
		for i := range front {
			front[i] = Point{rng.Float64(), rng.Float64()}
		}
		y := Point{rng.Float64() * 1.2, rng.Float64() * 1.2}
		want := HVImprovement(y, ref, front)
		got := EHVIExact(y.A, 0, y.B, 0, ref, front)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: exact %v vs deterministic %v (front %v, y %v)",
				trial, got, want, front, y)
		}
	}
}

func TestEHVIExactMatchesMonteCarlo(t *testing.T) {
	// The MC estimator must converge to the closed form.
	rng := rand.New(rand.NewSource(2))
	ref := Point{0, 0}
	for trial := 0; trial < 12; trial++ {
		n := rng.Intn(5) + 1
		front := make([]Point, n)
		for i := range front {
			front[i] = Point{rng.Float64(), rng.Float64()}
		}
		meanA := rng.Float64() * 1.5
		meanB := rng.Float64() * 1.5
		stdA := 0.05 + rng.Float64()*0.3
		stdB := 0.05 + rng.Float64()*0.3
		exact := EHVIExact(meanA, stdA, meanB, stdB, ref, front)
		hv := Hypervolume(ref, Front(front))
		mc := EHVI(meanA, stdA, meanB, stdB, ref, Front(front), hv, 40000, rng)
		tol := 0.05 * (exact + 0.01)
		if math.Abs(mc-exact) > tol {
			t.Fatalf("trial %d: MC %v vs exact %v (tol %v)", trial, mc, exact, tol)
		}
	}
}

func TestEHVIExactMonotoneInMean(t *testing.T) {
	ref := Point{0, 0}
	front := []Point{{A: 0.8, B: 0.2}, {A: 0.2, B: 0.8}}
	prev := -1.0
	for mean := 0.0; mean <= 1.5; mean += 0.1 {
		v := EHVIExact(mean, 0.1, 0.5, 0.1, ref, front)
		if v < prev-1e-12 {
			t.Fatalf("EHVI decreased in meanA at %v: %v -> %v", mean, prev, v)
		}
		prev = v
	}
}

func TestEHVIExactIgnoresDominatedFrontPoints(t *testing.T) {
	ref := Point{0, 0}
	front := []Point{{A: 0.8, B: 0.8}}
	withDominated := append([]Point{}, front...)
	withDominated = append(withDominated, Point{A: 0.3, B: 0.3}, Point{A: -1, B: 0.5})
	a := EHVIExact(0.9, 0.1, 0.9, 0.1, ref, front)
	b := EHVIExact(0.9, 0.1, 0.9, 0.1, ref, withDominated)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("dominated front points changed EHVI: %v vs %v", a, b)
	}
}

func TestPartialExpectation(t *testing.T) {
	// Deterministic cases.
	if got := partialExpectation(3, 0, 1); got != 2 {
		t.Fatalf("deterministic partial expectation = %v", got)
	}
	if got := partialExpectation(0, 0, 1); got != 0 {
		t.Fatalf("deterministic zero case = %v", got)
	}
	// Symmetric case: E[max(0, Y)] for Y ~ N(0,1) = 1/sqrt(2π).
	want := 1 / math.Sqrt(2*math.Pi)
	if got := partialExpectation(0, 1, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("E[Y+] = %v, want %v", got, want)
	}
}

func BenchmarkEHVIExact(b *testing.B) {
	b.ReportAllocs()
	ref := Point{0, 0}
	front := []Point{{A: 0.9, B: 0.1}, {A: 0.7, B: 0.4}, {A: 0.4, B: 0.7}, {A: 0.1, B: 0.9}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EHVIExact(0.8, 0.1, 0.8, 0.1, ref, front)
	}
}
