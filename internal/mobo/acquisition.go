package mobo

import (
	"math"
	"math/rand"
)

// NormalCDF is the standard normal cumulative distribution function.
func NormalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// NormalPDF is the standard normal density.
func NormalPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// EI is the analytic expected improvement of a Gaussian posterior
// N(mean, std²) over the incumbent best (maximization).
func EI(mean, std, best float64) float64 {
	if std <= 0 {
		if mean > best {
			return mean - best
		}
		return 0
	}
	z := (mean - best) / std
	return (mean-best)*NormalCDF(z) + std*NormalPDF(z)
}

// ConstrainedEI is the paper's Eq. 7: EI on the speed objective times the
// probability that the recall posterior N(recMean, recStd²) exceeds the
// user's floor.
func ConstrainedEI(spdMean, spdStd, bestSpd, recMean, recStd, recFloor float64) float64 {
	var pr float64
	if recStd <= 0 {
		if recMean > recFloor {
			pr = 1
		}
	} else {
		pr = 1 - NormalCDF((recFloor-recMean)/recStd)
	}
	return EI(spdMean, spdStd, bestSpd) * pr
}

// EHVI estimates the expected hypervolume improvement (Eq. 4) of a
// candidate whose two objectives have independent Gaussian posteriors, by
// Monte Carlo integration over the posterior as in the paper (which
// follows qEHVI's MC estimator). front must already be measured against
// ref; hvFront is Hypervolume(ref, front), passed in so batched candidate
// scoring does not recompute it.
func EHVI(meanA, stdA, meanB, stdB float64, ref Point, front []Point, hvFront float64, samples int, rng *rand.Rand) float64 {
	if samples < 1 {
		samples = 32
	}
	sum := 0.0
	buf := make([]Point, 0, len(front)+1)
	for s := 0; s < samples; s++ {
		y := Point{
			A: meanA + stdA*rng.NormFloat64(),
			B: meanB + stdB*rng.NormFloat64(),
		}
		buf = append(buf[:0], front...)
		buf = append(buf, y)
		hv := Hypervolume(ref, buf)
		if hv > hvFront {
			sum += hv - hvFront
		}
	}
	return sum / float64(samples)
}

// LHS returns n Latin-hypercube samples in [0,1]^dim: each dimension is
// split into n strata and every stratum is hit exactly once.
func LHS(n, dim int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
	}
	for d := 0; d < dim; d++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			out[i][d] = (float64(perm[i]) + rng.Float64()) / float64(n)
		}
	}
	return out
}
