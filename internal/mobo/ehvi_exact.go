package mobo

import "sort"

// partialExpectation is E[max(0, Y − c)] for Y ~ N(mean, std²) — the
// expected-improvement integral.
func partialExpectation(mean, std, c float64) float64 {
	if std <= 0 {
		if mean > c {
			return mean - c
		}
		return 0
	}
	z := (mean - c) / std
	return (mean-c)*NormalCDF(z) + std*NormalPDF(z)
}

// EHVIExact computes the exact expected hypervolume improvement of a
// candidate with independent Gaussian posteriors N(meanA, stdA²) and
// N(meanB, stdB²) over the front (both objectives maximized, bounded
// below by ref).
//
// It uses the strip decomposition of the 2-D improvement region: sort the
// front by descending A; between consecutive A values the front's B-level
// is constant, so the improvement factorizes per strip and
//
//	EHVI = Σ_strips (Ψa(L) − Ψa(U)) · Ψb(B_strip)
//
// with Ψ(c) = E[max(0, Y − c)]. Points of the front not strictly above
// ref are ignored, matching Hypervolume.
func EHVIExact(meanA, stdA, meanB, stdB float64, ref Point, front []Point) float64 {
	// Keep points strictly dominating ref and reduce to the Pareto front.
	var kept []Point
	for _, p := range front {
		if p.A > ref.A && p.B > ref.B {
			kept = append(kept, p)
		}
	}
	kept = Front(kept)
	sort.Slice(kept, func(i, j int) bool { return kept[i].A > kept[j].A })

	psiA := func(c float64) float64 { return partialExpectation(meanA, stdA, c) }
	psiB := func(c float64) float64 { return partialExpectation(meanB, stdB, c) }

	if len(kept) == 0 {
		return psiA(ref.A) * psiB(ref.B)
	}
	m := len(kept)
	total := 0.0
	// Strip 0: A in [a_1, ∞), B-level ref.B.
	total += psiA(kept[0].A) * psiB(ref.B)
	// Strips 1..m-1: A in [a_{i+1}, a_i], B-level b_i.
	for i := 0; i < m-1; i++ {
		total += (psiA(kept[i+1].A) - psiA(kept[i].A)) * psiB(kept[i].B)
	}
	// Strip m: A in [ref.A, a_m], B-level b_m.
	total += (psiA(ref.A) - psiA(kept[m-1].A)) * psiB(kept[m-1].B)
	if total < 0 {
		// Numerical noise from cancellation; EHVI is non-negative.
		total = 0
	}
	return total
}

// HVImprovement returns the deterministic hypervolume improvement of
// adding y to the front (the σ→0 limit of EHVI), useful for tests and
// greedy selection.
func HVImprovement(y Point, ref Point, front []Point) float64 {
	base := Hypervolume(ref, front)
	with := Hypervolume(ref, append(append([]Point(nil), front...), y))
	if with < base {
		return 0
	}
	return with - base
}
