package mobo

import (
	"math"
	"math/rand"
	"testing"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		p, q Point
		want bool
	}{
		{Point{2, 2}, Point{1, 1}, true},
		{Point{2, 1}, Point{1, 1}, true},
		{Point{1, 1}, Point{1, 1}, false},
		{Point{2, 0}, Point{1, 1}, false},
		{Point{0, 2}, Point{1, 1}, false},
	}
	for _, c := range cases {
		if got := c.p.Dominates(c.q); got != c.want {
			t.Fatalf("%v dominates %v = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestNonDominated(t *testing.T) {
	ps := []Point{{1, 5}, {3, 3}, {5, 1}, {2, 2}, {0, 0}}
	got := NonDominated(ps)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("NonDominated = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NonDominated = %v, want %v", got, want)
		}
	}
}

func TestNonDominatedDuplicates(t *testing.T) {
	ps := []Point{{1, 1}, {1, 1}, {2, 2}}
	got := NonDominated(ps)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("NonDominated with dups = %v, want [2]", got)
	}
	all := []Point{{1, 1}, {1, 1}}
	got = NonDominated(all)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("NonDominated of identical pair = %v, want [0]", got)
	}
}

func TestFrontIrredundant(t *testing.T) {
	// Property: no point on the returned front dominates another.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(30) + 1
		ps := make([]Point, n)
		for i := range ps {
			ps[i] = Point{rng.Float64(), rng.Float64()}
		}
		front := Front(ps)
		for i := range front {
			for j := range front {
				if i != j && front[i].Dominates(front[j]) {
					t.Fatalf("front point %v dominates front point %v", front[i], front[j])
				}
			}
		}
	}
}

func TestHypervolumeKnownValues(t *testing.T) {
	ref := Point{0, 0}
	if hv := Hypervolume(ref, []Point{{1, 1}}); hv != 1 {
		t.Fatalf("single point HV = %v, want 1", hv)
	}
	// Two points: (2,1), (1,2) → 2*1 + 1*(2-1) = 3.
	if hv := Hypervolume(ref, []Point{{2, 1}, {1, 2}}); hv != 3 {
		t.Fatalf("two-point HV = %v, want 3", hv)
	}
	// Dominated point adds nothing.
	if hv := Hypervolume(ref, []Point{{2, 1}, {1, 2}, {0.5, 0.5}}); hv != 3 {
		t.Fatalf("dominated point changed HV: %v", hv)
	}
	// Points below the reference add nothing.
	if hv := Hypervolume(Point{1, 1}, []Point{{0.5, 2}, {2, 0.5}}); hv != 0 {
		t.Fatalf("sub-reference points gave HV %v", hv)
	}
}

func TestHypervolumeMonotoneUnderInsertion(t *testing.T) {
	// Property: adding a point never decreases hypervolume.
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		n := rng.Intn(20) + 1
		ps := make([]Point, n)
		for i := range ps {
			ps[i] = Point{rng.Float64() * 5, rng.Float64() * 5}
		}
		ref := Point{0, 0}
		before := Hypervolume(ref, ps)
		ps = append(ps, Point{rng.Float64() * 5, rng.Float64() * 5})
		after := Hypervolume(ref, ps)
		return after >= before-1e-12
	}
	for i := 0; i < 300; i++ {
		if !f() {
			t.Fatal("hypervolume decreased when adding a point")
		}
	}
}

func TestHypervolumeMatchesGridEstimate(t *testing.T) {
	// Cross-check the sweep against a brute-force grid integration.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(8) + 1
		ps := make([]Point, n)
		for i := range ps {
			ps[i] = Point{rng.Float64(), rng.Float64()}
		}
		ref := Point{0, 0}
		want := 0.0
		const g = 200
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				x := (float64(i) + 0.5) / g
				y := (float64(j) + 0.5) / g
				for _, p := range ps {
					if p.A >= x && p.B >= y {
						want += 1.0 / (g * g)
						break
					}
				}
			}
		}
		got := Hypervolume(ref, ps)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("trial %d: HV sweep %v vs grid %v (points %v)", trial, got, want, ps)
		}
	}
}

func TestEIProperties(t *testing.T) {
	// Higher mean → higher EI.
	if EI(2, 1, 1) <= EI(0, 1, 1) {
		t.Fatal("EI not increasing in mean")
	}
	// At best with zero std → zero.
	if EI(1, 0, 1) != 0 {
		t.Fatal("EI(best, 0) != 0")
	}
	// Deterministic improvement.
	if EI(3, 0, 1) != 2 {
		t.Fatalf("EI(3,0,1) = %v, want 2", EI(3, 0, 1))
	}
	// Always non-negative over a sane numeric range.
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		mean := rng.NormFloat64() * 10
		std := math.Abs(rng.NormFloat64()) * 5
		best := rng.NormFloat64() * 10
		if v := EI(mean, std, best); v < 0 {
			t.Fatalf("EI(%v, %v, %v) = %v < 0", mean, std, best, v)
		}
	}
}

func TestConstrainedEI(t *testing.T) {
	// Certain constraint satisfaction equals plain EI.
	plain := EI(2, 0.5, 1)
	cei := ConstrainedEI(2, 0.5, 1, 10, 0.01, 0.9)
	if math.Abs(cei-plain) > 1e-6 {
		t.Fatalf("CEI with certain feasibility = %v, want %v", cei, plain)
	}
	// Certain violation zeroes it.
	cei = ConstrainedEI(2, 0.5, 1, 0.1, 0.0, 0.9)
	if cei != 0 {
		t.Fatalf("CEI with certain violation = %v, want 0", cei)
	}
	// Tighter floors lower the score.
	loose := ConstrainedEI(2, 0.5, 1, 0.9, 0.05, 0.85)
	tight := ConstrainedEI(2, 0.5, 1, 0.9, 0.05, 0.95)
	if tight >= loose {
		t.Fatalf("CEI not decreasing in floor: %v vs %v", loose, tight)
	}
}

func TestEHVIPrefersDominatingCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := Point{0, 0}
	front := []Point{{0.5, 0.5}}
	hv := Hypervolume(ref, front)
	good := EHVI(0.9, 0.01, 0.9, 0.01, ref, front, hv, 128, rng)
	bad := EHVI(0.1, 0.01, 0.1, 0.01, ref, front, hv, 128, rng)
	if good <= bad {
		t.Fatalf("EHVI good %v not above bad %v", good, bad)
	}
	if bad > 1e-6 {
		t.Fatalf("EHVI of dominated candidate = %v, want ~0", bad)
	}
}

func TestEHVINonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := Point{0, 0}
	front := []Point{{1, 0.2}, {0.2, 1}}
	hv := Hypervolume(ref, front)
	for trial := 0; trial < 100; trial++ {
		v := EHVI(rng.Float64()*2-0.5, rng.Float64(), rng.Float64()*2-0.5, rng.Float64(), ref, front, hv, 16, rng)
		if v < 0 {
			t.Fatalf("EHVI negative: %v", v)
		}
	}
}

func TestEHVIFigure4Semantics(t *testing.T) {
	// Paper Figure 4: x2, which extends the front, beats x1, which sits
	// in an already-dominated region boundary.
	rng := rand.New(rand.NewSource(6))
	ref := Point{0, 0}
	front := []Point{{0.9, 0.3}, {0.6, 0.6}, {0.3, 0.9}}
	hv := Hypervolume(ref, front)
	x1 := EHVI(0.65, 0.02, 0.55, 0.02, ref, front, hv, 256, rng) // inside
	x2 := EHVI(0.85, 0.02, 0.55, 0.02, ref, front, hv, 256, rng) // extends
	if x2 <= x1 {
		t.Fatalf("EHVI(x2)=%v not above EHVI(x1)=%v", x2, x1)
	}
}

func TestLHSStratification(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, dim := 20, 3
	s := LHS(n, dim, rng)
	if len(s) != n {
		t.Fatalf("LHS returned %d samples", len(s))
	}
	for d := 0; d < dim; d++ {
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			v := s[i][d]
			if v < 0 || v >= 1 {
				t.Fatalf("sample out of range: %v", v)
			}
			stratum := int(v * float64(n))
			if seen[stratum] {
				t.Fatalf("dim %d stratum %d hit twice", d, stratum)
			}
			seen[stratum] = true
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	if math.Abs(NormalCDF(0)-0.5) > 1e-12 {
		t.Fatalf("CDF(0) = %v", NormalCDF(0))
	}
	if math.Abs(NormalCDF(1.959964)-0.975) > 1e-4 {
		t.Fatalf("CDF(1.96) = %v", NormalCDF(1.959964))
	}
	if NormalCDF(-10) > 1e-12 {
		t.Fatalf("CDF(-10) = %v", NormalCDF(-10))
	}
}

func BenchmarkHypervolume100(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(8))
	ps := make([]Point, 100)
	for i := range ps {
		ps[i] = Point{rng.Float64(), rng.Float64()}
	}
	ref := Point{0, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hypervolume(ref, ps)
	}
}

func BenchmarkEHVI(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(9))
	ref := Point{0, 0}
	front := []Point{{0.9, 0.3}, {0.6, 0.6}, {0.3, 0.9}}
	hv := Hypervolume(ref, front)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EHVI(0.7, 0.1, 0.7, 0.1, ref, front, hv, 64, rng)
	}
}
