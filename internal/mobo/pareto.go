// Package mobo provides the multi-objective Bayesian optimization
// machinery of the paper (§III-B, §IV-C): Pareto dominance, 2-D
// hypervolume, Monte Carlo expected hypervolume improvement (EHVI),
// analytic expected improvement (EI), constrained EI (Eq. 7), and Latin
// hypercube sampling. Both objectives are maximized.
package mobo

import "sort"

// Point is one bi-objective observation (both maximized). For VDMS tuning
// the coordinates are (search speed, recall rate), possibly normalized.
type Point struct {
	A, B float64
}

// Dominates reports whether p is at least as good as q in both objectives
// and strictly better in at least one.
func (p Point) Dominates(q Point) bool {
	return p.A >= q.A && p.B >= q.B && (p.A > q.A || p.B > q.B)
}

// NonDominated returns the indexes of the Pareto-optimal points in ps,
// in ascending order of index.
func NonDominated(ps []Point) []int {
	var out []int
	for i, p := range ps {
		dominated := false
		for j, q := range ps {
			if i == j {
				continue
			}
			if q.Dominates(p) {
				dominated = true
				break
			}
			// Duplicates: keep the first occurrence only.
			if q == p && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// Front returns the Pareto-optimal subset of ps.
func Front(ps []Point) []Point {
	idx := NonDominated(ps)
	out := make([]Point, len(idx))
	for i, j := range idx {
		out[i] = ps[j]
	}
	return out
}

// Hypervolume computes the 2-D hypervolume of the region dominated by ps
// and bounded below by ref (maximization). Points not dominating ref
// contribute nothing.
func Hypervolume(ref Point, ps []Point) float64 {
	// Keep points strictly better than ref in both objectives.
	var kept []Point
	for _, p := range ps {
		if p.A > ref.A && p.B > ref.B {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return 0
	}
	// Rectangle decomposition over the Pareto front: sorted by
	// descending A the front has ascending B, and point i contributes
	// (A_i − ref.A) × (B_i − B_{i−1}) with B_0 = ref.B.
	front := Front(kept)
	sort.Slice(front, func(i, j int) bool { return front[i].A > front[j].A })
	hv := 0.0
	prevB := ref.B
	for _, p := range front {
		hv += (p.A - ref.A) * (p.B - prevB)
		prevB = p.B
	}
	return hv
}
