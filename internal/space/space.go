// Package space defines the VDMS configuration space: the paper's
// 16 dimensions (§V-A — the index type, the eight index parameters of
// Table I, and the seven recommended system parameters) plus the three
// compaction parameters of the engine's segment-compaction extension
// (trigger ratio, merge fan-in, compactor parallelism), the two
// durability parameters of its snapshot+WAL persistence extension (fsync
// policy, group-commit batch), and the shard count of its sharded live
// engine, 22 dimensions in
// all. It provides the encoding the surrogate model works in
// ([0,1]^Dims), decoding back to engine configurations, per-index-type
// parameter ownership, defaults, and random/LHS sampling restricted to an
// index type's subspace.
package space

import (
	"fmt"
	"math"
	"math/rand"

	"vdtuner/internal/index"
	"vdtuner/internal/mobo"
	"vdtuner/internal/vdms"
)

// Param identifies one tunable dimension.
type Param int

const (
	// Index parameters (paper Table I).
	NList Param = iota
	NProbe
	PQM
	PQNBits
	HNSWM
	EfConstruction
	Ef
	ReorderK
	// System parameters (Milvus documentation; see vdms.Config).
	SegmentMaxSize
	SealProportion
	GracefulTime
	InsertBufSize
	Parallelism
	CacheRatio
	FlushInterval
	// Compaction parameters (engine extension: segment compaction +
	// tombstone GC; see vdms.Config).
	CompactionTriggerRatio
	CompactionMergeFanIn
	CompactionParallelism
	// Durability parameters (engine extension: snapshot + WAL
	// persistence; see vdms.Config and package persist). They shape the
	// write path's acknowledgement latency and crash-loss window, never
	// search results.
	WALFsyncPolicy
	WALGroupCommit
	// Sharding parameter (engine extension: the live collection is split
	// into independently locked shards with per-shard WALs and
	// compactors; see vdms.Config.ShardCount). It trades write/fsync/
	// compaction parallelism against segment granularity — exactly the
	// kind of workload-dependent knob the tuner exists to set.
	ShardCount
	numParams
)

// NumParams is the number of scalar parameters (excluding the index type).
const NumParams = int(numParams)

// Dims is the total encoded dimensionality: index type + NumParams.
const Dims = NumParams + 1

// Def describes one parameter: its range, integrality, default, and the
// index types that own it (nil owners = shared by all types).
type Def struct {
	Param   Param
	Name    string
	Min     float64
	Max     float64
	Integer bool
	Default float64
	Owners  []index.Type
}

// sys builds a system-parameter Def whose bounds come from the engine's
// own validation table (vdms.SystemKnobRanges), so the space the tuner
// explores and the range Reconfigure accepts can never drift apart: any
// decoded configuration is valid by construction.
func sys(p Param, name string, integer bool, def float64) Def {
	r, ok := vdms.SystemKnobRanges[name]
	if !ok {
		panic(fmt.Sprintf("space: no engine range for system knob %q", name))
	}
	return Def{p, name, r.Min, r.Max, integer, def, nil}
}

var defs = [NumParams]Def{
	NList:          {NList, "nlist", 16, 1024, true, 128, []index.Type{index.IVFFlat, index.IVFSQ8, index.IVFPQ, index.SCANN}},
	NProbe:         {NProbe, "nprobe", 1, 256, true, 16, []index.Type{index.IVFFlat, index.IVFSQ8, index.IVFPQ, index.SCANN}},
	PQM:            {PQM, "m", 2, 16, true, 8, []index.Type{index.IVFPQ}},
	PQNBits:        {PQNBits, "nbits", 4, 12, true, 8, []index.Type{index.IVFPQ}},
	HNSWM:          {HNSWM, "M", 4, 64, true, 16, []index.Type{index.HNSW}},
	EfConstruction: {EfConstruction, "efConstruction", 8, 512, true, 128, []index.Type{index.HNSW}},
	Ef:             {Ef, "ef", 8, 512, true, 64, []index.Type{index.HNSW}},
	ReorderK:       {ReorderK, "reorder_k", 10, 500, true, 100, []index.Type{index.SCANN}},
	SegmentMaxSize: sys(SegmentMaxSize, "segment_maxSize", true, 512),
	SealProportion: sys(SealProportion, "segment_sealProportion", false, 0.25),
	GracefulTime:   sys(GracefulTime, "gracefulTime", false, 1000),
	InsertBufSize:  sys(InsertBufSize, "insertBufSize", true, 256),
	Parallelism:    sys(Parallelism, "queryNode_parallelism", true, 4),
	CacheRatio:     sys(CacheRatio, "queryNode_cacheRatio", false, 0.3),
	FlushInterval:  sys(FlushInterval, "flushInterval", false, 10),

	CompactionTriggerRatio: sys(CompactionTriggerRatio, "compaction_triggerRatio", false, 0.2),
	CompactionMergeFanIn:   sys(CompactionMergeFanIn, "compaction_mergeFanIn", true, 4),
	CompactionParallelism:  sys(CompactionParallelism, "compaction_parallelism", true, 2),

	WALFsyncPolicy: sys(WALFsyncPolicy, "wal_fsyncPolicy", true, 2),
	WALGroupCommit: sys(WALGroupCommit, "wal_groupCommit", true, 64),

	ShardCount: sys(ShardCount, "shard_count", true, 1),
}

// Lookup returns the definition of p.
func Lookup(p Param) Def { return defs[p] }

// All returns every parameter definition in declaration order.
func All() []Def {
	out := make([]Def, NumParams)
	copy(out, defs[:])
	return out
}

// ByName finds a definition by its Milvus-style name.
func ByName(name string) (Def, error) {
	for _, d := range defs {
		if d.Name == name {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("space: unknown parameter %q", name)
}

// OwnedBy reports whether index type t tunes parameter p. Shared (system)
// parameters are owned by every type; FLAT and AUTOINDEX own only shared
// parameters (Table I: "N/A ; N/A").
func OwnedBy(p Param, t index.Type) bool {
	d := defs[p]
	if d.Owners == nil {
		return true
	}
	for _, o := range d.Owners {
		if o == t {
			return true
		}
	}
	return false
}

// Vector is an encoded configuration in [0,1]^Dims: Vector[0] encodes the
// index type, Vector[1+p] encodes parameter p.
type Vector []float64

// typeCount is the number of selectable index types.
var typeCount = len(index.AllTypes())

// EncodeType maps an index type to its [0,1] coordinate.
func EncodeType(t index.Type) float64 {
	return float64(int(t)) / float64(typeCount-1)
}

// DecodeType maps a [0,1] coordinate back to the nearest index type.
func DecodeType(v float64) index.Type {
	i := int(math.Round(v * float64(typeCount-1)))
	if i < 0 {
		i = 0
	}
	if i >= typeCount {
		i = typeCount - 1
	}
	return index.AllTypes()[i]
}

// encodeVal maps a raw parameter value to [0,1].
func encodeVal(d Def, v float64) float64 {
	u := (v - d.Min) / (d.Max - d.Min)
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return u
}

// decodeVal maps a [0,1] coordinate back to the parameter's range,
// rounding integer parameters.
func decodeVal(d Def, u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	v := d.Min + u*(d.Max-d.Min)
	if d.Integer {
		v = math.Round(v)
	}
	return v
}

// Encode maps an engine configuration to its surrogate-space vector.
func Encode(cfg vdms.Config) Vector {
	x := make(Vector, Dims)
	x[0] = EncodeType(cfg.IndexType)
	set := func(p Param, v float64) { x[1+int(p)] = encodeVal(defs[p], v) }
	set(NList, float64(cfg.Build.NList))
	set(NProbe, float64(cfg.Search.NProbe))
	set(PQM, float64(cfg.Build.M))
	set(PQNBits, float64(cfg.Build.NBits))
	set(HNSWM, float64(cfg.Build.HNSWM))
	set(EfConstruction, float64(cfg.Build.EfConstruction))
	set(Ef, float64(cfg.Search.Ef))
	set(ReorderK, float64(cfg.Search.ReorderK))
	set(SegmentMaxSize, cfg.SegmentMaxSize)
	set(SealProportion, cfg.SealProportion)
	set(GracefulTime, cfg.GracefulTime)
	set(InsertBufSize, cfg.InsertBufSize)
	set(Parallelism, float64(cfg.Parallelism))
	set(CacheRatio, cfg.CacheRatio)
	set(FlushInterval, cfg.FlushInterval)
	// Compaction knobs treat zero as "engine default" (configurations
	// recorded before the compactor existed); encode the resolved value.
	setOrDefault := func(p Param, v float64) {
		if v == 0 {
			v = defs[p].Default
		}
		set(p, v)
	}
	setOrDefault(CompactionTriggerRatio, cfg.CompactionTriggerRatio)
	setOrDefault(CompactionMergeFanIn, float64(cfg.CompactionMergeFanIn))
	setOrDefault(CompactionParallelism, float64(cfg.CompactionParallelism))
	// WAL knobs likewise treat zero as "engine default" (configurations
	// recorded before durability existed).
	setOrDefault(WALFsyncPolicy, float64(cfg.WALFsyncPolicy))
	setOrDefault(WALGroupCommit, float64(cfg.WALGroupCommit))
	// The shard count likewise treats zero as "engine default"
	// (configurations recorded before the live engine was sharded).
	setOrDefault(ShardCount, float64(cfg.ShardCount))
	return x
}

// Decode maps a surrogate-space vector back to an engine configuration.
// Parameters not owned by the decoded index type are reset to defaults, so
// two vectors that differ only in unowned dimensions decode identically.
func Decode(x Vector) vdms.Config {
	t := DecodeType(x[0])
	get := func(p Param) float64 {
		if !OwnedBy(p, t) {
			return defs[p].Default
		}
		return decodeVal(defs[p], x[1+int(p)])
	}
	cfg := vdms.Config{
		IndexType: t,
		Build: index.BuildParams{
			NList:          int(get(NList)),
			M:              int(get(PQM)),
			NBits:          int(get(PQNBits)),
			HNSWM:          int(get(HNSWM)),
			EfConstruction: int(get(EfConstruction)),
		},
		Search: index.SearchParams{
			NProbe:   int(get(NProbe)),
			Ef:       int(get(Ef)),
			ReorderK: int(get(ReorderK)),
		},
		SegmentMaxSize: get(SegmentMaxSize),
		SealProportion: get(SealProportion),
		GracefulTime:   get(GracefulTime),
		InsertBufSize:  get(InsertBufSize),
		Parallelism:    int(get(Parallelism)),
		CacheRatio:     get(CacheRatio),
		FlushInterval:  get(FlushInterval),

		CompactionTriggerRatio: get(CompactionTriggerRatio),
		CompactionMergeFanIn:   int(get(CompactionMergeFanIn)),
		CompactionParallelism:  int(get(CompactionParallelism)),

		WALFsyncPolicy: int(get(WALFsyncPolicy)),
		WALGroupCommit: int(get(WALGroupCommit)),

		ShardCount: int(get(ShardCount)),
	}
	return cfg
}

// DefaultVector returns the encoded default configuration for index type t
// (defaults everywhere, type coordinate set to t).
func DefaultVector(t index.Type) Vector {
	x := make(Vector, Dims)
	x[0] = EncodeType(t)
	for p := 0; p < NumParams; p++ {
		x[1+p] = encodeVal(defs[p], defs[p].Default)
	}
	return x
}

// DefaultConfig returns the engine default configuration with the index
// type forced to t.
func DefaultConfig(t index.Type) vdms.Config {
	cfg := vdms.DefaultConfig()
	cfg.IndexType = t
	return Decode(DefaultVector(t))
}

// SampleSubspace draws a uniform random vector for index type t: owned
// dimensions uniform in [0,1], unowned index parameters at defaults.
func SampleSubspace(t index.Type, rng *rand.Rand) Vector {
	x := DefaultVector(t)
	for p := 0; p < NumParams; p++ {
		if OwnedBy(Param(p), t) {
			x[1+p] = rng.Float64()
		}
	}
	return x
}

// PerturbSubspace returns a copy of x with each owned dimension nudged by
// Gaussian noise of the given scale (clamped to [0,1]); the index type is
// preserved. It provides the local half of the acquisition candidate set.
func PerturbSubspace(x Vector, t index.Type, scale float64, rng *rand.Rand) Vector {
	out := make(Vector, len(x))
	copy(out, x)
	out[0] = EncodeType(t)
	for p := 0; p < NumParams; p++ {
		if !OwnedBy(Param(p), t) {
			continue
		}
		v := out[1+p] + rng.NormFloat64()*scale
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out[1+p] = v
	}
	return out
}

// LHSAcrossTypes draws n Latin-hypercube samples over the full holistic
// space (index type treated as one more dimension), as the baselines do.
func LHSAcrossTypes(n int, rng *rand.Rand) []Vector {
	raw := mobo.LHS(n, Dims, rng)
	out := make([]Vector, n)
	for i, r := range raw {
		out[i] = Vector(r)
	}
	return out
}
