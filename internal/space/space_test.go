package space

import (
	"math/rand"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/vdms"
)

func TestDefsComplete(t *testing.T) {
	if len(All()) != 21 {
		t.Fatalf("expected 21 scalar parameters (8 index + 7 system + 3 compaction + 2 durability + 1 sharding), got %d", len(All()))
	}
	if Dims != 22 {
		t.Fatalf("Dims = %d, want 22 (paper §V-A's 16 + 3 compaction + 2 durability + 1 sharding extensions)", Dims)
	}
	for p, d := range All() {
		if d.Name == "" || d.Min >= d.Max {
			t.Fatalf("bad def %d: %+v", p, d)
		}
		if d.Default < d.Min || d.Default > d.Max {
			t.Fatalf("default out of range: %+v", d)
		}
	}
}

func TestOwnership(t *testing.T) {
	// Table I: FLAT and AUTOINDEX have no index parameters.
	for p := 0; p < NumParams; p++ {
		d := Lookup(Param(p))
		shared := d.Owners == nil
		if OwnedBy(Param(p), index.Flat) != shared {
			t.Fatalf("FLAT ownership of %s wrong", d.Name)
		}
		if OwnedBy(Param(p), index.AutoIndex) != shared {
			t.Fatalf("AUTOINDEX ownership of %s wrong", d.Name)
		}
	}
	if !OwnedBy(NList, index.IVFPQ) || !OwnedBy(PQM, index.IVFPQ) {
		t.Fatal("IVF_PQ must own nlist and m")
	}
	if OwnedBy(PQM, index.IVFFlat) {
		t.Fatal("IVF_FLAT must not own m")
	}
	if !OwnedBy(ReorderK, index.SCANN) || OwnedBy(ReorderK, index.HNSW) {
		t.Fatal("reorder_k belongs to SCANN only")
	}
	if !OwnedBy(SegmentMaxSize, index.HNSW) {
		t.Fatal("system parameters are shared by every type")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.HNSW
	cfg.Build.HNSWM = 32
	cfg.Build.EfConstruction = 200
	cfg.Search.Ef = 100
	cfg.SegmentMaxSize = 1024
	cfg.SealProportion = 0.8
	got := Decode(Encode(cfg))
	if got.IndexType != index.HNSW {
		t.Fatalf("round-trip type = %v", got.IndexType)
	}
	if got.Build.HNSWM != 32 || got.Build.EfConstruction != 200 || got.Search.Ef != 100 {
		t.Fatalf("round-trip HNSW params = %+v %+v", got.Build, got.Search)
	}
	if got.SegmentMaxSize != 1024 {
		t.Fatalf("round-trip maxSize = %v", got.SegmentMaxSize)
	}
	if got.SealProportion < 0.79 || got.SealProportion > 0.81 {
		t.Fatalf("round-trip sealProportion = %v", got.SealProportion)
	}
}

func TestDecodeResetsUnownedParams(t *testing.T) {
	// Vectors differing only in unowned dims decode identically.
	rng := rand.New(rand.NewSource(1))
	x := DefaultVector(index.HNSW)
	y := make(Vector, len(x))
	copy(y, x)
	y[1+int(NList)] = rng.Float64() // HNSW does not own nlist
	y[1+int(ReorderK)] = rng.Float64()
	if Decode(x) != Decode(y) {
		t.Fatal("unowned dimensions leaked into decoded config")
	}
}

func TestDecodeAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		x := make(Vector, Dims)
		for i := range x {
			x[i] = rng.Float64()
		}
		cfg := Decode(x)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("decoded config invalid: %v (%+v)", err, cfg)
		}
	}
}

func TestTypeCodecRoundTrip(t *testing.T) {
	for _, typ := range index.AllTypes() {
		if got := DecodeType(EncodeType(typ)); got != typ {
			t.Fatalf("type round-trip %v -> %v", typ, got)
		}
	}
	if DecodeType(-0.5) != index.AllTypes()[0] {
		t.Fatal("DecodeType below range not clamped")
	}
	last := index.AllTypes()[len(index.AllTypes())-1]
	if DecodeType(1.5) != last {
		t.Fatal("DecodeType above range not clamped")
	}
}

func TestDefaultConfigMatchesEngineDefaults(t *testing.T) {
	got := DefaultConfig(index.AutoIndex)
	want := vdms.DefaultConfig()
	if got.IndexType != want.IndexType {
		t.Fatalf("default type %v, want %v", got.IndexType, want.IndexType)
	}
	if got.SegmentMaxSize != want.SegmentMaxSize || got.SealProportion != want.SealProportion ||
		got.GracefulTime != want.GracefulTime || got.InsertBufSize != want.InsertBufSize ||
		got.Parallelism != want.Parallelism || got.CacheRatio != want.CacheRatio ||
		got.FlushInterval != want.FlushInterval {
		t.Fatalf("space defaults diverge from engine defaults:\n%+v\n%+v", got, want)
	}
	if got.CompactionMergeFanIn != want.CompactionMergeFanIn ||
		got.CompactionParallelism != want.CompactionParallelism {
		t.Fatalf("compaction defaults diverge from engine defaults:\n%+v\n%+v", got, want)
	}
	if d := got.CompactionTriggerRatio - want.CompactionTriggerRatio; d < -1e-9 || d > 1e-9 {
		t.Fatalf("compaction trigger ratio default %v, want %v", got.CompactionTriggerRatio, want.CompactionTriggerRatio)
	}
}

func TestSampleSubspaceRespectsOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	def := DefaultVector(index.SCANN)
	for trial := 0; trial < 50; trial++ {
		x := SampleSubspace(index.SCANN, rng)
		if DecodeType(x[0]) != index.SCANN {
			t.Fatal("sample changed index type")
		}
		// Unowned dims must stay at default encoding.
		for _, p := range []Param{PQM, PQNBits, HNSWM, Ef, EfConstruction} {
			if x[1+int(p)] != def[1+int(p)] {
				t.Fatalf("unowned param %v sampled", Lookup(p).Name)
			}
		}
	}
}

func TestPerturbSubspaceStaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := SampleSubspace(index.IVFPQ, rng)
	for trial := 0; trial < 100; trial++ {
		y := PerturbSubspace(x, index.IVFPQ, 0.3, rng)
		for i, v := range y {
			if v < 0 || v > 1 {
				t.Fatalf("perturbed dim %d out of range: %v", i, v)
			}
		}
		if DecodeType(y[0]) != index.IVFPQ {
			t.Fatal("perturb changed index type")
		}
	}
}

func TestLHSAcrossTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vs := LHSAcrossTypes(25, rng)
	if len(vs) != 25 {
		t.Fatalf("got %d samples", len(vs))
	}
	types := map[index.Type]bool{}
	for _, v := range vs {
		if len(v) != Dims {
			t.Fatalf("sample has %d dims", len(v))
		}
		types[DecodeType(v[0])] = true
		cfg := Decode(v)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("LHS sample invalid: %v", err)
		}
	}
	if len(types) < 4 {
		t.Fatalf("LHS covered only %d index types", len(types))
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("nprobe")
	if err != nil || d.Param != NProbe {
		t.Fatalf("ByName(nprobe) = %+v, %v", d, err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName accepted junk")
	}
}
