// Package parallel is the shared worker-pool substrate of the engine's hot
// paths (kmeans, index builds, batched search, workload replay).
//
// Its core guarantee is determinism: work is divided into chunks whose
// boundaries depend only on the problem size, never on the worker count, so
// any per-chunk partial results can be reduced in chunk order to a value
// that is bit-identical whether the job ran on 1 worker or N. This is what
// lets the engine parallelize builds while keeping tuning runs reproducible
// (workers=1 and workers=NumCPU produce identical indexes and identical
// Stats).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean "one worker
// per available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Parallel runs fn(chunk) for every chunk in [0, chunks) on up to n
// workers. Chunks are claimed dynamically (work stealing via an atomic
// counter), so uneven chunk costs balance automatically; fn must therefore
// not assume any chunk-to-worker affinity. n <= 1 or chunks <= 1 runs
// inline on the calling goroutine with zero overhead, which is also the
// reference sequential path. Parallel returns when every chunk is done.
func Parallel(n, chunks int, fn func(chunk int)) {
	if chunks <= 0 {
		return
	}
	n = Workers(n)
	if n > chunks {
		n = chunks
	}
	if n <= 1 || chunks == 1 {
		for c := 0; c < chunks; c++ {
			fn(c)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				fn(c)
			}
		}()
	}
	wg.Wait()
}

// WorkerCount reports how many workers WorkerParallel(n, chunks, ...) will
// actually run: the resolved worker count clamped to the chunk count.
// Callers size per-worker state (e.g. search scratch) with it.
func WorkerCount(n, chunks int) int {
	if chunks <= 0 {
		return 0
	}
	n = Workers(n)
	if n > chunks {
		n = chunks
	}
	if n < 1 {
		n = 1
	}
	return n
}

// WorkerParallel is Parallel with worker identity: fn receives the index of
// the worker goroutine running it, in [0, WorkerCount(n, chunks)). Each
// worker index is owned by exactly one goroutine for the whole call, so fn
// may keep per-worker mutable state (scratch buffers) indexed by it with no
// further synchronization. Chunk claiming is the same dynamic atomic
// counter as Parallel, so chunk→worker assignment is NOT deterministic —
// only per-chunk results reduced in chunk order are.
func WorkerParallel(n, chunks int, fn func(worker, chunk int)) {
	if chunks <= 0 {
		return
	}
	n = WorkerCount(n, chunks)
	if n <= 1 || chunks == 1 {
		for c := 0; c < chunks; c++ {
			fn(0, c)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				fn(worker, c)
			}
		}(w)
	}
	wg.Wait()
}

// NumChunks reports how many fixed-size chunks cover total items. The
// answer depends only on (total, chunkSize), which is what makes chunked
// reductions worker-count-invariant.
func NumChunks(total, chunkSize int) int {
	if total <= 0 {
		return 0
	}
	if chunkSize < 1 {
		chunkSize = 1
	}
	return (total + chunkSize - 1) / chunkSize
}

// Chunk returns the half-open item range [lo, hi) of chunk c under the
// same fixed chunking as NumChunks.
func Chunk(c, total, chunkSize int) (lo, hi int) {
	if chunkSize < 1 {
		chunkSize = 1
	}
	lo = c * chunkSize
	hi = lo + chunkSize
	if hi > total {
		hi = total
	}
	return lo, hi
}

// ForRanges runs fn(chunk, lo, hi) over the fixed chunking of total items
// into chunkSize-sized ranges, on up to n workers. It is the common
// "parallel loop with deterministic per-chunk slots" shape: callers size
// their partial-result slices with NumChunks and reduce in chunk order.
func ForRanges(n, total, chunkSize int, fn func(chunk, lo, hi int)) {
	chunks := NumChunks(total, chunkSize)
	Parallel(n, chunks, func(c int) {
		lo, hi := Chunk(c, total, chunkSize)
		fn(c, lo, hi)
	})
}
