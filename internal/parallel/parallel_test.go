package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestParallelCoversEveryChunkOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const chunks = 100
		var hits [chunks]atomic.Int32
		Parallel(workers, chunks, func(c int) { hits[c].Add(1) })
		for c := range hits {
			if n := hits[c].Load(); n != 1 {
				t.Fatalf("workers=%d: chunk %d ran %d times", workers, c, n)
			}
		}
	}
}

func TestParallelEmptyAndSingle(t *testing.T) {
	ran := 0
	Parallel(8, 0, func(int) { ran++ })
	if ran != 0 {
		t.Fatalf("Parallel with 0 chunks ran %d times", ran)
	}
	// A single chunk must run inline (no data race on the plain int).
	Parallel(8, 1, func(int) { ran++ })
	if ran != 1 {
		t.Fatalf("Parallel with 1 chunk ran %d times", ran)
	}
}

func TestWorkerParallelCoversChunksWithOwnedWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const chunks = 100
		var hits [chunks]atomic.Int32
		w := WorkerCount(workers, chunks)
		if w < 1 || w > chunks {
			t.Fatalf("WorkerCount(%d, %d) = %d out of range", workers, chunks, w)
		}
		// Per-worker counters written without synchronization: the race
		// detector verifies each worker index is owned by one goroutine.
		perWorker := make([]int, w)
		WorkerParallel(workers, chunks, func(worker, c int) {
			if worker < 0 || worker >= w {
				t.Errorf("worker index %d outside [0, %d)", worker, w)
			}
			perWorker[worker]++
			hits[c].Add(1)
		})
		for c := range hits {
			if n := hits[c].Load(); n != 1 {
				t.Fatalf("workers=%d: chunk %d ran %d times", workers, c, n)
			}
		}
		totalRuns := 0
		for _, n := range perWorker {
			totalRuns += n
		}
		if totalRuns != chunks {
			t.Fatalf("workers=%d: per-worker counts sum to %d, want %d", workers, totalRuns, chunks)
		}
	}
}

func TestWorkerParallelEmpty(t *testing.T) {
	ran := 0
	WorkerParallel(8, 0, func(int, int) { ran++ })
	if ran != 0 {
		t.Fatalf("WorkerParallel with 0 chunks ran %d times", ran)
	}
	if got := WorkerCount(8, 0); got != 0 {
		t.Fatalf("WorkerCount(8, 0) = %d, want 0", got)
	}
}

func TestChunkingIsWorkerInvariant(t *testing.T) {
	// The chunk layout is a pure function of (total, chunkSize).
	const total, size = 1003, 64
	n := NumChunks(total, size)
	if n != 16 {
		t.Fatalf("NumChunks(%d, %d) = %d, want 16", total, size, n)
	}
	covered := 0
	for c := 0; c < n; c++ {
		lo, hi := Chunk(c, total, size)
		if lo != c*size {
			t.Fatalf("chunk %d starts at %d", c, lo)
		}
		if hi < lo || hi > total {
			t.Fatalf("chunk %d = [%d, %d)", c, lo, hi)
		}
		covered += hi - lo
	}
	if covered != total {
		t.Fatalf("chunks cover %d items, want %d", covered, total)
	}
}

func TestForRangesDeterministicReduction(t *testing.T) {
	// The canonical use: per-chunk partial sums reduced in chunk order give
	// the same float result for any worker count.
	const total = 5000
	vals := make([]float64, total)
	for i := range vals {
		vals[i] = 1.0 / float64(i+1)
	}
	sumWith := func(workers int) float64 {
		partial := make([]float64, NumChunks(total, 256))
		ForRanges(workers, total, 256, func(c, lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			partial[c] = s
		})
		total := 0.0
		for _, s := range partial {
			total += s
		}
		return total
	}
	want := sumWith(1)
	for _, w := range []int{2, 3, 8, 32} {
		if got := sumWith(w); got != want {
			t.Fatalf("workers=%d: sum %v != sequential %v", w, got, want)
		}
	}
}
