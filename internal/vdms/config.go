// Package vdms implements the vector data management system under tuning:
// a Milvus-like engine with a segmented storage layer, growing/sealed
// segment lifecycle, per-segment ANN indexes, a bounded-consistency window,
// intra-query parallelism, and memory accounting.
//
// The live engine is split along a shard/router boundary: Collection
// (live.go) is a thin router that assigns ids from one atomic counter,
// routes Insert/Delete to shards by a deterministic id hash, and
// scatter-gathers Search/SearchBatch across them with a fixed-order
// merge; shard (shard.go) is the single-lock engine — growing arena,
// sealing/sealed segments, tombstones, compactor, and an independent
// snapshot+WAL pair when durable — so writes, fsyncs, index builds, and
// compaction on different shards never contend.
//
// The engine exposes the 16-dimensional configuration surface of the
// paper (index type + 8 index parameters + 7 system parameters), extended
// with three compaction parameters (trigger ratio, merge fan-in,
// compactor parallelism), two durability parameters (WAL fsync policy,
// group-commit batch; see package persist), and the shard count, and
// reports deterministic simulated performance derived from the real work
// its index structures perform; see DESIGN.md "Substitutions".
package vdms

import (
	"fmt"

	"vdtuner/internal/index"
	"vdtuner/internal/persist"
)

// Config is one complete VDMS configuration: the selected index type, its
// build/search parameters, and the seven system parameters.
type Config struct {
	// IndexType selects the ANN algorithm for sealed segments.
	IndexType index.Type
	// Build carries the index build parameters (nlist, m, nbits, M,
	// efConstruction).
	Build index.BuildParams
	// Search carries the index search parameters (nprobe, ef, reorder_k).
	Search index.SearchParams

	// SegmentMaxSize is the sealed-segment size budget in MB-equivalents
	// (Milvus segment.maxSize), range [100, 2048].
	SegmentMaxSize float64
	// SealProportion is the fraction of SegmentMaxSize at which a growing
	// segment seals (Milvus segment.sealProportion), range [0.05, 1].
	SealProportion float64
	// GracefulTime is the bounded-consistency staleness tolerance in
	// milliseconds (Milvus gracefulTime), range [0, 5000]. Small values
	// force queries to wait for sync.
	GracefulTime float64
	// InsertBufSize is the insert buffer size in MB-equivalents (Milvus
	// insertBufSize), range [64, 2048]. Larger buffers delay flushes,
	// enlarging the unindexed tail and memory footprint.
	InsertBufSize float64
	// Parallelism is the queryNode worker count, range [1, 32]. It is a
	// real knob, not just a cost-model input: it sizes the worker pools
	// of index builds (Open, Collection sealing) and of batched search
	// (SearchBatch). Results are identical for every value — the engine's
	// parallel phases are deterministic (see package parallel) — so the
	// tuner can explore it freely without breaking reproducibility.
	Parallelism int
	// CacheRatio is the fraction of index data kept hot in cache,
	// range [0.05, 1]. Lower values add per-candidate access cost.
	CacheRatio float64
	// FlushInterval is the background flush cadence in seconds,
	// range [1, 120]. It trades unindexed-tail size against background
	// build load.
	FlushInterval float64

	// CompactionTriggerRatio is the tombstone ratio (deleted rows /
	// total rows) at which the compactor rewrites a sealed segment,
	// physically dropping deleted rows and rebuilding its index, range
	// [0.05, 0.95]. Zero means the default (0.2). Lower values reclaim
	// memory eagerly at the cost of more rebuild work.
	CompactionTriggerRatio float64
	// CompactionMergeFanIn is the maximum number of undersized sealed
	// segments merged into one during a compaction pass, range [2, 16].
	// Zero means the default (4).
	CompactionMergeFanIn int
	// CompactionParallelism is the compactor worker-pool size: how many
	// rewrite/merge tasks of one pass run concurrently, range [1, 16].
	// Zero means the default (2). Like every engine pool it is
	// deterministic: any value produces bit-identical segments.
	CompactionParallelism int

	// WALFsyncPolicy selects when write-ahead-log appends of a durable
	// collection become crash-proof: 1 = never (fsync only at
	// checkpoints), 2 = batch (fsync every WALGroupCommit records),
	// 3 = always (group-committed fsync before every acknowledgement).
	// Zero means the default (2). Memory-only collections ignore it. The
	// knob trades acknowledgement latency against the crash-loss window;
	// it never affects search results.
	WALFsyncPolicy int
	// WALGroupCommit is the group-commit batch size under the batch
	// policy: how many buffered records trigger one fsync, range
	// [1, 1024]. Zero means the default (64).
	WALGroupCommit int

	// ShardCount is the number of independently locked shards a live
	// Collection splits into, range [1, 16]. Zero means the default (1).
	// Writes are routed by a deterministic id hash and searches fan out
	// over all shards with a fixed-order merge, so results are identical
	// for every value on layout-independent (FLAT) segments and
	// bit-identical to the pre-sharding engine at 1; higher values buy
	// parallel insert/fsync/compaction throughput at the cost of more,
	// smaller segments. It is a structural knob for durable collections:
	// a data directory is bound to the shard count it was created with.
	ShardCount int

	// Concurrency is the number of in-flight search requests during
	// replay (the paper uses 10). Zero means 10. It is a workload
	// property, not a tuned parameter.
	Concurrency int
}

// DefaultConfig is the paper's "Default" baseline: AUTOINDEX plus stock
// system parameters.
func DefaultConfig() Config {
	return Config{
		IndexType:      index.AutoIndex,
		SegmentMaxSize: 512,
		SealProportion: 0.25,
		GracefulTime:   1000,
		InsertBufSize:  256,
		Parallelism:    4,
		CacheRatio:     0.3,
		FlushInterval:  10,

		CompactionTriggerRatio: 0.2,
		CompactionMergeFanIn:   4,
		CompactionParallelism:  2,

		WALFsyncPolicy: 2,
		WALGroupCommit: 64,

		ShardCount: 1,

		Concurrency: 10,
	}
}

// KnobRange is the documented [Min, Max] range of one system knob.
type KnobRange struct {
	Min, Max float64
	// ZeroDefault marks knobs that accept zero as "use the engine
	// default" (knobs added after configurations were first recorded).
	ZeroDefault bool
}

// SystemKnobRanges is the single source of truth for the system knobs'
// documented ranges, keyed by their Milvus-style names. ValidateConfig
// enforces it, the tuner's space definitions (internal/space) derive
// their bounds from it, and vdmsd validates its flags through it — one
// table instead of three restatements.
var SystemKnobRanges = map[string]KnobRange{
	"segment_maxSize":         {Min: 100, Max: 2048},
	"segment_sealProportion":  {Min: 0.05, Max: 1},
	"gracefulTime":            {Min: 0, Max: 5000},
	"insertBufSize":           {Min: 64, Max: 2048},
	"queryNode_parallelism":   {Min: 1, Max: 32},
	"queryNode_cacheRatio":    {Min: 0.05, Max: 1},
	"flushInterval":           {Min: 1, Max: 120},
	"compaction_triggerRatio": {Min: 0.05, Max: 0.95, ZeroDefault: true},
	"compaction_mergeFanIn":   {Min: 2, Max: 16, ZeroDefault: true},
	"compaction_parallelism":  {Min: 1, Max: 16, ZeroDefault: true},
	"wal_fsyncPolicy":         {Min: 1, Max: 3, ZeroDefault: true},
	"wal_groupCommit":         {Min: 1, Max: 1024, ZeroDefault: true},
	"shard_count":             {Min: 1, Max: 16, ZeroDefault: true},
}

// checkKnob validates one knob value against the shared range table.
func checkKnob(name string, v float64) error {
	r, ok := SystemKnobRanges[name]
	if !ok {
		return fmt.Errorf("vdms: unknown knob %q", name)
	}
	if r.ZeroDefault && v == 0 {
		return nil
	}
	if v < r.Min || v > r.Max {
		return fmt.Errorf("vdms: %s %v outside [%v, %v]", name, v, r.Min, r.Max)
	}
	return nil
}

// ValidateConfig reports configuration errors. Values outside the
// documented ranges are errors rather than silently clamped: the tuner's
// encoder is responsible for staying in range, and out-of-range values
// here indicate a bug. It is the one range check shared by NewCollection,
// Reconfigure, the tuner, and vdmsd's flag validation.
func ValidateConfig(c Config) error {
	for _, k := range [...]struct {
		name string
		v    float64
	}{
		{"segment_maxSize", c.SegmentMaxSize},
		{"segment_sealProportion", c.SealProportion},
		{"gracefulTime", c.GracefulTime},
		{"insertBufSize", c.InsertBufSize},
		{"queryNode_parallelism", float64(c.Parallelism)},
		{"queryNode_cacheRatio", c.CacheRatio},
		{"flushInterval", c.FlushInterval},
		// Knobs below accept zero ("use default") for compatibility with
		// configurations recorded before the corresponding subsystem
		// (compactor, durability, sharding) existed.
		{"compaction_triggerRatio", c.CompactionTriggerRatio},
		{"compaction_mergeFanIn", float64(c.CompactionMergeFanIn)},
		{"compaction_parallelism", float64(c.CompactionParallelism)},
		{"wal_fsyncPolicy", float64(c.WALFsyncPolicy)},
		{"wal_groupCommit", float64(c.WALGroupCommit)},
		{"shard_count", float64(c.ShardCount)},
	} {
		if err := checkKnob(k.name, k.v); err != nil {
			return err
		}
	}
	return nil
}

// Validate reports configuration errors; see ValidateConfig.
func (c *Config) Validate() error { return ValidateConfig(*c) }

// Hot and cold knobs. A live Collection can change configuration without
// downtime (Reconfigure); knobs split by what the change costs:
//
//   - hot knobs take effect by publishing a new immutable config
//     generation that shards read at operation start — search parameters
//     (nprobe/ef/reorder_k), gracefulTime, the WAL fsync policy and
//     group-commit batch, the compaction trigger/fan-in/parallelism,
//     queryNode parallelism, cache ratio, flush interval, and insert
//     buffer size;
//   - cold knobs define the shape of the data on disk and in memory —
//     the index type and its build parameters, segment sizing
//     (segment_maxSize, sealProportion), and the shard count — and take
//     effect via a background migration that rebuilds the shard set and
//     cuts over under the router lock.
//
// coldEqual reports whether two configurations agree on every cold knob
// (a pure hot swap suffices when they do). Comparisons resolve
// zero-means-default knobs first.
func coldEqual(a, b Config) bool {
	return a.IndexType == b.IndexType &&
		a.Build == b.Build &&
		a.SegmentMaxSize == b.SegmentMaxSize &&
		a.SealProportion == b.SealProportion &&
		a.shardCount() == b.shardCount()
}

// GraftColdKnobs returns cfg with every cold knob replaced by from's, so
// the result differs from from only in hot knobs and Reconfigure applies
// it as a pure swap — no migration, no rebuild. The online tuning daemon
// uses it to confine itself to hot knobs unless cold changes were
// explicitly allowed.
func GraftColdKnobs(cfg, from Config) Config {
	cfg.IndexType = from.IndexType
	cfg.Build = from.Build
	cfg.SegmentMaxSize = from.SegmentMaxSize
	cfg.SealProportion = from.SealProportion
	cfg.ShardCount = from.ShardCount
	return cfg
}

func (c *Config) concurrency() int {
	if c.Concurrency <= 0 {
		return 10
	}
	return c.Concurrency
}

func (c *Config) compactionTriggerRatio() float64 {
	if c.CompactionTriggerRatio == 0 {
		return 0.2
	}
	return c.CompactionTriggerRatio
}

func (c *Config) compactionMergeFanIn() int {
	if c.CompactionMergeFanIn == 0 {
		return 4
	}
	return c.CompactionMergeFanIn
}

func (c *Config) compactionParallelism() int {
	if c.CompactionParallelism == 0 {
		return 2
	}
	return c.CompactionParallelism
}

func (c *Config) walFsyncPolicy() persist.SyncPolicy {
	if c.WALFsyncPolicy == 0 {
		return persist.SyncBatch
	}
	return persist.SyncPolicy(c.WALFsyncPolicy)
}

func (c *Config) walGroupCommit() int {
	if c.WALGroupCommit == 0 {
		return 64
	}
	return c.WALGroupCommit
}

func (c *Config) shardCount() int {
	if c.ShardCount == 0 {
		return 1
	}
	return c.ShardCount
}
