package vdms

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vdtuner/internal/workload"
)

// WallClockResult is a measured (not simulated) evaluation of a live
// collection — the engine's second evaluation mode, useful for validating
// that the simulated clock preserves ordering on real hardware.
type WallClockResult struct {
	// QPS is measured throughput: queries served / wall time.
	QPS float64
	// Recall is mean recall@K against the dataset's ground truth.
	Recall float64
	// P50 and P99 are latency percentiles in seconds.
	P50, P99 float64
	// Queries is the number of requests served.
	Queries int
}

// MeasureWallClock loads the dataset into a live collection under cfg and
// replays the query set `rounds` times at the configured concurrency,
// measuring real throughput and recall. It is inherently noisy (it
// measures this process on this machine); the tuner uses the simulated
// path instead, see DESIGN.md.
func MeasureWallClock(ds *workload.Dataset, cfg Config, rounds int) (*WallClockResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	coll, err := NewCollection(cfg, ds.Metric, ds.Dim, len(ds.Vectors))
	if err != nil {
		return nil, err
	}
	defer coll.Close()
	if _, err := coll.Insert(ds.Vectors); err != nil {
		return nil, err
	}
	if err := coll.Flush(); err != nil {
		return nil, fmt.Errorf("vdms: index build during load: %w", err)
	}

	nq := len(ds.Queries)
	total := nq * rounds
	latencies := make([]time.Duration, total)
	recalls := make([]float64, total)
	var next int64 = -1

	workers := cfg.concurrency()
	var wg sync.WaitGroup
	var firstErr atomic.Value
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= total {
					return
				}
				qi := i % nq
				t0 := time.Now()
				res, err := coll.Search(ds.Queries[qi], ds.K, nil)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				latencies[i] = time.Since(t0)
				recalls[i] = ds.Recall(qi, res)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, err
	}

	out := &WallClockResult{Queries: total}
	out.QPS = float64(total) / elapsed.Seconds()
	var recSum float64
	for _, r := range recalls {
		recSum += r
	}
	out.Recall = recSum / float64(total)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	out.P50 = latencies[total/2].Seconds()
	out.P99 = latencies[(total*99)/100].Seconds()
	return out, nil
}
