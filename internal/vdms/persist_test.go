package vdms

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/persist"
)

// durableConfig is a small, fast configuration for durability tests.
func durableConfig(t index.Type) Config {
	cfg := DefaultConfig()
	cfg.IndexType = t
	cfg.Parallelism = 2
	cfg.WALFsyncPolicy = 3 // always: every ack is on disk
	return cfg
}

// TestDurableRoundTrip inserts, deletes, flushes, crashes, recovers, and
// checks rows, stats, and exact per-id search hits.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(index.Flat)
	const dim, n = 8, 300
	vecs := randVecs(n, dim, 11)

	c, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := c.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(ids[:50]); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	pre := c.Stats()
	c.Crash()

	r, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	post := r.Stats()
	if post.Rows != pre.Rows || post.Rows != n-50 {
		t.Fatalf("recovered Rows = %d, want %d", post.Rows, pre.Rows)
	}
	if post.Tombstones != pre.Tombstones {
		t.Fatalf("recovered Tombstones = %d, want %d", post.Tombstones, pre.Tombstones)
	}
	// Every surviving vector is findable at distance zero; every deleted
	// one is gone.
	for i, id := range ids {
		hits, err := r.Search(vecs[i], 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i < 50 {
			if len(hits) > 0 && hits[0].ID == id && hits[0].Dist == 0 {
				t.Fatalf("deleted id %d still findable", id)
			}
			continue
		}
		if len(hits) == 0 || hits[0].ID != id || hits[0].Dist != 0 {
			t.Fatalf("id %d not recovered exactly: %+v", id, hits)
		}
	}
}

// TestDurableCheckpointTruncatesWAL verifies Checkpoint bounds the log
// and that recovery works from snapshot + empty suffix.
func TestDurableCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(index.Flat)
	const dim = 4
	c, err := OpenDurable(dir, cfg, linalg.L2, dim, 200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(randVecs(200, dim, 5)); err != nil {
		t.Fatal(err)
	}
	grew := c.Stats().WALBytes
	if grew == 0 {
		t.Fatal("WALBytes zero after 200 inserts")
	}
	// One generation of history is retained as a fallback, so the log
	// shrinks once the *second* checkpoint makes the first one "previous".
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.LastCheckpointLSN == 0 {
		t.Fatal("LastCheckpointLSN still zero after Checkpoint")
	}
	if st.WALBytes >= grew {
		t.Fatalf("WALBytes %d not reduced by checkpoints (was %d)", st.WALBytes, grew)
	}
	c.Crash()

	r, err := OpenDurable(dir, cfg, linalg.L2, dim, 200)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Stats().Rows; got != 200 {
		t.Fatalf("recovered Rows = %d, want 200", got)
	}
}

// TestDurableGracefulCloseKeepsUnsyncedTail: under SyncNever nothing is
// fsynced per-op, but Close checkpoints, so a graceful shutdown loses
// nothing — including unsealed growing rows.
func TestDurableGracefulCloseKeepsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(index.Flat)
	cfg.WALFsyncPolicy = 1 // never
	const dim = 4
	c, err := OpenDurable(dir, cfg, linalg.L2, dim, 1000)
	if err != nil {
		t.Fatal(err)
	}
	vecs := randVecs(37, dim, 6) // far below any seal threshold
	ids, err := c.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDurable(dir, cfg, linalg.L2, dim, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.Rows != 37 || st.GrowingRows != 37 {
		t.Fatalf("recovered Rows=%d GrowingRows=%d, want 37/37", st.Rows, st.GrowingRows)
	}
	hits, err := r.Search(vecs[3], 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].ID != ids[3] || hits[0].Dist != 0 {
		t.Fatalf("growing row not recovered: %+v", hits)
	}
}

// TestDurableCloseIdempotent: a second Close (the common defer + explicit
// pattern) must not fail against the already-closed WAL, and Close after
// Crash must not attempt a checkpoint.
func TestDurableCloseIdempotent(t *testing.T) {
	cfg := durableConfig(index.Flat)
	c, err := OpenDurable(t.TempDir(), cfg, linalg.L2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(randVecs(5, 4, 8)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close failed: %v", err)
	}
	crashed, err := OpenDurable(t.TempDir(), cfg, linalg.L2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	crashed.Crash()
	if err := crashed.Close(); err != nil {
		t.Fatalf("Close after Crash failed: %v", err)
	}
}

// TestDurableConfigMismatchRejected: recovery refuses silently different
// index configurations.
func TestDurableConfigMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(index.HNSW)
	const dim = 4
	c, err := OpenDurable(dir, cfg, linalg.L2, dim, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(randVecs(10, dim, 7)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenDurable(dir, cfg, linalg.L2, dim+1, 100); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := OpenDurable(dir, cfg, linalg.InnerProduct, dim, 100); err == nil {
		t.Fatal("metric mismatch accepted")
	}
	other := cfg
	other.IndexType = index.IVFFlat
	if _, err := OpenDurable(dir, other, linalg.L2, dim, 100); err == nil {
		t.Fatal("index type mismatch accepted")
	}
	seeded := cfg
	seeded.Build.Seed = 999
	if _, err := OpenDurable(dir, seeded, linalg.L2, dim, 100); err == nil {
		t.Fatal("build seed mismatch accepted")
	}
	// The matching configuration still opens.
	r, err := OpenDurable(dir, cfg, linalg.L2, dim, 100)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}

// TestMemoryCollectionUnaffected: a NewCollection collection has no WAL,
// zero persistence stats, and Checkpoint is a no-op.
func TestMemoryCollectionUnaffected(t *testing.T) {
	c, err := NewCollection(durableConfig(index.Flat), linalg.L2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Insert([][]float32{{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.WALBytes != 0 || st.LastCheckpointLSN != 0 {
		t.Fatalf("memory collection reports persistence stats: %+v", st)
	}
}

// TestRecoveryDeterminism is the recovery-determinism gate: an engine
// crashed mid-churn and recovered must answer SearchBatch bit-identically
// to the uninterrupted engine and agree on Rows/Tombstones/Segments — at
// workers=1 and workers=N, across index types.
func TestRecoveryDeterminism(t *testing.T) {
	const dim, n, k, queries = 8, 900, 10, 32
	for _, typ := range []index.Type{index.Flat, index.HNSW, index.IVFFlat} {
		for _, workers := range []int{1, 8} {
			for _, mode := range []string{"ckpt", "log"} {
				mode := mode
				t.Run(fmt.Sprintf("%v/workers=%d/%s", typ, workers, mode), func(t *testing.T) {
					cfg := durableConfig(typ)
					cfg.Parallelism = workers
					// Small segments so the workload seals several times and
					// deletes trigger compaction mid-run.
					cfg.SegmentMaxSize = 100
					cfg.SealProportion = 0.8

					vecs := randVecs(n, dim, 31)
					qs := randVecs(queries, dim, 32)

					dir := t.TempDir()
					live, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
					if err != nil {
						t.Fatal(err)
					}
					if mode == "log" {
						// Recovery must then rebuild compacted segments
						// from WAL commit records instead of snapshots.
						live.DisableAutoCheckpoint()
					}
					var ids []int64
					for off := 0; off < n; off += 90 {
						end := off + 90
						if end > n {
							end = n
						}
						got, err := live.Insert(vecs[off:end])
						if err != nil {
							t.Fatal(err)
						}
						ids = append(ids, got...)
						// Churn: delete a slice of the oldest live rows.
						if off > 0 && off%180 == 0 {
							if _, err := live.Delete(ids[off-60 : off-20]); err != nil {
								t.Fatal(err)
							}
						}
					}
					if err := live.Flush(); err != nil {
						t.Fatal(err)
					}
					preStats := live.Stats()
					preRes, err := live.SearchBatch(qs, k, nil)
					if err != nil {
						t.Fatal(err)
					}
					live.Crash()

					rec, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
					if err != nil {
						t.Fatal(err)
					}
					defer rec.Close()
					if err := rec.Flush(); err != nil {
						t.Fatal(err)
					}
					postStats := rec.Stats()
					if postStats.Rows != preStats.Rows ||
						postStats.Tombstones != preStats.Tombstones ||
						postStats.Sealed != preStats.Sealed ||
						postStats.GrowingRows != preStats.GrowingRows {
						t.Fatalf("recovered stats %+v, pre-crash %+v", postStats, preStats)
					}
					postRes, err := rec.SearchBatch(qs, k, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(preRes, postRes) {
						for i := range preRes {
							if !reflect.DeepEqual(preRes[i], postRes[i]) {
								t.Fatalf("query %d: pre-crash %v, recovered %v", i, preRes[i], postRes[i])
							}
						}
						t.Fatal("SearchBatch results differ after recovery")
					}
				})
			}
		}
	}
}

// TestRecoveryDeterminismAcrossWorkers: the recovered state is identical
// whether recovery (and the original run) used 1 worker or N.
func TestRecoveryDeterminismAcrossWorkers(t *testing.T) {
	const dim, n, k = 8, 400, 5
	run := func(workers int) [][]linalg.Neighbor {
		cfg := durableConfig(index.HNSW)
		cfg.Parallelism = workers
		cfg.SegmentMaxSize = 100
		cfg.SealProportion = 0.8
		vecs := randVecs(n, dim, 77)
		qs := randVecs(16, dim, 78)
		dir := t.TempDir()
		c, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := c.Insert(vecs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Delete(ids[100:160]); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		c.Crash()
		r, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		res, err := r.SearchBatch(qs, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if !reflect.DeepEqual(run(1), run(8)) {
		t.Fatal("recovered results differ between workers=1 and workers=8")
	}
}

// TestWALFilesBounded: checkpoints keep at most two snapshot generations
// and the WAL files they need.
func TestWALFilesBounded(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(index.Flat)
	c, err := OpenDurable(dir, cfg, linalg.L2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := c.Insert(randVecs(20, 4, int64(9+i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot/WAL files live under the (single) shard's subdirectory.
	snaps, wals := 0, 0
	ents, err := os.ReadDir(persist.ShardDir(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		switch filepath.Ext(e.Name()) {
		case ".snap":
			snaps++
		case ".wal":
			wals++
		}
	}
	if snaps > 2 {
		t.Fatalf("%d snapshots retained, want <= 2", snaps)
	}
	if wals > 3 {
		t.Fatalf("%d WAL files retained, want <= 3", wals)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
