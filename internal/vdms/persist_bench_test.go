package vdms

import (
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
)

// BenchmarkRecovery measures OpenDurable on a crashed data directory: a
// seeded churn workload (inserts, deletes, seals, compaction) is run
// once, and each iteration recovers the full state — snapshot load, WAL
// suffix replay, deterministic index rebuilds. Part of the committed
// BENCH_query.json trajectory via `make bench-json`.
func BenchmarkRecovery(b *testing.B) {
	const dim, n = 16, 2000
	cfg := DefaultConfig()
	cfg.IndexType = index.HNSW
	cfg.Parallelism = 4
	cfg.WALFsyncPolicy = 3
	cfg.SegmentMaxSize = 100
	cfg.SealProportion = 0.8
	dir := b.TempDir()
	c, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
	if err != nil {
		b.Fatal(err)
	}
	vecs := randVecs(n, dim, 7)
	ids, err := c.Insert(vecs)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Delete(ids[:n/5]); err != nil {
		b.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	c.Crash()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		r.Crash()
		b.StartTimer()
	}
}
