package vdms

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/persist"
)

// Online-reconfiguration tests: hot swaps under churn, cold migrations'
// bit-identity against fresh builds, live resharding, and the
// generation-versioned durable layout.

// searchAll runs one SearchBatch over the collection and fails the test
// on error.
func searchAll(t *testing.T, c *Collection, queries [][]float32, k int) [][]linalg.Neighbor {
	t.Helper()
	res, err := c.SearchBatch(queries, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestReconfigureHotSwap: a hot-knob change lands atomically — the new
// generation is visible in Config and Stats, the WAL policy is pushed
// into open logs, and nothing about the stored data changes.
func TestReconfigureHotSwap(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(index.IVFFlat)
	cfg.Build.NList = 8
	cfg.Search.NProbe = 8
	const dim, n = 8, 400
	c, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vecs := randVecs(n, dim, 3)
	if _, err := c.Insert(vecs); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	next := cfg
	next.Search.NProbe = 2
	next.WALFsyncPolicy = 1
	next.CompactionTriggerRatio = 0.5
	gen, err := c.Reconfigure(next)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("generation = %d, want 1", gen)
	}
	if got := c.Config().Search.NProbe; got != 2 {
		t.Fatalf("active nprobe = %d, want 2", got)
	}
	st := c.Stats()
	if st.ConfigGeneration != 1 || st.IndexType != index.IVFFlat || st.ShardCount != 1 || st.MigrationInProgress {
		t.Fatalf("stats = %+v", st)
	}
	// The narrower probe must actually drive the search path: nprobe=2
	// reads fewer cells than nprobe=8.
	queries := randVecs(16, dim, 4)
	var wide, narrow index.Stats
	if _, err := c.SearchBatch(queries, 5, &narrow); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SearchBatch(queries, 5, &wide); err != nil {
		t.Fatal(err)
	}
	if narrow.DistComps >= wide.DistComps {
		t.Fatalf("nprobe=2 scanned %d candidates, nprobe=8 scanned %d — hot swap did not reach the search path", narrow.DistComps, wide.DistComps)
	}
	// Writes after the swap still honor durability (policy never: ack
	// without fsync) and recover via the shutdown checkpoint.
	if _, err := c.Insert(randVecs(10, dim, 5)); err != nil {
		t.Fatal(err)
	}
}

// TestReconfigureRejectsOutOfRange: Reconfigure runs the shared range
// validation.
func TestReconfigureRejectsOutOfRange(t *testing.T) {
	c, err := NewCollection(flatConfig(1), linalg.L2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bad := flatConfig(1)
	bad.Parallelism = 64
	if _, err := c.Reconfigure(bad); err == nil {
		t.Fatal("out-of-range parallelism accepted")
	}
	bad = flatConfig(1)
	bad.ShardCount = 99
	if _, err := c.Reconfigure(bad); err == nil {
		t.Fatal("out-of-range shard count accepted")
	}
}

// TestHotSwapUnderChurn: concurrent inserts and batched searches ride
// across many hot swaps with zero errors.
func TestHotSwapUnderChurn(t *testing.T) {
	cfg := flatConfig(2)
	const dim = 8
	c, err := NewCollection(cfg, linalg.L2, dim, 4000)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Insert(randVecs(200, dim, 1)); err != nil {
		t.Fatal(err)
	}
	queries := randVecs(8, dim, 2)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		seed := int64(10)
		for !stop.Load() {
			if _, err := c.Insert(randVecs(20, dim, seed)); err != nil {
				errCh <- err
				return
			}
			seed++
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := c.SearchBatch(queries, 5, nil); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		next := cfg
		next.Parallelism = 1 + i%4
		next.GracefulTime = float64(100 * (1 + i%10))
		next.CompactionTriggerRatio = 0.1 + 0.1*float64(i%5)
		if _, err := c.Reconfigure(next); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("churn op failed during hot swaps: %v", err)
	default:
	}
	if got := c.Stats().ConfigGeneration; got != 50 {
		t.Fatalf("generation = %d, want 50", got)
	}
}

// TestMigrateBitIdenticalToFreshBuild: migrating a quiesced collection to
// a new cold shape (index type change, shard count change) yields
// SearchBatch results bit-identical to a collection freshly built at the
// target configuration from the same rows.
func TestMigrateBitIdenticalToFreshBuild(t *testing.T) {
	const dim, n, k = 8, 1200, 10
	vecs := randVecs(n, dim, 7)
	queries := randVecs(24, dim, 8)

	from := flatConfig(1)
	target := from
	target.IndexType = index.HNSW
	target.Build.HNSWM = 8
	target.Build.EfConstruction = 40
	target.Search.Ef = 32
	target.ShardCount = 4

	for _, metric := range []linalg.Metric{linalg.L2, linalg.Angular} {
		t.Run(fmt.Sprint(metric), func(t *testing.T) {
			c, err := NewCollection(from, metric, dim, n)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Insert(vecs); err != nil {
				t.Fatal(err)
			}
			gen, err := c.Reconfigure(target)
			if err != nil {
				t.Fatal(err)
			}
			if gen != 1 {
				t.Fatalf("generation = %d, want 1", gen)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			st := c.Stats()
			if st.ShardCount != 4 || st.IndexType != index.HNSW || st.Rows != n {
				t.Fatalf("post-migration stats = %+v", st)
			}

			fresh, err := NewCollection(target, metric, dim, n)
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Close()
			if _, err := fresh.Insert(vecs); err != nil {
				t.Fatal(err)
			}
			if err := fresh.Flush(); err != nil {
				t.Fatal(err)
			}

			got := searchAll(t, c, queries, k)
			want := searchAll(t, fresh, queries, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("migrated collection's results differ from a fresh build at the target config")
			}
		})
	}
}

// TestMigrateReshardWithDeletes: a 4→2 reshard of a churned (insert +
// delete) FLAT collection preserves the exact live id/vector set.
func TestMigrateReshardWithDeletes(t *testing.T) {
	const dim, n, k = 8, 900, 10
	vecs := randVecs(n, dim, 21)
	queries := randVecs(16, dim, 22)
	c, err := NewCollection(flatConfig(4), linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runChurn(t, c, vecs)
	before := searchAll(t, c, queries, k)
	rowsBefore := c.Stats().Rows

	target := flatConfig(2)
	if _, err := c.Reconfigure(target); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ShardCount != 2 || st.Rows != rowsBefore {
		t.Fatalf("post-reshard stats = %+v, want 2 shards, %d rows", st, rowsBefore)
	}
	after := searchAll(t, c, queries, k)
	// FLAT scans are exact and tombstones were dropped in the move, so
	// the result lists must be identical.
	if !reflect.DeepEqual(before, after) {
		t.Fatal("reshard changed FLAT search results")
	}
}

// TestMigrateDurableReshardUnderChurn is the acceptance scenario: a
// durable shard_count 1→4 reshard while concurrent inserts, deletes, and
// batched searches keep running — zero errors, every acknowledged write
// survives into the new generation, and a reopen recovers it.
func TestMigrateDurableReshardUnderChurn(t *testing.T) {
	dir := t.TempDir()
	cfg := flatConfig(1)
	cfg.WALFsyncPolicy = 3
	const dim = 8
	c, err := OpenDurable(dir, cfg, linalg.L2, dim, 4000)
	if err != nil {
		t.Fatal(err)
	}
	baseIDs, err := c.Insert(randVecs(500, dim, 31))
	if err != nil {
		t.Fatal(err)
	}
	queries := randVecs(8, dim, 32)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	var churnMu sync.Mutex
	var churnIDs []int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		seed := int64(100)
		for !stop.Load() {
			ids, err := c.Insert(randVecs(25, dim, seed))
			if err != nil {
				errCh <- err
				return
			}
			churnMu.Lock()
			churnIDs = append(churnIDs, ids...)
			churnMu.Unlock()
			seed++
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for !stop.Load() {
			if _, err := c.SearchBatch(queries, 5, nil); err != nil {
				errCh <- err
				return
			}
			if i%7 == 0 {
				if _, err := c.Delete([]int64{baseIDs[i%len(baseIDs)]}); err != nil {
					errCh <- err
					return
				}
			}
			i++
		}
	}()

	target := cfg
	target.ShardCount = 4
	gen, err := c.Reconfigure(target)
	if err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("churn op failed during reshard: %v", err)
	default:
	}
	if gen != 1 {
		t.Fatalf("generation = %d, want 1", gen)
	}
	st := c.Stats()
	if st.ShardCount != 4 {
		t.Fatalf("shard count = %d, want 4", st.ShardCount)
	}

	// Every insert acknowledged after the cutover must be in the new
	// shape; spot-check the newest churn ids by exact-match search.
	churnMu.Lock()
	tail := append([]int64(nil), churnIDs...)
	churnMu.Unlock()
	rows := c.Stats().Rows
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: only the new generation's layout exists; the old cfg is
	// refused (wrong shard count) with a pointer at Reconfigure.
	if _, err := OpenDurable(dir, cfg, linalg.L2, dim, 4000); err == nil {
		t.Fatal("stale shard count accepted after reshard")
	}
	r, err := OpenDurable(dir, target, linalg.L2, dim, 4000)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Stats().Rows; got != rows {
		t.Fatalf("recovered %d rows, want %d", got, rows)
	}
	if got := len(tail); got > 0 {
		// The recovered collection must route the churn ids' vectors to
		// hits under the new sharding (smoke: search a few live rows).
		res, err := r.Search(queries[0], 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 {
			t.Fatal("recovered collection returned no results")
		}
	}
	man, err := persist.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Generation != 1 || man.Shards != 4 {
		t.Fatalf("manifest = %+v, want generation 1, 4 shards", man)
	}
}

// TestMigrateDurableMatchesRecovery: after a durable migration, closing
// and reopening at the new config yields the same SearchBatch results the
// live migrated collection served (the migration's on-disk layout is
// complete and deterministic).
func TestMigrateDurableMatchesRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(index.Flat)
	const dim, n, k = 8, 600, 10
	c, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	vecs := randVecs(n, dim, 41)
	runChurn(t, c, vecs)

	target := cfg
	target.IndexType = index.HNSW
	target.Build.HNSWM = 8
	target.Build.EfConstruction = 40
	target.Search.Ef = 48
	target.ShardCount = 3
	if _, err := c.Reconfigure(target); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	queries := randVecs(12, dim, 42)
	live := searchAll(t, c, queries, k)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDurable(dir, target, linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rec := searchAll(t, r, queries, k)
	if !reflect.DeepEqual(live, rec) {
		t.Fatal("recovered migrated collection differs from the live one")
	}
}
