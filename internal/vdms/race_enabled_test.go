//go:build race

package vdms

// raceEnabled reports whether the race detector is compiled in; the
// alloc-gate assertions are skipped under -race because instrumentation
// allocates on paths that are allocation-free in normal builds.
const raceEnabled = true
