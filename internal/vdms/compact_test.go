package vdms

import (
	"testing"
	"time"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
)

// churnCollection builds a collection with 4 sealed segments of 250 rows
// and then deletes every other id, returning the collection, the inserted
// vectors, and the ids.
func churnCollection(t *testing.T, cfg Config) (*Collection, [][]float32, []int64) {
	t.Helper()
	coll, err := NewCollection(cfg, linalg.L2, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coll.Close() })
	vecs := randVecs(1000, 8, 42)
	ids, err := coll.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	var dead []int64
	for i := 0; i < len(ids); i += 2 {
		dead = append(dead, ids[i])
	}
	if n, err := coll.Delete(dead); err != nil || n != len(dead) {
		t.Fatalf("Delete = %d, %v; want %d", n, err, len(dead))
	}
	// Quiesce any compaction the deletes triggered.
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	return coll, vecs, ids
}

// searchWork measures the distance-computation work of one query.
func searchWork(t *testing.T, coll *Collection, q []float32, k int) int64 {
	t.Helper()
	var st index.Stats
	if _, err := coll.Search(q, k, &st); err != nil {
		t.Fatal(err)
	}
	return st.DistComps + st.CodeComps
}

func TestCompactionReclaimsChurn(t *testing.T) {
	coll, err := NewCollection(liveConfig(), linalg.L2, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	vecs := randVecs(1000, 8, 42)
	ids, err := coll.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	fullStats := coll.Stats()
	fullWork := searchWork(t, coll, vecs[1], 10)

	// Mass delete: every other id. The deletes trigger background
	// compaction; Flush quiesces it.
	var dead []int64
	for i := 0; i < len(ids); i += 2 {
		dead = append(dead, ids[i])
	}
	if n, err := coll.Delete(dead); err != nil || n != len(dead) {
		t.Fatalf("Delete = %d, %v; want %d", n, err, len(dead))
	}
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}

	st := coll.Stats()
	// All tombstones must be garbage-collected: the over-fetch margin
	// (k + Tombstones) no longer scales with the all-time delete count.
	if st.Tombstones != 0 {
		t.Fatalf("tombstones = %d after compaction, want 0 (all GC'd)", st.Tombstones)
	}
	if st.Rows != 500 {
		t.Fatalf("live rows = %d, want 500", st.Rows)
	}
	if st.ReclaimedRows != 500 {
		t.Fatalf("reclaimed rows = %d, want 500", st.ReclaimedRows)
	}
	if st.CompactionPasses == 0 || st.CompactedSegments == 0 {
		t.Fatalf("compaction counters empty: %+v", st)
	}
	// The footprint must shrink below the pre-delete (== uncompacted,
	// since tombstones free nothing) level.
	if st.MemoryBytes >= fullStats.MemoryBytes {
		t.Fatalf("memory not reclaimed: %d >= pre-delete %d", st.MemoryBytes, fullStats.MemoryBytes)
	}
	// Per-search scanned work must shrink with the corpus, not grow with
	// the delete history.
	if afterWork := searchWork(t, coll, vecs[1], 10); afterWork >= fullWork {
		t.Fatalf("search work after compaction %d >= pre-delete %d", afterWork, fullWork)
	}

	// Results stay correct: live vectors findable, deleted ids absent.
	for _, probe := range []int{1, 501, 999} {
		res, err := coll.Search(vecs[probe], 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 5 {
			t.Fatalf("probe %d returned %d results, want 5", probe, len(res))
		}
		if res[0].ID != ids[probe] {
			t.Fatalf("probe %d: self-search top hit %+v, want id %d", probe, res[0], ids[probe])
		}
		for _, r := range res {
			if r.ID%2 == 0 {
				t.Fatalf("deleted id %d returned after compaction", r.ID)
			}
		}
	}

	// Compact on a quiesced collection is a cheap no-op.
	if err := coll.Compact(); err != nil {
		t.Fatal(err)
	}
	if s := coll.Stats(); s.Sealed != st.Sealed || s.Rows != 500 {
		t.Fatalf("idempotent Compact changed state: %+v -> %+v", st, s)
	}
}

func TestCompactionDeterministicAcrossWorkers(t *testing.T) {
	// workers=1 and workers=N must produce bit-identical sealed segments
	// and search results.
	mk := func(parallelism, compactWorkers int) *Collection {
		cfg := liveConfig()
		cfg.Parallelism = parallelism
		cfg.CompactionParallelism = compactWorkers
		coll, _, _ := churnCollection(t, cfg)
		if err := coll.Compact(); err != nil {
			t.Fatal(err)
		}
		return coll
	}
	a := mk(1, 1)
	b := mk(8, 8)

	// These collections run at the default shard_count of 1; compare the
	// single shard's sealed layout directly.
	a.shards[0].mu.RLock()
	bSegs := b.shards[0].sealed
	aSegs := a.shards[0].sealed
	a.shards[0].mu.RUnlock()
	if len(aSegs) != len(bSegs) {
		t.Fatalf("segment layouts differ: %d vs %d", len(aSegs), len(bSegs))
	}
	for i := range aSegs {
		if len(aSegs[i].ids) != len(bSegs[i].ids) {
			t.Fatalf("segment %d sizes differ: %d vs %d", i, len(aSegs[i].ids), len(bSegs[i].ids))
		}
		for j := range aSegs[i].ids {
			if aSegs[i].ids[j] != bSegs[i].ids[j] {
				t.Fatalf("segment %d id %d differs: %d vs %d", i, j, aSegs[i].ids[j], bSegs[i].ids[j])
			}
		}
		if aSegs[i].idx.MemoryBytes() != bSegs[i].idx.MemoryBytes() {
			t.Fatalf("segment %d index sizes differ", i)
		}
	}

	queries := randVecs(20, 8, 77)
	var stA, stB index.Stats
	resA, err := a.SearchBatch(queries, 7, &stA)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := b.SearchBatch(queries, 7, &stB)
	if err != nil {
		t.Fatal(err)
	}
	if stA != stB {
		t.Fatalf("search work differs: %+v vs %+v", stA, stB)
	}
	for qi := range resA {
		if len(resA[qi]) != len(resB[qi]) {
			t.Fatalf("query %d result lengths differ", qi)
		}
		for j := range resA[qi] {
			if resA[qi][j] != resB[qi][j] {
				t.Fatalf("query %d result %d differs: %+v vs %+v", qi, j, resA[qi][j], resB[qi][j])
			}
		}
	}
}

func TestCompactionMergesUndersizedSegments(t *testing.T) {
	// sealRows = 512*0.25*400/512 = 100; three 30-row flushes create three
	// undersized sealed segments that the compactor must merge into one.
	coll, err := NewCollection(liveConfig(), linalg.L2, 8, 400)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	var all [][]float32
	var ids []int64
	for round := 0; round < 3; round++ {
		vecs := randVecs(30, 8, int64(round))
		got, err := coll.Insert(vecs)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, vecs...)
		ids = append(ids, got...)
		if err := coll.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := coll.Compact(); err != nil {
		t.Fatal(err)
	}
	st := coll.Stats()
	if st.Sealed != 1 {
		t.Fatalf("merge left %d sealed segments, want 1 (%+v)", st.Sealed, st)
	}
	if st.Rows != 90 || st.GrowingRows != 0 {
		t.Fatalf("rows after merge: %+v", st)
	}
	if st.CompactedSegments < 2 {
		t.Fatalf("merge consumed %d segments, want >= 2", st.CompactedSegments)
	}
	for probe := 0; probe < len(all); probe += 13 {
		res, err := coll.Search(all[probe], 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].ID != ids[probe] {
			t.Fatalf("probe %d lost after merge: %+v, want id %d", probe, res, ids[probe])
		}
	}
}

func TestDeleteReclaimedIDsStayDeleted(t *testing.T) {
	// Deleting a growing row physically removes it and GCs its tombstone
	// at once; a re-delete of the same id must still count 0.
	coll, err := NewCollection(liveConfig(), linalg.L2, 8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	ids, err := coll.Insert(randVecs(30, 8, 11))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := coll.Delete(ids[:10]); n != 10 {
		t.Fatalf("Delete = %d, want 10", n)
	}
	if d := coll.Deleted(); d != 0 {
		t.Fatalf("growing deletes left %d tombstones, want 0 (physically removed)", d)
	}
	if n, _ := coll.Delete(ids[:10]); n != 0 {
		t.Fatalf("re-delete of reclaimed growing ids counted %d, want 0", n)
	}
	if st := coll.Stats(); st.Rows != 20 || st.GrowingRows != 20 {
		t.Fatalf("stats after growing delete: %+v", st)
	}

	// Same invariant through the sealed + compacted path.
	sealed, _, sids := churnCollection(t, liveConfig())
	if d := sealed.Deleted(); d != 0 {
		t.Fatalf("tombstones = %d after compaction, want 0", d)
	}
	var again []int64
	for i := 0; i < len(sids); i += 2 {
		again = append(again, sids[i])
	}
	if n, _ := sealed.Delete(again); n != 0 {
		t.Fatalf("re-delete of compacted-away ids counted %d, want 0", n)
	}
	if st := sealed.Stats(); st.Rows != 500 {
		t.Fatalf("re-delete changed live rows: %+v", st)
	}
}

func TestSearchDimMismatch(t *testing.T) {
	// Regression: Search used to panic (index out of range inside the
	// distance kernel) on a wrong-dimension query; it must return the same
	// validation error SearchBatch does.
	coll, err := NewCollection(liveConfig(), linalg.L2, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	if _, err := coll.Insert(randVecs(300, 8, 13)); err != nil {
		t.Fatal(err)
	}
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]float32{nil, {1, 2}, make([]float32, 9)} {
		if _, err := coll.Search(q, 3, nil); err == nil {
			t.Fatalf("Search accepted dim-%d query on dim-8 collection", len(q))
		}
	}
	// Valid queries still work.
	if _, err := coll.Search(make([]float32, 8), 3, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloseWaitsForInFlightBuilds(t *testing.T) {
	// Regression for the Close race: an Insert landing between Close's
	// build-wait and its closed=true used to spawn a background build that
	// Close never waited for. Close now sets closed first, so after it
	// returns no build can be in flight and the segment layout is frozen.
	for iter := 0; iter < 8; iter++ {
		coll, err := NewCollection(liveConfig(), linalg.L2, 8, 100) // sealRows = 48
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func(seed int64) {
			defer close(done)
			for i := 0; ; i++ {
				if _, err := coll.Insert(randVecs(48, 8, seed+int64(i))); err != nil {
					return // collection closed
				}
			}
		}(int64(1000 * iter))
		time.Sleep(time.Millisecond)
		if err := coll.Close(); err != nil {
			t.Fatal(err)
		}
		<-done
		st := coll.Stats()
		if st.Sealing != 0 {
			t.Fatalf("Close returned with %d builds still in flight", st.Sealing)
		}
		time.Sleep(2 * time.Millisecond)
		if st2 := coll.Stats(); st2.Sealed != st.Sealed || st2.Sealing != 0 {
			t.Fatalf("segment layout changed after Close: %+v -> %+v", st, st2)
		}
	}
}
