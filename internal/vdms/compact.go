package vdms

import (
	"fmt"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
)

// The background compactors. Milvus bounds delete-heavy workloads with two
// compaction flavors — single-segment compaction (drop rows past a
// tombstone ratio) and merge compaction (coalesce undersized segments) —
// and this file implements both, per shard:
//
//   - a sealed segment whose tombstone ratio reaches
//     Config.CompactionTriggerRatio is rewritten: live rows are kept, the
//     index is rebuilt, deleted rows are physically dropped;
//   - runs of undersized sealed segments (live rows below the seal
//     threshold) are merged into full ones, up to
//     Config.CompactionMergeFanIn sources and one seal budget per new
//     segment;
//   - tombstones whose rows were dropped are garbage-collected, restoring
//     the bounded search over-fetch (k + live tombstones).
//
// Every shard runs its own compactor under its own lock, so a pass
// rewriting one shard's segments never blocks writes or searches on
// another. One pass plans deterministically under the shard lock (sealed
// segments are kept in seq order), executes its rewrite/merge tasks on a
// parallel.Parallel pool of Config.CompactionParallelism workers, and
// commits results in plan order. New segments take fresh seqs assigned at
// plan time and index-build seeds derived from them, so workers=1 and
// workers=N produce bit-identical segments and search results. A pass
// loops until no trigger fires; at most one pass runs per shard at a
// time.

// compactTask rewrites (one source) or merges (several sources, in seq
// order) sealed segments into at most one new segment.
type compactTask struct {
	sources []*sealedSegment
}

// compactInput is a task's gathered build input: the sources' live rows in
// id order (one fresh arena), plus the tombstoned ids being physically
// dropped.
type compactInput struct {
	store   *linalg.Matrix
	ids     []int64
	dropped []int64
}

// planCompactionLocked selects the current pass's tasks. Callers hold
// s.mu. The plan depends only on the sealed-segment state (seq-ordered)
// and the tombstone set, so it is deterministic for a given call sequence.
func (s *shard) planCompactionLocked() []compactTask {
	cfg := s.config()
	trigger := cfg.compactionTriggerRatio()
	fanIn := cfg.compactionMergeFanIn()
	var tasks []compactTask
	rewriting := make(map[*sealedSegment]bool)
	// (a) rewrite tombstone-heavy segments.
	for _, seg := range s.sealed {
		if seg.noCompact {
			continue
		}
		if seg.dead > 0 && float64(seg.dead) >= trigger*float64(len(seg.ids)) {
			tasks = append(tasks, compactTask{sources: []*sealedSegment{seg}})
			rewriting[seg] = true
		}
	}
	// (b) merge runs of undersized segments (live rows below the seal
	// threshold) into full ones, up to fanIn sources and one seal budget
	// per group. Only groups of >= 2 become tasks, so a lone partial tail
	// is left alone instead of being rewritten for nothing.
	var group []*sealedSegment
	groupLive := 0
	flush := func() {
		if len(group) >= 2 {
			tasks = append(tasks, compactTask{sources: group})
		}
		group = nil
		groupLive = 0
	}
	for _, seg := range s.sealed {
		if rewriting[seg] || seg.noCompact {
			continue
		}
		live := len(seg.ids) - seg.dead
		if live >= s.sealRows {
			continue
		}
		if len(group) == fanIn || groupLive+live > s.sealRows {
			flush()
		}
		group = append(group, seg)
		groupLive += live
	}
	flush()
	return tasks
}

// gatherLocked snapshots a task's build input, copying the sources' live
// rows into one fresh arena. Callers hold s.mu.
func (s *shard) gatherLocked(t compactTask) compactInput {
	total := 0
	for _, seg := range t.sources {
		total += len(seg.ids) - seg.dead
	}
	in := compactInput{store: linalg.NewMatrix(s.dim, total)}
	for _, seg := range t.sources {
		for i, id := range seg.ids {
			if _, dead := s.tombstones[id]; dead {
				in.dropped = append(in.dropped, id)
				continue
			}
			in.store.AppendRow(seg.store.Row(i))
			in.ids = append(in.ids, id)
		}
	}
	// Sources are visited in seq order, which is not id order once
	// segments have been compacted before; canonicalize.
	index.SortRowsByID(in.store, in.ids)
	return in
}

// buildCompacted builds the replacement segment for one task outside the
// lock. A task whose rows are all dead yields (nil, nil): the sources are
// simply dropped.
func buildCompacted(cfg Config, metric linalg.Metric, dim int, in compactInput, seq int64) (*sealedSegment, error) {
	if len(in.ids) == 0 {
		return nil, nil
	}
	m := metric
	if m == linalg.Angular {
		m = linalg.L2 // inputs were normalized on insert
	}
	idx, err := newSegmentIndex(cfg, m, dim, seq)
	if err == nil {
		err = idx.Build(in.store, in.ids)
	}
	if err != nil {
		return nil, err
	}
	return &sealedSegment{seq: seq, store: in.store, ids: in.ids, idx: idx}, nil
}

// maybeCompactLocked starts a background compaction pass when a trigger
// fires and no pass is already running on this shard. Callers hold s.mu.
func (s *shard) maybeCompactLocked() {
	if s.compacting || s.closed {
		return
	}
	if len(s.planCompactionLocked()) == 0 {
		return
	}
	s.compacting = true
	s.compactDone = make(chan struct{})
	go s.compactPass()
}

// compactPass is one shard's compactor goroutine: it loops plan → execute
// → commit until no trigger fires (or the shard closes), then signals
// completion. Source segments stay searchable until their replacement is
// committed, and searches are unaffected throughout — dropped rows were
// already tombstone-filtered.
func (s *shard) compactPass() {
	for {
		s.mu.Lock()
		var plan []compactTask
		if !s.closed {
			plan = s.planCompactionLocked()
		}
		if len(plan) == 0 {
			s.compacting = false
			close(s.compactDone)
			s.mu.Unlock()
			return
		}
		cfg := *s.config()
		metric, dim := s.metric, s.dim
		inputs := make([]compactInput, len(plan))
		seqs := make([]int64, len(plan))
		for i, t := range plan {
			inputs[i] = s.gatherLocked(t)
			seqs[i] = s.sealSeq
			s.sealSeq++
		}
		s.mu.Unlock()

		segs := make([]*sealedSegment, len(plan))
		errs := make([]error, len(plan))
		parallel.Parallel(cfg.compactionParallelism(), len(plan), func(i int) {
			segs[i], errs[i] = buildCompacted(cfg, metric, dim, inputs[i], seqs[i])
		})

		s.mu.Lock()
		committed := false
		for i, t := range plan {
			if errs[i] != nil {
				err := errs[i]
				s.buildErrOnce.Do(func() { s.buildErr = err })
				// Sources stay in place, still searchable, but are
				// excluded from future plans: re-planning would select
				// the same deterministic failure forever and hang
				// Flush/Close in waitCompactions.
				for _, seg := range t.sources {
					seg.noCompact = true
				}
				continue
			}
			committed = true
			if s.wal != nil {
				// Log the commit at its position in the operation order:
				// sources, the replacement's seq (deriving its build
				// seed), the surviving ids, and the physically dropped
				// ones. Replay rebuilds the identical segment from these.
				srcSeqs := make([]int64, len(t.sources))
				for j, seg := range t.sources {
					srcSeqs[j] = seg.seq
				}
				if _, err := s.wal.AppendCompactCommit(seqs[i], srcSeqs, inputs[i].ids, inputs[i].dropped); err != nil {
					err := fmt.Errorf("vdms: logging compaction commit: %w", err)
					s.buildErrOnce.Do(func() { s.buildErr = err })
				}
			}
			s.removeSealedLocked(t.sources)
			if ns := segs[i]; ns != nil {
				// Deletes may have landed on rows gathered as live.
				for _, id := range ns.ids {
					if _, dead := s.tombstones[id]; dead {
						ns.dead++
					}
				}
				s.insertSealedLocked(ns)
			}
			// The dropped rows exist nowhere anymore (ids are never
			// reused): their tombstones are garbage.
			for _, id := range inputs[i].dropped {
				delete(s.tombstones, id)
			}
			s.compactedSegments += int64(len(t.sources))
			s.reclaimedRows += int64(len(inputs[i].dropped))
		}
		s.compactionPasses++
		autoCkpt := !s.noAutoCkpt
		var lsn uint64
		if s.wal != nil {
			lsn = s.wal.LastLSN()
		}
		s.mu.Unlock()
		if committed && s.wal != nil {
			// Commit records get exactly the durability the fsync policy
			// gives client writes. Under SyncAlways that makes them
			// crash-proof immediately, which is what the bit-identical
			// recovery guarantee rests on: an unsynced commit lost to a
			// crash would let recovery re-plan the compaction with fresh
			// sequence numbers (and so different index build seeds) than
			// the pre-crash engine used. Under the lazier policies the
			// records ride the next group-commit or checkpoint, and a
			// crash may rewind the compaction — consistent with those
			// policies' weaker contract, where the unsynced tail of
			// client writes is lost the same way.
			if err := s.wal.Commit(lsn); err != nil {
				// Surface the durability failure the way append failures
				// are: silently dropping it would let a crash rewind the
				// compaction with no diagnostic.
				err := fmt.Errorf("vdms: committing compaction log records: %w", err)
				s.buildErrOnce.Do(func() { s.buildErr = err })
			}
			if autoCkpt {
				// Checkpoint after every committed pass: the snapshot
				// absorbs the rewritten segments and this shard's WAL
				// truncates to the churn since. A checkpoint failure
				// costs only log length — the commit records are in the
				// WAL, and the next checkpoint (or Close's) retries — so
				// it is deliberately not fatal here.
				_ = s.checkpoint()
			}
		}
	}
}

// removeSealedLocked drops the given segments from s.sealed. Callers hold
// s.mu.
func (s *shard) removeSealedLocked(drop []*sealedSegment) {
	dropping := make(map[*sealedSegment]bool, len(drop))
	for _, seg := range drop {
		dropping[seg] = true
	}
	keep := s.sealed[:0]
	for _, seg := range s.sealed {
		if !dropping[seg] {
			keep = append(keep, seg)
		}
	}
	for i := len(keep); i < len(s.sealed); i++ {
		s.sealed[i] = nil
	}
	s.sealed = keep
}

// Compact synchronously runs compaction to quiescence on every shard: it
// triggers a pass wherever any segment warrants one and blocks until all
// compactors go idle. It returns the first background error, if any.
// Searches remain served throughout; shards compact independently.
func (c *Collection) Compact() error {
	if c.closed.Load() {
		return fmt.Errorf("vdms: collection closed")
	}
	c.router.RLock()
	defer c.router.RUnlock()
	for _, s := range c.shards {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return fmt.Errorf("vdms: collection closed")
		}
		s.maybeCompactLocked()
		s.mu.Unlock()
	}
	for _, s := range c.shards {
		s.waitCompactions()
	}
	for _, s := range c.shards {
		if err := s.getBuildErr(); err != nil {
			return err
		}
	}
	return nil
}

// waitCompactions blocks until no compaction pass is running on this
// shard. It tolerates passes started while it waits (each pass closes its
// own done channel).
func (s *shard) waitCompactions() {
	s.mu.Lock()
	for s.compacting {
		done := s.compactDone
		s.mu.Unlock()
		<-done
		s.mu.Lock()
	}
	s.mu.Unlock()
}
