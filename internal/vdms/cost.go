package vdms

import "vdtuner/internal/index"

// The simulated clock. Every index operation reports work counts
// (index.Stats); this file converts work into deterministic nanoseconds.
// Constants are calibrated so that a mid-sized configuration lands in the
// latency/QPS regime the paper reports, but only the *relative* shape of
// the surface matters for tuning; see DESIGN.md.
const (
	// nsPerFullDim is the cost of one dimension of a full-precision
	// distance computation (inflated relative to real silicon so that
	// compute dominates fixed overheads at the scaled-down corpus size).
	nsPerFullDim = 3.0
	// nsPerCodeDim is the cost of one dimension of a quantized-domain
	// computation (byte-wide traffic).
	nsPerCodeDim = 1.35
	// nsPerLookup is the cost of one PQ ADC table lookup.
	nsPerLookup = 1.8
	// nsSegmentDispatch is the per-segment task dispatch overhead of the
	// query pipeline.
	nsSegmentDispatch = 8_000
	// cacheMissPenalty scales candidate access cost when cache is cold:
	// multiplier is 1 + cacheMissPenalty*(1-cacheRatio).
	cacheMissPenalty = 1.5
	// parallelCoordCost is the coordination overhead fraction added per
	// worker (Amdahl-style diminishing returns).
	parallelCoordCost = 0.02
	// simBuildFactor stretches build work into "server minutes" so that
	// build cost matters the way it does in the paper's testbed (index
	// rebuilds dominate tuning time, Table VI).
	simBuildFactor = 60.0
	// ingestFraction is the steady-state insert rate of the modeled
	// workload, as a fraction of the corpus per second. It drives the
	// consistency and flush models.
	ingestFraction = 0.002
	// replayTimeoutSec mirrors the paper's 15-minute replay limit; a
	// configuration whose simulated replay exceeds it is failed.
	replayTimeoutSec = 900.0
	// memBudgetMultiple caps memory at this multiple of the raw corpus
	// size (standing in for the testbed's 125 GB); beyond it the
	// configuration fails with OOM.
	memBudgetMultiple = 24.0
	// maxSegments caps the segment count; beyond it the coordinator
	// "crashes" (mirrors configurations that crash Milvus).
	maxSegments = 512
)

// workNanos converts index work counts into nanoseconds for vectors of the
// given dimension under the given cache ratio.
func workNanos(st index.Stats, dim int, cacheRatio float64) float64 {
	mult := 1 + cacheMissPenalty*(1-cacheRatio)
	return (float64(st.DistComps)*float64(dim)*nsPerFullDim +
		float64(st.CodeComps)*float64(dim)*nsPerCodeDim +
		float64(st.Lookups)*nsPerLookup) * mult
}

// queryLatencySec converts one query's work into simulated seconds under
// the configured parallelism and system-level overheads.
//
// The model: segment scans parallelize across min(P, segments) workers
// with a coordination tax that grows with P; each segment costs a dispatch
// overhead; bounded consistency adds a sync wait when gracefulTime is
// below the required staleness window; background index builds steal a
// share of the workers.
func queryLatencySec(workNs float64, segments int, cfg *Config, syncWaitMs, bgLoad float64) float64 {
	p := float64(cfg.Parallelism)
	eff := p
	if s := float64(segments); s < eff {
		eff = s
	}
	if eff < 1 {
		eff = 1
	}
	// Background builds consume bgLoad worker-equivalents.
	avail := eff * (1 - clamp(bgLoad/p, 0, 0.8))
	if avail < 0.25 {
		avail = 0.25
	}
	computeNs := workNs / avail * (1 + parallelCoordCost*p)
	dispatchNs := float64(segments) * nsSegmentDispatch / eff
	return computeNs/1e9 + dispatchNs/1e9 + syncWaitMs/1e3
}

// syncWaitMs models the bounded-consistency wait (Milvus gracefulTime).
// The system needs a staleness window of requiredMs to avoid blocking on
// sync; configurations with gracefulTime below it pay the difference, and
// very large windows pay a small bookkeeping cost.
func syncWaitMs(cfg *Config, pendingFraction float64) float64 {
	requiredMs := 40 + 800*pendingFraction
	wait := 0.0
	if cfg.GracefulTime < requiredMs {
		wait += (requiredMs - cfg.GracefulTime) * 0.6
	}
	wait += cfg.GracefulTime * 0.00005
	return wait
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
