package vdms

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
	"vdtuner/internal/persist"
)

// Online reconfiguration: applying a new Config to a live Collection
// without downtime — the engine half of the paper's tuner→engine loop.
//
// Hot knobs (see config.go, coldEqual) take effect by publishing a new
// immutable config generation: a configGen is written atomically to the
// collection and every shard, operations load it once at their start, and
// no lock beyond the ones they already hold is involved, so a hot swap
// costs the search path nothing. Cold knobs — index shape, segment
// sizing, shard count — change the physical layout, so they take effect
// via a migration:
//
//  1. capture (router write lock): the tombstone-filtered (id, vector)
//     content of every shard is captured — sealed and sealing arenas by
//     reference (immutable), the growing tails by copy — and a delta
//     starts recording every write that lands from here on;
//  2. build (off every lock): the rows are fed, in ascending id order,
//     through the new configuration's routing into a freshly built shard
//     set. Ascending order makes each new shard see exactly the row
//     sequence a fresh build at the new config would have seen, so seal
//     boundaries, segment seqs, and the seq-derived index seeds — and
//     therefore the built indexes — are bit-identical to that fresh
//     build. Rows are appended raw: they are already canonical (angular
//     inputs were normalized at original insert), and re-normalizing
//     would perturb bits;
//  3. persist (durable collections): each new shard writes a full
//     snapshot (checkpoint LSN 0) and opens a fresh WAL under the next
//     generation's sibling directory, gen-<G+1>/shard-<i>, leaving the
//     live generation untouched;
//  4. cutover (router write lock): the delta is replayed onto the new
//     shards through the normal insert/delete paths (WAL-logged like any
//     write), the new logs are synced, and — the commit point — the new
//     MANIFEST is atomically renamed into place; then the shard set and
//     config generation are swapped and the old shards retired.
//
// A crash anywhere before the manifest rename recovers the old
// generation (whose WALs kept receiving every write until cutover); a
// crash anywhere after it recovers the new one. Directories of
// generations the manifest does not name are removed at the next open.

// configGen is one immutable published configuration: the Config plus a
// sequence number that advances on every successful Reconfigure. It is
// shared via atomic pointers and never modified after publication.
type configGen struct {
	seq uint64
	cfg Config
}

// migrationDelta records the writes that land on the old shard set
// between a migration's capture and its cutover, for replay onto the new
// shards. Appends happen under the collection's router read lock plus mu;
// the cutover reads it under the router write lock, which excludes every
// appender.
type migrationDelta struct {
	mu      sync.Mutex
	batches []deltaBatch
	deletes []int64
}

type deltaBatch struct {
	ids  []int64
	vecs [][]float32
}

// addInserts records one acknowledged insert batch. Vectors are copied
// (callers may reuse their slices) in raw, pre-normalization form: the
// replay goes through the normal insert path, which normalizes exactly
// the way the original insert did.
func (d *migrationDelta) addInserts(ids []int64, vecs [][]float32) {
	cpIDs := append([]int64(nil), ids...)
	cpVecs := make([][]float32, len(vecs))
	for i, v := range vecs {
		cpVecs[i] = linalg.Clone(v)
	}
	d.mu.Lock()
	d.batches = append(d.batches, deltaBatch{ids: cpIDs, vecs: cpVecs})
	d.mu.Unlock()
}

// addDeletes records ids that were actually deleted (tombstoned or
// pruned) on the old shards — never merely requested ones, which could
// kill a row later created under that id within the migration window.
func (d *migrationDelta) addDeletes(ids []int64) {
	if len(ids) == 0 {
		return
	}
	d.mu.Lock()
	d.deletes = append(d.deletes, ids...)
	d.mu.Unlock()
}

// recordInsertDelta forwards an acknowledged insert to the in-flight
// migration's delta, if one exists. Callers hold the router read lock,
// under which c.delta is stable.
func (c *Collection) recordInsertDelta(ids []int64, vecs [][]float32) {
	if d := c.delta; d != nil {
		d.addInserts(ids, vecs)
	}
}

// SetReconfigureHook installs a hook called before each named migration
// step ("capture", "build", "sealed", "snapshot-<i>", "cutover", "delta",
// "sync", "manifest") and after the commit ("committed", "cleanup"). A
// non-nil error aborts the migration at that point with no cleanup,
// leaving memory and disk exactly as they were — which is what the
// crash-matrix tests need to simulate a kill at every step. An error at
// or after "committed" cannot un-commit: the migration has already
// happened. Testing only; pass nil to remove.
func (c *Collection) SetReconfigureHook(h func(step string) error) {
	c.reconfigMu.Lock()
	c.hook = h
	c.reconfigMu.Unlock()
}

// step fires the reconfigure hook. Callers hold reconfigMu.
func (c *Collection) step(name string) error {
	if c.hook == nil {
		return nil
	}
	return c.hook(name)
}

// Reconfigure applies cfg to the live collection and returns the new
// config generation's sequence number. Hot-knob changes (search
// parameters, WAL fsync policy and group commit, compaction knobs,
// parallelism, graceful time, cache ratio, flush interval, insert buffer)
// publish a new generation atomically — concurrent searches and inserts
// switch between operations, never inside one, and none fails. Cold-knob
// changes (index type or build parameters, segment sizing, shard count)
// run the migration documented at the top of this file: reads and writes
// keep being served by the old shape while the new one is built in the
// background, with only the capture and the final cutover excluding them
// briefly. Reconfigure calls serialize; the collection stays fully
// usable throughout.
func (c *Collection) Reconfigure(cfg Config) (uint64, error) {
	if err := ValidateConfig(cfg); err != nil {
		return 0, err
	}
	if c.closed.Load() {
		return 0, fmt.Errorf("vdms: collection closed")
	}
	c.reconfigMu.Lock()
	defer c.reconfigMu.Unlock()
	if coldEqual(c.gen.Load().cfg, cfg) {
		return c.hotSwap(cfg), nil
	}
	return c.migrate(cfg)
}

// hotSwap publishes cfg as a new generation on the collection and every
// shard, pushes the durability knobs into the open WALs, and re-checks
// compaction triggers (a lowered trigger ratio may warrant a pass right
// now). Callers hold reconfigMu.
func (c *Collection) hotSwap(cfg Config) uint64 {
	c.router.RLock()
	defer c.router.RUnlock()
	g := &configGen{seq: c.gen.Load().seq + 1, cfg: cfg}
	c.gen.Store(g)
	for _, s := range c.shards {
		s.gen.Store(g)
		if s.wal != nil {
			s.wal.SetPolicy(cfg.walFsyncPolicy(), cfg.walGroupCommit())
		}
	}
	for _, s := range c.shards {
		s.mu.Lock()
		if !s.closed {
			s.maybeCompactLocked()
		}
		s.mu.Unlock()
	}
	return g.seq
}

// idRowSorter sorts a captured (id, row) pairing by ascending id.
type idRowSorter struct {
	ids  []int64
	rows [][]float32
}

func (p *idRowSorter) Len() int           { return len(p.ids) }
func (p *idRowSorter) Less(i, j int) bool { return p.ids[i] < p.ids[j] }
func (p *idRowSorter) Swap(i, j int) {
	p.ids[i], p.ids[j] = p.ids[j], p.ids[i]
	p.rows[i], p.rows[j] = p.rows[j], p.rows[i]
}

// captureLocked gathers the collection's live (id, vector) content in
// ascending id order: sealed/sealing rows by reference (their arenas are
// immutable), growing rows by copy (those arenas mutate in place).
// Callers hold the router write lock; each shard's lock is taken for
// reading against its background builders and compactors.
func (c *Collection) captureLocked() ([]int64, [][]float32) {
	var ids []int64
	var rows [][]float32
	for _, s := range c.shards {
		s.mu.RLock()
		collect := func(store *linalg.Matrix, segIDs []int64, copyRows bool) {
			for i, id := range segIDs {
				if _, dead := s.tombstones[id]; dead {
					continue
				}
				r := store.Row(i)
				if copyRows {
					r = linalg.Clone(r)
				}
				ids = append(ids, id)
				rows = append(rows, r)
			}
		}
		for _, seg := range s.sealed {
			collect(seg.store, seg.ids, false)
		}
		for _, seg := range s.sealing {
			collect(seg.store, seg.ids, false)
		}
		if s.growingRowsLocked() > 0 {
			collect(s.growing, s.growingIDs, true)
		}
		s.mu.RUnlock()
	}
	sort.Sort(&idRowSorter{ids: ids, rows: rows})
	return ids, rows
}

// migrateRows feeds captured rows into a new shard in the order given.
// The rows are canonical engine rows (already normalized for angular
// metrics) and are appended raw — re-normalizing would perturb bits and
// break the post-migration ≡ fresh-build contract. Seal thresholds fire
// exactly as they would during live inserts of the same sequence.
func (s *shard) migrateRows(ids []int64, rows [][]float32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, v := range rows {
		if s.growing == nil {
			s.growing = linalg.NewMatrix(s.dim, s.sealRows)
		}
		s.growing.AppendRow(v)
		s.growingIDs = append(s.growingIDs, ids[i])
		s.rows++
		if ids[i] >= s.nextID {
			s.nextID = ids[i] + 1
		}
		if s.growing.Rows() >= s.sealRows {
			s.sealLocked()
		}
	}
}

// abortMigration unwinds a migration that failed before its commit
// point: the old shards keep serving (they never stopped), the delta is
// dropped, and the half-built new shards are abandoned crash-style. The
// on-disk state is deliberately left at the failure point — stale
// generation directories are removed at the next open — so hook-injected
// failures model a process kill faithfully.
func (c *Collection) abortMigration(newShards []*shard) {
	c.router.Lock()
	c.delta = nil
	c.migrating.Store(false)
	c.router.Unlock()
	for _, s := range newShards {
		if s != nil {
			s.crash()
		}
	}
}

// migrate rebuilds the collection at cfg's cold shape and cuts over; see
// the file comment for the protocol and crash-safety argument. Callers
// hold reconfigMu.
func (c *Collection) migrate(cfg Config) (uint64, error) {
	durable := c.dataDir != ""

	// Phase 1: capture under the router write lock. Writers are excluded,
	// so the delta's recording window starts exactly at the captured
	// state.
	if err := c.step("capture"); err != nil {
		return 0, err
	}
	c.router.Lock()
	if c.closed.Load() {
		c.router.Unlock()
		return 0, fmt.Errorf("vdms: collection closed")
	}
	oldGen := c.gen.Load()
	capIDs, capRows := c.captureLocked()
	noAutoCkpt := false
	if len(c.shards) > 0 {
		s0 := c.shards[0]
		s0.mu.RLock()
		noAutoCkpt = s0.noAutoCkpt
		s0.mu.RUnlock()
	}
	c.delta = &migrationDelta{}
	c.migrating.Store(true)
	c.router.Unlock()

	// Phase 2: build the new shape off every lock; old shards keep
	// serving and the delta records their writes.
	if err := c.step("build"); err != nil {
		c.abortMigration(nil)
		return 0, err
	}
	n := cfg.shardCount()
	perShard := (c.expectedRows + n - 1) / n
	sealRows := sealRowsFor(cfg, perShard)
	newGen := &configGen{seq: oldGen.seq + 1, cfg: cfg}
	newShards := make([]*shard, n)
	for i := range newShards {
		newShards[i] = newShard(newGen, c.metric, c.dim, sealRows)
		newShards[i].noAutoCkpt = noAutoCkpt
	}
	route := func(id int64) int {
		if n == 1 {
			return 0
		}
		return int(splitmix64(uint64(id)) % uint64(n))
	}
	partIDs := make([][]int64, n)
	partRows := make([][][]float32, n)
	for i, id := range capIDs {
		si := route(id)
		partIDs[si] = append(partIDs[si], id)
		partRows[si] = append(partRows[si], capRows[i])
	}
	parallel.Parallel(cfg.Parallelism, n, func(i int) {
		newShards[i].migrateRows(partIDs[i], partRows[i])
	})

	// Wait out the index builds so a build failure aborts the migration
	// here instead of surfacing as a mysterious post-cutover error.
	if err := c.step("sealed"); err != nil {
		c.abortMigration(newShards)
		return 0, err
	}
	for _, s := range newShards {
		s.builds.Wait()
	}
	for _, s := range newShards {
		if err := s.getBuildErr(); err != nil {
			c.abortMigration(newShards)
			return 0, fmt.Errorf("vdms: building migrated shards: %w", err)
		}
	}

	// Phase 3 (durable): write the new generation's layout into its
	// sibling directory. The live generation is untouched; nothing here
	// is visible to recovery until the manifest rename.
	newDiskGen := c.diskGen + 1
	newMan := &persist.Manifest{Shards: n, Dim: c.dim, Metric: c.metric, Generation: newDiskGen}
	if durable {
		for i, s := range newShards {
			if err := c.step(fmt.Sprintf("snapshot-%d", i)); err != nil {
				c.abortMigration(newShards)
				return 0, err
			}
			sdir := newMan.ShardDir(c.dataDir, i)
			if err := os.MkdirAll(sdir, 0o777); err != nil {
				c.abortMigration(newShards)
				return 0, err
			}
			// Snapshot and WAL attach in one lock hold: a compaction
			// commit on the new shard can then never fall between the
			// captured state and the log that records everything after it.
			s.mu.Lock()
			snap := s.snapshotLocked()
			w, err := persist.OpenWAL(persist.Options{
				Dir:         sdir,
				Policy:      cfg.walFsyncPolicy(),
				GroupCommit: cfg.walGroupCommit(),
			}, 1)
			if err == nil {
				s.wal = w
				s.dataDir = sdir
			}
			s.mu.Unlock()
			if err == nil {
				err = persist.WriteSnapshot(sdir, snap)
			}
			if err != nil {
				c.abortMigration(newShards)
				return 0, fmt.Errorf("vdms: persisting migrated shard %d: %w", i, err)
			}
		}
	}

	// Phase 4: cutover under the router write lock.
	if err := c.step("cutover"); err != nil {
		c.abortMigration(newShards)
		return 0, err
	}
	c.router.Lock()
	abortLocked := func(err error) (uint64, error) {
		c.delta = nil
		c.migrating.Store(false)
		c.router.Unlock()
		for _, s := range newShards {
			s.crash()
		}
		return 0, err
	}
	if c.closed.Load() {
		return abortLocked(fmt.Errorf("vdms: collection closed"))
	}
	delta := c.delta

	// Replay the delta through the normal write paths (WAL-logged like
	// any write): every insert batch in arrival order, then every actual
	// delete. Ids are never reused, so inserts-then-deletes yields the
	// same final state as any interleaving that really happened.
	if err := c.step("delta"); err != nil {
		return abortLocked(err)
	}
	for _, b := range delta.batches {
		bp := make([][]int64, n)
		bv := make([][][]float32, n)
		for i, id := range b.ids {
			si := route(id)
			bp[si] = append(bp[si], id)
			bv[si] = append(bv[si], b.vecs[i])
		}
		for si := range bp {
			if len(bp[si]) == 0 {
				continue
			}
			if err := newShards[si].insert(bp[si], bv[si]); err != nil {
				return abortLocked(fmt.Errorf("vdms: replaying migration delta: %w", err))
			}
		}
	}
	if len(delta.deletes) > 0 {
		dp := make([][]int64, n)
		for _, id := range delta.deletes {
			si := route(id)
			dp[si] = append(dp[si], id)
		}
		for si := range dp {
			if len(dp[si]) == 0 {
				continue
			}
			if _, err := newShards[si].delete(dp[si], nil); err != nil {
				return abortLocked(fmt.Errorf("vdms: replaying migration delta: %w", err))
			}
		}
	}

	if durable {
		// Everything the new generation needs must be on disk before the
		// rename makes it current.
		if err := c.step("sync"); err != nil {
			return abortLocked(err)
		}
		for _, s := range newShards {
			if err := s.wal.Sync(); err != nil {
				return abortLocked(fmt.Errorf("vdms: syncing migrated WAL: %w", err))
			}
		}
		if err := c.step("manifest"); err != nil {
			return abortLocked(err)
		}
		// The commit point: after this rename, recovery sees the new
		// generation; before it, the old (whose WALs logged every write
		// up to this cutover, delta included).
		if err := persist.WriteManifest(c.dataDir, newMan); err != nil {
			return abortLocked(fmt.Errorf("vdms: committing migration manifest: %w", err))
		}
	}

	oldShards := c.shards
	c.shards = newShards
	c.gen.Store(newGen)
	c.delta = nil
	c.migrating.Store(false)
	if durable {
		c.diskGen = newDiskGen
	}
	c.router.Unlock()

	// Retire the old shards crash-style: their directories are stale (the
	// manifest no longer names them), so no final checkpoint is owed.
	for _, s := range oldShards {
		s.crash()
	}
	if err := c.step("committed"); err != nil {
		return newGen.seq, err
	}
	if err := c.step("cleanup"); err != nil {
		return newGen.seq, err
	}
	if durable {
		_ = persist.RemoveStaleGenerations(c.dataDir, newMan)
	}
	return newGen.seq, nil
}
