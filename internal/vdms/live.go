package vdms

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
)

// Collection is the live (streaming) face of the engine: a thin router
// over Config.ShardCount independent shards, the way a Milvus-style
// vector DBMS scales writes by sharding a collection across channels.
// Each shard (see shard.go) is the full single-lock engine of the
// pre-sharding design — growing arena, sealing/sealed segment lifecycle,
// tombstones, compactor, and (when durable) a private snapshot+WAL pair —
// so inserts, fsyncs, index builds, and compaction passes on different
// shards never contend on a lock.
//
// Routing and determinism:
//
//   - ids are assigned by one collection-wide atomic counter and routed to
//     shardFor(id), a fixed hash — the same id lands on the same shard in
//     every run and after every recovery;
//   - Search/SearchBatch scatter per-shard probes over the deterministic
//     worker pool (a query × shard grid for batches) and merge the
//     per-shard top-k lists in fixed shard order from a pooled result
//     grid, so results are bit-identical for any worker count; with
//     ShardCount=1 the router delegates straight to its single shard,
//     which is bit-identical to the pre-sharding engine;
//   - each shard's parallel phases are themselves deterministic (see
//     package parallel), so a fixed op sequence yields fixed results.
//
// Collection complements Open/Evaluate (the static, simulated-clock path
// used by the tuner): it is the substrate for wall-clock measurements and
// for the online-tuning extension.
type Collection struct {
	// gen is the published config generation: the active Config plus its
	// sequence number. Reconfigure swaps it atomically (see reconfig.go);
	// readers load it once per operation. Each shard mirrors the pointer
	// so shard-level code never reaches back into the router.
	gen    atomic.Pointer[configGen]
	metric linalg.Metric
	dim    int
	// expectedRows is the corpus-size hint the collection was opened with;
	// migrations re-derive per-shard seal thresholds from it exactly the
	// way NewCollection would at the new configuration.
	expectedRows int

	// router guards the identity of the shard set. Every public operation
	// holds it for reading for its whole duration; a migration's capture
	// and cutover hold it for writing, so after a cutover returns no
	// operation can still be touching the retired shards, and every
	// operation that ran during a migration is recorded in its delta.
	router sync.RWMutex
	shards []*shard
	// delta, non-nil only while a migration is in flight, records the
	// writes that land on the old shards between capture and cutover so
	// the cutover can replay them onto the new shards. Written under
	// router.RLock (plus its own mutex); swapped under router.Lock.
	delta *migrationDelta

	// reconfigMu serializes Reconfigure calls (one hot swap or migration
	// at a time); diskGen is the durable layout's manifest generation,
	// only touched under reconfigMu.
	reconfigMu sync.Mutex
	diskGen    uint64
	// hook, when set (SetReconfigureHook), is called at each named
	// migration step; a non-nil error aborts the migration at that point
	// without cleanup. Crash-matrix tests use it to kill migrations
	// mid-flight.
	hook func(step string) error

	// nextID is the collection-wide id counter. It is advanced atomically
	// outside any shard lock, so concurrent inserts assign disjoint id
	// runs without serializing on each other.
	nextID atomic.Int64
	// closed gates the public API; each shard additionally carries its own
	// flag (set first by Close) so racing inserts cannot outlive shutdown.
	closed atomic.Bool
	// migrating reports an in-flight migration for Stats.
	migrating atomic.Bool
	// dataDir is the durable data directory ("" for memory-only).
	dataDir string
	// gatherPool recycles scatter-gather working sets (per-worker probe
	// scratches, the query×shard result grid); insertPool the routed
	// Insert's partition state. Both keep the steady-state hot paths
	// allocation-free; see scratch.go.
	gatherPool sync.Pool
	insertPool sync.Pool
}

// sealRowsFor derives the rows-per-segment seal threshold from the
// segment-size model at the given expected row count (one shard's slice
// of the corpus).
func sealRowsFor(cfg Config, expectedRows int) int {
	sealRows := int(cfg.SegmentMaxSize * cfg.SealProportion * float64(expectedRows) / 512)
	if sealRows < 48 {
		sealRows = 48
	}
	return sealRows
}

// NewCollection creates an empty live collection of cfg.ShardCount shards.
// expectedRows scales the segment-size model the same way Open does for
// bulk loads (each shard budgets for its 1/ShardCount slice); it must be
// positive.
func NewCollection(cfg Config, metric linalg.Metric, dim, expectedRows int) (*Collection, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dim <= 0 {
		return nil, fmt.Errorf("vdms: dimension must be positive, got %d", dim)
	}
	if expectedRows <= 0 {
		return nil, fmt.Errorf("vdms: expectedRows must be positive, got %d", expectedRows)
	}
	n := cfg.shardCount()
	perShard := (expectedRows + n - 1) / n
	sealRows := sealRowsFor(cfg, perShard)
	c := &Collection{metric: metric, dim: dim, expectedRows: expectedRows, shards: make([]*shard, n)}
	g := &configGen{cfg: cfg}
	c.gen.Store(g)
	for i := range c.shards {
		c.shards[i] = newShard(g, metric, dim, sealRows)
	}
	return c, nil
}

// Config returns the collection's active configuration (the newest
// generation Reconfigure published).
func (c *Collection) Config() Config {
	return c.gen.Load().cfg
}

// Metric returns the distance metric the collection was created with.
func (c *Collection) Metric() linalg.Metric { return c.metric }

// Dim returns the collection's vector dimensionality.
func (c *Collection) Dim() int { return c.dim }

// splitmix64 is the id-routing hash: a full-avalanche finalizer, so dense
// sequential ids spread evenly across shards while the mapping stays a
// pure function of the id (deterministic across runs and recoveries).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// shardFor routes an id to its owning shard.
func (c *Collection) shardFor(id int64) int {
	if len(c.shards) == 1 {
		return 0
	}
	return int(splitmix64(uint64(id)) % uint64(len(c.shards)))
}

// firstError returns the first non-nil error of a per-shard dispatch, in
// shard-dispatch order (deterministic when several shards fail at once).
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Insert appends vectors and returns their assigned ids. Vectors are
// copied; the caller may reuse the slices. Growing data is searchable
// immediately. A batch containing a wrong-dimension vector is rejected
// whole, before any row is applied or logged. Ids are assigned from the
// collection-wide counter and the batch is partitioned across shards by
// id hash; each shard applies, WAL-logs, and fsyncs its sub-batch under
// its own lock, so concurrent Insert calls proceed in parallel on
// different shards. Shards are visited in an order rotated by the batch's
// first id, which staggers concurrent callers across the shard array
// instead of convoying them all onto shard 0. On a durable collection the
// acknowledgement waits for every touched shard's configured fsync
// policy, so a returned id is exactly as crash-proof as that policy
// promises.
func (c *Collection) Insert(vecs [][]float32) ([]int64, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("vdms: collection closed")
	}
	for i, v := range vecs {
		if len(v) != c.dim {
			return nil, fmt.Errorf("vdms: vector %d has dim %d, want %d", i, len(v), c.dim)
		}
	}
	n := len(vecs)
	base := c.nextID.Add(int64(n)) - int64(n)
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = base + int64(i)
	}
	c.router.RLock()
	defer c.router.RUnlock()
	if len(c.shards) == 1 {
		if err := c.shards[0].insert(ids, vecs); err != nil {
			return nil, err
		}
		c.recordInsertDelta(ids, vecs)
		return ids, nil
	}
	// Partition the batch: per-shard id/vector sub-slices in batch order
	// (ascending ids within each shard), carved out of pooled flat arenas
	// — count, prefix-sum, then fill — so the routing hash runs once per
	// row and the partition allocates nothing at steady state. Shards
	// copy rows into their own arenas, so nothing here outlives the call.
	is := c.getInsert(n, len(c.shards))
	for i, id := range ids {
		s := c.shardFor(id)
		is.owner[i] = uint8(s)
		is.counts[s]++
	}
	off := 0
	for s, cnt := range is.counts {
		is.offs[s] = off
		is.cur[s] = off
		off += cnt
	}
	for i, id := range ids {
		s := is.owner[i]
		is.idsBuf[is.cur[s]] = id
		is.vecsBuf[is.cur[s]] = vecs[i]
		is.cur[s]++
	}
	for s, cnt := range is.counts {
		is.parts[s] = is.idsBuf[is.offs[s] : is.offs[s]+cnt]
		is.partVecs[s] = is.vecsBuf[is.offs[s] : is.offs[s]+cnt]
	}
	start := 0
	if n > 0 {
		start = int(uint64(base) % uint64(len(c.shards)))
	}
	for o := 0; o < len(c.shards); o++ {
		si := (start + o) % len(c.shards)
		if len(is.parts[si]) > 0 {
			is.touched = append(is.touched, si)
		}
	}
	// Every touched shard is applied even if an earlier one fails — the
	// faithful generalization of the single-lock engine's failure mode
	// (rows applied in memory, the durability failure surfaced instead of
	// an acknowledgement, no ids returned). On a durable collection the
	// sub-batches dispatch in parallel: each shard's WAL commit fsyncs a
	// different file, so one acknowledgement costs one fsync of wall
	// time, not shard-count of them. Memory-only inserts stay on the
	// calling goroutine — their per-shard work is a short arena copy, not
	// worth a fan-out.
	errs := is.errs[:len(is.touched)]
	dispatch := func(i int) {
		si := is.touched[i]
		errs[i] = c.shards[si].insert(is.parts[si], is.partVecs[si])
	}
	if c.dataDir != "" && len(is.touched) > 1 {
		parallel.Parallel(len(is.touched), len(is.touched), dispatch)
	} else {
		for i := range is.touched {
			dispatch(i)
		}
	}
	err := firstError(errs)
	c.putInsert(is)
	if err != nil {
		return nil, err
	}
	c.recordInsertDelta(ids, vecs)
	return ids, nil
}

// Flush seals every shard's growing segment (even if partial) and blocks
// until every pending index build and compaction pass completes. On a
// durable collection it also forces each shard's WAL to disk regardless
// of fsync policy, so everything inserted before Flush survives a crash.
// It returns the first background error, if any.
func (c *Collection) Flush() error {
	c.router.RLock()
	defer c.router.RUnlock()
	for _, s := range c.shards {
		s.sealPartial()
	}
	var syncErr error
	for _, s := range c.shards {
		if s.wal != nil {
			if err := s.wal.Sync(); err != nil && syncErr == nil {
				syncErr = err
			}
		}
	}
	for _, s := range c.shards {
		s.builds.Wait()
		s.waitCompactions()
	}
	for _, s := range c.shards {
		if err := s.getBuildErr(); err != nil {
			return err
		}
	}
	return syncErr
}

// rlockAll acquires every shard's read lock in fixed shard order, so the
// caller observes one consistent snapshot of every shard's segment
// lifecycle. The matching runlockAll releases them.
func (c *Collection) rlockAll() {
	for _, s := range c.shards {
		s.mu.RLock()
	}
}

func (c *Collection) runlockAll() {
	for _, s := range c.shards {
		s.mu.RUnlock()
	}
}

// readWorkers sizes the scatter-gather fan-out: the configured queryNode
// parallelism, clamped to the machine (running more probe workers than
// GOMAXPROCS only adds scheduling overhead, never throughput). The pool
// further clamps to the number of grid cells. Results are identical for
// any value — determinism comes from fixed-order merging, not scheduling.
func (c *Collection) readWorkers() int {
	w := c.gen.Load().cfg.Parallelism
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	return w
}

// mergeShardRow merges one query's row of the result grid — its per-shard
// top-k cells — in fixed shard order into a fresh caller-visible slice.
// Ids are partitioned across shards, so the merge is a pure k-way
// selection (no dedup needed); fixed order makes boundary ties
// deterministic regardless of which worker probed which shard when.
func mergeShardRow(g *gatherScratch, mt *linalg.TopK, qi, q, s, k int) []linalg.Neighbor {
	top := mt.Reset(k)
	for si := 0; si < s; si++ {
		cell := si*q + qi
		base := cell * k
		for _, nb := range g.cells[base : base+int(g.cellLen[cell])] {
			top.Push(nb.ID, nb.Dist)
		}
	}
	return top.AppendResults(make([]linalg.Neighbor, 0, top.Len()))
}

// searchOneLocked answers one already-normalized query: the per-shard
// probes scatter over the worker pool (each shard's top-k lands in its
// grid cell) and the cells merge in fixed shard order. With one shard the
// router adds nothing — the shard's list is copied out as the result,
// bit-identical to the pre-sharding engine. Callers hold every shard's
// read lock.
func (c *Collection) searchOneLocked(qq []float32, m linalg.Metric, k int, st *index.Stats) []linalg.Neighbor {
	s := len(c.shards)
	if s == 1 {
		g := c.getGather(1, 1, k, 1, 1)
		res := c.shards[0].searchLocked(qq, m, k, st, &g.probes[0])
		out := make([]linalg.Neighbor, len(res))
		copy(out, res)
		c.putGather(g)
		return out
	}
	workers := parallel.WorkerCount(c.readWorkers(), s)
	g := c.getGather(1, s, k, workers, 1)
	parallel.WorkerParallel(workers, s, func(w, si int) {
		res := c.shards[si].searchLocked(qq, m, k, &g.stats[si], &g.probes[w])
		base := si * k
		g.cellLen[si] = int32(copy(g.cells[base:base+k], res))
	})
	out := mergeShardRow(g, &g.probes[0].top, 0, 1, s, k)
	if st != nil {
		for i := range g.stats {
			st.Add(g.stats[i])
		}
	}
	c.putGather(g)
	return out
}

// normalizeQuery prepares a query for the metric: angular queries are
// normalized on a private copy and searched under L2 (inputs were
// normalized on insert).
func (c *Collection) normalizeQuery(q []float32) ([]float32, linalg.Metric) {
	if c.metric != linalg.Angular {
		return q, c.metric
	}
	qq := linalg.Clone(q)
	linalg.Normalize(qq)
	return qq, linalg.L2
}

// Search returns the k nearest neighbors of q across every shard and
// every segment state: indexed sealed segments, in-flight sealing
// segments (scanned exactly), and the growing tails. st may be nil.
func (c *Collection) Search(q []float32, k int, st *index.Stats) ([]linalg.Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("vdms: k must be >= 1, got %d", k)
	}
	if len(q) != c.dim {
		return nil, fmt.Errorf("vdms: query has dim %d, want %d", len(q), c.dim)
	}
	qq, m := c.normalizeQuery(q)
	if c.closed.Load() {
		return nil, fmt.Errorf("vdms: collection closed")
	}
	c.router.RLock()
	defer c.router.RUnlock()
	c.rlockAll()
	defer c.runlockAll()
	return c.searchOneLocked(qq, m, k, st), nil
}

// queryTileSize picks the multi-query tile width for a batch of q queries
// over s shards: wide enough that one cache-resident row tile amortizes
// across many queries, small enough that the query block itself stays
// L1-resident next to the row tile (~8KB of query data), and small enough
// that the (shard × tile) grid still has at least one cell per worker so
// the fan-out keeps the pool busy. Tile boundaries never affect results:
// each query's candidate sequence is tile-invariant, so any width yields
// bit-identical per-query output.
func (c *Collection) queryTileSize(q, s int) int {
	t := 8192 / (4 * c.dim)
	if t < 4 {
		t = 4
	}
	if t > 64 {
		t = 64
	}
	if w := c.readWorkers(); w > 1 {
		if maxT := (q*s + w - 1) / w; maxT < t {
			t = maxT
		}
	}
	if t < 1 {
		t = 1
	}
	return t
}

// SearchBatch answers queries[i] into result slot i, scattering a
// (shard × query-tile) probe grid across a worker pool sized by the
// configured queryNode parallelism — both axes feed the same worker
// budget, so a single query on many shards and many queries on one shard
// parallelize equally well. Each cell probes one shard with a whole tile
// of queries through the multi-query blocked kernels: segment arenas
// stream from memory once per tile instead of once per query, turning the
// batch scan into a small GEMM. Cells are claimed in shard-major order
// (every tile probes shard 0, then every tile shard 1, …), which keeps one
// shard's smaller segment data cache-resident across the whole batch. The
// merge pipelines behind the probes: the worker that finishes a tile's
// last shard merges that tile's query rows immediately, in fixed shard
// order, so results are bit-identical for any worker count and any tile
// width. The whole batch executes under every shard's read lock (acquired
// in fixed order), so it observes a single consistent snapshot of every
// shard's segment lifecycle even while concurrent Insert/Delete/Flush
// calls are queued. Per-probe work is accumulated into private per-cell
// Stats and merged into st in cell order (exact, since the counts are
// integers).
func (c *Collection) SearchBatch(queries [][]float32, k int, st *index.Stats) ([][]linalg.Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("vdms: k must be >= 1, got %d", k)
	}
	for i, q := range queries {
		if len(q) != c.dim {
			return nil, fmt.Errorf("vdms: query %d has dim %d, want %d", i, len(q), c.dim)
		}
	}
	m := c.metric
	qs := queries
	if m == linalg.Angular {
		qs = make([][]float32, len(queries))
		for i, q := range queries {
			qs[i] = linalg.Clone(q)
			linalg.Normalize(qs[i])
		}
		m = linalg.L2
	}
	if c.closed.Load() {
		return nil, fmt.Errorf("vdms: collection closed")
	}
	c.router.RLock()
	defer c.router.RUnlock()
	c.rlockAll()
	defer c.runlockAll()
	out := make([][]linalg.Neighbor, len(qs))
	if len(qs) == 0 {
		return out, nil
	}
	q, s := len(qs), len(c.shards)
	tile := c.queryTileSize(q, s)
	tiles := (q + tile - 1) / tile
	cells := s * tiles
	workers := parallel.WorkerCount(c.readWorkers(), cells)
	g := c.getGather(q, s, k, workers, tiles)
	parallel.WorkerParallel(workers, cells, func(w, cell int) {
		si, ti := cell/tiles, cell%tiles // shard-major: all tiles probe si in a run
		lo := ti * tile
		hi := lo + tile
		if hi > q {
			hi = q
		}
		ps := &g.probes[w]
		res := c.shards[si].searchMultiLocked(qs[lo:hi], m, k, &g.stats[cell], ps)
		if s == 1 {
			for i, r := range res {
				buf := make([]linalg.Neighbor, len(r))
				copy(buf, r)
				out[lo+i] = buf
			}
			return
		}
		for i, r := range res {
			gcell := si*q + lo + i
			base := gcell * k
			g.cellLen[gcell] = int32(copy(g.cells[base:base+k], r))
		}
		if g.pending[ti].Add(-1) != 0 {
			return
		}
		// Last probe in: this tile's query rows are complete, merge them
		// now. The atomic counter orders the merge after every
		// contributing cell write, and fixed shard order keeps the result
		// independent of which worker got here.
		for qi := lo; qi < hi; qi++ {
			out[qi] = mergeShardRow(g, &ps.top, qi, q, s, k)
		}
	})
	if st != nil {
		for i := range g.stats {
			st.Add(g.stats[i])
		}
	}
	c.putGather(g)
	return out, nil
}

// ShardStats is one shard's slice of a CollectionStats snapshot. The
// fields mirror the collection-level aggregates; see CollectionStats for
// their meaning.
type ShardStats struct {
	Rows              int64
	Sealed            int
	Sealing           int
	GrowingRows       int
	MemoryBytes       int64
	Tombstones        int
	CompactionPasses  int64
	CompactedSegments int64
	ReclaimedRows     int64
	WALBytes          int64
	LastCheckpointLSN uint64
	WALLastLSN        uint64
}

// CollectionStats is a point-in-time snapshot of a live collection,
// aggregated over its shards; Shards carries the per-shard breakdown.
type CollectionStats struct {
	// Rows is the live row count (inserted minus deleted).
	Rows        int64
	Sealed      int
	Sealing     int
	GrowingRows int
	MemoryBytes int64
	// Tombstones is the number of deleted ids still physically present
	// in sealed/sealing data — the search over-fetch margin. Compaction
	// drives it back toward zero.
	Tombstones int
	// CompactionPasses counts completed compactor passes;
	// CompactedSegments the source segments rewritten or merged away;
	// ReclaimedRows the deleted rows physically dropped.
	CompactionPasses  int64
	CompactedSegments int64
	ReclaimedRows     int64
	// WALBytes is the write-ahead logs' current byte footprint (summed
	// over shards) — what a recovery would replay on top of the newest
	// snapshots. Checkpoints drive it back down. Zero on memory-only
	// collections.
	WALBytes int64
	// LastCheckpointLSN is the log sequence number the newest durable
	// snapshot covers; records beyond it live only in the WAL. LSNs are
	// per-shard streams, so with several shards this is the maximum over
	// them (Shards has each shard's own). Zero on memory-only collections
	// or before the first checkpoint.
	LastCheckpointLSN uint64
	// WALLastLSN is the log head: the sequence number of the most
	// recently appended record, maximized over shards like
	// LastCheckpointLSN. Zero on memory-only collections.
	WALLastLSN uint64
	// ConfigGeneration is the active config generation's sequence number:
	// zero at creation, +1 per successful Reconfigure (hot swap or
	// migration). Operators compare it against the generation a
	// reconfigure call reported to confirm the change landed.
	ConfigGeneration uint64
	// IndexType and ShardCount echo the active configuration's structural
	// knobs, so a stats reader can see what shape is serving without a
	// separate config op.
	IndexType  index.Type
	ShardCount int
	// MigrationInProgress reports an in-flight cold-knob migration
	// (Reconfigure building the new shape in the background).
	MigrationInProgress bool
	// Shards is the per-shard breakdown, in shard order. Its length is the
	// collection's shard count.
	Shards []ShardStats
}

// Stats reports the collection's current segment layout and footprint:
// per-shard snapshots taken under every shard's read lock (one consistent
// cut), plus their aggregate.
func (c *Collection) Stats() CollectionStats {
	c.router.RLock()
	defer c.router.RUnlock()
	c.rlockAll()
	defer c.runlockAll()
	g := c.gen.Load()
	out := CollectionStats{
		ConfigGeneration:    g.seq,
		IndexType:           g.cfg.IndexType,
		ShardCount:          len(c.shards),
		MigrationInProgress: c.migrating.Load(),
		Shards:              make([]ShardStats, len(c.shards)),
	}
	for i, s := range c.shards {
		st := s.statsLocked()
		out.Shards[i] = st
		out.Rows += st.Rows
		out.Sealed += st.Sealed
		out.Sealing += st.Sealing
		out.GrowingRows += st.GrowingRows
		out.MemoryBytes += st.MemoryBytes
		out.Tombstones += st.Tombstones
		out.CompactionPasses += st.CompactionPasses
		out.CompactedSegments += st.CompactedSegments
		out.ReclaimedRows += st.ReclaimedRows
		out.WALBytes += st.WALBytes
		if st.LastCheckpointLSN > out.LastCheckpointLSN {
			out.LastCheckpointLSN = st.LastCheckpointLSN
		}
		if st.WALLastLSN > out.WALLastLSN {
			out.WALLastLSN = st.WALLastLSN
		}
	}
	return out
}

// Close marks the collection unusable, then shuts every shard down:
// pending builds and compactions are waited out, and each durable shard
// takes a final checkpoint — WAL sync, full snapshot, log truncation — so
// a graceful shutdown is lossless under every fsync policy, growing tails
// included. Shards close in parallel (mirroring recovery), so shutdown
// wall time is the slowest shard's final checkpoint, not the sum. Close
// is idempotent: a second Close (or a Close after Crash) skips the
// checkpoints instead of failing against the already-closed WALs.
func (c *Collection) Close() error {
	c.closed.Store(true)
	// The write lock serializes Close against a migration's cutover: after
	// it is held, either the cutover already swapped the shard set (and
	// these are the new shards to close) or it will observe closed and
	// abort, leaving the old shards for us.
	c.router.Lock()
	defer c.router.Unlock()
	errs := make([]error, len(c.shards))
	parallel.Parallel(len(c.shards), len(c.shards), func(i int) {
		errs[i] = c.shards[i].close()
	})
	return firstError(errs)
}

// SampleVectors returns up to n of the collection's live vectors (copies,
// in routing order), for callers that need a representative sample of the
// stored distribution — the online tuning daemon builds its evaluation
// window from it. Angular collections return the normalized rows the
// engine stores.
func (c *Collection) SampleVectors(n int) [][]float32 {
	if n <= 0 {
		return nil
	}
	c.router.RLock()
	defer c.router.RUnlock()
	c.rlockAll()
	defer c.runlockAll()
	out := make([][]float32, 0, n)
	for _, s := range c.shards {
		appendRows := func(store *linalg.Matrix, ids []int64) {
			for i := range ids {
				if len(out) >= n {
					return
				}
				if _, dead := s.tombstones[ids[i]]; dead {
					continue
				}
				out = append(out, linalg.Clone(store.Row(i)))
			}
		}
		for _, seg := range s.sealed {
			appendRows(seg.store, seg.ids)
		}
		for _, seg := range s.sealing {
			appendRows(seg.store, seg.ids)
		}
		if s.growingRowsLocked() > 0 {
			appendRows(s.growing, s.growingIDs)
		}
		if len(out) >= n {
			break
		}
	}
	return out
}
