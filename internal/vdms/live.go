package vdms

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
	"vdtuner/internal/persist"
)

// Collection is the live (streaming) face of the engine: vectors are
// inserted at runtime into a growing segment, which seals when it reaches
// the configured proportion of the segment budget; sealed segments get
// their index built by a background worker while remaining brute-force
// searchable, exactly like Milvus' growing/sealed/indexed lifecycle.
// Delete-heavy workloads are kept bounded by a background compactor that
// rewrites tombstone-heavy segments and merges undersized ones; see
// compact.go.
//
// Collection complements Open/Evaluate (the static, simulated-clock path
// used by the tuner): it is the substrate for wall-clock measurements and
// for the online-tuning extension.
type Collection struct {
	cfg    Config
	metric linalg.Metric
	dim    int
	// sealRows is the rows-per-segment derived from segment_maxSize ×
	// sealProportion at the declared expected corpus size.
	sealRows int

	mu     sync.RWMutex
	nextID int64
	// rows counts live (inserted and not deleted) rows.
	rows int64
	// growing is the current unsealed segment's vector arena (nil until
	// the first insert after a seal); growingIDs are its row ids.
	growing    *linalg.Matrix
	growingIDs []int64
	// sealing holds segments whose index build is in flight; they are
	// scanned exactly until the build lands.
	sealing []*sealingSegment
	// sealed holds indexed segments, kept sorted by seq so iteration
	// order (and therefore planning and merging) is deterministic no
	// matter when each background build happened to land.
	sealed  []*sealedSegment
	sealSeq int64
	// tombstones holds deleted ids that are still physically present in
	// sealed or sealing data; they are filtered from every search (see
	// delete.go) and garbage-collected when compaction drops the rows.
	// Deleted growing rows are removed physically at once and never
	// linger here, so len(tombstones) — the search over-fetch margin —
	// is bounded by the dead rows awaiting compaction, not by the
	// all-time delete count.
	tombstones map[int64]struct{}
	closed     bool

	// Compactor state; see compact.go. compacting guards the single
	// in-flight pass, compactDone is closed when it finishes.
	compacting        bool
	compactDone       chan struct{}
	compactionPasses  int64
	compactedSegments int64
	reclaimedRows     int64

	// Durability state; nil/zero for memory-only collections (see
	// persist.go in this package). Records are appended under mu — the
	// log order is the engine's serialization order — and committed
	// (fsynced per policy) outside it.
	wal     *persist.WAL
	dataDir string
	// ckptMu serializes checkpoints (compactor passes, the server's
	// "persist" op, Close); ckptLSN is the newest durable snapshot's LSN,
	// mirrored in lastCkpt for lock-free reads by Stats.
	ckptMu   sync.Mutex
	ckptLSN  uint64
	lastCkpt atomic.Uint64
	// noAutoCkpt suppresses the compactor's checkpoint-after-pass; see
	// DisableAutoCheckpoint.
	noAutoCkpt bool

	builds sync.WaitGroup
	// buildErr records the first background build failure.
	buildErrOnce sync.Once
	buildErr     error
}

type sealingSegment struct {
	seq   int64
	store *linalg.Matrix
	ids   []int64
}

// sealedSegment is one indexed segment. The raw row arena is retained next
// to the built index (the analogue of Milvus keeping segment binlogs): it
// is what compaction rewrites. ids are ascending.
type sealedSegment struct {
	seq   int64
	store *linalg.Matrix
	ids   []int64
	idx   index.Index
	// dead counts this segment's rows that are tombstoned.
	dead int
	// noCompact excludes a segment whose compaction rebuild failed from
	// further planning, so a deterministic build error cannot spin the
	// compactor forever; the segment stays searchable and its tombstones
	// keep filtering.
	noCompact bool
}

// NewCollection creates an empty live collection. expectedRows scales the
// segment-size model the same way Open does for bulk loads; it must be
// positive.
func NewCollection(cfg Config, metric linalg.Metric, dim, expectedRows int) (*Collection, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dim <= 0 {
		return nil, fmt.Errorf("vdms: dimension must be positive, got %d", dim)
	}
	if expectedRows <= 0 {
		return nil, fmt.Errorf("vdms: expectedRows must be positive, got %d", expectedRows)
	}
	sealRows := int(cfg.SegmentMaxSize * cfg.SealProportion * float64(expectedRows) / 512)
	if sealRows < 48 {
		sealRows = 48
	}
	return &Collection{cfg: cfg, metric: metric, dim: dim, sealRows: sealRows}, nil
}

// Insert appends vectors and returns their assigned ids. Vectors are
// copied; the caller may reuse the slices. Growing data is searchable
// immediately. When the growing segment reaches the seal threshold it is
// sealed and handed to a background index build. A batch containing a
// wrong-dimension vector is rejected whole, before any row is applied or
// logged. On a durable collection the batch is WAL-logged before it is
// applied and the acknowledgement waits for the configured fsync policy,
// so a returned id is exactly as crash-proof as that policy promises.
func (c *Collection) Insert(vecs [][]float32) ([]int64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("vdms: collection closed")
	}
	for i, v := range vecs {
		if len(v) != c.dim {
			c.mu.Unlock()
			return nil, fmt.Errorf("vdms: vector %d has dim %d, want %d", i, len(v), c.dim)
		}
	}
	ids := make([]int64, len(vecs))
	// Insert records are split at seal boundaries: each record covers
	// exactly the rows that entered the growing segment before the next
	// RecFlush, so replaying "insert, insert, flush, insert" rebuilds the
	// same segment membership the live engine produced when a batch
	// straddled a seal.
	runStart := 0
	var logErr error
	logRun := func(end int) {
		if c.wal == nil || end <= runStart || logErr != nil {
			runStart = end
			return
		}
		if _, err := c.wal.AppendInsert(ids[runStart], vecs[runStart:end], c.dim); err != nil {
			logErr = err
		}
		runStart = end
	}
	for i, v := range vecs {
		if c.growing == nil {
			c.growing = linalg.NewMatrix(c.dim, c.sealRows)
		}
		// Copy straight into the growing arena; angular inputs are
		// normalized in place on their arena row (no temporary copy).
		c.growing.AppendRow(v)
		if c.metric == linalg.Angular {
			linalg.Normalize(c.growing.Row(c.growing.Rows() - 1))
		}
		ids[i] = c.nextID
		c.nextID++
		c.rows++
		c.growingIDs = append(c.growingIDs, ids[i])
		if c.growing.Rows() >= c.sealRows {
			logRun(i + 1) // the sealing rows must precede the seal record
			c.sealLocked()
		}
	}
	logRun(len(vecs))
	var lsn uint64
	if c.wal != nil {
		lsn = c.wal.LastLSN() // covers the insert and any seal records
	}
	c.mu.Unlock()
	if logErr != nil {
		// The rows are applied in memory but the log is broken: surface
		// the durability failure instead of acknowledging.
		return nil, fmt.Errorf("vdms: logging insert: %w", logErr)
	}
	if c.wal != nil && len(vecs) > 0 {
		if err := c.wal.Commit(lsn); err != nil {
			return nil, fmt.Errorf("vdms: committing insert: %w", err)
		}
	}
	return ids, nil
}

// growingRowsLocked reports the growing segment's row count. Callers hold
// c.mu.
func (c *Collection) growingRowsLocked() int {
	if c.growing == nil {
		return 0
	}
	return c.growing.Rows()
}

// sealLocked moves the growing segment into the sealing state and starts
// its background index build. Callers hold c.mu.
func (c *Collection) sealLocked() {
	// Canonical row order: growing rows are normally already ascending by
	// id, but rows requeued by a failed build may not be; sorting here
	// keeps the sealed-segment invariant (ids ascending) unconditionally.
	index.SortRowsByID(c.growing, c.growingIDs)
	seq := c.sealSeq
	c.sealSeq++
	if c.wal != nil {
		// The seal is logged at its position in the operation order; a
		// failure cannot abort the seal (callers are mid-insert), so it is
		// surfaced the way background build failures are.
		if _, err := c.wal.AppendFlush(seq); err != nil {
			err := fmt.Errorf("vdms: logging seal: %w", err)
			c.buildErrOnce.Do(func() { c.buildErr = err })
		}
	}
	seg := &sealingSegment{seq: seq, store: c.growing, ids: c.growingIDs}
	c.growing = nil
	c.growingIDs = nil
	c.sealing = append(c.sealing, seg)

	c.builds.Add(1)
	go func() {
		defer c.builds.Done()
		m := c.metric
		if m == linalg.Angular {
			m = linalg.L2 // inputs were normalized on insert
		}
		idx, err := newSegmentIndex(c.cfg, m, c.dim, seq)
		if err == nil {
			err = idx.Build(seg.store, seg.ids)
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		// Remove seg from the sealing list regardless of outcome.
		for i, s := range c.sealing {
			if s == seg {
				c.sealing = append(c.sealing[:i], c.sealing[i+1:]...)
				break
			}
		}
		if err != nil {
			c.buildErrOnce.Do(func() { c.buildErr = err })
			// Keep the data searchable: put the rows back into growing.
			// Rows tombstoned while the build was in flight are dropped
			// here (growing data is mutable), and their tombstones are
			// no longer needed.
			for i, id := range seg.ids {
				if _, dead := c.tombstones[id]; dead {
					delete(c.tombstones, id)
					continue
				}
				if c.growing == nil {
					c.growing = linalg.NewMatrix(c.dim, seg.store.Rows())
				}
				c.growing.AppendRow(seg.store.Row(i))
				c.growingIDs = append(c.growingIDs, id)
			}
			return
		}
		ss := &sealedSegment{seq: seq, store: seg.store, ids: seg.ids, idx: idx}
		// Deletes may have landed while the build was in flight.
		for _, id := range ss.ids {
			if _, dead := c.tombstones[id]; dead {
				ss.dead++
			}
		}
		c.insertSealedLocked(ss)
		c.maybeCompactLocked()
	}()
}

// insertSealedLocked places seg into c.sealed keeping seq order.
func (c *Collection) insertSealedLocked(seg *sealedSegment) {
	i := sort.Search(len(c.sealed), func(j int) bool { return c.sealed[j].seq > seg.seq })
	c.sealed = append(c.sealed, nil)
	copy(c.sealed[i+1:], c.sealed[i:])
	c.sealed[i] = seg
}

// containsSorted reports whether the ascending id slice contains id.
func containsSorted(ids []int64, id int64) bool {
	n := len(ids)
	if n == 0 || id < ids[0] || id > ids[n-1] {
		return false
	}
	i := sort.Search(n, func(j int) bool { return ids[j] >= id })
	return i < n && ids[i] == id
}

// locateLocked reports where id currently lives among the immutable
// segment states: the sealed segment containing it (nil when it is in a
// sealing segment) and whether it was found at all. Sealed and sealing
// segments keep their ids ascending (sealLocked sorts), so each probe is
// a binary search. Growing data is NOT consulted — its ids can be
// unsorted after a failed-build requeue; callers that need growing
// membership build a set (see Delete). Callers hold c.mu.
func (c *Collection) locateLocked(id int64) (*sealedSegment, bool) {
	for _, seg := range c.sealed {
		if containsSorted(seg.ids, id) {
			return seg, true
		}
	}
	for _, seg := range c.sealing {
		if containsSorted(seg.ids, id) {
			return nil, true
		}
	}
	return nil, false
}

// Flush seals the current growing segment (even if partial) and blocks
// until every pending index build and compaction pass completes. On a
// durable collection it also forces the WAL to disk regardless of fsync
// policy, so everything inserted before Flush survives a crash. It
// returns the first background error, if any.
func (c *Collection) Flush() error {
	c.mu.Lock()
	if c.growingRowsLocked() > 0 {
		c.sealLocked()
	}
	c.mu.Unlock()
	var syncErr error
	if c.wal != nil {
		syncErr = c.wal.Sync()
	}
	c.builds.Wait()
	c.waitCompactions()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.buildErr != nil {
		return c.buildErr
	}
	return syncErr
}

// Search returns the k nearest neighbors of q across every segment state:
// indexed sealed segments, in-flight sealing segments (scanned exactly),
// and the growing tail. st may be nil.
func (c *Collection) Search(q []float32, k int, st *index.Stats) ([]linalg.Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("vdms: k must be >= 1, got %d", k)
	}
	if len(q) != c.dim {
		return nil, fmt.Errorf("vdms: query has dim %d, want %d", len(q), c.dim)
	}
	qq := q
	m := c.metric
	if m == linalg.Angular {
		qq = linalg.Clone(q)
		linalg.Normalize(qq)
		m = linalg.L2
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, fmt.Errorf("vdms: collection closed")
	}
	return c.searchLocked(qq, m, k, st), nil
}

// searchLocked answers one already-normalized query against the current
// segment states. Callers hold c.mu (read side suffices): the method only
// reads collection state, so any number of goroutines holding the same
// read lock may call it concurrently — that is how SearchBatch fans out.
func (c *Collection) searchLocked(qq []float32, m linalg.Metric, k int, st *index.Stats) []linalg.Neighbor {
	// Over-fetch to survive tombstone filtering: deleted ids may occupy
	// top slots inside immutable sealed segments. The margin is the live
	// tombstone count — dead rows still physically present and awaiting
	// compaction — not the all-time delete count.
	fetch := k + len(c.tombstones)
	lists := make([][]linalg.Neighbor, 0, len(c.sealed)+len(c.sealing)+1)
	for _, seg := range c.sealed {
		lists = append(lists, seg.idx.Search(qq, fetch, c.cfg.Search, st))
	}
	for _, seg := range c.sealing {
		lists = append(lists, index.ScanStore(m, qq, seg.store, seg.ids, fetch, st))
	}
	if c.growingRowsLocked() > 0 {
		lists = append(lists, index.ScanStore(m, qq, c.growing, c.growingIDs, fetch, st))
	}
	merged := c.filterTombstones(linalg.MergeNeighbors(fetch, lists...))
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// SearchBatch answers queries[i] into result slot i, fanning the batch
// across a worker pool sized by the configured queryNode parallelism. The
// whole batch executes under one read lock, so it observes a single
// consistent snapshot of the segment lifecycle even while concurrent
// Insert/Delete/Flush calls are queued. Per-query work is accumulated into
// private Stats and merged into st in query order (exact, since the counts
// are integers).
func (c *Collection) SearchBatch(queries [][]float32, k int, st *index.Stats) ([][]linalg.Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("vdms: k must be >= 1, got %d", k)
	}
	for i, q := range queries {
		if len(q) != c.dim {
			return nil, fmt.Errorf("vdms: query %d has dim %d, want %d", i, len(q), c.dim)
		}
	}
	m := c.metric
	qs := queries
	if m == linalg.Angular {
		qs = make([][]float32, len(queries))
		for i, q := range queries {
			qs[i] = linalg.Clone(q)
			linalg.Normalize(qs[i])
		}
		m = linalg.L2
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, fmt.Errorf("vdms: collection closed")
	}
	out := make([][]linalg.Neighbor, len(qs))
	if len(qs) == 0 {
		return out, nil
	}
	per := make([]index.Stats, len(qs))
	parallel.Parallel(c.cfg.Parallelism, len(qs), func(qi int) {
		out[qi] = c.searchLocked(qs[qi], m, k, &per[qi])
	})
	if st != nil {
		for i := range per {
			st.Add(per[i])
		}
	}
	return out, nil
}

// CollectionStats is a point-in-time snapshot of a live collection.
type CollectionStats struct {
	// Rows is the live row count (inserted minus deleted).
	Rows        int64
	Sealed      int
	Sealing     int
	GrowingRows int
	MemoryBytes int64
	// Tombstones is the number of deleted ids still physically present
	// in sealed/sealing data — the search over-fetch margin. Compaction
	// drives it back toward zero.
	Tombstones int
	// CompactionPasses counts completed compactor passes;
	// CompactedSegments the source segments rewritten or merged away;
	// ReclaimedRows the deleted rows physically dropped.
	CompactionPasses  int64
	CompactedSegments int64
	ReclaimedRows     int64
	// WALBytes is the write-ahead log's current byte footprint — what a
	// recovery would replay on top of the newest snapshot. Checkpoints
	// drive it back down. Zero on memory-only collections.
	WALBytes int64
	// LastCheckpointLSN is the log sequence number the newest durable
	// snapshot covers; records beyond it live only in the WAL. Zero on
	// memory-only collections or before the first checkpoint.
	LastCheckpointLSN uint64
	// WALLastLSN is the log head: the sequence number of the most
	// recently appended record. Zero on memory-only collections.
	WALLastLSN uint64
}

// Stats reports the collection's current segment layout and footprint.
func (c *Collection) Stats() CollectionStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := CollectionStats{
		Rows:              c.rows,
		Sealed:            len(c.sealed),
		Sealing:           len(c.sealing),
		GrowingRows:       c.growingRowsLocked(),
		Tombstones:        len(c.tombstones),
		CompactionPasses:  c.compactionPasses,
		CompactedSegments: c.compactedSegments,
		ReclaimedRows:     c.reclaimedRows,
	}
	if c.wal != nil {
		s.WALBytes = c.wal.Size()
		s.LastCheckpointLSN = c.lastCkpt.Load()
		s.WALLastLSN = c.wal.LastLSN()
	}
	bytesPerRow := int64(c.dim) * 4
	for _, seg := range c.sealed {
		s.MemoryBytes += seg.idx.MemoryBytes()
		// The retained raw arena (the binlog analogue compaction
		// rewrites) is already inside MemoryBytes when the index adopted
		// it as its storage; otherwise (the IVF family re-groups its
		// payloads cell-major into private storage) the binlog arena is
		// an additional resident copy, counted separately.
		if !seg.idx.StoreAdopted() {
			s.MemoryBytes += seg.store.Bytes()
		}
	}
	for _, seg := range c.sealing {
		s.MemoryBytes += seg.store.Bytes()
	}
	s.MemoryBytes += int64(c.growingRowsLocked()) * bytesPerRow * 2
	return s
}

// Close marks the collection unusable, then waits for pending builds and
// compactions. The closed flag is set under the lock *before* waiting so
// that no Insert racing with Close can seal a segment whose background
// build Close would miss. A durable collection then takes a final
// checkpoint — WAL sync, full snapshot, log truncation — so a graceful
// shutdown is lossless under every fsync policy, growing tail included.
// Close is idempotent: a second Close (or a Close after Crash) skips the
// checkpoint instead of failing against the already-closed WAL.
func (c *Collection) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	c.builds.Wait()
	c.waitCompactions()
	var persistErr error
	if c.wal != nil && !already {
		persistErr = c.Checkpoint()
		if err := c.wal.Close(); persistErr == nil {
			persistErr = err
		}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.buildErr != nil {
		return c.buildErr
	}
	return persistErr
}
