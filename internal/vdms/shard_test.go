package vdms

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/persist"
)

// Sharded-collection tests: routing determinism, scatter-gather
// bit-identity, per-shard durability layout, recovery, aggregation, and
// concurrent churn across shards.

// flatConfig returns a configuration whose segments search exactly (FLAT
// scans), so results depend only on the live id→vector set — the property
// that makes shard_count=N bit-identical to shard_count=1 on the same
// workload. Small segments force plenty of lifecycle churn.
func flatConfig(shards int) Config {
	cfg := DefaultConfig()
	cfg.IndexType = index.Flat
	cfg.Parallelism = 2
	cfg.SegmentMaxSize = 100
	cfg.SealProportion = 0.8
	cfg.ShardCount = shards
	return cfg
}

// runChurn drives a fixed insert/delete workload into coll and flushes.
func runChurn(t *testing.T, coll *Collection, vecs [][]float32) []int64 {
	t.Helper()
	var ids []int64
	for off := 0; off < len(vecs); off += 70 {
		end := off + 70
		if end > len(vecs) {
			end = len(vecs)
		}
		got, err := coll.Insert(vecs[off:end])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, got...)
		if off > 0 && off%140 == 0 {
			if _, err := coll.Delete(ids[off-50 : off-10]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestShardedBitIdenticalToSingleShard is the scatter-gather acceptance
// gate: on exact (FLAT) segments, the same workload answers SearchBatch
// bit-identically at shard_count 1, 2, 4, and 8 — the fixed-order merge
// of per-shard top-k lists reconstructs the global top-k exactly.
func TestShardedBitIdenticalToSingleShard(t *testing.T) {
	const dim, n, k = 8, 700, 10
	vecs := randVecs(n, dim, 41)
	qs := randVecs(24, dim, 42)

	run := func(shards int) ([][]linalg.Neighbor, CollectionStats) {
		coll, err := NewCollection(flatConfig(shards), linalg.L2, dim, n)
		if err != nil {
			t.Fatal(err)
		}
		defer coll.Close()
		runChurn(t, coll, vecs)
		res, err := coll.SearchBatch(qs, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res, coll.Stats()
	}

	baseRes, baseStats := run(1)
	for _, shards := range []int{2, 4, 8} {
		res, st := run(shards)
		if !reflect.DeepEqual(res, baseRes) {
			for qi := range res {
				if !reflect.DeepEqual(res[qi], baseRes[qi]) {
					t.Fatalf("shards=%d query %d: %v, shards=1: %v", shards, qi, res[qi], baseRes[qi])
				}
			}
			t.Fatalf("shards=%d results differ from shards=1", shards)
		}
		// Rows is a logical count and must agree exactly; tombstone and
		// segment counts are physical-layout properties (a delete landing
		// on a still-growing row is pruned without a tombstone, and seal
		// timing depends on the per-shard threshold), so they may differ
		// across shard counts.
		if st.Rows != baseStats.Rows {
			t.Fatalf("shards=%d Rows=%d, shards=1 has %d", shards, st.Rows, baseStats.Rows)
		}
		if len(st.Shards) != shards {
			t.Fatalf("breakdown has %d shards, want %d", len(st.Shards), shards)
		}
	}
}

// TestShardedSearchMatchesSearchBatch: the single-query and batched paths
// share the scatter-gather core, so they must agree result-for-result.
func TestShardedSearchMatchesSearchBatch(t *testing.T) {
	const dim, n, k = 8, 400, 7
	coll, err := NewCollection(flatConfig(4), linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	runChurn(t, coll, randVecs(n, dim, 43))
	qs := randVecs(12, dim, 44)
	batch, err := coll.SearchBatch(qs, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range qs {
		single, err := coll.Search(q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single, batch[qi]) {
			t.Fatalf("query %d: Search %v, SearchBatch %v", qi, single, batch[qi])
		}
	}
}

// TestShardedDeterministicAcrossWorkers: with approximate (HNSW) segments
// the per-shard results are layout-dependent but must still be
// bit-identical between workers=1 and workers=N — the routing is a pure
// function of ids and every per-shard phase is deterministic.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	const dim, n, k = 8, 600, 5
	vecs := randVecs(n, dim, 45)
	qs := randVecs(16, dim, 46)
	run := func(workers int) [][]linalg.Neighbor {
		cfg := flatConfig(4)
		cfg.IndexType = index.HNSW
		cfg.Build.HNSWM = 8
		cfg.Build.EfConstruction = 48
		cfg.Search.Ef = 48
		cfg.Parallelism = workers
		coll, err := NewCollection(cfg, linalg.L2, dim, n)
		if err != nil {
			t.Fatal(err)
		}
		defer coll.Close()
		runChurn(t, coll, vecs)
		res, err := coll.SearchBatch(qs, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if !reflect.DeepEqual(run(1), run(8)) {
		t.Fatal("sharded results differ between workers=1 and workers=8")
	}
}

// TestShardedRecoveryBitIdentical is the per-shard crash-recovery gate: a
// durable sharded collection crashed after Flush recovers (all shard WALs
// replayed) to answer bit-identically to both its pre-crash self and a
// shards=1 in-memory replay of the same workload.
func TestShardedRecoveryBitIdentical(t *testing.T) {
	const dim, n, k = 8, 500, 8
	vecs := randVecs(n, dim, 47)
	qs := randVecs(20, dim, 48)

	cfg := flatConfig(4)
	cfg.WALFsyncPolicy = 3 // always
	dir := t.TempDir()
	live, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	runChurn(t, live, vecs)
	preRes, err := live.SearchBatch(qs, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	preStats := live.Stats()
	live.Crash()

	rec, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	postRes, err := rec.SearchBatch(qs, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(preRes, postRes) {
		t.Fatal("sharded SearchBatch differs after per-shard recovery")
	}
	postStats := rec.Stats()
	if postStats.Rows != preStats.Rows || postStats.Tombstones != preStats.Tombstones {
		t.Fatalf("recovered Rows=%d Tombstones=%d, pre-crash %d/%d",
			postStats.Rows, postStats.Tombstones, preStats.Rows, preStats.Tombstones)
	}

	ref, err := NewCollection(flatConfig(1), linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	runChurn(t, ref, vecs)
	refRes, err := ref.SearchBatch(qs, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(postRes, refRes) {
		t.Fatal("recovered sharded results differ from the shards=1 reference")
	}
}

// TestShardedDurableLayout pins the on-disk contract: a manifest plus one
// subdirectory per shard, each with its own WAL; reopening with a
// different shard count (which would re-route ids) is refused, as is a
// pre-sharding directory layout.
func TestShardedDurableLayout(t *testing.T) {
	const dim, n = 4, 200
	cfg := flatConfig(3)
	dir := t.TempDir()
	c, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(randVecs(n, dim, 49)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := persist.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || man.Shards != 3 || man.Dim != dim || man.Metric != linalg.L2 {
		t.Fatalf("manifest = %+v", man)
	}
	for i := 0; i < 3; i++ {
		wals, err := persist.WALFileNames(persist.ShardDir(dir, i))
		if err != nil {
			t.Fatal(err)
		}
		if len(wals) == 0 {
			t.Fatalf("shard %d has no WAL files", i)
		}
	}

	other := cfg
	other.ShardCount = 4
	if _, err := OpenDurable(dir, other, linalg.L2, dim, n); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	r, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Rows; got != n {
		t.Fatalf("recovered Rows = %d, want %d", got, n)
	}
	r.Close()

	// A pre-sharding directory (top-level WAL files, no manifest) must be
	// refused, not silently shadowed by a fresh empty collection.
	legacy := t.TempDir()
	if err := os.WriteFile(filepath.Join(legacy, "wal-0000000000000001.wal"), []byte("old"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(legacy, cfg, linalg.L2, dim, n); err == nil {
		t.Fatal("legacy layout accepted")
	}
}

// TestShardedStatsAggregation: the collection-level stats are the sums of
// the per-shard breakdown, and the hash routing actually spreads rows.
func TestShardedStatsAggregation(t *testing.T) {
	const dim, n = 8, 500
	coll, err := NewCollection(flatConfig(4), linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	ids, err := coll.Insert(randVecs(n, dim, 50))
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := coll.Delete(ids[:40]); err != nil {
		t.Fatal(err)
	}
	st := coll.Stats()
	if len(st.Shards) != 4 {
		t.Fatalf("breakdown has %d entries, want 4", len(st.Shards))
	}
	var rows int64
	var tombs, sealed, growing int
	var mem int64
	for i, ss := range st.Shards {
		if ss.Rows == 0 {
			t.Fatalf("shard %d holds no rows: routing is not spreading (%+v)", i, st.Shards)
		}
		rows += ss.Rows
		tombs += ss.Tombstones
		sealed += ss.Sealed
		growing += ss.GrowingRows
		mem += ss.MemoryBytes
	}
	if rows != st.Rows || rows != n-40 {
		t.Fatalf("per-shard rows sum %d, aggregate %d, want %d", rows, st.Rows, n-40)
	}
	if tombs != st.Tombstones || sealed != st.Sealed || growing != st.GrowingRows || mem != st.MemoryBytes {
		t.Fatalf("aggregates are not the per-shard sums: %+v", st)
	}
}

// TestShardedConcurrentChurn is the cross-shard race gate: concurrent
// inserts, deletes, batched searches, explicit compactions, and a final
// racing Close across a 4-shard collection. Run under `make race`.
func TestShardedConcurrentChurn(t *testing.T) {
	const dim = 8
	cfg := flatConfig(4)
	coll, err := NewCollection(cfg, linalg.L2, dim, 2000)
	if err != nil {
		t.Fatal(err)
	}
	vecs := randVecs(1200, dim, 51)
	qs := randVecs(8, dim, 52)

	var wg sync.WaitGroup
	insErr := make([]error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for off := w * 300; off < (w+1)*300; off += 20 {
				ids, err := coll.Insert(vecs[off : off+20])
				if err != nil {
					insErr[w] = err
					return
				}
				if off%60 == 0 {
					if _, err := coll.Delete(ids[:5]); err != nil {
						insErr[w] = err
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := coll.SearchBatch(qs, 5, nil); err != nil {
					return // collection may already be closed below
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := coll.Compact(); err != nil {
				return
			}
		}
	}()
	wg.Wait()
	for w, err := range insErr {
		if err != nil {
			t.Fatalf("inserter %d: %v", w, err)
		}
	}
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	st := coll.Stats()
	if st.Rows != 1200-4*5*5 {
		t.Fatalf("rows = %d after churn, want %d", st.Rows, 1200-4*5*5)
	}
	if err := coll.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-close operations fail cleanly on every path.
	if _, err := coll.Insert(vecs[:1]); err == nil {
		t.Fatal("insert after close succeeded")
	}
	if _, err := coll.SearchBatch(qs, 1, nil); err == nil {
		t.Fatal("search after close succeeded")
	}
	if err := coll.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestShardedCloseDuringInserts races Close against in-flight inserts on
// every shard: whatever interleaving wins, Close must wait out background
// builds and later operations must fail cleanly (no panic, no hang).
func TestShardedCloseDuringInserts(t *testing.T) {
	const dim = 8
	coll, err := NewCollection(flatConfig(4), linalg.L2, dim, 400)
	if err != nil {
		t.Fatal(err)
	}
	vecs := randVecs(800, dim, 53)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for off := w * 200; off < (w+1)*200; off += 10 {
				if _, err := coll.Insert(vecs[off : off+10]); err != nil {
					return // closed underneath us: expected
				}
			}
		}(w)
	}
	if err := coll.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := coll.Insert(vecs[:1]); err == nil {
		t.Fatal("insert after close succeeded")
	}
}

// TestShardedAngularNormalizes: inputs are normalized on their shard's
// arena row and queries once at the router, so angular search behaves
// identically across shard counts.
func TestShardedAngularNormalizes(t *testing.T) {
	coll, err := NewCollection(flatConfig(4), linalg.Angular, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	ids, err := coll.Insert([][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Same direction, different magnitude: must resolve to the same row.
	res, err := coll.Search([]float32{100, 0, 0, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != ids[0] {
		t.Fatalf("angular sharded search returned %+v, want id %d", res, ids[0])
	}
}

// TestShardedRecoveryContinuesIDs: after recovery the collection-wide id
// counter resumes past every shard's watermark, so new inserts get fresh
// ids (no reuse, no collision) and land searchable.
func TestShardedRecoveryContinuesIDs(t *testing.T) {
	const dim, n = 4, 120
	cfg := flatConfig(4)
	dir := t.TempDir()
	c, err := OpenDurable(dir, cfg, linalg.L2, dim, 400)
	if err != nil {
		t.Fatal(err)
	}
	vecs := randVecs(n, dim, 55)
	ids, err := c.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDurable(dir, cfg, linalg.L2, dim, 400)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	more := randVecs(10, dim, 56)
	newIDs, err := r.Insert(more)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range newIDs {
		if id != int64(n+i) {
			t.Fatalf("post-recovery id[%d] = %d, want %d (counter must resume past the watermark)", i, id, n+i)
		}
		hits, err := r.Search(more[i], 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) == 0 || hits[0].ID != id || hits[0].Dist != 0 {
			t.Fatalf("post-recovery insert %d not findable: %+v", id, hits)
		}
	}
	if got := r.Stats().Rows; got != n+10 {
		t.Fatalf("rows = %d, want %d", got, n+10)
	}
	// The originals are still exact hits too.
	for _, probe := range []int{0, 57, n - 1} {
		hits, err := r.Search(vecs[probe], 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) == 0 || hits[0].ID != ids[probe] || hits[0].Dist != 0 {
			t.Fatalf("recovered row %d not exact: %+v", ids[probe], hits)
		}
	}
}

// TestShardedRoutingFixed pins that routing is a pure function of the id:
// the same id set lands on the same shards in every run (and therefore in
// every recovery), which is what per-shard WAL replay relies on.
func TestShardedRoutingFixed(t *testing.T) {
	layout := func() string {
		coll, err := NewCollection(flatConfig(4), linalg.L2, 4, 100)
		if err != nil {
			t.Fatal(err)
		}
		defer coll.Close()
		if _, err := coll.Insert(randVecs(200, 4, 54)); err != nil {
			t.Fatal(err)
		}
		st := coll.Stats()
		out := ""
		for _, ss := range st.Shards {
			out += fmt.Sprintf("%d/", ss.Rows)
		}
		return out
	}
	a, b := layout(), layout()
	if a != b {
		t.Fatalf("per-shard row layout differs across identical runs: %s vs %s", a, b)
	}
}

// TestShardedParallelFanoutMatrix is the parallel scatter-gather identity
// matrix: shards {1,4,8} × workers {1,8} × {fresh, post-recovery} all
// answer the same insert-only FLAT workload with byte-identical
// SearchBatch results AND identical merged index.Stats. The workload is
// insert-only on purpose — FLAT distance-comp counts are then a pure
// function of the live row count (every query scans every row exactly
// once, however the rows are partitioned), so the accounting must match
// across shard counts too, proving no probe is skipped or double-counted
// by the grid, the pipelined merge, or recovery.
func TestShardedParallelFanoutMatrix(t *testing.T) {
	const dim, n, k, batch = 8, 600, 9, 75
	vecs := randVecs(n, dim, 61)
	qs := randVecs(18, dim, 62)

	load := func(coll *Collection) {
		t.Helper()
		for off := 0; off < n; off += batch {
			if _, err := coll.Insert(vecs[off : off+batch]); err != nil {
				t.Fatal(err)
			}
		}
		if err := coll.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	query := func(coll *Collection) ([][]linalg.Neighbor, index.Stats) {
		t.Helper()
		var st index.Stats
		res, err := coll.SearchBatch(qs, k, &st)
		if err != nil {
			t.Fatal(err)
		}
		return res, st
	}

	var baseRes [][]linalg.Neighbor
	var baseStats index.Stats
	for _, shards := range []int{1, 4, 8} {
		for _, workers := range []int{1, 8} {
			cfg := flatConfig(shards)
			cfg.Parallelism = workers

			fresh, err := NewCollection(cfg, linalg.L2, dim, n)
			if err != nil {
				t.Fatal(err)
			}
			load(fresh)
			freshRes, freshStats := query(fresh)
			fresh.Close()

			dcfg := cfg
			dcfg.WALFsyncPolicy = 3 // always
			dir := t.TempDir()
			live, err := OpenDurable(dir, dcfg, linalg.L2, dim, n)
			if err != nil {
				t.Fatal(err)
			}
			load(live)
			live.Crash()
			rec, err := OpenDurable(dir, dcfg, linalg.L2, dim, n)
			if err != nil {
				t.Fatal(err)
			}
			if err := rec.Flush(); err != nil {
				t.Fatal(err)
			}
			recRes, recStats := query(rec)
			rec.Close()

			if baseRes == nil {
				baseRes, baseStats = freshRes, freshStats
			}
			leg := fmt.Sprintf("shards=%d workers=%d", shards, workers)
			if !reflect.DeepEqual(freshRes, baseRes) {
				t.Fatalf("%s fresh: results differ from shards=1 workers=1", leg)
			}
			if freshStats != baseStats {
				t.Fatalf("%s fresh: merged stats %+v, want %+v", leg, freshStats, baseStats)
			}
			if !reflect.DeepEqual(recRes, baseRes) {
				t.Fatalf("%s recovered: results differ from shards=1 workers=1", leg)
			}
			if recStats != baseStats {
				t.Fatalf("%s recovered: merged stats %+v, want %+v", leg, recStats, baseStats)
			}
		}
	}
}

// TestShardedSearchGridRace is the race gate for the (query × shard)
// probe grid: batched searches run concurrently with cross-shard insert
// and delete churn and explicit compactions, and then a Close fires while
// searches are still in flight. Whatever interleaving wins, every
// operation either succeeds on a consistent snapshot or fails cleanly
// with the closed error — no panic, no hang, no torn read. Run under
// `make race`.
func TestShardedSearchGridRace(t *testing.T) {
	const dim = 8
	coll, err := NewCollection(flatConfig(4), linalg.L2, dim, 2000)
	if err != nil {
		t.Fatal(err)
	}
	vecs := randVecs(1000, dim, 63)
	qs := randVecs(12, dim, 64)
	if _, err := coll.Insert(vecs[:200]); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for off := 200 + w*400; off < 200+(w+1)*400; off += 16 {
				ids, err := coll.Insert(vecs[off : off+16])
				if err != nil {
					return // closed underneath us: expected
				}
				if off%64 == 0 {
					if _, err := coll.Delete(ids[:4]); err != nil {
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := coll.SearchBatch(qs, 6, nil); err != nil {
					return // closed: expected
				}
				if _, err := coll.Search(qs[0], 3, nil); err != nil {
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := coll.Compact(); err != nil {
				return
			}
		}
	}()
	// Close races the searchers and writers above.
	if err := coll.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if _, err := coll.SearchBatch(qs, 1, nil); err == nil {
		t.Fatal("search after close succeeded")
	}
}
