package vdms

import (
	"sync/atomic"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
)

// probeScratch is one scatter-gather worker's reusable state for probing a
// single shard: the shard-level top-k collector every segment feeds, the
// distance buffer of the exact tail scans, and the buffer the sorted probe
// result lands in. One worker owns one probeScratch for a whole fan-out,
// so a steady-state shard probe allocates nothing; the result slice a
// probe returns aliases ps.out and must be consumed (copied into the grid
// or the caller-visible slice) before the worker's next probe.
type probeScratch struct {
	top   linalg.TopK
	dists []float32
	out   []linalg.Neighbor
	// Multi-query tile state (searchMultiLocked): per-query shard-level
	// collectors (mtops values own the warmed heap arrays, mtopPtr is the
	// view the Index.SearchMultiInto contract wants), the flat arena the
	// drained results land in, and the per-query views into it. One worker
	// probes one (shard × query-tile) cell at a time, so the whole tile
	// shares this one scratch.
	mtops   []linalg.TopK
	mtopPtr []*linalg.TopK
	moutBuf []linalg.Neighbor
	mouts   [][]linalg.Neighbor
}

// ensureMulti sizes the multi-query tile state for a qn-query tile at
// fetch results per query, keeping every warmed buffer.
func (ps *probeScratch) ensureMulti(qn, fetch int) {
	if qn > len(ps.mtops) {
		mtops := make([]linalg.TopK, qn)
		copy(mtops, ps.mtops) // keep the warmed heap arrays
		ps.mtops = mtops
	}
	if qn > cap(ps.mtopPtr) {
		ps.mtopPtr = make([]*linalg.TopK, qn)
		ps.mouts = make([][]linalg.Neighbor, qn)
	}
	ps.mtopPtr = ps.mtopPtr[:qn]
	ps.mouts = ps.mouts[:qn]
	if cap(ps.moutBuf) < qn*fetch {
		ps.moutBuf = make([]linalg.Neighbor, qn*fetch)
	}
}

// gatherScratch is the working set of one scatter-gather call (Search or
// SearchBatch): per-worker probe scratches, the (query × shard) result
// grid, per-cell stats slots, and the per-query completion counters that
// drive the pipelined merge. It is pooled on the Collection; all buffers
// grow to the high-water mark and are then reused, so the sharded read
// path re-enters the alloc gate.
type gatherScratch struct {
	// probes[w] is worker w's private probe state.
	probes []probeScratch
	// cells is the Q×S×k result arena: grid cell (qi, si) owns
	// cells[(si*Q+qi)*k : ...+k] and cellLen records how much of it the
	// shard actually filled.
	cells   []linalg.Neighbor
	cellLen []int32
	// stats[cell] is that probe's private work counter; the slots are
	// summed in fixed cell order at the end (integer sums are
	// order-independent, so the accounting equals sequential probing).
	stats []index.Stats
	// pending[ti] counts query tile ti's unfinished shard probes. The
	// worker that decrements it to zero merges every query row in the
	// tile; the atomic ops order that merge after every contributing
	// write.
	pending []atomic.Int32
}

// getGather checks a gather scratch out of the pool, sized for a q-query ×
// s-shard grid at k results per cell on the given worker count, with the
// queries grouped into `tiles` probe tiles (tiles == q means one query per
// work cell, the pre-tiling layout). Stats slots are zeroed and pending
// counters armed per tile; the result grid needs no clearing (cellLen
// gates every read).
func (c *Collection) getGather(q, s, k, workers, tiles int) *gatherScratch {
	g, _ := c.gatherPool.Get().(*gatherScratch)
	if g == nil {
		g = &gatherScratch{}
	}
	if workers > len(g.probes) {
		probes := make([]probeScratch, workers)
		copy(probes, g.probes) // keep the warmed buffers
		g.probes = probes
	}
	cells := q * s
	if cap(g.cells) < cells*k {
		g.cells = make([]linalg.Neighbor, cells*k)
	}
	g.cells = g.cells[:cells*k]
	if cap(g.cellLen) < cells {
		g.cellLen = make([]int32, cells)
	}
	g.cellLen = g.cellLen[:cells]
	if cap(g.stats) < cells {
		g.stats = make([]index.Stats, cells)
	}
	g.stats = g.stats[:cells]
	for i := range g.stats {
		g.stats[i] = index.Stats{}
	}
	if cap(g.pending) < tiles {
		g.pending = make([]atomic.Int32, tiles)
	}
	g.pending = g.pending[:tiles]
	for i := range g.pending {
		g.pending[i].Store(int32(s))
	}
	return g
}

func (c *Collection) putGather(g *gatherScratch) { c.gatherPool.Put(g) }

// insertScratch is the pooled partition state of a routed Insert: the
// routing pass (owner, counts, cursors) and the per-shard sub-batch views
// carved out of two flat arenas. Nothing here survives the call — shards
// copy rows into their arenas and the WAL frames its own bytes — so the
// buffers are safe to reuse; the vector pointers are cleared on put so a
// pooled scratch does not pin the caller's last batch.
type insertScratch struct {
	owner    []uint8
	counts   []int
	offs     []int
	cur      []int
	idsBuf   []int64
	vecsBuf  [][]float32
	parts    [][]int64
	partVecs [][][]float32
	touched  []int
	errs     []error
}

// getInsert checks an insert scratch out of the pool, sized for an n-row
// batch across s shards. counts come back zeroed; everything else is
// length-set and overwritten by the partition passes.
func (c *Collection) getInsert(n, s int) *insertScratch {
	is, _ := c.insertPool.Get().(*insertScratch)
	if is == nil {
		is = &insertScratch{}
	}
	if cap(is.owner) < n {
		is.owner = make([]uint8, n)
		is.idsBuf = make([]int64, n)
		is.vecsBuf = make([][]float32, n)
	}
	is.owner = is.owner[:n]
	is.idsBuf = is.idsBuf[:n]
	is.vecsBuf = is.vecsBuf[:n]
	if cap(is.counts) < s {
		is.counts = make([]int, s)
		is.offs = make([]int, s)
		is.cur = make([]int, s)
		is.parts = make([][]int64, s)
		is.partVecs = make([][][]float32, s)
		is.touched = make([]int, 0, s)
		is.errs = make([]error, s)
	}
	is.counts = is.counts[:s]
	for i := range is.counts {
		is.counts[i] = 0
	}
	is.offs = is.offs[:s]
	is.cur = is.cur[:s]
	is.parts = is.parts[:s]
	is.partVecs = is.partVecs[:s]
	is.touched = is.touched[:0]
	is.errs = is.errs[:s]
	return is
}

func (c *Collection) putInsert(is *insertScratch) {
	for i := range is.vecsBuf {
		is.vecsBuf[i] = nil
	}
	for i := range is.errs {
		is.errs[i] = nil
	}
	c.insertPool.Put(is)
}
