//go:build !race

package vdms

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
