package vdms

import (
	"fmt"
	"os"
	"sort"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/persist"
)

// Durable collections. A Collection opened through OpenDurable pairs the
// in-memory engine with the persist subsystem's snapshot + write-ahead-log
// split, the way the production VDMS backends the paper tunes persist
// Milvus-style segment storage:
//
//   - every mutation (insert, delete, seal, compaction commit) appends a
//     WAL record under the same lock hold that applies it, so the log
//     order is exactly the engine's serialization order;
//   - acknowledgement durability follows Config.WALFsyncPolicy (never /
//     batch / always, group-committed);
//   - the compactor checkpoints after every committed pass — snapshot the
//     full state, rotate the WAL, drop the files the snapshot made
//     redundant — so the log stays bounded by the churn since the last
//     pass; Close takes a final checkpoint, making shutdown lossless even
//     under SyncNever.
//
// Recovery (OpenDurable on a non-empty directory) loads the newest valid
// snapshot, replays the WAL suffix, and truncates a torn tail. It is
// deterministic: segment indexes are rebuilt from raw rows with the same
// sequence-derived seeds the pre-crash engine used (see newSegmentIndex),
// so a recovered collection answers Search and SearchBatch bit-identically
// to the engine that crashed. One counter is approximate across recovery:
// CompactionPasses counts pass boundaries, which the WAL does not record
// (each pass's work is fully covered by its per-task commit records and
// usually by the snapshot the pass wrote).

// OpenDurable opens (or creates) a durable collection backed by the data
// directory dir. On a fresh directory it behaves like NewCollection plus
// logging; on a directory with prior state it recovers: newest valid
// snapshot, then the WAL suffix, with a torn trailing record truncated.
// The configuration must agree with the persisted state on dimension,
// metric, index type, and index build parameters (a silent change would
// silently change search results); system knobs may differ freely.
func OpenDurable(dir string, cfg Config, metric linalg.Metric, dim, expectedRows int) (*Collection, error) {
	if dir == "" {
		return nil, fmt.Errorf("vdms: OpenDurable requires a data directory")
	}
	c, err := NewCollection(cfg, metric, dim, expectedRows)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	snap, err := persist.LoadNewestSnapshot(dir)
	if err != nil {
		return nil, err
	}
	var after uint64
	if snap != nil {
		if err := c.restoreSnapshot(snap); err != nil {
			return nil, err
		}
		after = snap.CheckpointLSN
	}
	nextLSN, err := persist.ReplayWAL(dir, after, c.applyWALOp)
	if err != nil {
		return nil, err
	}
	w, err := persist.OpenWAL(persist.Options{
		Dir:         dir,
		Policy:      cfg.walFsyncPolicy(),
		GroupCommit: cfg.walGroupCommit(),
	}, nextLSN)
	if err != nil {
		return nil, err
	}
	c.wal = w
	c.dataDir = dir
	c.ckptLSN = after
	c.lastCkpt.Store(after)
	// A compaction trigger that was pending at the crash is pending again
	// now; restart it the way the pre-crash engine would have.
	c.mu.Lock()
	c.maybeCompactLocked()
	c.mu.Unlock()
	return c, nil
}

// restoreSnapshot installs a decoded snapshot into an empty collection,
// rebuilding every segment index deterministically from its raw rows.
func (c *Collection) restoreSnapshot(s *persist.Snapshot) error {
	if s.Dim != c.dim {
		return fmt.Errorf("vdms: snapshot dimension %d, collection opened with %d", s.Dim, c.dim)
	}
	if s.Metric != c.metric {
		return fmt.Errorf("vdms: snapshot metric %v, collection opened with %v", s.Metric, c.metric)
	}
	if s.IndexType != c.cfg.IndexType {
		return fmt.Errorf("vdms: snapshot index type %v, configuration says %v", s.IndexType, c.cfg.IndexType)
	}
	if a, b := s.Build, c.cfg.Build; a.NList != b.NList || a.M != b.M || a.NBits != b.NBits ||
		a.HNSWM != b.HNSWM || a.EfConstruction != b.EfConstruction || a.Seed != b.Seed {
		return fmt.Errorf("vdms: snapshot index build parameters differ from the configuration")
	}
	c.nextID = s.NextID
	c.sealSeq = s.SealSeq
	c.rows = s.Rows
	c.compactionPasses = s.CompactionPasses
	c.compactedSegments = s.CompactedSegments
	c.reclaimedRows = s.ReclaimedRows
	if len(s.Tombstones) > 0 {
		c.tombstones = make(map[int64]struct{}, len(s.Tombstones))
		for _, id := range s.Tombstones {
			c.tombstones[id] = struct{}{}
		}
	}
	// Install the growing tail before landing segments: a segment whose
	// rebuild fails deterministically requeues its rows into growing, and
	// those must append to the tail, not be overwritten by it.
	if s.Growing != nil && s.Growing.Rows() > 0 {
		c.growing = s.Growing
		c.growingIDs = s.GrowingIDs
	}
	for i := range s.Segments {
		seg := &s.Segments[i]
		c.landSegment(seg.Store, seg.IDs, seg.Seq)
		if seg.Seq >= c.sealSeq {
			c.sealSeq = seg.Seq + 1
		}
	}
	return nil
}

// applyWALOp replays one WAL record onto the recovering collection. It
// runs before the collection is shared, so no locking is involved; seals
// and compaction rebuilds happen synchronously, in log order, which is
// exactly the serialization order of the pre-crash engine.
func (c *Collection) applyWALOp(op *persist.WALOp) error {
	switch op.Type {
	case persist.RecInsert:
		if op.FirstID != c.nextID {
			return fmt.Errorf("vdms: WAL replay: insert record starts at id %d, engine expects %d (snapshot and log disagree)", op.FirstID, c.nextID)
		}
		if op.Dim != c.dim {
			return fmt.Errorf("vdms: WAL replay: insert record dimension %d, collection has %d", op.Dim, c.dim)
		}
		for i := 0; i < op.Count; i++ {
			if c.growing == nil {
				c.growing = linalg.NewMatrix(c.dim, c.sealRows)
			}
			c.growing.AppendRow(op.Vectors[i*op.Dim : (i+1)*op.Dim])
			if c.metric == linalg.Angular {
				linalg.Normalize(c.growing.Row(c.growing.Rows() - 1))
			}
			c.growingIDs = append(c.growingIDs, c.nextID)
			c.nextID++
			c.rows++
		}
	case persist.RecDelete:
		c.deleteLocked(op.IDs)
	case persist.RecFlush:
		c.replayFlush(op.Seq)
	case persist.RecCompactCommit:
		return c.replayCompactCommit(op)
	default:
		return fmt.Errorf("vdms: WAL replay: unexpected record type %d", op.Type)
	}
	return nil
}

// landSegment builds the index for one recovered segment and installs it
// as sealed. A deterministic build failure mirrors the live engine's
// failed-seal path: the rows fall back into the growing tail (minus any
// tombstoned ones, whose tombstones are then garbage) and the error is
// recorded.
func (c *Collection) landSegment(store *linalg.Matrix, ids []int64, seq int64) {
	m := c.metric
	if m == linalg.Angular {
		m = linalg.L2 // inputs were normalized on insert
	}
	idx, err := newSegmentIndex(c.cfg, m, c.dim, seq)
	if err == nil {
		err = idx.Build(store, ids)
	}
	if err != nil {
		c.buildErrOnce.Do(func() { c.buildErr = err })
		for i, id := range ids {
			if _, dead := c.tombstones[id]; dead {
				delete(c.tombstones, id)
				continue
			}
			if c.growing == nil {
				c.growing = linalg.NewMatrix(c.dim, store.Rows())
			}
			c.growing.AppendRow(store.Row(i))
			c.growingIDs = append(c.growingIDs, id)
		}
		return
	}
	ss := &sealedSegment{seq: seq, store: store, ids: ids, idx: idx}
	for _, id := range ss.ids {
		if _, dead := c.tombstones[id]; dead {
			ss.dead++
		}
	}
	c.insertSealedLocked(ss)
}

// replayFlush replays a RecFlush record: seal the growing tail as segment
// seq and build its index synchronously.
func (c *Collection) replayFlush(seq int64) {
	if seq >= c.sealSeq {
		c.sealSeq = seq + 1
	}
	if c.growingRowsLocked() == 0 {
		return
	}
	index.SortRowsByID(c.growing, c.growingIDs)
	store, ids := c.growing, c.growingIDs
	c.growing, c.growingIDs = nil, nil
	c.landSegment(store, ids, seq)
}

// replayCompactCommit replays one committed compaction task: rebuild the
// replacement segment from the recorded surviving ids and drop the
// sources, exactly as the pre-crash commit did.
func (c *Collection) replayCompactCommit(op *persist.WALOp) error {
	if op.Seq >= c.sealSeq {
		c.sealSeq = op.Seq + 1
	}
	var sources []*sealedSegment
	for _, seq := range op.Sources {
		var found *sealedSegment
		for _, seg := range c.sealed {
			if seg.seq == seq {
				found = seg
				break
			}
		}
		if found == nil {
			return fmt.Errorf("vdms: WAL replay: compaction commit references unknown segment seq %d", seq)
		}
		sources = append(sources, found)
	}
	live := make(map[int64]struct{}, len(op.LiveIDs))
	for _, id := range op.LiveIDs {
		live[id] = struct{}{}
	}
	in := compactInput{store: linalg.NewMatrix(c.dim, len(op.LiveIDs)), dropped: op.Dropped}
	for _, seg := range sources {
		for i, id := range seg.ids {
			if _, ok := live[id]; ok {
				in.store.AppendRow(seg.store.Row(i))
				in.ids = append(in.ids, id)
			}
		}
	}
	if len(in.ids) != len(op.LiveIDs) {
		return fmt.Errorf("vdms: WAL replay: compaction commit lists %d surviving ids, sources hold %d of them", len(op.LiveIDs), len(in.ids))
	}
	index.SortRowsByID(in.store, in.ids)
	seg, err := buildCompacted(c.cfg, c.metric, c.dim, in, op.Seq)
	if err != nil {
		// Mirror the live engine: sources stay, excluded from future plans.
		c.buildErrOnce.Do(func() { c.buildErr = err })
		for _, s := range sources {
			s.noCompact = true
		}
		return nil
	}
	c.removeSealedLocked(sources)
	if seg != nil {
		for _, id := range seg.ids {
			if _, dead := c.tombstones[id]; dead {
				seg.dead++
			}
		}
		c.insertSealedLocked(seg)
	}
	for _, id := range op.Dropped {
		delete(c.tombstones, id)
	}
	c.compactedSegments += int64(len(sources))
	c.reclaimedRows += int64(len(op.Dropped))
	return nil
}

// snapshotLocked captures the collection's full durable state. Sealed and
// sealing stores are immutable, so the snapshot references them directly;
// the growing tail is mutable and gets copied. Callers hold c.mu.
func (c *Collection) snapshotLocked() *persist.Snapshot {
	s := &persist.Snapshot{
		CheckpointLSN:     c.wal.LastLSN(),
		Dim:               c.dim,
		Metric:            c.metric,
		IndexType:         c.cfg.IndexType,
		Build:             c.cfg.Build,
		NextID:            c.nextID,
		SealSeq:           c.sealSeq,
		Rows:              c.rows,
		CompactionPasses:  c.compactionPasses,
		CompactedSegments: c.compactedSegments,
		ReclaimedRows:     c.reclaimedRows,
	}
	for _, seg := range c.sealed {
		s.Segments = append(s.Segments, persist.SnapSegment{Seq: seg.seq, IDs: seg.ids, Store: seg.store})
	}
	// In-flight builds are not waited for: a sealing segment snapshots as
	// its rows + seq, and recovery rebuilds the identical index.
	for _, seg := range c.sealing {
		s.Segments = append(s.Segments, persist.SnapSegment{Seq: seg.seq, IDs: seg.ids, Store: seg.store})
	}
	sort.Slice(s.Segments, func(i, j int) bool { return s.Segments[i].Seq < s.Segments[j].Seq })
	if n := c.growingRowsLocked(); n > 0 {
		g := linalg.NewMatrix(c.dim, n)
		for i := 0; i < n; i++ {
			g.AppendRow(c.growing.Row(i))
		}
		s.Growing = g
		s.GrowingIDs = append([]int64(nil), c.growingIDs...)
	}
	if len(c.tombstones) > 0 {
		s.Tombstones = make([]int64, 0, len(c.tombstones))
		for id := range c.tombstones {
			s.Tombstones = append(s.Tombstones, id)
		}
		sort.Slice(s.Tombstones, func(i, j int) bool { return s.Tombstones[i] < s.Tombstones[j] })
	}
	return s
}

// Checkpoint persists a snapshot of the current state and truncates the
// WAL to the records beyond it. The previous snapshot generation (and the
// WAL files it needs) is kept until the next checkpoint, so a damaged
// newest snapshot still leaves a recoverable directory. On a memory-only
// collection it is a no-op.
func (c *Collection) Checkpoint() error {
	if c.wal == nil {
		return nil
	}
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	// Drain the log to disk before taking the engine lock: Rotate below
	// fsyncs while every Search and Insert is blocked on c.mu, so this
	// pre-sync (which blocks nobody) leaves it almost nothing to flush —
	// only the records appended in the gap between here and the lock.
	if err := c.wal.Sync(); err != nil {
		return fmt.Errorf("vdms: syncing WAL before checkpoint: %w", err)
	}
	c.mu.Lock()
	snap := c.snapshotLocked()
	// Rotate inside the same lock hold that captured the state: records
	// after the snapshot boundary land in the new file, so truncation
	// can simply drop whole old files.
	err := c.wal.Rotate()
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("vdms: rotating WAL: %w", err)
	}
	if err := persist.WriteSnapshot(c.dataDir, snap); err != nil {
		// The snapshot failed but the rotated WAL files all survive:
		// recovery still has the previous snapshot plus a complete log.
		return fmt.Errorf("vdms: writing snapshot: %w", err)
	}
	keep := c.ckptLSN // the generation before this one
	c.ckptLSN = snap.CheckpointLSN
	c.lastCkpt.Store(snap.CheckpointLSN)
	// Retention trimming is best-effort: a failure here costs disk, not
	// durability, and the next checkpoint retries it.
	_ = persist.RemoveObsoleteSnapshots(c.dataDir, keep)
	_ = c.wal.RemoveObsolete(keep)
	return nil
}

// DisableAutoCheckpoint stops the compactor from checkpointing after
// each committed pass: WAL records then accumulate until an explicit
// Checkpoint or Close. Operators who prefer scheduled checkpoints (or
// tests that must exercise long log replays, compaction commits
// included) use this; durability is unaffected — only the recovery
// replay length grows.
func (c *Collection) DisableAutoCheckpoint() {
	c.mu.Lock()
	c.noAutoCkpt = true
	c.mu.Unlock()
}

// Crash abandons the collection the way a process crash would: background
// work is stopped, but no flush, snapshot, or WAL sync happens, and
// records still buffered in user space are discarded. What survives on
// disk is exactly what the fsync policy had made durable. It exists for
// crash-recovery testing; production shutdown is Close.
func (c *Collection) Crash() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.builds.Wait()
	c.waitCompactions()
	if c.wal != nil {
		c.wal.Crash()
	}
}
