package vdms

import (
	"fmt"
	"os"
	"sort"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
	"vdtuner/internal/persist"
)

// Durable collections. A Collection opened through OpenDurable pairs the
// in-memory engine with the persist subsystem's snapshot + write-ahead-log
// split, sharded the way the production VDMS backends the paper tunes
// persist Milvus-style segment storage per channel:
//
//	dir/
//	  MANIFEST     shard count, dimension, metric (versioned; see persist)
//	  shard-0/     shard 0's snapshots + WAL
//	  shard-1/     ...
//
// Each shard is an independent durability domain:
//
//   - every mutation routed to it (insert, delete, seal, compaction
//     commit) appends a record to its WAL under the same lock hold that
//     applies it, so each log's order is exactly its shard's
//     serialization order;
//   - acknowledgement durability follows Config.WALFsyncPolicy (never /
//     batch / always, group-committed) — concurrent inserts to different
//     shards fsync different files in parallel;
//   - each shard's compactor checkpoints after every committed pass, and
//     Close takes a final checkpoint per shard, so every log stays
//     bounded by its shard's churn.
//
// Recovery (OpenDurable on a non-empty directory) validates the manifest
// against the opening configuration, then recovers every shard in
// parallel over the engine's worker pool: newest valid snapshot, WAL
// suffix replay, torn-tail truncation — shards never wait on each other.
// It is deterministic: segment indexes are rebuilt from raw rows with the
// same sequence-derived seeds the pre-crash engine used (see
// newSegmentIndex), so a recovered collection answers Search and
// SearchBatch bit-identically to the engine that crashed. One counter is
// approximate across recovery: CompactionPasses counts pass boundaries,
// which the WAL does not record (each pass's work is fully covered by its
// per-task commit records and usually by the snapshot the pass wrote).

// OpenDurable opens (or creates) a durable collection backed by the data
// directory dir. On a fresh directory it behaves like NewCollection plus
// a manifest and per-shard logging; on a directory with prior state it
// recovers every shard (in parallel): newest valid snapshot, then the WAL
// suffix, with a torn trailing record truncated. The configuration must
// agree with the persisted state on shard count (a silent change would
// re-route ids), dimension, metric, index type, and index build
// parameters (a silent change would silently change search results);
// system knobs may differ freely.
func OpenDurable(dir string, cfg Config, metric linalg.Metric, dim, expectedRows int) (*Collection, error) {
	if dir == "" {
		return nil, fmt.Errorf("vdms: OpenDurable requires a data directory")
	}
	c, err := NewCollection(cfg, metric, dim, expectedRows)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	man, err := persist.LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	if man == nil {
		legacy, err := persist.HasLegacyLayout(dir)
		if err != nil {
			return nil, err
		}
		if legacy {
			return nil, fmt.Errorf("vdms: %s holds a pre-sharding data layout (top-level snapshot/WAL files, no manifest); migrate it by replaying into a fresh directory", dir)
		}
		man = &persist.Manifest{Shards: len(c.shards), Dim: dim, Metric: metric}
		if err := persist.WriteManifest(dir, man); err != nil {
			return nil, err
		}
	}
	if man.Shards != len(c.shards) {
		return nil, fmt.Errorf("vdms: configuration says %d shards, directory %s holds %d (the id routing would change); open at %d shards and Reconfigure to reshard online", len(c.shards), dir, man.Shards, man.Shards)
	}
	if man.Dim != dim {
		return nil, fmt.Errorf("vdms: manifest dimension %d, collection opened with %d", man.Dim, dim)
	}
	if man.Metric != metric {
		return nil, fmt.Errorf("vdms: manifest metric %v, collection opened with %v", man.Metric, metric)
	}
	// Generation directories not named by the manifest are the debris of a
	// migration that crashed before (or just after) its commit rename;
	// clearing them is best-effort — they cost disk, never correctness.
	_ = persist.RemoveStaleGenerations(dir, man)
	c.diskGen = man.Generation
	// Recover the shards in parallel: each replays only its own snapshot
	// and log, so recovery wall time is the slowest shard, not the sum.
	errs := make([]error, len(c.shards))
	parallel.Parallel(cfg.Parallelism, len(c.shards), func(i int) {
		errs[i] = c.shards[i].openDurable(man.ShardDir(dir, i))
	})
	if err := firstError(errs); err != nil {
		// Abandon whatever the other shards already opened.
		for _, s := range c.shards {
			if s.wal != nil {
				s.wal.Crash()
			}
		}
		return nil, err
	}
	c.dataDir = dir
	// Seed the collection-wide id counter past every shard's watermark.
	var next int64
	for _, s := range c.shards {
		if s.nextID > next {
			next = s.nextID
		}
	}
	c.nextID.Store(next)
	// A compaction trigger that was pending at the crash is pending again
	// now; restart it the way the pre-crash engine would have.
	for _, s := range c.shards {
		s.mu.Lock()
		s.maybeCompactLocked()
		s.mu.Unlock()
	}
	return c, nil
}

// openDurable recovers (or creates) one shard's durability domain rooted
// at sdir and leaves the shard with an open WAL.
func (s *shard) openDurable(sdir string) error {
	if err := os.MkdirAll(sdir, 0o777); err != nil {
		return err
	}
	snap, err := persist.LoadNewestSnapshot(sdir)
	if err != nil {
		return err
	}
	var after uint64
	if snap != nil {
		if err := s.restoreSnapshot(snap); err != nil {
			return err
		}
		after = snap.CheckpointLSN
	}
	nextLSN, err := persist.ReplayWAL(sdir, after, s.applyWALOp)
	if err != nil {
		return err
	}
	cfg := s.config()
	w, err := persist.OpenWAL(persist.Options{
		Dir:         sdir,
		Policy:      cfg.walFsyncPolicy(),
		GroupCommit: cfg.walGroupCommit(),
	}, nextLSN)
	if err != nil {
		return err
	}
	s.wal = w
	s.dataDir = sdir
	s.ckptLSN = after
	s.lastCkpt.Store(after)
	return nil
}

// restoreSnapshot installs a decoded snapshot into an empty shard,
// rebuilding every segment index deterministically from its raw rows.
func (s *shard) restoreSnapshot(snap *persist.Snapshot) error {
	if snap.Dim != s.dim {
		return fmt.Errorf("vdms: snapshot dimension %d, collection opened with %d", snap.Dim, s.dim)
	}
	if snap.Metric != s.metric {
		return fmt.Errorf("vdms: snapshot metric %v, collection opened with %v", snap.Metric, s.metric)
	}
	cfg := s.config()
	if snap.IndexType != cfg.IndexType {
		return fmt.Errorf("vdms: snapshot index type %v, configuration says %v", snap.IndexType, cfg.IndexType)
	}
	if a, b := snap.Build, cfg.Build; a.NList != b.NList || a.M != b.M || a.NBits != b.NBits ||
		a.HNSWM != b.HNSWM || a.EfConstruction != b.EfConstruction || a.Seed != b.Seed {
		return fmt.Errorf("vdms: snapshot index build parameters differ from the configuration")
	}
	s.nextID = snap.NextID
	s.sealSeq = snap.SealSeq
	s.rows = snap.Rows
	s.compactionPasses = snap.CompactionPasses
	s.compactedSegments = snap.CompactedSegments
	s.reclaimedRows = snap.ReclaimedRows
	if len(snap.Tombstones) > 0 {
		s.tombstones = make(map[int64]struct{}, len(snap.Tombstones))
		for _, id := range snap.Tombstones {
			s.tombstones[id] = struct{}{}
		}
	}
	// Install the growing tail before landing segments: a segment whose
	// rebuild fails deterministically requeues its rows into growing, and
	// those must append to the tail, not be overwritten by it.
	if snap.Growing != nil && snap.Growing.Rows() > 0 {
		s.growing = snap.Growing
		s.growingIDs = snap.GrowingIDs
	}
	for i := range snap.Segments {
		seg := &snap.Segments[i]
		s.landSegment(seg.Store, seg.IDs, seg.Seq)
		if seg.Seq >= s.sealSeq {
			s.sealSeq = seg.Seq + 1
		}
	}
	return nil
}

// applyWALOp replays one WAL record onto the recovering shard. It runs
// before the shard is shared, so no locking is involved; seals and
// compaction rebuilds happen synchronously, in log order, which is
// exactly the serialization order of this shard in the pre-crash engine.
func (s *shard) applyWALOp(op *persist.WALOp) error {
	switch op.Type {
	case persist.RecInsert:
		if op.Dim != s.dim {
			return fmt.Errorf("vdms: WAL replay: insert record dimension %d, collection has %d", op.Dim, s.dim)
		}
		for i := 0; i < op.Count; i++ {
			s.applyInsertRowLocked(op.FirstID+int64(i), op.Vectors[i*op.Dim:(i+1)*op.Dim])
		}
	case persist.RecInsertIDs:
		if op.Dim != s.dim {
			return fmt.Errorf("vdms: WAL replay: insert record dimension %d, collection has %d", op.Dim, s.dim)
		}
		for i, id := range op.IDs {
			s.applyInsertRowLocked(id, op.Vectors[i*op.Dim:(i+1)*op.Dim])
		}
	case persist.RecDelete:
		s.deleteLocked(op.IDs, nil)
	case persist.RecFlush:
		s.replayFlush(op.Seq)
	case persist.RecCompactCommit:
		return s.replayCompactCommit(op)
	default:
		return fmt.Errorf("vdms: WAL replay: unexpected record type %d", op.Type)
	}
	return nil
}

// landSegment builds the index for one recovered segment and installs it
// as sealed. A deterministic build failure mirrors the live engine's
// failed-seal path: the rows fall back into the growing tail (minus any
// tombstoned ones, whose tombstones are then garbage) and the error is
// recorded.
func (s *shard) landSegment(store *linalg.Matrix, ids []int64, seq int64) {
	m := s.metric
	if m == linalg.Angular {
		m = linalg.L2 // inputs were normalized on insert
	}
	idx, err := newSegmentIndex(*s.config(), m, s.dim, seq)
	if err == nil {
		err = idx.Build(store, ids)
	}
	if err != nil {
		s.buildErrOnce.Do(func() { s.buildErr = err })
		for i, id := range ids {
			if _, dead := s.tombstones[id]; dead {
				delete(s.tombstones, id)
				continue
			}
			if s.growing == nil {
				s.growing = linalg.NewMatrix(s.dim, store.Rows())
			}
			s.growing.AppendRow(store.Row(i))
			s.growingIDs = append(s.growingIDs, id)
		}
		return
	}
	ss := &sealedSegment{seq: seq, store: store, ids: ids, idx: idx}
	for _, id := range ss.ids {
		if _, dead := s.tombstones[id]; dead {
			ss.dead++
		}
	}
	s.insertSealedLocked(ss)
}

// replayFlush replays a RecFlush record: seal the growing tail as segment
// seq and build its index synchronously.
func (s *shard) replayFlush(seq int64) {
	if seq >= s.sealSeq {
		s.sealSeq = seq + 1
	}
	if s.growingRowsLocked() == 0 {
		return
	}
	index.SortRowsByID(s.growing, s.growingIDs)
	store, ids := s.growing, s.growingIDs
	s.growing, s.growingIDs = nil, nil
	s.landSegment(store, ids, seq)
}

// replayCompactCommit replays one committed compaction task: rebuild the
// replacement segment from the recorded surviving ids and drop the
// sources, exactly as the pre-crash commit did.
func (s *shard) replayCompactCommit(op *persist.WALOp) error {
	if op.Seq >= s.sealSeq {
		s.sealSeq = op.Seq + 1
	}
	var sources []*sealedSegment
	for _, seq := range op.Sources {
		var found *sealedSegment
		for _, seg := range s.sealed {
			if seg.seq == seq {
				found = seg
				break
			}
		}
		if found == nil {
			return fmt.Errorf("vdms: WAL replay: compaction commit references unknown segment seq %d", seq)
		}
		sources = append(sources, found)
	}
	live := make(map[int64]struct{}, len(op.LiveIDs))
	for _, id := range op.LiveIDs {
		live[id] = struct{}{}
	}
	in := compactInput{store: linalg.NewMatrix(s.dim, len(op.LiveIDs)), dropped: op.Dropped}
	for _, seg := range sources {
		for i, id := range seg.ids {
			if _, ok := live[id]; ok {
				in.store.AppendRow(seg.store.Row(i))
				in.ids = append(in.ids, id)
			}
		}
	}
	if len(in.ids) != len(op.LiveIDs) {
		return fmt.Errorf("vdms: WAL replay: compaction commit lists %d surviving ids, sources hold %d of them", len(op.LiveIDs), len(in.ids))
	}
	index.SortRowsByID(in.store, in.ids)
	seg, err := buildCompacted(*s.config(), s.metric, s.dim, in, op.Seq)
	if err != nil {
		// Mirror the live engine: sources stay, excluded from future plans.
		s.buildErrOnce.Do(func() { s.buildErr = err })
		for _, src := range sources {
			src.noCompact = true
		}
		return nil
	}
	s.removeSealedLocked(sources)
	if seg != nil {
		for _, id := range seg.ids {
			if _, dead := s.tombstones[id]; dead {
				seg.dead++
			}
		}
		s.insertSealedLocked(seg)
	}
	for _, id := range op.Dropped {
		delete(s.tombstones, id)
	}
	s.compactedSegments += int64(len(sources))
	s.reclaimedRows += int64(len(op.Dropped))
	return nil
}

// snapshotLocked captures the shard's full durable state. Sealed and
// sealing stores are immutable, so the snapshot references them directly;
// the growing tail is mutable and gets copied. Callers hold s.mu.
func (s *shard) snapshotLocked() *persist.Snapshot {
	cfg := s.config()
	snap := &persist.Snapshot{
		Dim:               s.dim,
		Metric:            s.metric,
		IndexType:         cfg.IndexType,
		Build:             cfg.Build,
		NextID:            s.nextID,
		SealSeq:           s.sealSeq,
		Rows:              s.rows,
		CompactionPasses:  s.compactionPasses,
		CompactedSegments: s.compactedSegments,
		ReclaimedRows:     s.reclaimedRows,
	}
	// Migration snapshots are taken before the shard has a WAL: their
	// checkpoint boundary is LSN 0 (the new log starts at 1 and replays
	// whole).
	if s.wal != nil {
		snap.CheckpointLSN = s.wal.LastLSN()
	}
	for _, seg := range s.sealed {
		snap.Segments = append(snap.Segments, persist.SnapSegment{Seq: seg.seq, IDs: seg.ids, Store: seg.store})
	}
	// In-flight builds are not waited for: a sealing segment snapshots as
	// its rows + seq, and recovery rebuilds the identical index.
	for _, seg := range s.sealing {
		snap.Segments = append(snap.Segments, persist.SnapSegment{Seq: seg.seq, IDs: seg.ids, Store: seg.store})
	}
	sort.Slice(snap.Segments, func(i, j int) bool { return snap.Segments[i].Seq < snap.Segments[j].Seq })
	if n := s.growingRowsLocked(); n > 0 {
		g := linalg.NewMatrix(s.dim, n)
		for i := 0; i < n; i++ {
			g.AppendRow(s.growing.Row(i))
		}
		snap.Growing = g
		snap.GrowingIDs = append([]int64(nil), s.growingIDs...)
	}
	if len(s.tombstones) > 0 {
		snap.Tombstones = make([]int64, 0, len(s.tombstones))
		for id := range s.tombstones {
			snap.Tombstones = append(snap.Tombstones, id)
		}
		sort.Slice(snap.Tombstones, func(i, j int) bool { return snap.Tombstones[i] < snap.Tombstones[j] })
	}
	return snap
}

// checkpoint persists a snapshot of this shard's state and truncates its
// WAL to the records beyond it. The previous snapshot generation (and the
// WAL files it needs) is kept until the next checkpoint, so a damaged
// newest snapshot still leaves a recoverable shard directory. On a
// memory-only shard it is a no-op.
func (s *shard) checkpoint() error {
	if s.wal == nil {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	// Drain the log to disk before taking the shard lock: Rotate below
	// fsyncs while this shard's Searches and inserts are blocked on s.mu,
	// so this pre-sync (which blocks nobody) leaves it almost nothing to
	// flush — only the records appended in the gap between here and the
	// lock.
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("vdms: syncing WAL before checkpoint: %w", err)
	}
	s.mu.Lock()
	snap := s.snapshotLocked()
	// Rotate inside the same lock hold that captured the state: records
	// after the snapshot boundary land in the new file, so truncation
	// can simply drop whole old files.
	err := s.wal.Rotate()
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("vdms: rotating WAL: %w", err)
	}
	if err := persist.WriteSnapshot(s.dataDir, snap); err != nil {
		// The snapshot failed but the rotated WAL files all survive:
		// recovery still has the previous snapshot plus a complete log.
		return fmt.Errorf("vdms: writing snapshot: %w", err)
	}
	keep := s.ckptLSN // the generation before this one
	s.ckptLSN = snap.CheckpointLSN
	s.lastCkpt.Store(snap.CheckpointLSN)
	// Retention trimming is best-effort: a failure here costs disk, not
	// durability, and the next checkpoint retries it.
	_ = persist.RemoveObsoleteSnapshots(s.dataDir, keep)
	_ = s.wal.RemoveObsolete(keep)
	return nil
}

// Checkpoint persists a snapshot of every shard's current state and
// truncates each shard's WAL to the records beyond it. Shards checkpoint
// independently and in parallel (each under its own locks and into its
// own directory), so an explicit checkpoint costs the slowest shard's
// snapshot, not the sum; the first failure (in shard order) is returned,
// leaving failed shards to their next compactor-driven or explicit
// checkpoint. On a memory-only collection it is a no-op.
func (c *Collection) Checkpoint() error {
	c.router.RLock()
	defer c.router.RUnlock()
	errs := make([]error, len(c.shards))
	parallel.Parallel(len(c.shards), len(c.shards), func(i int) {
		errs[i] = c.shards[i].checkpoint()
	})
	return firstError(errs)
}

// DisableAutoCheckpoint stops every shard's compactor from checkpointing
// after each committed pass: WAL records then accumulate until an
// explicit Checkpoint or Close. Operators who prefer scheduled
// checkpoints (or tests that must exercise long log replays, compaction
// commits included) use this; durability is unaffected — only the
// recovery replay length grows.
func (c *Collection) DisableAutoCheckpoint() {
	c.router.RLock()
	defer c.router.RUnlock()
	for _, s := range c.shards {
		s.mu.Lock()
		s.noAutoCkpt = true
		s.mu.Unlock()
	}
}

// Crash abandons the collection the way a process crash would: background
// work is stopped, but no flush, snapshot, or WAL sync happens, and
// records still buffered in user space are discarded. What survives on
// disk is exactly what the fsync policy had made durable, shard by shard.
// It exists for crash-recovery testing; production shutdown is Close.
func (c *Collection) Crash() {
	c.closed.Store(true)
	// Serialized against a migration cutover the same way Close is: the
	// cutover either already swapped the shard set or will observe closed
	// and abort.
	c.router.Lock()
	defer c.router.Unlock()
	for _, s := range c.shards {
		s.crash()
	}
}
