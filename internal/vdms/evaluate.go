package vdms

import (
	"errors"

	"vdtuner/internal/index"
	"vdtuner/internal/parallel"
	"vdtuner/internal/workload"
)

// Result is the outcome of evaluating one configuration against one
// workload — the observation the tuner learns from.
type Result struct {
	// QPS is the simulated search throughput (requests/second) at the
	// workload's concurrency.
	QPS float64
	// Recall is the mean recall@K across the query set.
	Recall float64
	// MemoryBytes is the engine's resident footprint.
	MemoryBytes int64
	// BuildSeconds is the simulated data load + index build time.
	BuildSeconds float64
	// ReplaySeconds is the simulated end-to-end evaluation time (build +
	// query replay); the paper's Table VI "workload replay" column.
	ReplaySeconds float64
	// Failed marks configurations that crashed or timed out. Failed
	// results carry zero QPS/recall; the tuner substitutes worst-case
	// values per its own policy (paper §V-A).
	Failed bool
	// FailReason explains a failure.
	FailReason string
}

// Evaluate opens the dataset under cfg, replays the full query workload,
// and returns the measured performance. It is deterministic for a given
// (dataset, cfg) pair.
func Evaluate(ds *workload.Dataset, cfg Config) Result {
	return EvaluateWorkers(ds, cfg, 0)
}

// EvaluateWorkers is Evaluate with an explicit replay worker-pool size
// (<= 0 means one worker per CPU). The result is identical for any value
// — per-query slots are independent and build parallelism is deterministic
// — so the knob only trades wall-clock time, which is what the bench
// harness tunes.
func EvaluateWorkers(ds *workload.Dataset, cfg Config, workers int) Result {
	inst, err := Open(ds, cfg)
	if err != nil {
		var fe *FailureError
		if errors.As(err, &fe) {
			return Result{Failed: true, FailReason: fe.Reason}
		}
		return Result{Failed: true, FailReason: err.Error()}
	}

	nq := len(ds.Queries)
	latencies := make([]float64, nq)
	recalls := make([]float64, nq)
	wait := syncWaitMs(&cfg, inst.pendingFraction)

	parallel.Parallel(workers, nq, func(qi int) {
		var st index.Stats
		res := inst.Search(ds.Queries[qi], ds.K, &st)
		recalls[qi] = ds.Recall(qi, res)
		workNs := workNanos(st, ds.Dim, cfg.CacheRatio)
		latencies[qi] = queryLatencySec(workNs, inst.segments, &cfg, wait, inst.bgLoad)
	})

	var latSum, recSum float64
	for qi := 0; qi < nq; qi++ {
		latSum += latencies[qi]
		recSum += recalls[qi]
	}
	avgLat := latSum / float64(nq)
	qps := float64(cfg.concurrency()) / avgLat

	// Simulated replay time mirrors the paper's workload replay: build
	// the collection, then serve a fixed request budget. The request
	// budget is scaled so replay dominates like it does on the testbed.
	const replayRequests = 20000
	replaySec := inst.buildSeconds + replayRequests*avgLat/float64(cfg.concurrency())
	if replaySec > replayTimeoutSec {
		return Result{Failed: true, FailReason: "replay exceeded 15-minute limit",
			BuildSeconds: inst.buildSeconds, ReplaySeconds: replaySec}
	}
	return Result{
		QPS:           qps,
		Recall:        recSum / float64(nq),
		MemoryBytes:   inst.memoryBytes,
		BuildSeconds:  inst.buildSeconds,
		ReplaySeconds: replaySec,
	}
}
