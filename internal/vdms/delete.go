package vdms

import (
	"fmt"

	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
)

// Deletion support for live collections. Milvus implements deletes as
// tombstones filtered at query time until compaction; this file does the
// same, per shard: deleted ids in sealed/sealing data are recorded in the
// owning shard's tombstone set and filtered out of every search until its
// compactor (compact.go) rewrites their segments, while deletes of
// growing rows are applied physically at once and never tombstoned. Each
// tombstone set therefore stays bounded by the dead rows actually
// awaiting compaction on that shard.

// Delete marks ids as deleted. Unknown or already-deleted ids are ignored
// (idempotent, as in Milvus). It returns the number of ids newly deleted,
// and may trigger background compaction passes. The batch is partitioned
// across shards by the same id hash that routed the inserts, so each id
// reaches exactly the shard that stores it; shards log, apply, and fsync
// independently. On a durable collection the requested ids are WAL-logged
// as issued (idempotence makes replaying them exact) and the
// acknowledgement honors the fsync policy.
func (c *Collection) Delete(ids []int64) (int, error) {
	if c.closed.Load() {
		return 0, fmt.Errorf("vdms: collection closed")
	}
	c.router.RLock()
	defer c.router.RUnlock()
	// During a migration each shard reports which ids it actually deleted
	// (not which were requested): replaying a requested-but-not-applied
	// delete could kill a row that a concurrent insert creates under that
	// id later in the migration window.
	var captured []*[]int64
	capture := func() *[]int64 {
		if c.delta == nil {
			return nil
		}
		p := new([]int64)
		captured = append(captured, p)
		return p
	}
	defer func() {
		for _, p := range captured {
			c.delta.addDeletes(*p)
		}
	}()
	if len(c.shards) == 1 {
		return c.shards[0].delete(ids, capture())
	}
	parts := make([][]int64, len(c.shards))
	for _, id := range ids {
		si := c.shardFor(id)
		parts[si] = append(parts[si], id)
	}
	touched := make([]int, 0, len(c.shards))
	for si, part := range parts {
		if len(part) > 0 {
			touched = append(touched, si)
		}
	}
	// Like Insert, durable deletes dispatch in parallel so the per-shard
	// WAL commits overlap their fsyncs; memory-only deletes stay inline.
	counts := make([]int, len(touched))
	errs := make([]error, len(touched))
	caps := make([]*[]int64, len(touched))
	for i := range touched {
		caps[i] = capture()
	}
	dispatch := func(i int) {
		counts[i], errs[i] = c.shards[touched[i]].delete(parts[touched[i]], caps[i])
	}
	if c.dataDir != "" && len(touched) > 1 {
		parallel.Parallel(len(touched), len(touched), dispatch)
	} else {
		for i := range touched {
			dispatch(i)
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, firstError(errs)
}

// delete applies one routed batch of deletions to this shard: WAL-log,
// tombstone/prune, maybe trigger compaction, commit.
func (s *shard) delete(ids []int64, captured *[]int64) (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("vdms: collection closed")
	}
	if s.wal != nil && len(ids) > 0 {
		if _, err := s.wal.AppendDelete(ids); err != nil {
			s.mu.Unlock()
			return 0, fmt.Errorf("vdms: logging delete: %w", err)
		}
	}
	added := s.deleteLocked(ids, captured)
	if added > 0 {
		s.maybeCompactLocked()
	}
	var lsn uint64
	if s.wal != nil {
		lsn = s.wal.LastLSN()
	}
	s.mu.Unlock()
	if s.wal != nil && len(ids) > 0 {
		if err := s.wal.Commit(lsn); err != nil {
			return added, fmt.Errorf("vdms: committing delete: %w", err)
		}
	}
	return added, nil
}

// deleteLocked applies one batch of deletions and returns how many ids
// were newly deleted; when captured is non-nil the newly deleted ids are
// appended to it (the migration delta needs exactly those). It is the
// shared core of delete and of WAL replay: no logging, no compaction
// trigger. Callers hold s.mu.
func (s *shard) deleteLocked(ids []int64, captured *[]int64) int {
	if s.tombstones == nil {
		s.tombstones = make(map[int64]struct{})
	}
	added := 0
	pruneGrowing := false
	// Growing ids can be unsorted (failed-build requeues), so membership
	// uses a set built at most once per call rather than a scan per id.
	var growing map[int64]struct{}
	for _, id := range ids {
		if id < 0 || id >= s.nextID {
			continue
		}
		if _, dup := s.tombstones[id]; dup {
			continue
		}
		seg, present := s.locateLocked(id)
		if !present {
			if growing == nil {
				growing = make(map[int64]struct{}, len(s.growingIDs))
				for _, gid := range s.growingIDs {
					growing[gid] = struct{}{}
				}
			}
			if _, ok := growing[id]; !ok {
				// Never existed under this id (on this shard), or already
				// deleted and physically reclaimed.
				continue
			}
			// A growing row: pruned below.
			pruneGrowing = true
		}
		s.tombstones[id] = struct{}{}
		added++
		s.rows--
		if captured != nil {
			*captured = append(*captured, id)
		}
		if seg != nil {
			seg.dead++
		}
	}
	// Compact the growing tail in place: growing data is mutable, so
	// tombstoned rows are dropped immediately (surviving arena rows slide
	// down) — and since they then exist nowhere, their tombstones are
	// garbage-collected on the spot.
	if pruneGrowing && s.growingRowsLocked() > 0 {
		w := 0
		for i, id := range s.growingIDs {
			if _, dead := s.tombstones[id]; dead {
				delete(s.tombstones, id)
				continue
			}
			s.growing.CopyRow(w, i)
			s.growingIDs[w] = id
			w++
		}
		s.growing.Truncate(w)
		s.growingIDs = s.growingIDs[:w]
	}
	return added
}

// Deleted reports the live tombstone count across shards: deleted ids
// still physically present in sealed/sealing data and awaiting
// compaction. It is the search over-fetch margin, not the all-time delete
// count.
func (c *Collection) Deleted() int {
	c.router.RLock()
	defer c.router.RUnlock()
	c.rlockAll()
	defer c.runlockAll()
	total := 0
	for _, s := range c.shards {
		total += len(s.tombstones)
	}
	return total
}

// filterTombstones drops deleted ids from a result list in place.
func (s *shard) filterTombstones(res []linalg.Neighbor) []linalg.Neighbor {
	if len(s.tombstones) == 0 {
		return res
	}
	keep := res[:0]
	for _, n := range res {
		if _, dead := s.tombstones[n.ID]; dead {
			continue
		}
		keep = append(keep, n)
	}
	return keep
}
