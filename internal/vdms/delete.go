package vdms

import (
	"fmt"

	"vdtuner/internal/linalg"
)

// Deletion support for live collections. Milvus implements deletes as
// tombstones filtered at query time until compaction; this file does the
// same: deleted ids are recorded in a set, filtered out of every search,
// and physically removed from growing data immediately (sealed segments
// are immutable, so their tombstones persist until a rebuild).

// Delete marks ids as deleted. Unknown ids are ignored (idempotent, as in
// Milvus). It returns the number of ids newly tombstoned.
func (c *Collection) Delete(ids []int64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, fmt.Errorf("vdms: collection closed")
	}
	if c.tombstones == nil {
		c.tombstones = make(map[int64]struct{})
	}
	added := 0
	for _, id := range ids {
		if id < 0 || id >= c.nextID {
			continue
		}
		if _, dup := c.tombstones[id]; dup {
			continue
		}
		c.tombstones[id] = struct{}{}
		added++
	}
	// Compact the growing tail in place: growing data is mutable, so
	// tombstoned rows can be dropped immediately.
	if added > 0 && len(c.growingVecs) > 0 {
		keepV := c.growingVecs[:0]
		keepI := c.growingIDs[:0]
		for i, id := range c.growingIDs {
			if _, dead := c.tombstones[id]; dead {
				continue
			}
			keepV = append(keepV, c.growingVecs[i])
			keepI = append(keepI, id)
		}
		c.growingVecs = keepV
		c.growingIDs = keepI
	}
	return added, nil
}

// Deleted reports the current tombstone count.
func (c *Collection) Deleted() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tombstones)
}

// filterTombstones drops deleted ids from a result list in place.
func (c *Collection) filterTombstones(res []linalg.Neighbor) []linalg.Neighbor {
	if len(c.tombstones) == 0 {
		return res
	}
	keep := res[:0]
	for _, n := range res {
		if _, dead := c.tombstones[n.ID]; dead {
			continue
		}
		keep = append(keep, n)
	}
	return keep
}
