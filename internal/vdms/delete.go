package vdms

import (
	"fmt"

	"vdtuner/internal/linalg"
)

// Deletion support for live collections. Milvus implements deletes as
// tombstones filtered at query time until compaction; this file does the
// same: deleted ids in sealed/sealing data are recorded in a set and
// filtered out of every search until the compactor (compact.go) rewrites
// their segments, while deletes of growing rows are applied physically at
// once and never tombstoned. The tombstone set therefore stays bounded by
// the dead rows actually awaiting compaction.

// Delete marks ids as deleted. Unknown or already-deleted ids are ignored
// (idempotent, as in Milvus). It returns the number of ids newly deleted,
// and may trigger a background compaction pass. On a durable collection
// the requested ids are WAL-logged as issued (idempotence makes replaying
// them exact) and the acknowledgement honors the fsync policy.
func (c *Collection) Delete(ids []int64) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, fmt.Errorf("vdms: collection closed")
	}
	if c.wal != nil && len(ids) > 0 {
		if _, err := c.wal.AppendDelete(ids); err != nil {
			c.mu.Unlock()
			return 0, fmt.Errorf("vdms: logging delete: %w", err)
		}
	}
	added := c.deleteLocked(ids)
	if added > 0 {
		c.maybeCompactLocked()
	}
	var lsn uint64
	if c.wal != nil {
		lsn = c.wal.LastLSN()
	}
	c.mu.Unlock()
	if c.wal != nil && len(ids) > 0 {
		if err := c.wal.Commit(lsn); err != nil {
			return added, fmt.Errorf("vdms: committing delete: %w", err)
		}
	}
	return added, nil
}

// deleteLocked applies one batch of deletions and returns how many ids
// were newly deleted. It is the shared core of Delete and of WAL replay:
// no logging, no compaction trigger. Callers hold c.mu.
func (c *Collection) deleteLocked(ids []int64) int {
	if c.tombstones == nil {
		c.tombstones = make(map[int64]struct{})
	}
	added := 0
	pruneGrowing := false
	// Growing ids can be unsorted (failed-build requeues), so membership
	// uses a set built at most once per call rather than a scan per id.
	var growing map[int64]struct{}
	for _, id := range ids {
		if id < 0 || id >= c.nextID {
			continue
		}
		if _, dup := c.tombstones[id]; dup {
			continue
		}
		seg, present := c.locateLocked(id)
		if !present {
			if growing == nil {
				growing = make(map[int64]struct{}, len(c.growingIDs))
				for _, gid := range c.growingIDs {
					growing[gid] = struct{}{}
				}
			}
			if _, ok := growing[id]; !ok {
				// Never existed under this id, or already deleted and
				// physically reclaimed.
				continue
			}
			// A growing row: pruned below.
			pruneGrowing = true
		}
		c.tombstones[id] = struct{}{}
		added++
		c.rows--
		if seg != nil {
			seg.dead++
		}
	}
	// Compact the growing tail in place: growing data is mutable, so
	// tombstoned rows are dropped immediately (surviving arena rows slide
	// down) — and since they then exist nowhere, their tombstones are
	// garbage-collected on the spot.
	if pruneGrowing && c.growingRowsLocked() > 0 {
		w := 0
		for i, id := range c.growingIDs {
			if _, dead := c.tombstones[id]; dead {
				delete(c.tombstones, id)
				continue
			}
			c.growing.CopyRow(w, i)
			c.growingIDs[w] = id
			w++
		}
		c.growing.Truncate(w)
		c.growingIDs = c.growingIDs[:w]
	}
	return added
}

// Deleted reports the live tombstone count: deleted ids still physically
// present in sealed/sealing data and awaiting compaction. It is the
// search over-fetch margin, not the all-time delete count.
func (c *Collection) Deleted() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tombstones)
}

// filterTombstones drops deleted ids from a result list in place.
func (c *Collection) filterTombstones(res []linalg.Neighbor) []linalg.Neighbor {
	if len(c.tombstones) == 0 {
		return res
	}
	keep := res[:0]
	for _, n := range res {
		if _, dead := c.tombstones[n.ID]; dead {
			continue
		}
		keep = append(keep, n)
	}
	return keep
}
