package vdms

import (
	"fmt"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
	"vdtuner/internal/workload"
)

// Instance is an opened collection: the dataset partitioned into sealed
// (indexed) segments plus a growing tail that is brute-force searched, as
// in Milvus. Instances are immutable after Open and safe for concurrent
// Search calls. They model a delete-free snapshot: churn (deletes,
// tombstone GC, segment compaction) is the live Collection's domain — see
// live.go and compact.go.
type Instance struct {
	cfg Config
	ds  *workload.Dataset

	sealed     []index.Index
	growing    *linalg.Matrix // growing-tail view of the dataset arena
	growingIDs []int64

	// segments counts sealed segments plus the growing tail (if any).
	segments int
	// extraScanRows models the in-flight insert buffer and unflushed WAL
	// rows every query must additionally scan (they duplicate recent
	// corpus rows, so they add work but not results).
	extraScanRows int64
	// pendingFraction is the share of the corpus that is unindexed or
	// buffered, driving the consistency window.
	pendingFraction float64
	// bgLoad is the steady-state worker-equivalents consumed by
	// background index builds.
	bgLoad float64
	// buildSeconds is the simulated wall time of the initial load +
	// index build.
	buildSeconds float64
	// memoryBytes is the resident footprint.
	memoryBytes int64
}

// FailureError describes a configuration the engine cannot run (crash or
// resource exhaustion), mirroring configurations that crash Milvus or blow
// the memory budget. The tuner feeds such configurations worst-case
// observations rather than aborting.
type FailureError struct{ Reason string }

func (e *FailureError) Error() string { return "vdms: configuration failed: " + e.Reason }

// newSegmentIndex constructs the (unbuilt) index for the sealed segment
// with sequence number seq: the build seed is derived deterministically
// from the configuration seed and the sequence number, and the build
// worker pool is sized by the queryNode parallelism. Every layer that
// builds a segment — bulk load (Open), live sealing, compaction, and
// crash recovery — goes through this one derivation, which is what makes
// a recovered segment's index bit-identical to the one the pre-crash
// engine built or would have built.
func newSegmentIndex(cfg Config, m linalg.Metric, dim int, seq int64) (index.Index, error) {
	bp := cfg.Build
	bp.Seed = cfg.Build.Seed + seq*7919
	bp.Workers = cfg.Parallelism
	return index.New(cfg.IndexType, m, dim, bp)
}

// Open partitions the dataset according to cfg, builds the per-segment
// indexes, and returns a searchable instance.
func Open(ds *workload.Dataset, cfg Config) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(ds.Vectors)
	if n == 0 {
		return nil, fmt.Errorf("vdms: empty dataset")
	}
	inst := &Instance{cfg: cfg, ds: ds}

	// Scaled segment model: segment_maxSize=512MB at sealProportion=1
	// corresponds to the full corpus; smaller budgets shard it. The
	// divisor 512 keeps the paper's [100, 2048] MB range meaningful at
	// our corpus scale.
	sealRows := sealRowsFor(cfg, n)
	// Steady-state unflushed rows: half-full insert buffer plus the
	// ingest accumulated over half a flush interval. Bulk-loaded data is
	// flushed and sealed (including a final partial segment), so only
	// these rows remain growing.
	bufRows := int(cfg.InsertBufSize / 8192 * float64(n))
	flushRows := int(ingestFraction * float64(n) * cfg.FlushInterval / 2)
	growing := bufRows/2 + flushRows
	if growing > n {
		growing = n
	}
	sealedRows := n - growing
	numSealed := (sealedRows + sealRows - 1) / sealRows
	if numSealed > maxSegments {
		return nil, &FailureError{Reason: fmt.Sprintf("segment count %d exceeds coordinator limit %d", numSealed, maxSegments)}
	}

	ids := ds.IDs()
	store := ds.Store()
	var buildWork index.Stats
	row := 0
	for s := 0; s < numSealed; s++ {
		end := row + sealRows
		if end > sealedRows {
			end = sealedRows
		}
		// queryNode parallelism doubles as the real build worker-pool
		// size; builds are deterministic for any value (see package
		// parallel), so the simulated results stay reproducible.
		idx, err := newSegmentIndex(cfg, ds.Metric, ds.Dim, int64(s))
		if err != nil {
			return nil, err
		}
		// Segments build from contiguous row-range views of the dataset
		// arena — no per-segment copy of the raw vectors.
		if err := idx.Build(store.Slice(row, end), ids[row:end]); err != nil {
			return nil, fmt.Errorf("vdms: building segment %d: %w", s, err)
		}
		buildWork.Add(idx.BuildStats())
		inst.sealed = append(inst.sealed, idx)
		row = end
	}
	inst.growing = store.Slice(row, n)
	inst.growingIDs = ids[row:]
	inst.segments = numSealed
	if inst.growing.Rows() > 0 {
		inst.segments++
	}
	inst.extraScanRows = int64(bufRows/2 + flushRows)
	inst.pendingFraction = (float64(inst.growing.Rows()) + float64(inst.extraScanRows)) / float64(n)
	if inst.pendingFraction > 1 {
		inst.pendingFraction = 1
	}

	// Simulated build time: index work stretched by simBuildFactor,
	// parallelized over the build pool, plus data load at ~100 MB/s.
	buildPool := float64(cfg.Parallelism)
	if buildPool > 8 {
		buildPool = 8
	}
	buildNs := workNanos(buildWork, ds.Dim, 1.0)
	loadSec := float64(ds.RawBytes()) / 100e6
	inst.buildSeconds = buildNs/1e9*simBuildFactor/buildPool + loadSec

	// Steady-state background load: seals per second times core-seconds
	// per seal.
	if numSealed > 0 {
		perSealCoreSec := buildNs / float64(numSealed) / 1e9 * simBuildFactor
		sealsPerSec := ingestFraction * float64(n) / float64(sealRows)
		inst.bgLoad = perSealCoreSec * sealsPerSec
	}

	// Memory: indexes + growing raw (plus its WAL copy) + insert buffer
	// + hot cache + fixed engine overhead.
	bytesPerRow := int64(ds.Dim) * 4
	var mem int64
	for _, idx := range inst.sealed {
		mem += idx.MemoryBytes()
	}
	mem += int64(inst.growing.Rows()) * bytesPerRow * 2
	mem += int64(bufRows) * bytesPerRow
	mem += int64(cfg.CacheRatio * float64(ds.RawBytes()))
	mem += ds.RawBytes() / 8
	inst.memoryBytes = mem
	if float64(mem) > memBudgetMultiple*float64(ds.RawBytes()) {
		return nil, &FailureError{Reason: fmt.Sprintf("memory %d exceeds budget", mem)}
	}
	return inst, nil
}

// Segments reports the number of active segments (sealed + growing tail).
func (in *Instance) Segments() int { return in.segments }

// MemoryBytes reports the instance's resident footprint.
func (in *Instance) MemoryBytes() int64 { return in.memoryBytes }

// BuildSeconds reports the simulated load + index build time.
func (in *Instance) BuildSeconds() float64 { return in.buildSeconds }

// Search answers one query: it fans out to every sealed segment index and
// brute-force scans the growing tail, merges, and reports the work
// performed into st (which may be nil).
func (in *Instance) Search(q []float32, k int, st *index.Stats) []linalg.Neighbor {
	lists := make([][]linalg.Neighbor, 0, in.segments)
	for _, idx := range in.sealed {
		lists = append(lists, idx.Search(q, k, in.cfg.Search, st))
	}
	if in.growing.Rows() > 0 {
		lists = append(lists, index.ScanStore(in.ds.Metric, q, in.growing, in.growingIDs, k, st))
	}
	if st != nil && in.extraScanRows > 0 {
		// Insert-buffer scan: duplicates recent rows, so it costs work
		// without changing results.
		st.Add(index.Stats{DistComps: in.extraScanRows})
	}
	return linalg.MergeNeighbors(k, lists...)
}

// SearchBatch answers queries[i] into result slot i, fanning the batch
// across the configured queryNode parallelism. Instances are immutable
// after Open, so the fan-out needs no locking; per-query Stats are merged
// into st in query order, keeping accounting identical to sequential
// Search calls.
func (in *Instance) SearchBatch(queries [][]float32, k int, st *index.Stats) [][]linalg.Neighbor {
	out := make([][]linalg.Neighbor, len(queries))
	if len(queries) == 0 {
		return out
	}
	per := make([]index.Stats, len(queries))
	parallel.Parallel(in.cfg.Parallelism, len(queries), func(qi int) {
		out[qi] = in.Search(queries[qi], k, &per[qi])
	})
	if st != nil {
		for i := range per {
			st.Add(per[i])
		}
	}
	return out
}
