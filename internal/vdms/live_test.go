package vdms

import (
	"math/rand"
	"sync"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/workload"
)

func liveConfig() Config {
	cfg := DefaultConfig()
	cfg.IndexType = index.IVFFlat
	cfg.Build.NList = 16
	cfg.Search.NProbe = 16
	return cfg
}

func randVecs(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		out[i] = make([]float32, dim)
		for j := range out[i] {
			out[i][j] = float32(rng.NormFloat64())
		}
	}
	return out
}

func TestCollectionInsertSearch(t *testing.T) {
	coll, err := NewCollection(liveConfig(), linalg.L2, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	vecs := randVecs(50, 8, 1)
	ids, err := coll.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 50 {
		t.Fatalf("got %d ids", len(ids))
	}
	// A stored vector must be its own nearest neighbor.
	res, err := coll.Search(vecs[7], 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != ids[7] {
		t.Fatalf("self-search returned %+v, want id %d", res, ids[7])
	}
}

func TestCollectionSealsAndBuilds(t *testing.T) {
	coll, err := NewCollection(liveConfig(), linalg.L2, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	// sealRows = max(48, 512*0.25*1000/512) = 250.
	vecs := randVecs(600, 8, 2)
	if _, err := coll.Insert(vecs); err != nil {
		t.Fatal(err)
	}
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	st := coll.Stats()
	if st.Rows != 600 {
		t.Fatalf("rows = %d", st.Rows)
	}
	if st.Sealed < 2 {
		t.Fatalf("expected >= 2 sealed segments, got %+v", st)
	}
	if st.Sealing != 0 || st.GrowingRows != 0 {
		t.Fatalf("flush left unsealed data: %+v", st)
	}
	if st.MemoryBytes <= 0 {
		t.Fatalf("memory = %d", st.MemoryBytes)
	}
}

func TestCollectionSearchDuringBuild(t *testing.T) {
	// Data must remain findable through every lifecycle state.
	cfg := liveConfig()
	cfg.IndexType = index.HNSW
	cfg.Build.HNSWM = 8
	cfg.Build.EfConstruction = 64
	cfg.Search.Ef = 64
	coll, err := NewCollection(cfg, linalg.L2, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	vecs := randVecs(520, 8, 3)
	ids, err := coll.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	// Immediately search (builds may be in flight) for several vectors.
	for _, probe := range []int{0, 120, 300, 519} {
		res, err := coll.Search(vecs[probe], 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range res {
			if r.ID == ids[probe] {
				found = true
			}
		}
		if !found {
			t.Fatalf("vector %d not findable mid-build", probe)
		}
	}
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionConcurrentInsertSearch(t *testing.T) {
	coll, err := NewCollection(liveConfig(), linalg.L2, 8, 2000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	vecs := randVecs(1000, 8, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * 250; i < (w+1)*250; i += 10 {
				if _, err := coll.Insert(vecs[i : i+10]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := vecs[w]
			for i := 0; i < 50; i++ {
				if _, err := coll.Search(q, 5, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := coll.Stats(); st.Rows != 1000 {
		t.Fatalf("rows = %d, want 1000", st.Rows)
	}
}

func TestCollectionAngularNormalizes(t *testing.T) {
	coll, err := NewCollection(liveConfig(), linalg.Angular, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	// Same direction, different magnitudes: must be nearest neighbors.
	a := []float32{1, 0, 0, 0}
	b := []float32{100, 0, 0, 0}
	cvec := []float32{0, 1, 0, 0}
	ids, err := coll.Insert([][]float32{a, cvec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coll.Search(b, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != ids[0] {
		t.Fatalf("angular search returned %+v, want id %d", res, ids[0])
	}
}

func TestCollectionErrors(t *testing.T) {
	if _, err := NewCollection(liveConfig(), linalg.L2, 0, 100); err == nil {
		t.Fatal("accepted dim=0")
	}
	if _, err := NewCollection(liveConfig(), linalg.L2, 4, 0); err == nil {
		t.Fatal("accepted expectedRows=0")
	}
	bad := liveConfig()
	bad.Parallelism = 0
	if _, err := NewCollection(bad, linalg.L2, 4, 100); err == nil {
		t.Fatal("accepted invalid config")
	}
	coll, err := NewCollection(liveConfig(), linalg.L2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coll.Insert([][]float32{{1, 2}}); err == nil {
		t.Fatal("accepted wrong dimension")
	}
	if _, err := coll.Search([]float32{1, 2, 3, 4}, 0, nil); err == nil {
		t.Fatal("accepted k=0")
	}
	if err := coll.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := coll.Insert([][]float32{{1, 2, 3, 4}}); err == nil {
		t.Fatal("insert after close succeeded")
	}
	if _, err := coll.Search([]float32{1, 2, 3, 4}, 1, nil); err == nil {
		t.Fatal("search after close succeeded")
	}
}

func TestCollectionMatchesGroundTruth(t *testing.T) {
	// Recall of a fully-probed IVF collection over streamed inserts must
	// be exact.
	ds, err := workload.Load(workload.Spec{
		Name: "live-truth", N: 600, NQ: 10, Dim: 16, K: 5,
		Clusters: 6, ClusterStd: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := liveConfig()
	cfg.Search.NProbe = 256 // probe everything: exact
	coll, err := NewCollection(cfg, ds.Metric, ds.Dim, len(ds.Vectors))
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	if _, err := coll.Insert(ds.Vectors); err != nil {
		t.Fatal(err)
	}
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	for qi, q := range ds.Queries {
		res, err := coll.Search(q, ds.K, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r := ds.Recall(qi, res); r < 0.999 {
			t.Fatalf("query %d recall = %v with full probing", qi, r)
		}
	}
}

func TestMeasureWallClock(t *testing.T) {
	ds, err := workload.Load(workload.Spec{
		Name: "wallclock", N: 800, NQ: 20, Dim: 16, K: 5,
		Clusters: 8, ClusterStd: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := liveConfig()
	res, err := MeasureWallClock(ds, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.QPS <= 0 {
		t.Fatalf("wall-clock QPS = %v", res.QPS)
	}
	if res.Recall <= 0 || res.Recall > 1 {
		t.Fatalf("wall-clock recall = %v", res.Recall)
	}
	if res.P99 < res.P50 {
		t.Fatalf("P99 %v below P50 %v", res.P99, res.P50)
	}
	if res.Queries != 40 {
		t.Fatalf("served %d queries, want 40", res.Queries)
	}
}

func TestDeleteFromGrowing(t *testing.T) {
	coll, err := NewCollection(liveConfig(), linalg.L2, 8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	vecs := randVecs(30, 8, 7)
	ids, err := coll.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	n, err := coll.Delete([]int64{ids[5]})
	if err != nil || n != 1 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	res, err := coll.Search(vecs[5], 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == ids[5] {
			t.Fatal("deleted id returned from search")
		}
	}
	// Growing data is compacted immediately.
	if st := coll.Stats(); st.GrowingRows != 29 {
		t.Fatalf("growing rows = %d, want 29", st.GrowingRows)
	}
}

func TestDeleteFromSealed(t *testing.T) {
	coll, err := NewCollection(liveConfig(), linalg.L2, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	vecs := randVecs(300, 8, 8)
	ids, err := coll.Insert(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := coll.Delete(ids[:10]); err != nil {
		t.Fatal(err)
	}
	if coll.Deleted() != 10 {
		t.Fatalf("Deleted = %d", coll.Deleted())
	}
	for probe := 0; probe < 10; probe++ {
		res, err := coll.Search(vecs[probe], 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.ID == ids[probe] {
				t.Fatalf("tombstoned sealed id %d returned", ids[probe])
			}
		}
		if len(res) != 5 {
			t.Fatalf("over-fetch failed: got %d results", len(res))
		}
	}
}

func TestDeleteIdempotentAndBounds(t *testing.T) {
	coll, err := NewCollection(liveConfig(), linalg.L2, 8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	ids, err := coll.Insert(randVecs(10, 8, 9))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := coll.Delete([]int64{ids[0], ids[0], -5, 9999}); n != 1 {
		t.Fatalf("Delete counted %d, want 1 (dups and unknown ids ignored)", n)
	}
	if n, _ := coll.Delete([]int64{ids[0]}); n != 0 {
		t.Fatalf("re-delete counted %d, want 0", n)
	}
}
