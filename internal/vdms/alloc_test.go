package vdms

import (
	"os"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
)

// The persistence alloc gate: enabling durability must not touch the
// query path. WAL appends happen on the write path only, so Search on a
// durable collection must perform exactly the allocations of Search on a
// memory-only collection holding the same data. `make alloc-gate` runs
// this in strict mode (ALLOC_GATE_STRICT=1), where a skip is a failure,
// alongside the zero-allocation index gates in internal/index.
func TestAllocGatePersistentSearch(t *testing.T) {
	strict := os.Getenv("ALLOC_GATE_STRICT") != ""
	if raceEnabled {
		if strict {
			t.Fatal("alloc-gate tests cannot run under -race, but ALLOC_GATE_STRICT is set; run them without -race")
		}
		t.Skip("allocation counts are meaningless under -race")
	}
	const dim, n, k = 16, 600, 10
	cfg := DefaultConfig()
	cfg.IndexType = index.HNSW
	cfg.Parallelism = 1
	cfg.WALFsyncPolicy = 3
	cfg.SegmentMaxSize = 100
	cfg.SealProportion = 0.8
	vecs := randVecs(n, dim, 101)
	q := randVecs(1, dim, 102)[0]

	mem, err := NewCollection(cfg, linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	dur, err := OpenDurable(t.TempDir(), cfg, linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	for _, c := range []*Collection{mem, dur} {
		if _, err := c.Insert(vecs); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	measure := func(c *Collection) float64 {
		// Warm the scratch pools before counting.
		for i := 0; i < 10; i++ {
			if _, err := c.Search(q, k, nil); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := c.Search(q, k, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	memAllocs := measure(mem)
	durAllocs := measure(dur)
	if durAllocs != memAllocs {
		t.Fatalf("durable Search allocates %.1f/op, memory-only %.1f/op: persistence leaked into the query path", durAllocs, memAllocs)
	}
}

// TestAllocGateShardedSearch is the sharding alloc gate: shard probes run
// over pooled probe scratches and feed a pooled result grid, and every
// segment offers its candidates straight into the shard-level collector
// (SearchInto), so a sharded Search costs the allocations of the
// single-shard Search plus a small fixed router constant — independent of
// the shard count. Anything proportional to shards (per-shard result
// lists, per-merge tables) or to the corpus blows the budget. Parallelism
// is pinned to 1 so worker-goroutine spawns don't pollute the counts; the
// fan-out machinery is the same code either way.
func TestAllocGateShardedSearch(t *testing.T) {
	strict := os.Getenv("ALLOC_GATE_STRICT") != ""
	if raceEnabled {
		if strict {
			t.Fatal("alloc-gate tests cannot run under -race, but ALLOC_GATE_STRICT is set; run them without -race")
		}
		t.Skip("allocation counts are meaningless under -race")
	}
	const dim, n, k, queries = 16, 800, 10, 32
	mk := func(shardCount int) *Collection {
		cfg := DefaultConfig()
		cfg.IndexType = index.HNSW
		cfg.Parallelism = 1
		cfg.ShardCount = shardCount
		c, err := NewCollection(cfg, linalg.L2, dim, n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Insert(randVecs(n, dim, 103)); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	q := randVecs(1, dim, 104)[0]
	qs := randVecs(queries, dim, 105)
	measureSearch := func(c *Collection) float64 {
		for i := 0; i < 10; i++ {
			if _, err := c.Search(q, k, nil); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := c.Search(q, k, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	measureBatch := func(c *Collection) float64 {
		for i := 0; i < 10; i++ {
			if _, err := c.SearchBatch(qs, k, nil); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := c.SearchBatch(qs, k, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	single := mk(1)
	defer single.Close()
	singleSearch := measureSearch(single)
	singleBatch := measureBatch(single)
	for _, shards := range []int{4, 8} {
		sharded := mk(shards)
		shardedSearch := measureSearch(sharded)
		shardedBatch := measureBatch(sharded)
		sharded.Close()
		// Budget: the single-shard cost plus a fixed router constant.
		// Notably NOT a function of the shard count.
		if budget := singleSearch + 4; shardedSearch > budget {
			t.Errorf("shards=%d Search allocates %.1f/op (single-shard %.1f/op), budget %.0f: sharding leaked allocations into the query path",
				shards, shardedSearch, singleSearch, budget)
		}
		if budget := singleBatch + 8; shardedBatch > budget {
			t.Errorf("shards=%d SearchBatch allocates %.1f/op (single-shard %.1f/op), budget %.0f: sharding leaked allocations into the batch path",
				shards, shardedBatch, singleBatch, budget)
		}
	}
}
