package vdms

import (
	"os"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
)

// The persistence alloc gate: enabling durability must not touch the
// query path. WAL appends happen on the write path only, so Search on a
// durable collection must perform exactly the allocations of Search on a
// memory-only collection holding the same data. `make alloc-gate` runs
// this in strict mode (ALLOC_GATE_STRICT=1), where a skip is a failure,
// alongside the zero-allocation index gates in internal/index.
func TestAllocGatePersistentSearch(t *testing.T) {
	strict := os.Getenv("ALLOC_GATE_STRICT") != ""
	if raceEnabled {
		if strict {
			t.Fatal("alloc-gate tests cannot run under -race, but ALLOC_GATE_STRICT is set; run them without -race")
		}
		t.Skip("allocation counts are meaningless under -race")
	}
	const dim, n, k = 16, 600, 10
	cfg := DefaultConfig()
	cfg.IndexType = index.HNSW
	cfg.Parallelism = 1
	cfg.WALFsyncPolicy = 3
	cfg.SegmentMaxSize = 100
	cfg.SealProportion = 0.8
	vecs := randVecs(n, dim, 101)
	q := randVecs(1, dim, 102)[0]

	mem, err := NewCollection(cfg, linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	dur, err := OpenDurable(t.TempDir(), cfg, linalg.L2, dim, n)
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	for _, c := range []*Collection{mem, dur} {
		if _, err := c.Insert(vecs); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	measure := func(c *Collection) float64 {
		// Warm the scratch pools before counting.
		for i := 0; i < 10; i++ {
			if _, err := c.Search(q, k, nil); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := c.Search(q, k, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	memAllocs := measure(mem)
	durAllocs := measure(dur)
	if durAllocs != memAllocs {
		t.Fatalf("durable Search allocates %.1f/op, memory-only %.1f/op: persistence leaked into the query path", durAllocs, memAllocs)
	}
}

// TestAllocGateShardedSearch is the sharding alloc gate: the per-segment
// index query path stays at ≤1 allocation per query (gated in
// internal/index — scratch pools are per index and unaffected by
// sharding), so a sharded Search may cost at most the per-shard engine
// work times the shard count plus a small fixed router constant (the
// per-query list table and one cross-shard merge). Anything growing with
// the corpus — a per-candidate allocation smuggled into the scatter-
// gather path — blows the budget.
func TestAllocGateShardedSearch(t *testing.T) {
	strict := os.Getenv("ALLOC_GATE_STRICT") != ""
	if raceEnabled {
		if strict {
			t.Fatal("alloc-gate tests cannot run under -race, but ALLOC_GATE_STRICT is set; run them without -race")
		}
		t.Skip("allocation counts are meaningless under -race")
	}
	const dim, n, k, shards = 16, 800, 10, 4
	mk := func(shardCount int) *Collection {
		cfg := DefaultConfig()
		cfg.IndexType = index.HNSW
		cfg.Parallelism = 1
		cfg.ShardCount = shardCount
		c, err := NewCollection(cfg, linalg.L2, dim, n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Insert(randVecs(n, dim, 103)); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	single := mk(1)
	defer single.Close()
	sharded := mk(shards)
	defer sharded.Close()
	q := randVecs(1, dim, 104)[0]
	measure := func(c *Collection) float64 {
		for i := 0; i < 10; i++ {
			if _, err := c.Search(q, k, nil); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := c.Search(q, k, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	singleAllocs := measure(single)
	shardedAllocs := measure(sharded)
	// Budget: each shard runs the same pooled engine path the single-shard
	// collection does (its per-query constant, independent of corpus
	// size), and the router adds one list table plus one MergeNeighbors
	// (TopK + dedup map + result slice — a fixed handful).
	budget := float64(shards)*(singleAllocs+2) + 8
	if shardedAllocs > budget {
		t.Fatalf("sharded Search allocates %.1f/op (single-shard %.1f/op), budget %.0f: sharding leaked allocations into the query path",
			shardedAllocs, singleAllocs, budget)
	}
}
