package vdms

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
)

func batchCollection(t *testing.T, metric linalg.Metric, dim int, parallelism int) *Collection {
	t.Helper()
	cfg := DefaultConfig()
	cfg.IndexType = index.IVFFlat
	cfg.Build.NList = 8
	cfg.Search.NProbe = 8
	cfg.Parallelism = parallelism
	coll, err := NewCollection(cfg, metric, dim, 2000)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coll.Close() })
	return coll
}

// TestSearchBatchEdgeCases is the table-driven contract of the batched
// search API across degenerate inputs.
func TestSearchBatchEdgeCases(t *testing.T) {
	const dim = 8
	cases := []struct {
		name    string
		metric  linalg.Metric
		rows    int // inserted before the batch
		queries [][]float32
		k       int
		wantErr bool
		// wantPerQuery is the expected result count per query; -1 skips
		// the check.
		wantPerQuery int
	}{
		{
			name: "empty batch", metric: linalg.L2, rows: 50,
			queries: nil, k: 3, wantPerQuery: -1,
		},
		{
			name: "k greater than n", metric: linalg.L2, rows: 4,
			queries: randVecs(3, dim, 1), k: 25, wantPerQuery: 4,
		},
		{
			name: "dim mismatch", metric: linalg.L2, rows: 20,
			queries: [][]float32{make([]float32, dim), make([]float32, dim-3)},
			k:       3, wantErr: true,
		},
		{
			name: "zero k", metric: linalg.L2, rows: 20,
			queries: randVecs(2, dim, 2), k: 0, wantErr: true,
		},
		{
			name: "zero-vector angular queries", metric: linalg.Angular, rows: 60,
			queries: [][]float32{make([]float32, dim), make([]float32, dim)},
			k:       5, wantPerQuery: 5,
		},
		{
			name: "batch on empty collection", metric: linalg.L2, rows: 0,
			queries: randVecs(2, dim, 3), k: 3, wantPerQuery: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coll := batchCollection(t, tc.metric, dim, 4)
			if tc.rows > 0 {
				if _, err := coll.Insert(randVecs(tc.rows, dim, 42)); err != nil {
					t.Fatal(err)
				}
			}
			var st index.Stats
			out, err := coll.SearchBatch(tc.queries, tc.k, &st)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("expected error, got %d result lists", len(out))
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != len(tc.queries) {
				t.Fatalf("got %d result lists for %d queries", len(out), len(tc.queries))
			}
			if tc.wantPerQuery >= 0 {
				for qi, res := range out {
					if len(res) != tc.wantPerQuery {
						t.Fatalf("query %d returned %d neighbors, want %d", qi, len(res), tc.wantPerQuery)
					}
				}
			}
		})
	}
}

// TestSearchBatchMatchesSearch: the batch is observably equivalent to
// issuing each query through Search against a quiescent collection.
func TestSearchBatchMatchesSearch(t *testing.T) {
	const dim = 8
	coll := batchCollection(t, linalg.Angular, dim, 8)
	if _, err := coll.Insert(randVecs(500, dim, 7)); err != nil {
		t.Fatal(err)
	}
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	queries := randVecs(30, dim, 8)
	var wantSt index.Stats
	want := make([][]linalg.Neighbor, len(queries))
	for qi, q := range queries {
		res, err := coll.Search(q, 5, &wantSt)
		if err != nil {
			t.Fatal(err)
		}
		want[qi] = res
	}
	var gotSt index.Stats
	got, err := coll.SearchBatch(queries, 5, &gotSt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("batched results differ from sequential Search")
	}
	if gotSt != wantSt {
		t.Fatalf("batched stats %+v, sequential %+v", gotSt, wantSt)
	}
}

// TestSearchBatchMatchesSearchMatrix is the tiled batch path's
// equivalence gate: across shard counts, worker counts, and a post-crash
// recovery, SearchBatch (which probes whole query tiles through the
// multi-query kernels) must return bit-identical results and
// exactly-summed stats versus issuing each query through Search. The
// batch is wide enough to span several query tiles with a ragged tail,
// and the churned workload leaves tombstones so the over-fetch margin is
// exercised.
func TestSearchBatchMatchesSearchMatrix(t *testing.T) {
	const dim, n, k = 8, 500, 6
	vecs := randVecs(n, dim, 51)
	qs := randVecs(70, dim, 52)
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 8} {
			for _, recovered := range []bool{false, true} {
				name := fmt.Sprintf("shards=%d/workers=%d/recovered=%v", shards, workers, recovered)
				t.Run(name, func(t *testing.T) {
					cfg := flatConfig(shards)
					cfg.Parallelism = workers
					var coll *Collection
					if recovered {
						cfg.WALFsyncPolicy = 3 // always: survive the crash intact
						dir := t.TempDir()
						live, err := OpenDurable(dir, cfg, linalg.L2, dim, n)
						if err != nil {
							t.Fatal(err)
						}
						runChurn(t, live, vecs)
						live.Crash()
						coll, err = OpenDurable(dir, cfg, linalg.L2, dim, n)
						if err != nil {
							t.Fatal(err)
						}
						if err := coll.Flush(); err != nil {
							t.Fatal(err)
						}
					} else {
						var err error
						coll, err = NewCollection(cfg, linalg.L2, dim, n)
						if err != nil {
							t.Fatal(err)
						}
						runChurn(t, coll, vecs)
					}
					defer coll.Close()
					var seqSt index.Stats
					want := make([][]linalg.Neighbor, len(qs))
					for qi, q := range qs {
						res, err := coll.Search(q, k, &seqSt)
						if err != nil {
							t.Fatal(err)
						}
						want[qi] = res
					}
					var batchSt index.Stats
					got, err := coll.SearchBatch(qs, k, &batchSt)
					if err != nil {
						t.Fatal(err)
					}
					for qi := range qs {
						if !reflect.DeepEqual(got[qi], want[qi]) {
							t.Fatalf("query %d: SearchBatch %v, Search %v", qi, got[qi], want[qi])
						}
					}
					if batchSt != seqSt {
						t.Fatalf("batch stats %+v, sequential %+v", batchSt, seqSt)
					}
				})
			}
		}
	}
}

// TestSearchBatchLiveRace hammers a live collection with concurrent
// batched searches while inserts, deletes, and flushes mutate the segment
// lifecycle. Run under -race this is the proof that the batch fan-out
// (many goroutines sharing one read lock) is safe against writers.
func TestSearchBatchLiveRace(t *testing.T) {
	const dim = 8
	coll := batchCollection(t, linalg.L2, dim, 8)
	ids, err := coll.Insert(randVecs(300, dim, 9))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	// Batched searchers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			queries := randVecs(16, dim, int64(100+w))
			for i := 0; i < 30; i++ {
				var st index.Stats
				out, err := coll.SearchBatch(queries, 5, &st)
				if err != nil {
					errs <- err
					return
				}
				if len(out) != len(queries) {
					errs <- fmt.Errorf("batch returned %d of %d lists", len(out), len(queries))
					return
				}
			}
		}(w)
	}
	// Inserters: enough rows to trip seals and background index builds.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := coll.Insert(randVecs(40, dim, int64(200+10*w+i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Deleter.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i+3 <= len(ids); i += 3 {
			if _, err := coll.Delete(ids[i : i+3]); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Flusher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := coll.Flush(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	st := coll.Stats()
	// Rows counts live rows: all 300 seeded ids were deleted exactly once,
	// leaving only the concurrent inserters' rows.
	if st.Rows != 2*10*40 {
		t.Fatalf("rows = %d, want %d", st.Rows, 2*10*40)
	}
}
