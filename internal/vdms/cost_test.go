package vdms

import (
	"testing"

	"vdtuner/internal/index"
)

func TestWorkNanosComposition(t *testing.T) {
	st := index.Stats{DistComps: 10, CodeComps: 20, Lookups: 30}
	got := workNanos(st, 100, 1.0) // full cache: multiplier 1
	want := 10*100*nsPerFullDim + 20*100*nsPerCodeDim + 30*nsPerLookup
	if got != want {
		t.Fatalf("workNanos = %v, want %v", got, want)
	}
}

func TestWorkNanosCacheMultiplier(t *testing.T) {
	st := index.Stats{DistComps: 100}
	hot := workNanos(st, 64, 1.0)
	cold := workNanos(st, 64, 0.05)
	if cold <= hot {
		t.Fatalf("cold cache %v not more expensive than hot %v", cold, hot)
	}
	if cold > hot*(1+cacheMissPenalty)+1e-9 {
		t.Fatalf("cold cache multiplier exceeds bound: %v vs %v", cold, hot*(1+cacheMissPenalty))
	}
}

func TestWorkNanosMonotoneInWork(t *testing.T) {
	prev := -1.0
	for comps := int64(0); comps < 1000; comps += 100 {
		v := workNanos(index.Stats{DistComps: comps}, 32, 0.5)
		if v <= prev {
			t.Fatalf("workNanos not increasing at %d distcomps", comps)
		}
		prev = v
	}
}

func TestQueryLatencyParallelismHelps(t *testing.T) {
	cfg := DefaultConfig()
	lat := func(p int) float64 {
		c := cfg
		c.Parallelism = p
		return queryLatencySec(1e7, 16, &c, 0, 0)
	}
	if lat(8) >= lat(1) {
		t.Fatalf("8 workers latency %v not below 1 worker %v", lat(8), lat(1))
	}
	// Sublinear: 32 workers cannot be 32x faster.
	if lat(32) < lat(1)/32 {
		t.Fatalf("superlinear speedup: %v vs %v", lat(32), lat(1))
	}
}

func TestQueryLatencyParallelismCappedBySegments(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 32
	few := queryLatencySec(1e7, 1, &cfg, 0, 0)
	cfg2 := cfg
	cfg2.Parallelism = 1
	one := queryLatencySec(1e7, 1, &cfg2, 0, 0)
	// With one segment, extra workers only add coordination cost.
	if few < one*0.8 {
		t.Fatalf("parallelism helped beyond segment count: %v vs %v", few, one)
	}
}

func TestQueryLatencyBackgroundLoadHurts(t *testing.T) {
	cfg := DefaultConfig()
	idle := queryLatencySec(1e7, 8, &cfg, 0, 0)
	busy := queryLatencySec(1e7, 8, &cfg, 0, 2.0)
	if busy <= idle {
		t.Fatalf("background load did not slow queries: %v vs %v", busy, idle)
	}
}

func TestSyncWaitBlockingBelowRequirement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GracefulTime = 0
	blocked := syncWaitMs(&cfg, 0.5)
	cfg.GracefulTime = 5000
	relaxed := syncWaitMs(&cfg, 0.5)
	if blocked <= relaxed {
		t.Fatalf("gracefulTime=0 wait %v not above 5000ms wait %v", blocked, relaxed)
	}
}

func TestSyncWaitGrowsWithPending(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GracefulTime = 0
	low := syncWaitMs(&cfg, 0.0)
	high := syncWaitMs(&cfg, 1.0)
	if high <= low {
		t.Fatalf("pending data did not raise sync wait: %v vs %v", high, low)
	}
}

func TestClamp(t *testing.T) {
	if clamp(-1, 0, 1) != 0 || clamp(2, 0, 1) != 1 || clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp broken")
	}
}
