package vdms

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"vdtuner/internal/index"
	"vdtuner/internal/linalg"
	"vdtuner/internal/persist"
)

// shard is one independently locked slice of a live collection: a growing
// arena, sealing/sealed segments, a tombstone set, a compactor, and (when
// durable) a private snapshot+WAL pair. It is the pre-sharding Collection
// engine verbatim — same lifecycle, same determinism guarantees — behind a
// lowercase door: the Collection router owns N of these, routes writes to
// them by id hash, and fans reads out across all of them (see live.go).
// Nothing a shard does ever takes another shard's lock, which is the whole
// point: an insert, fsync, index build, or compaction pass on one shard
// proceeds while every other shard keeps serving.
type shard struct {
	// gen is the shard's view of the collection's immutable config
	// generation (see reconfig.go). Operations load it once at the top and
	// use that snapshot throughout, so a concurrent hot swap switches
	// between operations, never inside one. Cold knobs (index shape,
	// segment sizing, shard count) never change on a live shard — they
	// change by building replacement shards and cutting over.
	gen    atomic.Pointer[configGen]
	metric linalg.Metric
	dim    int
	// sealRows is the rows-per-segment derived from segment_maxSize ×
	// sealProportion at this shard's slice of the declared corpus size.
	sealRows int

	mu sync.RWMutex
	// nextID is this shard's id watermark: one past the highest id it has
	// ever applied. Ids are assigned by the router's collection-wide
	// counter, so consecutive batches routed here need not be contiguous —
	// the watermark only bounds Delete's range check and seeds the
	// router's counter after recovery.
	nextID int64
	// rows counts live (inserted and not deleted) rows.
	rows int64
	// growing is the current unsealed segment's vector arena (nil until
	// the first insert after a seal); growingIDs are its row ids.
	growing    *linalg.Matrix
	growingIDs []int64
	// sealing holds segments whose index build is in flight; they are
	// scanned exactly until the build lands.
	sealing []*sealingSegment
	// sealed holds indexed segments, kept sorted by seq so iteration
	// order (and therefore planning and merging) is deterministic no
	// matter when each background build happened to land.
	sealed  []*sealedSegment
	sealSeq int64
	// tombstones holds deleted ids that are still physically present in
	// sealed or sealing data; they are filtered from every search (see
	// delete.go) and garbage-collected when compaction drops the rows.
	// Deleted growing rows are removed physically at once and never
	// linger here, so len(tombstones) — the search over-fetch margin —
	// is bounded by the dead rows awaiting compaction, not by the
	// all-time delete count.
	tombstones map[int64]struct{}
	closed     bool

	// Compactor state; see compact.go. compacting guards the single
	// in-flight pass, compactDone is closed when it finishes.
	compacting        bool
	compactDone       chan struct{}
	compactionPasses  int64
	compactedSegments int64
	reclaimedRows     int64

	// Durability state; nil/zero for memory-only collections (see
	// persist.go in this package). Records are appended under mu — the
	// log order is the shard's serialization order — and committed
	// (fsynced per policy) outside it.
	wal     *persist.WAL
	dataDir string
	// ckptMu serializes checkpoints (compactor passes, the server's
	// "persist" op, Close); ckptLSN is the newest durable snapshot's LSN,
	// mirrored in lastCkpt for lock-free reads by Stats.
	ckptMu   sync.Mutex
	ckptLSN  uint64
	lastCkpt atomic.Uint64
	// noAutoCkpt suppresses the compactor's checkpoint-after-pass; see
	// DisableAutoCheckpoint.
	noAutoCkpt bool

	builds sync.WaitGroup
	// buildErr records the first background build failure.
	buildErrOnce sync.Once
	buildErr     error
}

type sealingSegment struct {
	seq   int64
	store *linalg.Matrix
	ids   []int64
}

// sealedSegment is one indexed segment. The raw row arena is retained next
// to the built index (the analogue of Milvus keeping segment binlogs): it
// is what compaction rewrites. ids are ascending.
type sealedSegment struct {
	seq   int64
	store *linalg.Matrix
	ids   []int64
	idx   index.Index
	// dead counts this segment's rows that are tombstoned.
	dead int
	// noCompact excludes a segment whose compaction rebuild failed from
	// further planning, so a deterministic build error cannot spin the
	// compactor forever; the segment stays searchable and its tombstones
	// keep filtering.
	noCompact bool
}

// newShard creates an empty shard sealing at sealRows rows per segment,
// reading its knobs from the given config generation.
func newShard(g *configGen, metric linalg.Metric, dim, sealRows int) *shard {
	s := &shard{metric: metric, dim: dim, sealRows: sealRows}
	s.gen.Store(g)
	return s
}

// config returns the shard's current configuration. The pointed-to Config
// is immutable (generations are published whole, never edited), so the
// pointer may be held for the duration of one operation.
func (s *shard) config() *Config {
	return &s.gen.Load().cfg
}

// insert applies one routed sub-batch: vecs[i] is stored under the
// pre-assigned ids[i]. Dimensions were validated by the router. Growing
// data is searchable immediately; reaching the seal threshold seals the
// growing segment and hands it to a background index build. On a durable
// shard the rows are WAL-logged before the method returns and the
// acknowledgement waits for the configured fsync policy. Ids within a
// sub-batch ascend, but across batches they arrive in lock-acquisition
// order, which concurrent routed inserts may interleave.
func (s *shard) insert(ids []int64, vecs [][]float32) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("vdms: collection closed")
	}
	// Insert records are split at seal boundaries: each record covers
	// exactly the rows that entered the growing segment before the next
	// RecFlush, so replaying "insert, insert, flush, insert" rebuilds the
	// same segment membership the live engine produced when a batch
	// straddled a seal. A contiguous run uses the dense RecInsert frame
	// (which is also what keeps a shard_count=1 log byte-identical to the
	// pre-sharding engine's); a hash-strided run spells its ids out.
	runStart := 0
	var logErr error
	logRun := func(end int) {
		if s.wal == nil || end <= runStart || logErr != nil {
			runStart = end
			return
		}
		run := ids[runStart:end]
		var err error
		if run[len(run)-1]-run[0] == int64(len(run)-1) {
			_, err = s.wal.AppendInsert(run[0], vecs[runStart:end], s.dim)
		} else {
			_, err = s.wal.AppendInsertIDs(run, vecs[runStart:end], s.dim)
		}
		if err != nil {
			logErr = err
		}
		runStart = end
	}
	for i, v := range vecs {
		s.applyInsertRowLocked(ids[i], v)
		if s.growing.Rows() >= s.sealRows {
			logRun(i + 1) // the sealing rows must precede the seal record
			s.sealLocked()
		}
	}
	logRun(len(vecs))
	var lsn uint64
	if s.wal != nil {
		lsn = s.wal.LastLSN() // covers the insert and any seal records
	}
	s.mu.Unlock()
	if logErr != nil {
		// The rows are applied in memory but the log is broken: surface
		// the durability failure instead of acknowledging.
		return fmt.Errorf("vdms: logging insert: %w", logErr)
	}
	if s.wal != nil && len(vecs) > 0 {
		if err := s.wal.Commit(lsn); err != nil {
			return fmt.Errorf("vdms: committing insert: %w", err)
		}
	}
	return nil
}

// applyInsertRowLocked lands one (id, vector) pair in the growing arena:
// the shared core of insert and WAL replay. Angular inputs are normalized
// in place on their arena row (no temporary copy). Callers hold s.mu.
func (s *shard) applyInsertRowLocked(id int64, v []float32) {
	if s.growing == nil {
		s.growing = linalg.NewMatrix(s.dim, s.sealRows)
	}
	s.growing.AppendRow(v)
	if s.metric == linalg.Angular {
		linalg.Normalize(s.growing.Row(s.growing.Rows() - 1))
	}
	s.growingIDs = append(s.growingIDs, id)
	s.rows++
	if id >= s.nextID {
		s.nextID = id + 1
	}
}

// growingRowsLocked reports the growing segment's row count. Callers hold
// s.mu.
func (s *shard) growingRowsLocked() int {
	if s.growing == nil {
		return 0
	}
	return s.growing.Rows()
}

// sealLocked moves the growing segment into the sealing state and starts
// its background index build. Callers hold s.mu.
func (s *shard) sealLocked() {
	// Canonical row order: growing rows are normally already ascending by
	// id, but rows requeued by a failed build (or landed by interleaved
	// concurrent batches) may not be; sorting here keeps the
	// sealed-segment invariant (ids ascending) unconditionally.
	index.SortRowsByID(s.growing, s.growingIDs)
	seq := s.sealSeq
	s.sealSeq++
	if s.wal != nil {
		// The seal is logged at its position in the operation order; a
		// failure cannot abort the seal (callers are mid-insert), so it is
		// surfaced the way background build failures are.
		if _, err := s.wal.AppendFlush(seq); err != nil {
			err := fmt.Errorf("vdms: logging seal: %w", err)
			s.buildErrOnce.Do(func() { s.buildErr = err })
		}
	}
	seg := &sealingSegment{seq: seq, store: s.growing, ids: s.growingIDs}
	s.growing = nil
	s.growingIDs = nil
	s.sealing = append(s.sealing, seg)

	s.builds.Add(1)
	go func() {
		defer s.builds.Done()
		m := s.metric
		if m == linalg.Angular {
			m = linalg.L2 // inputs were normalized on insert
		}
		idx, err := newSegmentIndex(*s.config(), m, s.dim, seq)
		if err == nil {
			err = idx.Build(seg.store, seg.ids)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		// Remove seg from the sealing list regardless of outcome.
		for i, sl := range s.sealing {
			if sl == seg {
				s.sealing = append(s.sealing[:i], s.sealing[i+1:]...)
				break
			}
		}
		if err != nil {
			s.buildErrOnce.Do(func() { s.buildErr = err })
			// Keep the data searchable: put the rows back into growing.
			// Rows tombstoned while the build was in flight are dropped
			// here (growing data is mutable), and their tombstones are
			// no longer needed.
			for i, id := range seg.ids {
				if _, dead := s.tombstones[id]; dead {
					delete(s.tombstones, id)
					continue
				}
				if s.growing == nil {
					s.growing = linalg.NewMatrix(s.dim, seg.store.Rows())
				}
				s.growing.AppendRow(seg.store.Row(i))
				s.growingIDs = append(s.growingIDs, id)
			}
			return
		}
		ss := &sealedSegment{seq: seq, store: seg.store, ids: seg.ids, idx: idx}
		// Deletes may have landed while the build was in flight.
		for _, id := range ss.ids {
			if _, dead := s.tombstones[id]; dead {
				ss.dead++
			}
		}
		s.insertSealedLocked(ss)
		s.maybeCompactLocked()
	}()
}

// insertSealedLocked places seg into s.sealed keeping seq order.
func (s *shard) insertSealedLocked(seg *sealedSegment) {
	i := sort.Search(len(s.sealed), func(j int) bool { return s.sealed[j].seq > seg.seq })
	s.sealed = append(s.sealed, nil)
	copy(s.sealed[i+1:], s.sealed[i:])
	s.sealed[i] = seg
}

// containsSorted reports whether the ascending id slice contains id.
func containsSorted(ids []int64, id int64) bool {
	n := len(ids)
	if n == 0 || id < ids[0] || id > ids[n-1] {
		return false
	}
	i := sort.Search(n, func(j int) bool { return ids[j] >= id })
	return i < n && ids[i] == id
}

// locateLocked reports where id currently lives among the immutable
// segment states: the sealed segment containing it (nil when it is in a
// sealing segment) and whether it was found at all. Sealed and sealing
// segments keep their ids ascending (sealLocked sorts), so each probe is
// a binary search. Growing data is NOT consulted — its ids can be
// unsorted after a failed-build requeue; callers that need growing
// membership build a set (see delete.go). Callers hold s.mu.
func (s *shard) locateLocked(id int64) (*sealedSegment, bool) {
	for _, seg := range s.sealed {
		if containsSorted(seg.ids, id) {
			return seg, true
		}
	}
	for _, seg := range s.sealing {
		if containsSorted(seg.ids, id) {
			return nil, true
		}
	}
	return nil, false
}

// sealPartial seals a non-empty growing segment (Flush's first phase).
func (s *shard) sealPartial() {
	s.mu.Lock()
	if s.growingRowsLocked() > 0 {
		s.sealLocked()
	}
	s.mu.Unlock()
}

// searchLocked answers one already-normalized query against the current
// segment states: indexed sealed segments, in-flight sealing segments
// (scanned exactly), and the growing tail. Every segment offers its
// candidates straight into one shard-level top-k collector (SearchInto /
// ScanStoreInto) in fixed segment order — sealed by seq, then sealing,
// then growing — so no per-segment list is materialized and the merge is
// the collector itself. Ids are disjoint across segments (an id lives in
// exactly one), so the collected set equals a deduplicating merge of
// per-segment lists. The returned slice aliases ps.out: consume it before
// reusing ps. Callers hold s.mu (read side suffices): the method only
// reads shard state, so any number of goroutines holding the same read
// lock may call it concurrently — that is how SearchBatch fans out.
func (s *shard) searchLocked(qq []float32, m linalg.Metric, k int, st *index.Stats, ps *probeScratch) []linalg.Neighbor {
	// Over-fetch to survive tombstone filtering: deleted ids may occupy
	// top slots inside immutable sealed segments. The margin is this
	// shard's live tombstone count — dead rows still physically present
	// and awaiting compaction — not the all-time delete count.
	fetch := k + len(s.tombstones)
	search := s.config().Search // one generation for the whole probe
	top := ps.top.Reset(fetch)
	for _, seg := range s.sealed {
		seg.idx.SearchInto(qq, fetch, search, st, top)
	}
	for _, seg := range s.sealing {
		ps.dists = index.ScanStoreInto(m, qq, seg.store, seg.ids, top, ps.dists, st)
	}
	if s.growingRowsLocked() > 0 {
		ps.dists = index.ScanStoreInto(m, qq, s.growing, s.growingIDs, top, ps.dists, st)
	}
	ps.out = top.AppendResults(ps.out[:0])
	merged := s.filterTombstones(ps.out)
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// searchMultiLocked answers a tile of already-normalized queries in one
// pass over the shard's segment states: each segment is visited once and
// scored against the whole tile with the multi-query blocked kernels
// (SearchMultiInto / ScanStoreMultiInto), so sealed arenas and scan tails
// stream from memory once per tile, not once per query. Per query the
// offered candidate sequence — segment order, row order, over-fetch margin,
// tombstone filter — is exactly searchLocked's, so results are
// bit-identical to probing the queries one at a time. The returned row
// slices alias ps.moutBuf: consume them before the worker's next probe.
// Locking contract is searchLocked's.
func (s *shard) searchMultiLocked(qs [][]float32, m linalg.Metric, k int, st *index.Stats, ps *probeScratch) [][]linalg.Neighbor {
	qn := len(qs)
	fetch := k + len(s.tombstones)
	search := s.config().Search
	ps.ensureMulti(qn, fetch)
	for qi := 0; qi < qn; qi++ {
		ps.mtopPtr[qi] = ps.mtops[qi].Reset(fetch)
	}
	for _, seg := range s.sealed {
		seg.idx.SearchMultiInto(qs, fetch, search, st, ps.mtopPtr)
	}
	for _, seg := range s.sealing {
		index.ScanStoreMultiInto(m, qs, seg.store, seg.ids, ps.mtopPtr, st)
	}
	if s.growingRowsLocked() > 0 {
		index.ScanStoreMultiInto(m, qs, s.growing, s.growingIDs, ps.mtopPtr, st)
	}
	for qi := 0; qi < qn; qi++ {
		// Each query's row gets a capacity-capped region of the flat
		// buffer (Len <= fetch by construction), filtered in place.
		off := qi * fetch
		res := ps.mtops[qi].AppendResults(ps.moutBuf[off:off:off+fetch])
		merged := s.filterTombstones(res)
		if len(merged) > k {
			merged = merged[:k]
		}
		ps.mouts[qi] = merged
	}
	return ps.mouts
}

// statsLocked snapshots this shard's layout and footprint. Callers hold
// s.mu (read side suffices).
func (s *shard) statsLocked() ShardStats {
	st := ShardStats{
		Rows:              s.rows,
		Sealed:            len(s.sealed),
		Sealing:           len(s.sealing),
		GrowingRows:       s.growingRowsLocked(),
		Tombstones:        len(s.tombstones),
		CompactionPasses:  s.compactionPasses,
		CompactedSegments: s.compactedSegments,
		ReclaimedRows:     s.reclaimedRows,
	}
	if s.wal != nil {
		st.WALBytes = s.wal.Size()
		st.LastCheckpointLSN = s.lastCkpt.Load()
		st.WALLastLSN = s.wal.LastLSN()
	}
	bytesPerRow := int64(s.dim) * 4
	for _, seg := range s.sealed {
		st.MemoryBytes += seg.idx.MemoryBytes()
		// The retained raw arena (the binlog analogue compaction
		// rewrites) is already inside MemoryBytes when the index adopted
		// it as its storage; otherwise (the IVF family re-groups its
		// payloads cell-major into private storage) the binlog arena is
		// an additional resident copy, counted separately.
		if !seg.idx.StoreAdopted() {
			st.MemoryBytes += seg.store.Bytes()
		}
	}
	for _, seg := range s.sealing {
		st.MemoryBytes += seg.store.Bytes()
	}
	st.MemoryBytes += int64(s.growingRowsLocked()) * bytesPerRow * 2
	return st
}

// getBuildErr returns the first background failure recorded on this shard.
func (s *shard) getBuildErr() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.buildErr
}

// markClosed sets the closed flag and reports whether it was already set.
// The flag is set under the lock *before* any waiting so that no insert
// racing with Close can seal a segment whose background build the closer
// would miss.
func (s *shard) markClosed() (already bool) {
	s.mu.Lock()
	already = s.closed
	s.closed = true
	s.mu.Unlock()
	return already
}

// close shuts this shard down: mark closed, wait out builds and
// compactions, and (when durable and not already closed) take a final
// checkpoint — WAL sync, full snapshot, log truncation — so a graceful
// shutdown is lossless under every fsync policy, growing tail included.
func (s *shard) close() error {
	already := s.markClosed()
	s.builds.Wait()
	s.waitCompactions()
	var persistErr error
	if s.wal != nil && !already {
		persistErr = s.checkpoint()
		if err := s.wal.Close(); persistErr == nil {
			persistErr = err
		}
	}
	if err := s.getBuildErr(); err != nil {
		return err
	}
	return persistErr
}

// crash abandons the shard the way a process crash would: background work
// is stopped, but no flush, snapshot, or WAL sync happens, and records
// still buffered in user space are discarded.
func (s *shard) crash() {
	s.markClosed()
	s.builds.Wait()
	s.waitCompactions()
	if s.wal != nil {
		s.wal.Crash()
	}
}
