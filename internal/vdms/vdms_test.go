package vdms

import (
	"strings"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/workload"
)

func testDataset(t testing.TB) *workload.Dataset {
	t.Helper()
	ds, err := workload.Load(workload.Spec{
		Name: "vdms-test", N: 2000, NQ: 25, Dim: 32, K: 10,
		Clusters: 16, ClusterStd: 0.4, Correlated: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.SegmentMaxSize = 50 },
		func(c *Config) { c.SegmentMaxSize = 9999 },
		func(c *Config) { c.SealProportion = 0 },
		func(c *Config) { c.GracefulTime = -1 },
		func(c *Config) { c.GracefulTime = 6000 },
		func(c *Config) { c.InsertBufSize = 10 },
		func(c *Config) { c.Parallelism = 0 },
		func(c *Config) { c.Parallelism = 64 },
		func(c *Config) { c.CacheRatio = 0 },
		func(c *Config) { c.FlushInterval = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: out-of-range config accepted", i)
		}
	}
}

func TestEvaluateDefault(t *testing.T) {
	ds := testDataset(t)
	res := Evaluate(ds, DefaultConfig())
	if res.Failed {
		t.Fatalf("default config failed: %s", res.FailReason)
	}
	if res.QPS <= 0 {
		t.Fatalf("QPS = %v", res.QPS)
	}
	if res.Recall <= 0 || res.Recall > 1 {
		t.Fatalf("recall = %v", res.Recall)
	}
	if res.MemoryBytes <= 0 {
		t.Fatalf("memory = %v", res.MemoryBytes)
	}
	if res.ReplaySeconds <= res.BuildSeconds {
		t.Fatalf("replay %v not greater than build %v", res.ReplaySeconds, res.BuildSeconds)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.IndexType = index.IVFFlat
	cfg.Build.NList = 32
	cfg.Search.NProbe = 8
	a := Evaluate(ds, cfg)
	b := Evaluate(ds, cfg)
	if a != b {
		t.Fatalf("non-deterministic evaluation:\n%+v\n%+v", a, b)
	}
}

func TestFlatIsExactAndSlow(t *testing.T) {
	ds := testDataset(t)
	flat := DefaultConfig()
	flat.IndexType = index.Flat
	rf := Evaluate(ds, flat)
	if rf.Failed {
		t.Fatalf("FLAT failed: %s", rf.FailReason)
	}
	if rf.Recall < 0.999 {
		t.Fatalf("FLAT recall = %v, want 1.0", rf.Recall)
	}
	hnsw := DefaultConfig()
	hnsw.IndexType = index.HNSW
	hnsw.Build.HNSWM = 16
	hnsw.Build.EfConstruction = 100
	hnsw.Search.Ef = 32
	rh := Evaluate(ds, hnsw)
	if rh.Failed {
		t.Fatalf("HNSW failed: %s", rh.FailReason)
	}
	if rh.QPS <= rf.QPS {
		t.Fatalf("HNSW QPS %v not faster than FLAT %v", rh.QPS, rf.QPS)
	}
}

func TestSpeedRecallConflict(t *testing.T) {
	// The central tension of the paper: cranking up search effort raises
	// recall and lowers QPS.
	ds := testDataset(t)
	low := DefaultConfig()
	low.IndexType = index.IVFFlat
	low.Build.NList = 64
	low.Search.NProbe = 1
	high := low
	high.Search.NProbe = 48
	rl := Evaluate(ds, low)
	rh := Evaluate(ds, high)
	if rh.Recall <= rl.Recall {
		t.Fatalf("recall did not rise with nprobe: %v -> %v", rl.Recall, rh.Recall)
	}
	if rh.QPS >= rl.QPS {
		t.Fatalf("QPS did not fall with nprobe: %v -> %v", rl.QPS, rh.QPS)
	}
}

func TestGracefulTimeBlocking(t *testing.T) {
	// Small gracefulTime must hurt QPS (paper §IV-A's example).
	ds := testDataset(t)
	blocked := DefaultConfig()
	blocked.GracefulTime = 0
	relaxed := DefaultConfig()
	relaxed.GracefulTime = 2000
	rb := Evaluate(ds, blocked)
	rr := Evaluate(ds, relaxed)
	if rb.QPS >= rr.QPS {
		t.Fatalf("gracefulTime=0 QPS %v not worse than 2000ms %v", rb.QPS, rr.QPS)
	}
}

func TestSegmentInterdependence(t *testing.T) {
	// segment_maxSize x sealProportion interact (paper Figure 1): tiny
	// sealed segments mean many segments and high dispatch overhead.
	ds := testDataset(t)
	small := DefaultConfig()
	small.SegmentMaxSize = 100
	small.SealProportion = 0.3
	big := DefaultConfig()
	big.SegmentMaxSize = 2048
	big.SealProportion = 1.0
	is, err := Open(ds, small)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := Open(ds, big)
	if err != nil {
		t.Fatal(err)
	}
	if is.Segments() <= ib.Segments() {
		t.Fatalf("small segments %d not more numerous than big %d", is.Segments(), ib.Segments())
	}
}

func TestCacheRatioAffectsSpeedAndMemory(t *testing.T) {
	ds := testDataset(t)
	cold := DefaultConfig()
	cold.CacheRatio = 0.05
	hot := DefaultConfig()
	hot.CacheRatio = 1.0
	rc := Evaluate(ds, cold)
	rh := Evaluate(ds, hot)
	if rh.QPS <= rc.QPS {
		t.Fatalf("hot cache QPS %v not better than cold %v", rh.QPS, rc.QPS)
	}
	if rh.MemoryBytes <= rc.MemoryBytes {
		t.Fatalf("hot cache memory %v not larger than cold %v", rh.MemoryBytes, rc.MemoryBytes)
	}
}

func TestParallelismDiminishingReturns(t *testing.T) {
	ds := testDataset(t)
	qps := func(p int) float64 {
		cfg := DefaultConfig()
		cfg.Parallelism = p
		cfg.SegmentMaxSize = 100
		cfg.SealProportion = 0.2 // many segments so parallelism matters
		r := Evaluate(ds, cfg)
		if r.Failed {
			t.Fatalf("p=%d failed: %s", p, r.FailReason)
		}
		return r.QPS
	}
	q1, q8 := qps(1), qps(8)
	if q8 <= q1 {
		t.Fatalf("parallelism 8 QPS %v not better than 1 %v", q8, q1)
	}
	if q8 > q1*8 {
		t.Fatalf("parallelism speedup superlinear: %v vs %v", q8, q1)
	}
}

func TestInsertBufGrowsUnindexedTail(t *testing.T) {
	ds := testDataset(t)
	smallBuf := DefaultConfig()
	smallBuf.InsertBufSize = 64
	bigBuf := DefaultConfig()
	bigBuf.InsertBufSize = 2048
	is, err := Open(ds, smallBuf)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := Open(ds, bigBuf)
	if err != nil {
		t.Fatal(err)
	}
	if ib.pendingFraction <= is.pendingFraction {
		t.Fatalf("big buffer pending %v not larger than small %v", ib.pendingFraction, is.pendingFraction)
	}
}

func TestOpenEmptyDataset(t *testing.T) {
	_, err := Open(&workload.Dataset{Dim: 4}, DefaultConfig())
	if err == nil {
		t.Fatal("Open accepted empty dataset")
	}
}

func TestEvaluateFailurePath(t *testing.T) {
	// A PQ configuration with absurd codebooks on tiny segments must
	// fail (timeout or memory), exercising the failed-config path the
	// paper handles by substituting worst values.
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.IndexType = index.IVFPQ
	cfg.Build.NList = 1024
	cfg.Build.M = 16
	cfg.Build.NBits = 12
	cfg.SegmentMaxSize = 100
	cfg.SealProportion = 0.05
	cfg.Parallelism = 1
	res := Evaluate(ds, cfg)
	if !res.Failed {
		t.Skipf("configuration unexpectedly survived (QPS %v); failure path covered elsewhere", res.QPS)
	}
	if res.FailReason == "" {
		t.Fatal("failed result missing reason")
	}
}

func TestFailureErrorMessage(t *testing.T) {
	e := &FailureError{Reason: "boom"}
	if !strings.Contains(e.Error(), "boom") {
		t.Fatalf("FailureError message %q", e.Error())
	}
}

func BenchmarkEvaluateDefault(b *testing.B) {
	b.ReportAllocs()
	ds := testDataset(b)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(ds, cfg)
	}
}
