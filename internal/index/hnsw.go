package index

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"vdtuner/internal/linalg"
)

// hnsw implements the Hierarchical Navigable Small World graph (Malkov &
// Yashunin), matching Milvus' HNSW index. Build parameters: M (graph
// degree) and efConstruction (build beam width). Search parameter: ef
// (query beam width, clamped up to k).
type hnsw struct {
	metric linalg.Metric
	dim    int
	m      int // max links per node on upper layers; layer 0 allows 2M
	efCons int
	seed   int64

	vecs     [][]float32
	ids      []int64
	links    [][][]int32 // links[node][layer] -> neighbor nodes
	levels   []int
	entry    int
	maxLevel int
	built    bool
	work     Stats

	levelMult float64
}

func newHNSW(metric linalg.Metric, dim int, p BuildParams) (*hnsw, error) {
	m := p.HNSWM
	if m == 0 {
		m = 16
	}
	if m < 2 {
		return nil, fmt.Errorf("hnsw: M must be >= 2, got %d", m)
	}
	ef := p.EfConstruction
	if ef == 0 {
		ef = 128
	}
	if ef < m {
		ef = m
	}
	return &hnsw{
		metric: metric, dim: dim, m: m, efCons: ef, seed: p.Seed,
		entry: -1, maxLevel: -1,
		levelMult: 1 / math.Log(float64(m)),
	}, nil
}

func (h *hnsw) Type() Type { return HNSW }

func (h *hnsw) dist(a, b []float32) float32 {
	h.work.DistComps++ // build-time accounting; search uses searchWork
	return linalg.Distance(h.metric, a, b)
}

func (h *hnsw) Build(vecs [][]float32, ids []int64) error {
	if h.built {
		return fmt.Errorf("hnsw: Build called twice")
	}
	if len(vecs) != len(ids) {
		return fmt.Errorf("hnsw: %d vectors but %d ids", len(vecs), len(ids))
	}
	for i, v := range vecs {
		if len(v) != h.dim {
			return fmt.Errorf("hnsw: vector %d has dim %d, want %d", i, len(v), h.dim)
		}
	}
	h.vecs = vecs
	h.ids = ids
	h.links = make([][][]int32, len(vecs))
	h.levels = make([]int, len(vecs))
	rng := rand.New(rand.NewSource(h.seed))
	for i := range vecs {
		h.insert(i, rng)
	}
	h.repairConnectivity()
	h.built = true
	return nil
}

func (h *hnsw) randomLevel(rng *rand.Rand) int {
	u := rng.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return int(-math.Log(u) * h.levelMult)
}

func (h *hnsw) insert(node int, rng *rand.Rand) {
	level := h.randomLevel(rng)
	h.levels[node] = level
	h.links[node] = make([][]int32, level+1)

	if h.entry < 0 {
		h.entry = node
		h.maxLevel = level
		return
	}
	q := h.vecs[node]
	ep := h.entry
	// Greedy descent on layers above the node's level.
	for l := h.maxLevel; l > level; l-- {
		ep = h.greedyClosest(q, ep, l)
	}
	// Beam search and link on the node's layers.
	top := level
	if top > h.maxLevel {
		top = h.maxLevel
	}
	eps := []int32{int32(ep)}
	for l := top; l >= 0; l-- {
		cands := h.searchLayer(q, eps, h.efCons, l, nil)
		maxM := h.m
		if l == 0 {
			maxM = 2 * h.m
		}
		selected := h.selectNeighbors(q, cands, h.m)
		h.links[node][l] = selected
		for _, nb := range selected {
			h.links[nb][l] = append(h.links[nb][l], int32(node))
			if len(h.links[nb][l]) > maxM {
				h.links[nb][l] = h.pruneNeighbors(int(nb), h.links[nb][l], maxM)
			}
		}
		eps = cands
	}
	if level > h.maxLevel {
		h.maxLevel = level
		h.entry = node
	}
}

// greedyClosest walks layer l greedily from ep toward q and returns the
// local minimum.
func (h *hnsw) greedyClosest(q []float32, ep, l int) int {
	cur := ep
	curD := h.dist(q, h.vecs[cur])
	for {
		improved := false
		for _, nb := range h.links[cur][l] {
			if d := h.dist(q, h.vecs[nb]); d < curD {
				cur, curD = int(nb), d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is the beam search of the HNSW paper (Algorithm 2). It
// returns up to ef candidate nodes sorted by ascending distance. When st is
// non-nil the distance evaluations are charged to it instead of build work.
func (h *hnsw) searchLayer(q []float32, eps []int32, ef, l int, st *Stats) []int32 {
	visited := map[int32]bool{}
	type cand struct {
		node int32
		d    float32
	}
	evaluate := func(n int32) float32 {
		if st != nil {
			st.DistComps++
			return linalg.Distance(h.metric, q, h.vecs[n])
		}
		return h.dist(q, h.vecs[n])
	}
	var frontier []cand // min-ordered by scan (kept sorted)
	results := linalg.NewTopK(ef)
	for _, ep := range eps {
		if visited[ep] {
			continue
		}
		visited[ep] = true
		d := evaluate(ep)
		frontier = append(frontier, cand{ep, d})
		results.Push(int64(ep), d)
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].d < frontier[j].d })
	for len(frontier) > 0 {
		c := frontier[0]
		frontier = frontier[1:]
		if results.Full() && c.d > results.Worst() {
			break
		}
		for _, nb := range h.links[c.node][l] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := evaluate(nb)
			if !results.Full() || d < results.Worst() {
				results.Push(int64(nb), d)
				// Insert keeping the frontier sorted (small beams, the
				// linear insert is cheaper than heap churn).
				pos := sort.Search(len(frontier), func(i int) bool { return frontier[i].d >= d })
				frontier = append(frontier, cand{})
				copy(frontier[pos+1:], frontier[pos:])
				frontier[pos] = cand{nb, d}
			}
		}
	}
	res := results.Results()
	out := make([]int32, len(res))
	for i, r := range res {
		out[i] = int32(r.ID)
	}
	return out
}

// selectNeighbors keeps up to m diverse candidates using the HNSW
// paper's Algorithm 4 heuristic: a candidate (scanned in ascending
// distance to q) is kept only when it is closer to q than to every
// already-kept neighbor, which preserves graph connectivity across
// cluster boundaries. Remaining slots are filled with the closest
// rejected candidates, mirroring hnswlib's keepPrunedConnections.
func (h *hnsw) selectNeighbors(q []float32, cands []int32, m int) []int32 {
	if len(cands) <= m {
		out := make([]int32, len(cands))
		copy(out, cands)
		return out
	}
	out := make([]int32, 0, m)
	var rejected []int32
	for _, c := range cands {
		if len(out) >= m {
			break
		}
		dq := h.dist(q, h.vecs[c])
		keep := true
		for _, s := range out {
			if h.dist(h.vecs[c], h.vecs[s]) < dq {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c)
		} else {
			rejected = append(rejected, c)
		}
	}
	for _, c := range rejected {
		if len(out) >= m {
			break
		}
		out = append(out, c)
	}
	return out
}

// pruneNeighbors trims node's link list to maxM diverse neighbors (the
// same Algorithm 4 heuristic applied with the node itself as the query).
func (h *hnsw) pruneNeighbors(node int, nbs []int32, maxM int) []int32 {
	v := h.vecs[node]
	sort.Slice(nbs, func(i, j int) bool {
		return h.dist(v, h.vecs[nbs[i]]) < h.dist(v, h.vecs[nbs[j]])
	})
	return h.selectNeighbors(v, nbs, maxM)
}

// repairConnectivity links any layer-0 node unreachable from the entry
// point to its nearest reachable node. Distance-based pruning can orphan
// nodes (it may drop a node's only inbound edge); orphans would be
// permanently unfindable, so the build pays a small extra cost to
// reconnect them. The work is charged to build stats via h.dist.
func (h *hnsw) repairConnectivity() {
	n := len(h.vecs)
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	queue = append(queue, int32(h.entry))
	visited[h.entry] = true
	reachable := make([]int32, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		reachable = append(reachable, u)
		for _, nb := range h.links[u][0] {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	for u := 0; u < n; u++ {
		if visited[u] {
			continue
		}
		// Link u to its nearest already-reachable node, bidirectionally,
		// then absorb u's component.
		best := reachable[0]
		bestD := h.dist(h.vecs[u], h.vecs[best])
		for _, r := range reachable[1:] {
			if d := h.dist(h.vecs[u], h.vecs[r]); d < bestD {
				best, bestD = r, d
			}
		}
		h.links[u][0] = append(h.links[u][0], best)
		h.links[best][0] = append(h.links[best][0], int32(u))
		queue = append(queue[:0], int32(u))
		visited[u] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			reachable = append(reachable, v)
			for _, nb := range h.links[v][0] {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
}

func (h *hnsw) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	if len(h.vecs) == 0 || k < 1 || h.entry < 0 {
		return nil
	}
	ef := p.Ef
	if ef < k {
		ef = k
	}
	var work Stats
	ep := h.entry
	cur := ep
	curD := linalg.Distance(h.metric, q, h.vecs[cur])
	work.DistComps++
	for l := h.maxLevel; l > 0; l-- {
		for {
			improved := false
			for _, nb := range h.links[cur][l] {
				work.DistComps++
				if d := linalg.Distance(h.metric, q, h.vecs[nb]); d < curD {
					cur, curD = int(nb), d
					improved = true
				}
			}
			if !improved {
				break
			}
		}
	}
	cands := h.searchLayer(q, []int32{int32(cur)}, ef, 0, &work)
	top := linalg.NewTopK(k)
	for _, c := range cands {
		top.Push(h.ids[c], linalg.Distance(h.metric, q, h.vecs[c]))
	}
	work.DistComps += int64(len(cands))
	accumulate(st, work)
	return top.Results()
}

func (h *hnsw) MemoryBytes() int64 {
	var linkCount int64
	for _, perNode := range h.links {
		for _, l := range perNode {
			linkCount += int64(len(l))
		}
	}
	return int64(len(h.vecs))*int64(h.dim)*float32Bytes + linkCount*4
}

func (h *hnsw) BuildStats() Stats { return h.work }
