package index

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
)

// hnsw implements the Hierarchical Navigable Small World graph (Malkov &
// Yashunin), matching Milvus' HNSW index. Build parameters: M (graph
// degree) and efConstruction (build beam width). Search parameter: ef
// (query beam width, clamped up to k).
//
// Vectors live in a flat arena (linalg.Matrix); the beam search tracks
// visited nodes in an epoch-stamped array and draws its frontier and
// result heaps from a reusable scratch, so a steady-state query performs
// no heap allocations beyond the returned neighbor slice.
//
// Build is parallel but deterministic. Nodes are inserted in waves whose
// sizes depend only on the corpus size: every node in a wave plans its
// neighbor lists concurrently against the frozen pre-wave graph (a pure
// read), then the planned links are applied sequentially in node order
// (reverse links, pruning, entry-point updates). Because planning never
// observes intra-wave mutations and the wave schedule ignores the worker
// count, workers=1 and workers=N build byte-identical graphs; per-node
// planning Stats are merged in node order so build accounting is exact.
type hnsw struct {
	metric  linalg.Metric
	dim     int
	m       int // max links per node on upper layers; layer 0 allows 2M
	efCons  int
	seed    int64
	workers int

	store    *linalg.Matrix
	ids      []int64
	links    [][][]int32 // links[node][layer] -> neighbor nodes
	levels   []int
	entry    int
	maxLevel int
	built    bool
	work     Stats

	levelMult float64
	scratch   scratchPool
}

// hnswWaveCap bounds how many nodes plan concurrently per wave. It is a
// constant (never derived from the worker count) so the wave schedule, and
// therefore the built graph, is identical for any Workers value.
const hnswWaveCap = 64

func newHNSW(metric linalg.Metric, dim int, p BuildParams) (*hnsw, error) {
	m := p.HNSWM
	if m == 0 {
		m = 16
	}
	if m < 2 {
		return nil, fmt.Errorf("hnsw: M must be >= 2, got %d", m)
	}
	ef := p.EfConstruction
	if ef == 0 {
		ef = 128
	}
	if ef < m {
		ef = m
	}
	return &hnsw{
		metric: metric, dim: dim, m: m, efCons: ef, seed: p.Seed,
		workers: p.Workers,
		entry:   -1, maxLevel: -1,
		levelMult: 1 / math.Log(float64(m)),
	}, nil
}

func (h *hnsw) Type() Type { return HNSW }

func (h *hnsw) pool() *scratchPool { return &h.scratch }

// dist evaluates one distance and charges it to st.
func (h *hnsw) dist(st *Stats, a, b []float32) float32 {
	st.DistComps++
	return linalg.Distance(h.metric, a, b)
}

// row is the arena accessor for node vectors.
func (h *hnsw) row(i int32) []float32 { return h.store.Row(int(i)) }

func (h *hnsw) Build(store *linalg.Matrix, ids []int64) error {
	if h.built {
		return fmt.Errorf("hnsw: Build called twice")
	}
	if store.Rows() != len(ids) {
		return fmt.Errorf("hnsw: %d vectors but %d ids", store.Rows(), len(ids))
	}
	if store.Dim() != h.dim {
		return fmt.Errorf("hnsw: store has dim %d, want %d", store.Dim(), h.dim)
	}
	if !store.Packed() {
		return fmt.Errorf("hnsw: store must be packed (stride == dim)")
	}
	n := store.Rows()
	h.store = store
	h.ids = ids
	h.links = make([][][]int32, n)
	h.levels = make([]int, n)
	// Draw every level up front, in node order, so the rng consumption is
	// independent of the wave/parallel structure.
	rng := rand.New(rand.NewSource(h.seed))
	for i := range h.levels {
		h.levels[i] = h.randomLevel(rng)
	}

	if n > 0 {
		h.links[0] = make([][]int32, h.levels[0]+1)
		h.entry = 0
		h.maxLevel = h.levels[0]
	}
	workers := parallel.Workers(h.workers)
	plans := make([]hnswPlan, hnswWaveCap)
	// One search scratch per worker, not per plan slot: the scratch's
	// visited array is O(n), so scaling it by the worker count (instead
	// of the 64-slot wave cap) keeps transient build memory bounded by
	// the actual parallelism. Scratch state never influences results, so
	// this does not affect the deterministic wave schedule.
	scratches := make([]searchScratch, parallel.WorkerCount(workers, hnswWaveCap))
	for lo := 1; lo < n; {
		// Wave size grows with the inserted prefix (so early nodes still
		// see a dense graph) up to the fixed cap; it never depends on the
		// worker count.
		wave := lo
		if wave > hnswWaveCap {
			wave = hnswWaveCap
		}
		if lo+wave > n {
			wave = n - lo
		}
		// Plan phase: pure reads of the pre-wave graph, one goroutine per
		// node, private Stats per plan slot and one scratch per worker.
		parallel.WorkerParallel(workers, wave, func(worker, w int) {
			h.plan(lo+w, &plans[w], &scratches[worker])
		})
		// Apply phase: sequential, in node order.
		for w := 0; w < wave; w++ {
			h.work.Add(plans[w].work)
			h.apply(lo+w, &plans[w])
		}
		lo += wave
	}
	h.repairConnectivity()
	h.built = true
	return nil
}

func (h *hnsw) randomLevel(rng *rand.Rand) int {
	u := rng.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return int(-math.Log(u) * h.levelMult)
}

// hnswPlan is one node's planned insertion: the neighbor list per layer it
// will adopt, computed against the frozen pre-wave graph, plus the distance
// accounting of the planning search and an entry-point buffer reused
// across waves.
type hnswPlan struct {
	layers [][]int32
	work   Stats
	eps    []int32
}

// plan computes node's neighbor lists against the current (frozen) graph,
// drawing transient search state from scratch (owned by the calling worker
// for the whole wave). It performs no writes to the graph and charges all
// distance work to the plan's private Stats, so plans for a whole wave may
// run concurrently.
func (h *hnsw) plan(node int, pl *hnswPlan, scratch *searchScratch) {
	pl.work = Stats{}
	level := h.levels[node]
	top := level
	if top > h.maxLevel {
		top = h.maxLevel
	}
	pl.layers = pl.layers[:0]
	for l := 0; l <= top; l++ {
		pl.layers = append(pl.layers, nil)
	}
	q := h.row(int32(node))
	ep := h.entry
	for l := h.maxLevel; l > level; l-- {
		ep = h.greedyClosest(q, ep, l, &pl.work)
	}
	pl.eps = append(pl.eps[:0], int32(ep))
	for l := top; l >= 0; l-- {
		cands := h.searchLayer(q, pl.eps, h.efCons, l, &pl.work, scratch)
		// The beam's nodes, in ascending-distance order, seed both the
		// neighbor selection and the next layer's entry points.
		pl.eps = pl.eps[:0]
		for _, c := range cands {
			pl.eps = append(pl.eps, int32(c.ID))
		}
		pl.layers[l] = h.selectNeighbors(q, pl.eps, h.m, &pl.work)
	}
}

// apply installs a planned node: adopts its forward links, adds reverse
// links (pruning overfull neighbors), and advances the entry point. Callers
// run applies sequentially in node order; the pruning work is charged to
// build stats.
func (h *hnsw) apply(node int, pl *hnswPlan) {
	level := h.levels[node]
	h.links[node] = make([][]int32, level+1)
	for l := len(pl.layers) - 1; l >= 0; l-- {
		// selectNeighbors returned a fresh slice, so the graph can adopt
		// it directly.
		selected := pl.layers[l]
		h.links[node][l] = selected
		maxM := h.m
		if l == 0 {
			maxM = 2 * h.m
		}
		for _, nb := range selected {
			h.links[nb][l] = append(h.links[nb][l], int32(node))
			if len(h.links[nb][l]) > maxM {
				h.links[nb][l] = h.pruneNeighbors(int(nb), h.links[nb][l], maxM)
			}
		}
	}
	if level > h.maxLevel {
		h.maxLevel = level
		h.entry = node
	}
}

// greedyClosest walks layer l greedily from ep toward q and returns the
// local minimum, charging distance work to st.
func (h *hnsw) greedyClosest(q []float32, ep, l int, st *Stats) int {
	cur := ep
	curD := h.dist(st, q, h.row(int32(cur)))
	for {
		improved := false
		for _, nb := range h.links[cur][l] {
			if d := h.dist(st, q, h.row(nb)); d < curD {
				cur, curD = int(nb), d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is the beam search of the HNSW paper (Algorithm 2). It
// returns up to ef candidates as (node, dist) pairs sorted by ascending
// distance, charging every distance evaluation to st. The returned slice
// is owned by s and valid until s's next searchLayer. It only reads the
// graph, so concurrent calls with distinct scratches are safe while no
// writer runs.
func (h *hnsw) searchLayer(q []float32, eps []int32, ef, l int, st *Stats, s *searchScratch) []linalg.Neighbor {
	stamp := s.beginVisit(h.store.Rows())
	frontier := s.frontier[:0]
	results := s.stage1.Reset(ef)
	for _, ep := range eps {
		if s.visited[ep] == stamp {
			continue
		}
		s.visited[ep] = stamp
		d := h.dist(st, q, h.row(ep))
		frontier = append(frontier, hnswCand{ep, d})
		results.Push(int64(ep), d)
	}
	// Entry points arrive in ascending-distance order (a previous beam's
	// sorted output, or a single node), so this insertion sort is a
	// near-no-op guard; it is stable, preserving the order of equal
	// distances.
	for i := 1; i < len(frontier); i++ {
		for j := i; j > 0 && frontier[j].d < frontier[j-1].d; j-- {
			frontier[j], frontier[j-1] = frontier[j-1], frontier[j]
		}
	}
	// head is the frontier's pop cursor: frontier[head:] is the live
	// min-ordered queue, kept sorted by binary-search inserts.
	head := 0
	for head < len(frontier) {
		c := frontier[head]
		head++
		if results.Full() && c.d > results.Worst() {
			break
		}
		for _, nb := range h.links[c.node][l] {
			if s.visited[nb] == stamp {
				continue
			}
			s.visited[nb] = stamp
			d := h.dist(st, q, h.row(nb))
			if !results.Full() || d < results.Worst() {
				results.Push(int64(nb), d)
				// Insert keeping frontier[head:] sorted (small beams,
				// the linear shift is cheaper than heap churn).
				lo, hi := head, len(frontier)
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if frontier[mid].d < d {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				frontier = append(frontier, hnswCand{})
				copy(frontier[lo+1:], frontier[lo:])
				frontier[lo] = hnswCand{nb, d}
			}
		}
	}
	s.frontier = frontier
	s.beamOut = results.AppendResults(s.beamOut[:0])
	return s.beamOut
}

// selectNeighbors keeps up to m diverse candidates using the HNSW
// paper's Algorithm 4 heuristic: a candidate (scanned in ascending
// distance to q) is kept only when it is closer to q than to every
// already-kept neighbor, which preserves graph connectivity across
// cluster boundaries. Remaining slots are filled with the closest
// rejected candidates, mirroring hnswlib's keepPrunedConnections.
func (h *hnsw) selectNeighbors(q []float32, cands []int32, m int, st *Stats) []int32 {
	if len(cands) <= m {
		out := make([]int32, len(cands))
		copy(out, cands)
		return out
	}
	out := make([]int32, 0, m)
	var rejected []int32
	for _, c := range cands {
		if len(out) >= m {
			break
		}
		dq := h.dist(st, q, h.row(c))
		keep := true
		for _, s := range out {
			if h.dist(st, h.row(c), h.row(s)) < dq {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c)
		} else {
			rejected = append(rejected, c)
		}
	}
	for _, c := range rejected {
		if len(out) >= m {
			break
		}
		out = append(out, c)
	}
	return out
}

// pruneNeighbors trims node's link list to maxM diverse neighbors (the
// same Algorithm 4 heuristic applied with the node itself as the query).
// It runs only in the sequential apply/repair phases and charges h.work.
func (h *hnsw) pruneNeighbors(node int, nbs []int32, maxM int) []int32 {
	v := h.row(int32(node))
	sort.Slice(nbs, func(i, j int) bool {
		return h.dist(&h.work, v, h.row(nbs[i])) < h.dist(&h.work, v, h.row(nbs[j]))
	})
	return h.selectNeighbors(v, nbs, maxM, &h.work)
}

// repairConnectivity links any layer-0 node unreachable from the entry
// point to its nearest reachable node. Distance-based pruning can orphan
// nodes (it may drop a node's only inbound edge); orphans would be
// permanently unfindable, so the build pays a small extra cost to
// reconnect them. The work is charged to build stats.
func (h *hnsw) repairConnectivity() {
	n := h.store.Rows()
	if n == 0 || h.entry < 0 {
		return
	}
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	queue = append(queue, int32(h.entry))
	visited[h.entry] = true
	reachable := make([]int32, 0, n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		reachable = append(reachable, u)
		for _, nb := range h.links[u][0] {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	for u := 0; u < n; u++ {
		if visited[u] {
			continue
		}
		// Link u to its nearest already-reachable node, bidirectionally,
		// then absorb u's component.
		best := reachable[0]
		bestD := h.dist(&h.work, h.row(int32(u)), h.row(best))
		for _, r := range reachable[1:] {
			if d := h.dist(&h.work, h.row(int32(u)), h.row(r)); d < bestD {
				best, bestD = r, d
			}
		}
		h.links[u][0] = append(h.links[u][0], best)
		h.links[best][0] = append(h.links[best][0], int32(u))
		queue = append(queue[:0], int32(u))
		visited[u] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			reachable = append(reachable, v)
			for _, nb := range h.links[v][0] {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
}

func (h *hnsw) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	return searchPooled(h, q, k, p, st)
}

func (h *hnsw) searchWith(q []float32, k int, p SearchParams, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	if h.store == nil || h.store.Rows() == 0 || k < 1 || h.entry < 0 {
		return dst
	}
	ef := p.Ef
	if ef < k {
		ef = k
	}
	var work Stats
	cur := h.entry
	curD := h.dist(&work, q, h.row(int32(cur)))
	for l := h.maxLevel; l > 0; l-- {
		for {
			improved := false
			for _, nb := range h.links[cur][l] {
				if d := h.dist(&work, q, h.row(nb)); d < curD {
					cur, curD = int(nb), d
					improved = true
				}
			}
			if !improved {
				break
			}
		}
	}
	s.eps = append(s.eps[:0], int32(cur))
	// The layer-0 beam already carries every candidate's exact distance,
	// so the top-k is filled straight from it — no re-computation (and no
	// second DistComps charge) for the returned candidates.
	cands := h.searchLayer(q, s.eps, ef, 0, &work, s)
	top := s.top.Reset(k)
	for _, c := range cands {
		top.Push(h.ids[c.ID], c.Dist)
	}
	accumulate(st, work)
	if dst == nil {
		dst = make([]linalg.Neighbor, 0, top.Len())
	}
	return top.AppendResults(dst)
}

func (h *hnsw) SearchInto(q []float32, k int, p SearchParams, st *Stats, top *linalg.TopK) {
	searchIntoPooled(h, q, k, p, st, top)
}

// SearchMultiInto runs the queries serially: graph traversal visits
// query-dependent neighborhoods, so there is no shared arena tile for the
// multi-query kernels to amortize.
func (h *hnsw) SearchMultiInto(queries [][]float32, k int, p SearchParams, st *Stats, tops []*linalg.TopK) {
	searchMultiSerial(h, queries, k, p, st, tops)
}

func (h *hnsw) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(h, queries, k, p, st)
}

func (h *hnsw) MemoryBytes() int64 {
	var linkCount int64
	for _, perNode := range h.links {
		for _, l := range perNode {
			linkCount += int64(len(l))
		}
	}
	var vecBytes int64
	if h.store != nil {
		vecBytes = h.store.Bytes()
	}
	return vecBytes + linkCount*4
}

func (h *hnsw) BuildStats() Stats { return h.work }

// StoreAdopted: hnsw retains the caller's arena as its vector storage.
func (h *hnsw) StoreAdopted() bool { return true }
