package index

import "sort"

// SortRowsByID sorts the parallel (vecs, ids) row slices in place by
// ascending id. The engine keeps every sealed segment's rows in id order:
// that makes per-segment id membership a binary search (delete routing,
// tombstone GC) and gives compaction a canonical row order, so merged or
// rewritten segments are bit-identical regardless of which worker built
// them. Ids are unique, so the order is total and the sort deterministic.
func SortRowsByID(vecs [][]float32, ids []int64) {
	sort.Sort(rowsByID{vecs: vecs, ids: ids})
}

type rowsByID struct {
	vecs [][]float32
	ids  []int64
}

func (r rowsByID) Len() int           { return len(r.ids) }
func (r rowsByID) Less(i, j int) bool { return r.ids[i] < r.ids[j] }
func (r rowsByID) Swap(i, j int) {
	r.ids[i], r.ids[j] = r.ids[j], r.ids[i]
	r.vecs[i], r.vecs[j] = r.vecs[j], r.vecs[i]
}
