package index

import (
	"sort"

	"vdtuner/internal/linalg"
)

// SortRowsByID sorts the parallel (store, ids) rows in place by ascending
// id. The engine keeps every sealed segment's rows in id order: that makes
// per-segment id membership a binary search (delete routing, tombstone GC)
// and gives compaction a canonical row order, so merged or rewritten
// segments are bit-identical regardless of which worker built them. Ids
// are unique, so the order is total and the sort deterministic.
func SortRowsByID(store *linalg.Matrix, ids []int64) {
	sort.Sort(rowsByID{store: store, ids: ids})
}

type rowsByID struct {
	store *linalg.Matrix
	ids   []int64
}

func (r rowsByID) Len() int           { return len(r.ids) }
func (r rowsByID) Less(i, j int) bool { return r.ids[i] < r.ids[j] }
func (r rowsByID) Swap(i, j int) {
	r.ids[i], r.ids[j] = r.ids[j], r.ids[i]
	r.store.SwapRows(i, j)
}
