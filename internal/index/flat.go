package index

import (
	"fmt"

	"vdtuner/internal/linalg"
)

// flat is the exhaustive index: it scans every stored vector per query.
// It is exact (recall 1.0 by construction) and the slowest option on large
// segments, matching Milvus' FLAT. The scan streams the arena with the
// blocked kernels, one cache-friendly pass.
type flat struct {
	metric  linalg.Metric
	dim     int
	store   *linalg.Matrix
	ids     []int64
	built   bool
	scratch scratchPool
}

func newFlat(m linalg.Metric, dim int) *flat {
	return &flat{metric: m, dim: dim}
}

func (f *flat) Type() Type { return Flat }

func (f *flat) pool() *scratchPool { return &f.scratch }

func (f *flat) Build(store *linalg.Matrix, ids []int64) error {
	if f.built {
		return fmt.Errorf("flat: Build called twice")
	}
	if store.Rows() != len(ids) {
		return fmt.Errorf("flat: %d vectors but %d ids", store.Rows(), len(ids))
	}
	if store.Dim() != f.dim {
		return fmt.Errorf("flat: store has dim %d, want %d", store.Dim(), f.dim)
	}
	if !store.Packed() {
		return fmt.Errorf("flat: store must be packed (stride == dim)")
	}
	f.store = store
	f.ids = ids
	f.built = true
	return nil
}

func (f *flat) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	return searchPooled(f, q, k, p, st)
}

func (f *flat) searchWith(q []float32, k int, _ SearchParams, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	if f.store == nil || f.store.Rows() == 0 || k < 1 {
		return dst
	}
	n := f.store.Rows()
	s.dists = f32Buf(s.dists, n)
	linalg.DistanceBlock(f.metric, q, f.store.Data(), s.dists)
	top := s.top.Reset(k)
	for i, d := range s.dists {
		top.Push(f.ids[i], d)
	}
	accumulate(st, Stats{DistComps: int64(n)})
	if dst == nil {
		dst = make([]linalg.Neighbor, 0, top.Len())
	}
	return top.AppendResults(dst)
}

// SearchInto offers every stored row directly to the collector: the
// exhaustive scan needs no private top-k stage, so a capacity->=k collector
// sees exactly the rows Search would rank, in the same (storage) order.
func (f *flat) SearchInto(q []float32, k int, _ SearchParams, st *Stats, top *linalg.TopK) {
	if f.store == nil || f.store.Rows() == 0 || k < 1 {
		return
	}
	s := f.scratch.get()
	n := f.store.Rows()
	s.dists = f32Buf(s.dists, n)
	linalg.DistanceBlock(f.metric, q, f.store.Data(), s.dists)
	for i, d := range s.dists {
		top.Push(f.ids[i], d)
	}
	accumulate(st, Stats{DistComps: int64(n)})
	f.scratch.put(s)
}

// SearchMultiInto is the tiled multi-query scan: the whole arena is walked
// in cache-resident row tiles, each tile scored against every query by the
// multi-query blocked kernels (rows stream from memory once per batch, not
// once per query), and each query's distances are offered to its collector
// in ascending row order — exactly SearchInto's candidate sequence, so
// results and tie handling are bit-identical per query.
func (f *flat) SearchMultiInto(queries [][]float32, k int, _ SearchParams, st *Stats, tops []*linalg.TopK) {
	qn := len(queries)
	if f.store == nil || f.store.Rows() == 0 || k < 1 || qn == 0 {
		return
	}
	s := f.scratch.get()
	scanArenaMulti(f.metric, queries, f.store, f.ids, tops, st, s)
	f.scratch.put(s)
}

func (f *flat) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(f, queries, k, p, st)
}

func (f *flat) MemoryBytes() int64 {
	if f.store == nil {
		return 0
	}
	return f.store.Bytes()
}

func (f *flat) BuildStats() Stats { return Stats{} }

// StoreAdopted: flat retains the caller's arena as its only storage.
func (f *flat) StoreAdopted() bool { return true }

// scanPool serves ScanStore: the subset scans of growing/sealing segments
// share one package-level scratch pool.
var scanPool scratchPool

// ScanStore searches an explicit arena of vectors exhaustively; the store
// must be packed (stride == dim). The engine uses it for growing
// (unsealed) segment tails.
func ScanStore(m linalg.Metric, q []float32, store *linalg.Matrix, ids []int64, k int, st *Stats) []linalg.Neighbor {
	if store == nil || store.Rows() == 0 || k < 1 {
		return nil
	}
	s := scanPool.get()
	n := store.Rows()
	s.dists = f32Buf(s.dists, n)
	linalg.DistanceBlock(m, q, store.Data(), s.dists)
	top := s.top.Reset(k)
	for i, d := range s.dists {
		top.Push(ids[i], d)
	}
	accumulate(st, Stats{DistComps: int64(n)})
	out := top.AppendResults(make([]linalg.Neighbor, 0, top.Len()))
	scanPool.put(s)
	return out
}

// ScanStoreInto is the collector-feeding variant of ScanStore: it pushes
// every row of the arena into the caller-owned top and reuses dists as the
// distance buffer (returned grown to the high-water mark). The engine's
// scatter-gather path scans growing and sealing tails with it, so a shard
// probe allocates nothing.
func ScanStoreInto(m linalg.Metric, q []float32, store *linalg.Matrix, ids []int64, top *linalg.TopK, dists []float32, st *Stats) []float32 {
	if store == nil || store.Rows() == 0 {
		return dists
	}
	n := store.Rows()
	dists = f32Buf(dists, n)
	linalg.DistanceBlock(m, q, store.Data(), dists)
	for i, d := range dists {
		top.Push(ids[i], d)
	}
	accumulate(st, Stats{DistComps: int64(n)})
	return dists
}

// ScanStoreMultiInto is the multi-query variant of ScanStoreInto: one
// tiled pass over the arena scores every query (rows loaded once, reused
// across the tile of queries) and feeds each query's collector in
// ascending row order, so per query the offered sequence is bit-identical
// to ScanStoreInto's. The engine scans growing and sealing segment tails
// with it; all scratch is pooled, so a steady-state call allocates
// nothing.
func ScanStoreMultiInto(m linalg.Metric, queries [][]float32, store *linalg.Matrix, ids []int64, tops []*linalg.TopK, st *Stats) {
	if store == nil || store.Rows() == 0 || len(queries) == 0 {
		return
	}
	s := scanPool.get()
	scanArenaMulti(m, queries, store, ids, tops, st, s)
	scanPool.put(s)
}

// scanArenaMulti is the shared tiled exhaustive scan: per row tile, the
// multi-query kernel fills a Q×tile distance matrix in scratch, then each
// query pushes its tile of distances in ascending row order. The push
// order over the whole arena is therefore (per query) ascending rows —
// identical to the single-query scans.
func scanArenaMulti(m linalg.Metric, queries [][]float32, store *linalg.Matrix, ids []int64, tops []*linalg.TopK, st *Stats, s *searchScratch) {
	qn := len(queries)
	n := store.Rows()
	dim := store.Dim()
	data := store.Data()
	tile := linalg.MultiRowTile(dim, qn)
	if tile > n {
		tile = n
	}
	s.mdists = f32Buf(s.mdists, qn*tile)
	s.mouts = f32sBuf(s.mouts, qn)
	for lo := 0; lo < n; lo += tile {
		hi := lo + tile
		if hi > n {
			hi = n
		}
		tl := hi - lo
		for qi := 0; qi < qn; qi++ {
			s.mouts[qi] = s.mdists[qi*tile : qi*tile+tl]
		}
		linalg.DistanceMultiScatter(m, queries, data[lo*dim:hi*dim], s.mouts)
		for qi := 0; qi < qn; qi++ {
			top := tops[qi]
			for i, d := range s.mouts[qi] {
				top.Push(ids[lo+i], d)
			}
		}
	}
	accumulate(st, Stats{DistComps: int64(qn) * int64(n)})
}
