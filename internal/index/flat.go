package index

import (
	"fmt"

	"vdtuner/internal/linalg"
)

// flat is the exhaustive index: it scans every stored vector per query.
// It is exact (recall 1.0 by construction) and the slowest option on large
// segments, matching Milvus' FLAT.
type flat struct {
	metric linalg.Metric
	dim    int
	vecs   [][]float32
	ids    []int64
	built  bool
}

func newFlat(m linalg.Metric, dim int) *flat {
	return &flat{metric: m, dim: dim}
}

func (f *flat) Type() Type { return Flat }

func (f *flat) Build(vecs [][]float32, ids []int64) error {
	if f.built {
		return fmt.Errorf("flat: Build called twice")
	}
	if len(vecs) != len(ids) {
		return fmt.Errorf("flat: %d vectors but %d ids", len(vecs), len(ids))
	}
	for i, v := range vecs {
		if len(v) != f.dim {
			return fmt.Errorf("flat: vector %d has dim %d, want %d", i, len(v), f.dim)
		}
	}
	f.vecs = vecs
	f.ids = ids
	f.built = true
	return nil
}

func (f *flat) Search(q []float32, k int, _ SearchParams, st *Stats) []linalg.Neighbor {
	if len(f.vecs) == 0 || k < 1 {
		return nil
	}
	top := linalg.NewTopK(k)
	for i, v := range f.vecs {
		top.Push(f.ids[i], linalg.Distance(f.metric, q, v))
	}
	accumulate(st, Stats{DistComps: int64(len(f.vecs))})
	return top.Results()
}

func (f *flat) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(f, queries, k, p, st)
}

func (f *flat) MemoryBytes() int64 {
	return int64(len(f.vecs)) * int64(f.dim) * float32Bytes
}

func (f *flat) BuildStats() Stats { return Stats{} }

// ScanSubset searches an explicit subset of vectors exhaustively. The
// engine uses it for growing (unsealed) segment tails.
func ScanSubset(m linalg.Metric, q []float32, vecs [][]float32, ids []int64, k int, st *Stats) []linalg.Neighbor {
	if len(vecs) == 0 || k < 1 {
		return nil
	}
	top := linalg.NewTopK(k)
	for i, v := range vecs {
		top.Push(ids[i], linalg.Distance(m, q, v))
	}
	accumulate(st, Stats{DistComps: int64(len(vecs))})
	return top.Results()
}
