package index

import (
	"sync"

	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
)

// searchScratch is the reusable per-query working state of every index's
// hot path. One scratch serves one query at a time; buffers grow to the
// high-water mark of the queries they serve and are then reused, so a
// steady-state Search performs no heap allocations beyond the
// caller-visible result slice. Scratches are pooled per index (see
// scratchPool) and threaded through SearchBatch's chunk workers, giving
// each worker goroutine a private scratch for its whole run.
type searchScratch struct {
	// visited is the epoch-stamped visited set of the HNSW beam search:
	// node i is visited this query iff visited[i] == epoch. Bumping epoch
	// clears the set in O(1); the array is only re-zeroed on the (every
	// ~4 billion queries) epoch wrap.
	visited []uint32
	epoch   uint32
	// frontier is the HNSW beam's sorted candidate queue.
	frontier []hnswCand
	// beamOut receives searchLayer's (node, dist) results.
	beamOut []linalg.Neighbor
	// eps is the entry-point buffer for the layer-0 beam.
	eps []int32
	// top is the primary result collector; stage1 the secondary one
	// (HNSW beam, SCANN quantized stage).
	top    linalg.TopK
	stage1 linalg.TopK
	// dists receives blocked-kernel distance outputs (centroid scans,
	// posting-list scans).
	dists []float32
	// adc is the flattened PQ lookup table: m*ksub subspace distances.
	adc []float32
	// probe holds the selected IVF probe order; probeD the paired
	// centroid distances during selection.
	probe  []int32
	probeD []float32
	// neighbors is a transient neighbor buffer (SCANN stage-1 results).
	neighbors []linalg.Neighbor
	// res is the reusable result buffer of SearchInto: the probe's top-k
	// lands here before being offered to the caller's collector, so the
	// scatter-gather path materializes no per-probe slices.
	res []linalg.Neighbor

	// Multi-query state (SearchMultiInto). mdists is the Q×ncells coarse
	// distance matrix; mprobe the flat Q×nprobe probe table; mregion maps
	// each (query, probe-slot) to its offset in mbuf, the materialized
	// per-slot distance regions of the shared posting-list scans; mcnt and
	// mfill are the cell→prober counting-sort arrays and ment the inverted
	// entries (global probe-slot ids, cell-major); mouts and mqrows are the
	// gathered output/query views handed to the scatter kernel.
	mdists  []float32
	mbuf    []float32
	mouts   [][]float32
	mqrows  [][]float32
	mprobe  []int32
	mregion []int32
	mcnt    []int32
	mfill   []int32
	ment    []int32

	// Quantized-scan state. resid is the single-query SQ8 residual
	// (q - min); mres the flat Q×dim residual arena of the multi path.
	// madc is the flat Q×(m·ksub) ADC table arena of the multi-query PQ
	// scan. gath is the SCANN re-rank gather arena: one query's stage-1
	// survivors copied contiguous so stage 2 is one blocked kernel call.
	resid []float32
	mres  []float32
	madc  []float32
	gath  []float32
}

// hnswCand is one beam-search candidate: a node and its distance to the
// query.
type hnswCand struct {
	node int32
	d    float32
}

// beginVisit prepares the visited set for one traversal over n nodes and
// returns the epoch stamp to mark nodes with.
func (s *searchScratch) beginVisit(n int) uint32 {
	if cap(s.visited) < n {
		s.visited = make([]uint32, n)
		s.epoch = 0
	}
	s.visited = s.visited[:n]
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps survive, re-zero once
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
	return s.epoch
}

// f32Buf returns a length-n float32 buffer, growing buf's capacity only at
// the high-water mark.
func f32Buf(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// i32Buf returns a length-n int32 buffer, growing at the high-water mark.
func i32Buf(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// f32sBuf returns a length-n slice-of-slices buffer, growing at the
// high-water mark (entries are overwritten by the caller).
func f32sBuf(buf [][]float32, n int) [][]float32 {
	if cap(buf) < n {
		return make([][]float32, n)
	}
	return buf[:n]
}

// scratchPool pools searchScratch values for one index. The zero value is
// ready to use. Get/Put of pointer values never allocate once the pool is
// warm, so single-query Search is allocation-free at steady state and
// SearchBatch checks out one scratch per worker.
type scratchPool struct{ p sync.Pool }

func (sp *scratchPool) get() *searchScratch {
	if s, ok := sp.p.Get().(*searchScratch); ok {
		return s
	}
	return &searchScratch{}
}

func (sp *scratchPool) put(s *searchScratch) { sp.p.Put(s) }

// searcher is the scratch-aware face every index implements: searchWith is
// Search with all transient state drawn from s and the result appended to
// dst (which may be nil; the caller-visible slice of Search is exactly one
// append onto a nil dst).
type searcher interface {
	Index
	pool() *scratchPool
	searchWith(q []float32, k int, p SearchParams, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor
}

// searchPooled implements Index.Search on top of searchWith: check a
// scratch out of the index's pool for the duration of one query.
func searchPooled(x searcher, q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	sp := x.pool()
	s := sp.get()
	res := x.searchWith(q, k, p, st, s, nil)
	sp.put(s)
	return res
}

// searchIntoPooled implements Index.SearchInto on top of searchWith: the
// probe's top-k lands in the scratch's reusable result buffer and is
// offered to the caller-owned collector, so a steady-state probe performs
// no heap allocations at all.
func searchIntoPooled(x searcher, q []float32, k int, p SearchParams, st *Stats, top *linalg.TopK) {
	sp := x.pool()
	s := sp.get()
	s.res = x.searchWith(q, k, p, st, s, s.res[:0])
	for _, n := range s.res {
		top.Push(n.ID, n.Dist)
	}
	sp.put(s)
}

// searchMultiSerial is the default SearchMultiInto: per-query probes in
// query order. Graph-traversal indexes (HNSW, and AUTOINDEX delegating to
// it) route here — their access pattern is query-dependent, so there is no
// shared arena streaming to exploit.
func searchMultiSerial(x Index, queries [][]float32, k int, p SearchParams, st *Stats, tops []*linalg.TopK) {
	for i, q := range queries {
		x.SearchInto(q, k, p, st, tops[i])
	}
}

// searchBatch is the shared SearchBatch implementation: every index type's
// search is a read-only probe of an immutable built structure, so the batch
// fans queries over a worker pool. Each worker goroutine owns one pooled
// scratch for the whole batch, and each query charges its own private Stats
// slot; the slots are merged in query order at the end, so the accumulated
// counts are exactly those of sequential Searches (integer sums are
// order-independent), regardless of worker count.
func searchBatch(x searcher, queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	out := make([][]linalg.Neighbor, len(queries))
	if len(queries) == 0 {
		return out
	}
	per := make([]Stats, len(queries))
	sp := x.pool()
	scratches := make([]*searchScratch, parallel.WorkerCount(p.Workers, len(queries)))
	parallel.WorkerParallel(p.Workers, len(queries), func(w, qi int) {
		s := scratches[w]
		if s == nil {
			s = sp.get()
			scratches[w] = s
		}
		out[qi] = x.searchWith(queries[qi], k, p, &per[qi], s, nil)
	})
	for _, s := range scratches {
		if s != nil {
			sp.put(s)
		}
	}
	if st != nil {
		for i := range per {
			st.Add(per[i])
		}
	}
	return out
}
