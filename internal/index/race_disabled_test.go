//go:build !race

package index

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
