package index

import (
	"math"
	"testing"

	"vdtuner/internal/linalg"
)

// neighborsBitEqual reports whether two result lists are bit-identical:
// same length, same IDs, and same float bit patterns (so -0 vs +0 or any
// rounding drift is caught, not masked by tolerance).
func neighborsBitEqual(a, b []linalg.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Float32bits(a[i].Dist) != math.Float32bits(b[i].Dist) {
			return false
		}
	}
	return true
}

// TestSearchMultiIntoMatchesSearchInto is the cross-layer contract behind
// the tiled batch path: for every index type, metric, and tile width
// (including ragged and quad-remainder widths), SearchMultiInto must
// produce bit-identical per-query results and exactly-summed stats versus
// calling SearchInto once per query.
func TestSearchMultiIntoMatchesSearchInto(t *testing.T) {
	const k = 10
	sp := SearchParams{NProbe: 4, Ef: 32, ReorderK: 20}
	bp := BuildParams{NList: 16, M: 4, NBits: 6, HNSWM: 8, EfConstruction: 50, Seed: 21}
	vecs, ids, queries, _ := testData(t, 700, 64, 16, k, 21)
	for _, metric := range []linalg.Metric{linalg.L2, linalg.InnerProduct} {
		for _, typ := range AllTypes() {
			idx, err := New(typ, metric, 16, bp)
			if err != nil {
				t.Fatalf("New(%v): %v", typ, err)
			}
			if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
				t.Fatalf("Build(%v): %v", typ, err)
			}
			for _, qn := range []int{1, 2, 7, 64} {
				qs := queries[:qn]
				var stSeq Stats
				want := make([][]linalg.Neighbor, qn)
				for i, q := range qs {
					top := linalg.NewTopK(k)
					idx.SearchInto(q, k, sp, &stSeq, top)
					want[i] = top.Results()
				}
				var stMulti Stats
				tops := make([]*linalg.TopK, qn)
				for i := range tops {
					tops[i] = linalg.NewTopK(k)
				}
				idx.SearchMultiInto(qs, k, sp, &stMulti, tops)
				if stMulti != stSeq {
					t.Errorf("%v metric=%v qn=%d: multi stats %+v != sequential %+v", typ, metric, qn, stMulti, stSeq)
				}
				for i := range qs {
					if got := tops[i].Results(); !neighborsBitEqual(got, want[i]) {
						t.Errorf("%v metric=%v qn=%d query %d: multi results diverge\n got %v\nwant %v", typ, metric, qn, i, got, want[i])
					}
				}
			}
		}
	}
}

// TestScanStoreMultiIntoMatchesScanStoreInto covers the growing/sealing
// tail scan the engine uses outside any index.
func TestScanStoreMultiIntoMatchesScanStoreInto(t *testing.T) {
	const k = 5
	vecs, ids, queries, _ := testData(t, 97, 64, 16, k, 22) // ragged row count
	store := linalg.MatrixFromRows(vecs)
	for _, metric := range []linalg.Metric{linalg.L2, linalg.InnerProduct} {
		for _, qn := range []int{1, 2, 7, 64} {
			qs := queries[:qn]
			var stSeq Stats
			var dists []float32
			want := make([][]linalg.Neighbor, qn)
			for i, q := range qs {
				top := linalg.NewTopK(k)
				dists = ScanStoreInto(metric, q, store, ids, top, dists, &stSeq)
				want[i] = top.Results()
			}
			var stMulti Stats
			tops := make([]*linalg.TopK, qn)
			for i := range tops {
				tops[i] = linalg.NewTopK(k)
			}
			ScanStoreMultiInto(metric, qs, store, ids, tops, &stMulti)
			if stMulti != stSeq {
				t.Errorf("metric=%v qn=%d: multi stats %+v != sequential %+v", metric, qn, stMulti, stSeq)
			}
			for i := range qs {
				if got := tops[i].Results(); !neighborsBitEqual(got, want[i]) {
					t.Errorf("metric=%v qn=%d query %d: tail scan diverges", metric, qn, i)
				}
			}
		}
	}
}
