package index

import (
	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
)

// searchBatch is the shared SearchBatch implementation: every index type's
// Search is a read-only probe of an immutable built structure, so the batch
// fans out query-per-chunk over a worker pool. Each query charges its own
// private Stats slot; the slots are merged in query order at the end, so
// the accumulated counts are exactly those of sequential Searches (integer
// sums are order-independent), regardless of worker count.
func searchBatch(ix Index, queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	out := make([][]linalg.Neighbor, len(queries))
	per := make([]Stats, len(queries))
	parallel.Parallel(p.Workers, len(queries), func(qi int) {
		out[qi] = ix.Search(queries[qi], k, p, &per[qi])
	})
	if st != nil {
		for i := range per {
			st.Add(per[i])
		}
	}
	return out
}
