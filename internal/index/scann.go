package index

import (
	"fmt"

	"vdtuner/internal/linalg"
)

// scann approximates Milvus' SCANN index: an IVF partition whose posting
// lists are scored in a quantized domain (SQ8 codes standing in for SCANN's
// anisotropic quantization), followed by exact re-ranking of the best
// reorder_k candidates against the retained raw vectors. Parameters:
// nlist (build); nprobe and reorder_k (search).
type scann struct {
	coarse *ivfCoarse
	codec  *sq8Codec
	codes  [][]byte
	vecs   [][]float32 // raw vectors kept for re-ranking
	ids    []int64
}

func newSCANN(m linalg.Metric, dim int, p BuildParams) (*scann, error) {
	nlist := p.NList
	if nlist == 0 {
		nlist = 128
	}
	c, err := newIVFCoarse(m, dim, nlist, p.Seed, p.Workers)
	if err != nil {
		return nil, err
	}
	return &scann{coarse: c}, nil
}

func (x *scann) Type() Type { return SCANN }

func (x *scann) Build(vecs [][]float32, ids []int64) error {
	if len(vecs) != len(ids) {
		return fmt.Errorf("scann: %d vectors but %d ids", len(vecs), len(ids))
	}
	if err := x.coarse.train(vecs); err != nil {
		return err
	}
	x.codec = trainSQ8(vecs, x.coarse.dim, x.coarse.workers)
	x.codes = make([][]byte, len(vecs))
	buf := make([]byte, len(vecs)*x.coarse.dim)
	for i := range vecs {
		x.codes[i], buf = buf[:x.coarse.dim], buf[x.coarse.dim:]
	}
	x.codec.encodeAll(vecs, x.codes, x.coarse.workers)
	x.vecs = vecs
	x.ids = ids
	x.coarse.buildWork.Add(Stats{CodeComps: int64(len(vecs))})
	return nil
}

func (x *scann) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	if len(x.codes) == 0 || k < 1 {
		return nil
	}
	order := x.coarse.probeOrder(q, st)
	nprobe := x.coarse.clampProbe(p.NProbe)
	reorder := p.ReorderK
	if reorder < k {
		reorder = k
	}

	// Stage 1: quantized scoring of the probed cells, keeping the best
	// reorder_k candidates by local offset.
	stage1 := linalg.NewTopK(reorder)
	var scanned int64
	for _, cell := range order[:nprobe] {
		for _, off := range x.coarse.lists[cell] {
			stage1.Push(int64(off), x.codec.dist(x.coarse.metric, q, x.codes[off]))
		}
		scanned += int64(len(x.coarse.lists[cell]))
	}
	accumulate(st, Stats{CodeComps: scanned})

	// Stage 2: exact re-ranking of the survivors.
	cands := stage1.Results()
	top := linalg.NewTopK(k)
	for _, c := range cands {
		off := int(c.ID)
		top.Push(x.ids[off], linalg.Distance(x.coarse.metric, q, x.vecs[off]))
	}
	accumulate(st, Stats{DistComps: int64(len(cands))})
	return top.Results()
}

func (x *scann) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(x, queries, k, p, st)
}

func (x *scann) MemoryBytes() int64 {
	return int64(len(x.vecs))*int64(x.coarse.dim)*float32Bytes + // raw
		int64(len(x.codes))*int64(x.coarse.dim) + // codes
		x.coarse.centroidBytes() +
		2*int64(x.coarse.dim)*float32Bytes +
		int64(len(x.codes))*4
}

func (x *scann) BuildStats() Stats { return x.coarse.buildWork }
