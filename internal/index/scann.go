package index

import (
	"fmt"

	"vdtuner/internal/linalg"
)

// scann approximates Milvus' SCANN index: an IVF partition whose posting
// lists are scored in a quantized domain (SQ8 codes standing in for SCANN's
// anisotropic quantization), followed by exact re-ranking of the best
// reorder_k candidates against the retained raw vectors. Parameters:
// nlist (build); nprobe and reorder_k (search). Codes and raw vectors are
// both grouped cell-major, so stage 1 streams contiguous byte ranges and
// stage 2 re-ranks by grouped row.
type scann struct {
	coarse  *ivfCoarse
	codec   *sq8Codec
	codes   []byte         // grouped
	store   *linalg.Matrix // grouped raw vectors kept for re-ranking
	ids     []int64        // grouped
	scratch scratchPool
}

func newSCANN(m linalg.Metric, dim int, p BuildParams) (*scann, error) {
	nlist := p.NList
	if nlist == 0 {
		nlist = 128
	}
	c, err := newIVFCoarse(m, dim, nlist, p.Seed, p.Workers)
	if err != nil {
		return nil, err
	}
	return &scann{coarse: c}, nil
}

func (x *scann) Type() Type { return SCANN }

func (x *scann) pool() *scratchPool { return &x.scratch }

func (x *scann) Build(store *linalg.Matrix, ids []int64) error {
	if store.Rows() != len(ids) {
		return fmt.Errorf("scann: %d vectors but %d ids", store.Rows(), len(ids))
	}
	order, err := x.coarse.train(store)
	if err != nil {
		return err
	}
	x.codec = trainSQ8(store, x.coarse.dim, x.coarse.workers)
	x.codes = x.codec.encodeGrouped(store, order, x.coarse.workers)
	x.store = gatherRows(store, order)
	x.ids = gatherIDs(ids, order)
	x.coarse.buildWork.Add(Stats{CodeComps: int64(store.Rows())})
	return nil
}

func (x *scann) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	return searchPooled(x, q, k, p, st)
}

func (x *scann) searchWith(q []float32, k int, p SearchParams, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	if len(x.codes) == 0 || k < 1 {
		return dst
	}
	cells := x.coarse.probe(q, x.coarse.clampProbe(p.NProbe), st, s)
	return x.scanCells(q, cells, k, p, st, s, dst)
}

// scanCells runs both SCANN stages over the given cells in probe order:
// quantized stage-1 selection, then exact re-ranking.
func (x *scann) scanCells(q []float32, cells []int32, k int, p SearchParams, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	reorder := p.ReorderK
	if reorder < k {
		reorder = k
	}
	dim := x.coarse.dim

	// Stage 1: quantized scoring of the probed cells, keeping the best
	// reorder_k candidates by grouped row.
	stage1 := s.stage1.Reset(reorder)
	var scanned int64
	for _, cell := range cells {
		lo, hi := x.coarse.cellRange(cell)
		for g := int(lo); g < int(hi); g++ {
			stage1.Push(int64(g), x.codec.dist(x.coarse.metric, q, x.codes[g*dim:(g+1)*dim]))
		}
		scanned += int64(hi - lo)
	}
	accumulate(st, Stats{CodeComps: scanned})

	// Stage 2: exact re-ranking of the survivors.
	s.neighbors = stage1.AppendResults(s.neighbors[:0])
	top := s.top.Reset(k)
	for _, c := range s.neighbors {
		g := int(c.ID)
		top.Push(x.ids[g], linalg.Distance(x.coarse.metric, q, x.store.Row(g)))
	}
	accumulate(st, Stats{DistComps: int64(len(s.neighbors))})
	if dst == nil {
		dst = make([]linalg.Neighbor, 0, top.Len())
	}
	return top.AppendResults(dst)
}

func (x *scann) SearchInto(q []float32, k int, p SearchParams, st *Stats, top *linalg.TopK) {
	searchIntoPooled(x, q, k, p, st, top)
}

// SearchMultiInto batches the coarse centroid assignment across the query
// tile; the quantized stage-1 scans and exact re-ranks stay per-query.
func (x *scann) SearchMultiInto(queries [][]float32, k int, p SearchParams, st *Stats, tops []*linalg.TopK) {
	qn := len(queries)
	if len(x.codes) == 0 || k < 1 || qn == 0 {
		return
	}
	s := x.scratch.get()
	nprobe := x.coarse.clampProbe(p.NProbe)
	probes := x.coarse.probeMulti(queries, nprobe, st, s)
	for qi, q := range queries {
		s.res = x.scanCells(q, probes[qi*nprobe:(qi+1)*nprobe], k, p, st, s, s.res[:0])
		dst := tops[qi]
		for _, nb := range s.res {
			dst.Push(nb.ID, nb.Dist)
		}
	}
	x.scratch.put(s)
}

func (x *scann) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(x, queries, k, p, st)
}

func (x *scann) MemoryBytes() int64 {
	if x.store == nil {
		return 0
	}
	return x.store.Bytes() + // raw
		int64(len(x.codes)) + // codes
		x.coarse.centroidBytes() +
		x.codec.bytes() +
		int64(len(x.ids))*4
}

func (x *scann) BuildStats() Stats { return x.coarse.buildWork }

func (x *scann) StoreAdopted() bool { return false }
