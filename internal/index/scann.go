package index

import (
	"fmt"

	"vdtuner/internal/linalg"
)

// scann approximates Milvus' SCANN index: an IVF partition whose posting
// lists are scored in a quantized domain (SQ8 codes standing in for SCANN's
// anisotropic quantization), followed by exact re-ranking of the best
// reorder_k candidates against the retained raw vectors. Parameters:
// nlist (build); nprobe and reorder_k (search). Codes and raw vectors are
// both grouped cell-major, so stage 1 streams contiguous byte ranges and
// stage 2 re-ranks by grouped row.
type scann struct {
	coarse  *ivfCoarse
	codec   *sq8Codec
	codes   []byte         // grouped
	store   *linalg.Matrix // grouped raw vectors kept for re-ranking
	ids     []int64        // grouped
	scratch scratchPool
}

func newSCANN(m linalg.Metric, dim int, p BuildParams) (*scann, error) {
	nlist := p.NList
	if nlist == 0 {
		nlist = 128
	}
	c, err := newIVFCoarse(m, dim, nlist, p.Seed, p.Workers)
	if err != nil {
		return nil, err
	}
	return &scann{coarse: c}, nil
}

func (x *scann) Type() Type { return SCANN }

func (x *scann) pool() *scratchPool { return &x.scratch }

func (x *scann) Build(store *linalg.Matrix, ids []int64) error {
	if store.Rows() != len(ids) {
		return fmt.Errorf("scann: %d vectors but %d ids", store.Rows(), len(ids))
	}
	order, err := x.coarse.train(store)
	if err != nil {
		return err
	}
	x.codec = trainSQ8(store, x.coarse.dim, x.coarse.workers)
	x.codes = x.codec.encodeGrouped(store, order, x.coarse.workers)
	x.store = gatherRows(store, order)
	x.ids = gatherIDs(ids, order)
	x.coarse.buildWork.Add(Stats{CodeComps: int64(store.Rows())})
	return nil
}

func (x *scann) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	return searchPooled(x, q, k, p, st)
}

func (x *scann) searchWith(q []float32, k int, p SearchParams, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	if len(x.codes) == 0 || k < 1 {
		return dst
	}
	cells := x.coarse.probe(q, x.coarse.clampProbe(p.NProbe), st, s)
	return x.scanCells(q, cells, k, p, st, s, dst)
}

// scanCells runs both SCANN stages over the given cells in probe order:
// blocked quantized stage-1 selection (the SQ8 decode kernels stream each
// cell's contiguous byte range), then exact re-ranking of the survivors
// through the blocked float kernel over a gathered candidate arena.
func (x *scann) scanCells(q []float32, cells []int32, k int, p SearchParams, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	reorder := p.ReorderK
	if reorder < k {
		reorder = k
	}
	dim := x.coarse.dim

	// Stage 1: quantized scoring of the probed cells, keeping the best
	// reorder_k candidates by grouped row.
	sm, qa := x.codec.scanArg(x.coarse.metric, q, s)
	stage1 := s.stage1.Reset(reorder)
	var scanned int64
	for _, cell := range cells {
		lo, hi := x.coarse.cellRange(cell)
		if lo == hi {
			continue
		}
		s.dists = f32Buf(s.dists, int(hi-lo))
		linalg.DistanceSQ8Block(sm, qa, x.codec.min, x.codec.scale, x.codes[int(lo)*dim:int(hi)*dim], s.dists)
		for i, d := range s.dists {
			stage1.Push(int64(int(lo)+i), d)
		}
		scanned += int64(hi - lo)
	}
	accumulate(st, Stats{CodeComps: scanned})

	// Stage 2: exact re-ranking of the survivors.
	s.neighbors = stage1.AppendResults(s.neighbors[:0])
	top := s.top.Reset(k)
	x.rerank(q, s)
	for ci, c := range s.neighbors {
		top.Push(x.ids[int(c.ID)], s.dists[ci])
	}
	accumulate(st, Stats{DistComps: int64(len(s.neighbors))})
	if dst == nil {
		dst = make([]linalg.Neighbor, 0, top.Len())
	}
	return top.AppendResults(dst)
}

// rerank gathers the stage-1 survivors in s.neighbors into the contiguous
// s.gath arena and scores them exactly with one blocked kernel call,
// leaving candidate ci's distance in s.dists[ci]. Gathered rows are exact
// copies, so each output is bitwise equal to a per-row linalg.Distance.
func (x *scann) rerank(q []float32, s *searchScratch) {
	dim := x.coarse.dim
	n := len(s.neighbors)
	s.gath = f32Buf(s.gath, n*dim)
	for ci, c := range s.neighbors {
		copy(s.gath[ci*dim:(ci+1)*dim], x.store.Row(int(c.ID)))
	}
	s.dists = f32Buf(s.dists, n)
	linalg.DistanceBlock(x.coarse.metric, q, s.gath[:n*dim], s.dists)
}

func (x *scann) SearchInto(q []float32, k int, p SearchParams, st *Stats, top *linalg.TopK) {
	searchIntoPooled(x, q, k, p, st, top)
}

// SearchMultiInto shares the quantized stage-1 streaming across the query
// tile: batched coarse assignment, cell→prober inversion with each probed
// cell's code range decoded once per quad of probers by the multi-query
// SQ8 kernels, then a per-query replay that selects each query's reorder_k
// survivors in the single-query candidate order and re-ranks them exactly
// through the blocked float kernel — results are bit-identical per query.
func (x *scann) SearchMultiInto(queries [][]float32, k int, p SearchParams, st *Stats, tops []*linalg.TopK) {
	qn := len(queries)
	if len(x.codes) == 0 || k < 1 || qn == 0 {
		return
	}
	reorder := p.ReorderK
	if reorder < k {
		reorder = k
	}
	s := x.scratch.get()
	nprobe := x.coarse.clampProbe(p.NProbe)
	probes := x.coarse.probeMulti(queries, nprobe, st, s)
	total := x.coarse.invertProbes(probes, s)

	dim := x.coarse.dim
	sm := x.codec.scanMetric(x.coarse.metric)
	l2 := sm == linalg.L2
	if l2 {
		s.mres = f32Buf(s.mres, qn*dim)
		for qi, q := range queries {
			linalg.SQ8Residual(q, x.codec.min, s.mres[qi*dim:(qi+1)*dim])
		}
	}

	ncells := x.coarse.cents.Rows()
	for c := 0; c < ncells; c++ {
		elo, ehi := int(s.mcnt[c]), int(s.mcnt[c+1])
		if elo == ehi {
			continue
		}
		lo, hi := x.coarse.cellRange(int32(c))
		if lo == hi {
			continue
		}
		nq := ehi - elo
		s.mqrows = f32sBuf(s.mqrows, nq)
		s.mouts = f32sBuf(s.mouts, nq)
		for j := 0; j < nq; j++ {
			slot := s.ment[elo+j]
			qi := int(slot) / nprobe
			if l2 {
				s.mqrows[j] = s.mres[qi*dim : (qi+1)*dim]
			} else {
				s.mqrows[j] = queries[qi]
			}
			o := s.mregion[slot]
			s.mouts[j] = s.mbuf[o : o+hi-lo]
		}
		linalg.DistanceSQ8MultiScatter(sm, s.mqrows, x.codec.min, x.codec.scale,
			x.codes[int(lo)*dim:int(hi)*dim], s.mouts)
	}

	var reranked int64
	for qi, q := range queries {
		stage1 := s.stage1.Reset(reorder)
		for pi := 0; pi < nprobe; pi++ {
			slot := qi*nprobe + pi
			lo, hi := x.coarse.cellRange(probes[slot])
			if lo == hi {
				continue
			}
			o := s.mregion[slot]
			for i := int32(0); i < hi-lo; i++ {
				stage1.Push(int64(lo+i), s.mbuf[o+i])
			}
		}
		s.neighbors = stage1.AppendResults(s.neighbors[:0])
		x.rerank(q, s)
		top := s.top.Reset(k)
		for ci, c := range s.neighbors {
			top.Push(x.ids[int(c.ID)], s.dists[ci])
		}
		reranked += int64(len(s.neighbors))
		s.res = top.AppendResults(s.res[:0])
		dst := tops[qi]
		for _, nb := range s.res {
			dst.Push(nb.ID, nb.Dist)
		}
	}
	accumulate(st, Stats{CodeComps: int64(total), DistComps: reranked})
	for j := range s.mqrows {
		s.mqrows[j] = nil // don't pin caller query slices in the pool
	}
	x.scratch.put(s)
}

func (x *scann) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(x, queries, k, p, st)
}

func (x *scann) MemoryBytes() int64 {
	if x.store == nil {
		return 0
	}
	return x.store.Bytes() + // raw
		int64(len(x.codes)) + // codes
		x.coarse.centroidBytes() +
		x.codec.bytes() +
		int64(len(x.ids))*4
}

func (x *scann) BuildStats() Stats { return x.coarse.buildWork }

func (x *scann) StoreAdopted() bool { return false }
