package index

import (
	"math/rand"
	"testing"

	"vdtuner/internal/linalg"
)

// testData generates n unit vectors (angular-normalized, searched with L2,
// as the engine does) plus nq queries and exact ground truth.
func testData(t testing.TB, n, nq, dim, k int, seed int64) (vecs [][]float32, ids []int64, queries [][]float32, truth [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Clustered data: ANN indexes behave realistically on clustered sets.
	nCenters := 16
	centers := make([][]float32, nCenters)
	for c := range centers {
		centers[c] = make([]float32, dim)
		for j := range centers[c] {
			centers[c][j] = float32(rng.NormFloat64())
		}
	}
	gen := func() []float32 {
		c := centers[rng.Intn(nCenters)]
		v := make([]float32, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64())*0.3
		}
		linalg.Normalize(v)
		return v
	}
	vecs = make([][]float32, n)
	ids = make([]int64, n)
	for i := range vecs {
		vecs[i] = gen()
		ids[i] = int64(i)
	}
	queries = make([][]float32, nq)
	truth = make([][]int64, nq)
	for qi := range queries {
		queries[qi] = gen()
		top := linalg.NewTopK(k)
		for i, v := range vecs {
			top.Push(ids[i], linalg.SquaredL2(queries[qi], v))
		}
		for _, nb := range top.Results() {
			truth[qi] = append(truth[qi], nb.ID)
		}
	}
	return vecs, ids, queries, truth
}

func recallOf(results []linalg.Neighbor, truth []int64) float64 {
	want := make(map[int64]bool, len(truth))
	for _, id := range truth {
		want[id] = true
	}
	hit := 0
	for _, r := range results {
		if want[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

func buildAndMeasure(t *testing.T, typ Type, bp BuildParams, sp SearchParams) (recall float64, work Stats, idx Index) {
	t.Helper()
	const k = 10
	vecs, ids, queries, truth := testData(t, 2000, 30, 32, k, 42)
	idx, err := New(typ, linalg.L2, 32, bp)
	if err != nil {
		t.Fatalf("New(%v): %v", typ, err)
	}
	if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
		t.Fatalf("Build(%v): %v", typ, err)
	}
	var sum float64
	for qi, q := range queries {
		res := idx.Search(q, k, sp, &work)
		sum += recallOf(res, truth[qi])
	}
	return sum / float64(len(queries)), work, idx
}

func TestFlatIsExact(t *testing.T) {
	recall, work, _ := buildAndMeasure(t, Flat, BuildParams{}, SearchParams{})
	if recall != 1.0 {
		t.Fatalf("FLAT recall = %v, want 1.0", recall)
	}
	if work.DistComps != 2000*30 {
		t.Fatalf("FLAT work = %d distcomps, want %d", work.DistComps, 2000*30)
	}
}

func TestIVFFlatRecallGrowsWithNProbe(t *testing.T) {
	low, lowWork, _ := buildAndMeasure(t, IVFFlat, BuildParams{NList: 64, Seed: 1}, SearchParams{NProbe: 1})
	high, highWork, _ := buildAndMeasure(t, IVFFlat, BuildParams{NList: 64, Seed: 1}, SearchParams{NProbe: 32})
	if high < low {
		t.Fatalf("recall did not grow with nprobe: %v -> %v", low, high)
	}
	if high < 0.95 {
		t.Fatalf("IVF_FLAT nprobe=32/64 recall = %v, want >= 0.95", high)
	}
	if highWork.DistComps <= lowWork.DistComps {
		t.Fatalf("work did not grow with nprobe: %d -> %d", lowWork.DistComps, highWork.DistComps)
	}
}

func TestIVFFlatFullProbeIsExact(t *testing.T) {
	recall, _, _ := buildAndMeasure(t, IVFFlat, BuildParams{NList: 32, Seed: 2}, SearchParams{NProbe: 32})
	if recall != 1.0 {
		t.Fatalf("IVF_FLAT with nprobe=nlist recall = %v, want 1.0 (scans everything)", recall)
	}
}

func TestIVFSQ8Tradeoff(t *testing.T) {
	recall, work, idx := buildAndMeasure(t, IVFSQ8, BuildParams{NList: 64, Seed: 3}, SearchParams{NProbe: 16})
	if recall < 0.8 {
		t.Fatalf("IVF_SQ8 recall = %v, want >= 0.8", recall)
	}
	if work.CodeComps == 0 {
		t.Fatal("IVF_SQ8 reported no code-domain work")
	}
	flatIdx, _ := New(Flat, linalg.L2, 32, BuildParams{})
	vecs, ids, _, _ := testData(t, 2000, 1, 32, 1, 42)
	if err := flatIdx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
		t.Fatal(err)
	}
	if idx.MemoryBytes() >= flatIdx.MemoryBytes() {
		t.Fatalf("SQ8 memory %d not smaller than raw %d", idx.MemoryBytes(), flatIdx.MemoryBytes())
	}
}

func TestIVFPQRecallGrowsWithNBits(t *testing.T) {
	low, _, lowIdx := buildAndMeasure(t, IVFPQ, BuildParams{NList: 32, M: 8, NBits: 4, Seed: 4}, SearchParams{NProbe: 16})
	high, _, highIdx := buildAndMeasure(t, IVFPQ, BuildParams{NList: 32, M: 8, NBits: 8, Seed: 4}, SearchParams{NProbe: 16})
	if high < low-0.05 {
		t.Fatalf("PQ recall did not grow with nbits: %v (4 bits) vs %v (8 bits)", low, high)
	}
	if lowIdx.MemoryBytes() > highIdx.MemoryBytes() {
		t.Fatalf("PQ memory shrank with more bits: %d vs %d", lowIdx.MemoryBytes(), highIdx.MemoryBytes())
	}
}

func TestIVFPQLookupAccounting(t *testing.T) {
	_, work, _ := buildAndMeasure(t, IVFPQ, BuildParams{NList: 32, M: 8, NBits: 6, Seed: 5}, SearchParams{NProbe: 8})
	if work.Lookups == 0 {
		t.Fatal("IVF_PQ reported no ADC lookups")
	}
}

func TestIVFPQRoundsMToDivisor(t *testing.T) {
	// dim=32, M=7 is not a divisor; constructor must round down to 4.
	idx, err := New(IVFPQ, linalg.L2, 32, BuildParams{NList: 8, M: 7, NBits: 6})
	if err != nil {
		t.Fatal(err)
	}
	pq := idx.(*ivfPQ)
	if 32%pq.m != 0 {
		t.Fatalf("m=%d does not divide 32", pq.m)
	}
}

func TestHNSWRecallGrowsWithEf(t *testing.T) {
	low, lowWork, _ := buildAndMeasure(t, HNSW, BuildParams{HNSWM: 16, EfConstruction: 100, Seed: 6}, SearchParams{Ef: 10})
	high, highWork, _ := buildAndMeasure(t, HNSW, BuildParams{HNSWM: 16, EfConstruction: 100, Seed: 6}, SearchParams{Ef: 200})
	if high < low {
		t.Fatalf("HNSW recall fell with ef: %v -> %v", low, high)
	}
	if high < 0.9 {
		t.Fatalf("HNSW ef=200 recall = %v, want >= 0.9", high)
	}
	if highWork.DistComps <= lowWork.DistComps {
		t.Fatalf("HNSW work did not grow with ef: %d -> %d", lowWork.DistComps, highWork.DistComps)
	}
}

func TestHNSWBeatsExhaustiveWork(t *testing.T) {
	_, work, _ := buildAndMeasure(t, HNSW, BuildParams{HNSWM: 16, EfConstruction: 100, Seed: 7}, SearchParams{Ef: 50})
	exhaustive := int64(2000 * 30)
	if work.DistComps >= exhaustive {
		t.Fatalf("HNSW did %d distcomps, exhaustive is %d — no speedup", work.DistComps, exhaustive)
	}
}

func TestSCANNReorderImprovesRecall(t *testing.T) {
	low, _, _ := buildAndMeasure(t, SCANN, BuildParams{NList: 64, Seed: 8}, SearchParams{NProbe: 16, ReorderK: 10})
	high, _, _ := buildAndMeasure(t, SCANN, BuildParams{NList: 64, Seed: 8}, SearchParams{NProbe: 16, ReorderK: 200})
	if high < low-0.02 {
		t.Fatalf("SCANN recall fell with reorder_k: %v -> %v", low, high)
	}
	if high < 0.85 {
		t.Fatalf("SCANN reorder=200 recall = %v, want >= 0.85", high)
	}
}

func TestSCANNMixesCodeAndExactWork(t *testing.T) {
	_, work, _ := buildAndMeasure(t, SCANN, BuildParams{NList: 64, Seed: 9}, SearchParams{NProbe: 8, ReorderK: 50})
	if work.CodeComps == 0 || work.DistComps == 0 {
		t.Fatalf("SCANN work = %+v, want both code and exact components", work)
	}
}

func TestAutoIndexIgnoresSearchParams(t *testing.T) {
	a, _, _ := buildAndMeasure(t, AutoIndex, BuildParams{Seed: 10}, SearchParams{})
	b, _, _ := buildAndMeasure(t, AutoIndex, BuildParams{Seed: 10}, SearchParams{Ef: 999, NProbe: 999})
	if a != b {
		t.Fatalf("AUTOINDEX behaviour depends on search params: %v vs %v", a, b)
	}
	if a < 0.85 {
		t.Fatalf("AUTOINDEX recall = %v, want >= 0.85", a)
	}
}

func TestAllTypesReturnSortedResults(t *testing.T) {
	vecs, ids, queries, _ := testData(t, 500, 5, 16, 10, 11)
	for _, typ := range AllTypes() {
		idx, err := New(typ, linalg.L2, 16, BuildParams{NList: 16, M: 4, NBits: 6, HNSWM: 8, EfConstruction: 50, Seed: 11})
		if err != nil {
			t.Fatalf("New(%v): %v", typ, err)
		}
		if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
			t.Fatalf("Build(%v): %v", typ, err)
		}
		for _, q := range queries {
			res := idx.Search(q, 10, SearchParams{NProbe: 8, Ef: 32, ReorderK: 20}, nil)
			for i := 1; i < len(res); i++ {
				if res[i].Dist < res[i-1].Dist {
					t.Fatalf("%v results not sorted: %v after %v", typ, res[i].Dist, res[i-1].Dist)
				}
			}
			seen := map[int64]bool{}
			for _, r := range res {
				if seen[r.ID] {
					t.Fatalf("%v returned duplicate id %d", typ, r.ID)
				}
				seen[r.ID] = true
			}
		}
	}
}

func TestAllTypesBuildTwiceFails(t *testing.T) {
	vecs, ids, _, _ := testData(t, 100, 1, 8, 1, 12)
	for _, typ := range AllTypes() {
		idx, err := New(typ, linalg.L2, 8, BuildParams{NList: 4, M: 2, NBits: 4, HNSWM: 4, EfConstruction: 16, Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
			t.Fatalf("first Build(%v): %v", typ, err)
		}
		if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err == nil {
			t.Fatalf("second Build(%v) did not fail", typ)
		}
	}
}

func TestAllTypesMismatchedIDs(t *testing.T) {
	vecs, _, _, _ := testData(t, 50, 1, 8, 1, 13)
	for _, typ := range AllTypes() {
		idx, err := New(typ, linalg.L2, 8, BuildParams{NList: 4, M: 2, NBits: 4, HNSWM: 4, EfConstruction: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.Build(linalg.MatrixFromRows(vecs), []int64{1, 2}); err == nil {
			t.Fatalf("Build(%v) accepted mismatched ids", typ)
		}
	}
}

func TestAllTypesMemoryPositive(t *testing.T) {
	vecs, ids, _, _ := testData(t, 300, 1, 16, 1, 14)
	for _, typ := range AllTypes() {
		idx, err := New(typ, linalg.L2, 16, BuildParams{NList: 8, M: 4, NBits: 4, HNSWM: 8, EfConstruction: 32, Seed: 14})
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
			t.Fatal(err)
		}
		if idx.MemoryBytes() <= 0 {
			t.Fatalf("%v MemoryBytes = %d", typ, idx.MemoryBytes())
		}
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	for _, typ := range AllTypes() {
		got, err := ParseType(typ.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != typ {
			t.Fatalf("round trip %v -> %v", typ, got)
		}
	}
	if _, err := ParseType("NOPE"); err == nil {
		t.Fatal("ParseType accepted junk")
	}
}

func TestNewRejectsBadDim(t *testing.T) {
	if _, err := New(Flat, linalg.L2, 0, BuildParams{}); err == nil {
		t.Fatal("New accepted dim=0")
	}
}

func TestStatsAdd(t *testing.T) {
	var s Stats
	s.Add(Stats{DistComps: 1, CodeComps: 2, Lookups: 3})
	s.Add(Stats{DistComps: 10, CodeComps: 20, Lookups: 30})
	if s != (Stats{DistComps: 11, CodeComps: 22, Lookups: 33}) {
		t.Fatalf("Stats.Add = %+v", s)
	}
}

func TestScanStore(t *testing.T) {
	vecs, ids, queries, truth := testData(t, 200, 5, 8, 5, 15)
	var st Stats
	for qi, q := range queries {
		res := ScanStore(linalg.L2, q, linalg.MatrixFromRows(vecs), ids, 5, &st)
		if r := recallOf(res, truth[qi]); r != 1.0 {
			t.Fatalf("ScanStore recall = %v, want 1.0", r)
		}
	}
	if st.DistComps != 200*5 {
		t.Fatalf("ScanStore work = %d, want %d", st.DistComps, 200*5)
	}
}

func TestInnerProductMetric(t *testing.T) {
	vecs, ids, _, _ := testData(t, 300, 1, 8, 1, 16)
	q := vecs[7]
	for _, typ := range []Type{Flat, IVFFlat, IVFSQ8, HNSW, SCANN} {
		idx, err := New(typ, linalg.InnerProduct, 8, BuildParams{NList: 8, HNSWM: 8, EfConstruction: 64, Seed: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
			t.Fatal(err)
		}
		res := idx.Search(q, 3, SearchParams{NProbe: 8, Ef: 64, ReorderK: 10}, nil)
		if len(res) == 0 {
			t.Fatalf("%v IP search returned nothing", typ)
		}
		found := false
		for _, r := range res {
			if r.ID == 7 {
				found = true
			}
		}
		if !found {
			t.Fatalf("%v IP search for a stored vector did not return it: %+v", typ, res)
		}
	}
}

func BenchmarkHNSWSearch(b *testing.B) {
	b.ReportAllocs()
	vecs, ids, queries, _ := testData(b, 5000, 10, 64, 10, 17)
	idx, err := New(HNSW, linalg.L2, 64, BuildParams{HNSWM: 16, EfConstruction: 128, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(queries[i%len(queries)], 10, SearchParams{Ef: 64}, nil)
	}
}

func BenchmarkIVFFlatSearch(b *testing.B) {
	b.ReportAllocs()
	vecs, ids, queries, _ := testData(b, 5000, 10, 64, 10, 18)
	idx, err := New(IVFFlat, linalg.L2, 64, BuildParams{NList: 64, Seed: 18})
	if err != nil {
		b.Fatal(err)
	}
	if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(queries[i%len(queries)], 10, SearchParams{NProbe: 8}, nil)
	}
}
