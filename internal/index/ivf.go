package index

import (
	"fmt"
	"sort"

	"vdtuner/internal/kmeans"
	"vdtuner/internal/linalg"
)

// ivfCoarse is the shared coarse quantizer of the IVF family: a k-means
// partition of the data into nlist cells plus the per-cell posting lists.
type ivfCoarse struct {
	metric    linalg.Metric
	dim       int
	nlist     int
	seed      int64
	workers   int
	centroids [][]float32
	lists     [][]int32 // local offsets into the owning index's storage
	built     bool
	buildWork Stats
}

func newIVFCoarse(m linalg.Metric, dim, nlist int, seed int64, workers int) (*ivfCoarse, error) {
	if nlist < 1 {
		return nil, fmt.Errorf("ivf: nlist must be >= 1, got %d", nlist)
	}
	return &ivfCoarse{metric: m, dim: dim, nlist: nlist, seed: seed, workers: workers}, nil
}

// train clusters the vectors and fills the posting lists.
func (c *ivfCoarse) train(vecs [][]float32) error {
	if c.built {
		return fmt.Errorf("ivf: Build called twice")
	}
	if len(vecs) == 0 {
		return fmt.Errorf("ivf: no vectors")
	}
	for i, v := range vecs {
		if len(v) != c.dim {
			return fmt.Errorf("ivf: vector %d has dim %d, want %d", i, len(v), c.dim)
		}
	}
	sample := 20 * c.nlist
	if sample < 2000 {
		sample = 2000
	}
	res, err := kmeans.Run(vecs, kmeans.Config{
		K: c.nlist, Seed: c.seed, MaxIters: 12, SampleLimit: sample,
		Workers: c.workers,
	})
	if err != nil {
		return fmt.Errorf("ivf: training: %w", err)
	}
	c.centroids = res.Centroids
	c.lists = make([][]int32, len(c.centroids))
	for i, a := range res.Assign {
		c.lists[a] = append(c.lists[a], int32(i))
	}
	// Approximate training cost: iters * points * centroids comparisons
	// on the (possibly sampled) training set plus the final full assign.
	trainN := len(vecs)
	if trainN > sample {
		trainN = sample
	}
	c.buildWork = Stats{DistComps: int64(res.Iters)*int64(trainN)*int64(len(c.centroids)) +
		int64(len(vecs))*int64(len(c.centroids))}
	c.built = true
	return nil
}

// probeOrder returns cell indices sorted by centroid distance to q and
// charges the coarse comparison work to st.
func (c *ivfCoarse) probeOrder(q []float32, st *Stats) []int {
	type cd struct {
		cell int
		d    float32
	}
	ds := make([]cd, len(c.centroids))
	for i, ct := range c.centroids {
		ds[i] = cd{i, linalg.Distance(c.metric, q, ct)}
	}
	accumulate(st, Stats{DistComps: int64(len(c.centroids))})
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	order := make([]int, len(ds))
	for i, x := range ds {
		order[i] = x.cell
	}
	return order
}

func (c *ivfCoarse) clampProbe(nprobe int) int {
	if nprobe < 1 {
		nprobe = 1
	}
	if nprobe > len(c.centroids) {
		nprobe = len(c.centroids)
	}
	return nprobe
}

func (c *ivfCoarse) centroidBytes() int64 {
	return int64(len(c.centroids)) * int64(c.dim) * float32Bytes
}

// ivfFlat stores raw vectors in IVF posting lists and scans the probed
// cells exactly, matching Milvus' IVF_FLAT.
type ivfFlat struct {
	coarse *ivfCoarse
	vecs   [][]float32
	ids    []int64
}

func newIVFFlat(m linalg.Metric, dim int, p BuildParams) (*ivfFlat, error) {
	nlist := p.NList
	if nlist == 0 {
		nlist = 128
	}
	c, err := newIVFCoarse(m, dim, nlist, p.Seed, p.Workers)
	if err != nil {
		return nil, err
	}
	return &ivfFlat{coarse: c}, nil
}

func (x *ivfFlat) Type() Type { return IVFFlat }

func (x *ivfFlat) Build(vecs [][]float32, ids []int64) error {
	if len(vecs) != len(ids) {
		return fmt.Errorf("ivf_flat: %d vectors but %d ids", len(vecs), len(ids))
	}
	if err := x.coarse.train(vecs); err != nil {
		return err
	}
	x.vecs = vecs
	x.ids = ids
	return nil
}

func (x *ivfFlat) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	if len(x.vecs) == 0 || k < 1 {
		return nil
	}
	order := x.coarse.probeOrder(q, st)
	nprobe := x.coarse.clampProbe(p.NProbe)
	top := linalg.NewTopK(k)
	var scanned int64
	for _, cell := range order[:nprobe] {
		for _, off := range x.coarse.lists[cell] {
			top.Push(x.ids[off], linalg.Distance(x.coarse.metric, q, x.vecs[off]))
		}
		scanned += int64(len(x.coarse.lists[cell]))
	}
	accumulate(st, Stats{DistComps: scanned})
	return top.Results()
}

func (x *ivfFlat) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(x, queries, k, p, st)
}

func (x *ivfFlat) MemoryBytes() int64 {
	return int64(len(x.vecs))*int64(x.coarse.dim)*float32Bytes +
		x.coarse.centroidBytes() + int64(len(x.vecs))*4 // posting offsets
}

func (x *ivfFlat) BuildStats() Stats { return x.coarse.buildWork }
