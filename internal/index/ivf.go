package index

import (
	"fmt"

	"vdtuner/internal/kmeans"
	"vdtuner/internal/linalg"
)

// ivfCoarse is the shared coarse quantizer of the IVF family: a k-means
// partition of the data into nlist cells. Owners store their payloads
// (vectors, codes, ids) grouped cell-major — cell c's rows occupy the
// contiguous grouped range [cellStart[c], cellStart[c+1]) — so a probe
// scans one contiguous block per cell instead of chasing a posting list of
// scattered offsets.
type ivfCoarse struct {
	metric  linalg.Metric
	dim     int
	nlist   int
	seed    int64
	workers int
	// cents is the nlist x dim centroid arena.
	cents *linalg.Matrix
	// cellStart[c] is the first grouped row of cell c; len is ncells+1.
	cellStart []int32
	built     bool
	buildWork Stats
}

func newIVFCoarse(m linalg.Metric, dim, nlist int, seed int64, workers int) (*ivfCoarse, error) {
	if nlist < 1 {
		return nil, fmt.Errorf("ivf: nlist must be >= 1, got %d", nlist)
	}
	return &ivfCoarse{metric: m, dim: dim, nlist: nlist, seed: seed, workers: workers}, nil
}

// train clusters the vectors and returns the grouping permutation: grouped
// row g holds original row order[g], cells in index order, within-cell rows
// in original row order (the posting-list order of the previous layout, so
// scan and therefore result order is unchanged).
func (c *ivfCoarse) train(store *linalg.Matrix) ([]int32, error) {
	if c.built {
		return nil, fmt.Errorf("ivf: Build called twice")
	}
	if store == nil || store.Rows() == 0 {
		return nil, fmt.Errorf("ivf: no vectors")
	}
	if store.Dim() != c.dim {
		return nil, fmt.Errorf("ivf: store has dim %d, want %d", store.Dim(), c.dim)
	}
	if !store.Packed() {
		return nil, fmt.Errorf("ivf: store must be packed (stride == dim)")
	}
	n := store.Rows()
	sample := 20 * c.nlist
	if sample < 2000 {
		sample = 2000
	}
	res, err := kmeans.Run(store, kmeans.Config{
		K: c.nlist, Seed: c.seed, MaxIters: 12, SampleLimit: sample,
		Workers: c.workers,
	})
	if err != nil {
		return nil, fmt.Errorf("ivf: training: %w", err)
	}
	c.cents = linalg.MatrixFromRows(res.Centroids)
	ncells := len(res.Centroids)
	counts := make([]int32, ncells)
	for _, a := range res.Assign {
		counts[a]++
	}
	c.cellStart = make([]int32, ncells+1)
	for i := 0; i < ncells; i++ {
		c.cellStart[i+1] = c.cellStart[i] + counts[i]
	}
	order := make([]int32, n)
	fill := make([]int32, ncells)
	copy(fill, c.cellStart[:ncells])
	for i, a := range res.Assign {
		order[fill[a]] = int32(i)
		fill[a]++
	}
	// Approximate training cost: iters * points * centroids comparisons
	// on the (possibly sampled) training set plus the final full assign.
	trainN := n
	if trainN > sample {
		trainN = sample
	}
	c.buildWork = Stats{DistComps: int64(res.Iters)*int64(trainN)*int64(ncells) +
		int64(n)*int64(ncells)}
	c.built = true
	return order, nil
}

// cellRange returns the grouped row range of cell c.
func (c *ivfCoarse) cellRange(cell int32) (lo, hi int32) {
	return c.cellStart[cell], c.cellStart[cell+1]
}

// probe returns the nprobe cells nearest to q in ascending centroid
// distance (ties broken by cell id, keeping the order deterministic) and
// charges the coarse comparison work to st. The returned slice is owned by
// s and valid until its next probe. The selection is partial: a bounded
// max-heap over the centroid distances, O(nlist log nprobe), instead of a
// full sort — the common nprobe ≪ nlist case skips almost all of the sort
// work.
func (c *ivfCoarse) probe(q []float32, nprobe int, st *Stats, s *searchScratch) []int32 {
	ncells := c.cents.Rows()
	s.dists = f32Buf(s.dists, ncells)
	linalg.DistanceBlock(c.metric, q, c.cents.Data(), s.dists)
	accumulate(st, Stats{DistComps: int64(ncells)})
	return c.selectCells(s.dists, nprobe, s)
}

// probeMulti is the batched coarse assignment: every centroid is scored
// against all queries in one multi-query blocked pass (the centroid arena
// is itself a small scan), then each query's nprobe nearest cells are
// selected exactly as probe would. The returned flat table holds query
// qi's probe order at [qi*nprobe : (qi+1)*nprobe]; it aliases s.mprobe and
// is valid until the scratch's next multi probe. nprobe must already be
// clamped to the cell count, so every query selects exactly nprobe cells.
func (c *ivfCoarse) probeMulti(queries [][]float32, nprobe int, st *Stats, s *searchScratch) []int32 {
	ncells := c.cents.Rows()
	qn := len(queries)
	s.mdists = f32Buf(s.mdists, qn*ncells)
	s.mouts = f32sBuf(s.mouts, qn)
	for qi := 0; qi < qn; qi++ {
		s.mouts[qi] = s.mdists[qi*ncells : (qi+1)*ncells]
	}
	linalg.DistanceMultiScatter(c.metric, queries, c.cents.Data(), s.mouts)
	accumulate(st, Stats{DistComps: int64(qn) * int64(ncells)})
	s.mprobe = i32Buf(s.mprobe, qn*nprobe)
	for qi := 0; qi < qn; qi++ {
		sel := c.selectCells(s.mouts[qi], nprobe, s)
		copy(s.mprobe[qi*nprobe:(qi+1)*nprobe], sel)
	}
	return s.mprobe
}

// selectCells runs the partial selection over precomputed centroid
// distances: a bounded max-heap of the best nprobe (distance, cell)
// pairs, worst at the root; ties order by larger cell id = worse, so the
// retained set and the final order are id-deterministic.
func (c *ivfCoarse) selectCells(dists []float32, nprobe int, s *searchScratch) []int32 {
	heap := i32Buf(s.probe, nprobe)[:0]
	heapD := f32Buf(s.probeD, nprobe)[:0]
	worse := func(i, j int) bool {
		return heapD[i] > heapD[j] || (heapD[i] == heapD[j] && heap[i] > heap[j])
	}
	swap := func(i, j int) {
		heap[i], heap[j] = heap[j], heap[i]
		heapD[i], heapD[j] = heapD[j], heapD[i]
	}
	siftDown := func(i, n int) {
		for {
			l, r := 2*i+1, 2*i+2
			w := i
			if l < n && worse(l, w) {
				w = l
			}
			if r < n && worse(r, w) {
				w = r
			}
			if w == i {
				return
			}
			swap(i, w)
			i = w
		}
	}
	for cell := 0; cell < len(dists); cell++ {
		d := dists[cell]
		if len(heap) < nprobe {
			heap = append(heap, int32(cell))
			heapD = append(heapD, d)
			// Sift up.
			for i := len(heap) - 1; i > 0; {
				parent := (i - 1) / 2
				if !worse(i, parent) {
					break
				}
				swap(i, parent)
				i = parent
			}
			continue
		}
		// Replace the root when strictly better: smaller distance, or
		// equal distance and smaller id.
		if d > heapD[0] || (d == heapD[0] && int32(cell) > heap[0]) {
			continue
		}
		heap[0], heapD[0] = int32(cell), d
		siftDown(0, nprobe)
	}
	// Heap-sort ascending: pop the worst to the shrinking tail.
	for n := len(heap) - 1; n > 0; n-- {
		swap(0, n)
		siftDown(0, n)
	}
	s.probe, s.probeD = heap[:cap(heap)], heapD[:cap(heapD)]
	return heap
}

// invertProbes inverts a flat Q×nprobe probe table cell→probers with a
// counting sort: s.mcnt[c]..s.mcnt[c+1] bound cell c's entries in s.ment
// (global probe-slot ids, gathered in ascending slot = ascending query
// order, deterministically), and s.mregion assigns each (query,
// probe-slot) its contiguous region of s.mbuf, sized by its cell. The
// total region length is returned and s.mbuf is sized to it. This is the
// shared phase-2 skeleton of every IVF-family SearchMultiInto: after it,
// the owner scans each probed cell once for all of its probers into the
// regions, then replays per query.
func (c *ivfCoarse) invertProbes(probes []int32, s *searchScratch) int {
	ncells := c.cents.Rows()
	slots := len(probes)
	s.mcnt = i32Buf(s.mcnt, ncells+1)
	for i := range s.mcnt {
		s.mcnt[i] = 0
	}
	for _, cell := range probes {
		s.mcnt[cell+1]++
	}
	for cell := 0; cell < ncells; cell++ {
		s.mcnt[cell+1] += s.mcnt[cell]
	}
	s.mfill = i32Buf(s.mfill, ncells)
	copy(s.mfill, s.mcnt[:ncells])
	s.ment = i32Buf(s.ment, slots)
	for slot, cell := range probes {
		e := s.mfill[cell]
		s.mfill[cell] = e + 1
		s.ment[e] = int32(slot)
	}
	s.mregion = i32Buf(s.mregion, slots)
	total := int32(0)
	for cell := 0; cell < ncells; cell++ {
		lo, hi := c.cellRange(int32(cell))
		clen := hi - lo
		for e := s.mcnt[cell]; e < s.mcnt[cell+1]; e++ {
			s.mregion[s.ment[e]] = total
			total += clen
		}
	}
	s.mbuf = f32Buf(s.mbuf, int(total))
	return int(total)
}

// replayRegions replays each query's materialized probe-slot regions in
// probe order: push (ids[row], dist) into a private top-k, then offer its
// sorted results to the caller's collector — exactly the candidate
// sequence the single-query scan produces, so results and ties are
// bit-identical per query.
func (c *ivfCoarse) replayRegions(probes []int32, nprobe, k int, ids []int64, s *searchScratch, tops []*linalg.TopK) {
	for qi := range tops {
		top := s.top.Reset(k)
		for pi := 0; pi < nprobe; pi++ {
			slot := qi*nprobe + pi
			lo, hi := c.cellRange(probes[slot])
			if lo == hi {
				continue
			}
			o := s.mregion[slot]
			top.PushBlock(ids[lo:hi], s.mbuf[o:o+hi-lo])
		}
		s.res = top.AppendResults(s.res[:0])
		dst := tops[qi]
		for _, nb := range s.res {
			dst.Push(nb.ID, nb.Dist)
		}
	}
}

func (c *ivfCoarse) clampProbe(nprobe int) int {
	if nprobe < 1 {
		nprobe = 1
	}
	if n := c.cents.Rows(); nprobe > n {
		nprobe = n
	}
	return nprobe
}

func (c *ivfCoarse) centroidBytes() int64 {
	if c.cents == nil {
		return 0
	}
	return c.cents.Bytes()
}

// gatherRows copies store's rows into a fresh arena in grouped order.
func gatherRows(store *linalg.Matrix, order []int32) *linalg.Matrix {
	out := linalg.NewMatrix(store.Dim(), len(order))
	for _, o := range order {
		out.AppendRow(store.Row(int(o)))
	}
	return out
}

// gatherIDs copies ids into grouped order.
func gatherIDs(ids []int64, order []int32) []int64 {
	out := make([]int64, len(order))
	for g, o := range order {
		out[g] = ids[o]
	}
	return out
}

// ivfFlat stores raw vectors grouped cell-major and scans the probed
// cells exactly with the blocked kernels, matching Milvus' IVF_FLAT.
type ivfFlat struct {
	coarse  *ivfCoarse
	store   *linalg.Matrix // grouped cell-major
	ids     []int64        // grouped
	scratch scratchPool
}

func newIVFFlat(m linalg.Metric, dim int, p BuildParams) (*ivfFlat, error) {
	nlist := p.NList
	if nlist == 0 {
		nlist = 128
	}
	c, err := newIVFCoarse(m, dim, nlist, p.Seed, p.Workers)
	if err != nil {
		return nil, err
	}
	return &ivfFlat{coarse: c}, nil
}

func (x *ivfFlat) Type() Type { return IVFFlat }

func (x *ivfFlat) pool() *scratchPool { return &x.scratch }

func (x *ivfFlat) Build(store *linalg.Matrix, ids []int64) error {
	if store.Rows() != len(ids) {
		return fmt.Errorf("ivf_flat: %d vectors but %d ids", store.Rows(), len(ids))
	}
	order, err := x.coarse.train(store)
	if err != nil {
		return err
	}
	x.store = gatherRows(store, order)
	x.ids = gatherIDs(ids, order)
	return nil
}

func (x *ivfFlat) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	return searchPooled(x, q, k, p, st)
}

func (x *ivfFlat) searchWith(q []float32, k int, p SearchParams, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	if x.store == nil || x.store.Rows() == 0 || k < 1 {
		return dst
	}
	cells := x.coarse.probe(q, x.coarse.clampProbe(p.NProbe), st, s)
	data := x.store.Data()
	dim := x.store.Dim()
	top := s.top.Reset(k)
	var scanned int64
	for _, cell := range cells {
		lo, hi := x.coarse.cellRange(cell)
		if lo == hi {
			continue
		}
		s.dists = f32Buf(s.dists, int(hi-lo))
		linalg.DistanceBlock(x.coarse.metric, q, data[int(lo)*dim:int(hi)*dim], s.dists)
		top.PushBlock(x.ids[lo:hi], s.dists)
		scanned += int64(hi - lo)
	}
	accumulate(st, Stats{DistComps: scanned})
	if dst == nil {
		dst = make([]linalg.Neighbor, 0, top.Len())
	}
	return top.AppendResults(dst)
}

func (x *ivfFlat) SearchInto(q []float32, k int, p SearchParams, st *Stats, top *linalg.TopK) {
	searchIntoPooled(x, q, k, p, st, top)
}

// SearchMultiInto shares the posting-list streaming across the query
// tile. Three phases: (1) batched coarse assignment (probeMulti); (2) the
// probe table is inverted cell→probers with a counting sort, and each
// probed cell's contiguous row range is scanned once by the multi-query
// kernel for all of its probers, materializing every (query, probe-slot)
// distance region in scratch; (3) per query, the regions are replayed in
// probe order — pushing into a private top-k and offering its sorted
// results to the caller's collector, exactly the sequence SearchInto
// produces — so results, ties, and Stats are bit-identical per query
// while each cell's rows are loaded from memory once per tile instead of
// once per probing query.
func (x *ivfFlat) SearchMultiInto(queries [][]float32, k int, p SearchParams, st *Stats, tops []*linalg.TopK) {
	qn := len(queries)
	if x.store == nil || x.store.Rows() == 0 || k < 1 || qn == 0 {
		return
	}
	s := x.scratch.get()
	nprobe := x.coarse.clampProbe(p.NProbe)
	probes := x.coarse.probeMulti(queries, nprobe, st, s)
	x.coarse.invertProbes(probes, s)

	// Scan each probed cell once for all its probers.
	data := x.store.Data()
	dim := x.store.Dim()
	ncells := x.coarse.cents.Rows()
	var scanned int64
	for c := 0; c < ncells; c++ {
		elo, ehi := int(s.mcnt[c]), int(s.mcnt[c+1])
		if elo == ehi {
			continue
		}
		lo, hi := x.coarse.cellRange(int32(c))
		if lo == hi {
			continue
		}
		nq := ehi - elo
		s.mqrows = f32sBuf(s.mqrows, nq)
		s.mouts = f32sBuf(s.mouts, nq)
		for j := 0; j < nq; j++ {
			slot := s.ment[elo+j]
			s.mqrows[j] = queries[slot/int32(nprobe)]
			o := s.mregion[slot]
			s.mouts[j] = s.mbuf[o : o+hi-lo]
		}
		linalg.DistanceMultiScatter(x.coarse.metric, s.mqrows, data[int(lo)*dim:int(hi)*dim], s.mouts)
		scanned += int64(nq) * int64(hi-lo)
	}

	x.coarse.replayRegions(probes, nprobe, k, x.ids, s, tops)
	accumulate(st, Stats{DistComps: scanned})
	for j := range s.mqrows {
		s.mqrows[j] = nil // don't pin caller query slices in the pool
	}
	x.scratch.put(s)
}

func (x *ivfFlat) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(x, queries, k, p, st)
}

func (x *ivfFlat) MemoryBytes() int64 {
	if x.store == nil {
		return 0
	}
	return x.store.Bytes() +
		x.coarse.centroidBytes() + int64(x.store.Rows())*4 // grouped row ids
}

func (x *ivfFlat) BuildStats() Stats { return x.coarse.buildWork }

// StoreAdopted: the IVF family copies its payloads into cell-major
// storage; the caller's arena is not retained.
func (x *ivfFlat) StoreAdopted() bool { return false }
