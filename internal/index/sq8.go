package index

import (
	"fmt"

	"vdtuner/internal/linalg"
)

// sq8Codec quantizes vectors to one byte per dimension with a per-dimension
// affine transform (Milvus' SQ8).
type sq8Codec struct {
	dim   int
	min   []float32
	scale []float32 // (max-min)/255 per dim; 0 for constant dims
}

func trainSQ8(vecs [][]float32, dim int) *sq8Codec {
	c := &sq8Codec{
		dim:   dim,
		min:   make([]float32, dim),
		scale: make([]float32, dim),
	}
	max := make([]float32, dim)
	for j := 0; j < dim; j++ {
		c.min[j] = vecs[0][j]
		max[j] = vecs[0][j]
	}
	for _, v := range vecs {
		for j, x := range v {
			if x < c.min[j] {
				c.min[j] = x
			}
			if x > max[j] {
				max[j] = x
			}
		}
	}
	for j := 0; j < dim; j++ {
		c.scale[j] = (max[j] - c.min[j]) / 255
	}
	return c
}

func (c *sq8Codec) encode(v []float32, dst []byte) {
	for j, x := range v {
		if c.scale[j] == 0 {
			dst[j] = 0
			continue
		}
		q := (x - c.min[j]) / c.scale[j]
		if q < 0 {
			q = 0
		}
		if q > 255 {
			q = 255
		}
		dst[j] = byte(q + 0.5)
	}
}

// dist computes the approximate distance between query q and code under the
// metric, reconstructing each dimension on the fly.
func (c *sq8Codec) dist(m linalg.Metric, q []float32, code []byte) float32 {
	switch m {
	case linalg.InnerProduct:
		var dot float32
		for j, b := range code {
			dot += q[j] * (c.min[j] + float32(b)*c.scale[j])
		}
		return -dot
	default: // L2 and Angular-normalized-as-L2
		var s float32
		for j, b := range code {
			d := q[j] - (c.min[j] + float32(b)*c.scale[j])
			s += d * d
		}
		return s
	}
}

// ivfSQ8 is IVF with SQ8-compressed posting lists: the probed cells are
// scanned in the quantized domain (cheaper per candidate, small recall
// loss), and raw vectors are not retained, matching Milvus' IVF_SQ8.
type ivfSQ8 struct {
	coarse *ivfCoarse
	codec  *sq8Codec
	codes  [][]byte
	ids    []int64
}

func newIVFSQ8(m linalg.Metric, dim int, p BuildParams) (*ivfSQ8, error) {
	nlist := p.NList
	if nlist == 0 {
		nlist = 128
	}
	c, err := newIVFCoarse(m, dim, nlist, p.Seed)
	if err != nil {
		return nil, err
	}
	return &ivfSQ8{coarse: c}, nil
}

func (x *ivfSQ8) Type() Type { return IVFSQ8 }

func (x *ivfSQ8) Build(vecs [][]float32, ids []int64) error {
	if len(vecs) != len(ids) {
		return fmt.Errorf("ivf_sq8: %d vectors but %d ids", len(vecs), len(ids))
	}
	if err := x.coarse.train(vecs); err != nil {
		return err
	}
	x.codec = trainSQ8(vecs, x.coarse.dim)
	x.codes = make([][]byte, len(vecs))
	buf := make([]byte, len(vecs)*x.coarse.dim)
	for i, v := range vecs {
		x.codes[i], buf = buf[:x.coarse.dim], buf[x.coarse.dim:]
		x.codec.encode(v, x.codes[i])
	}
	x.ids = ids
	// Encoding charges one code-domain pass over the data.
	x.coarse.buildWork.Add(Stats{CodeComps: int64(len(vecs))})
	return nil
}

func (x *ivfSQ8) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	if len(x.codes) == 0 || k < 1 {
		return nil
	}
	order := x.coarse.probeOrder(q, st)
	nprobe := x.coarse.clampProbe(p.NProbe)
	top := linalg.NewTopK(k)
	var scanned int64
	for _, cell := range order[:nprobe] {
		for _, off := range x.coarse.lists[cell] {
			top.Push(x.ids[off], x.codec.dist(x.coarse.metric, q, x.codes[off]))
		}
		scanned += int64(len(x.coarse.lists[cell]))
	}
	accumulate(st, Stats{CodeComps: scanned})
	return top.Results()
}

func (x *ivfSQ8) MemoryBytes() int64 {
	return int64(len(x.codes))*int64(x.coarse.dim) + // 1 byte/dim codes
		x.coarse.centroidBytes() +
		2*int64(x.coarse.dim)*float32Bytes + // codec min/scale
		int64(len(x.codes))*4 // posting offsets
}

func (x *ivfSQ8) BuildStats() Stats { return x.coarse.buildWork }
