package index

import (
	"fmt"

	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
)

// sq8Chunk is the fixed row-chunk size of the parallel SQ8 phases; chunk
// boundaries depend only on the corpus size, keeping training and encoding
// worker-count-invariant.
const sq8Chunk = 512

// sq8Codec quantizes vectors to one byte per dimension with a per-dimension
// affine transform (Milvus' SQ8).
type sq8Codec struct {
	dim   int
	min   []float32
	scale []float32 // (max-min)/255 per dim; 0 for constant dims
}

func trainSQ8(store *linalg.Matrix, dim, workers int) *sq8Codec {
	c := &sq8Codec{
		dim:   dim,
		min:   make([]float32, dim),
		scale: make([]float32, dim),
	}
	// Per-chunk min/max, merged in chunk order (min/max are exact, so the
	// merge order only matters for determinism of NaN handling).
	n := store.Rows()
	nChunks := parallel.NumChunks(n, sq8Chunk)
	mins := make([][]float32, nChunks)
	maxs := make([][]float32, nChunks)
	parallel.ForRanges(workers, n, sq8Chunk, func(ch, lo, hi int) {
		mn := make([]float32, dim)
		mx := make([]float32, dim)
		copy(mn, store.Row(lo))
		copy(mx, store.Row(lo))
		for i := lo + 1; i < hi; i++ {
			for j, x := range store.Row(i) {
				if x < mn[j] {
					mn[j] = x
				}
				if x > mx[j] {
					mx[j] = x
				}
			}
		}
		mins[ch], maxs[ch] = mn, mx
	})
	max := make([]float32, dim)
	copy(c.min, mins[0])
	copy(max, maxs[0])
	for ch := 1; ch < nChunks; ch++ {
		for j := 0; j < dim; j++ {
			if mins[ch][j] < c.min[j] {
				c.min[j] = mins[ch][j]
			}
			if maxs[ch][j] > max[j] {
				max[j] = maxs[ch][j]
			}
		}
	}
	for j := 0; j < dim; j++ {
		c.scale[j] = (max[j] - c.min[j]) / 255
	}
	return c
}

// encodeGrouped encodes every row of store into one flat code arena in
// grouped order: codes[g*dim:(g+1)*dim] encodes store.Row(order[g]). Rows
// fan across the worker pool; each grouped slot is written by exactly one
// chunk, so the pass is race-free and deterministic.
func (c *sq8Codec) encodeGrouped(store *linalg.Matrix, order []int32, workers int) []byte {
	codes := make([]byte, len(order)*c.dim)
	parallel.ForRanges(workers, len(order), sq8Chunk, func(_, lo, hi int) {
		for g := lo; g < hi; g++ {
			c.encode(store.Row(int(order[g])), codes[g*c.dim:(g+1)*c.dim])
		}
	})
	return codes
}

func (c *sq8Codec) encode(v []float32, dst []byte) {
	for j, x := range v {
		if c.scale[j] == 0 {
			dst[j] = 0
			continue
		}
		q := (x - c.min[j]) / c.scale[j]
		if q < 0 {
			q = 0
		}
		if q > 255 {
			q = 255
		}
		dst[j] = byte(q + 0.5)
	}
}

// scanMetric maps the index metric onto the SQ8 kernel family: negative
// dot for InnerProduct, reconstruction L2 for everything else (Angular
// inputs are normalized upstream, so squared L2 ranks identically).
func (c *sq8Codec) scanMetric(m linalg.Metric) linalg.Metric {
	if m == linalg.InnerProduct {
		return linalg.InnerProduct
	}
	return linalg.L2
}

// dist computes the approximate distance between query q and one code row:
// the scalar form of the blocked kernel contract, bit-identical to a
// one-row DistanceSQ8Block call.
func (c *sq8Codec) dist(m linalg.Metric, q []float32, code []byte) float32 {
	return linalg.SQ8Distance(c.scanMetric(m), q, c.min, c.scale, code)
}

func (c *sq8Codec) bytes() int64 {
	return 2 * int64(c.dim) * float32Bytes // min/scale
}

// ivfSQ8 is IVF with SQ8-compressed posting lists: the probed cells are
// scanned in the quantized domain (cheaper per candidate, small recall
// loss), and raw vectors are not retained, matching Milvus' IVF_SQ8.
// Codes live in one flat arena grouped cell-major, so each probe streams
// a contiguous byte range.
type ivfSQ8 struct {
	coarse  *ivfCoarse
	codec   *sq8Codec
	codes   []byte // grouped, store.Rows()*dim bytes
	ids     []int64
	scratch scratchPool
}

func newIVFSQ8(m linalg.Metric, dim int, p BuildParams) (*ivfSQ8, error) {
	nlist := p.NList
	if nlist == 0 {
		nlist = 128
	}
	c, err := newIVFCoarse(m, dim, nlist, p.Seed, p.Workers)
	if err != nil {
		return nil, err
	}
	return &ivfSQ8{coarse: c}, nil
}

func (x *ivfSQ8) Type() Type { return IVFSQ8 }

func (x *ivfSQ8) pool() *scratchPool { return &x.scratch }

func (x *ivfSQ8) Build(store *linalg.Matrix, ids []int64) error {
	if store.Rows() != len(ids) {
		return fmt.Errorf("ivf_sq8: %d vectors but %d ids", store.Rows(), len(ids))
	}
	order, err := x.coarse.train(store)
	if err != nil {
		return err
	}
	x.codec = trainSQ8(store, x.coarse.dim, x.coarse.workers)
	x.codes = x.codec.encodeGrouped(store, order, x.coarse.workers)
	x.ids = gatherIDs(ids, order)
	// Encoding charges one code-domain pass over the data.
	x.coarse.buildWork.Add(Stats{CodeComps: int64(store.Rows())})
	return nil
}

func (x *ivfSQ8) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	return searchPooled(x, q, k, p, st)
}

func (x *ivfSQ8) searchWith(q []float32, k int, p SearchParams, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	if len(x.codes) == 0 || k < 1 {
		return dst
	}
	cells := x.coarse.probe(q, x.coarse.clampProbe(p.NProbe), st, s)
	return x.scanCells(q, cells, k, st, s, dst)
}

// scanArg hoists the per-query affine constant of a blocked SQ8 scan: the
// L2 kernels take the residual q - min (computed once into s.resid), the
// dot kernels the raw query. Returns the kernel metric and the query
// argument to pass.
func (c *sq8Codec) scanArg(m linalg.Metric, q []float32, s *searchScratch) (linalg.Metric, []float32) {
	sm := c.scanMetric(m)
	if sm == linalg.L2 {
		s.resid = f32Buf(s.resid, c.dim)
		linalg.SQ8Residual(q, c.min, s.resid)
		return sm, s.resid
	}
	return sm, q
}

// scanCells scores the given cells' quantized codes against q in probe
// order with the blocked decode kernels — each cell's contiguous byte
// range streams through DistanceSQ8Block — returning the top-k appended
// to dst.
func (x *ivfSQ8) scanCells(q []float32, cells []int32, k int, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	dim := x.coarse.dim
	sm, qa := x.codec.scanArg(x.coarse.metric, q, s)
	top := s.top.Reset(k)
	var scanned int64
	for _, cell := range cells {
		lo, hi := x.coarse.cellRange(cell)
		if lo == hi {
			continue
		}
		s.dists = f32Buf(s.dists, int(hi-lo))
		linalg.DistanceSQ8Block(sm, qa, x.codec.min, x.codec.scale, x.codes[int(lo)*dim:int(hi)*dim], s.dists)
		top.PushBlock(x.ids[lo:hi], s.dists)
		scanned += int64(hi - lo)
	}
	accumulate(st, Stats{CodeComps: scanned})
	if dst == nil {
		dst = make([]linalg.Neighbor, 0, top.Len())
	}
	return top.AppendResults(dst)
}

func (x *ivfSQ8) SearchInto(q []float32, k int, p SearchParams, st *Stats, top *linalg.TopK) {
	searchIntoPooled(x, q, k, p, st, top)
}

// SearchMultiInto shares the byte-domain posting-list streaming across
// the query tile, the same three phases as IVF_FLAT's: batched coarse
// assignment, cell→prober inversion with each probed cell's code range
// decoded once per quad of probers by the multi-query SQ8 kernels
// (residuals hoisted per query up front under L2), and a per-query replay
// that reproduces the single-query candidate sequence exactly.
func (x *ivfSQ8) SearchMultiInto(queries [][]float32, k int, p SearchParams, st *Stats, tops []*linalg.TopK) {
	qn := len(queries)
	if len(x.codes) == 0 || k < 1 || qn == 0 {
		return
	}
	s := x.scratch.get()
	nprobe := x.coarse.clampProbe(p.NProbe)
	probes := x.coarse.probeMulti(queries, nprobe, st, s)
	total := x.coarse.invertProbes(probes, s)

	dim := x.coarse.dim
	sm := x.codec.scanMetric(x.coarse.metric)
	l2 := sm == linalg.L2
	if l2 {
		// Hoist every query's residual into the flat arena once.
		s.mres = f32Buf(s.mres, qn*dim)
		for qi, q := range queries {
			linalg.SQ8Residual(q, x.codec.min, s.mres[qi*dim:(qi+1)*dim])
		}
	}

	ncells := x.coarse.cents.Rows()
	for c := 0; c < ncells; c++ {
		elo, ehi := int(s.mcnt[c]), int(s.mcnt[c+1])
		if elo == ehi {
			continue
		}
		lo, hi := x.coarse.cellRange(int32(c))
		if lo == hi {
			continue
		}
		nq := ehi - elo
		s.mqrows = f32sBuf(s.mqrows, nq)
		s.mouts = f32sBuf(s.mouts, nq)
		for j := 0; j < nq; j++ {
			slot := s.ment[elo+j]
			qi := int(slot) / nprobe
			if l2 {
				s.mqrows[j] = s.mres[qi*dim : (qi+1)*dim]
			} else {
				s.mqrows[j] = queries[qi]
			}
			o := s.mregion[slot]
			s.mouts[j] = s.mbuf[o : o+hi-lo]
		}
		linalg.DistanceSQ8MultiScatter(sm, s.mqrows, x.codec.min, x.codec.scale,
			x.codes[int(lo)*dim:int(hi)*dim], s.mouts)
	}

	x.coarse.replayRegions(probes, nprobe, k, x.ids, s, tops)
	accumulate(st, Stats{CodeComps: int64(total)})
	for j := range s.mqrows {
		s.mqrows[j] = nil // don't pin caller query slices in the pool
	}
	x.scratch.put(s)
}

func (x *ivfSQ8) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(x, queries, k, p, st)
}

func (x *ivfSQ8) MemoryBytes() int64 {
	var codecBytes int64
	if x.codec != nil {
		codecBytes = x.codec.bytes()
	}
	return int64(len(x.codes)) + // 1 byte/dim codes
		x.coarse.centroidBytes() +
		codecBytes +
		int64(len(x.ids))*4 // grouped row ids
}

func (x *ivfSQ8) BuildStats() Stats { return x.coarse.buildWork }

func (x *ivfSQ8) StoreAdopted() bool { return false }
