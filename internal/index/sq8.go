package index

import (
	"fmt"

	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
)

// sq8Chunk is the fixed row-chunk size of the parallel SQ8 phases; chunk
// boundaries depend only on the corpus size, keeping training and encoding
// worker-count-invariant.
const sq8Chunk = 512

// sq8Codec quantizes vectors to one byte per dimension with a per-dimension
// affine transform (Milvus' SQ8).
type sq8Codec struct {
	dim   int
	min   []float32
	scale []float32 // (max-min)/255 per dim; 0 for constant dims
}

func trainSQ8(store *linalg.Matrix, dim, workers int) *sq8Codec {
	c := &sq8Codec{
		dim:   dim,
		min:   make([]float32, dim),
		scale: make([]float32, dim),
	}
	// Per-chunk min/max, merged in chunk order (min/max are exact, so the
	// merge order only matters for determinism of NaN handling).
	n := store.Rows()
	nChunks := parallel.NumChunks(n, sq8Chunk)
	mins := make([][]float32, nChunks)
	maxs := make([][]float32, nChunks)
	parallel.ForRanges(workers, n, sq8Chunk, func(ch, lo, hi int) {
		mn := make([]float32, dim)
		mx := make([]float32, dim)
		copy(mn, store.Row(lo))
		copy(mx, store.Row(lo))
		for i := lo + 1; i < hi; i++ {
			for j, x := range store.Row(i) {
				if x < mn[j] {
					mn[j] = x
				}
				if x > mx[j] {
					mx[j] = x
				}
			}
		}
		mins[ch], maxs[ch] = mn, mx
	})
	max := make([]float32, dim)
	copy(c.min, mins[0])
	copy(max, maxs[0])
	for ch := 1; ch < nChunks; ch++ {
		for j := 0; j < dim; j++ {
			if mins[ch][j] < c.min[j] {
				c.min[j] = mins[ch][j]
			}
			if maxs[ch][j] > max[j] {
				max[j] = maxs[ch][j]
			}
		}
	}
	for j := 0; j < dim; j++ {
		c.scale[j] = (max[j] - c.min[j]) / 255
	}
	return c
}

// encodeGrouped encodes every row of store into one flat code arena in
// grouped order: codes[g*dim:(g+1)*dim] encodes store.Row(order[g]). Rows
// fan across the worker pool; each grouped slot is written by exactly one
// chunk, so the pass is race-free and deterministic.
func (c *sq8Codec) encodeGrouped(store *linalg.Matrix, order []int32, workers int) []byte {
	codes := make([]byte, len(order)*c.dim)
	parallel.ForRanges(workers, len(order), sq8Chunk, func(_, lo, hi int) {
		for g := lo; g < hi; g++ {
			c.encode(store.Row(int(order[g])), codes[g*c.dim:(g+1)*c.dim])
		}
	})
	return codes
}

func (c *sq8Codec) encode(v []float32, dst []byte) {
	for j, x := range v {
		if c.scale[j] == 0 {
			dst[j] = 0
			continue
		}
		q := (x - c.min[j]) / c.scale[j]
		if q < 0 {
			q = 0
		}
		if q > 255 {
			q = 255
		}
		dst[j] = byte(q + 0.5)
	}
}

// dist computes the approximate distance between query q and code under the
// metric, reconstructing each dimension on the fly.
func (c *sq8Codec) dist(m linalg.Metric, q []float32, code []byte) float32 {
	switch m {
	case linalg.InnerProduct:
		var dot float32
		for j, b := range code {
			dot += q[j] * (c.min[j] + float32(b)*c.scale[j])
		}
		return -dot
	default: // L2 and Angular-normalized-as-L2
		var s float32
		for j, b := range code {
			d := q[j] - (c.min[j] + float32(b)*c.scale[j])
			s += d * d
		}
		return s
	}
}

func (c *sq8Codec) bytes() int64 {
	return 2 * int64(c.dim) * float32Bytes // min/scale
}

// ivfSQ8 is IVF with SQ8-compressed posting lists: the probed cells are
// scanned in the quantized domain (cheaper per candidate, small recall
// loss), and raw vectors are not retained, matching Milvus' IVF_SQ8.
// Codes live in one flat arena grouped cell-major, so each probe streams
// a contiguous byte range.
type ivfSQ8 struct {
	coarse  *ivfCoarse
	codec   *sq8Codec
	codes   []byte // grouped, store.Rows()*dim bytes
	ids     []int64
	scratch scratchPool
}

func newIVFSQ8(m linalg.Metric, dim int, p BuildParams) (*ivfSQ8, error) {
	nlist := p.NList
	if nlist == 0 {
		nlist = 128
	}
	c, err := newIVFCoarse(m, dim, nlist, p.Seed, p.Workers)
	if err != nil {
		return nil, err
	}
	return &ivfSQ8{coarse: c}, nil
}

func (x *ivfSQ8) Type() Type { return IVFSQ8 }

func (x *ivfSQ8) pool() *scratchPool { return &x.scratch }

func (x *ivfSQ8) Build(store *linalg.Matrix, ids []int64) error {
	if store.Rows() != len(ids) {
		return fmt.Errorf("ivf_sq8: %d vectors but %d ids", store.Rows(), len(ids))
	}
	order, err := x.coarse.train(store)
	if err != nil {
		return err
	}
	x.codec = trainSQ8(store, x.coarse.dim, x.coarse.workers)
	x.codes = x.codec.encodeGrouped(store, order, x.coarse.workers)
	x.ids = gatherIDs(ids, order)
	// Encoding charges one code-domain pass over the data.
	x.coarse.buildWork.Add(Stats{CodeComps: int64(store.Rows())})
	return nil
}

func (x *ivfSQ8) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	return searchPooled(x, q, k, p, st)
}

func (x *ivfSQ8) searchWith(q []float32, k int, p SearchParams, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	if len(x.codes) == 0 || k < 1 {
		return dst
	}
	cells := x.coarse.probe(q, x.coarse.clampProbe(p.NProbe), st, s)
	return x.scanCells(q, cells, k, st, s, dst)
}

// scanCells scores the given cells' quantized codes against q in probe
// order, returning the top-k appended to dst.
func (x *ivfSQ8) scanCells(q []float32, cells []int32, k int, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	dim := x.coarse.dim
	top := s.top.Reset(k)
	var scanned int64
	for _, cell := range cells {
		lo, hi := x.coarse.cellRange(cell)
		for g := int(lo); g < int(hi); g++ {
			top.Push(x.ids[g], x.codec.dist(x.coarse.metric, q, x.codes[g*dim:(g+1)*dim]))
		}
		scanned += int64(hi - lo)
	}
	accumulate(st, Stats{CodeComps: scanned})
	if dst == nil {
		dst = make([]linalg.Neighbor, 0, top.Len())
	}
	return top.AppendResults(dst)
}

func (x *ivfSQ8) SearchInto(q []float32, k int, p SearchParams, st *Stats, top *linalg.TopK) {
	searchIntoPooled(x, q, k, p, st, top)
}

// SearchMultiInto batches the coarse centroid assignment (one multi-query
// blocked pass over the centroid arena) and keeps the quantized
// posting-list scans per-query: the byte-domain scoring has no blocked
// kernel to share, so only the coarse stage benefits from the tile.
func (x *ivfSQ8) SearchMultiInto(queries [][]float32, k int, p SearchParams, st *Stats, tops []*linalg.TopK) {
	qn := len(queries)
	if len(x.codes) == 0 || k < 1 || qn == 0 {
		return
	}
	s := x.scratch.get()
	nprobe := x.coarse.clampProbe(p.NProbe)
	probes := x.coarse.probeMulti(queries, nprobe, st, s)
	for qi, q := range queries {
		s.res = x.scanCells(q, probes[qi*nprobe:(qi+1)*nprobe], k, st, s, s.res[:0])
		dst := tops[qi]
		for _, nb := range s.res {
			dst.Push(nb.ID, nb.Dist)
		}
	}
	x.scratch.put(s)
}

func (x *ivfSQ8) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(x, queries, k, p, st)
}

func (x *ivfSQ8) MemoryBytes() int64 {
	var codecBytes int64
	if x.codec != nil {
		codecBytes = x.codec.bytes()
	}
	return int64(len(x.codes)) + // 1 byte/dim codes
		x.coarse.centroidBytes() +
		codecBytes +
		int64(len(x.ids))*4 // grouped row ids
}

func (x *ivfSQ8) BuildStats() Stats { return x.coarse.buildWork }

func (x *ivfSQ8) StoreAdopted() bool { return false }
