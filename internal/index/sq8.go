package index

import (
	"fmt"

	"vdtuner/internal/linalg"
	"vdtuner/internal/parallel"
)

// sq8Chunk is the fixed row-chunk size of the parallel SQ8 phases; chunk
// boundaries depend only on the corpus size, keeping training and encoding
// worker-count-invariant.
const sq8Chunk = 512

// sq8Codec quantizes vectors to one byte per dimension with a per-dimension
// affine transform (Milvus' SQ8).
type sq8Codec struct {
	dim   int
	min   []float32
	scale []float32 // (max-min)/255 per dim; 0 for constant dims
}

func trainSQ8(vecs [][]float32, dim, workers int) *sq8Codec {
	c := &sq8Codec{
		dim:   dim,
		min:   make([]float32, dim),
		scale: make([]float32, dim),
	}
	// Per-chunk min/max, merged in chunk order (min/max are exact, so the
	// merge order only matters for determinism of NaN handling).
	nChunks := parallel.NumChunks(len(vecs), sq8Chunk)
	mins := make([][]float32, nChunks)
	maxs := make([][]float32, nChunks)
	parallel.ForRanges(workers, len(vecs), sq8Chunk, func(ch, lo, hi int) {
		mn := make([]float32, dim)
		mx := make([]float32, dim)
		copy(mn, vecs[lo])
		copy(mx, vecs[lo])
		for _, v := range vecs[lo+1 : hi] {
			for j, x := range v {
				if x < mn[j] {
					mn[j] = x
				}
				if x > mx[j] {
					mx[j] = x
				}
			}
		}
		mins[ch], maxs[ch] = mn, mx
	})
	max := make([]float32, dim)
	copy(c.min, mins[0])
	copy(max, maxs[0])
	for ch := 1; ch < nChunks; ch++ {
		for j := 0; j < dim; j++ {
			if mins[ch][j] < c.min[j] {
				c.min[j] = mins[ch][j]
			}
			if maxs[ch][j] > max[j] {
				max[j] = maxs[ch][j]
			}
		}
	}
	for j := 0; j < dim; j++ {
		c.scale[j] = (max[j] - c.min[j]) / 255
	}
	return c
}

// encodeAll encodes every vector into codes (rows pre-sliced by the
// caller), fanning rows across the worker pool. Each row writes only its
// own slot, so the pass is trivially race-free and deterministic.
func (c *sq8Codec) encodeAll(vecs [][]float32, codes [][]byte, workers int) {
	parallel.ForRanges(workers, len(vecs), sq8Chunk, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			c.encode(vecs[i], codes[i])
		}
	})
}

func (c *sq8Codec) encode(v []float32, dst []byte) {
	for j, x := range v {
		if c.scale[j] == 0 {
			dst[j] = 0
			continue
		}
		q := (x - c.min[j]) / c.scale[j]
		if q < 0 {
			q = 0
		}
		if q > 255 {
			q = 255
		}
		dst[j] = byte(q + 0.5)
	}
}

// dist computes the approximate distance between query q and code under the
// metric, reconstructing each dimension on the fly.
func (c *sq8Codec) dist(m linalg.Metric, q []float32, code []byte) float32 {
	switch m {
	case linalg.InnerProduct:
		var dot float32
		for j, b := range code {
			dot += q[j] * (c.min[j] + float32(b)*c.scale[j])
		}
		return -dot
	default: // L2 and Angular-normalized-as-L2
		var s float32
		for j, b := range code {
			d := q[j] - (c.min[j] + float32(b)*c.scale[j])
			s += d * d
		}
		return s
	}
}

// ivfSQ8 is IVF with SQ8-compressed posting lists: the probed cells are
// scanned in the quantized domain (cheaper per candidate, small recall
// loss), and raw vectors are not retained, matching Milvus' IVF_SQ8.
type ivfSQ8 struct {
	coarse *ivfCoarse
	codec  *sq8Codec
	codes  [][]byte
	ids    []int64
}

func newIVFSQ8(m linalg.Metric, dim int, p BuildParams) (*ivfSQ8, error) {
	nlist := p.NList
	if nlist == 0 {
		nlist = 128
	}
	c, err := newIVFCoarse(m, dim, nlist, p.Seed, p.Workers)
	if err != nil {
		return nil, err
	}
	return &ivfSQ8{coarse: c}, nil
}

func (x *ivfSQ8) Type() Type { return IVFSQ8 }

func (x *ivfSQ8) Build(vecs [][]float32, ids []int64) error {
	if len(vecs) != len(ids) {
		return fmt.Errorf("ivf_sq8: %d vectors but %d ids", len(vecs), len(ids))
	}
	if err := x.coarse.train(vecs); err != nil {
		return err
	}
	x.codec = trainSQ8(vecs, x.coarse.dim, x.coarse.workers)
	x.codes = make([][]byte, len(vecs))
	buf := make([]byte, len(vecs)*x.coarse.dim)
	for i := range vecs {
		x.codes[i], buf = buf[:x.coarse.dim], buf[x.coarse.dim:]
	}
	x.codec.encodeAll(vecs, x.codes, x.coarse.workers)
	x.ids = ids
	// Encoding charges one code-domain pass over the data.
	x.coarse.buildWork.Add(Stats{CodeComps: int64(len(vecs))})
	return nil
}

func (x *ivfSQ8) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	if len(x.codes) == 0 || k < 1 {
		return nil
	}
	order := x.coarse.probeOrder(q, st)
	nprobe := x.coarse.clampProbe(p.NProbe)
	top := linalg.NewTopK(k)
	var scanned int64
	for _, cell := range order[:nprobe] {
		for _, off := range x.coarse.lists[cell] {
			top.Push(x.ids[off], x.codec.dist(x.coarse.metric, q, x.codes[off]))
		}
		scanned += int64(len(x.coarse.lists[cell]))
	}
	accumulate(st, Stats{CodeComps: scanned})
	return top.Results()
}

func (x *ivfSQ8) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(x, queries, k, p, st)
}

func (x *ivfSQ8) MemoryBytes() int64 {
	return int64(len(x.codes))*int64(x.coarse.dim) + // 1 byte/dim codes
		x.coarse.centroidBytes() +
		2*int64(x.coarse.dim)*float32Bytes + // codec min/scale
		int64(len(x.codes))*4 // posting offsets
}

func (x *ivfSQ8) BuildStats() Stats { return x.coarse.buildWork }
