package index

import (
	"fmt"

	"vdtuner/internal/kmeans"
	"vdtuner/internal/linalg"
)

// ivfPQ is IVF with product quantization: vectors are split into m
// subspaces, each encoded by a 2^nbits-entry codebook, and probed cells are
// scanned with asymmetric distance computation (per-query lookup tables),
// matching Milvus' IVF_PQ. Distances are approximate; recall degrades as m
// shrinks or nbits shrinks, which is exactly the trade-off the tuner must
// learn.
type ivfPQ struct {
	coarse *ivfCoarse
	m      int // subquantizers; divides dim
	nbits  int // code width; codebook size is 1<<nbits
	subDim int
	// codebooks[s] is a (1<<nbits) x subDim matrix for subspace s.
	codebooks [][][]float32
	codes     [][]uint16 // one code per subspace per vector
	ids       []int64
}

func newIVFPQ(metric linalg.Metric, dim int, p BuildParams) (*ivfPQ, error) {
	nlist := p.NList
	if nlist == 0 {
		nlist = 128
	}
	m := p.M
	if m == 0 {
		m = 8
	}
	// m must divide dim; round down to the nearest divisor.
	for m > 1 && dim%m != 0 {
		m--
	}
	if m < 1 {
		m = 1
	}
	nbits := p.NBits
	if nbits == 0 {
		nbits = 8
	}
	if nbits < 4 {
		nbits = 4
	}
	if nbits > 12 {
		nbits = 12
	}
	c, err := newIVFCoarse(metric, dim, nlist, p.Seed, p.Workers)
	if err != nil {
		return nil, err
	}
	return &ivfPQ{coarse: c, m: m, nbits: nbits, subDim: dim / m}, nil
}

func (x *ivfPQ) Type() Type { return IVFPQ }

func (x *ivfPQ) Build(vecs [][]float32, ids []int64) error {
	if len(vecs) != len(ids) {
		return fmt.Errorf("ivf_pq: %d vectors but %d ids", len(vecs), len(ids))
	}
	if err := x.coarse.train(vecs); err != nil {
		return err
	}
	ksub := 1 << x.nbits
	x.codebooks = make([][][]float32, x.m)
	x.codes = make([][]uint16, len(vecs))
	codeBuf := make([]uint16, len(vecs)*x.m)
	for i := range vecs {
		x.codes[i], codeBuf = codeBuf[:x.m], codeBuf[x.m:]
	}
	sub := make([][]float32, len(vecs))
	for s := 0; s < x.m; s++ {
		lo, hi := s*x.subDim, (s+1)*x.subDim
		for i, v := range vecs {
			sub[i] = v[lo:hi]
		}
		res, err := kmeans.Run(sub, kmeans.Config{
			K: ksub, Seed: x.coarse.seed + int64(s) + 1, MaxIters: 10,
			SampleLimit: 8 * ksub, Workers: x.coarse.workers,
		})
		if err != nil {
			return fmt.Errorf("ivf_pq: codebook %d: %w", s, err)
		}
		x.codebooks[s] = res.Centroids
		for i, a := range res.Assign {
			x.codes[i][s] = uint16(a)
		}
	}
	x.ids = ids
	// Codebook training cost, scaled to full-dimension units: each
	// subspace comparison touches subDim of dim dimensions.
	x.coarse.buildWork.Add(Stats{
		DistComps: int64(len(vecs)) * int64(ksub) / int64(maxInt(1, x.m)) * int64(x.m) / int64(maxInt(1, x.m)),
		CodeComps: int64(len(vecs)),
	})
	return nil
}

func (x *ivfPQ) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	if len(x.codes) == 0 || k < 1 {
		return nil
	}
	order := x.coarse.probeOrder(q, st)
	nprobe := x.coarse.clampProbe(p.NProbe)

	// Build the ADC lookup tables: table[s][c] is the distance between the
	// query's subvector s and codeword c. Total work is m * ksub subspace
	// distances = ksub full-dimension equivalents.
	ksub := len(x.codebooks[0])
	tables := make([][]float32, x.m)
	for s := 0; s < x.m; s++ {
		lo, hi := s*x.subDim, (s+1)*x.subDim
		qs := q[lo:hi]
		tables[s] = make([]float32, ksub)
		for c, cw := range x.codebooks[s] {
			if x.coarse.metric == linalg.InnerProduct {
				tables[s][c] = -linalg.Dot(qs, cw)
			} else {
				tables[s][c] = linalg.SquaredL2(qs, cw)
			}
		}
	}
	accumulate(st, Stats{DistComps: int64(ksub)})

	top := linalg.NewTopK(k)
	var candidates int64
	for _, cell := range order[:nprobe] {
		for _, off := range x.coarse.lists[cell] {
			code := x.codes[off]
			var d float32
			for s := 0; s < x.m; s++ {
				d += tables[s][code[s]]
			}
			top.Push(x.ids[off], d)
		}
		candidates += int64(len(x.coarse.lists[cell]))
	}
	accumulate(st, Stats{Lookups: candidates * int64(x.m)})
	return top.Results()
}

func (x *ivfPQ) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(x, queries, k, p, st)
}

func (x *ivfPQ) MemoryBytes() int64 {
	ksub := int64(1) << x.nbits
	codeBytes := int64(1)
	if x.nbits > 8 {
		codeBytes = 2
	}
	return int64(len(x.codes))*int64(x.m)*codeBytes +
		int64(x.m)*ksub*int64(x.subDim)*float32Bytes + // codebooks
		x.coarse.centroidBytes() +
		int64(len(x.codes))*4 // posting offsets
}

func (x *ivfPQ) BuildStats() Stats { return x.coarse.buildWork }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
