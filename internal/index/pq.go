package index

import (
	"fmt"

	"vdtuner/internal/kmeans"
	"vdtuner/internal/linalg"
)

// ivfPQ is IVF with product quantization: vectors are split into m
// subspaces, each encoded by a 2^nbits-entry codebook, and probed cells are
// scanned with asymmetric distance computation (per-query lookup tables),
// matching Milvus' IVF_PQ. Distances are approximate; recall degrades as m
// shrinks or nbits shrinks, which is exactly the trade-off the tuner must
// learn.
//
// Layout: codes are one flat arena grouped cell-major (m entries per
// row), packed at the narrowest width the trained codebook allows —
// codes8 when ksubN ≤ 256 (the default nbits=8 and below), codes16
// otherwise; exactly one of the two is non-nil. Codebooks are one
// (m*ksub) x subDim arena whose subspace-s codeword c is row s*ksub+c, so
// the per-query ADC table build is m blocked kernel calls over contiguous
// codeword ranges; the table itself is one flat m*ksub []float32 drawn
// from the query scratch and scanned by the linalg PQScan kernels.
type ivfPQ struct {
	coarse *ivfCoarse
	m      int // subquantizers; divides dim
	nbits  int // code width; codebook size is 1<<nbits
	subDim int
	// books holds the m*ksubN codewords; row s*ksubN+c is codeword c of
	// subspace s.
	books *linalg.Matrix
	// ksubN is the actual per-subspace codebook size: 1<<nbits, clamped
	// down by the trainer when the corpus is smaller.
	ksubN   int
	codes8  []uint8  // grouped, m per row; nil when ksubN > 256
	codes16 []uint16 // grouped, m per row; nil when ksubN ≤ 256
	ids     []int64  // grouped
	scratch scratchPool
}

func newIVFPQ(metric linalg.Metric, dim int, p BuildParams) (*ivfPQ, error) {
	nlist := p.NList
	if nlist == 0 {
		nlist = 128
	}
	m := p.M
	if m == 0 {
		m = 8
	}
	// m must divide dim; round down to the nearest divisor.
	for m > 1 && dim%m != 0 {
		m--
	}
	if m < 1 {
		m = 1
	}
	nbits := p.NBits
	if nbits == 0 {
		nbits = 8
	}
	if nbits < 4 {
		nbits = 4
	}
	if nbits > 12 {
		nbits = 12
	}
	c, err := newIVFCoarse(metric, dim, nlist, p.Seed, p.Workers)
	if err != nil {
		return nil, err
	}
	return &ivfPQ{coarse: c, m: m, nbits: nbits, subDim: dim / m}, nil
}

func (x *ivfPQ) Type() Type { return IVFPQ }

func (x *ivfPQ) pool() *scratchPool { return &x.scratch }

func (x *ivfPQ) Build(store *linalg.Matrix, ids []int64) error {
	if store.Rows() != len(ids) {
		return fmt.Errorf("ivf_pq: %d vectors but %d ids", store.Rows(), len(ids))
	}
	order, err := x.coarse.train(store)
	if err != nil {
		return err
	}
	n := store.Rows()
	ksub := 1 << x.nbits
	x.books = linalg.NewMatrix(x.subDim, x.m*ksub)
	assigns := make([][]int, x.m)
	for s := 0; s < x.m; s++ {
		lo, hi := s*x.subDim, (s+1)*x.subDim
		// The subspace view is strided (stride = dim), clustered without
		// copying the corpus.
		res, err := kmeans.Run(store.SubspaceView(lo, hi), kmeans.Config{
			K: ksub, Seed: x.coarse.seed + int64(s) + 1, MaxIters: 10,
			SampleLimit: 8 * ksub, Workers: x.coarse.workers,
		})
		if err != nil {
			return fmt.Errorf("ivf_pq: codebook %d: %w", s, err)
		}
		// The trainer clamps K down on small corpora; every subspace
		// clusters the same row count, so the clamp is uniform.
		x.ksubN = len(res.Centroids)
		for _, cw := range res.Centroids {
			x.books.AppendRow(cw)
		}
		assigns[s] = res.Assign
	}
	// Pack at the narrowest width the trained codebook allows: one byte
	// per entry when every codeword index fits, halving code-arena
	// traffic on every scan at the default nbits=8.
	if x.ksubN <= 256 {
		x.codes8 = make([]uint8, n*x.m)
		for s, as := range assigns {
			for g, o := range order {
				x.codes8[g*x.m+s] = uint8(as[o])
			}
		}
	} else {
		x.codes16 = make([]uint16, n*x.m)
		for s, as := range assigns {
			for g, o := range order {
				x.codes16[g*x.m+s] = uint16(as[o])
			}
		}
	}
	x.ids = gatherIDs(ids, order)
	// Codebook training cost in full-dimension units: the final assign
	// pass compares every row to every codeword in each of the m
	// subspaces, and each subspace comparison touches subDim = dim/m
	// dimensions — m * (n*ksubN) * (1/m) = n*ksubN full-dim equivalents.
	x.coarse.buildWork.Add(Stats{
		DistComps: int64(n) * int64(x.ksubN),
		CodeComps: int64(n),
	})
	return nil
}

// codeLen reports the number of packed code entries (rows × m).
func (x *ivfPQ) codeLen() int {
	if x.codes8 != nil {
		return len(x.codes8)
	}
	return len(x.codes16)
}

func (x *ivfPQ) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	return searchPooled(x, q, k, p, st)
}

func (x *ivfPQ) searchWith(q []float32, k int, p SearchParams, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	if x.codeLen() == 0 || k < 1 {
		return dst
	}
	cells := x.coarse.probe(q, x.coarse.clampProbe(p.NProbe), st, s)
	return x.scanCells(q, cells, k, st, s, dst)
}

// scanCells builds the per-query ADC table and scans the given cells'
// codes in probe order with the unrolled PQScan kernels (four independent
// gather chains per code row), returning the top-k appended to dst.
func (x *ivfPQ) scanCells(q []float32, cells []int32, k int, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	// Build the flat ADC lookup table: adc[s*ksub+c] is the distance
	// between the query's subvector s and codeword c, computed with one
	// blocked kernel call per subspace over the contiguous codeword
	// arena (the metric epilogue is fused in DistanceBlock). Total work
	// is m * ksub subspace distances = ksub full-dimension equivalents.
	ksub := x.ksubN
	m := x.m
	adc := f32Buf(s.adc, m*ksub)
	books := x.books.Data()
	rowLen := ksub * x.subDim
	for sub := 0; sub < m; sub++ {
		qs := q[sub*x.subDim : (sub+1)*x.subDim]
		out := adc[sub*ksub : (sub+1)*ksub]
		linalg.DistanceBlock(x.coarse.metric, qs, books[sub*rowLen:(sub+1)*rowLen], out)
	}
	s.adc = adc
	accumulate(st, Stats{DistComps: int64(ksub)})

	top := s.top.Reset(k)
	var candidates int64
	for _, cell := range cells {
		lo, hi := x.coarse.cellRange(cell)
		if lo == hi {
			continue
		}
		s.dists = f32Buf(s.dists, int(hi-lo))
		if x.codes8 != nil {
			linalg.PQScan8(adc, x.codes8[int(lo)*m:int(hi)*m], m, ksub, s.dists)
		} else {
			linalg.PQScan16(adc, x.codes16[int(lo)*m:int(hi)*m], m, ksub, s.dists)
		}
		top.PushBlock(x.ids[lo:hi], s.dists)
		candidates += int64(hi - lo)
	}
	accumulate(st, Stats{Lookups: candidates * int64(m)})
	if dst == nil {
		dst = make([]linalg.Neighbor, 0, top.Len())
	}
	return top.AppendResults(dst)
}

func (x *ivfPQ) SearchInto(q []float32, k int, p SearchParams, st *Stats, top *linalg.TopK) {
	searchIntoPooled(x, q, k, p, st, top)
}

// SearchMultiInto shares the code-arena streaming across the query tile:
// batched coarse assignment, all Q ADC tables built into one flat arena
// (one DistanceMultiScatter per subspace over the contiguous codeword
// range — bit-identical to Q per-query DistanceBlock builds), then the
// probe table is inverted cell→probers and each probed cell's code range
// is walked once for all of its probers (each code row's entries load
// once per tile, not once per query), and a per-query replay reproduces
// the single-query candidate sequence exactly.
func (x *ivfPQ) SearchMultiInto(queries [][]float32, k int, p SearchParams, st *Stats, tops []*linalg.TopK) {
	qn := len(queries)
	if x.codeLen() == 0 || k < 1 || qn == 0 {
		return
	}
	s := x.scratch.get()
	nprobe := x.coarse.clampProbe(p.NProbe)
	probes := x.coarse.probeMulti(queries, nprobe, st, s)

	// Phase 1b: all Q ADC tables, one blocked multi-query kernel call per
	// subspace over the contiguous codeword arena.
	ksub := x.ksubN
	m := x.m
	tab := m * ksub
	s.madc = f32Buf(s.madc, qn*tab)
	books := x.books.Data()
	rowLen := ksub * x.subDim
	s.mqrows = f32sBuf(s.mqrows, qn)
	s.mouts = f32sBuf(s.mouts, qn)
	for sub := 0; sub < m; sub++ {
		for qi, q := range queries {
			s.mqrows[qi] = q[sub*x.subDim : (sub+1)*x.subDim]
			s.mouts[qi] = s.madc[qi*tab+sub*ksub : qi*tab+(sub+1)*ksub]
		}
		linalg.DistanceMultiScatter(x.coarse.metric, s.mqrows, books[sub*rowLen:(sub+1)*rowLen], s.mouts)
	}
	accumulate(st, Stats{DistComps: int64(qn) * int64(ksub)})

	// Phase 2: invert and scan each probed cell once for all its probers.
	total := x.coarse.invertProbes(probes, s)
	ncells := x.coarse.cents.Rows()
	for c := 0; c < ncells; c++ {
		elo, ehi := int(s.mcnt[c]), int(s.mcnt[c+1])
		if elo == ehi {
			continue
		}
		lo, hi := x.coarse.cellRange(int32(c))
		if lo == hi {
			continue
		}
		nq := ehi - elo
		s.mqrows = f32sBuf(s.mqrows, nq)
		s.mouts = f32sBuf(s.mouts, nq)
		for j := 0; j < nq; j++ {
			slot := s.ment[elo+j]
			qi := int(slot) / nprobe
			s.mqrows[j] = s.madc[qi*tab : (qi+1)*tab]
			o := s.mregion[slot]
			s.mouts[j] = s.mbuf[o : o+hi-lo]
		}
		if x.codes8 != nil {
			linalg.PQScan8Multi(s.mqrows[:nq], x.codes8[int(lo)*m:int(hi)*m], m, ksub, s.mouts[:nq])
		} else {
			linalg.PQScan16Multi(s.mqrows[:nq], x.codes16[int(lo)*m:int(hi)*m], m, ksub, s.mouts[:nq])
		}
	}

	x.coarse.replayRegions(probes, nprobe, k, x.ids, s, tops)
	accumulate(st, Stats{Lookups: int64(total) * int64(m)})
	for j := range s.mqrows {
		s.mqrows[j] = nil // don't pin caller query slices in the pool
	}
	x.scratch.put(s)
}

func (x *ivfPQ) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(x, queries, k, p, st)
}

func (x *ivfPQ) MemoryBytes() int64 {
	var bookBytes int64
	if x.books != nil {
		bookBytes = x.books.Bytes() // exact: m*ksubN rows (ksub may be clamped)
	}
	// Codes at their actual packed width: 1 byte per entry in codes8,
	// 2 in codes16 (exactly one of the two is populated).
	return int64(len(x.codes8)) + 2*int64(len(x.codes16)) +
		bookBytes +
		x.coarse.centroidBytes() +
		int64(len(x.ids))*4 // grouped row ids
}

func (x *ivfPQ) BuildStats() Stats { return x.coarse.buildWork }

func (x *ivfPQ) StoreAdopted() bool { return false }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
