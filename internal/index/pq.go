package index

import (
	"fmt"

	"vdtuner/internal/kmeans"
	"vdtuner/internal/linalg"
)

// ivfPQ is IVF with product quantization: vectors are split into m
// subspaces, each encoded by a 2^nbits-entry codebook, and probed cells are
// scanned with asymmetric distance computation (per-query lookup tables),
// matching Milvus' IVF_PQ. Distances are approximate; recall degrades as m
// shrinks or nbits shrinks, which is exactly the trade-off the tuner must
// learn.
//
// Layout: codes are one flat []uint16 arena grouped cell-major (m entries
// per row); codebooks are one (m*ksub) x subDim arena whose subspace-s
// codeword c is row s*ksub+c, so the per-query ADC table build is m blocked
// kernel calls over contiguous codeword ranges; the table itself is one
// flat m*ksub []float32 drawn from the query scratch.
type ivfPQ struct {
	coarse *ivfCoarse
	m      int // subquantizers; divides dim
	nbits  int // code width; codebook size is 1<<nbits
	subDim int
	// books holds the m*ksubN codewords; row s*ksubN+c is codeword c of
	// subspace s.
	books *linalg.Matrix
	// ksubN is the actual per-subspace codebook size: 1<<nbits, clamped
	// down by the trainer when the corpus is smaller.
	ksubN   int
	codes   []uint16 // grouped, m per row
	ids     []int64  // grouped
	scratch scratchPool
}

func newIVFPQ(metric linalg.Metric, dim int, p BuildParams) (*ivfPQ, error) {
	nlist := p.NList
	if nlist == 0 {
		nlist = 128
	}
	m := p.M
	if m == 0 {
		m = 8
	}
	// m must divide dim; round down to the nearest divisor.
	for m > 1 && dim%m != 0 {
		m--
	}
	if m < 1 {
		m = 1
	}
	nbits := p.NBits
	if nbits == 0 {
		nbits = 8
	}
	if nbits < 4 {
		nbits = 4
	}
	if nbits > 12 {
		nbits = 12
	}
	c, err := newIVFCoarse(metric, dim, nlist, p.Seed, p.Workers)
	if err != nil {
		return nil, err
	}
	return &ivfPQ{coarse: c, m: m, nbits: nbits, subDim: dim / m}, nil
}

func (x *ivfPQ) Type() Type { return IVFPQ }

func (x *ivfPQ) pool() *scratchPool { return &x.scratch }

func (x *ivfPQ) Build(store *linalg.Matrix, ids []int64) error {
	if store.Rows() != len(ids) {
		return fmt.Errorf("ivf_pq: %d vectors but %d ids", store.Rows(), len(ids))
	}
	order, err := x.coarse.train(store)
	if err != nil {
		return err
	}
	n := store.Rows()
	ksub := 1 << x.nbits
	x.books = linalg.NewMatrix(x.subDim, x.m*ksub)
	x.codes = make([]uint16, n*x.m)
	for s := 0; s < x.m; s++ {
		lo, hi := s*x.subDim, (s+1)*x.subDim
		// The subspace view is strided (stride = dim), clustered without
		// copying the corpus.
		res, err := kmeans.Run(store.SubspaceView(lo, hi), kmeans.Config{
			K: ksub, Seed: x.coarse.seed + int64(s) + 1, MaxIters: 10,
			SampleLimit: 8 * ksub, Workers: x.coarse.workers,
		})
		if err != nil {
			return fmt.Errorf("ivf_pq: codebook %d: %w", s, err)
		}
		// The trainer clamps K down on small corpora; every subspace
		// clusters the same row count, so the clamp is uniform.
		x.ksubN = len(res.Centroids)
		for _, cw := range res.Centroids {
			x.books.AppendRow(cw)
		}
		for g, o := range order {
			x.codes[g*x.m+s] = uint16(res.Assign[o])
		}
	}
	x.ids = gatherIDs(ids, order)
	// Codebook training cost, scaled to full-dimension units: each
	// subspace comparison touches subDim of dim dimensions.
	x.coarse.buildWork.Add(Stats{
		DistComps: int64(n) * int64(ksub) / int64(maxInt(1, x.m)) * int64(x.m) / int64(maxInt(1, x.m)),
		CodeComps: int64(n),
	})
	return nil
}

func (x *ivfPQ) Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor {
	return searchPooled(x, q, k, p, st)
}

func (x *ivfPQ) searchWith(q []float32, k int, p SearchParams, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	if len(x.codes) == 0 || k < 1 {
		return dst
	}
	cells := x.coarse.probe(q, x.coarse.clampProbe(p.NProbe), st, s)
	return x.scanCells(q, cells, k, st, s, dst)
}

// scanCells builds the per-query ADC table and scans the given cells'
// codes in probe order, returning the top-k appended to dst.
func (x *ivfPQ) scanCells(q []float32, cells []int32, k int, st *Stats, s *searchScratch, dst []linalg.Neighbor) []linalg.Neighbor {
	// Build the flat ADC lookup table: adc[s*ksub+c] is the distance
	// between the query's subvector s and codeword c, computed with one
	// blocked kernel call per subspace over the contiguous codeword
	// arena (the metric epilogue is fused in DistanceBlock). Total work
	// is m * ksub subspace distances = ksub full-dimension equivalents.
	ksub := x.ksubN
	m := x.m
	adc := f32Buf(s.adc, m*ksub)
	books := x.books.Data()
	rowLen := ksub * x.subDim
	for sub := 0; sub < m; sub++ {
		qs := q[sub*x.subDim : (sub+1)*x.subDim]
		out := adc[sub*ksub : (sub+1)*ksub]
		linalg.DistanceBlock(x.coarse.metric, qs, books[sub*rowLen:(sub+1)*rowLen], out)
	}
	s.adc = adc
	accumulate(st, Stats{DistComps: int64(ksub)})

	top := s.top.Reset(k)
	var candidates int64
	for _, cell := range cells {
		lo, hi := x.coarse.cellRange(cell)
		for g := int(lo); g < int(hi); g++ {
			code := x.codes[g*m : (g+1)*m]
			var d float32
			for sub := 0; sub < m; sub++ {
				d += adc[sub*ksub+int(code[sub])]
			}
			top.Push(x.ids[g], d)
		}
		candidates += int64(hi - lo)
	}
	accumulate(st, Stats{Lookups: candidates * int64(m)})
	if dst == nil {
		dst = make([]linalg.Neighbor, 0, top.Len())
	}
	return top.AppendResults(dst)
}

func (x *ivfPQ) SearchInto(q []float32, k int, p SearchParams, st *Stats, top *linalg.TopK) {
	searchIntoPooled(x, q, k, p, st, top)
}

// SearchMultiInto batches the coarse centroid assignment across the query
// tile; the ADC table build and code scans stay per-query (the table is
// query-specific and the scan is table lookups, not a blocked kernel).
func (x *ivfPQ) SearchMultiInto(queries [][]float32, k int, p SearchParams, st *Stats, tops []*linalg.TopK) {
	qn := len(queries)
	if len(x.codes) == 0 || k < 1 || qn == 0 {
		return
	}
	s := x.scratch.get()
	nprobe := x.coarse.clampProbe(p.NProbe)
	probes := x.coarse.probeMulti(queries, nprobe, st, s)
	for qi, q := range queries {
		s.res = x.scanCells(q, probes[qi*nprobe:(qi+1)*nprobe], k, st, s, s.res[:0])
		dst := tops[qi]
		for _, nb := range s.res {
			dst.Push(nb.ID, nb.Dist)
		}
	}
	x.scratch.put(s)
}

func (x *ivfPQ) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return searchBatch(x, queries, k, p, st)
}

func (x *ivfPQ) MemoryBytes() int64 {
	codeBytes := int64(1)
	if x.nbits > 8 {
		codeBytes = 2
	}
	var bookBytes int64
	if x.books != nil {
		bookBytes = x.books.Bytes() // exact: m*ksubN rows (ksub may be clamped)
	}
	return int64(len(x.ids))*int64(x.m)*codeBytes +
		bookBytes +
		x.coarse.centroidBytes() +
		int64(len(x.ids))*4 // grouped row ids
}

func (x *ivfPQ) BuildStats() Stats { return x.coarse.buildWork }

func (x *ivfPQ) StoreAdopted() bool { return false }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
