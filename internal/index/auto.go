package index

import "vdtuner/internal/linalg"

// autoIndex mirrors Milvus' AUTOINDEX: a fixed, reasonable default with no
// user-tunable parameters. It delegates to an HNSW graph with stock
// settings and ignores all search parameters, using a fixed beam width.
type autoIndex struct {
	inner *hnsw
}

// Fixed AUTOINDEX configuration, deliberately not exposed for tuning.
const (
	autoM      = 16
	autoEfCons = 128
	autoEf     = 64
)

func newAutoIndex(m linalg.Metric, dim int, p BuildParams) (*autoIndex, error) {
	inner, err := newHNSW(m, dim, BuildParams{HNSWM: autoM, EfConstruction: autoEfCons, Seed: p.Seed, Workers: p.Workers})
	if err != nil {
		return nil, err
	}
	return &autoIndex{inner: inner}, nil
}

func (a *autoIndex) Type() Type { return AutoIndex }

func (a *autoIndex) Build(store *linalg.Matrix, ids []int64) error {
	return a.inner.Build(store, ids)
}

func (a *autoIndex) Search(q []float32, k int, _ SearchParams, st *Stats) []linalg.Neighbor {
	return a.inner.Search(q, k, SearchParams{Ef: autoEf}, st)
}

// SearchInto delegates with the pinned beam width, like Search.
func (a *autoIndex) SearchInto(q []float32, k int, _ SearchParams, st *Stats, top *linalg.TopK) {
	a.inner.SearchInto(q, k, SearchParams{Ef: autoEf}, st, top)
}

// SearchMultiInto pins the beam like SearchInto and delegates to the inner
// index's multi-query path.
func (a *autoIndex) SearchMultiInto(queries [][]float32, k int, _ SearchParams, st *Stats, tops []*linalg.TopK) {
	a.inner.SearchMultiInto(queries, k, SearchParams{Ef: autoEf}, st, tops)
}

// SearchBatch honors only the batch fan-out width; like Search, the
// per-query beam is pinned to the AUTOINDEX default.
func (a *autoIndex) SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor {
	return a.inner.SearchBatch(queries, k, SearchParams{Ef: autoEf, Workers: p.Workers}, st)
}

func (a *autoIndex) MemoryBytes() int64 { return a.inner.MemoryBytes() }

func (a *autoIndex) BuildStats() Stats { return a.inner.BuildStats() }

// StoreAdopted delegates: whatever the inner index did with the arena.
func (a *autoIndex) StoreAdopted() bool { return a.inner.StoreAdopted() }
