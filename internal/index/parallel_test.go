package index

import (
	"reflect"
	"runtime"
	"testing"

	"vdtuner/internal/linalg"
)

// parallelCases covers every index type whose build has parallel phases.
var parallelCases = []struct {
	name string
	typ  Type
	bp   BuildParams
	sp   SearchParams
}{
	{"HNSW", HNSW, BuildParams{HNSWM: 12, EfConstruction: 80}, SearchParams{Ef: 64}},
	{"IVF_FLAT", IVFFlat, BuildParams{NList: 32}, SearchParams{NProbe: 8}},
	{"IVF_PQ", IVFPQ, BuildParams{NList: 16, M: 8, NBits: 6}, SearchParams{NProbe: 8}},
	{"IVF_SQ8", IVFSQ8, BuildParams{NList: 32}, SearchParams{NProbe: 8}},
	{"SCANN", SCANN, BuildParams{NList: 32}, SearchParams{NProbe: 8, ReorderK: 40}},
	{"AUTOINDEX", AutoIndex, BuildParams{}, SearchParams{}},
}

func buildWithWorkers(t *testing.T, typ Type, bp BuildParams, workers int, vecs [][]float32, ids []int64) Index {
	t.Helper()
	bp.Seed = 99
	bp.Workers = workers
	idx, err := New(typ, linalg.L2, len(vecs[0]), bp)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestBuildWorkerCountInvariant is the determinism contract of the
// parallel build path: for a fixed seed, workers=1 (the reference
// sequential schedule) and workers=N produce identical structures,
// identical search results, and identical build Stats.
func TestBuildWorkerCountInvariant(t *testing.T) {
	vecs, ids, queries, _ := testData(t, 1500, 20, 32, 10, 77)
	for _, tc := range parallelCases {
		t.Run(tc.name, func(t *testing.T) {
			seq := buildWithWorkers(t, tc.typ, tc.bp, 1, vecs, ids)
			for _, workers := range []int{2, 8} {
				par := buildWithWorkers(t, tc.typ, tc.bp, workers, vecs, ids)
				if seq.BuildStats() != par.BuildStats() {
					t.Fatalf("workers=%d: build stats %+v != sequential %+v",
						workers, par.BuildStats(), seq.BuildStats())
				}
				if seq.MemoryBytes() != par.MemoryBytes() {
					t.Fatalf("workers=%d: memory %d != sequential %d",
						workers, par.MemoryBytes(), seq.MemoryBytes())
				}
				for qi, q := range queries {
					var sSeq, sPar Stats
					rSeq := seq.Search(q, 10, tc.sp, &sSeq)
					rPar := par.Search(q, 10, tc.sp, &sPar)
					if !reflect.DeepEqual(rSeq, rPar) {
						t.Fatalf("workers=%d query %d: results differ\nseq: %v\npar: %v",
							workers, qi, rSeq, rPar)
					}
					if sSeq != sPar {
						t.Fatalf("workers=%d query %d: search stats %+v != %+v",
							workers, qi, sPar, sSeq)
					}
				}
			}
		})
	}
}

// TestHNSWGraphIdenticalAcrossWorkers compares the raw graph structure,
// not just observable search behavior.
func TestHNSWGraphIdenticalAcrossWorkers(t *testing.T) {
	vecs, ids, _, _ := testData(t, 1200, 1, 16, 1, 78)
	seq := buildWithWorkers(t, HNSW, BuildParams{HNSWM: 8, EfConstruction: 64}, 1, vecs, ids).(*hnsw)
	par := buildWithWorkers(t, HNSW, BuildParams{HNSWM: 8, EfConstruction: 64}, 8, vecs, ids).(*hnsw)
	if seq.entry != par.entry || seq.maxLevel != par.maxLevel {
		t.Fatalf("entry/maxLevel differ: (%d,%d) vs (%d,%d)",
			seq.entry, seq.maxLevel, par.entry, par.maxLevel)
	}
	if !reflect.DeepEqual(seq.levels, par.levels) {
		t.Fatal("level assignments differ")
	}
	if !reflect.DeepEqual(seq.links, par.links) {
		t.Fatal("adjacency lists differ between workers=1 and workers=8")
	}
}

// TestSearchBatchMatchesSequentialSearch verifies the batched API is a
// pure fan-out: same per-query results and exactly the same accumulated
// Stats as k sequential Search calls, for every index type and any
// worker count.
func TestSearchBatchMatchesSequentialSearch(t *testing.T) {
	vecs, ids, queries, _ := testData(t, 1000, 25, 16, 5, 79)
	for _, tc := range parallelCases {
		t.Run(tc.name, func(t *testing.T) {
			idx := buildWithWorkers(t, tc.typ, tc.bp, 0, vecs, ids)
			var want Stats
			wantRes := make([][]linalg.Neighbor, len(queries))
			for qi, q := range queries {
				wantRes[qi] = idx.Search(q, 5, tc.sp, &want)
			}
			for _, workers := range []int{1, 4, 16} {
				sp := tc.sp
				sp.Workers = workers
				var got Stats
				gotRes := idx.SearchBatch(queries, 5, sp, &got)
				if !reflect.DeepEqual(gotRes, wantRes) {
					t.Fatalf("workers=%d: batch results differ from sequential", workers)
				}
				if got != want {
					t.Fatalf("workers=%d: batch stats %+v, sequential %+v", workers, got, want)
				}
			}
		})
	}
}

// TestArenaLayoutInvariant is the bit-identity contract of the flat-arena
// refactor: building from a standalone packed arena and from an offset
// row-range view of a larger arena (how the engine hands segments to
// Build) must produce identical search results and Stats for every index
// type, at workers=1 and workers=N. The vectors are what matter, never
// their placement.
func TestArenaLayoutInvariant(t *testing.T) {
	vecs, ids, queries, _ := testData(t, 1400, 15, 32, 10, 82)
	// An arena with a foreign prefix and suffix; the corpus is the
	// interior view.
	padded := make([][]float32, 0, len(vecs)+2)
	pad := make([]float32, 32)
	for i := range pad {
		pad[i] = 123.5
	}
	padded = append(padded, pad)
	padded = append(padded, vecs...)
	padded = append(padded, pad)
	arena := linalg.MatrixFromRows(padded)
	view := arena.Slice(1, 1+len(vecs))

	for _, tc := range parallelCases {
		t.Run(tc.name, func(t *testing.T) {
			standalone := buildWithWorkers(t, tc.typ, tc.bp, 1, vecs, ids)
			viewBuilt, err := New(tc.typ, linalg.L2, 32, withSeed(tc.bp, 99, 8))
			if err != nil {
				t.Fatal(err)
			}
			if err := viewBuilt.Build(view, ids); err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				var sA, sB Stats
				rA := standalone.Search(q, 10, tc.sp, &sA)
				rB := viewBuilt.Search(q, 10, tc.sp, &sB)
				if !reflect.DeepEqual(rA, rB) {
					t.Fatalf("query %d: arena-view build differs from standalone build\nstandalone: %v\nview:       %v", qi, rA, rB)
				}
				if sA != sB {
					t.Fatalf("query %d: stats differ: %+v vs %+v", qi, sA, sB)
				}
			}
			spN := tc.sp
			spN.Workers = 8
			batch := viewBuilt.SearchBatch(queries, 10, spN, nil)
			for qi, q := range queries {
				if !reflect.DeepEqual(batch[qi], standalone.Search(q, 10, tc.sp, nil)) {
					t.Fatalf("query %d: workers=8 batch over the view differs from workers=1 standalone", qi)
				}
			}
		})
	}
}

func withSeed(bp BuildParams, seed int64, workers int) BuildParams {
	bp.Seed = seed
	bp.Workers = workers
	return bp
}

func TestSearchBatchEmptyAndNilStats(t *testing.T) {
	vecs, ids, queries, _ := testData(t, 300, 3, 8, 3, 80)
	idx := buildWithWorkers(t, IVFFlat, BuildParams{NList: 8}, 2, vecs, ids)
	if out := idx.SearchBatch(nil, 3, SearchParams{NProbe: 4, Workers: 4}, nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d slots", len(out))
	}
	out := idx.SearchBatch(queries, 3, SearchParams{NProbe: 4, Workers: 4}, nil)
	if len(out) != len(queries) {
		t.Fatalf("batch returned %d slots, want %d", len(out), len(queries))
	}
	for qi := range out {
		if len(out[qi]) == 0 {
			t.Fatalf("query %d returned no neighbors", qi)
		}
	}
}

func TestSearchBatchParallelSpeedupShape(t *testing.T) {
	// Not a timing assertion (unreliable on small machines/CI): just that
	// large fan-out requests behave identically to workers=1 on a batch
	// bigger than any internal chunk size.
	if runtime.GOMAXPROCS(0) < 1 {
		t.Skip("no CPUs")
	}
	vecs, ids, _, _ := testData(t, 800, 1, 16, 1, 81)
	idx := buildWithWorkers(t, HNSW, BuildParams{HNSWM: 8, EfConstruction: 48}, 0, vecs, ids)
	batch := make([][]float32, 300)
	for i := range batch {
		batch[i] = vecs[(i*7)%len(vecs)]
	}
	a := idx.SearchBatch(batch, 5, SearchParams{Ef: 32, Workers: 1}, nil)
	b := idx.SearchBatch(batch, 5, SearchParams{Ef: 32, Workers: 64}, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("results depend on batch fan-out width")
	}
}
