package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"vdtuner/internal/linalg"
)

func TestSQ8CodecRoundTripError(t *testing.T) {
	// Property: reconstruction error per dimension is bounded by one
	// quantization step.
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		dim := rng.Intn(16) + 2
		n := rng.Intn(50) + 2
		vecs := make([][]float32, n)
		for i := range vecs {
			vecs[i] = make([]float32, dim)
			for j := range vecs[i] {
				vecs[i][j] = float32(rng.NormFloat64() * 10)
			}
		}
		codec := trainSQ8(linalg.MatrixFromRows(vecs), dim, 1)
		code := make([]byte, dim)
		for _, v := range vecs {
			codec.encode(v, code)
			for j, b := range code {
				rec := codec.min[j] + float32(b)*codec.scale[j]
				if step := codec.scale[j]; math.Abs(float64(rec-v[j])) > float64(step)+1e-5 {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < 50; i++ {
		if !f() {
			t.Fatal("SQ8 reconstruction error exceeded one quantization step")
		}
	}
}

func TestSQ8DistancePreservesRanking(t *testing.T) {
	// Quantized distances must correlate with exact distances: the
	// quantized nearest neighbor should be among the exact top few.
	rng := rand.New(rand.NewSource(2))
	dim := 16
	n := 200
	vecs := make([][]float32, n)
	for i := range vecs {
		vecs[i] = make([]float32, dim)
		for j := range vecs[i] {
			vecs[i][j] = float32(rng.NormFloat64())
		}
	}
	codec := trainSQ8(linalg.MatrixFromRows(vecs), dim, 1)
	codes := make([][]byte, n)
	for i, v := range vecs {
		codes[i] = make([]byte, dim)
		codec.encode(v, codes[i])
	}
	for trial := 0; trial < 20; trial++ {
		q := make([]float32, dim)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		type pair struct {
			i     int
			exact float32
			quant float32
		}
		ps := make([]pair, n)
		for i := range vecs {
			ps[i] = pair{i, linalg.SquaredL2(q, vecs[i]), codec.dist(linalg.L2, q, codes[i])}
		}
		sort.Slice(ps, func(a, b int) bool { return ps[a].quant < ps[b].quant })
		bestQuant := ps[0].i
		sort.Slice(ps, func(a, b int) bool { return ps[a].exact < ps[b].exact })
		rank := -1
		for r, p := range ps {
			if p.i == bestQuant {
				rank = r
				break
			}
		}
		if rank > 5 {
			t.Fatalf("quantized nearest neighbor ranks %d exactly", rank)
		}
	}
}

func TestSQ8ConstantDimension(t *testing.T) {
	vecs := [][]float32{{1, 5}, {2, 5}, {3, 5}}
	codec := trainSQ8(linalg.MatrixFromRows(vecs), 2, 1)
	code := make([]byte, 2)
	codec.encode(vecs[0], code)
	if code[1] != 0 {
		t.Fatalf("constant dim encoded as %d", code[1])
	}
	d := codec.dist(linalg.L2, []float32{1, 5}, code)
	if d > 1e-6 {
		t.Fatalf("distance to own code in constant dim = %v", d)
	}
}

func TestHNSWLayer0Connectivity(t *testing.T) {
	// Every node must be reachable from the entry point on layer 0 —
	// otherwise some vectors are permanently unfindable.
	vecs, ids, _, _ := testData(t, 800, 1, 16, 1, 21)
	idx, err := New(HNSW, linalg.L2, 16, BuildParams{HNSWM: 8, EfConstruction: 64, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
		t.Fatal(err)
	}
	h := idx.(*hnsw)
	visited := make([]bool, len(vecs))
	queue := []int{h.entry}
	visited[h.entry] = true
	count := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		count++
		for _, nb := range h.links[n][0] {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, int(nb))
			}
		}
	}
	if count != len(vecs) {
		t.Fatalf("layer 0 reaches %d of %d nodes", count, len(vecs))
	}
}

func TestHNSWLevelDistribution(t *testing.T) {
	// Levels follow a geometric-ish decay: level 0 must dominate.
	vecs, ids, _, _ := testData(t, 1000, 1, 8, 1, 22)
	idx, err := New(HNSW, linalg.L2, 8, BuildParams{HNSWM: 16, EfConstruction: 32, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
		t.Fatal(err)
	}
	h := idx.(*hnsw)
	level0 := 0
	for _, l := range h.levels {
		if l == 0 {
			level0++
		}
	}
	if level0 < len(vecs)/2 {
		t.Fatalf("only %d of %d nodes at level 0", level0, len(vecs))
	}
	if h.maxLevel < 1 {
		t.Fatalf("graph never grew above level 0 (maxLevel %d)", h.maxLevel)
	}
}

func TestHNSWDegreeBounds(t *testing.T) {
	// After pruning, no node exceeds 2M links at layer 0 or M above.
	vecs, ids, _, _ := testData(t, 600, 1, 8, 1, 23)
	m := 8
	idx, err := New(HNSW, linalg.L2, 8, BuildParams{HNSWM: m, EfConstruction: 48, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
		t.Fatal(err)
	}
	h := idx.(*hnsw)
	for node, perLayer := range h.links {
		for l, nbs := range perLayer {
			limit := m
			if l == 0 {
				// Layer 0 allows 2M, plus a small slack for
				// connectivity-repair links added after pruning.
				limit = 2*m + 4
			}
			if len(nbs) > limit {
				t.Fatalf("node %d layer %d has %d links (limit %d)", node, l, len(nbs), limit)
			}
		}
	}
}

func TestPQCodeWidth(t *testing.T) {
	// Codes must stay within 2^nbits.
	vecs, ids, _, _ := testData(t, 400, 1, 16, 1, 24)
	idx, err := New(IVFPQ, linalg.L2, 16, BuildParams{NList: 8, M: 4, NBits: 5, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
		t.Fatal(err)
	}
	pq := idx.(*ivfPQ)
	if pq.codes8 == nil || pq.codes16 != nil {
		t.Fatalf("ksubN=%d should pack 1-byte codes (codes8=%v codes16=%v)",
			pq.ksubN, pq.codes8 != nil, pq.codes16 != nil)
	}
	limit := uint16(1) << pq.nbits
	for i := range pq.ids {
		for s, c := range pq.codes8[i*pq.m : (i+1)*pq.m] {
			if uint16(c) >= limit {
				t.Fatalf("vector %d subspace %d code %d >= %d", i, s, c, limit)
			}
		}
	}
}

func TestTopKQuickProperty(t *testing.T) {
	// quick.Check: TopK results are always the k smallest values.
	f := func(vals []float32) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		k := 3
		top := linalg.NewTopK(k)
		for i, v := range clean {
			top.Push(int64(i), v)
		}
		res := top.Results()
		sorted := append([]float32(nil), clean...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, r := range res {
			if r.Dist != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPQBuildDistCompsFormula pins the codebook-training cost charged by
// ivfPQ.Build: the full-dimension-equivalent comparisons on top of the
// shared coarse training are exactly n*ksubN (m subspace passes of n*ksubN
// comparisons, each touching subDim = dim/m of the dimensions), and
// encoding charges one code-domain pass over the corpus.
func TestPQBuildDistCompsFormula(t *testing.T) {
	vecs, ids, _, _ := testData(t, 900, 1, 16, 1, 41)
	store := linalg.MatrixFromRows(vecs)
	bp := BuildParams{NList: 16, M: 4, NBits: 6, Seed: 41}

	flat, err := New(IVFFlat, linalg.L2, 16, BuildParams{NList: bp.NList, Seed: bp.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Build(store, ids); err != nil {
		t.Fatal(err)
	}
	coarse := flat.BuildStats() // identical nlist/seed/workers → identical coarse cost

	idx, err := New(IVFPQ, linalg.L2, 16, bp)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Build(store, ids); err != nil {
		t.Fatal(err)
	}
	pq := idx.(*ivfPQ)
	st := idx.BuildStats()

	n := int64(len(vecs))
	wantDist := coarse.DistComps + n*int64(pq.ksubN)
	if st.DistComps != wantDist {
		t.Errorf("Build DistComps = %d, want coarse %d + n*ksubN %d = %d",
			st.DistComps, coarse.DistComps, n*int64(pq.ksubN), wantDist)
	}
	if st.CodeComps != coarse.CodeComps+n {
		t.Errorf("Build CodeComps = %d, want %d (one encode pass)", st.CodeComps, coarse.CodeComps+n)
	}
}

// TestPQWideCodesMultiMatchesSingle drives the 2-byte code path (nbits > 8
// trains ksubN > 256 codewords, so codes cannot pack to one byte) through
// the same multi≡single contract as the narrow path, and pins the width
// choice itself.
func TestPQWideCodesMultiMatchesSingle(t *testing.T) {
	const k = 10
	sp := SearchParams{NProbe: 4}
	vecs, ids, queries, _ := testData(t, 700, 64, 16, k, 42)
	idx, err := New(IVFPQ, linalg.L2, 16, BuildParams{NList: 16, M: 4, NBits: 9, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Build(linalg.MatrixFromRows(vecs), ids); err != nil {
		t.Fatal(err)
	}
	pq := idx.(*ivfPQ)
	if pq.ksubN <= 256 {
		t.Fatalf("nbits=9 trained only %d codewords; test needs ksubN > 256", pq.ksubN)
	}
	if pq.codes16 == nil || pq.codes8 != nil {
		t.Fatalf("ksubN=%d must pack 2-byte codes (codes8=%v codes16=%v)",
			pq.ksubN, pq.codes8 != nil, pq.codes16 != nil)
	}
	for _, qn := range []int{1, 7, 64} {
		qs := queries[:qn]
		var stSeq Stats
		want := make([][]linalg.Neighbor, qn)
		for i, q := range qs {
			top := linalg.NewTopK(k)
			idx.SearchInto(q, k, sp, &stSeq, top)
			want[i] = top.Results()
		}
		var stMulti Stats
		tops := make([]*linalg.TopK, qn)
		for i := range tops {
			tops[i] = linalg.NewTopK(k)
		}
		idx.SearchMultiInto(qs, k, sp, &stMulti, tops)
		if stMulti != stSeq {
			t.Errorf("qn=%d: multi stats %+v != sequential %+v", qn, stMulti, stSeq)
		}
		for i := range qs {
			if got := tops[i].Results(); !neighborsBitEqual(got, want[i]) {
				t.Errorf("qn=%d query %d: wide-code multi results diverge", qn, i)
			}
		}
	}
}
