package index

import (
	"os"
	"testing"

	"vdtuner/internal/linalg"
)

// The alloc gates: steady-state Search on the quantized and graph indexes
// must perform zero heap allocations per query beyond the caller-visible
// result slice, and SearchBatch only the documented batch-level constant.
// These tests are the regression fence for the pooled-scratch query path;
// `make ci` runs them in strict mode (ALLOC_GATE_STRICT=1), where the
// under-race skip becomes a failure so the gate cannot silently vanish
// from the pipeline.

// allocGateSkip skips under -race (instrumentation allocates) unless
// strict mode demands the gate actually ran.
func allocGateSkip(t *testing.T) {
	t.Helper()
	if !raceEnabled {
		return
	}
	if os.Getenv("ALLOC_GATE_STRICT") != "" {
		t.Fatal("alloc-gate tests cannot run under -race, but ALLOC_GATE_STRICT is set; run them without -race")
	}
	t.Skip("alloc accounting is skewed by -race instrumentation")
}

// allocCases are the index types the issue gates. FLAT and SCANN ride
// along: they share the same scratch machinery.
var allocCases = []struct {
	name string
	typ  Type
	bp   BuildParams
	sp   SearchParams
}{
	{"HNSW", HNSW, BuildParams{HNSWM: 12, EfConstruction: 80, Seed: 31}, SearchParams{Ef: 48}},
	{"IVF_FLAT", IVFFlat, BuildParams{NList: 32, Seed: 31}, SearchParams{NProbe: 8}},
	{"IVF_PQ", IVFPQ, BuildParams{NList: 16, M: 8, NBits: 6, Seed: 31}, SearchParams{NProbe: 8}},
	{"IVF_PQ_wide", IVFPQ, BuildParams{NList: 16, M: 8, NBits: 9, Seed: 31}, SearchParams{NProbe: 8}},
	{"IVF_SQ8", IVFSQ8, BuildParams{NList: 32, Seed: 31}, SearchParams{NProbe: 8}},
	{"FLAT", Flat, BuildParams{}, SearchParams{}},
	{"SCANN", SCANN, BuildParams{NList: 32, Seed: 31}, SearchParams{NProbe: 8, ReorderK: 30}},
}

// TestAllocGateSearch asserts the per-query allocation budget of Search:
// exactly the one caller-visible result slice, nothing else.
func TestAllocGateSearch(t *testing.T) {
	allocGateSkip(t)
	vecs, ids, queries, _ := testData(t, 1500, 16, 32, 10, 33)
	store := linalg.MatrixFromRows(vecs)
	for _, tc := range allocCases {
		t.Run(tc.name, func(t *testing.T) {
			idx, err := New(tc.typ, linalg.L2, 32, tc.bp)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.Build(store, ids); err != nil {
				t.Fatal(err)
			}
			// One run sweeps the whole query set, so the implicit warm-up
			// run reaches every buffer's high-water mark before counting.
			perRun := testing.AllocsPerRun(20, func() {
				for _, q := range queries {
					idx.Search(q, 10, tc.sp, nil)
				}
			})
			perQuery := perRun / float64(len(queries))
			// Budget: the returned neighbor slice and its heap header —
			// at most one allocation per query.
			if perQuery > 1 {
				t.Fatalf("%s Search allocates %.2f objects/query, want <= 1 (the result slice)", tc.name, perQuery)
			}
		})
	}
}

// TestAllocGateSearchBatch asserts the batch path's budget: per-query
// result slices plus a small documented batch-level constant (result
// matrix, per-query stats slots, per-worker scratch checkout).
func TestAllocGateSearchBatch(t *testing.T) {
	allocGateSkip(t)
	vecs, ids, queries, _ := testData(t, 1500, 16, 32, 10, 34)
	store := linalg.MatrixFromRows(vecs)
	for _, tc := range allocCases {
		t.Run(tc.name, func(t *testing.T) {
			idx, err := New(tc.typ, linalg.L2, 32, tc.bp)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.Build(store, ids); err != nil {
				t.Fatal(err)
			}
			sp := tc.sp
			sp.Workers = 1 // deterministic worker count for the budget
			perRun := testing.AllocsPerRun(20, func() {
				idx.SearchBatch(queries, 10, sp, nil)
			})
			// Budget: one result slice per query + 4 batch-level
			// allocations (out, per-query stats, scratch table, heap
			// growth slack).
			budget := float64(len(queries) + 4)
			if perRun > budget {
				t.Fatalf("%s SearchBatch allocates %.1f objects/batch, want <= %.0f", tc.name, perRun, budget)
			}
		})
	}
}

// TestAllocGateSearchMultiInto asserts the tiled multi-query path is
// zero-alloc in steady state: all tile scratch (distance matrices, probe
// tables, cell inversions) comes from the pooled searchScratch, so a warm
// SearchMultiInto call allocates nothing regardless of tile width.
func TestAllocGateSearchMultiInto(t *testing.T) {
	allocGateSkip(t)
	vecs, ids, queries, _ := testData(t, 1500, 16, 32, 10, 36)
	store := linalg.MatrixFromRows(vecs)
	for _, tc := range allocCases {
		t.Run(tc.name, func(t *testing.T) {
			idx, err := New(tc.typ, linalg.L2, 32, tc.bp)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.Build(store, ids); err != nil {
				t.Fatal(err)
			}
			tops := make([]*linalg.TopK, len(queries))
			for i := range tops {
				tops[i] = linalg.NewTopK(10)
			}
			perRun := testing.AllocsPerRun(20, func() {
				for i := range tops {
					tops[i].Reset(10)
				}
				idx.SearchMultiInto(queries, 10, tc.sp, nil, tops)
			})
			if perRun > 0 {
				t.Fatalf("%s SearchMultiInto allocates %.1f objects/batch, want 0 (pooled scratch)", tc.name, perRun)
			}
		})
	}
}

// TestScratchReuseIsDeterministic asserts that scratch pooling cannot leak
// state between queries: repeated Searches of the same query return
// bit-identical results, interleaved with other queries that dirty the
// pooled buffers.
func TestScratchReuseIsDeterministic(t *testing.T) {
	vecs, ids, queries, _ := testData(t, 1200, 12, 32, 10, 35)
	store := linalg.MatrixFromRows(vecs)
	for _, tc := range allocCases {
		t.Run(tc.name, func(t *testing.T) {
			idx, err := New(tc.typ, linalg.L2, 32, tc.bp)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.Build(store, ids); err != nil {
				t.Fatal(err)
			}
			var first [][]linalg.Neighbor
			for _, q := range queries {
				first = append(first, idx.Search(q, 10, tc.sp, nil))
			}
			for round := 0; round < 3; round++ {
				for qi, q := range queries {
					got := idx.Search(q, 10, tc.sp, nil)
					if len(got) != len(first[qi]) {
						t.Fatalf("round %d query %d: %d results, first run had %d", round, qi, len(got), len(first[qi]))
					}
					for i := range got {
						if got[i] != first[qi][i] {
							t.Fatalf("round %d query %d result %d: %+v != first run %+v",
								round, qi, i, got[i], first[qi][i])
						}
					}
				}
			}
		})
	}
}
