// Package index implements the approximate-nearest-neighbor index types the
// tuner chooses between, mirroring Milvus' supported indexes (paper Table I):
//
//	FLAT       exhaustive scan                        (no parameters)
//	IVF_FLAT   inverted file over k-means cells       (nlist; nprobe)
//	IVF_SQ8    IVF with 8-bit scalar quantization     (nlist; nprobe)
//	IVF_PQ     IVF with product quantization          (nlist, m, nbits; nprobe)
//	HNSW       hierarchical navigable small world     (M, efConstruction; ef)
//	SCANN      quantized IVF with exact re-ranking    (nlist; nprobe, reorder_k)
//	AUTOINDEX  a fixed default configuration
//
// Every index counts the work it performs (full-precision distance
// computations, quantized-code computations, PQ table lookups) in a Stats
// value. The vdms engine converts those counts into a deterministic
// simulated latency, which is what makes tuning runs reproducible; see
// DESIGN.md ("Substitutions").
//
// Angular metrics are handled upstream: the engine normalizes vectors and
// builds indexes with the L2 metric, which ranks identically on unit
// vectors. Indexes therefore support L2 and InnerProduct.
//
// # Concurrency model
//
// Build parallelizes its training and encoding phases over
// BuildParams.Workers goroutines, and SearchBatch fans a query batch over
// SearchParams.Workers goroutines. Both are deterministic: parallel work
// is chunked independently of the worker count and per-chunk results
// (including Stats) are reduced in chunk order, so workers=1 and
// workers=N produce identical indexes, identical results, and identical
// accounting — see the parallel package. A built index is immutable;
// Search and SearchBatch are safe for arbitrary concurrent use. Build
// itself is not reentrant (it may be called once, by one goroutine).
//
// # Memory layout and the query path
//
// Vectors live in flat arenas (linalg.Matrix): one []float32 with
// stride=dim, scanned by the blocked kernels in linalg. The IVF family
// additionally groups rows cell-major, so each posting list is one
// contiguous row range. All transient query state (visited sets, beams,
// top-k heaps, ADC tables, probe orders) comes from a pooled searchScratch
// (see scratch.go): steady-state Search performs zero heap allocations
// beyond the caller-visible result slice, which the alloc-gate tests in
// alloc_test.go enforce.
package index

import (
	"fmt"

	"vdtuner/internal/linalg"
)

// Type enumerates the supported index types.
type Type int

const (
	Flat Type = iota
	IVFFlat
	IVFSQ8
	IVFPQ
	HNSW
	SCANN
	AutoIndex
	numTypes
)

// AllTypes lists every selectable index type in a stable order.
func AllTypes() []Type {
	return []Type{Flat, IVFFlat, IVFSQ8, IVFPQ, HNSW, SCANN, AutoIndex}
}

// String returns the Milvus-style name of the index type.
func (t Type) String() string {
	switch t {
	case Flat:
		return "FLAT"
	case IVFFlat:
		return "IVF_FLAT"
	case IVFSQ8:
		return "IVF_SQ8"
	case IVFPQ:
		return "IVF_PQ"
	case HNSW:
		return "HNSW"
	case SCANN:
		return "SCANN"
	case AutoIndex:
		return "AUTOINDEX"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType maps a Milvus-style name back to a Type.
func ParseType(s string) (Type, error) {
	for _, t := range AllTypes() {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("index: unknown type %q", s)
}

// BuildParams carries every build-time parameter of every index type; each
// implementation reads only the fields it owns (paper Table I). Zero fields
// fall back to per-type defaults.
type BuildParams struct {
	// NList is the number of IVF cells (IVF_FLAT, IVF_SQ8, IVF_PQ, SCANN).
	NList int
	// M is the number of PQ subquantizers (IVF_PQ). It must divide the
	// dimension; the constructor rounds it down to the nearest divisor.
	M int
	// NBits is the PQ code width in bits (IVF_PQ), 4..12.
	NBits int
	// HNSWM is the HNSW graph degree (paper parameter "M"; renamed here to
	// avoid colliding with the PQ field).
	HNSWM int
	// EfConstruction is the HNSW build-time beam width.
	EfConstruction int
	// Seed makes training deterministic.
	Seed int64
	// Workers is the build worker-pool size; <= 0 means one worker per
	// CPU. Builds are deterministic for any value: parallel phases chunk
	// work independently of the worker count and reduce in chunk order,
	// so workers=1 and workers=N produce identical structures and Stats.
	Workers int
}

// SearchParams carries every query-time parameter of every index type.
type SearchParams struct {
	// NProbe is the number of IVF cells scanned (IVF family, SCANN).
	NProbe int
	// Ef is the HNSW query-time beam width.
	Ef int
	// ReorderK is the number of quantized candidates re-ranked exactly
	// (SCANN).
	ReorderK int
	// Workers is the fan-out of SearchBatch; <= 0 means one worker per
	// CPU. Single-query Search ignores it. Results and Stats are
	// identical for any value.
	Workers int
}

// Stats counts the work performed by a build or a search. The engine turns
// these counts into simulated time; per-unit costs live in the vdms package.
type Stats struct {
	// DistComps counts full-precision, full-dimension distance computations.
	DistComps int64
	// CodeComps counts quantized-domain distance computations (cheaper:
	// byte-wide memory traffic).
	CodeComps int64
	// Lookups counts PQ ADC table lookups (one per subquantizer per
	// candidate).
	Lookups int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.DistComps += o.DistComps
	s.CodeComps += o.CodeComps
	s.Lookups += o.Lookups
}

// Index is a built ANN structure over one immutable set of vectors
// (one sealed segment in the engine).
type Index interface {
	// Type identifies the index algorithm.
	Type() Type
	// Build trains and populates the index from a flat vector arena.
	// ids[i] labels store.Row(i); the lengths must match and the store
	// must be packed (stride == dim; Slice views qualify, SubspaceView
	// views do not). The index adopts (and may retain) the store, which
	// must not be mutated afterwards. Build may be called once.
	Build(store *linalg.Matrix, ids []int64) error
	// StoreAdopted reports whether Build retained the caller's arena as
	// its own vector storage (graph/flat indexes) rather than copying
	// what it needs (the IVF family re-groups payloads cell-major into
	// private storage). The engine uses it to account retained segment
	// binlogs exactly once.
	StoreAdopted() bool
	// Search returns up to k nearest neighbors of q, accumulating the
	// work performed into st (which may be nil).
	Search(q []float32, k int, p SearchParams, st *Stats) []linalg.Neighbor
	// SearchInto offers the candidates Search(q, k, p, st) would return to
	// the caller-owned collector instead of materializing a result slice
	// (exhaustive indexes may offer every stored row). For a collector of
	// capacity >= k the surviving set is exactly Search's result set, with
	// the same first-offered-wins tie handling; the call performs no heap
	// allocation at steady state. The engine's scatter-gather path uses it
	// to merge per-segment and per-shard probes without per-probe slices.
	SearchInto(q []float32, k int, p SearchParams, st *Stats, top *linalg.TopK)
	// SearchMultiInto answers queries[i] into collector tops[i]. For
	// every i the offered candidate sequence — and therefore the
	// surviving set, tie handling included — is exactly
	// SearchInto(queries[i], k, p, st, tops[i])'s, and st accumulates
	// exactly the sum of the per-query calls. Arena-scanning indexes
	// (FLAT, the IVF family's posting lists and coarse quantizer) share
	// one streaming pass over each cache-resident row tile across the
	// whole query tile (the multi-query blocked kernels in linalg);
	// graph-traversal paths fall back to per-query probes.
	SearchMultiInto(queries [][]float32, k int, p SearchParams, st *Stats, tops []*linalg.TopK)
	// SearchBatch answers queries[i] into result slot i, fanning the
	// batch across p.Workers goroutines (built indexes are immutable, so
	// concurrent probes are safe). Per-query work is accumulated into
	// per-worker Stats and merged into st at the end, keeping the
	// distance-comp accounting exactly equal to k sequential Searches.
	SearchBatch(queries [][]float32, k int, p SearchParams, st *Stats) [][]linalg.Neighbor
	// MemoryBytes reports the resident size of the built structure.
	MemoryBytes() int64
	// BuildStats reports the work performed by Build.
	BuildStats() Stats
}

// New constructs an unbuilt index of the given type for vectors of the
// given dimension under metric m.
func New(t Type, m linalg.Metric, dim int, p BuildParams) (Index, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("index: dimension must be positive, got %d", dim)
	}
	switch t {
	case Flat:
		return newFlat(m, dim), nil
	case IVFFlat:
		return newIVFFlat(m, dim, p)
	case IVFSQ8:
		return newIVFSQ8(m, dim, p)
	case IVFPQ:
		return newIVFPQ(m, dim, p)
	case HNSW:
		return newHNSW(m, dim, p)
	case SCANN:
		return newSCANN(m, dim, p)
	case AutoIndex:
		return newAutoIndex(m, dim, p)
	default:
		return nil, fmt.Errorf("index: unknown type %v", t)
	}
}

// accumulate adds o into st when st is non-nil.
func accumulate(st *Stats, o Stats) {
	if st != nil {
		st.Add(o)
	}
}

const float32Bytes = 4
