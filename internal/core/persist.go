package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"vdtuner/internal/index"
	"vdtuner/internal/space"
	"vdtuner/internal/vdms"
)

// The knowledge base (Figure 5's "Knowledge Base" box): tuning
// observations serialized as JSON so a later run — possibly with a
// different recall preference — can bootstrap from them (§IV-F).

// kbFile is the on-disk schema of a knowledge base.
type kbFile struct {
	Version      int      `json:"version"`
	Observations []kbObs  `json:"observations"`
	Comment      string   `json:"comment,omitempty"`
	Datasets     []string `json:"datasets,omitempty"`
}

// kbObs flattens one observation.
type kbObs struct {
	IndexType string         `json:"index_type"`
	Config    kbConfig       `json:"config"`
	X         []float64      `json:"x"`
	ObjA      float64        `json:"obj_a"`
	ObjB      float64        `json:"obj_b"`
	Result    vdmsResultWire `json:"result"`
}

// kbConfig mirrors vdms.Config with stable JSON names.
type kbConfig struct {
	IndexType      string  `json:"index_type"`
	NList          int     `json:"nlist"`
	M              int     `json:"m"`
	NBits          int     `json:"nbits"`
	HNSWM          int     `json:"M"`
	EfConstruction int     `json:"efConstruction"`
	NProbe         int     `json:"nprobe"`
	Ef             int     `json:"ef"`
	ReorderK       int     `json:"reorder_k"`
	SegmentMaxSize float64 `json:"segment_maxSize"`
	SealProportion float64 `json:"segment_sealProportion"`
	GracefulTime   float64 `json:"gracefulTime"`
	InsertBufSize  float64 `json:"insertBufSize"`
	Parallelism    int     `json:"queryNode_parallelism"`
	CacheRatio     float64 `json:"queryNode_cacheRatio"`
	FlushInterval  float64 `json:"flushInterval"`
	// Compaction knobs; omitted (zero) in knowledge bases written before
	// the compactor existed, which the engine reads as its defaults.
	CompactionTriggerRatio float64 `json:"compaction_triggerRatio,omitempty"`
	CompactionMergeFanIn   int     `json:"compaction_mergeFanIn,omitempty"`
	CompactionParallelism  int     `json:"compaction_parallelism,omitempty"`
	// Durability knobs; likewise omitted (zero, meaning engine default)
	// in knowledge bases written before persistence existed.
	WALFsyncPolicy int `json:"wal_fsyncPolicy,omitempty"`
	WALGroupCommit int `json:"wal_groupCommit,omitempty"`
	// Sharding knob; likewise omitted (zero, meaning engine default of 1)
	// in knowledge bases written before the live engine was sharded.
	ShardCount int `json:"shard_count,omitempty"`

	Concurrency int `json:"concurrency,omitempty"`
}

type vdmsResultWire struct {
	QPS           float64 `json:"qps"`
	Recall        float64 `json:"recall"`
	MemoryBytes   int64   `json:"memory_bytes"`
	BuildSeconds  float64 `json:"build_seconds"`
	ReplaySeconds float64 `json:"replay_seconds"`
	Failed        bool    `json:"failed,omitempty"`
	FailReason    string  `json:"fail_reason,omitempty"`
}

func toWireConfig(c vdms.Config) kbConfig {
	return kbConfig{
		IndexType:      c.IndexType.String(),
		NList:          c.Build.NList,
		M:              c.Build.M,
		NBits:          c.Build.NBits,
		HNSWM:          c.Build.HNSWM,
		EfConstruction: c.Build.EfConstruction,
		NProbe:         c.Search.NProbe,
		Ef:             c.Search.Ef,
		ReorderK:       c.Search.ReorderK,
		SegmentMaxSize: c.SegmentMaxSize,
		SealProportion: c.SealProportion,
		GracefulTime:   c.GracefulTime,
		InsertBufSize:  c.InsertBufSize,
		Parallelism:    c.Parallelism,
		CacheRatio:     c.CacheRatio,
		FlushInterval:  c.FlushInterval,

		CompactionTriggerRatio: c.CompactionTriggerRatio,
		CompactionMergeFanIn:   c.CompactionMergeFanIn,
		CompactionParallelism:  c.CompactionParallelism,

		WALFsyncPolicy: c.WALFsyncPolicy,
		WALGroupCommit: c.WALGroupCommit,

		ShardCount: c.ShardCount,

		Concurrency: c.Concurrency,
	}
}

func fromWireConfig(k kbConfig) (vdms.Config, error) {
	t, err := index.ParseType(k.IndexType)
	if err != nil {
		return vdms.Config{}, err
	}
	cfg := vdms.Config{
		IndexType:      t,
		SegmentMaxSize: k.SegmentMaxSize,
		SealProportion: k.SealProportion,
		GracefulTime:   k.GracefulTime,
		InsertBufSize:  k.InsertBufSize,
		Parallelism:    k.Parallelism,
		CacheRatio:     k.CacheRatio,
		FlushInterval:  k.FlushInterval,

		CompactionTriggerRatio: k.CompactionTriggerRatio,
		CompactionMergeFanIn:   k.CompactionMergeFanIn,
		CompactionParallelism:  k.CompactionParallelism,

		WALFsyncPolicy: k.WALFsyncPolicy,
		WALGroupCommit: k.WALGroupCommit,

		ShardCount: k.ShardCount,

		Concurrency: k.Concurrency,
	}
	cfg.Build.NList = k.NList
	cfg.Build.M = k.M
	cfg.Build.NBits = k.NBits
	cfg.Build.HNSWM = k.HNSWM
	cfg.Build.EfConstruction = k.EfConstruction
	cfg.Search.NProbe = k.NProbe
	cfg.Search.Ef = k.Ef
	cfg.Search.ReorderK = k.ReorderK
	return cfg, nil
}

// SaveObservations writes observations as a JSON knowledge base.
func SaveObservations(w io.Writer, obs []Observation) error {
	f := kbFile{Version: 1}
	for _, o := range obs {
		f.Observations = append(f.Observations, kbObs{
			IndexType: o.Type.String(),
			Config:    toWireConfig(o.Config),
			X:         o.X,
			ObjA:      o.ObjA,
			ObjB:      o.ObjB,
			Result: vdmsResultWire{
				QPS: o.Result.QPS, Recall: o.Result.Recall,
				MemoryBytes:  o.Result.MemoryBytes,
				BuildSeconds: o.Result.BuildSeconds, ReplaySeconds: o.Result.ReplaySeconds,
				Failed: o.Result.Failed, FailReason: o.Result.FailReason,
			},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// LoadObservations reads a JSON knowledge base back into observations
// suitable for Options.Bootstrap.
func LoadObservations(r io.Reader) ([]Observation, error) {
	var f kbFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding knowledge base: %w", err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("core: unsupported knowledge base version %d", f.Version)
	}
	var out []Observation
	for i, ko := range f.Observations {
		cfg, err := fromWireConfig(ko.Config)
		if err != nil {
			return nil, fmt.Errorf("core: observation %d: %w", i, err)
		}
		t, err := index.ParseType(ko.IndexType)
		if err != nil {
			return nil, fmt.Errorf("core: observation %d: %w", i, err)
		}
		x := space.Vector(ko.X)
		if len(x) != space.Dims {
			// Re-encode from the config when the vector is missing or
			// from a different space layout.
			x = space.Encode(cfg)
		}
		out = append(out, Observation{
			Config: cfg, X: x, Type: t, ObjA: ko.ObjA, ObjB: ko.ObjB,
			Result: vdms.Result{
				QPS: ko.Result.QPS, Recall: ko.Result.Recall,
				MemoryBytes:  ko.Result.MemoryBytes,
				BuildSeconds: ko.Result.BuildSeconds, ReplaySeconds: ko.Result.ReplaySeconds,
				Failed: ko.Result.Failed, FailReason: ko.Result.FailReason,
			},
		})
	}
	return out, nil
}

// SaveKnowledgeBase writes the tuner's observations to path.
func (t *Tuner) SaveKnowledgeBase(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveObservations(f, t.obs); err != nil {
		return err
	}
	return f.Close()
}

// LoadKnowledgeBase reads observations from path, for Options.Bootstrap.
func LoadKnowledgeBase(path string) ([]Observation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadObservations(f)
}
