package core

import (
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/mobo"
	"vdtuner/internal/space"
	"vdtuner/internal/vdms"
	"vdtuner/internal/workload"
)

func smallDataset(t testing.TB) *workload.Dataset {
	t.Helper()
	ds, err := workload.Load(workload.Spec{
		Name: "core-test", N: 1200, NQ: 20, Dim: 24, K: 10,
		Clusters: 12, ClusterStd: 0.4, Correlated: true, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// drive runs a Next/Observe loop against the real engine.
func drive(t testing.TB, tn *Tuner, ds *workload.Dataset, iters int) {
	t.Helper()
	for i := 0; i < iters; i++ {
		cfg := tn.Next()
		res := vdms.Evaluate(ds, cfg)
		tn.Observe(cfg, res)
	}
}

func TestInitialSamplingCoversAllTypes(t *testing.T) {
	ds := smallDataset(t)
	tn := New(Options{Seed: 1})
	drive(t, tn, ds, len(index.AllTypes()))
	seen := map[index.Type]bool{}
	for _, o := range tn.Observations() {
		seen[o.Type] = true
	}
	for _, typ := range index.AllTypes() {
		if !seen[typ] {
			t.Fatalf("initial sampling missed %v", typ)
		}
	}
}

func TestTuningImprovesOverDefault(t *testing.T) {
	ds := smallDataset(t)
	def := vdms.Evaluate(ds, vdms.DefaultConfig())
	if def.Failed {
		t.Fatalf("default failed: %s", def.FailReason)
	}
	tn := New(Options{Seed: 2, AbandonWindow: 6, Candidates: 96, MCSamples: 24})
	drive(t, tn, ds, 40)
	best, ok := tn.BestUnderRecall(def.Recall - 1e-9)
	if !ok {
		t.Fatal("no configuration at default recall level found")
	}
	if best.ObjA <= def.QPS {
		t.Fatalf("tuned QPS %v not above default %v (recall %v vs %v)",
			best.ObjA, def.QPS, best.Result.Recall, def.Recall)
	}
}

func TestSuccessiveAbandonShrinksTypes(t *testing.T) {
	ds := smallDataset(t)
	tn := New(Options{Seed: 3, AbandonWindow: 3, Candidates: 64, MCSamples: 16})
	drive(t, tn, ds, 45)
	if len(tn.Remaining()) >= len(index.AllTypes()) {
		t.Fatalf("no index type abandoned after 45 iterations (remaining %v)", tn.Remaining())
	}
	if len(tn.Remaining())+len(tn.Abandoned()) != len(index.AllTypes()) {
		t.Fatalf("remaining %v + abandoned %v != all types", tn.Remaining(), tn.Abandoned())
	}
	if len(tn.Remaining()) < 1 {
		t.Fatal("tuner abandoned every type")
	}
}

func TestRoundRobinNeverAbandons(t *testing.T) {
	ds := smallDataset(t)
	tn := New(Options{Seed: 4, RoundRobin: true, AbandonWindow: 2, Candidates: 48, MCSamples: 8})
	drive(t, tn, ds, 30)
	if len(tn.Remaining()) != len(index.AllTypes()) {
		t.Fatalf("round-robin ablation abandoned types: %v", tn.Remaining())
	}
}

func TestPollingCyclesRemainingTypes(t *testing.T) {
	ds := smallDataset(t)
	tn := New(Options{Seed: 5, RoundRobin: true, Candidates: 32, MCSamples: 8})
	nTypes := len(index.AllTypes())
	drive(t, tn, ds, nTypes+nTypes) // init + one full polling cycle
	polled := tn.Observations()[nTypes:]
	seen := map[index.Type]int{}
	for _, o := range polled {
		seen[o.Type]++
	}
	for _, typ := range index.AllTypes() {
		if seen[typ] != 1 {
			t.Fatalf("polling cycle visited %v %d times, want 1", typ, seen[typ])
		}
	}
}

func TestConstraintModeFocusesOnFeasibleSpeed(t *testing.T) {
	ds := smallDataset(t)
	tn := New(Options{Seed: 6, RecallFloor: 0.8, Candidates: 64, MCSamples: 8, AbandonWindow: 5})
	drive(t, tn, ds, 35)
	best, ok := tn.BestUnderRecall(0.8)
	if !ok {
		t.Fatal("constraint mode found nothing above the floor")
	}
	if best.Result.Recall <= 0.8 {
		t.Fatalf("best feasible observation has recall %v", best.Result.Recall)
	}
}

func TestBootstrapWarmStart(t *testing.T) {
	ds := smallDataset(t)
	first := New(Options{Seed: 7, RecallFloor: 0.7, Candidates: 48, MCSamples: 8})
	drive(t, first, ds, 20)
	second := New(Options{Seed: 8, RecallFloor: 0.85, Candidates: 48, MCSamples: 8,
		Bootstrap: first.Observations()})
	if len(second.Observations()) != len(first.Observations()) {
		t.Fatal("bootstrap observations not loaded")
	}
	drive(t, second, ds, 10)
	if len(second.Observations()) != len(first.Observations())+10 {
		t.Fatal("bootstrap run did not extend history")
	}
}

func TestFailedObservationsGetWorstValues(t *testing.T) {
	tn := New(Options{Seed: 9})
	good := vdms.Result{QPS: 100, Recall: 0.9}
	cfg := vdms.DefaultConfig()
	tn.Observe(cfg, good)
	tn.Observe(cfg, vdms.Result{Failed: true, FailReason: "boom"})
	obs := tn.Observations()
	failed := obs[len(obs)-1]
	if failed.ObjA > 100 || failed.ObjB > 0.9 {
		t.Fatalf("failed observation got non-worst values: %+v", failed)
	}
	if failed.ObjA <= 0 || failed.ObjB <= 0 {
		t.Fatalf("failed observation got non-positive values: %+v", failed)
	}
}

func TestCostAwareObjective(t *testing.T) {
	tn := New(Options{Seed: 10, CostAware: true})
	res := vdms.Result{QPS: 100, Recall: 0.9, MemoryBytes: 1 << 30}
	tn.Observe(vdms.DefaultConfig(), res)
	o := tn.Observations()[0]
	want := CostEffectiveness(res)
	if o.ObjA != want {
		t.Fatalf("cost-aware objective = %v, want %v", o.ObjA, want)
	}
	if want >= res.QPS {
		t.Fatalf("QP$ %v not smaller than QPS for a >1 GiB-eq footprint", want)
	}
}

func TestBalancedBase(t *testing.T) {
	// Of the front points, (3,3) is perfectly balanced once normalized
	// by the maxima (5,5): |3/5-3/5| = 0.
	ps := []mobo.Point{{A: 5, B: 1}, {A: 3, B: 3}, {A: 1, B: 5}, {A: 0.5, B: 0.5}}
	b := balancedBase(ps)
	if b.a != 3 || b.b != 3 {
		t.Fatalf("balancedBase = %+v, want (3,3)", b)
	}
}

func TestBalancedBaseEmpty(t *testing.T) {
	b := balancedBase(nil)
	if b.a <= 0 || b.b <= 0 {
		t.Fatalf("empty base not sane: %+v", b)
	}
}

func TestMaxBase(t *testing.T) {
	b := maxBase([]mobo.Point{{A: 5, B: 1}, {A: 1, B: 5}})
	if b.a != 5 || b.b != 5 {
		t.Fatalf("maxBase = %+v", b)
	}
}

func TestNormalizedPointsPerTypeScale(t *testing.T) {
	tn := New(Options{Seed: 11})
	cfgA := vdms.DefaultConfig()
	cfgA.IndexType = index.HNSW
	cfgB := vdms.DefaultConfig()
	cfgB.IndexType = index.SCANN
	// HNSW observations are 10x SCANN's in speed; NPI must erase the gap.
	tn.Observe(cfgA, vdms.Result{QPS: 1000, Recall: 0.9})
	tn.Observe(cfgB, vdms.Result{QPS: 100, Recall: 0.9})
	norm, _ := tn.normalizedPoints()
	if norm[0].A != 1 || norm[1].A != 1 {
		t.Fatalf("single-observation types must normalize to 1: %+v", norm)
	}
}

func TestNativeSurrogateSharedScale(t *testing.T) {
	tn := New(Options{Seed: 12, NativeSurrogate: true})
	cfg := vdms.DefaultConfig()
	tn.Observe(cfg, vdms.Result{QPS: 1000, Recall: 0.5})
	cfg.IndexType = index.SCANN
	tn.Observe(cfg, vdms.Result{QPS: 100, Recall: 1.0})
	norm, _ := tn.normalizedPoints()
	if norm[1].A != 0.1 {
		t.Fatalf("native surrogate must keep the global scale: %+v", norm)
	}
}

func TestScoreTypesRewardsContributors(t *testing.T) {
	tn := New(Options{Seed: 13})
	mk := func(typ index.Type, qps, rec float64) {
		cfg := vdms.DefaultConfig()
		cfg.IndexType = typ
		tn.Observe(cfg, vdms.Result{QPS: qps, Recall: rec})
	}
	// SCANN contributes the speed end of the front, HNSW the recall end,
	// FLAT contributes a dominated point.
	mk(index.SCANN, 1000, 0.80)
	mk(index.HNSW, 600, 0.99)
	mk(index.Flat, 100, 0.70)
	scores := tn.scoreTypes()
	if scores[index.SCANN] <= scores[index.Flat] {
		t.Fatalf("front contributor scored below dominated type: %v", scores)
	}
	if scores[index.Flat] != 0 {
		t.Fatalf("non-contributor score = %v, want 0", scores[index.Flat])
	}
}

func TestParetoFrontSkipsFailures(t *testing.T) {
	obs := []Observation{
		{ObjA: 10, ObjB: 0.9, Result: vdms.Result{QPS: 10, Recall: 0.9}},
		{ObjA: 99, ObjB: 0.99, Result: vdms.Result{Failed: true}},
	}
	front := ParetoFront(obs)
	if len(front) != 1 || front[0].ObjA != 10 {
		t.Fatalf("front = %+v", front)
	}
}

func TestBestUnderRecallBoundary(t *testing.T) {
	obs := []Observation{
		{ObjA: 100, ObjB: 0.85, Result: vdms.Result{QPS: 100, Recall: 0.85}},
		{ObjA: 50, ObjB: 0.95, Result: vdms.Result{QPS: 50, Recall: 0.95}},
	}
	// Floor exactly at 0.85 excludes the first (strictly-above rule).
	best, ok := BestUnderRecall(obs, 0.85)
	if !ok || best.ObjA != 50 {
		t.Fatalf("best = %+v, ok=%v", best, ok)
	}
	if _, ok := BestUnderRecall(obs, 0.99); ok {
		t.Fatal("found an observation above an unreachable floor")
	}
}

func TestNextDeterministicPerSeed(t *testing.T) {
	a := New(Options{Seed: 14})
	b := New(Options{Seed: 14})
	for i := 0; i < 3; i++ {
		ca, cb := a.Next(), b.Next()
		if ca != cb {
			t.Fatalf("iteration %d diverged:\n%+v\n%+v", i, ca, cb)
		}
		res := vdms.Result{QPS: float64(10 * (i + 1)), Recall: 0.5}
		a.Observe(ca, res)
		b.Observe(cb, res)
	}
}

func TestObserveWithoutNextEncodes(t *testing.T) {
	tn := New(Options{Seed: 15})
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.IVFFlat
	tn.Observe(cfg, vdms.Result{QPS: 5, Recall: 0.5})
	o := tn.Observations()[0]
	if len(o.X) != space.Dims {
		t.Fatalf("encoded vector has %d dims", len(o.X))
	}
	if o.Type != index.IVFFlat {
		t.Fatalf("type = %v", o.Type)
	}
}

func TestMemGiBPositive(t *testing.T) {
	if MemGiB(0) <= 0 {
		t.Fatal("MemGiB(0) not positive")
	}
	if MemGiB(1<<30) <= MemGiB(1<<20) {
		t.Fatal("MemGiB not monotone")
	}
}
