package core

import "vdtuner/internal/mobo"

// ParetoFront returns the non-dominated observations (objective A and B
// both maximized) among obs, skipping failed evaluations.
func ParetoFront(obs []Observation) []Observation {
	var ok []Observation
	for _, o := range obs {
		if !o.Result.Failed {
			ok = append(ok, o)
		}
	}
	idx := mobo.NonDominated(pointsOf(ok))
	out := make([]Observation, len(idx))
	for i, j := range idx {
		out[i] = ok[j]
	}
	return out
}

// BestUnderRecall returns the observation with the highest objective A
// among those with recall strictly above floor. ok is false when no
// observation qualifies.
func BestUnderRecall(obs []Observation, floor float64) (Observation, bool) {
	var best Observation
	found := false
	for _, o := range obs {
		if o.Result.Failed || o.Result.Recall <= floor {
			continue
		}
		if !found || o.ObjA > best.ObjA {
			best = o
			found = true
		}
	}
	return best, found
}

// ParetoFront returns the tuner's current non-dominated observations.
func (t *Tuner) ParetoFront() []Observation { return ParetoFront(t.obs) }

// BestUnderRecall returns the tuner's best-speed observation above the
// recall floor.
func (t *Tuner) BestUnderRecall(floor float64) (Observation, bool) {
	return BestUnderRecall(t.obs, floor)
}
