// Package core implements VDTuner, the paper's contribution (§IV): a
// multi-objective Bayesian optimization tuner for vector data management
// systems that
//
//   - learns one holistic surrogate over the union of every index type's
//     parameters plus the shared system parameters (§IV-A);
//   - polls one index type per iteration and recommends a configuration in
//     that type's subspace by expected hypervolume improvement (§IV-C);
//   - normalizes observations per index type (NPI, Eqs. 2–3) so that scale
//     differences between index types cannot trap the model (§IV-B);
//   - allocates budget by successively abandoning index types whose
//     hypervolume contribution (Eq. 6) stays worst for a window (§IV-D);
//   - supports user recall-rate preferences through a constrained EI
//     acquisition (Eq. 7) with bootstrapping from previous runs (§IV-F);
//   - supports cost-aware objectives (QP$, Eq. 8) by swapping the speed
//     objective for cost-effectiveness (§V-E).
package core

import (
	"math/rand"

	"vdtuner/internal/index"
	"vdtuner/internal/space"
	"vdtuner/internal/vdms"
)

// Observation is one evaluated configuration with its effective objectives
// (objective A is QPS, or QP$ in cost-aware mode; objective B is recall).
type Observation struct {
	Config vdms.Config
	X      space.Vector
	Type   index.Type
	ObjA   float64
	ObjB   float64
	Result vdms.Result
}

// Options configures a Tuner. The zero value plus a Seed is the paper's
// default full configuration; the ablation switches turn individual
// components off for the Figure 8 / §V-D studies.
type Options struct {
	// Seed drives all randomized choices; runs are deterministic per seed.
	Seed int64
	// AbandonWindow is the number of consecutive worst-score iterations
	// before an index type is abandoned (paper: 10). Zero means 10.
	AbandonWindow int
	// Candidates is the acquisition candidate-set size per iteration.
	// Zero means 160.
	Candidates int
	// MCSamples is the EHVI Monte Carlo sample count when MonteCarloEHVI
	// is set. Zero means 48.
	MCSamples int
	// MonteCarloEHVI selects the paper's Monte Carlo EHVI estimator
	// instead of the exact 2-D closed form. The two agree in expectation
	// (property-tested); the closed form is the default because it is
	// noise-free and faster.
	MonteCarloEHVI bool
	// RecallFloor, when positive, switches to the constraint model
	// (§IV-F): maximize speed subject to recall > RecallFloor via CEI.
	RecallFloor float64
	// CostAware replaces the speed objective by cost-effectiveness
	// QP$ = QPS / (η · memory GiB) (§V-E). η only rescales and is fixed
	// to 1, as in the paper.
	CostAware bool
	// Bootstrap warm-starts the model with observations from a previous
	// run (e.g. an earlier recall-floor setting; §IV-F).
	Bootstrap []Observation
	// NativeSurrogate disables NPI normalization (ablation, Fig. 8b).
	NativeSurrogate bool
	// RoundRobin disables successive abandonment (ablation, Fig. 8a).
	RoundRobin bool
	// FixedType, when non-nil, restricts tuning to a single index type
	// (the "optimize each index type individually" comparison, §V-D).
	FixedType *index.Type
}

func (o *Options) window() int {
	if o.AbandonWindow <= 0 {
		return 10
	}
	return o.AbandonWindow
}

func (o *Options) candidates() int {
	if o.Candidates <= 0 {
		return 160
	}
	return o.Candidates
}

func (o *Options) mcSamples() int {
	if o.MCSamples <= 0 {
		return 48
	}
	return o.MCSamples
}

// Tuner is VDTuner's polling Bayesian optimization engine (Algorithm 1).
// Drive it with alternating Next / Observe calls.
type Tuner struct {
	opts Options
	rng  *rand.Rand

	obs       []Observation
	remaining []index.Type
	pollPos   int

	// initQueue holds the initial per-type default configurations
	// (Algorithm 1 lines 1–5).
	initQueue []space.Vector
	// pending is the configuration handed out by the last Next call,
	// matched up in Observe.
	pending *space.Vector

	worstType   index.Type
	worstStreak int
	lastScores  map[index.Type]float64
	abandonLog  []index.Type
}

// New creates a tuner over the full index-type set.
func New(opts Options) *Tuner {
	t := &Tuner{
		opts:       opts,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		remaining:  index.AllTypes(),
		lastScores: map[index.Type]float64{},
		worstType:  index.Type(-1),
	}
	if opts.FixedType != nil {
		t.remaining = []index.Type{*opts.FixedType}
	}
	for _, typ := range t.remaining {
		t.initQueue = append(t.initQueue, space.DefaultVector(typ))
	}
	t.obs = append(t.obs, opts.Bootstrap...)
	return t
}

// Remaining returns the index types still under consideration.
func (t *Tuner) Remaining() []index.Type {
	out := make([]index.Type, len(t.remaining))
	copy(out, t.remaining)
	return out
}

// Abandoned returns the abandon order so far (earliest first).
func (t *Tuner) Abandoned() []index.Type {
	out := make([]index.Type, len(t.abandonLog))
	copy(out, t.abandonLog)
	return out
}

// Scores returns the most recent per-type budget-allocation scores
// (Eq. 6); abandoned types score zero. Used for the Figure 9 study.
func (t *Tuner) Scores() map[index.Type]float64 {
	out := make(map[index.Type]float64, len(t.lastScores))
	for k, v := range t.lastScores {
		out[k] = v
	}
	return out
}

// Observations returns all recorded observations (including bootstrap).
func (t *Tuner) Observations() []Observation {
	out := make([]Observation, len(t.obs))
	copy(out, t.obs)
	return out
}

// Name implements the Method interface used by the experiment runner.
func (t *Tuner) Name() string {
	switch {
	case t.opts.RecallFloor > 0:
		return "VDTuner(constraint)"
	case t.opts.CostAware:
		return "VDTuner(cost)"
	case t.opts.NativeSurrogate:
		return "VDTuner(native-surrogate)"
	case t.opts.RoundRobin:
		return "VDTuner(round-robin)"
	default:
		return "VDTuner"
	}
}

// Next recommends the next configuration to evaluate (Algorithm 1 lines
// 6–21): score and possibly abandon index types, rebuild the surrogate on
// normalized data, poll the next index type, and maximize the acquisition
// in its subspace.
func (t *Tuner) Next() vdms.Config {
	if len(t.initQueue) > 0 {
		x := t.initQueue[0]
		t.initQueue = t.initQueue[1:]
		t.pending = &x
		return space.Decode(x)
	}

	if !t.opts.RoundRobin && len(t.remaining) > 1 {
		t.updateAbandonment()
	}

	typ := t.remaining[t.pollPos%len(t.remaining)]
	t.pollPos++

	x := t.acquire(typ)
	t.pending = &x
	return space.Decode(x)
}

// Observe records the evaluation result of the configuration returned by
// the previous Next call. Failed evaluations are fed the worst values
// observed so far, avoiding the scaling problem (paper §V-A).
func (t *Tuner) Observe(cfg vdms.Config, res vdms.Result) {
	var x space.Vector
	if t.pending != nil {
		x = *t.pending
		t.pending = nil
	} else {
		x = space.Encode(cfg)
	}
	a, b := t.objectives(res)
	t.obs = append(t.obs, Observation{
		Config: cfg, X: x, Type: cfg.IndexType, ObjA: a, ObjB: b, Result: res,
	})
}

// objectives maps an engine result to the effective objective pair,
// substituting worst-in-history values for failures.
func (t *Tuner) objectives(res vdms.Result) (a, b float64) {
	if res.Failed {
		return t.worstObjectives()
	}
	a = res.QPS
	if t.opts.CostAware {
		a = CostEffectiveness(res)
	}
	return a, res.Recall
}

func (t *Tuner) worstObjectives() (a, b float64) {
	const eps = 1e-6
	a, b = eps, eps
	first := true
	for _, o := range t.obs {
		if o.Result.Failed {
			continue
		}
		if first || o.ObjA < a {
			a = o.ObjA
		}
		if first || o.ObjB < b {
			b = o.ObjB
		}
		first = false
	}
	if a <= 0 {
		a = eps
	}
	if b <= 0 {
		b = eps
	}
	return a, b
}

// CostEffectiveness computes QP$ (paper Eq. 8) with η = 1 $/(s·GiB-eq).
// Memory is converted to paper-scale GiB-equivalents so reported values
// land in the regime of Figure 13.
func CostEffectiveness(res vdms.Result) float64 {
	return res.QPS / MemGiB(res.MemoryBytes)
}

// MemGiB converts engine bytes to paper-scale GiB-equivalents: the
// generated corpora are ~170x smaller than the paper's, so the footprint
// is scaled up by that factor for reporting.
func MemGiB(bytes int64) float64 {
	g := float64(bytes) * 170 / (1 << 30)
	if g < 1e-9 {
		g = 1e-9
	}
	return g
}
