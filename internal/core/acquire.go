package core

import (
	"math"

	"vdtuner/internal/gp"
	"vdtuner/internal/index"
	"vdtuner/internal/mobo"
	"vdtuner/internal/space"
)

// acquire recommends the next configuration for the polled index type:
// it fits the holistic surrogate on NPI-normalized data, generates a
// candidate set inside the type's subspace (global random samples plus
// local perturbations of the type's best observations), and returns the
// candidate maximizing the acquisition — EHVI with the paper's reference
// point r = 0.5·(yspd_t, yrec_t) (i.e. (0.5, 0.5) in normalized space), or
// constrained EI when a recall floor is set.
func (t *Tuner) acquire(typ index.Type) space.Vector {
	if len(t.obs) < 2 {
		return space.SampleSubspace(typ, t.rng)
	}

	norm, bases := t.normalizedPoints()
	xs := make([][]float64, len(t.obs))
	ya := make([]float64, len(t.obs))
	yb := make([]float64, len(t.obs))
	for i, o := range t.obs {
		xs[i] = o.X
		ya[i] = norm[i].A
		yb[i] = norm[i].B
	}
	modelA, errA := gp.Fit(xs, ya)
	modelB, errB := gp.Fit(xs, yb)
	if errA != nil || errB != nil {
		return space.SampleSubspace(typ, t.rng)
	}

	cands := t.candidates(typ)
	if t.opts.RecallFloor > 0 {
		return t.pickCEI(typ, bases, modelA, modelB, cands)
	}
	return t.pickEHVI(norm, modelA, modelB, cands)
}

// candidates builds the acquisition candidate set for a type: half
// uniform subspace samples (exploration), half Gaussian perturbations of
// the type's best observed configurations (exploitation).
func (t *Tuner) candidates(typ index.Type) []space.Vector {
	n := t.opts.candidates()
	out := make([]space.Vector, 0, n)
	for i := 0; i < n/2; i++ {
		out = append(out, space.SampleSubspace(typ, t.rng))
	}

	// Anchors: the type's non-dominated observations; fall back to the
	// global front re-typed into this subspace (shared-parameter
	// knowledge transfer, §IV-A).
	var anchors []space.Vector
	var typed []Observation
	for _, o := range t.obs {
		if o.Type == typ {
			typed = append(typed, o)
		}
	}
	if len(typed) > 0 {
		for _, i := range mobo.NonDominated(pointsOf(typed)) {
			anchors = append(anchors, typed[i].X)
		}
	} else {
		for _, i := range mobo.NonDominated(pointsOf(t.obs)) {
			anchors = append(anchors, t.obs[i].X)
		}
	}
	if len(anchors) == 0 {
		anchors = append(anchors, space.DefaultVector(typ))
	}
	for len(out) < n {
		a := anchors[t.rng.Intn(len(anchors))]
		out = append(out, space.PerturbSubspace(a, typ, 0.12, t.rng))
	}
	return out
}

// pickEHVI returns the candidate with maximal Monte Carlo EHVI over the
// normalized Pareto front with reference point (0.5, 0.5).
func (t *Tuner) pickEHVI(norm []mobo.Point, modelA, modelB *gp.Model, cands []space.Vector) space.Vector {
	ref := mobo.Point{A: 0.5, B: 0.5}
	front := mobo.Front(norm)
	hv := mobo.Hypervolume(ref, front)

	best := cands[0]
	bestVal := math.Inf(-1)
	for _, c := range cands {
		ma, va := modelA.Predict(c)
		mb, vb := modelB.Predict(c)
		var v float64
		if t.opts.MonteCarloEHVI {
			v = mobo.EHVI(ma, math.Sqrt(va), mb, math.Sqrt(vb), ref, front, hv, t.opts.mcSamples(), t.rng)
		} else {
			v = mobo.EHVIExact(ma, math.Sqrt(va), mb, math.Sqrt(vb), ref, front)
		}
		if v > bestVal {
			bestVal = v
			best = c
		}
	}
	return best
}

// pickCEI returns the candidate with maximal constrained EI (Eq. 7):
// expected speed improvement times the probability that recall exceeds
// the user's floor. Everything is evaluated in the polled type's
// normalized scale.
func (t *Tuner) pickCEI(typ index.Type, bases map[index.Type]base, modelA, modelB *gp.Model, cands []space.Vector) space.Vector {
	bs, ok := bases[typ]
	if !ok {
		bs = base{1, 1}
	}
	// Incumbent: best normalized speed among feasible observations (any
	// type, each in its own normalization — consistent with the shared
	// surrogate's target scale).
	bestSpd := 0.0
	norm, _ := t.normalizedPoints()
	for i, o := range t.obs {
		if o.Result.Failed || o.ObjB <= t.opts.RecallFloor {
			continue
		}
		if norm[i].A > bestSpd {
			bestSpd = norm[i].A
		}
	}
	floorNorm := t.opts.RecallFloor / bs.b

	best := cands[0]
	bestVal := math.Inf(-1)
	for _, c := range cands {
		ma, va := modelA.Predict(c)
		mb, vb := modelB.Predict(c)
		v := mobo.ConstrainedEI(ma, math.Sqrt(va), bestSpd, mb, math.Sqrt(vb), floorNorm)
		if v > bestVal {
			bestVal = v
			best = c
		}
	}
	return best
}
