package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/space"
	"vdtuner/internal/vdms"
)

func sampleObservations() []Observation {
	cfg := vdms.DefaultConfig()
	cfg.IndexType = index.SCANN
	cfg.Build.NList = 300
	cfg.Search.NProbe = 36
	cfg.Search.ReorderK = 283
	obs := []Observation{
		{
			Config: cfg, X: space.Encode(cfg), Type: index.SCANN,
			ObjA: 1234.5, ObjB: 0.93,
			Result: vdms.Result{QPS: 1234.5, Recall: 0.93, MemoryBytes: 1 << 20,
				BuildSeconds: 12, ReplaySeconds: 99},
		},
		{
			Config: vdms.DefaultConfig(), X: space.Encode(vdms.DefaultConfig()),
			Type: index.AutoIndex, ObjA: 1e-6, ObjB: 1e-6,
			Result: vdms.Result{Failed: true, FailReason: "replay exceeded 15-minute limit"},
		},
	}
	return obs
}

func TestSaveLoadRoundTrip(t *testing.T) {
	obs := sampleObservations()
	var buf bytes.Buffer
	if err := SaveObservations(&buf, obs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadObservations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(obs) {
		t.Fatalf("loaded %d observations, want %d", len(got), len(obs))
	}
	for i := range obs {
		if got[i].Config != obs[i].Config {
			t.Fatalf("config %d differs:\n%+v\n%+v", i, got[i].Config, obs[i].Config)
		}
		if got[i].Type != obs[i].Type || got[i].ObjA != obs[i].ObjA || got[i].ObjB != obs[i].ObjB {
			t.Fatalf("observation %d metadata differs", i)
		}
		if got[i].Result != obs[i].Result {
			t.Fatalf("result %d differs:\n%+v\n%+v", i, got[i].Result, obs[i].Result)
		}
		for d := range obs[i].X {
			if got[i].X[d] != obs[i].X[d] {
				t.Fatalf("observation %d vector dim %d differs", i, d)
			}
		}
	}
}

func TestLoadedObservationsBootstrapTuner(t *testing.T) {
	obs := sampleObservations()
	var buf bytes.Buffer
	if err := SaveObservations(&buf, obs); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadObservations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tn := New(Options{Seed: 1, Bootstrap: loaded})
	if len(tn.Observations()) != len(obs) {
		t.Fatal("bootstrap from loaded KB failed")
	}
	// The tuner must be able to recommend from the warm state.
	cfg := tn.Next()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("post-bootstrap proposal invalid: %v", err)
	}
}

func TestSaveKnowledgeBaseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.json")
	tn := New(Options{Seed: 2})
	tn.Observe(vdms.DefaultConfig(), vdms.Result{QPS: 10, Recall: 0.5})
	if err := tn.SaveKnowledgeBase(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadKnowledgeBase(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Result.QPS != 10 {
		t.Fatalf("loaded %+v", loaded)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := LoadObservations(strings.NewReader("not json")); err == nil {
		t.Fatal("accepted junk")
	}
	if _, err := LoadObservations(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("accepted unknown version")
	}
	bad := `{"version":1,"observations":[{"index_type":"NOPE","config":{"index_type":"NOPE"}}]}`
	if _, err := LoadObservations(strings.NewReader(bad)); err == nil {
		t.Fatal("accepted unknown index type")
	}
}

func TestLoadReencodesMissingVector(t *testing.T) {
	// A KB without x vectors (e.g. hand-written) must re-encode from the
	// config.
	kb := `{"version":1,"observations":[{"index_type":"HNSW","config":{
		"index_type":"HNSW","nlist":128,"m":8,"nbits":8,"M":16,"efConstruction":128,
		"nprobe":16,"ef":64,"reorder_k":100,"segment_maxSize":512,
		"segment_sealProportion":0.25,"gracefulTime":1000,"insertBufSize":256,
		"queryNode_parallelism":4,"queryNode_cacheRatio":0.3,"flushInterval":10},
		"obj_a":5,"obj_b":0.5,"result":{"qps":5,"recall":0.5}}]}`
	loaded, err := LoadObservations(strings.NewReader(kb))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded[0].X) != space.Dims {
		t.Fatalf("vector not re-encoded: %d dims", len(loaded[0].X))
	}
	if loaded[0].Config.IndexType != index.HNSW {
		t.Fatalf("type = %v", loaded[0].Config.IndexType)
	}
}
