package core

import (
	"math"

	"vdtuner/internal/index"
	"vdtuner/internal/mobo"
)

// scoreTypes implements Eq. 6: for each remaining index type, measure how
// much the hypervolume of the global non-dominated set shrinks when that
// type's points are removed. The reference point is half the balanced base
// of the full set (Eq. 5's r = 0.5·y).
func (t *Tuner) scoreTypes() map[index.Type]float64 {
	all := pointsOf(t.obs)
	nd := mobo.NonDominated(all)
	frontPts := make([]mobo.Point, len(nd))
	frontTypes := make([]index.Type, len(nd))
	for i, j := range nd {
		frontPts[i] = all[j]
		frontTypes[i] = t.obs[j].Type
	}
	g := balancedBase(all)
	ref := mobo.Point{A: 0.5 * g.a, B: 0.5 * g.b}

	// HV of the front with each type excluded.
	hvWithout := map[index.Type]float64{}
	for _, typ := range t.remaining {
		var kept []mobo.Point
		for i, p := range frontPts {
			if frontTypes[i] != typ {
				kept = append(kept, p)
			}
		}
		hvWithout[typ] = mobo.Hypervolume(ref, kept)
	}
	maxHV := math.Inf(-1)
	for _, hv := range hvWithout {
		if hv > maxHV {
			maxHV = hv
		}
	}
	scores := make(map[index.Type]float64, len(hvWithout))
	for typ, hv := range hvWithout {
		scores[typ] = maxHV - hv // Eq. 6: bigger = bigger contribution
	}
	return scores
}

// updateAbandonment scores the remaining types and abandons the worst one
// once it has ranked worst for a full window of iterations (§IV-D's
// windowed trigger).
func (t *Tuner) updateAbandonment() {
	scores := t.scoreTypes()
	t.lastScores = scores

	worst := t.remaining[0]
	for _, typ := range t.remaining[1:] {
		if scores[typ] < scores[worst] {
			worst = typ
		}
	}
	if worst == t.worstType {
		t.worstStreak++
	} else {
		t.worstType = worst
		t.worstStreak = 1
	}
	if t.worstStreak >= t.opts.window() && len(t.remaining) > 1 {
		kept := t.remaining[:0]
		for _, typ := range t.remaining {
			if typ != worst {
				kept = append(kept, typ)
			}
		}
		t.remaining = kept
		t.abandonLog = append(t.abandonLog, worst)
		t.worstStreak = 0
		t.worstType = index.Type(-1)
	}
}
