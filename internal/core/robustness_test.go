package core

import (
	"math/rand"
	"testing"

	"vdtuner/internal/index"
	"vdtuner/internal/vdms"
)

// TestTunerSurvivesFlakyEvaluator injects a high failure rate into the
// evaluation loop: the tuner must keep proposing valid configurations,
// never crash, and still collect usable observations (the paper's
// failed-configuration policy, §V-A).
func TestTunerSurvivesFlakyEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tn := New(Options{Seed: 99, Candidates: 48, MCSamples: 8})
	failures := 0
	for i := 0; i < 40; i++ {
		cfg := tn.Next()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("iteration %d proposed invalid config: %v", i, err)
		}
		var res vdms.Result
		if rng.Float64() < 0.5 {
			res = vdms.Result{Failed: true, FailReason: "injected crash"}
			failures++
		} else {
			res = vdms.Result{
				QPS:           100 + rng.Float64()*900,
				Recall:        0.5 + rng.Float64()*0.5,
				MemoryBytes:   int64(1+rng.Intn(100)) << 20,
				ReplaySeconds: 30,
			}
		}
		tn.Observe(cfg, res)
	}
	if failures < 10 {
		t.Fatalf("injection produced only %d failures; test not exercising the path", failures)
	}
	obs := tn.Observations()
	if len(obs) != 40 {
		t.Fatalf("recorded %d observations", len(obs))
	}
	for i, o := range obs {
		if o.ObjA <= 0 || o.ObjB <= 0 {
			t.Fatalf("observation %d has non-positive objectives: %+v", i, o)
		}
	}
	if _, ok := tn.BestUnderRecall(0.5); !ok {
		t.Fatal("no usable observation survived the flaky run")
	}
}

// TestTunerAllFailures drives the tuner with nothing but failures: it
// must keep cycling without panicking and report no feasible result.
func TestTunerAllFailures(t *testing.T) {
	tn := New(Options{Seed: 100, Candidates: 32, MCSamples: 8})
	for i := 0; i < 20; i++ {
		cfg := tn.Next()
		tn.Observe(cfg, vdms.Result{Failed: true, FailReason: "always down"})
	}
	if _, ok := tn.BestUnderRecall(0); ok {
		t.Fatal("found a 'best' among pure failures")
	}
	if len(tn.ParetoFront()) != 0 {
		t.Fatal("failures leaked onto the Pareto front")
	}
}

// TestConstraintModeWithInfeasibleFloor sets a recall floor nothing can
// reach; the tuner must still operate (CEI with an empty incumbent).
func TestConstraintModeWithInfeasibleFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	tn := New(Options{Seed: 101, RecallFloor: 0.999999, Candidates: 32, MCSamples: 8})
	for i := 0; i < 20; i++ {
		cfg := tn.Next()
		tn.Observe(cfg, vdms.Result{
			QPS: 100 + rng.Float64()*100, Recall: 0.5 * rng.Float64(),
		})
	}
	if _, ok := tn.BestUnderRecall(0.999999); ok {
		t.Fatal("impossible floor satisfied")
	}
}

// TestFixedTypeRestriction pins the tuner to one index type; every
// proposal must carry it.
func TestFixedTypeRestriction(t *testing.T) {
	typ := index.IVFPQ
	tn := New(Options{Seed: 102, FixedType: &typ, Candidates: 32, MCSamples: 8})
	rng := rand.New(rand.NewSource(102))
	for i := 0; i < 12; i++ {
		cfg := tn.Next()
		if cfg.IndexType != index.IVFPQ {
			t.Fatalf("iteration %d proposed %v, want IVF_PQ", i, cfg.IndexType)
		}
		tn.Observe(cfg, vdms.Result{QPS: rng.Float64() * 100, Recall: rng.Float64()})
	}
	if got := tn.Remaining(); len(got) != 1 || got[0] != index.IVFPQ {
		t.Fatalf("Remaining = %v", got)
	}
}

// TestNameVariants keeps reporting labels stable for the experiment
// tables.
func TestNameVariants(t *testing.T) {
	cases := []struct {
		opts Options
		want string
	}{
		{Options{}, "VDTuner"},
		{Options{RecallFloor: 0.9}, "VDTuner(constraint)"},
		{Options{CostAware: true}, "VDTuner(cost)"},
		{Options{NativeSurrogate: true}, "VDTuner(native-surrogate)"},
		{Options{RoundRobin: true}, "VDTuner(round-robin)"},
	}
	for _, c := range cases {
		if got := New(c.opts).Name(); got != c.want {
			t.Fatalf("Name() = %q, want %q", got, c.want)
		}
	}
}
