package core

import (
	"math"

	"vdtuner/internal/index"
	"vdtuner/internal/mobo"
)

// base is the per-index-type NPI normalization base (yspd_t, yrec_t) of
// Eq. 2.
type base struct{ a, b float64 }

// pointsOf converts observations to objective points.
func pointsOf(obs []Observation) []mobo.Point {
	ps := make([]mobo.Point, len(obs))
	for i, o := range obs {
		ps[i] = mobo.Point{A: o.ObjA, B: o.ObjB}
	}
	return ps
}

// balancedBase implements Eq. 3: among the non-dominated points, pick the
// one minimizing |a/aMax − b/bMax| (the most balanced trade-off).
func balancedBase(ps []mobo.Point) base {
	front := mobo.Front(ps)
	if len(front) == 0 {
		return base{1, 1}
	}
	var aMax, bMax float64
	for _, p := range front {
		if p.A > aMax {
			aMax = p.A
		}
		if p.B > bMax {
			bMax = p.B
		}
	}
	if aMax <= 0 {
		aMax = 1
	}
	if bMax <= 0 {
		bMax = 1
	}
	bestGap := math.Inf(1)
	var pick mobo.Point
	for _, p := range front {
		gap := math.Abs(p.A/aMax - p.B/bMax)
		if gap < bestGap {
			bestGap = gap
			pick = p
		}
	}
	return sanitizeBase(base{pick.A, pick.B})
}

// maxBase is the constraint-model variant (§IV-F): the per-objective
// maxima of the type's observations.
func maxBase(ps []mobo.Point) base {
	var a, b float64
	for _, p := range ps {
		if p.A > a {
			a = p.A
		}
		if p.B > b {
			b = p.B
		}
	}
	return sanitizeBase(base{a, b})
}

func sanitizeBase(v base) base {
	if v.a <= 0 {
		v.a = 1e-9
	}
	if v.b <= 0 {
		v.b = 1e-9
	}
	return v
}

// typeBases computes the normalization base per index type over the
// current observations. Constraint mode uses per-objective maxima,
// otherwise the balanced non-dominated point (Eqs. 2–3).
func (t *Tuner) typeBases() map[index.Type]base {
	grouped := map[index.Type][]mobo.Point{}
	for _, o := range t.obs {
		grouped[o.Type] = append(grouped[o.Type], mobo.Point{A: o.ObjA, B: o.ObjB})
	}
	bases := make(map[index.Type]base, len(grouped))
	for typ, ps := range grouped {
		if t.opts.RecallFloor > 0 {
			bases[typ] = maxBase(ps)
		} else {
			bases[typ] = balancedBase(ps)
		}
	}
	return bases
}

// globalScale is the native-surrogate fallback: one shared normalization
// by global maxima (no per-type bases), used by the Figure 8b ablation.
func (t *Tuner) globalScale() base {
	return maxBase(pointsOf(t.obs))
}

// normalizedPoints returns each observation's objectives divided by its
// type's base (the polling surrogate's training targets), or by the global
// maxima in the native-surrogate ablation.
func (t *Tuner) normalizedPoints() ([]mobo.Point, map[index.Type]base) {
	out := make([]mobo.Point, len(t.obs))
	if t.opts.NativeSurrogate {
		g := t.globalScale()
		for i, o := range t.obs {
			out[i] = mobo.Point{A: o.ObjA / g.a, B: o.ObjB / g.b}
		}
		// Native mode still needs per-type bases for reference points;
		// use the global scale for every type.
		bases := map[index.Type]base{}
		for _, typ := range index.AllTypes() {
			bases[typ] = g
		}
		return out, bases
	}
	bases := t.typeBases()
	for i, o := range t.obs {
		bs, ok := bases[o.Type]
		if !ok {
			bs = base{1, 1}
		}
		out[i] = mobo.Point{A: o.ObjA / bs.a, B: o.ObjB / bs.b}
	}
	return out, bases
}
