package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randCodes fills a byte arena with the full u8 range plus the edge
// values 0 and 255 over-represented.
func randCodes(rng *rand.Rand, n int) []byte {
	c := make([]byte, n)
	for i := range c {
		switch rng.Intn(8) {
		case 0:
			c[i] = 0
		case 1:
			c[i] = 255
		default:
			c[i] = byte(rng.Intn(256))
		}
	}
	return c
}

// randAffine produces per-dim min/scale like a trained SQ8 codec:
// non-negative scales, occasional zero (constant dim), occasional huge or
// denormal values so rounding differences would show.
func randAffine(rng *rand.Rand, dim int) (min, scale []float32) {
	min = randVec(rng, dim)
	scale = make([]float32, dim)
	for i := range scale {
		switch rng.Intn(8) {
		case 0:
			scale[i] = 0
		case 1:
			scale[i] = 1e-39
		case 2:
			scale[i] = 3e18 * float32(math.Abs(rng.NormFloat64()))
		default:
			scale[i] = float32(math.Abs(rng.NormFloat64()))
		}
	}
	return min, scale
}

// TestSQ8KernelBitIdentity sweeps dims 1..67 (crossing the 4-way unroll
// and in-register decode boundary many times), all three metrics, ragged
// row counts, and Q ∈ {1,2,7,64}: the multi-query scatter, the blocked
// kernel (SSE on amd64, portable under -tags purego), and the scalar
// contract reference SQ8Distance must agree bit-for-bit on every
// (query, row) pair.
func TestSQ8KernelBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	metrics := []Metric{L2, InnerProduct, Angular}
	for dim := 1; dim <= 67; dim++ {
		rows := 1 + rng.Intn(41)
		codes := randCodes(rng, rows*dim)
		min, scale := randAffine(rng, dim)
		for _, qn := range []int{1, 2, 7, 64} {
			queries := make([][]float32, qn)
			resids := make([][]float32, qn)
			for i := range queries {
				queries[i] = randVec(rng, dim)
				resids[i] = make([]float32, dim)
				SQ8Residual(queries[i], min, resids[i])
			}
			for _, m := range metrics {
				qarg := queries
				if m == L2 {
					qarg = resids
				}
				// Blocked kernel vs the scalar contract reference.
				single := make([][]float32, qn)
				for i := range queries {
					single[i] = make([]float32, rows)
					DistanceSQ8Block(m, qarg[i], min, scale, codes, single[i])
					for r := 0; r < rows; r++ {
						want := SQ8Distance(m, queries[i], min, scale, codes[r*dim:(r+1)*dim])
						if !f32Equal(single[i][r], want) {
							t.Fatalf("dim=%d m=%v q=%d row=%d: block=%x scalar=%x",
								dim, m, i, r, math.Float32bits(single[i][r]), math.Float32bits(want))
						}
					}
				}
				// Multi-query scatter vs the blocked kernel.
				outs := make([][]float32, qn)
				for i := range outs {
					outs[i] = make([]float32, rows)
				}
				DistanceSQ8MultiScatter(m, qarg, min, scale, codes, outs)
				for i := range outs {
					for r := 0; r < rows; r++ {
						if !f32Equal(outs[i][r], single[i][r]) {
							t.Fatalf("dim=%d m=%v q=%d row=%d: scatter=%x single=%x",
								dim, m, i, r, math.Float32bits(outs[i][r]), math.Float32bits(single[i][r]))
						}
					}
				}
			}
		}
	}
}

// TestSQ8KernelAsmMatchesGo pins the dispatched kernels (SSE on amd64)
// against the portable contract kernels directly, including the ragged
// quad remainder the multi4 kernels never see via the public entry.
func TestSQ8KernelAsmMatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for dim := 1; dim <= 35; dim++ {
		rows := 1 + rng.Intn(17)
		codes := randCodes(rng, rows*dim)
		min, scale := randAffine(rng, dim)
		qs := make([][]float32, 4)
		for i := range qs {
			qs[i] = randVec(rng, dim)
		}
		got := make([]float32, rows)
		want := make([]float32, rows)

		sq8L2BlockKernel(qs[0], scale, codes, got)
		sq8L2BlockGo(qs[0], scale, codes, want)
		for r := range got {
			if !f32Equal(got[r], want[r]) {
				t.Fatalf("l2 block dim=%d row=%d: %x vs %x", dim, r, math.Float32bits(got[r]), math.Float32bits(want[r]))
			}
		}
		for op := opNone; op <= opOneMinus; op++ {
			sq8DotBlockKernel(qs[0], min, scale, codes, got, op)
			sq8DotBlockGo(qs[0], min, scale, codes, want, op)
			for r := range got {
				if !f32Equal(got[r], want[r]) {
					t.Fatalf("dot block dim=%d op=%d row=%d: %x vs %x", dim, op, r, math.Float32bits(got[r]), math.Float32bits(want[r]))
				}
			}
		}

		gots := [][]float32{make([]float32, rows), make([]float32, rows), make([]float32, rows), make([]float32, rows)}
		wants := [][]float32{make([]float32, rows), make([]float32, rows), make([]float32, rows), make([]float32, rows)}
		sq8L2Multi4Kernel(qs[0], qs[1], qs[2], qs[3], scale, codes, gots[0], gots[1], gots[2], gots[3])
		sq8L2Multi4Go(qs[0], qs[1], qs[2], qs[3], scale, codes, wants[0], wants[1], wants[2], wants[3])
		for i := range gots {
			for r := range gots[i] {
				if !f32Equal(gots[i][r], wants[i][r]) {
					t.Fatalf("l2 multi4 dim=%d q=%d row=%d: %x vs %x", dim, i, r, math.Float32bits(gots[i][r]), math.Float32bits(wants[i][r]))
				}
			}
		}
		for op := opNone; op <= opOneMinus; op++ {
			sq8DotMulti4Kernel(qs[0], qs[1], qs[2], qs[3], min, scale, codes, gots[0], gots[1], gots[2], gots[3], op)
			sq8DotMulti4Go(qs[0], qs[1], qs[2], qs[3], min, scale, codes, wants[0], wants[1], wants[2], wants[3], op)
			for i := range gots {
				for r := range gots[i] {
					if !f32Equal(gots[i][r], wants[i][r]) {
						t.Fatalf("dot multi4 dim=%d op=%d q=%d row=%d: %x vs %x", dim, op, i, r, math.Float32bits(gots[i][r]), math.Float32bits(wants[i][r]))
					}
				}
			}
		}
	}
}

// pqRef is the independent scalar reference of the PQ scan contract:
// mod-4 subspace split over the unrolled body, the ragged tail entirely
// into s0, reduced ((s0+s1)+s2)+s3.
func pqRef(table []float32, row []int, ksub int) float32 {
	var s [4]float32
	body := len(row) &^ 3
	for j, c := range row {
		lane := 0
		if j < body {
			lane = j & 3
		}
		s[lane] += table[j*ksub+c]
	}
	return s[0] + s[1] + s[2] + s[3]
}

// TestPQScanBitIdentity sweeps subquantizer counts 1..19 and table sizes
// across narrow/wide codes: PQScan8/PQScan16 and their multi variants must
// match the scalar reference bit-for-bit for every (query, row).
func TestPQScanBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for m := 1; m <= 19; m++ {
		for _, ksub := range []int{1, 7, 256, 700} {
			rows := 1 + rng.Intn(33)
			narrow := ksub <= 256 // byte codes can only index 256 codewords
			idx := make([]int, rows*m)
			codes8 := make([]byte, rows*m)
			codes16 := make([]uint16, rows*m)
			for i := range idx {
				idx[i] = rng.Intn(ksub)
				codes8[i] = byte(idx[i])
				codes16[i] = uint16(idx[i])
			}
			for _, qn := range []int{1, 2, 7, 64} {
				tables := make([][]float32, qn)
				for q := range tables {
					tables[q] = randVec(rng, m*ksub)
				}
				for q := range tables {
					out8 := make([]float32, rows)
					out16 := make([]float32, rows)
					if narrow {
						PQScan8(tables[q], codes8, m, ksub, out8)
					}
					PQScan16(tables[q], codes16, m, ksub, out16)
					for r := 0; r < rows; r++ {
						want := pqRef(tables[q], idx[r*m:(r+1)*m], ksub)
						if (narrow && !f32Equal(out8[r], want)) || !f32Equal(out16[r], want) {
							t.Fatalf("m=%d ksub=%d q=%d row=%d: scan8=%x scan16=%x ref=%x",
								m, ksub, q, r, math.Float32bits(out8[r]), math.Float32bits(out16[r]), math.Float32bits(want))
						}
					}
				}
				outs8 := make([][]float32, qn)
				outs16 := make([][]float32, qn)
				for q := range outs8 {
					outs8[q] = make([]float32, rows)
					outs16[q] = make([]float32, rows)
				}
				if narrow {
					PQScan8Multi(tables, codes8, m, ksub, outs8)
				}
				PQScan16Multi(tables, codes16, m, ksub, outs16)
				for q := range tables {
					for r := 0; r < rows; r++ {
						want := pqRef(tables[q], idx[r*m:(r+1)*m], ksub)
						if (narrow && !f32Equal(outs8[q][r], want)) || !f32Equal(outs16[q][r], want) {
							t.Fatalf("multi m=%d ksub=%d q=%d row=%d: scan8=%x scan16=%x ref=%x",
								m, ksub, q, r, math.Float32bits(outs8[q][r]), math.Float32bits(outs16[q][r]), math.Float32bits(want))
						}
					}
				}
			}
		}
	}
	// ksub=700 with qn=64 above covers wide tables; m=0 degenerates to 0.
	out := []float32{9}
	PQScan8(nil, nil, 0, 4, out)
	if out[0] != 0 {
		t.Fatalf("m=0 scan: got %v, want 0", out[0])
	}
}
