//go:build !amd64 || purego

package linalg

// Portable dispatch: the scalar kernels are the implementation. The
// `purego` build tag forces this path on amd64 too (useful for
// differential testing and as an escape hatch).

func dotBlockKernel(q, block []float32, out []float32, op int) {
	dotBlockGo(q, block, out, op)
}

func l2BlockKernel(q, block []float32, out []float32) {
	l2BlockGo(q, block, out)
}

func dotMulti4Kernel(q0, q1, q2, q3, block []float32, o0, o1, o2, o3 []float32, op int) {
	dotMulti4Go(q0, q1, q2, q3, block, o0, o1, o2, o3, op)
}

func l2Multi4Kernel(q0, q1, q2, q3, block []float32, o0, o1, o2, o3 []float32) {
	l2Multi4Go(q0, q1, q2, q3, block, o0, o1, o2, o3)
}

func sq8L2BlockKernel(r, scale []float32, codes []byte, out []float32) {
	sq8L2BlockGo(r, scale, codes, out)
}

func sq8DotBlockKernel(q, min, scale []float32, codes []byte, out []float32, op int) {
	sq8DotBlockGo(q, min, scale, codes, out, op)
}

func sq8L2Multi4Kernel(r0, r1, r2, r3, scale []float32, codes []byte, o0, o1, o2, o3 []float32) {
	sq8L2Multi4Go(r0, r1, r2, r3, scale, codes, o0, o1, o2, o3)
}

func sq8DotMulti4Kernel(q0, q1, q2, q3, min, scale []float32, codes []byte, o0, o1, o2, o3 []float32, op int) {
	sq8DotMulti4Go(q0, q1, q2, q3, min, scale, codes, o0, o1, o2, o3, op)
}

func pqScan8Kernel(table []float32, codes []byte, m, ksub int, out []float32) {
	pqScan8Go(table, codes, m, ksub, out)
}
