//go:build !amd64 || purego

package linalg

// Portable dispatch: the scalar kernels are the implementation. The
// `purego` build tag forces this path on amd64 too (useful for
// differential testing and as an escape hatch).

func dotBlockKernel(q, block []float32, out []float32, op int) {
	dotBlockGo(q, block, out, op)
}

func l2BlockKernel(q, block []float32, out []float32) {
	l2BlockGo(q, block, out)
}

func dotMulti4Kernel(q0, q1, q2, q3, block []float32, o0, o1, o2, o3 []float32, op int) {
	dotMulti4Go(q0, q1, q2, q3, block, o0, o1, o2, o3, op)
}

func l2Multi4Kernel(q0, q1, q2, q3, block []float32, o0, o1, o2, o3 []float32) {
	l2Multi4Go(q0, q1, q2, q3, block, o0, o1, o2, o3)
}
