package linalg

import (
	"math/rand"
	"reflect"
	"testing"
)

func randRows(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = make([]float32, dim)
		for j := range rows[i] {
			rows[i][j] = float32(rng.NormFloat64())
		}
	}
	return rows
}

func TestMatrixRowsRoundTrip(t *testing.T) {
	rows := randRows(37, 12, 1)
	m := MatrixFromRows(rows)
	if m.Rows() != 37 || m.Dim() != 12 || !m.Packed() {
		t.Fatalf("shape: %d x %d packed=%v", m.Rows(), m.Dim(), m.Packed())
	}
	for i, r := range rows {
		if !reflect.DeepEqual(m.Row(i), r) {
			t.Fatalf("row %d differs", i)
		}
	}
	if m.Bytes() != 37*12*4 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
}

func TestMatrixSliceViewsShareArena(t *testing.T) {
	m := MatrixFromRows(randRows(10, 4, 2))
	v := m.Slice(3, 7)
	if v.Rows() != 4 {
		t.Fatalf("view rows = %d", v.Rows())
	}
	for i := 0; i < 4; i++ {
		if !reflect.DeepEqual(v.Row(i), m.Row(3+i)) {
			t.Fatalf("view row %d differs from parent row %d", i, 3+i)
		}
	}
	// Writes through the view hit the parent.
	v.Row(0)[0] = 42
	if m.Row(3)[0] != 42 {
		t.Fatal("view write did not reach the parent arena")
	}
	// Appending through a packed view must never stomp the parent's
	// following rows.
	before := append([]float32(nil), m.Row(7)...)
	v.AppendRow([]float32{9, 9, 9, 9})
	if !reflect.DeepEqual(m.Row(7), before) {
		t.Fatal("append through a view overwrote the parent")
	}
}

func TestMatrixSubspaceView(t *testing.T) {
	rows := randRows(9, 12, 3)
	m := MatrixFromRows(rows)
	v := m.SubspaceView(4, 8)
	if v.Rows() != 9 || v.Dim() != 4 || v.Packed() {
		t.Fatalf("subspace shape: %d x %d packed=%v", v.Rows(), v.Dim(), v.Packed())
	}
	for i, r := range rows {
		if !reflect.DeepEqual(v.Row(i), r[4:8]) {
			t.Fatalf("subspace row %d differs", i)
		}
	}
}

func TestMatrixRowOps(t *testing.T) {
	m := MatrixFromRows([][]float32{{1, 1}, {2, 2}, {3, 3}})
	m.SwapRows(0, 2)
	if m.Row(0)[0] != 3 || m.Row(2)[0] != 1 {
		t.Fatalf("SwapRows: %v / %v", m.Row(0), m.Row(2))
	}
	m.CopyRow(2, 0)
	if m.Row(2)[0] != 3 {
		t.Fatalf("CopyRow: %v", m.Row(2))
	}
	m.Truncate(1)
	if m.Rows() != 1 {
		t.Fatalf("Truncate: %d rows", m.Rows())
	}
	m.AppendRow([]float32{7, 7})
	if m.Rows() != 2 || m.Row(1)[0] != 7 {
		t.Fatalf("AppendRow after Truncate: %d rows, %v", m.Rows(), m.Row(1))
	}
}

// TestBlockKernelsBitIdentical is the layout-change contract: the blocked
// kernels must produce bitwise the same float32 per row as the scalar
// kernels they replace, for every metric.
func TestBlockKernelsBitIdentical(t *testing.T) {
	rows := randRows(257, 33, 4) // odd sizes exercise the unroll tails
	m := MatrixFromRows(rows)
	q := randRows(1, 33, 5)[0]
	out := make([]float32, m.Rows())
	DotBlock(q, m.Data(), out)
	for i, r := range rows {
		if want := Dot(q, r); out[i] != want {
			t.Fatalf("DotBlock row %d: %v != Dot %v", i, out[i], want)
		}
	}
	SquaredL2Block(q, m.Data(), out)
	for i, r := range rows {
		if want := SquaredL2(q, r); out[i] != want {
			t.Fatalf("SquaredL2Block row %d: %v != SquaredL2 %v", i, out[i], want)
		}
	}
	for _, metric := range []Metric{L2, InnerProduct, Angular} {
		DistanceBlock(metric, q, m.Data(), out)
		for i, r := range rows {
			if want := Distance(metric, q, r); out[i] != want {
				t.Fatalf("DistanceBlock(%v) row %d: %v != Distance %v", metric, i, out[i], want)
			}
		}
	}
}

func TestTopKResetReuse(t *testing.T) {
	var top TopK
	for round := 0; round < 3; round++ {
		top.Reset(3)
		for i := 0; i < 10; i++ {
			top.Push(int64(i), float32((i*7+round)%10))
		}
		dst := make([]Neighbor, 0, top.Len())
		dst = top.AppendResults(dst)
		if len(dst) != 3 {
			t.Fatalf("round %d: %d results", round, len(dst))
		}
		for i := 1; i < len(dst); i++ {
			if dst[i].Dist < dst[i-1].Dist {
				t.Fatalf("round %d: results unsorted: %v", round, dst)
			}
		}
		if top.Len() != 0 {
			t.Fatalf("round %d: collector not drained", round)
		}
	}
}

// TestTopKAppendResultsMatchesResults pins the pooled path to the
// allocating one.
func TestTopKAppendResultsMatchesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40) + 1
		k := rng.Intn(10) + 1
		a := NewTopK(k)
		b := NewTopK(k)
		for i := 0; i < n; i++ {
			d := float32(rng.NormFloat64())
			a.Push(int64(i), d)
			b.Push(int64(i), d)
		}
		want := a.Results()
		got := b.AppendResults(nil)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: AppendResults %v != Results %v", trial, got, want)
		}
	}
}
