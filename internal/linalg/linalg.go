// Package linalg provides the float32 vector math kernel shared by every
// index implementation: distance functions, norms, and small dense helpers.
//
// All distances follow the "smaller is better" convention. For angular
// (cosine) similarity the engine stores normalized vectors and uses
// 1 - dot(a, b), which is a monotone transform of the angle.
package linalg

import (
	"fmt"
	"math"
)

// Metric identifies a distance function.
type Metric int

const (
	// L2 is squared Euclidean distance (monotone in Euclidean distance,
	// cheaper to compute; rankings are identical).
	L2 Metric = iota
	// InnerProduct is negative dot product, so that smaller is better.
	InnerProduct
	// Angular is cosine distance, 1 - cos(a, b), assuming unit vectors.
	Angular
)

// String returns the conventional name of the metric.
func (m Metric) String() string {
	switch m {
	case L2:
		return "L2"
	case InnerProduct:
		return "IP"
	case Angular:
		return "Angular"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// ParseMetric maps a metric name — the String form ("L2", "IP",
// "Angular") or the lowercase CLI spelling ("l2", "ip", "angular") — to
// its value.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "L2", "l2":
		return L2, nil
	case "IP", "ip":
		return InnerProduct, nil
	case "Angular", "angular":
		return Angular, nil
	default:
		return 0, fmt.Errorf("linalg: unknown metric %q (want l2, ip, or angular)", s)
	}
}

// Dot returns the dot product of a and b. The slices must have equal length.
func Dot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// SquaredL2 returns the squared Euclidean distance between a and b.
func SquaredL2(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// DotBlock computes the dot product of q against every row of block, a
// packed row-major arena of len(block)/dim rows (one contiguous range of a
// Matrix), writing row i's product to out[i]. The per-row arithmetic is
// exactly Dot's (same 4-way unrolled accumulation), so results are
// bit-identical to calling Dot row by row; the win is streaming contiguous
// memory instead of chasing per-row pointers. On amd64 the scan runs as an
// SSE kernel whose lane structure mirrors the scalar accumulators exactly
// (see kernels_amd64.go), preserving bit-identity.
func DotBlock(q, block []float32, out []float32) {
	dotBlockKernel(q, block, out, opNone)
}

// SquaredL2Block computes the squared Euclidean distance of q to every row
// of the packed arena block, writing into out. Bit-identical per row to
// SquaredL2; see DotBlock.
func SquaredL2Block(q, block []float32, out []float32) {
	l2BlockKernel(q, block, out)
}

// DistanceBlock computes the distance of q to every row of the packed
// arena block under metric m, writing into out. Each out[i] is bitwise
// equal to Distance(m, q, row_i): the InnerProduct/Angular epilogue is
// fused into the scoring loop (negation and 1-x are exact, so fusing
// changes no bits), saving the second sweep over out.
func DistanceBlock(m Metric, q, block []float32, out []float32) {
	switch m {
	case L2:
		l2BlockKernel(q, block, out)
	case InnerProduct:
		dotBlockKernel(q, block, out, opNeg)
	case Angular:
		dotBlockKernel(q, block, out, opOneMinus)
	default:
		panic("linalg: unknown metric " + m.String())
	}
}

// Norm returns the Euclidean norm of v.
func Norm(v []float32) float32 {
	return float32(math.Sqrt(float64(Dot(v, v))))
}

// Normalize scales v to unit norm in place. Zero vectors are left unchanged.
func Normalize(v []float32) {
	n := Norm(v)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
}

// Distance computes the distance between a and b under metric m.
// For Angular the inputs are assumed to be unit vectors.
func Distance(m Metric, a, b []float32) float32 {
	switch m {
	case L2:
		return SquaredL2(a, b)
	case InnerProduct:
		return -Dot(a, b)
	case Angular:
		return 1 - Dot(a, b)
	default:
		panic("linalg: unknown metric " + m.String())
	}
}

// Scale multiplies v by s in place.
func Scale(v []float32, s float32) {
	for i := range v {
		v[i] *= s
	}
}

// AddInto accumulates src into dst element-wise. Lengths must match.
func AddInto(dst, src []float32) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Clone returns a copy of v.
func Clone(v []float32) []float32 {
	c := make([]float32, len(v))
	copy(c, v)
	return c
}

// Mean returns the element-wise mean of the given vectors. It panics if
// vecs is empty. All vectors must share the same dimension.
func Mean(vecs [][]float32) []float32 {
	if len(vecs) == 0 {
		panic("linalg: Mean of empty set")
	}
	dim := len(vecs[0])
	m := make([]float32, dim)
	for _, v := range vecs {
		AddInto(m, v)
	}
	Scale(m, 1/float32(len(vecs)))
	return m
}
