package linalg

// Portable SQ8 byte-domain scan kernels. A code row is dim bytes; the
// decoded value of element j is min[j] + float32(code[j])*scale[j]. The
// kernels never materialize the reconstruction: the affine constants are
// hoisted per query — the L2 form scores the residual r[j] = q[j] - min[j]
// against t = float32(code[j])*scale[j] directly (d = r - t equals
// q - (min + t) exactly when r is computed as q - min up front), and the
// dot form folds min back in per element. The accumulation contract is the
// float kernels': four partial sums over a 4-way unrolled loop (lane l
// holds indices ≡ l mod 4), tail into s0, reduced ((s0+s1)+s2)+s3, op
// epilogue fused — which the SSE kernels in kernels_amd64.s reproduce
// bitwise.

// sq8L2BlockGo scores the residual r (= q - min) against every code row:
// out[i] = Σ (r[j] - float32(row[j])*scale[j])².
func sq8L2BlockGo(r, scale []float32, codes []byte, out []float32) {
	dim := len(r)
	for i := range out {
		row := codes[i*dim : i*dim+dim]
		var s0, s1, s2, s3 float32
		j := 0
		for ; j+4 <= dim; j += 4 {
			d0 := r[j] - float32(row[j])*scale[j]
			d1 := r[j+1] - float32(row[j+1])*scale[j+1]
			d2 := r[j+2] - float32(row[j+2])*scale[j+2]
			d3 := r[j+3] - float32(row[j+3])*scale[j+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		for ; j < dim; j++ {
			d := r[j] - float32(row[j])*scale[j]
			s0 += d * d
		}
		out[i] = s0 + s1 + s2 + s3
	}
}

// sq8DotBlockGo scores q against every decoded code row with the op
// epilogue fused: dot_i = Σ q[j] * (min[j] + float32(row[j])*scale[j]).
func sq8DotBlockGo(q, min, scale []float32, codes []byte, out []float32, op int) {
	dim := len(q)
	for i := range out {
		row := codes[i*dim : i*dim+dim]
		var s0, s1, s2, s3 float32
		j := 0
		for ; j+4 <= dim; j += 4 {
			s0 += q[j] * (min[j] + float32(row[j])*scale[j])
			s1 += q[j+1] * (min[j+1] + float32(row[j+1])*scale[j+1])
			s2 += q[j+2] * (min[j+2] + float32(row[j+2])*scale[j+2])
			s3 += q[j+3] * (min[j+3] + float32(row[j+3])*scale[j+3])
		}
		for ; j < dim; j++ {
			s0 += q[j] * (min[j] + float32(row[j])*scale[j])
		}
		s := s0 + s1 + s2 + s3
		switch op {
		case opNeg:
			s = -s
		case opOneMinus:
			s = 1 - s
		}
		out[i] = s
	}
}

// sq8L2Multi4Go scores four residuals against every code row. Per
// (query, row) the arithmetic is exactly sq8L2BlockGo's — the shared
// decode t is the identical expression — so outputs are bit-identical to
// four single-query scans; only the memory traffic differs.
func sq8L2Multi4Go(r0, r1, r2, r3, scale []float32, codes []byte, o0, o1, o2, o3 []float32) {
	sq8L2BlockGo(r0, scale, codes, o0)
	sq8L2BlockGo(r1, scale, codes, o1)
	sq8L2BlockGo(r2, scale, codes, o2)
	sq8L2BlockGo(r3, scale, codes, o3)
}

// sq8DotMulti4Go is the dot counterpart of sq8L2Multi4Go.
func sq8DotMulti4Go(q0, q1, q2, q3, min, scale []float32, codes []byte, o0, o1, o2, o3 []float32, op int) {
	sq8DotBlockGo(q0, min, scale, codes, o0, op)
	sq8DotBlockGo(q1, min, scale, codes, o1, op)
	sq8DotBlockGo(q2, min, scale, codes, o2, op)
	sq8DotBlockGo(q3, min, scale, codes, o3, op)
}
