package linalg

// PQ asymmetric-distance scan kernels. A code row is m entries (one per
// subquantizer); table is the query's flat ADC lookup table, entry
// s*ksub+c holding the distance of the query's subvector s to codeword c.
// The accumulation contract mirrors the float kernels': four partial sums
// over the subspaces, lane l holding subspaces ≡ l mod 4, tail into s0,
// reduced s0+s1+s2+s3 — four independent gather chains per row instead of
// one serial add chain. SSE2 has no gather instruction, so the narrow
// (1-byte) scan's assembly path is scalar loads under the same contract;
// its win over the Go loop is pure bounds-check and loop-overhead removal
// on the per-element gathers that dominate the scan.

// pqRow8 accumulates one code row against one table under the contract.
func pqRow8(table []float32, row []byte, ksub int) float32 {
	var s0, s1, s2, s3 float32
	m := len(row)
	j := 0
	for ; j+4 <= m; j += 4 {
		s0 += table[j*ksub+int(row[j])]
		s1 += table[(j+1)*ksub+int(row[j+1])]
		s2 += table[(j+2)*ksub+int(row[j+2])]
		s3 += table[(j+3)*ksub+int(row[j+3])]
	}
	for ; j < m; j++ {
		s0 += table[j*ksub+int(row[j])]
	}
	return s0 + s1 + s2 + s3
}

// pqRow16 is pqRow8 over wide ([]uint16) codes.
func pqRow16(table []float32, row []uint16, ksub int) float32 {
	var s0, s1, s2, s3 float32
	m := len(row)
	j := 0
	for ; j+4 <= m; j += 4 {
		s0 += table[j*ksub+int(row[j])]
		s1 += table[(j+1)*ksub+int(row[j+1])]
		s2 += table[(j+2)*ksub+int(row[j+2])]
		s3 += table[(j+3)*ksub+int(row[j+3])]
	}
	for ; j < m; j++ {
		s0 += table[j*ksub+int(row[j])]
	}
	return s0 + s1 + s2 + s3
}

// pqScan8Go is the portable narrow scan: the contract reference the asm
// kernel must match bitwise.
func pqScan8Go(table []float32, codes []byte, m, ksub int, out []float32) {
	for i := range out {
		out[i] = pqRow8(table, codes[i*m:i*m+m], ksub)
	}
}

// PQScan8 scores every m-entry code row of codes against the flat ADC
// table (m*ksub entries): out[i] = Σ_s table[s*ksub + codes[i*m+s]].
func PQScan8(table []float32, codes []byte, m, ksub int, out []float32) {
	if m == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	pqScan8Kernel(table, codes, m, ksub, out)
}

// PQScan16 is PQScan8 over wide ([]uint16) codes.
func PQScan16(table []float32, codes []uint16, m, ksub int, out []float32) {
	if m == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	for i := range out {
		out[i] = pqRow16(table, codes[i*m:i*m+m], ksub)
	}
}

// pqTileRows bounds the row tile of the multi-table scans so one tile of
// codes (~16KB) stays L1-resident while every table scans it.
func pqTileRows(m int) int {
	t := 16384 / m
	if t < 1 {
		t = 1
	}
	return t
}

// PQScan8Multi scores every code row against every table with one
// streaming pass over the codes: rows are tiled so each ~16KB tile of the
// arena is loaded once and stays cache-resident while all Q tables scan
// it (the code-arena traffic, the streaming cost of an out-of-cache scan,
// is paid once per tile), and within a tile each table runs the blocked
// single-query kernel. Per (table, row) the arithmetic is exactly
// PQScan8's, so outs[t] is bitwise equal to a single-query scan with
// tables[t].
func PQScan8Multi(tables [][]float32, codes []byte, m, ksub int, outs [][]float32) {
	if m == 0 {
		for t := range outs {
			for i := range outs[t] {
				outs[t][i] = 0
			}
		}
		return
	}
	rows := len(codes) / m
	tile := pqTileRows(m)
	for lo := 0; lo < rows; lo += tile {
		hi := lo + tile
		if hi > rows {
			hi = rows
		}
		block := codes[lo*m : hi*m]
		for t, table := range tables {
			pqScan8Kernel(table, block, m, ksub, outs[t][lo:hi])
		}
	}
}

// PQScan16Multi is PQScan8Multi over wide ([]uint16) codes.
func PQScan16Multi(tables [][]float32, codes []uint16, m, ksub int, outs [][]float32) {
	if m == 0 {
		for t := range outs {
			for i := range outs[t] {
				outs[t][i] = 0
			}
		}
		return
	}
	rows := len(codes) / m
	tile := pqTileRows(m)
	for lo := 0; lo < rows; lo += tile {
		hi := lo + tile
		if hi > rows {
			hi = rows
		}
		for t, table := range tables {
			out := outs[t]
			for i := lo; i < hi; i++ {
				out[i] = pqRow16(table, codes[i*m:i*m+m], ksub)
			}
		}
	}
}
