package linalg

// Multi-query blocked kernels: score a tile of Q queries against a packed
// row arena in one streaming pass. The arena is walked in row tiles sized
// by MultiRowTile so a tile stays cache-resident while all Q queries are
// scored against it — rows are loaded from memory once per batch instead
// of once per query, the classic GEMM restructuring. Queries are processed
// in quads (the SSE multi kernel shares each row load across 4 queries)
// with a single-query kernel sweeping the remainder.
//
// The per-(query, row) arithmetic is exactly the single-query kernels'
// (and therefore exactly Dot/SquaredL2/Distance's): tiling and quad
// grouping change only the order rows are *visited*, never the operations
// applied to any one (query, row) pair, so every output is bit-identical
// to Q independent single-query scans.

// MultiRowTile returns the number of arena rows a multi-query scan should
// process per tile: the largest row block that fits in L1d alongside the
// q query vectors (falling back to a quarter of L1d when the queries
// alone overflow it — the row tile then lives in L1 and the queries
// stream from L2). The result is clamped to [16, 4096] rows.
func MultiRowTile(dim, q int) int {
	if dim <= 0 {
		return 1
	}
	const l1 = 32 << 10
	budget := l1 - q*dim*4
	if budget < l1/4 {
		budget = l1 / 4
	}
	rows := budget / (dim * 4)
	if rows < 16 {
		rows = 16
	}
	if rows > 4096 {
		rows = 4096
	}
	return rows
}

// multiScatter is the shared core: queries[i] scored against every row of
// block, written to outs[i] (each len(block)/dim long). l2 selects the
// squared-L2 kernels; otherwise the dot kernels run with the fused op
// epilogue. Row tiles are processed innermost so each tile is reused
// across all queries while cache-resident.
func multiScatter(l2 bool, op int, queries [][]float32, block []float32, outs [][]float32) {
	qn := len(queries)
	if qn == 0 {
		return
	}
	dim := len(queries[0])
	if dim == 0 {
		return
	}
	rows := len(block) / dim
	tile := MultiRowTile(dim, qn)
	for lo := 0; lo < rows; lo += tile {
		hi := lo + tile
		if hi > rows {
			hi = rows
		}
		b := block[lo*dim : hi*dim]
		qi := 0
		for ; qi+4 <= qn; qi += 4 {
			if l2 {
				l2Multi4Kernel(queries[qi], queries[qi+1], queries[qi+2], queries[qi+3], b,
					outs[qi][lo:hi], outs[qi+1][lo:hi], outs[qi+2][lo:hi], outs[qi+3][lo:hi])
			} else {
				dotMulti4Kernel(queries[qi], queries[qi+1], queries[qi+2], queries[qi+3], b,
					outs[qi][lo:hi], outs[qi+1][lo:hi], outs[qi+2][lo:hi], outs[qi+3][lo:hi], op)
			}
		}
		for ; qi < qn; qi++ {
			if l2 {
				l2BlockKernel(queries[qi], b, outs[qi][lo:hi])
			} else {
				dotBlockKernel(queries[qi], b, outs[qi][lo:hi], op)
			}
		}
	}
}

// metricKernel maps a metric to the kernel selector: the l2 kernel family
// or the dot family with a fused epilogue op.
func metricKernel(m Metric) (l2 bool, op int) {
	switch m {
	case L2:
		return true, opNone
	case InnerProduct:
		return false, opNeg
	case Angular:
		return false, opOneMinus
	default:
		panic("linalg: unknown metric " + m.String())
	}
}

// DistanceMultiScatter computes, for each query i, the distance of
// queries[i] to every row of the packed arena block under metric m,
// writing row r's distance to outs[i][r]. Every output is bitwise equal
// to DistanceBlock(m, queries[i], block, outs[i]); the arena is streamed
// once, in cache-resident tiles reused across all queries. All queries
// must share one dimension and len(block) must be a multiple of it.
func DistanceMultiScatter(m Metric, queries [][]float32, block []float32, outs [][]float32) {
	l2, op := metricKernel(m)
	multiScatter(l2, op, queries, block, outs)
}

// multiMatrix adapts the Matrix query form onto multiScatter: out is
// query-major, out[qi*rows : (qi+1)*rows] holding query qi's results.
func multiMatrix(l2 bool, op int, queries *Matrix, block []float32, out []float32) {
	qn := queries.Rows()
	if qn == 0 {
		return
	}
	dim := queries.Dim()
	if dim == 0 {
		return
	}
	rows := len(block) / dim
	tile := MultiRowTile(dim, qn)
	for lo := 0; lo < rows; lo += tile {
		hi := lo + tile
		if hi > rows {
			hi = rows
		}
		b := block[lo*dim : hi*dim]
		qi := 0
		for ; qi+4 <= qn; qi += 4 {
			o0 := out[qi*rows:]
			o1 := out[(qi+1)*rows:]
			o2 := out[(qi+2)*rows:]
			o3 := out[(qi+3)*rows:]
			if l2 {
				l2Multi4Kernel(queries.Row(qi), queries.Row(qi+1), queries.Row(qi+2), queries.Row(qi+3), b,
					o0[lo:hi], o1[lo:hi], o2[lo:hi], o3[lo:hi])
			} else {
				dotMulti4Kernel(queries.Row(qi), queries.Row(qi+1), queries.Row(qi+2), queries.Row(qi+3), b,
					o0[lo:hi], o1[lo:hi], o2[lo:hi], o3[lo:hi], op)
			}
		}
		for ; qi < qn; qi++ {
			o := out[qi*rows:]
			if l2 {
				l2BlockKernel(queries.Row(qi), b, o[lo:hi])
			} else {
				dotBlockKernel(queries.Row(qi), b, o[lo:hi], op)
			}
		}
	}
}

// DotMultiBlock computes the dot product of every query row of queries
// against every row of the packed arena block: out[qi*rows+r] is bitwise
// equal to Dot(queries.Row(qi), row_r), with rows = len(block)/dim. out
// must hold queries.Rows()*rows values.
func DotMultiBlock(queries *Matrix, block []float32, out []float32) {
	multiMatrix(false, opNone, queries, block, out)
}

// SquaredL2MultiBlock is the squared-Euclidean counterpart of
// DotMultiBlock: out[qi*rows+r] == SquaredL2(queries.Row(qi), row_r),
// bitwise.
func SquaredL2MultiBlock(queries *Matrix, block []float32, out []float32) {
	multiMatrix(true, opNone, queries, block, out)
}

// DistanceMultiBlock computes the distance of every query row to every
// arena row under metric m: out[qi*rows+r] == Distance(m,
// queries.Row(qi), row_r), bitwise. The metric epilogue is fused into the
// scoring loop like DistanceBlock's.
func DistanceMultiBlock(m Metric, queries *Matrix, block []float32, out []float32) {
	l2, op := metricKernel(m)
	multiMatrix(l2, op, queries, block, out)
}
