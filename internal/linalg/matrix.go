package linalg

import "fmt"

// Matrix is a dense row-major collection of float32 vectors stored in one
// contiguous arena: row i occupies Data()[i*stride : i*stride+dim]. It is
// the cache-friendly replacement for [][]float32 throughout the engine —
// one allocation, no per-row pointer chase, and contiguous row ranges that
// the blocked kernels (DotBlock, SquaredL2Block) can stream over.
//
// A Matrix may be a *view*: Slice shares the arena of its parent, and
// SubspaceView additionally narrows the columns (stride > dim). Views are
// cheap and copy nothing; mutating a view mutates its parent. Packed
// reports whether rows are contiguous (stride == dim), which the blocked
// kernels require.
type Matrix struct {
	data   []float32
	dim    int
	stride int
	rows   int
}

// NewMatrix returns an empty, appendable matrix for vectors of the given
// dimension, with capacity pre-allocated for capRows rows.
func NewMatrix(dim, capRows int) *Matrix {
	if dim <= 0 {
		panic(fmt.Sprintf("linalg: Matrix dimension must be positive, got %d", dim))
	}
	if capRows < 0 {
		capRows = 0
	}
	return &Matrix{data: make([]float32, 0, dim*capRows), dim: dim, stride: dim}
}

// MatrixFromRows copies the given rows into a fresh packed matrix. All rows
// must share the same length; it panics on ragged input or no rows.
func MatrixFromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		panic("linalg: MatrixFromRows of empty set")
	}
	m := NewMatrix(len(rows[0]), len(rows))
	for _, r := range rows {
		m.AppendRow(r)
	}
	return m
}

// Rows reports the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Dim reports the per-row dimension.
func (m *Matrix) Dim() int { return m.dim }

// Packed reports whether rows are contiguous (stride == dim), the layout
// the blocked kernels require.
func (m *Matrix) Packed() bool { return m.stride == m.dim }

// Row returns row i as a subslice of the arena. The slice aliases the
// matrix: writes to it write the matrix.
func (m *Matrix) Row(i int) []float32 {
	lo := i * m.stride
	return m.data[lo : lo+m.dim : lo+m.dim]
}

// Data returns the packed arena, exactly Rows()*Dim() long, for use with
// the blocked kernels. It panics on a non-packed view.
func (m *Matrix) Data() []float32 {
	if !m.Packed() {
		panic("linalg: Data on a non-packed matrix view")
	}
	return m.data[:m.rows*m.dim]
}

// AppendRow copies v into a new final row. It panics when v has the wrong
// dimension or the matrix is a non-packed view (whose arena it would tear).
func (m *Matrix) AppendRow(v []float32) {
	if len(v) != m.dim {
		panic(fmt.Sprintf("linalg: AppendRow dim %d, want %d", len(v), m.dim))
	}
	if !m.Packed() {
		panic("linalg: AppendRow on a non-packed matrix view")
	}
	m.data = append(m.data[:m.rows*m.dim], v...)
	m.rows++
}

// Slice returns a view of rows [lo, hi) sharing this matrix's arena. The
// view's capacity is clipped to its own rows, so an append through it can
// never overwrite the parent.
func (m *Matrix) Slice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.rows {
		panic(fmt.Sprintf("linalg: Slice[%d:%d] of %d rows", lo, hi, m.rows))
	}
	rows := hi - lo
	start := lo * m.stride
	end := start
	if rows > 0 {
		end = start + (rows-1)*m.stride + m.dim
	}
	return &Matrix{data: m.data[start:end:end], dim: m.dim, stride: m.stride, rows: rows}
}

// SubspaceView returns a view of columns [lo, hi) of every row: same row
// count, dimension hi-lo, stride of the parent. The product-quantization
// trainer clusters each subspace through such views without copying.
func (m *Matrix) SubspaceView(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.dim {
		panic(fmt.Sprintf("linalg: SubspaceView[%d:%d] of dim %d", lo, hi, m.dim))
	}
	return &Matrix{data: m.data[lo:], dim: hi - lo, stride: m.stride, rows: m.rows}
}

// SwapRows exchanges rows i and j element-wise.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	a, b := m.Row(i), m.Row(j)
	for x := range a {
		a[x], b[x] = b[x], a[x]
	}
}

// CopyRow overwrites row dst with row src.
func (m *Matrix) CopyRow(dst, src int) {
	if dst == src {
		return
	}
	copy(m.Row(dst), m.Row(src))
}

// Truncate shrinks the matrix to its first n rows, keeping capacity.
func (m *Matrix) Truncate(n int) {
	if n < 0 || n > m.rows {
		panic(fmt.Sprintf("linalg: Truncate(%d) of %d rows", n, m.rows))
	}
	m.rows = n
}

// Bytes reports the arena size of the held rows.
func (m *Matrix) Bytes() int64 { return int64(m.rows) * int64(m.dim) * 4 }
