//go:build amd64 && !purego

package linalg

// The SSE2 kernels in kernels_amd64.s mirror the scalar loops exactly:
// XMM lane l accumulates the elements at indices ≡ l (mod 4) — the same
// partial sums s0..s3 as the Go code — the scalar tail adds into lane 0,
// and the horizontal reduce sums ((s0+s1)+s2)+s3 with scalar ADDSS in
// that order. No FMA, no wider vectors, no re-association: every output
// is bitwise equal to the portable kernels, which the bit-identity tests
// in multi_test.go assert. The op epilogue uses exact operations only
// (sign-flip via XOR, 1-x via SUBSS from the constant 1.0).

//go:noescape
func dotBlockSSE(q, block, out []float32, op int64)

//go:noescape
func l2BlockSSE(q, block, out []float32)

//go:noescape
func dotMulti4SSE(q0, q1, q2, q3, block, o0, o1, o2, o3 []float32, op int64)

//go:noescape
func l2Multi4SSE(q0, q1, q2, q3, block, o0, o1, o2, o3 []float32)

func dotBlockKernel(q, block []float32, out []float32, op int) {
	dim := len(q)
	if len(out) == 0 {
		return
	}
	if dim == 0 {
		dotBlockGo(q, block, out, op)
		return
	}
	_ = block[len(out)*dim-1] // one bounds check for the whole arena scan
	dotBlockSSE(q, block, out, int64(op))
}

func l2BlockKernel(q, block []float32, out []float32) {
	dim := len(q)
	if len(out) == 0 {
		return
	}
	if dim == 0 {
		l2BlockGo(q, block, out)
		return
	}
	_ = block[len(out)*dim-1]
	l2BlockSSE(q, block, out)
}

func dotMulti4Kernel(q0, q1, q2, q3, block []float32, o0, o1, o2, o3 []float32, op int) {
	rows := len(o0)
	dim := len(q0)
	if rows == 0 {
		return
	}
	if dim == 0 || len(q1) != dim || len(q2) != dim || len(q3) != dim {
		dotMulti4Go(q0, q1, q2, q3, block, o0, o1, o2, o3, op)
		return
	}
	_ = block[rows*dim-1]
	dotMulti4SSE(q0, q1, q2, q3, block, o0, o1[:rows], o2[:rows], o3[:rows], int64(op))
}

func l2Multi4Kernel(q0, q1, q2, q3, block []float32, o0, o1, o2, o3 []float32) {
	rows := len(o0)
	dim := len(q0)
	if rows == 0 {
		return
	}
	if dim == 0 || len(q1) != dim || len(q2) != dim || len(q3) != dim {
		l2Multi4Go(q0, q1, q2, q3, block, o0, o1, o2, o3)
		return
	}
	_ = block[rows*dim-1]
	l2Multi4SSE(q0, q1, q2, q3, block, o0, o1[:rows], o2[:rows], o3[:rows])
}
