//go:build amd64 && !purego

package linalg

// The SSE2 kernels in kernels_amd64.s mirror the scalar loops exactly:
// XMM lane l accumulates the elements at indices ≡ l (mod 4) — the same
// partial sums s0..s3 as the Go code — the scalar tail adds into lane 0,
// and the horizontal reduce sums ((s0+s1)+s2)+s3 with scalar ADDSS in
// that order. No FMA, no wider vectors, no re-association: every output
// is bitwise equal to the portable kernels, which the bit-identity tests
// in multi_test.go assert. The op epilogue uses exact operations only
// (sign-flip via XOR, 1-x via SUBSS from the constant 1.0).

//go:noescape
func dotBlockSSE(q, block, out []float32, op int64)

//go:noescape
func l2BlockSSE(q, block, out []float32)

//go:noescape
func dotMulti4SSE(q0, q1, q2, q3, block, o0, o1, o2, o3 []float32, op int64)

//go:noescape
func l2Multi4SSE(q0, q1, q2, q3, block, o0, o1, o2, o3 []float32)

func dotBlockKernel(q, block []float32, out []float32, op int) {
	dim := len(q)
	if len(out) == 0 {
		return
	}
	if dim == 0 {
		dotBlockGo(q, block, out, op)
		return
	}
	_ = block[len(out)*dim-1] // one bounds check for the whole arena scan
	dotBlockSSE(q, block, out, int64(op))
}

func l2BlockKernel(q, block []float32, out []float32) {
	dim := len(q)
	if len(out) == 0 {
		return
	}
	if dim == 0 {
		l2BlockGo(q, block, out)
		return
	}
	_ = block[len(out)*dim-1]
	l2BlockSSE(q, block, out)
}

func dotMulti4Kernel(q0, q1, q2, q3, block []float32, o0, o1, o2, o3 []float32, op int) {
	rows := len(o0)
	dim := len(q0)
	if rows == 0 {
		return
	}
	if dim == 0 || len(q1) != dim || len(q2) != dim || len(q3) != dim {
		dotMulti4Go(q0, q1, q2, q3, block, o0, o1, o2, o3, op)
		return
	}
	_ = block[rows*dim-1]
	dotMulti4SSE(q0, q1, q2, q3, block, o0, o1[:rows], o2[:rows], o3[:rows], int64(op))
}

func l2Multi4Kernel(q0, q1, q2, q3, block []float32, o0, o1, o2, o3 []float32) {
	rows := len(o0)
	dim := len(q0)
	if rows == 0 {
		return
	}
	if dim == 0 || len(q1) != dim || len(q2) != dim || len(q3) != dim {
		l2Multi4Go(q0, q1, q2, q3, block, o0, o1, o2, o3)
		return
	}
	_ = block[rows*dim-1]
	l2Multi4SSE(q0, q1, q2, q3, block, o0, o1[:rows], o2[:rows], o3[:rows])
}

// SQ8 byte-domain kernels: same lane contract, with the u8 code row
// widened in-register (PUNPCKLBW/PUNPCKLWL + CVTPL2PS) — four bytes decode
// to four float32 lanes per step, so lane l still accumulates indices
// ≡ l mod 4 and outputs stay bitwise equal to the portable kernels.

//go:noescape
func sq8L2BlockSSE(r, scale []float32, codes []byte, out []float32)

//go:noescape
func sq8DotBlockSSE(q, min, scale []float32, codes []byte, out []float32, op int64)

//go:noescape
func sq8L2Multi4SSE(r0, r1, r2, r3, scale []float32, codes []byte, o0, o1, o2, o3 []float32)

//go:noescape
func sq8DotMulti4SSE(q0, q1, q2, q3, min, scale []float32, codes []byte, o0, o1, o2, o3 []float32, op int64)

func sq8L2BlockKernel(r, scale []float32, codes []byte, out []float32) {
	dim := len(r)
	if len(out) == 0 {
		return
	}
	if dim == 0 || len(scale) != dim {
		sq8L2BlockGo(r, scale, codes, out)
		return
	}
	_ = codes[len(out)*dim-1] // one bounds check for the whole arena scan
	sq8L2BlockSSE(r, scale, codes, out)
}

func sq8DotBlockKernel(q, min, scale []float32, codes []byte, out []float32, op int) {
	dim := len(q)
	if len(out) == 0 {
		return
	}
	if dim == 0 || len(min) != dim || len(scale) != dim {
		sq8DotBlockGo(q, min, scale, codes, out, op)
		return
	}
	_ = codes[len(out)*dim-1]
	sq8DotBlockSSE(q, min, scale, codes, out, int64(op))
}

func sq8L2Multi4Kernel(r0, r1, r2, r3, scale []float32, codes []byte, o0, o1, o2, o3 []float32) {
	rows := len(o0)
	dim := len(r0)
	if rows == 0 {
		return
	}
	if dim == 0 || len(r1) != dim || len(r2) != dim || len(r3) != dim || len(scale) != dim {
		sq8L2Multi4Go(r0, r1, r2, r3, scale, codes, o0, o1, o2, o3)
		return
	}
	_ = codes[rows*dim-1]
	sq8L2Multi4SSE(r0, r1, r2, r3, scale, codes, o0, o1[:rows], o2[:rows], o3[:rows])
}

func sq8DotMulti4Kernel(q0, q1, q2, q3, min, scale []float32, codes []byte, o0, o1, o2, o3 []float32, op int) {
	rows := len(o0)
	dim := len(q0)
	if rows == 0 {
		return
	}
	if dim == 0 || len(q1) != dim || len(q2) != dim || len(q3) != dim || len(min) != dim || len(scale) != dim {
		sq8DotMulti4Go(q0, q1, q2, q3, min, scale, codes, o0, o1, o2, o3, op)
		return
	}
	_ = codes[rows*dim-1]
	sq8DotMulti4SSE(q0, q1, q2, q3, min, scale, codes, o0, o1[:rows], o2[:rows], o3[:rows], int64(op))
}

//go:noescape
func pqScan8SSE(table []float32, codes []byte, m, ksub int64, out []float32)

// pqScan8Kernel dispatches the narrow ADC scan. The asm path gathers
// table[j*ksub+code] without per-element bounds checks, so it requires
// the table to cover the worst representable code ((m-1)*ksub + 255 —
// exactly m*ksub entries at the common ksub=256) and one m-byte code row
// per output; anything short falls back to the bounds-checked Go loop.
func pqScan8Kernel(table []float32, codes []byte, m, ksub int, out []float32) {
	rows := len(out)
	if rows == 0 {
		return
	}
	if m <= 0 || ksub <= 0 || len(table) < (m-1)*ksub+256 || len(codes) < rows*m {
		pqScan8Go(table, codes, m, ksub, out)
		return
	}
	pqScan8SSE(table, codes, int64(m), int64(ksub), out)
}
