//go:build amd64 && !purego

#include "textflag.h"

// SSE2 distance kernels. The bit-identity contract (see kernels.go):
// XMM lane l holds partial sum s_l (elements at indices ≡ l mod 4), the
// scalar tail accumulates into lane 0, and the reduce is the scalar
// chain ((s0+s1)+s2)+s3. MULPS/ADDPS/SUBPS round each lane exactly like
// the corresponding scalar ops, so every output is bitwise equal to the
// portable Go kernels. FMA and 8-wide vectors are deliberately not used:
// fused rounding and a different accumulator split would both break the
// contract.

DATA signmask32<>+0(SB)/4, $0x80000000
GLOBL signmask32<>(SB), RODATA|NOPTR, $4

DATA one32<>+0(SB)/4, $0x3F800000
GLOBL one32<>(SB), RODATA|NOPTR, $4

// func dotBlockSSE(q, block, out []float32, op int64)
// q: dim floats; block: len(out)*dim floats; op: 0 dot, 1 -dot, 2 1-dot.
TEXT ·dotBlockSSE(SB), NOSPLIT, $0-80
	MOVQ  q_base+0(FP), SI
	MOVQ  q_len+8(FP), BX     // dim
	MOVQ  block_base+24(FP), DI
	MOVQ  out_base+48(FP), DX
	MOVQ  out_len+56(FP), CX  // rows
	MOVQ  op+72(FP), R9

	TESTQ CX, CX
	JE    dbdone

	MOVSS signmask32<>(SB), X7
	MOVSS one32<>(SB), X6

	MOVQ  BX, R10
	ANDQ  $-4, R10            // vecend = dim &^ 3

dbrow:
	XORPS X0, X0              // lanes = s0..s3
	XORQ  R8, R8              // j = 0
	TESTQ R10, R10
	JE    dbtail

dbvec:
	MOVUPS (SI)(R8*4), X1
	MOVUPS (DI)(R8*4), X2
	MULPS  X2, X1
	ADDPS  X1, X0
	ADDQ   $4, R8
	CMPQ   R8, R10
	JL     dbvec

dbtail:
	CMPQ R8, BX
	JGE  dbreduce

dbtailloop:
	MOVSS (SI)(R8*4), X1
	MOVSS (DI)(R8*4), X2
	MULSS X2, X1
	ADDSS X1, X0              // tail adds into lane 0 = s0
	INCQ  R8
	CMPQ  R8, BX
	JL    dbtailloop

dbreduce:
	// Extract s1..s3 before touching lane 0, then sum ((s0+s1)+s2)+s3.
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	MOVAPS X0, X2
	SHUFPS $0xAA, X2, X2
	MOVAPS X0, X3
	SHUFPS $0xFF, X3, X3
	ADDSS  X1, X0
	ADDSS  X2, X0
	ADDSS  X3, X0

	CMPQ R9, $1
	JE   dbneg
	CMPQ R9, $2
	JE   dboneminus
	MOVSS X0, (DX)
	JMP   dbnext

dbneg:
	XORPS X7, X0              // exact sign flip
	MOVSS X0, (DX)
	JMP   dbnext

dboneminus:
	MOVAPS X6, X5
	SUBSS  X0, X5             // 1 - dot, exact
	MOVSS  X5, (DX)

dbnext:
	ADDQ $4, DX               // out++
	LEAQ (DI)(BX*4), DI       // block += dim
	DECQ CX
	JNZ  dbrow

dbdone:
	RET

// func l2BlockSSE(q, block, out []float32)
TEXT ·l2BlockSSE(SB), NOSPLIT, $0-72
	MOVQ  q_base+0(FP), SI
	MOVQ  q_len+8(FP), BX
	MOVQ  block_base+24(FP), DI
	MOVQ  out_base+48(FP), DX
	MOVQ  out_len+56(FP), CX

	TESTQ CX, CX
	JE    l2done

	MOVQ BX, R10
	ANDQ $-4, R10

l2row:
	XORPS X0, X0
	XORQ  R8, R8
	TESTQ R10, R10
	JE    l2tail

l2vec:
	MOVUPS (SI)(R8*4), X1
	MOVUPS (DI)(R8*4), X2
	SUBPS  X2, X1             // d = q - row
	MULPS  X1, X1
	ADDPS  X1, X0
	ADDQ   $4, R8
	CMPQ   R8, R10
	JL     l2vec

l2tail:
	CMPQ R8, BX
	JGE  l2reduce

l2tailloop:
	MOVSS (SI)(R8*4), X1
	MOVSS (DI)(R8*4), X2
	SUBSS X2, X1
	MULSS X1, X1
	ADDSS X1, X0
	INCQ  R8
	CMPQ  R8, BX
	JL    l2tailloop

l2reduce:
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	MOVAPS X0, X2
	SHUFPS $0xAA, X2, X2
	MOVAPS X0, X3
	SHUFPS $0xFF, X3, X3
	ADDSS  X1, X0
	ADDSS  X2, X0
	ADDSS  X3, X0
	MOVSS  X0, (DX)

	ADDQ $4, DX
	LEAQ (DI)(BX*4), DI
	DECQ CX
	JNZ  l2row

l2done:
	RET

// HREDUCE reduces one accumulator register to its lane-0 scalar sum
// ((s0+s1)+s2)+s3, using X12/X13/X14 as scratch. Lanes are extracted
// before any ADDSS touches lane 0.
#define HREDUCE(acc) \
	MOVAPS acc, X12 \
	SHUFPS $0x55, X12, X12 \
	MOVAPS acc, X13 \
	SHUFPS $0xAA, X13, X13 \
	MOVAPS acc, X14 \
	SHUFPS $0xFF, X14, X14 \
	ADDSS  X12, acc \
	ADDSS  X13, acc \
	ADDSS  X14, acc

// func dotMulti4SSE(q0, q1, q2, q3, block, o0, o1, o2, o3 []float32, op int64)
// Four queries share each row load: the row tile is streamed once and
// reused across the quad. Per query the arithmetic is dotBlockSSE's.
TEXT ·dotMulti4SSE(SB), NOSPLIT, $0-224
	MOVQ q0_base+0(FP), SI
	MOVQ q1_base+24(FP), R14
	MOVQ q2_base+48(FP), R15
	MOVQ block_base+96(FP), DI
	MOVQ o0_base+120(FP), DX
	MOVQ o0_len+128(FP), CX   // rows
	MOVQ o1_base+144(FP), R11
	MOVQ o2_base+168(FP), R12
	MOVQ o3_base+192(FP), R13
	MOVQ q0_len+8(FP), BX     // dim
	MOVQ op+216(FP), R9

	TESTQ CX, CX
	JE    dm4done

	MOVSS signmask32<>(SB), X7
	MOVSS one32<>(SB), X6

	MOVQ q3_base+72(FP), AX
	MOVQ BX, R10
	ANDQ $-4, R10

dm4row:
	XORPS X0, X0              // acc q0
	XORPS X1, X1              // acc q1
	XORPS X2, X2              // acc q2
	XORPS X3, X3              // acc q3
	XORQ  R8, R8
	TESTQ R10, R10
	JE    dm4tail

dm4vec:
	MOVUPS (DI)(R8*4), X4     // row[j..j+3], loaded once for all 4 queries
	MOVUPS (SI)(R8*4), X5
	MULPS  X4, X5
	ADDPS  X5, X0
	MOVUPS (R14)(R8*4), X5
	MULPS  X4, X5
	ADDPS  X5, X1
	MOVUPS (R15)(R8*4), X5
	MULPS  X4, X5
	ADDPS  X5, X2
	MOVUPS (AX)(R8*4), X5
	MULPS  X4, X5
	ADDPS  X5, X3
	ADDQ   $4, R8
	CMPQ   R8, R10
	JL     dm4vec

dm4tail:
	CMPQ R8, BX
	JGE  dm4reduce

dm4tailloop:
	MOVSS (DI)(R8*4), X4
	MOVSS (SI)(R8*4), X5
	MULSS X4, X5
	ADDSS X5, X0
	MOVSS (R14)(R8*4), X5
	MULSS X4, X5
	ADDSS X5, X1
	MOVSS (R15)(R8*4), X5
	MULSS X4, X5
	ADDSS X5, X2
	MOVSS (AX)(R8*4), X5
	MULSS X4, X5
	ADDSS X5, X3
	INCQ  R8
	CMPQ  R8, BX
	JL    dm4tailloop

dm4reduce:
	HREDUCE(X0)
	HREDUCE(X1)
	HREDUCE(X2)
	HREDUCE(X3)

	CMPQ R9, $1
	JE   dm4neg
	CMPQ R9, $2
	JE   dm4oneminus
	MOVSS X0, (DX)
	MOVSS X1, (R11)
	MOVSS X2, (R12)
	MOVSS X3, (R13)
	JMP   dm4next

dm4neg:
	XORPS X7, X0
	XORPS X7, X1
	XORPS X7, X2
	XORPS X7, X3
	MOVSS X0, (DX)
	MOVSS X1, (R11)
	MOVSS X2, (R12)
	MOVSS X3, (R13)
	JMP   dm4next

dm4oneminus:
	MOVAPS X6, X5
	SUBSS  X0, X5
	MOVSS  X5, (DX)
	MOVAPS X6, X5
	SUBSS  X1, X5
	MOVSS  X5, (R11)
	MOVAPS X6, X5
	SUBSS  X2, X5
	MOVSS  X5, (R12)
	MOVAPS X6, X5
	SUBSS  X3, X5
	MOVSS  X5, (R13)

dm4next:
	ADDQ $4, DX
	ADDQ $4, R11
	ADDQ $4, R12
	ADDQ $4, R13
	LEAQ (DI)(BX*4), DI
	DECQ CX
	JNZ  dm4row

dm4done:
	RET

// func l2Multi4SSE(q0, q1, q2, q3, block, o0, o1, o2, o3 []float32)
TEXT ·l2Multi4SSE(SB), NOSPLIT, $0-216
	MOVQ q0_base+0(FP), SI
	MOVQ q1_base+24(FP), R14
	MOVQ q2_base+48(FP), R15
	MOVQ q3_base+72(FP), AX
	MOVQ block_base+96(FP), DI
	MOVQ o0_base+120(FP), DX
	MOVQ o0_len+128(FP), CX
	MOVQ o1_base+144(FP), R11
	MOVQ o2_base+168(FP), R12
	MOVQ o3_base+192(FP), R13
	MOVQ q0_len+8(FP), BX

	TESTQ CX, CX
	JE    l2m4done

	MOVQ BX, R10
	ANDQ $-4, R10

l2m4row:
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORQ  R8, R8
	TESTQ R10, R10
	JE    l2m4tail

l2m4vec:
	MOVUPS (DI)(R8*4), X4
	MOVUPS (SI)(R8*4), X5
	SUBPS  X4, X5
	MULPS  X5, X5
	ADDPS  X5, X0
	MOVUPS (R14)(R8*4), X5
	SUBPS  X4, X5
	MULPS  X5, X5
	ADDPS  X5, X1
	MOVUPS (R15)(R8*4), X5
	SUBPS  X4, X5
	MULPS  X5, X5
	ADDPS  X5, X2
	MOVUPS (AX)(R8*4), X5
	SUBPS  X4, X5
	MULPS  X5, X5
	ADDPS  X5, X3
	ADDQ   $4, R8
	CMPQ   R8, R10
	JL     l2m4vec

l2m4tail:
	CMPQ R8, BX
	JGE  l2m4reduce

l2m4tailloop:
	MOVSS (DI)(R8*4), X4
	MOVSS (SI)(R8*4), X5
	SUBSS X4, X5
	MULSS X5, X5
	ADDSS X5, X0
	MOVSS (R14)(R8*4), X5
	SUBSS X4, X5
	MULSS X5, X5
	ADDSS X5, X1
	MOVSS (R15)(R8*4), X5
	SUBSS X4, X5
	MULSS X5, X5
	ADDSS X5, X2
	MOVSS (AX)(R8*4), X5
	SUBSS X4, X5
	MULSS X5, X5
	ADDSS X5, X3
	INCQ  R8
	CMPQ  R8, BX
	JL    l2m4tailloop

l2m4reduce:
	HREDUCE(X0)
	HREDUCE(X1)
	HREDUCE(X2)
	HREDUCE(X3)
	MOVSS X0, (DX)
	MOVSS X1, (R11)
	MOVSS X2, (R12)
	MOVSS X3, (R13)

	ADDQ $4, DX
	ADDQ $4, R11
	ADDQ $4, R12
	ADDQ $4, R13
	LEAQ (DI)(BX*4), DI
	DECQ CX
	JNZ  l2m4row

l2m4done:
	RET
