//go:build amd64 && !purego

#include "textflag.h"

// SSE2 distance kernels. The bit-identity contract (see kernels.go):
// XMM lane l holds partial sum s_l (elements at indices ≡ l mod 4), the
// scalar tail accumulates into lane 0, and the reduce is the scalar
// chain ((s0+s1)+s2)+s3. MULPS/ADDPS/SUBPS round each lane exactly like
// the corresponding scalar ops, so every output is bitwise equal to the
// portable Go kernels. FMA and 8-wide vectors are deliberately not used:
// fused rounding and a different accumulator split would both break the
// contract.

DATA signmask32<>+0(SB)/4, $0x80000000
GLOBL signmask32<>(SB), RODATA|NOPTR, $4

DATA one32<>+0(SB)/4, $0x3F800000
GLOBL one32<>(SB), RODATA|NOPTR, $4

// func dotBlockSSE(q, block, out []float32, op int64)
// q: dim floats; block: len(out)*dim floats; op: 0 dot, 1 -dot, 2 1-dot.
TEXT ·dotBlockSSE(SB), NOSPLIT, $0-80
	MOVQ  q_base+0(FP), SI
	MOVQ  q_len+8(FP), BX     // dim
	MOVQ  block_base+24(FP), DI
	MOVQ  out_base+48(FP), DX
	MOVQ  out_len+56(FP), CX  // rows
	MOVQ  op+72(FP), R9

	TESTQ CX, CX
	JE    dbdone

	MOVSS signmask32<>(SB), X7
	MOVSS one32<>(SB), X6

	MOVQ  BX, R10
	ANDQ  $-4, R10            // vecend = dim &^ 3

dbrow:
	XORPS X0, X0              // lanes = s0..s3
	XORQ  R8, R8              // j = 0
	TESTQ R10, R10
	JE    dbtail

dbvec:
	MOVUPS (SI)(R8*4), X1
	MOVUPS (DI)(R8*4), X2
	MULPS  X2, X1
	ADDPS  X1, X0
	ADDQ   $4, R8
	CMPQ   R8, R10
	JL     dbvec

dbtail:
	CMPQ R8, BX
	JGE  dbreduce

dbtailloop:
	MOVSS (SI)(R8*4), X1
	MOVSS (DI)(R8*4), X2
	MULSS X2, X1
	ADDSS X1, X0              // tail adds into lane 0 = s0
	INCQ  R8
	CMPQ  R8, BX
	JL    dbtailloop

dbreduce:
	// Extract s1..s3 before touching lane 0, then sum ((s0+s1)+s2)+s3.
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	MOVAPS X0, X2
	SHUFPS $0xAA, X2, X2
	MOVAPS X0, X3
	SHUFPS $0xFF, X3, X3
	ADDSS  X1, X0
	ADDSS  X2, X0
	ADDSS  X3, X0

	CMPQ R9, $1
	JE   dbneg
	CMPQ R9, $2
	JE   dboneminus
	MOVSS X0, (DX)
	JMP   dbnext

dbneg:
	XORPS X7, X0              // exact sign flip
	MOVSS X0, (DX)
	JMP   dbnext

dboneminus:
	MOVAPS X6, X5
	SUBSS  X0, X5             // 1 - dot, exact
	MOVSS  X5, (DX)

dbnext:
	ADDQ $4, DX               // out++
	LEAQ (DI)(BX*4), DI       // block += dim
	DECQ CX
	JNZ  dbrow

dbdone:
	RET

// func l2BlockSSE(q, block, out []float32)
TEXT ·l2BlockSSE(SB), NOSPLIT, $0-72
	MOVQ  q_base+0(FP), SI
	MOVQ  q_len+8(FP), BX
	MOVQ  block_base+24(FP), DI
	MOVQ  out_base+48(FP), DX
	MOVQ  out_len+56(FP), CX

	TESTQ CX, CX
	JE    l2done

	MOVQ BX, R10
	ANDQ $-4, R10

l2row:
	XORPS X0, X0
	XORQ  R8, R8
	TESTQ R10, R10
	JE    l2tail

l2vec:
	MOVUPS (SI)(R8*4), X1
	MOVUPS (DI)(R8*4), X2
	SUBPS  X2, X1             // d = q - row
	MULPS  X1, X1
	ADDPS  X1, X0
	ADDQ   $4, R8
	CMPQ   R8, R10
	JL     l2vec

l2tail:
	CMPQ R8, BX
	JGE  l2reduce

l2tailloop:
	MOVSS (SI)(R8*4), X1
	MOVSS (DI)(R8*4), X2
	SUBSS X2, X1
	MULSS X1, X1
	ADDSS X1, X0
	INCQ  R8
	CMPQ  R8, BX
	JL    l2tailloop

l2reduce:
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	MOVAPS X0, X2
	SHUFPS $0xAA, X2, X2
	MOVAPS X0, X3
	SHUFPS $0xFF, X3, X3
	ADDSS  X1, X0
	ADDSS  X2, X0
	ADDSS  X3, X0
	MOVSS  X0, (DX)

	ADDQ $4, DX
	LEAQ (DI)(BX*4), DI
	DECQ CX
	JNZ  l2row

l2done:
	RET

// HREDUCE reduces one accumulator register to its lane-0 scalar sum
// ((s0+s1)+s2)+s3, using X12/X13/X14 as scratch. Lanes are extracted
// before any ADDSS touches lane 0.
#define HREDUCE(acc) \
	MOVAPS acc, X12 \
	SHUFPS $0x55, X12, X12 \
	MOVAPS acc, X13 \
	SHUFPS $0xAA, X13, X13 \
	MOVAPS acc, X14 \
	SHUFPS $0xFF, X14, X14 \
	ADDSS  X12, acc \
	ADDSS  X13, acc \
	ADDSS  X14, acc

// func dotMulti4SSE(q0, q1, q2, q3, block, o0, o1, o2, o3 []float32, op int64)
// Four queries share each row load: the row tile is streamed once and
// reused across the quad. Per query the arithmetic is dotBlockSSE's.
TEXT ·dotMulti4SSE(SB), NOSPLIT, $0-224
	MOVQ q0_base+0(FP), SI
	MOVQ q1_base+24(FP), R14
	MOVQ q2_base+48(FP), R15
	MOVQ block_base+96(FP), DI
	MOVQ o0_base+120(FP), DX
	MOVQ o0_len+128(FP), CX   // rows
	MOVQ o1_base+144(FP), R11
	MOVQ o2_base+168(FP), R12
	MOVQ o3_base+192(FP), R13
	MOVQ q0_len+8(FP), BX     // dim
	MOVQ op+216(FP), R9

	TESTQ CX, CX
	JE    dm4done

	MOVSS signmask32<>(SB), X7
	MOVSS one32<>(SB), X6

	MOVQ q3_base+72(FP), AX
	MOVQ BX, R10
	ANDQ $-4, R10

dm4row:
	XORPS X0, X0              // acc q0
	XORPS X1, X1              // acc q1
	XORPS X2, X2              // acc q2
	XORPS X3, X3              // acc q3
	XORQ  R8, R8
	TESTQ R10, R10
	JE    dm4tail

dm4vec:
	MOVUPS (DI)(R8*4), X4     // row[j..j+3], loaded once for all 4 queries
	MOVUPS (SI)(R8*4), X5
	MULPS  X4, X5
	ADDPS  X5, X0
	MOVUPS (R14)(R8*4), X5
	MULPS  X4, X5
	ADDPS  X5, X1
	MOVUPS (R15)(R8*4), X5
	MULPS  X4, X5
	ADDPS  X5, X2
	MOVUPS (AX)(R8*4), X5
	MULPS  X4, X5
	ADDPS  X5, X3
	ADDQ   $4, R8
	CMPQ   R8, R10
	JL     dm4vec

dm4tail:
	CMPQ R8, BX
	JGE  dm4reduce

dm4tailloop:
	MOVSS (DI)(R8*4), X4
	MOVSS (SI)(R8*4), X5
	MULSS X4, X5
	ADDSS X5, X0
	MOVSS (R14)(R8*4), X5
	MULSS X4, X5
	ADDSS X5, X1
	MOVSS (R15)(R8*4), X5
	MULSS X4, X5
	ADDSS X5, X2
	MOVSS (AX)(R8*4), X5
	MULSS X4, X5
	ADDSS X5, X3
	INCQ  R8
	CMPQ  R8, BX
	JL    dm4tailloop

dm4reduce:
	HREDUCE(X0)
	HREDUCE(X1)
	HREDUCE(X2)
	HREDUCE(X3)

	CMPQ R9, $1
	JE   dm4neg
	CMPQ R9, $2
	JE   dm4oneminus
	MOVSS X0, (DX)
	MOVSS X1, (R11)
	MOVSS X2, (R12)
	MOVSS X3, (R13)
	JMP   dm4next

dm4neg:
	XORPS X7, X0
	XORPS X7, X1
	XORPS X7, X2
	XORPS X7, X3
	MOVSS X0, (DX)
	MOVSS X1, (R11)
	MOVSS X2, (R12)
	MOVSS X3, (R13)
	JMP   dm4next

dm4oneminus:
	MOVAPS X6, X5
	SUBSS  X0, X5
	MOVSS  X5, (DX)
	MOVAPS X6, X5
	SUBSS  X1, X5
	MOVSS  X5, (R11)
	MOVAPS X6, X5
	SUBSS  X2, X5
	MOVSS  X5, (R12)
	MOVAPS X6, X5
	SUBSS  X3, X5
	MOVSS  X5, (R13)

dm4next:
	ADDQ $4, DX
	ADDQ $4, R11
	ADDQ $4, R12
	ADDQ $4, R13
	LEAQ (DI)(BX*4), DI
	DECQ CX
	JNZ  dm4row

dm4done:
	RET

// func l2Multi4SSE(q0, q1, q2, q3, block, o0, o1, o2, o3 []float32)
TEXT ·l2Multi4SSE(SB), NOSPLIT, $0-216
	MOVQ q0_base+0(FP), SI
	MOVQ q1_base+24(FP), R14
	MOVQ q2_base+48(FP), R15
	MOVQ q3_base+72(FP), AX
	MOVQ block_base+96(FP), DI
	MOVQ o0_base+120(FP), DX
	MOVQ o0_len+128(FP), CX
	MOVQ o1_base+144(FP), R11
	MOVQ o2_base+168(FP), R12
	MOVQ o3_base+192(FP), R13
	MOVQ q0_len+8(FP), BX

	TESTQ CX, CX
	JE    l2m4done

	MOVQ BX, R10
	ANDQ $-4, R10

l2m4row:
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORQ  R8, R8
	TESTQ R10, R10
	JE    l2m4tail

l2m4vec:
	MOVUPS (DI)(R8*4), X4
	MOVUPS (SI)(R8*4), X5
	SUBPS  X4, X5
	MULPS  X5, X5
	ADDPS  X5, X0
	MOVUPS (R14)(R8*4), X5
	SUBPS  X4, X5
	MULPS  X5, X5
	ADDPS  X5, X1
	MOVUPS (R15)(R8*4), X5
	SUBPS  X4, X5
	MULPS  X5, X5
	ADDPS  X5, X2
	MOVUPS (AX)(R8*4), X5
	SUBPS  X4, X5
	MULPS  X5, X5
	ADDPS  X5, X3
	ADDQ   $4, R8
	CMPQ   R8, R10
	JL     l2m4vec

l2m4tail:
	CMPQ R8, BX
	JGE  l2m4reduce

l2m4tailloop:
	MOVSS (DI)(R8*4), X4
	MOVSS (SI)(R8*4), X5
	SUBSS X4, X5
	MULSS X5, X5
	ADDSS X5, X0
	MOVSS (R14)(R8*4), X5
	SUBSS X4, X5
	MULSS X5, X5
	ADDSS X5, X1
	MOVSS (R15)(R8*4), X5
	SUBSS X4, X5
	MULSS X5, X5
	ADDSS X5, X2
	MOVSS (AX)(R8*4), X5
	SUBSS X4, X5
	MULSS X5, X5
	ADDSS X5, X3
	INCQ  R8
	CMPQ  R8, BX
	JL    l2m4tailloop

l2m4reduce:
	HREDUCE(X0)
	HREDUCE(X1)
	HREDUCE(X2)
	HREDUCE(X3)
	MOVSS X0, (DX)
	MOVSS X1, (R11)
	MOVSS X2, (R12)
	MOVSS X3, (R13)

	ADDQ $4, DX
	ADDQ $4, R11
	ADDQ $4, R12
	ADDQ $4, R13
	LEAQ (DI)(BX*4), DI
	DECQ CX
	JNZ  l2m4row

l2m4done:
	RET

// SQ8 byte-domain kernels. The decode runs in-register: four code bytes
// load with one MOVL, widen u8→s32 (PUNPCKLBW/PUNPCKLWL against zero),
// convert with CVTPL2PS, and scale with one MULPS — so lane l holds the
// decoded element at index ≡ l mod 4, the same split as the float
// kernels, and every downstream op (SUBPS/MULPS/ADDPS, scalar tail into
// lane 0, ((s0+s1)+s2)+s3 reduce) matches the portable contract in
// kernels_sq8.go bitwise. X6 stays zero throughout for the unpacks.

// func sq8L2BlockSSE(r, scale []float32, codes []byte, out []float32)
// r is the hoisted residual q - min; out[i] = Σ (r[j] - b[j]*scale[j])².
TEXT ·sq8L2BlockSSE(SB), NOSPLIT, $0-96
	MOVQ  r_base+0(FP), SI
	MOVQ  r_len+8(FP), BX     // dim
	MOVQ  scale_base+24(FP), R15
	MOVQ  codes_base+48(FP), DI
	MOVQ  out_base+72(FP), DX
	MOVQ  out_len+80(FP), CX  // rows

	TESTQ CX, CX
	JE    sq8l2done

	PXOR X6, X6               // zero lanes for the byte unpack

	MOVQ BX, R10
	ANDQ $-4, R10             // vecend = dim &^ 3

sq8l2row:
	XORPS X0, X0
	XORQ  R8, R8
	TESTQ R10, R10
	JE    sq8l2tail

sq8l2vec:
	MOVL      (DI)(R8*1), AX
	MOVQ      AX, X1
	PUNPCKLBW X6, X1
	PUNPCKLWL X6, X1
	CVTPL2PS  X1, X1          // f32(b[j..j+3])
	MOVUPS    (R15)(R8*4), X2
	MULPS     X2, X1          // t = b*scale
	MOVUPS    (SI)(R8*4), X2
	SUBPS     X1, X2          // d = r - t
	MULPS     X2, X2
	ADDPS     X2, X0
	ADDQ      $4, R8
	CMPQ      R8, R10
	JL        sq8l2vec

sq8l2tail:
	CMPQ R8, BX
	JGE  sq8l2reduce

sq8l2tailloop:
	MOVBLZX  (DI)(R8*1), AX
	CVTSL2SS AX, X1
	MOVSS    (R15)(R8*4), X2
	MULSS    X2, X1
	MOVSS    (SI)(R8*4), X2
	SUBSS    X1, X2
	MULSS    X2, X2
	ADDSS    X2, X0
	INCQ     R8
	CMPQ     R8, BX
	JL       sq8l2tailloop

sq8l2reduce:
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	MOVAPS X0, X2
	SHUFPS $0xAA, X2, X2
	MOVAPS X0, X3
	SHUFPS $0xFF, X3, X3
	ADDSS  X1, X0
	ADDSS  X2, X0
	ADDSS  X3, X0
	MOVSS  X0, (DX)

	ADDQ $4, DX
	LEAQ (DI)(BX*1), DI       // codes += dim bytes
	DECQ CX
	JNZ  sq8l2row

sq8l2done:
	RET

// func sq8DotBlockSSE(q, min, scale []float32, codes []byte, out []float32, op int64)
// out[i] = op(Σ q[j] * (min[j] + b[j]*scale[j])).
TEXT ·sq8DotBlockSSE(SB), NOSPLIT, $0-128
	MOVQ  q_base+0(FP), SI
	MOVQ  q_len+8(FP), BX     // dim
	MOVQ  min_base+24(FP), R14
	MOVQ  scale_base+48(FP), R15
	MOVQ  codes_base+72(FP), DI
	MOVQ  out_base+96(FP), DX
	MOVQ  out_len+104(FP), CX // rows
	MOVQ  op+120(FP), R9

	TESTQ CX, CX
	JE    sq8dbdone

	PXOR  X6, X6
	MOVSS signmask32<>(SB), X7

	MOVQ BX, R10
	ANDQ $-4, R10

sq8dbrow:
	XORPS X0, X0
	XORQ  R8, R8
	TESTQ R10, R10
	JE    sq8dbtail

sq8dbvec:
	MOVL      (DI)(R8*1), AX
	MOVQ      AX, X1
	PUNPCKLBW X6, X1
	PUNPCKLWL X6, X1
	CVTPL2PS  X1, X1
	MOVUPS    (R15)(R8*4), X2
	MULPS     X2, X1          // t = b*scale
	MOVUPS    (R14)(R8*4), X2
	ADDPS     X2, X1          // rec = min + t
	MOVUPS    (SI)(R8*4), X2
	MULPS     X2, X1          // q*rec
	ADDPS     X1, X0
	ADDQ      $4, R8
	CMPQ      R8, R10
	JL        sq8dbvec

sq8dbtail:
	CMPQ R8, BX
	JGE  sq8dbreduce

sq8dbtailloop:
	MOVBLZX  (DI)(R8*1), AX
	CVTSL2SS AX, X1
	MOVSS    (R15)(R8*4), X2
	MULSS    X2, X1
	MOVSS    (R14)(R8*4), X2
	ADDSS    X2, X1
	MOVSS    (SI)(R8*4), X2
	MULSS    X2, X1
	ADDSS    X1, X0
	INCQ     R8
	CMPQ     R8, BX
	JL       sq8dbtailloop

sq8dbreduce:
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1
	MOVAPS X0, X2
	SHUFPS $0xAA, X2, X2
	MOVAPS X0, X3
	SHUFPS $0xFF, X3, X3
	ADDSS  X1, X0
	ADDSS  X2, X0
	ADDSS  X3, X0

	CMPQ R9, $1
	JE   sq8dbneg
	CMPQ R9, $2
	JE   sq8dboneminus
	MOVSS X0, (DX)
	JMP   sq8dbnext

sq8dbneg:
	XORPS X7, X0
	MOVSS X0, (DX)
	JMP   sq8dbnext

sq8dboneminus:
	MOVSS one32<>(SB), X5
	SUBSS X0, X5
	MOVSS X5, (DX)

sq8dbnext:
	ADDQ $4, DX
	LEAQ (DI)(BX*1), DI
	DECQ CX
	JNZ  sq8dbrow

sq8dbdone:
	RET

// func sq8L2Multi4SSE(r0, r1, r2, r3, scale []float32, codes []byte, o0, o1, o2, o3 []float32)
// Four residuals share each decoded row: the u8→f32 widen + scale
// multiply — the dominant per-element cost of a byte scan — is paid once
// per row instead of once per (query, row). Out pointers are reloaded
// from the frame in the per-row epilogue to stay within the 14 free GPs.
TEXT ·sq8L2Multi4SSE(SB), NOSPLIT, $0-240
	MOVQ  r0_base+0(FP), SI
	MOVQ  r0_len+8(FP), BX    // dim
	MOVQ  r1_base+24(FP), R14
	MOVQ  r2_base+48(FP), R15
	MOVQ  r3_base+72(FP), R13
	MOVQ  scale_base+96(FP), DX
	MOVQ  codes_base+120(FP), DI
	MOVQ  o0_len+152(FP), CX  // rows

	TESTQ CX, CX
	JE    sq8l2m4done

	PXOR X6, X6

	MOVQ BX, R10
	ANDQ $-4, R10
	XORQ R11, R11             // out byte offset

sq8l2m4row:
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORQ  R8, R8
	TESTQ R10, R10
	JE    sq8l2m4tail

sq8l2m4vec:
	MOVL      (DI)(R8*1), AX
	MOVQ      AX, X4
	PUNPCKLBW X6, X4
	PUNPCKLWL X6, X4
	CVTPL2PS  X4, X4
	MOVUPS    (DX)(R8*4), X5
	MULPS     X5, X4          // t, shared by the quad
	MOVUPS    (SI)(R8*4), X5
	SUBPS     X4, X5
	MULPS     X5, X5
	ADDPS     X5, X0
	MOVUPS    (R14)(R8*4), X5
	SUBPS     X4, X5
	MULPS     X5, X5
	ADDPS     X5, X1
	MOVUPS    (R15)(R8*4), X5
	SUBPS     X4, X5
	MULPS     X5, X5
	ADDPS     X5, X2
	MOVUPS    (R13)(R8*4), X5
	SUBPS     X4, X5
	MULPS     X5, X5
	ADDPS     X5, X3
	ADDQ      $4, R8
	CMPQ      R8, R10
	JL        sq8l2m4vec

sq8l2m4tail:
	CMPQ R8, BX
	JGE  sq8l2m4reduce

sq8l2m4tailloop:
	MOVBLZX  (DI)(R8*1), AX
	CVTSL2SS AX, X4
	MOVSS    (DX)(R8*4), X5
	MULSS    X5, X4
	MOVSS    (SI)(R8*4), X5
	SUBSS    X4, X5
	MULSS    X5, X5
	ADDSS    X5, X0
	MOVSS    (R14)(R8*4), X5
	SUBSS    X4, X5
	MULSS    X5, X5
	ADDSS    X5, X1
	MOVSS    (R15)(R8*4), X5
	SUBSS    X4, X5
	MULSS    X5, X5
	ADDSS    X5, X2
	MOVSS    (R13)(R8*4), X5
	SUBSS    X4, X5
	MULSS    X5, X5
	ADDSS    X5, X3
	INCQ     R8
	CMPQ     R8, BX
	JL       sq8l2m4tailloop

sq8l2m4reduce:
	HREDUCE(X0)
	HREDUCE(X1)
	HREDUCE(X2)
	HREDUCE(X3)
	MOVQ  o0_base+144(FP), R12
	MOVSS X0, (R12)(R11*1)
	MOVQ  o1_base+168(FP), R12
	MOVSS X1, (R12)(R11*1)
	MOVQ  o2_base+192(FP), R12
	MOVSS X2, (R12)(R11*1)
	MOVQ  o3_base+216(FP), R12
	MOVSS X3, (R12)(R11*1)

	ADDQ $4, R11
	LEAQ (DI)(BX*1), DI
	DECQ CX
	JNZ  sq8l2m4row

sq8l2m4done:
	RET

// func sq8DotMulti4SSE(q0, q1, q2, q3, min, scale []float32, codes []byte, o0, o1, o2, o3 []float32, op int64)
TEXT ·sq8DotMulti4SSE(SB), NOSPLIT, $0-272
	MOVQ  q0_base+0(FP), SI
	MOVQ  q0_len+8(FP), BX    // dim
	MOVQ  q1_base+24(FP), R14
	MOVQ  q2_base+48(FP), R15
	MOVQ  q3_base+72(FP), R13
	MOVQ  min_base+96(FP), R9
	MOVQ  scale_base+120(FP), DX
	MOVQ  codes_base+144(FP), DI
	MOVQ  o0_len+176(FP), CX  // rows

	TESTQ CX, CX
	JE    sq8dm4done

	PXOR  X6, X6
	MOVSS signmask32<>(SB), X7

	MOVQ BX, R10
	ANDQ $-4, R10
	XORQ R11, R11

sq8dm4row:
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORQ  R8, R8
	TESTQ R10, R10
	JE    sq8dm4tail

sq8dm4vec:
	MOVL      (DI)(R8*1), AX
	MOVQ      AX, X4
	PUNPCKLBW X6, X4
	PUNPCKLWL X6, X4
	CVTPL2PS  X4, X4
	MOVUPS    (DX)(R8*4), X5
	MULPS     X5, X4          // t = b*scale
	MOVUPS    (R9)(R8*4), X5
	ADDPS     X5, X4          // rec = min + t, shared by the quad
	MOVUPS    (SI)(R8*4), X5
	MULPS     X4, X5
	ADDPS     X5, X0
	MOVUPS    (R14)(R8*4), X5
	MULPS     X4, X5
	ADDPS     X5, X1
	MOVUPS    (R15)(R8*4), X5
	MULPS     X4, X5
	ADDPS     X5, X2
	MOVUPS    (R13)(R8*4), X5
	MULPS     X4, X5
	ADDPS     X5, X3
	ADDQ      $4, R8
	CMPQ      R8, R10
	JL        sq8dm4vec

sq8dm4tail:
	CMPQ R8, BX
	JGE  sq8dm4reduce

sq8dm4tailloop:
	MOVBLZX  (DI)(R8*1), AX
	CVTSL2SS AX, X4
	MOVSS    (DX)(R8*4), X5
	MULSS    X5, X4
	MOVSS    (R9)(R8*4), X5
	ADDSS    X5, X4
	MOVSS    (SI)(R8*4), X5
	MULSS    X4, X5
	ADDSS    X5, X0
	MOVSS    (R14)(R8*4), X5
	MULSS    X4, X5
	ADDSS    X5, X1
	MOVSS    (R15)(R8*4), X5
	MULSS    X4, X5
	ADDSS    X5, X2
	MOVSS    (R13)(R8*4), X5
	MULSS    X4, X5
	ADDSS    X5, X3
	INCQ     R8
	CMPQ     R8, BX
	JL       sq8dm4tailloop

sq8dm4reduce:
	HREDUCE(X0)
	HREDUCE(X1)
	HREDUCE(X2)
	HREDUCE(X3)

	MOVQ op+264(FP), AX
	CMPQ AX, $1
	JE   sq8dm4neg
	CMPQ AX, $2
	JE   sq8dm4oneminus

sq8dm4store:
	MOVQ  o0_base+168(FP), R12
	MOVSS X0, (R12)(R11*1)
	MOVQ  o1_base+192(FP), R12
	MOVSS X1, (R12)(R11*1)
	MOVQ  o2_base+216(FP), R12
	MOVSS X2, (R12)(R11*1)
	MOVQ  o3_base+240(FP), R12
	MOVSS X3, (R12)(R11*1)
	JMP   sq8dm4next

sq8dm4neg:
	XORPS X7, X0
	XORPS X7, X1
	XORPS X7, X2
	XORPS X7, X3
	JMP   sq8dm4store

sq8dm4oneminus:
	MOVSS  one32<>(SB), X4
	MOVAPS X4, X5
	SUBSS  X0, X5
	MOVAPS X5, X0
	MOVAPS X4, X5
	SUBSS  X1, X5
	MOVAPS X5, X1
	MOVAPS X4, X5
	SUBSS  X2, X5
	MOVAPS X5, X2
	MOVAPS X4, X5
	SUBSS  X3, X5
	MOVAPS X5, X3
	JMP    sq8dm4store

sq8dm4next:
	ADDQ $4, R11
	LEAQ (DI)(BX*1), DI
	DECQ CX
	JNZ  sq8dm4row

sq8dm4done:
	RET

// func pqScan8SSE(table []float32, codes []byte, m, ksub int64, out []float32)
//
// Narrow (1-byte) ADC scan: out[i] = Σ_j table[j*ksub + codes[i*m+j]]
// under the mod-4 contract — quad-unrolled body with lane j&3, scalar
// tail into lane 0, reduced ((s0+s1)+s2)+s3. SSE2 has no gather, so the
// per-element loads are scalar; the kernel's advantage over the Go loop
// is gather addressing with no per-element bounds checks. The dispatch
// wrapper guarantees table covers (m-1)*ksub+255 and codes holds
// len(out)*m bytes.
//
// SI = table, DI = codes cursor (advances m per row), DX = out cursor,
// CX = remaining rows, BX = m, R9 = body (m &^ 3), R8 = ksub*4 (table
// stripe stride in bytes), R10 = stripe cursor, R11 = j, AX = code.
TEXT ·pqScan8SSE(SB), NOSPLIT, $0-88
	MOVQ table_base+0(FP), SI
	MOVQ codes_base+24(FP), DI
	MOVQ m+48(FP), BX
	MOVQ ksub+56(FP), R8
	MOVQ out_base+64(FP), DX
	MOVQ out_len+72(FP), CX
	SHLQ $2, R8           // ksub -> byte stride of one table stripe
	MOVQ BX, R9
	ANDQ $~3, R9          // body = m &^ 3

pqrow:
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	MOVQ  SI, R10
	XORQ  R11, R11
	CMPQ  R9, $0
	JE    pqtail

pqbody:
	MOVBLZX (DI)(R11*1), AX
	MOVSS   (R10)(AX*4), X4
	ADDSS   X4, X0
	ADDQ    R8, R10
	MOVBLZX 1(DI)(R11*1), AX
	MOVSS   (R10)(AX*4), X5
	ADDSS   X5, X1
	ADDQ    R8, R10
	MOVBLZX 2(DI)(R11*1), AX
	MOVSS   (R10)(AX*4), X4
	ADDSS   X4, X2
	ADDQ    R8, R10
	MOVBLZX 3(DI)(R11*1), AX
	MOVSS   (R10)(AX*4), X5
	ADDSS   X5, X3
	ADDQ    R8, R10
	ADDQ    $4, R11
	CMPQ    R11, R9
	JLT     pqbody

pqtail:
	CMPQ R11, BX
	JGE  pqreduce
	MOVBLZX (DI)(R11*1), AX
	MOVSS   (R10)(AX*4), X4
	ADDSS   X4, X0
	ADDQ    R8, R10
	INCQ    R11
	JMP     pqtail

pqreduce:
	ADDSS X1, X0
	ADDSS X2, X0
	ADDSS X3, X0
	MOVSS X0, (DX)
	ADDQ  $4, DX
	ADDQ  BX, DI
	DECQ  CX
	JNZ   pqrow
	RET
