package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestDotBasic(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{5, 4, 3, 2, 1}
	if got := Dot(a, b); got != 35 {
		t.Fatalf("Dot = %v, want 35", got)
	}
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40) + 1
		a := make([]float32, n)
		b := make([]float32, n)
		var want float64
		for i := range a {
			a[i] = rng.Float32() - 0.5
			b[i] = rng.Float32() - 0.5
			want += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		if !almostEqual(got, want, 1e-4) {
			t.Fatalf("n=%d Dot = %v, want %v", n, got, want)
		}
	}
}

func TestSquaredL2MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40) + 1
		a := make([]float32, n)
		b := make([]float32, n)
		var want float64
		for i := range a {
			a[i] = rng.Float32()
			b[i] = rng.Float32()
			d := float64(a[i]) - float64(b[i])
			want += d * d
		}
		got := float64(SquaredL2(a, b))
		if !almostEqual(got, want, 1e-4) {
			t.Fatalf("n=%d SquaredL2 = %v, want %v", n, got, want)
		}
	}
}

func TestSquaredL2Identity(t *testing.T) {
	// d(x, x) == 0 for arbitrary vectors (property test).
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		return SquaredL2(vals, vals) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSquaredL2Symmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		n := rng.Intn(20) + 1
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = rng.Float32()
			b[i] = rng.Float32()
		}
		return SquaredL2(a, b) == SquaredL2(b, a)
	}
	for i := 0; i < 100; i++ {
		if !f() {
			t.Fatal("SquaredL2 not symmetric")
		}
	}
}

func TestNormalize(t *testing.T) {
	v := []float32{3, 4}
	Normalize(v)
	if !almostEqual(float64(Norm(v)), 1, 1e-6) {
		t.Fatalf("norm after Normalize = %v", Norm(v))
	}
	zero := []float32{0, 0, 0}
	Normalize(zero) // must not panic or produce NaN
	for _, x := range zero {
		if x != 0 {
			t.Fatalf("zero vector changed: %v", zero)
		}
	}
}

func TestAngularRange(t *testing.T) {
	// For unit vectors, angular distance lies in [0, 2].
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(16) + 2
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		Normalize(a)
		Normalize(b)
		d := Distance(Angular, a, b)
		if d < -1e-5 || d > 2+1e-5 {
			t.Fatalf("angular distance out of range: %v", d)
		}
	}
}

func TestDistanceMetricsAgreeOnOrdering(t *testing.T) {
	// For unit vectors, L2 and Angular must rank neighbors identically:
	// ||a-b||^2 = 2 - 2*dot = 2*angular.
	rng := rand.New(rand.NewSource(5))
	q := make([]float32, 8)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	Normalize(q)
	type pair struct{ l2, ang float32 }
	var ps []pair
	for i := 0; i < 50; i++ {
		v := make([]float32, 8)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		Normalize(v)
		ps = append(ps, pair{SquaredL2(q, v), Distance(Angular, q, v)})
	}
	byL2 := make([]pair, len(ps))
	copy(byL2, ps)
	sort.Slice(byL2, func(i, j int) bool { return byL2[i].l2 < byL2[j].l2 })
	for i := 1; i < len(byL2); i++ {
		if byL2[i].ang < byL2[i-1].ang-1e-5 {
			t.Fatalf("ordering disagrees at %d: %+v before %+v", i, byL2[i-1], byL2[i])
		}
	}
}

func TestMean(t *testing.T) {
	m := Mean([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if m[0] != 3 || m[1] != 4 {
		t.Fatalf("Mean = %v, want [3 4]", m)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mean of empty set did not panic")
		}
	}()
	Mean(nil)
}

func TestTopKExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(200) + 1
		k := rng.Intn(20) + 1
		dists := make([]float32, n)
		top := NewTopK(k)
		for i := range dists {
			dists[i] = rng.Float32()
			top.Push(int64(i), dists[i])
		}
		got := top.Results()
		sorted := append([]float32(nil), dists...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		want := k
		if n < k {
			want = n
		}
		if len(got) != want {
			t.Fatalf("got %d results, want %d", len(got), want)
		}
		for i, nb := range got {
			if nb.Dist != sorted[i] {
				t.Fatalf("trial %d: result[%d] = %v, want %v", trial, i, nb.Dist, sorted[i])
			}
		}
	}
}

func TestTopKSortedAscending(t *testing.T) {
	f := func(dists []float32) bool {
		if len(dists) == 0 {
			return true
		}
		top := NewTopK(5)
		for i, d := range dists {
			if math.IsNaN(float64(d)) {
				continue
			}
			top.Push(int64(i), d)
		}
		res := top.Results()
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKRejectsWorse(t *testing.T) {
	top := NewTopK(2)
	top.Push(1, 0.1)
	top.Push(2, 0.2)
	if top.Push(3, 0.5) {
		t.Fatal("Push retained a worse candidate when full")
	}
	if !top.Push(4, 0.05) {
		t.Fatal("Push rejected a better candidate")
	}
}

func TestTopKInvalidK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTopK(0) did not panic")
		}
	}()
	NewTopK(0)
}

func TestMergeNeighborsDedup(t *testing.T) {
	a := []Neighbor{{ID: 1, Dist: 0.3}, {ID: 2, Dist: 0.5}}
	b := []Neighbor{{ID: 1, Dist: 0.1}, {ID: 3, Dist: 0.4}}
	got := MergeNeighbors(3, a, b)
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
	if got[0].ID != 1 || got[0].Dist != 0.1 {
		t.Fatalf("dedup kept wrong copy: %+v", got[0])
	}
}

func BenchmarkDot128(b *testing.B) {
	b.ReportAllocs()
	x := make([]float32, 128)
	y := make([]float32, 128)
	for i := range x {
		x[i] = float32(i)
		y[i] = float32(128 - i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dot(x, y)
	}
}

func BenchmarkSquaredL2_128(b *testing.B) {
	b.ReportAllocs()
	x := make([]float32, 128)
	y := make([]float32, 128)
	for i := range x {
		x[i] = float32(i)
		y[i] = float32(128 - i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SquaredL2(x, y)
	}
}
