package linalg

// Blocked SQ8 scan entry points. codes is a packed arena of dim-byte rows
// (one contiguous range of a cell-major code arena); decoding is fused
// into the scoring loop, so a scan streams the byte rows without ever
// materializing the float32 reconstruction. The multi-query form shares
// each decoded row across a quad of queries — the decode (u8→f32 widen +
// scale multiply) is the dominant per-element cost, and it is paid once
// per row instead of once per (query, row).

// SQ8Residual fills r[j] = q[j] - min[j], the hoisted affine constant of
// the L2 scan: (q - rec) == (q - min) - code*scale exactly when the
// subtraction q - min is performed up front, so the per-element work drops
// from two adds to one subtract.
func SQ8Residual(q, min, r []float32) {
	for j := range r {
		r[j] = q[j] - min[j]
	}
}

// SQ8Distance is the scalar reference for one (query, code row) pair: the
// accumulation contract at rows=1, with q the raw query (the L2 residual
// fold happens inline, which is bit-identical to precomputing it). Used by
// the one-off codec paths and the bit-identity tests.
func SQ8Distance(m Metric, q, min, scale []float32, code []byte) float32 {
	l2, op := metricKernel(m)
	dim := len(code)
	var s0, s1, s2, s3 float32
	if l2 {
		j := 0
		for ; j+4 <= dim; j += 4 {
			d0 := (q[j] - min[j]) - float32(code[j])*scale[j]
			d1 := (q[j+1] - min[j+1]) - float32(code[j+1])*scale[j+1]
			d2 := (q[j+2] - min[j+2]) - float32(code[j+2])*scale[j+2]
			d3 := (q[j+3] - min[j+3]) - float32(code[j+3])*scale[j+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		for ; j < dim; j++ {
			d := (q[j] - min[j]) - float32(code[j])*scale[j]
			s0 += d * d
		}
		return s0 + s1 + s2 + s3
	}
	j := 0
	for ; j+4 <= dim; j += 4 {
		s0 += q[j] * (min[j] + float32(code[j])*scale[j])
		s1 += q[j+1] * (min[j+1] + float32(code[j+1])*scale[j+1])
		s2 += q[j+2] * (min[j+2] + float32(code[j+2])*scale[j+2])
		s3 += q[j+3] * (min[j+3] + float32(code[j+3])*scale[j+3])
	}
	for ; j < dim; j++ {
		s0 += q[j] * (min[j] + float32(code[j])*scale[j])
	}
	s := s0 + s1 + s2 + s3
	switch op {
	case opNeg:
		s = -s
	case opOneMinus:
		s = 1 - s
	}
	return s
}

// DistanceSQ8Block scores one query against every dim-byte row of codes,
// writing row i's distance to out[i]. Under L2, q must be the residual
// q - min (see SQ8Residual); under the dot metrics q is the raw query and
// min is folded into the decode. Every output is bitwise equal to
// SQ8Distance on the raw query.
func DistanceSQ8Block(m Metric, q, min, scale []float32, codes []byte, out []float32) {
	l2, op := metricKernel(m)
	if l2 {
		sq8L2BlockKernel(q, scale, codes, out)
	} else {
		sq8DotBlockKernel(q, min, scale, codes, out, op)
	}
}

// sq8RowTile sizes the code-row tile of a multi-query SQ8 scan: rows are
// dim bytes, a quarter of the float width, so four times the float tile
// fits the same L1 budget.
func sq8RowTile(dim, q int) int {
	t := MultiRowTile(dim, q) * 4
	if t > 16384 {
		t = 16384
	}
	return t
}

// DistanceSQ8MultiScatter computes, for each query i, the SQ8 distance of
// queries[i] to every code row, writing row r's distance to outs[i][r].
// Under L2 every queries[i] must be its residual (SQ8Residual); under the
// dot metrics they are raw queries. Outputs are bitwise equal to
// DistanceSQ8Block per query; the code arena is streamed once, in
// cache-resident tiles whose decode each quad of queries shares.
func DistanceSQ8MultiScatter(m Metric, queries [][]float32, min, scale []float32, codes []byte, outs [][]float32) {
	l2, op := metricKernel(m)
	qn := len(queries)
	if qn == 0 {
		return
	}
	dim := len(scale)
	if dim == 0 {
		return
	}
	rows := len(codes) / dim
	tile := sq8RowTile(dim, qn)
	for lo := 0; lo < rows; lo += tile {
		hi := lo + tile
		if hi > rows {
			hi = rows
		}
		b := codes[lo*dim : hi*dim]
		qi := 0
		for ; qi+4 <= qn; qi += 4 {
			if l2 {
				sq8L2Multi4Kernel(queries[qi], queries[qi+1], queries[qi+2], queries[qi+3], scale, b,
					outs[qi][lo:hi], outs[qi+1][lo:hi], outs[qi+2][lo:hi], outs[qi+3][lo:hi])
			} else {
				sq8DotMulti4Kernel(queries[qi], queries[qi+1], queries[qi+2], queries[qi+3], min, scale, b,
					outs[qi][lo:hi], outs[qi+1][lo:hi], outs[qi+2][lo:hi], outs[qi+3][lo:hi], op)
			}
		}
		for ; qi < qn; qi++ {
			if l2 {
				sq8L2BlockKernel(queries[qi], scale, b, outs[qi][lo:hi])
			} else {
				sq8DotBlockKernel(queries[qi], min, scale, b, outs[qi][lo:hi], op)
			}
		}
	}
}
